(** Shared emitter for the BENCH_*.json artifacts: one object per file,
    field order preserved, all files stamped with the same
    ["<kind>/<schema_version>"] schema tag. *)

type value =
  | Int of int
  | Float of float * int  (** value, decimal places *)
  | Str of string
  | Obj of (string * value) list
  | List of value list

val schema_version : int

val render : kind:string -> (string * value) list -> string
(** The JSON text, with ["schema"] prepended as the first field. *)

val write : path:string -> kind:string -> (string * value) list -> unit
