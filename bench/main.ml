(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 5), plus the ablations called out in
   DESIGN.md, plus a Bechamel microbenchmark suite of the simulator's own
   hot paths.

   Run everything:       dune exec bench/main.exe
   Run one section:      dune exec bench/main.exe -- fig9 fig13
   Parallel matrices:    dune exec bench/main.exe -- scale --jobs 4
   List sections:        dune exec bench/main.exe -- --list *)

module H = Mv_util.Histogram
module Cycles = Mv_util.Cycles
module Table = Mv_util.Table
module Machine = Mv_engine.Machine
module Sim = Mv_engine.Sim
module Exec = Mv_engine.Exec
module Nautilus = Mv_aerokernel.Nautilus
module Hvm = Mv_hvm.Hvm
module Event_channel = Mv_hvm.Event_channel
module Fabric = Mv_hvm.Fabric
open Multiverse

let section name = Printf.printf "\n======== %s ========\n%!" name
let printf = Printf.printf

(* --jobs N: fan independent whole-machine measurement cells out over
   worker domains.  Every cell builds its own machine and returns a
   value; results merge in submission order, so each table and every
   BENCH_*.json number is bit-identical at any job count. *)
let jobs = ref 1

let par_map f xs = Mv_host_par.Pool.run ~jobs:!jobs (List.map (fun x () -> f x) xs)

(* ------------------------------------------------------------------ *)
(* Figure 2: round-trip latencies of ROS<->HRT interactions            *)
(* ------------------------------------------------------------------ *)

(* One request/complete round trip over a channel, caller's clock. *)
let measure_channel_rtt ~kind ~ros_core ~hrt_core =
  let machine = Machine.create () in
  let ch = Event_channel.create machine ~kind ~ros_core ~hrt_core in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:ros_core ~name:"server" (fun () ->
         let req = Event_channel.serve_next ch in
         req.Event_channel.req_run ();
         Event_channel.complete ch));
  let rtt = ref 0 in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:hrt_core ~name:"caller" (fun () ->
         let t0 = Exec.local_now machine.Machine.exec in
         Event_channel.call ch { Event_channel.req_kind = "probe"; req_run = (fun () -> ()) };
         rtt := Exec.local_now machine.Machine.exec - t0));
  Sim.run machine.Machine.sim;
  !rtt

let measure_merger () =
  let machine = Machine.create () in
  let ros = Mv_ros.Kernel.create machine in
  let hvm = Hvm.create machine ~ros in
  let nk = Nautilus.create machine in
  let cost = ref 0 in
  ignore
    (Mv_ros.Kernel.spawn_process ros ~name:"merger" (fun p ->
         Hvm.install_hrt_image hvm ~image_kb:640 nk;
         Hvm.boot_hrt hvm;
         let t0 = Exec.local_now machine.Machine.exec in
         Hvm.merge_address_space hvm p;
         cost := Exec.local_now machine.Machine.exec - t0));
  Sim.run machine.Machine.sim;
  !cost

let fig2 () =
  section "Figure 2: round-trip latencies of ROS<->HRT interactions";
  let merger = measure_merger () in
  let async = measure_channel_rtt ~kind:Event_channel.Async ~ros_core:0 ~hrt_core:7 in
  let sync_cross = measure_channel_rtt ~kind:Event_channel.Sync ~ros_core:0 ~hrt_core:7 in
  let sync_same = measure_channel_rtt ~kind:Event_channel.Sync ~ros_core:5 ~hrt_core:7 in
  let t = Table.create ~headers:[ "Item"; "Cycles"; "Time"; "Paper" ] in
  let row name c paper =
    Table.add_row t [ name; string_of_int c; Format.asprintf "%a" Cycles.pp_time c; paper ]
  in
  row "Address Space Merger" merger "~33 K / 1.5 us";
  row "Asynchronous Call" async "~25 K / 1.1 us";
  row "Synchronous Call (different socket)" sync_cross "~1060 / 48 ns";
  row "Synchronous Call (same socket)" sync_same "~790 / 36 ns";
  print_string (Table.to_string t)

(* ------------------------------------------------------------------ *)
(* Figure 8: source lines of code                                      *)
(* ------------------------------------------------------------------ *)

let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let file_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let toolchain_files = [ "override_config"; "fat_binary"; "toolchain"; "symbols" ]

let count_lines ?(filter = fun _ -> true) dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           (Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
           && filter (Filename.remove_extension f))
    |> List.fold_left (fun acc f -> acc + file_lines (Filename.concat dir f)) 0

let fig8 () =
  section "Figure 8: source lines of code for Multiverse (and substrates)";
  match repo_root () with
  | None -> printf "cannot locate repository root; skipping\n"
  | Some root ->
      let d sub = Filename.concat root sub in
      let t = Table.create ~headers:[ "Component"; "SLOC"; "Paper (C/ASM/Perl)" ] in
      let row name dirs paper =
        let n = List.fold_left (fun acc dir -> acc + count_lines (d dir)) 0 dirs in
        Table.add_row t [ name; string_of_int n; paper ]
      in
      (* The paper's four components... *)
      let mv = d "lib/multiverse" in
      Table.add_row t
        [ "Multiverse runtime";
          string_of_int (count_lines ~filter:(fun f -> not (List.mem f toolchain_files)) mv);
          "2297" ];
      Table.add_row t
        [ "Multiverse toolchain";
          string_of_int (count_lines ~filter:(fun f -> List.mem f toolchain_files) mv);
          "130" ];
      row "Nautilus additions" [ "lib/aerokernel" ] "1670";
      row "HVM additions" [ "lib/hvm" ] "638";
      (* ...and the substrates the paper had and we built from scratch. *)
      row "ROS kernel (substrate)" [ "lib/ros" ] "(stock Linux)";
      row "Racket runtime (substrate)" [ "lib/racket" ] "(stock Racket)";
      row "Guest ABI + libc (substrate)" [ "lib/guest" ] "(glibc)";
      row "Machine + engine (substrate)" [ "lib/engine"; "lib/hw" ] "(hardware)";
      row "Workloads" [ "lib/workloads" ] "(benchmarks game)";
      row "Parallel runtime + HPCG (substrate)" [ "lib/parallel" ] "(Legion + HPCG)";
      row "NESL VCODE interpreter (substrate)" [ "lib/vcode" ] "(NESL)";
      row "Tests + bench + util" [ "test"; "bench"; "lib/util" ] "-";
      print_string (Table.to_string t)

(* ------------------------------------------------------------------ *)
(* Figure 9: system-call latency, Virtual vs Multiverse                *)
(* ------------------------------------------------------------------ *)

let meg = 1024 * 1024

(* Each case: name, setup (untimed), op (timed). *)
let syscall_cases =
  let buf = Bytes.create meg in
  let blob = String.make meg 'x' in
  [
    ( "getpid",
      (fun (_ : Mv_guest.Env.t) (_ : Mv_guest.Libc.t) -> ()),
      fun env _libc -> ignore (env.Mv_guest.Env.getpid ()) );
    ( "gettimeofday",
      (fun _ _ -> ()),
      fun env _ -> ignore (env.Mv_guest.Env.gettimeofday ()) );
    ( "fwrite",
      (fun _ _ -> ()),
      fun _ libc ->
        (* 1 MB through stdio, as in the paper *)
        Mv_guest.Libc.fwrite libc (Mv_guest.Libc.stdout_stream libc) blob;
        Mv_guest.Libc.fflush libc (Mv_guest.Libc.stdout_stream libc) );
    ( "stat",
      (fun env _ ->
        match env.Mv_guest.Env.open_ ~path:"/tmp/target" ~flags:Mv_ros.Syscalls.[ O_WRONLY; O_CREAT ] with
        | Ok fd -> env.Mv_guest.Env.close ~fd
        | Error _ -> ()),
      fun env _ -> ignore (env.Mv_guest.Env.stat ~path:"/tmp/target") );
    ( "read",
      (fun env _ ->
        match env.Mv_guest.Env.open_ ~path:"/tmp/big" ~flags:Mv_ros.Syscalls.[ O_WRONLY; O_CREAT ] with
        | Ok fd ->
            ignore (env.Mv_guest.Env.write ~fd ~buf:(Bytes.of_string blob) ~off:0 ~len:meg);
            env.Mv_guest.Env.close ~fd
        | Error _ -> ()),
      fun env _ ->
        match env.Mv_guest.Env.open_ ~path:"/tmp/big" ~flags:[ Mv_ros.Syscalls.O_RDONLY ] with
        | Ok fd ->
            ignore (env.Mv_guest.Env.read ~fd ~buf ~off:0 ~len:meg);
            env.Mv_guest.Env.close ~fd
        | Error _ -> () );
    ( "getcwd",
      (fun _ _ -> ()),
      fun env _ -> ignore (env.Mv_guest.Env.getcwd ()) );
    ( "open",
      (fun env _ ->
        match env.Mv_guest.Env.open_ ~path:"/tmp/o" ~flags:Mv_ros.Syscalls.[ O_WRONLY; O_CREAT ] with
        | Ok fd -> env.Mv_guest.Env.close ~fd
        | Error _ -> ()),
      fun env _ ->
        match env.Mv_guest.Env.open_ ~path:"/tmp/o" ~flags:[ Mv_ros.Syscalls.O_RDONLY ] with
        | Ok _fd -> ()  (* fds intentionally leak; close is measured separately *)
        | Error _ -> () );
    ( "close",
      (fun env _ ->
        match env.Mv_guest.Env.open_ ~path:"/tmp/o" ~flags:Mv_ros.Syscalls.[ O_WRONLY; O_CREAT ] with
        | Ok fd -> env.Mv_guest.Env.close ~fd
        | Error _ -> ()),
      fun env _ ->
        (* open untimed-ish? we must pair: open then close; subtract via the
           open case when reading the results.  Here we measure open+close
           and report close = pair - open. *)
        match env.Mv_guest.Env.open_ ~path:"/tmp/o" ~flags:[ Mv_ros.Syscalls.O_RDONLY ] with
        | Ok fd -> env.Mv_guest.Env.close ~fd
        | Error _ -> () );
    ( "mmap",
      (fun _ _ -> ()),
      fun env _ ->
        ignore (env.Mv_guest.Env.mmap ~len:meg ~prot:Mv_ros.Mm.prot_rw ~kind:"bench") );
  ]

let iterations = 32

let measure_syscall ~multiverse (name, setup, op) =
  let per_call = ref 0.0 in
  let prog =
    {
      Toolchain.prog_name = "syscall-" ^ name;
      prog_main =
        (fun env ->
          let libc = Mv_guest.Libc.create env in
          setup env libc;
          op env libc (* warm (page in, populate caches) *);
          let t0 = env.Mv_guest.Env.gettimeofday () in
          for _ = 1 to iterations do
            op env libc
          done;
          let t1 = env.Mv_guest.Env.gettimeofday () in
          per_call := (t1 -. t0) /. float_of_int iterations);
    }
  in
  (if multiverse then ignore (Toolchain.run_multiverse (Toolchain.hybridize prog))
   else ignore (Toolchain.run_virtual prog));
  (* seconds -> cycles at 2.2 GHz *)
  !per_call *. 2.2e9

let fig9 () =
  section "Figure 9: system-call latency (cycles), Virtual vs Multiverse";
  (* One cell per syscall case (its Virtual and Multiverse runs).  The
     "read" case's shared scratch buffer is safe: it is the only case
     touching it, and a case's two runs stay within one cell. *)
  let results =
    par_map
      (fun case ->
        let name, _, _ = case in
        let v = measure_syscall ~multiverse:false case in
        let m = measure_syscall ~multiverse:true case in
        (name, v, m))
      syscall_cases
  in
  (* close was measured as an open+close pair: subtract the open cost. *)
  let find n = List.find (fun (name, _, _) -> name = n) results in
  let _, ov, om = find "open" in
  let results =
    List.map
      (fun (name, v, m) ->
        if name = "close" then (name, Float.max 1. (v -. ov), Float.max 1. (m -. om))
        else (name, v, m))
      results
  in
  let t = Table.create ~headers:[ "Syscall"; "Virtual"; "Multiverse"; "M/V" ] in
  List.iter
    (fun (name, v, m) ->
      Table.add_row t
        [ name; Printf.sprintf "%.0f" v; Printf.sprintf "%.0f" m; Printf.sprintf "%.2fx" (m /. v) ])
    results;
  print_string (Table.to_string t);
  printf "(log-scale bars; expect the two vdso calls to be slightly FASTER under\n";
  printf " Multiverse and everything else to pay ~an async channel round trip)\n";
  let log_bar v = String.make (int_of_float (8.0 *. log10 (Float.max 10. v))) '#' in
  List.iter
    (fun (name, v, m) ->
      printf "%-14s V %-28s %.0f\n" name (log_bar v) v;
      printf "%-14s M %-28s %.0f\n" "" (log_bar m) m)
    results

(* ------------------------------------------------------------------ *)
(* Figures 10-13: the Racket benchmarks                                *)
(* ------------------------------------------------------------------ *)

let bench_sizes = [ 1.0 ] (* scale factor hook; sizes fixed per benchmark *)

let all_benchmarks = Mv_workloads.Benchmarks.all

let run_bench ~mode b =
  let n = b.Mv_workloads.Benchmarks.b_bench_n in
  let prog = Mv_workloads.Benchmarks.program b ~n in
  match mode with
  | `Native -> Toolchain.run_native prog
  | `Virtual -> Toolchain.run_virtual prog
  | `Multiverse -> Toolchain.run_multiverse (Toolchain.hybridize prog)
  | `Multiverse_ported ->
      let options =
        { Toolchain.default_mv_options with mv_porting = Runtime.full_porting }
      in
      Toolchain.run_multiverse ~options (Toolchain.hybridize prog)

let fig10 () =
  ignore bench_sizes;
  section "Figure 10: system utilization of the Racket benchmarks (native)";
  let t =
    Table.create
      ~headers:
        [ "Benchmark"; "n"; "System Calls"; "Time (User/Sys) (s)"; "Max Resident (KB)";
          "Page Faults"; "Context Switches"; "TLB Hit %" ]
  in
  List.iter
    (fun (b, rs) ->
      let ru = rs.Toolchain.rs_rusage in
      Table.add_row t
        [ b.Mv_workloads.Benchmarks.b_name;
          string_of_int b.Mv_workloads.Benchmarks.b_bench_n;
          string_of_int (Toolchain.total_syscalls rs);
          Printf.sprintf "%.3f/%.3f" (Cycles.to_sec ru.Mv_ros.Rusage.utime)
            (Cycles.to_sec ru.Mv_ros.Rusage.stime);
          string_of_int ru.Mv_ros.Rusage.maxrss_kb;
          string_of_int (ru.Mv_ros.Rusage.minflt + ru.Mv_ros.Rusage.majflt);
          string_of_int (ru.Mv_ros.Rusage.nvcsw + ru.Mv_ros.Rusage.nivcsw);
          Printf.sprintf "%.1f" (100.0 *. Mv_ros.Rusage.tlb_hit_rate ru);
        ])
    (par_map (fun b -> (b, run_bench ~mode:`Native b)) all_benchmarks);
  print_string (Table.to_string t)

let engine_startup_program =
  {
    Toolchain.prog_name = "racket-startup";
    prog_main =
      (fun env ->
        let engine = Mv_racket.Engine.start env in
        Mv_racket.Engine.finish engine);
  }

let fig11 () =
  section "Figure 11: syscalls of the Racket runtime with no benchmark (startup)";
  let rs = Toolchain.run_native engine_startup_program in
  Format.printf "%a@?" (H.pp_bars ~width:40) rs.Toolchain.rs_syscalls;
  printf "TOTAL %d\n" (Toolchain.total_syscalls rs)

let fig12 () =
  section "Figure 12: syscalls of a binary-tree-2 run";
  let b = Mv_workloads.Benchmarks.find "binary-tree-2" in
  let rs = run_bench ~mode:`Native b in
  Format.printf "%a@?" (H.pp_bars ~width:40) rs.Toolchain.rs_syscalls;
  printf "TOTAL %d\n" (Toolchain.total_syscalls rs)

let fig13 () =
  section "Figure 13: benchmark runtime, Native vs Virtual vs Multiverse";
  let t =
    Table.create
      ~headers:
        [ "Benchmark"; "Native (s)"; "Virtual (s)"; "Multiverse (s)"; "M/N"; "interactions/s" ]
  in
  (* One cell per benchmark (its three mode runs); rows print after the
     barrier, in benchmark order. *)
  let measured =
    par_map
      (fun b ->
        let rs_n = run_bench ~mode:`Native b in
        let rs_v = run_bench ~mode:`Virtual b in
        let rs_m = run_bench ~mode:`Multiverse b in
        (b, rs_n, rs_v, rs_m))
      all_benchmarks
  in
  let rows =
    List.map
      (fun (b, rs_n, rs_v, rs_m) ->
        let wn = Toolchain.wall_seconds rs_n in
        let wv = Toolchain.wall_seconds rs_v in
        let wm = Toolchain.wall_seconds rs_m in
        (* ABI interactions = syscalls + page faults, per native second. *)
        let inter =
          float_of_int
            (Toolchain.total_syscalls rs_n + rs_n.Toolchain.rs_rusage.Mv_ros.Rusage.minflt)
          /. wn
        in
        Table.add_row t
          [ b.Mv_workloads.Benchmarks.b_name;
            Printf.sprintf "%.4f" wn;
            Printf.sprintf "%.4f" wv;
            Printf.sprintf "%.4f" wm;
            Printf.sprintf "%.2fx" (wm /. wn);
            Printf.sprintf "%.0f" inter;
          ];
        (b.Mv_workloads.Benchmarks.b_name, wn, wv, wm))
      measured
  in
  print_string (Table.to_string t);
  printf "\n(Multiverse is the unoptimized automatic hybridization: the overhead\n";
  printf " tracks the rate of Linux-ABI interactions, as in the paper.)\n\n";
  let maxw = List.fold_left (fun acc (_, _, _, m) -> Float.max acc m) 0.0 rows in
  List.iter
    (fun (name, wn, wv, wm) ->
      let bar w = String.make (max 1 (int_of_float (50.0 *. w /. maxw))) '#' in
      printf "%-15s N %s\n" name (bar wn);
      printf "%-15s V %s\n" "" (bar wv);
      printf "%-15s M %s\n" "" (bar wm))
    rows

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let override_heavy_program nthreads =
  {
    Toolchain.prog_name = "override-heavy";
    prog_main =
      (fun env ->
        (* Waves of pthread_create/join: each one runs the override wrapper
           and its symbol lookup. *)
        for _ = 1 to 8 do
          let hs =
            List.init nthreads (fun i ->
                env.Mv_guest.Env.thread_create ~name:(Printf.sprintf "w%d" i) (fun () ->
                    env.Mv_guest.Env.work 5_000))
          in
          List.iter (fun h -> env.Mv_guest.Env.thread_join h) hs
        done);
  }

let ablation_symcache () =
  section "Ablation A1: override symbol cache (paper Section 4.2)";
  let hx = Toolchain.hybridize (override_heavy_program 8) in
  let run cache =
    let options = { Toolchain.default_mv_options with mv_symbol_cache = cache } in
    let rs = Toolchain.run_multiverse ~options hx in
    let rt = Option.get rs.Toolchain.rs_runtime in
    (rs.Toolchain.rs_wall_cycles, Symbols.lookups (Runtime.symbols rt),
     Symbols.cache_hits (Runtime.symbols rt))
  in
  let w_off, l_off, h_off = run false in
  let w_on, l_on, h_on = run true in
  let t = Table.create ~headers:[ "Config"; "Wall (cycles)"; "Lookups"; "Cache hits" ] in
  Table.add_row t [ "per-call lookup (paper)"; string_of_int w_off; string_of_int l_off; string_of_int h_off ];
  Table.add_row t [ "with symbol cache"; string_of_int w_on; string_of_int l_on; string_of_int h_on ];
  print_string (Table.to_string t);
  printf "saved %d cycles (%.2f%% of wall)\n" (w_off - w_on)
    (100.0 *. float_of_int (w_off - w_on) /. float_of_int w_off)

let ablation_channel () =
  section "Ablation A2: async vs sync event channels for forwarding";
  let b = Mv_workloads.Benchmarks.find "binary-tree-2" in
  let prog = Mv_workloads.Benchmarks.program b ~n:10 in
  let hx = Toolchain.hybridize prog in
  let run kind =
    let options = { Toolchain.default_mv_options with mv_channel = kind } in
    (Toolchain.run_multiverse ~options hx).Toolchain.rs_wall_cycles
  in
  let w_async = run Event_channel.Async in
  let w_sync = run Event_channel.Sync in
  let t = Table.create ~headers:[ "Channel"; "Wall (cycles)"; "vs async" ] in
  Table.add_row t [ "async (hypercall+interrupt)"; string_of_int w_async; "1.00x" ];
  Table.add_row t
    [ "sync (shared-memory polling)"; string_of_int w_sync;
      Printf.sprintf "%.2fx" (float_of_int w_sync /. float_of_int w_async) ];
  print_string (Table.to_string t)

let ablation_porting () =
  section "Ablation A3: the incremental (subtractive) porting path";
  let b = Mv_workloads.Benchmarks.find "binary-tree-2" in
  let prog = Mv_workloads.Benchmarks.program b ~n:10 in
  let hx = Toolchain.hybridize prog in
  let native = (Toolchain.run_native prog).Toolchain.rs_wall_cycles in
  let run porting =
    let options = { Toolchain.default_mv_options with mv_porting = porting } in
    let rs = Toolchain.run_multiverse ~options hx in
    let rt = Option.get rs.Toolchain.rs_runtime in
    (rs.Toolchain.rs_wall_cycles, Runtime.faults_serviced_locally rt)
  in
  let w0, f0 = run Runtime.no_porting in
  let w1, f1 = run { Runtime.port_mmap = true; port_signals = false; port_faults = false } in
  let w2, f2 = run { Runtime.port_mmap = true; port_signals = false; port_faults = true } in
  let w3, f3 = run Runtime.full_porting in
  let t =
    Table.create ~headers:[ "Ported functionality"; "Wall (cycles)"; "vs native"; "local faults" ]
  in
  let row name w f =
    Table.add_row t
      [ name; string_of_int w; Printf.sprintf "%.2fx" (float_of_int w /. float_of_int native);
        string_of_int f ]
  in
  row "none (automatic hybridization)" w0 f0;
  row "+ mmap/munmap/mprotect overrides" w1 f1;
  row "+ local fault handling" w2 f2;
  row "+ local signal delivery (full)" w3 f3;
  Table.add_row t [ "native (reference)"; string_of_int native; "1.00x"; "-" ];
  print_string (Table.to_string t)

let ablation_wp () =
  section "Ablation A4: CR0.WP in kernel mode (paper Section 4.4)";
  (* An HRT thread writes a read-only page.  With WP set the fault is
     caught and forwarded; with WP clear the write silently corrupts. *)
  let run_case ~wp =
    let machine = Machine.create () in
    let nk = Nautilus.create machine in
    let ros_pt = Mv_hw.Page_table.create () in
    Mv_hw.Page_table.map ros_pt 0x1000 ~frame:1
      ~flags:Mv_hw.Page_table.(f_present lor f_user) (* read-only, e.g. zero page *);
    let forwarded = ref 0 in
    Nautilus.set_services nk
      {
        Nautilus.svc_forward_fault =
          (fun addr ~write:_ ->
            incr forwarded;
            (* The ROS breaks COW with a writable private copy. *)
            Mv_hw.Page_table.map ros_pt (Mv_hw.Addr.align_down addr) ~frame:99
              ~flags:Mv_hw.Page_table.(f_present lor f_writable lor f_user);
            Nautilus.Fault_fixed);
        svc_forward_syscall = (fun _ run -> run ());
        svc_request_remerge = (fun () -> ros_pt);
      };
    ignore
      (Exec.spawn machine.Machine.exec ~cpu:7 ~name:"hrt" (fun () ->
           Nautilus.boot nk;
           Nautilus.set_wp nk wp;
           Nautilus.merge_lower_half nk ~from:ros_pt;
           Nautilus.access nk 0x1000 ~write:true));
    Sim.run machine.Machine.sim;
    (!forwarded, Nautilus.stats_silent_writes nk)
  in
  let fwd_on, silent_on = run_case ~wp:true in
  let fwd_off, silent_off = run_case ~wp:false in
  let t = Table.create ~headers:[ "CR0.WP"; "Faults caught+forwarded"; "Silent corruptions" ] in
  Table.add_row t [ "set (Nautilus default)"; string_of_int fwd_on; string_of_int silent_on ];
  Table.add_row t [ "clear (x86 ring-0 default)"; string_of_int fwd_off; string_of_int silent_off ];
  print_string (Table.to_string t);
  printf "(with WP clear the COW write proceeds against the shared page —\n";
  printf " the paper's \"mysterious memory corruption\")\n"

(* ------------------------------------------------------------------ *)
(* Bonus: the Native usage model (Section 2's HPCG claim)              *)
(* ------------------------------------------------------------------ *)

let hpcg_linux ~nx ~workers =
  let machine = Machine.create () in
  let kernel = Mv_ros.Kernel.create machine in
  let out = ref None in
  ignore
    (Mv_ros.Kernel.spawn_process kernel ~name:"hpcg" (fun p ->
         let env = Mv_guest.Env.native kernel p in
         let pool = Mv_parallel.Pool.create (Mv_parallel.Pool.Linux env) ~nworkers:workers in
         let t0 = Exec.local_now machine.Machine.exec in
         let r = Mv_parallel.Hpcg.run pool ~nx () in
         let t = Exec.local_now machine.Machine.exec - t0 in
         Mv_parallel.Pool.shutdown pool;
         out := Some (r, t)));
  Sim.run machine.Machine.sim;
  Option.get !out

let hpcg_hrt ~nx ~workers =
  let machine = Machine.create ~hrt_cores:(workers + 1) () in
  let nk = Nautilus.create machine in
  let out = ref None in
  let master = List.hd (Mv_aerokernel.Nautilus.cores nk) in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:master ~name:"hpcg-master" (fun () ->
         Nautilus.boot nk;
         let pool = Mv_parallel.Pool.create (Mv_parallel.Pool.Aerokernel nk) ~nworkers:workers in
         let t0 = Exec.local_now machine.Machine.exec in
         let r = Mv_parallel.Hpcg.run pool ~nx () in
         let t = Exec.local_now machine.Machine.exec - t0 in
         Mv_parallel.Pool.shutdown pool;
         out := Some (r, t)));
  Sim.run machine.Machine.sim;
  Option.get !out

let native_model () =
  section "Bonus: Native model — HPCG on Linux pthreads vs AeroKernel threads";
  printf
    "(reproduces the Section-2 claim behind Multiverse: hand-ported HRT\n\
    \ runtimes sped HPCG up by up to 20%%/40%% because AeroKernel thread\n\
    \ primitives are orders of magnitude cheaper than Linux's)\n";
  let t =
    Table.create
      ~headers:[ "Grid"; "Regions"; "Linux (ms)"; "HRT native (ms)"; "HRT speedup"; "Converged" ]
  in
  List.iter
    (fun nx ->
      let rl, tl = hpcg_linux ~nx ~workers:4 in
      let rn, tn = hpcg_hrt ~nx ~workers:4 in
      Table.add_row t
        [ Printf.sprintf "%d^3" nx;
          string_of_int rl.Mv_parallel.Hpcg.regions;
          Printf.sprintf "%.3f" (Cycles.to_ms tl);
          Printf.sprintf "%.3f" (Cycles.to_ms tn);
          Printf.sprintf "%.2fx" (float_of_int tl /. float_of_int tn);
          Printf.sprintf "%b/%b" (Mv_parallel.Hpcg.verify rl) (Mv_parallel.Hpcg.verify rn);
        ])
    [ 8; 12; 16; 24; 32 ];
  print_string (Table.to_string t);
  printf "(the advantage is largest where parallel regions are fine-grained and\n";
  printf " shrinks as per-region compute amortizes the synchronization cost)\n\n";
  (* The same comparison for the authors' other ported runtime: the NESL
     VCODE interpreter, every vector op a parallel region. *)
  let vcode_linux ~n ~workers =
    let machine = Machine.create () in
    let kernel = Mv_ros.Kernel.create machine in
    let out = ref 0 in
    ignore
      (Mv_ros.Kernel.spawn_process kernel ~name:"vcode" (fun p ->
           let env = Mv_guest.Env.native kernel p in
           let pool = Mv_parallel.Pool.create (Mv_parallel.Pool.Linux env) ~nworkers:workers in
           let interp =
             Mv_vcode.Vcode.create ~pool ~charge:(fun c -> env.Mv_guest.Env.work c) ()
           in
           let t0 = Exec.local_now machine.Machine.exec in
           ignore
             (Mv_vcode.Vcode.run interp (Mv_vcode.Vcode.parse (Mv_vcode.Samples.sum_of_squares n)) []);
           out := Exec.local_now machine.Machine.exec - t0;
           Mv_parallel.Pool.shutdown pool));
    Sim.run machine.Machine.sim;
    !out
  in
  let vcode_hrt ~n ~workers =
    let machine = Machine.create ~hrt_cores:(workers + 1) () in
    let nk = Nautilus.create machine in
    let out = ref 0 in
    let master = List.hd (Mv_aerokernel.Nautilus.cores nk) in
    ignore
      (Exec.spawn machine.Machine.exec ~cpu:master ~name:"vcode-hrt" (fun () ->
           Nautilus.boot nk;
           let pool = Mv_parallel.Pool.create (Mv_parallel.Pool.Aerokernel nk) ~nworkers:workers in
           let interp =
             Mv_vcode.Vcode.create ~pool ~charge:(fun c -> Machine.charge machine c) ()
           in
           let t0 = Exec.local_now machine.Machine.exec in
           ignore
             (Mv_vcode.Vcode.run interp (Mv_vcode.Vcode.parse (Mv_vcode.Samples.sum_of_squares n)) []);
           out := Exec.local_now machine.Machine.exec - t0;
           Mv_parallel.Pool.shutdown pool));
    Sim.run machine.Machine.sim;
    !out
  in
  let t2 = Table.create ~headers:[ "VCODE vector length"; "Linux (us)"; "HRT native (us)"; "HRT speedup" ] in
  List.iter
    (fun n ->
      let tl = vcode_linux ~n ~workers:4 in
      let tn = vcode_hrt ~n ~workers:4 in
      Table.add_row t2
        [ string_of_int n;
          Printf.sprintf "%.1f" (Cycles.to_us tl);
          Printf.sprintf "%.1f" (Cycles.to_us tn);
          Printf.sprintf "%.2fx" (float_of_int tl /. float_of_int tn);
        ])
    [ 1_000; 10_000; 100_000 ];
  print_string (Table.to_string t2)

(* ------------------------------------------------------------------ *)
(* The forwarding fabric: batching, routing and local fast paths       *)
(* ------------------------------------------------------------------ *)

type fabric_metrics = {
  fm_async_rtt : int;
  fm_sync_cross_rtt : int;
  fm_sync_same_rtt : int;
  fm_groups : int;
  fm_riders : int;
  fm_calls_per_rider : int;
  fm_forwarded : int;  (* forwarded calls per run (same in both modes) *)
  fm_unbatched_cycles : int;
  fm_batched_cycles : int;
  fm_calls_per_sec : float;
  fm_rider_count : int;
  fm_drains : int;
  fm_drained : int;
  fm_transport_batched : int;
  fm_transport_unbatched : int;
  fm_local_hits : int;
  fm_local_misses : int;
  fm_fabric_calls : int;
}

(* Four concurrent execution groups, each with concurrent nested callers
   hammering the group's endpoint: the configuration the batching layer is
   for.  Identical workload with batching on and off; the only variable is
   whether concurrent calls ride the shared-page ring or ring their own
   doorbell. *)
let measure_fabric () =
  let groups = 4 and riders = 4 and calls = 8 in
  let run batching =
    let elapsed = ref 0 in
    let counters = ref None in
    ignore
      (Toolchain.run_accelerator ~name:"fabric-bench" (fun ~ros_env:_ ~rt ->
           let fabric = Runtime.fabric rt in
           Fabric.set_batching fabric batching;
           let exec = (Nautilus.machine (Runtime.nk rt)).Machine.exec in
           let t0 = Exec.local_now exec in
           let partners =
             List.init groups (fun g ->
                 Runtime.hrt_invoke rt ~name:(Printf.sprintf "grp-%d" g) (fun env ->
                     let nested =
                       List.init riders (fun i ->
                           Runtime.create_nested rt
                             ~name:(Printf.sprintf "g%d-rider-%d" g i)
                             (fun () ->
                               for _ = 1 to calls do
                                 ignore (env.Mv_guest.Env.getrusage ());
                                 ignore (env.Mv_guest.Env.getpid ())
                               done))
                     in
                     List.iter (fun th -> Runtime.join_nested rt th) nested))
           in
           List.iter (fun p -> Runtime.join rt p) partners;
           elapsed := Exec.local_now exec - t0;
           counters :=
             Some
               ( Fabric.calls fabric, Fabric.transport_calls fabric,
                 Fabric.riders fabric, Fabric.drains fabric, Fabric.drained fabric,
                 Fabric.local_hits fabric, Fabric.local_misses fabric )));
    (!elapsed, Option.get !counters)
  in
  (* The two timed A/B runs and the three RTT probes are five independent
     machines; fan them out. *)
  let cells =
    [
      (fun () -> `Timed (run false));
      (fun () -> `Timed (run true));
      (fun () -> `Rtt (measure_channel_rtt ~kind:Event_channel.Async ~ros_core:0 ~hrt_core:7));
      (fun () -> `Rtt (measure_channel_rtt ~kind:Event_channel.Sync ~ros_core:0 ~hrt_core:7));
      (fun () -> `Rtt (measure_channel_rtt ~kind:Event_channel.Sync ~ros_core:5 ~hrt_core:7));
    ]
  in
  let ( unbatched_cycles,
        (_, transport_off, _, _, _, _, _),
        batched_cycles,
        (fcalls, transport_on, nriders, drains, drained, hits, misses),
        async_rtt,
        sync_cross_rtt,
        sync_same_rtt ) =
    match par_map (fun f -> f ()) cells with
    | [ `Timed (uc, co); `Timed (bc, cb); `Rtt a; `Rtt sc; `Rtt ss ] ->
        (uc, co, bc, cb, a, sc, ss)
    | _ -> assert false
  in
  let forwarded = groups * riders * calls in
  {
    fm_async_rtt = async_rtt;
    fm_sync_cross_rtt = sync_cross_rtt;
    fm_sync_same_rtt = sync_same_rtt;
    fm_groups = groups;
    fm_riders = riders;
    fm_calls_per_rider = calls;
    fm_forwarded = forwarded;
    fm_unbatched_cycles = unbatched_cycles;
    fm_batched_cycles = batched_cycles;
    fm_calls_per_sec = float_of_int forwarded /. Cycles.to_sec batched_cycles;
    fm_rider_count = nriders;
    fm_drains = drains;
    fm_drained = drained;
    fm_transport_batched = transport_on;
    fm_transport_unbatched = transport_off;
    fm_local_hits = hits;
    fm_local_misses = misses;
    fm_fabric_calls = fcalls;
  }

(* Memoized so `fabric --json` (text section + JSON writer in one
   invocation) measures once. *)
let fabric_metrics = lazy (measure_fabric ())

let cycles_per_call m cycles = float_of_int cycles /. float_of_int m.fm_forwarded

let reduction_pct m =
  100.0
  *. (cycles_per_call m m.fm_unbatched_cycles -. cycles_per_call m m.fm_batched_cycles)
  /. cycles_per_call m m.fm_unbatched_cycles

let batch_occupancy m =
  if m.fm_drains = 0 then 0.0
  else float_of_int m.fm_drained /. float_of_int m.fm_drains

let local_hit_rate m =
  if m.fm_fabric_calls = 0 then 0.0
  else float_of_int m.fm_local_hits /. float_of_int m.fm_fabric_calls

let fabric_bench () =
  section "Fabric: batched vs unbatched forwarding (4 concurrent groups)";
  let m = Lazy.force fabric_metrics in
  let t = Table.create ~headers:[ "Metric"; "Value" ] in
  let row name v = Table.add_row t [ name; v ] in
  row "async RTT (cycles)" (string_of_int m.fm_async_rtt);
  row "sync RTT cross-socket (cycles)" (string_of_int m.fm_sync_cross_rtt);
  row "sync RTT same-socket (cycles)" (string_of_int m.fm_sync_same_rtt);
  row "groups x riders x calls"
    (Printf.sprintf "%d x %d x %d" m.fm_groups m.fm_riders m.fm_calls_per_rider);
  row "unbatched cycles/forwarded call"
    (Printf.sprintf "%.0f" (cycles_per_call m m.fm_unbatched_cycles));
  row "batched cycles/forwarded call"
    (Printf.sprintf "%.0f" (cycles_per_call m m.fm_batched_cycles));
  row "reduction" (Printf.sprintf "%.1f%%" (reduction_pct m));
  row "forwarded calls/sec (batched)" (Printf.sprintf "%.0f" m.fm_calls_per_sec);
  row "doorbells (unbatched -> batched)"
    (Printf.sprintf "%d -> %d" m.fm_transport_unbatched m.fm_transport_batched);
  row "riders / drains / drained"
    (Printf.sprintf "%d / %d / %d" m.fm_rider_count m.fm_drains m.fm_drained);
  row "batch occupancy (drained/drain)" (Printf.sprintf "%.2f" (batch_occupancy m));
  row "local fast-path hit rate" (Printf.sprintf "%.2f" (local_hit_rate m));
  print_string (Table.to_string t);
  printf "(acceptance: batching cuts virtual cycles per forwarded call by >= 25%%)\n"

(* BENCH_fabric.json, via the shared Bench_report emitter. *)
let write_fabric_json path =
  let m = Lazy.force fabric_metrics in
  let open Bench_report in
  write ~path ~kind:"multiverse-fabric-bench"
    [
      ( "rtt_cycles",
        Obj
          [
            ("async", Int m.fm_async_rtt);
            ("sync_cross_socket", Int m.fm_sync_cross_rtt);
            ("sync_same_socket", Int m.fm_sync_same_rtt);
          ] );
      ("forwarded_calls_per_sec", Float (m.fm_calls_per_sec, 1));
      ( "batch",
        Obj
          [
            ("groups", Int m.fm_groups);
            ("riders_per_group", Int m.fm_riders);
            ("calls_per_rider", Int m.fm_calls_per_rider);
            ("forwarded_calls", Int m.fm_forwarded);
            ("unbatched_cycles_per_call", Float (cycles_per_call m m.fm_unbatched_cycles, 1));
            ("batched_cycles_per_call", Float (cycles_per_call m m.fm_batched_cycles, 1));
            ("reduction_pct", Float (reduction_pct m, 2));
            ("doorbells_unbatched", Int m.fm_transport_unbatched);
            ("doorbells_batched", Int m.fm_transport_batched);
            ("riders", Int m.fm_rider_count);
            ("drains", Int m.fm_drains);
            ("drained", Int m.fm_drained);
            ("occupancy", Float (batch_occupancy m, 3));
          ] );
      ( "local_fast_path",
        Obj
          [
            ("hits", Int m.fm_local_hits);
            ("misses", Int m.fm_local_misses);
            ("hit_rate", Float (local_hit_rate m, 3));
          ] );
    ];
  printf "wrote %s (reduction %.2f%%)\n%!" path (reduction_pct m)

(* ------------------------------------------------------------------ *)
(* The memory path: huge pages, size-aware TLB, walk cache, shootdowns *)
(* ------------------------------------------------------------------ *)

(* One side of the A/B: binary-tree-2 (the GC-heavy workload) under
   Multiverse with the huge-page memory path on or off.  Everything here
   comes from the rusage memory-path counters plus the collector's own
   statistics. *)
type mempath_side = {
  ms_wall : int;
  ms_gc : int;  (* collections *)
  ms_hit_rate : float;
  ms_walks : int;
  ms_levels_per_walk : float;
  ms_walk_cycles : int;
  ms_fill_cycles : int;
  ms_shootdowns : int;
  ms_shootdown_cycles : int;
  ms_promotions : int;
  ms_splits : int;
  ms_minflt : int;
}

let ms_mem_cycles s = s.ms_walk_cycles + s.ms_fill_cycles + s.ms_shootdown_cycles

let ms_cycles_per_gc s =
  if s.ms_gc = 0 then 0.0 else float_of_int (ms_mem_cycles s) /. float_of_int s.ms_gc

let mempath_n = 11

let measure_mempath_side ~huge_pages =
  let b = Mv_workloads.Benchmarks.find "binary-tree-2" in
  let collections = ref 0 in
  let prog =
    {
      Toolchain.prog_name = "mempath-binary-tree-2";
      prog_main =
        (fun env ->
          let engine = Mv_racket.Engine.start env in
          Mv_racket.Engine.run_program engine (b.Mv_workloads.Benchmarks.b_source mempath_n);
          collections :=
            (Mv_racket.Sgc.stats (Mv_racket.Engine.gc engine)).Mv_racket.Sgc.collections);
    }
  in
  let options = { Toolchain.default_mv_options with mv_huge_pages = huge_pages } in
  let rs = Toolchain.run_multiverse ~options (Toolchain.hybridize prog) in
  let ru = rs.Toolchain.rs_rusage in
  let open Mv_ros.Rusage in
  {
    ms_wall = rs.Toolchain.rs_wall_cycles;
    ms_gc = !collections;
    ms_hit_rate = tlb_hit_rate ru;
    ms_walks = ru.walks;
    ms_levels_per_walk =
      (if ru.walks = 0 then 0.0 else float_of_int ru.walk_levels /. float_of_int ru.walks);
    ms_walk_cycles = ru.walk_cycles;
    ms_fill_cycles = ru.fill_cycles;
    ms_shootdowns = ru.shootdowns;
    ms_shootdown_cycles = ru.shootdown_cycles;
    ms_promotions = ru.huge_promotions;
    ms_splits = ru.huge_splits;
    ms_minflt = ru.minflt;
  }

let mempath_reduction_pct ~on ~off =
  let c_on = float_of_int (ms_mem_cycles on) and c_off = float_of_int (ms_mem_cycles off) in
  if c_off = 0.0 then 0.0 else 100.0 *. (c_off -. c_on) /. c_off

(* The higher half: sweep-read the AeroKernel identity map on the HRT core.
   With 1 GiB leaves the whole span fits the 1G TLB class and there is
   nothing to demand-fill; with 4 KiB pages every 64 KiB stride is a fresh
   page.  The warmup sweep populates the mappings, [Tlb.reset_stats] (and
   the walk-cache counterpart) zeroes the counters, and the measured sweep
   reports steady state. *)
type hh_side = {
  hh_accesses : int;
  hh_fills : int;  (* demand fills during the measured sweep *)
  hh_hit_rate : float;
}

let measure_hh_sweep ~huge_pages =
  let machine = Machine.create ~huge_pages () in
  let nk = Nautilus.create machine in
  let hrt = List.hd (Mv_aerokernel.Nautilus.cores nk) in
  let out = ref None in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:hrt ~name:"hh-sweep" (fun () ->
         Nautilus.boot nk;
         let phys = machine.Machine.phys in
         let span_pages =
           Mv_hw.Phys_mem.total phys Mv_hw.Phys_mem.Ros_region
           + Mv_hw.Phys_mem.total phys Mv_hw.Phys_mem.Hrt_region
         in
         let stride = 16 (* pages: one access per 64 KiB *) in
         let sweep () =
           let n = ref 0 and p = ref 0 in
           while !p < span_pages do
             Nautilus.access nk
               (Mv_hw.Addr.higher_half_base + (!p * Mv_hw.Addr.page_size))
               ~write:false;
             incr n;
             p := !p + stride
           done;
           !n
         in
         ignore (sweep ());
         let cpu = machine.Machine.cpus.(hrt) in
         Mv_hw.Tlb.reset_stats cpu.Mv_hw.Cpu.tlb;
         Mv_hw.Walk_cache.reset_stats cpu.Mv_hw.Cpu.pwc;
         let fills0 = Nautilus.stats_hh_fills nk in
         let accesses = sweep () in
         let tlb = cpu.Mv_hw.Cpu.tlb in
         let hits = Mv_hw.Tlb.hits tlb and misses = Mv_hw.Tlb.misses tlb in
         out :=
           Some
             {
               hh_accesses = accesses;
               hh_fills = Nautilus.stats_hh_fills nk - fills0;
               hh_hit_rate =
                 (if hits + misses = 0 then 1.0
                  else float_of_int hits /. float_of_int (hits + misses));
             }));
  Sim.run machine.Machine.sim;
  Option.get !out

(* The two workload sides and the two higher-half sweeps are four
   independent machines; memoized so `mempath --json` measures once. *)
let mempath_sides =
  lazy
    (match
       par_map
         (fun f -> f ())
         [
           (fun () -> `Side (measure_mempath_side ~huge_pages:true));
           (fun () -> `Side (measure_mempath_side ~huge_pages:false));
           (fun () -> `Hh (measure_hh_sweep ~huge_pages:true));
           (fun () -> `Hh (measure_hh_sweep ~huge_pages:false));
         ]
     with
    | [ `Side on; `Side off; `Hh hh_on; `Hh hh_off ] -> (on, off, hh_on, hh_off)
    | _ -> assert false)

let mempath () =
  section "Memory path: huge pages on vs off (binary-tree-2, Multiverse)";
  let on, off, hh_on, hh_off = Lazy.force mempath_sides in
  let t = Table.create ~headers:[ "Metric"; "Huge on"; "Huge off" ] in
  let row name f = Table.add_row t [ name; f on; f off ] in
  row "wall (cycles)" (fun s -> string_of_int s.ms_wall);
  row "GC collections" (fun s -> string_of_int s.ms_gc);
  row "TLB hit rate" (fun s -> Printf.sprintf "%.2f%%" (100.0 *. s.ms_hit_rate));
  row "page walks" (fun s -> string_of_int s.ms_walks);
  row "levels/walk" (fun s -> Printf.sprintf "%.2f" s.ms_levels_per_walk);
  row "walk cycles" (fun s -> string_of_int s.ms_walk_cycles);
  row "fill cycles" (fun s -> string_of_int s.ms_fill_cycles);
  row "shootdowns (per-core)" (fun s -> string_of_int s.ms_shootdowns);
  row "shootdown cycles" (fun s -> string_of_int s.ms_shootdown_cycles);
  row "memory-path cycles" (fun s -> string_of_int (ms_mem_cycles s));
  row "memory-path cycles/GC" (fun s -> Printf.sprintf "%.0f" (ms_cycles_per_gc s));
  row "2M promotions" (fun s -> string_of_int s.ms_promotions);
  row "2M splits" (fun s -> string_of_int s.ms_splits);
  row "page faults" (fun s -> string_of_int s.ms_minflt);
  print_string (Table.to_string t);
  printf "memory-path reduction: %.1f%% (acceptance: >= 30%%)\n"
    (mempath_reduction_pct ~on ~off);
  let t2 = Table.create ~headers:[ "Higher-half sweep"; "Huge on"; "Huge off" ] in
  let row2 name f = Table.add_row t2 [ name; f hh_on; f hh_off ] in
  row2 "accesses" (fun s -> string_of_int s.hh_accesses);
  row2 "demand fills (measured)" (fun s -> string_of_int s.hh_fills);
  row2 "TLB hit rate" (fun s -> Printf.sprintf "%.2f%%" (100.0 *. s.hh_hit_rate));
  print_string (Table.to_string t2);
  printf "(acceptance: huge on is fault-free with >= 99%% hits after warmup)\n"

(* BENCH_mempath.json, via the shared Bench_report emitter. *)
let write_mempath_json path =
  let on, off, hh_on, hh_off = Lazy.force mempath_sides in
  let open Bench_report in
  let side s =
    Obj
      [
        ("wall_cycles", Int s.ms_wall);
        ("gc_collections", Int s.ms_gc);
        ("tlb_hit_rate", Float (s.ms_hit_rate, 4));
        ("walks", Int s.ms_walks);
        ("levels_per_walk", Float (s.ms_levels_per_walk, 3));
        ("walk_cycles", Int s.ms_walk_cycles);
        ("fill_cycles", Int s.ms_fill_cycles);
        ("shootdowns", Int s.ms_shootdowns);
        ("shootdown_cycles", Int s.ms_shootdown_cycles);
        ("memory_path_cycles", Int (ms_mem_cycles s));
        ("memory_path_cycles_per_gc", Float (ms_cycles_per_gc s, 1));
        ("huge_promotions", Int s.ms_promotions);
        ("huge_splits", Int s.ms_splits);
        ("page_faults", Int s.ms_minflt);
      ]
  in
  let hh s =
    Obj
      [
        ("accesses", Int s.hh_accesses);
        ("demand_fills", Int s.hh_fills);
        ("tlb_hit_rate", Float (s.hh_hit_rate, 4));
      ]
  in
  write ~path ~kind:"multiverse-mempath-bench"
    [
      ("workload", Str "binary-tree-2");
      ("n", Int mempath_n);
      ("huge_on", side on);
      ("huge_off", side off);
      ("memory_path_reduction_pct", Float (mempath_reduction_pct ~on ~off, 2));
      ("higher_half", Obj [ ("huge_on", hh hh_on); ("huge_off", hh hh_off) ]);
    ];
  printf "wrote %s (memory-path reduction %.2f%%, hh hit rate %.2f%%)\n%!" path
    (mempath_reduction_pct ~on ~off)
    (100.0 *. hh_on.hh_hit_rate)

(* ------------------------------------------------------------------ *)
(* Scale: open-loop load at 1k execution groups, admission on vs off   *)
(* ------------------------------------------------------------------ *)

module Loadgen = Mv_workloads.Loadgen

(* One sweep point: the identical open-loop workload with admission
   control off (unbounded queueing) and on (bounded rings + token-bucket
   admission, Shed policy).  The offered loads straddle the pool's
   service capacity so the curve shows the knee. *)
type scale_point = {
  sp_offered : float;
  sp_off : Loadgen.results;
  sp_on : Loadgen.results;
}

(* Token rate = each group's fair share of the pool's service capacity
   (~4 pollers x 2.2e9 / ~21k cycles ~= 420k calls/s over 1000 groups
   ~= 1.9e-7 tokens/cycle): below the knee the bucket is invisible, past
   it the surplus is shed at admission instead of queueing. *)
let scale_admission () =
  Fabric.make_admission ~policy:Fabric.Shed ~ring_capacity:8 ~queue_capacity:16
    ~rate:1.9e-7 ~burst:4 ()

let scale_groups = 1000
let scale_offered = [ 50_000.0; 100_000.0; 200_000.0; 400_000.0; 800_000.0; 1_600_000.0 ]

let measure_scale () =
  let base =
    {
      Loadgen.default_config with
      Loadgen.lg_groups = scale_groups;
      lg_calls_per_group = 16;
      lg_workers_per_group = 16;
      lg_arrival = Loadgen.Poisson;
    }
  in
  (* offered x {off,on}: every cell is an independent load-generator run,
     so the whole matrix fans out. *)
  let cells =
    List.concat_map (fun cps -> [ (cps, false); (cps, true) ]) scale_offered
  in
  let results =
    par_map
      (fun (cps, admit) ->
        let cfg =
          if admit then
            { base with Loadgen.lg_offered_cps = cps; lg_admission = Some (scale_admission ()) }
          else { base with Loadgen.lg_offered_cps = cps }
        in
        Loadgen.run cfg)
      cells
  in
  let rec pair = function
    | off :: on :: rest -> (off, on) :: pair rest
    | _ -> []
  in
  List.map2
    (fun cps (off, on) -> { sp_offered = cps; sp_off = off; sp_on = on })
    scale_offered (pair results)

(* Memoized so `scale --json` (text section + JSON writer in one
   invocation) sweeps once. *)
let scale_points = lazy (measure_scale ())

let scale_bench () =
  section
    (Printf.sprintf "Scale: open-loop load, %d execution groups, shedding on vs off"
       scale_groups);
  let points = Lazy.force scale_points in
  let t =
    Table.create
      ~headers:
        [ "offered (k/s)"; "mode"; "tput (k/s)"; "p50 (us)"; "p99 (us)"; "dropped"; "flips" ]
  in
  List.iter
    (fun p ->
      let row mode (r : Loadgen.results) flips =
        Table.add_row t
          [
            Printf.sprintf "%.0f" (p.sp_offered /. 1e3);
            mode;
            Printf.sprintf "%.1f" (r.Loadgen.r_throughput_cps /. 1e3);
            Printf.sprintf "%.1f" r.Loadgen.r_p50_us;
            Printf.sprintf "%.1f" r.Loadgen.r_p99_us;
            string_of_int r.Loadgen.r_dropped;
            flips;
          ]
      in
      row "off" p.sp_off "-";
      row "shed" p.sp_on
        (Printf.sprintf "%d/%d" p.sp_on.Loadgen.r_shed_flips p.sp_on.Loadgen.r_shed_restores))
    points;
  print_string (Table.to_string t);
  printf
    "(acceptance: past the knee, shed-mode p99 stays bounded while control-off p99 \
     collapses; shed-mode throughput is never retrograde)\n"

(* BENCH_scale.json: the latency-vs-offered-load curve. *)
let write_scale_json path =
  let points = Lazy.force scale_points in
  let open Bench_report in
  let side (r : Loadgen.results) =
    Obj
      [
        ("issued", Int r.Loadgen.r_issued);
        ("completed", Int r.Loadgen.r_completed);
        ("dropped", Int r.Loadgen.r_dropped);
        ("throughput_cps", Float (r.Loadgen.r_throughput_cps, 1));
        ("p50_us", Float (r.Loadgen.r_p50_us, 1));
        ("p95_us", Float (r.Loadgen.r_p95_us, 1));
        ("p99_us", Float (r.Loadgen.r_p99_us, 1));
        ("ring_occupancy_hw", Int r.Loadgen.r_ring_hw);
        ("sheds", Int r.Loadgen.r_sheds);
        ("shed_retries", Int r.Loadgen.r_shed_retries);
        ("blocked", Int r.Loadgen.r_blocked);
        ("shed_flips", Int r.Loadgen.r_shed_flips);
        ("shed_restores", Int r.Loadgen.r_shed_restores);
      ]
  in
  let ad = scale_admission () in
  write ~path ~kind:"multiverse-scale-bench"
    [
      ("groups", Int scale_groups);
      ("calls_per_group", Int 16);
      ("arrival", Str "poisson");
      ("service_cycles", Int Loadgen.default_config.Loadgen.lg_service_cycles);
      ( "admission",
        Obj
          [
            ("policy", Str "shed");
            ("ring_capacity", Int ad.Fabric.ad_ring_capacity);
            ("queue_capacity", Int ad.Fabric.ad_queue_capacity);
            ("rate_tokens_per_cycle", Float (ad.Fabric.ad_rate, 7));
            ("burst", Int ad.Fabric.ad_burst);
            ("shed_retries", Int ad.Fabric.ad_shed_retries);
          ] );
      ( "curve",
        List
          (List.map
             (fun p ->
               Obj
                 [
                   ("offered_cps", Float (p.sp_offered, 0));
                   ("control_off", side p.sp_off);
                   ("control_on", side p.sp_on);
                 ])
             points) );
    ];
  let last = List.nth points (List.length points - 1) in
  printf "wrote %s (at %.0fk/s offered: p99 off %.0fus vs shed %.0fus)\n%!" path
    (last.sp_offered /. 1e3) last.sp_off.Loadgen.r_p99_us last.sp_on.Loadgen.r_p99_us

(* ------------------------------------------------------------------ *)
(* NUMA: group-affine vs round-robin placement on a big box            *)
(* ------------------------------------------------------------------ *)

(* Geometry for the NUMA section (override with --topology SxC).  The
   default is the 4x32 box with HRT pinned to the upper half of the last
   socket: affine placement can then co-locate a group's server core,
   poller group and frames on one socket, while round-robin scatters the
   server cores across all four. *)
let numa_topology = ref (4, 32)

let numa_geometry () =
  let sockets, cores_per_socket = !numa_topology in
  let total = sockets * cores_per_socket in
  (sockets, cores_per_socket, min 16 (max 1 (total / 2)))

let numa_loadgen placement =
  let sockets, cores_per_socket, hrt = numa_geometry () in
  Loadgen.run
    {
      Loadgen.default_config with
      Loadgen.lg_groups = 400;
      lg_sockets = sockets;
      lg_cores_per_socket = cores_per_socket;
      lg_hrt_cores = hrt;
      lg_placement = placement;
    }

(* The demand-paging side, measured directly against the sharded
   allocator: a spread of faulting ROS cores builds a working set either
   from the flat first-fit order (zone 0 first — every remote socket
   pays the distance) or NUMA-locally via [alloc_near], then the access
   cost is priced with the machine's distance-scaled memory model. *)
type numa_mem = { nm_frames : int; nm_remote : int; nm_cycles : int }

let numa_frames_per_core = 64
let numa_accesses_per_frame = 32

let measure_numa_mem ~local =
  let sockets, cores_per_socket, hrt = numa_geometry () in
  let machine = Machine.create ~sockets ~cores_per_socket ~hrt_cores:hrt () in
  let topo = machine.Machine.topo in
  let phys = machine.Machine.phys in
  let cores =
    List.filteri (fun i _ -> i mod 8 = 0) (Mv_hw.Topology.ros_cores topo)
  in
  let frames = ref 0 and remote = ref 0 and cycles = ref 0 in
  List.iter
    (fun core ->
      for _ = 1 to numa_frames_per_core do
        let f =
          if local then Mv_hw.Phys_mem.alloc_near phys ~core Mv_hw.Phys_mem.Ros_region
          else Mv_hw.Phys_mem.alloc phys Mv_hw.Phys_mem.Ros_region
        in
        incr frames;
        if Mv_hw.Phys_mem.zone_of_frame phys f <> Mv_hw.Topology.socket_of topo core
        then incr remote;
        cycles :=
          !cycles
          + (numa_accesses_per_frame * Machine.mem_access_cost machine ~core ~frame:f)
      done)
    cores;
  { nm_frames = !frames; nm_remote = !remote; nm_cycles = !cycles }

(* Memoized: `numa --json` runs the matrix once.  Four independent
   whole-machine cells, so the matrix fans out under --jobs. *)
let numa_cells =
  lazy
    (match
       par_map
         (fun f -> f ())
         [
           (fun () -> `Lg (numa_loadgen Loadgen.Round_robin));
           (fun () -> `Lg (numa_loadgen Loadgen.Affine_socket));
           (fun () -> `Mem (measure_numa_mem ~local:false));
           (fun () -> `Mem (measure_numa_mem ~local:true));
         ]
     with
    | [ `Lg rr; `Lg aff; `Mem flat; `Mem near ] -> (rr, aff, flat, near)
    | _ -> assert false)

let numa_fabric_delta_cycles ~rr ~aff =
  Cycles.of_us (rr.Loadgen.r_p50_us -. aff.Loadgen.r_p50_us)

let numa_bench () =
  let sockets, cores_per_socket, hrt = numa_geometry () in
  section
    (Printf.sprintf
       "NUMA: group-affine vs round-robin placement (%dx%d cores, %d hrt)"
       sockets cores_per_socket hrt);
  let rr, aff, flat, near = Lazy.force numa_cells in
  let t =
    Table.create
      ~headers:[ "placement"; "tput (k/s)"; "p50 (us)"; "p99 (us)"; "p50 (cycles)" ]
  in
  let row name (r : Loadgen.results) =
    Table.add_row t
      [
        name;
        Printf.sprintf "%.1f" (r.Loadgen.r_throughput_cps /. 1e3);
        Printf.sprintf "%.1f" r.Loadgen.r_p50_us;
        Printf.sprintf "%.1f" r.Loadgen.r_p99_us;
        string_of_int (Cycles.of_us r.Loadgen.r_p50_us);
      ]
  in
  row "round-robin" rr;
  row "affine" aff;
  print_string (Table.to_string t);
  printf "fabric p50 sojourn delta: %d cycles (round-robin minus affine)\n"
    (numa_fabric_delta_cycles ~rr ~aff);
  let t2 =
    Table.create ~headers:[ "allocator"; "frames"; "remote"; "memory-path cycles" ]
  in
  let row2 name m =
    Table.add_row t2
      [
        name;
        string_of_int m.nm_frames;
        string_of_int m.nm_remote;
        string_of_int m.nm_cycles;
      ]
  in
  row2 "flat first-fit" flat;
  row2 "alloc_near" near;
  print_string (Table.to_string t2);
  printf "memory-path delta: %d cycles (flat minus local)\n"
    (flat.nm_cycles - near.nm_cycles);
  printf
    "(acceptance: affine placement wins both deltas — no remote frames, lower \
     sync-channel RTT)\n"

(* BENCH_numa.json: both sides of the placement A/B with their cycle
   deltas. *)
let write_numa_json path =
  let sockets, cores_per_socket, hrt = numa_geometry () in
  let rr, aff, flat, near = Lazy.force numa_cells in
  let open Bench_report in
  let lg_side (r : Loadgen.results) =
    Obj
      [
        ("issued", Int r.Loadgen.r_issued);
        ("completed", Int r.Loadgen.r_completed);
        ("throughput_cps", Float (r.Loadgen.r_throughput_cps, 1));
        ("p50_us", Float (r.Loadgen.r_p50_us, 1));
        ("p95_us", Float (r.Loadgen.r_p95_us, 1));
        ("p99_us", Float (r.Loadgen.r_p99_us, 1));
        ("p50_cycles", Int (Cycles.of_us r.Loadgen.r_p50_us));
      ]
  in
  let mem_side m =
    Obj
      [
        ("frames", Int m.nm_frames);
        ("remote_frames", Int m.nm_remote);
        ("memory_path_cycles", Int m.nm_cycles);
      ]
  in
  write ~path ~kind:"multiverse-numa-bench"
    [
      ("topology", Str (Printf.sprintf "%dx%d" sockets cores_per_socket));
      ("hrt_cores", Int hrt);
      ("groups", Int 400);
      ( "fabric",
        Obj
          [
            ("round_robin", lg_side rr);
            ("affine", lg_side aff);
            ( "p50_sojourn_delta_cycles",
              Int (numa_fabric_delta_cycles ~rr ~aff) );
          ] );
      ( "memory_path",
        Obj
          [
            ("flat", mem_side flat);
            ("local", mem_side near);
            ("delta_cycles", Int (flat.nm_cycles - near.nm_cycles));
          ] );
    ];
  printf "wrote %s (fabric delta %d cycles, memory-path delta %d cycles)\n%!"
    path
    (numa_fabric_delta_cycles ~rr ~aff)
    (flat.nm_cycles - near.nm_cycles)

(* ------------------------------------------------------------------ *)
(* Partition: 2-tenant consolidation with dynamic core lending         *)
(* ------------------------------------------------------------------ *)

(* Two HRT tenants on the reference box ([--partitions], default [2;2]):
   tenant A runs a steady open-loop stream sized to overload its own
   cores; tenant B runs short periodic bursts and is otherwise idle.
   With lending ON, tenant B lends its last core to A for every idle gap
   and reclaims it just before the next burst; with lending OFF the core
   idles.  The consolidation story is A's p99 sojourn collapsing while
   B's burst latency stays put (the reclaim returns the core in time). *)

let partition_spec = ref [ 2; 2 ]

let part_jobs_a = 360
let part_inter_a = 3_750 (* cycles between tenant-A arrivals *)
let part_svc_a = 9_000 (* per-job service; 2.4 cores of demand on 2 cores *)
let part_bursts_b = 5
let part_period_b = 300_000 (* tenant-B burst period *)
let part_burst_jobs_b = 8
let part_inter_b = 2_000
let part_svc_b = 6_000
let part_settle_b = 40_000 (* burst start -> lend of the idle core *)

type tenant_res = { tn_completed : int; tn_p50_us : float; tn_p99_us : float }

type partition_res = {
  pt_a : tenant_res;
  pt_b : tenant_res;
  pt_makespan : Cycles.t;
  pt_tput_cps : float;  (* aggregate completions / makespan *)
  pt_lends : int;
  pt_reclaims : int;
}

let measure_partition ~lending =
  let machine = Machine.create ~hrt_parts:!partition_spec () in
  let exec = machine.Machine.exec in
  let topo = machine.Machine.topo in
  let kernel = Mv_ros.Kernel.create machine in
  let hvm = Hvm.create machine ~ros:kernel in
  let ros = Mv_hw.Topology.ros_cores topo in
  let lendc = List.hd (List.rev (Mv_hw.Topology.cores_of topo 2)) in
  let sojourn_a = Mv_obs.Metrics.latency machine.Machine.metrics ~ns:"part" "a" in
  let sojourn_b = Mv_obs.Metrics.latency machine.Machine.metrics ~ns:"part" "b" in
  let completed_a = ref 0 and completed_b = ref 0 in
  let makespan = ref 0 in
  (* Targets re-read the tenant's core list at every arrival, so a lent
     core joins (and leaves) tenant A's rotation automatically. *)
  let spawn_job ~tenant ~cores_of_tenant ~svc i =
    let cores = cores_of_tenant () in
    let target = List.nth cores (i mod List.length cores) in
    let t0 = Exec.local_now exec in
    ignore
      (Exec.spawn exec ~cpu:target
         ~name:(Printf.sprintf "%s-%d" tenant i)
         (fun () ->
           Machine.charge machine svc;
           let now = Exec.local_now exec in
           let sj = float_of_int (now - t0) in
           if tenant = "a" then begin
             Mv_obs.Metrics.observe sojourn_a sj;
             incr completed_a
           end
           else begin
             Mv_obs.Metrics.observe sojourn_b sj;
             incr completed_b
           end;
           if now > !makespan then makespan := now))
  in
  (* Tenant A's open-loop source. *)
  ignore
    (Exec.spawn exec ~cpu:(List.nth ros 1) ~name:"a-src" (fun () ->
         for i = 0 to part_jobs_a - 1 do
           spawn_job ~tenant:"a"
             ~cores_of_tenant:(fun () -> Mv_hw.Topology.cores_of topo 1)
             ~svc:part_svc_a i;
           Exec.sleep exec part_inter_a
         done));
  (* Tenant B's burst source doubles as the lending controller. *)
  ignore
    (Exec.spawn exec ~cpu:(List.hd ros) ~name:"b-src" (fun () ->
         for _ = 1 to part_bursts_b do
           for j = 0 to part_burst_jobs_b - 1 do
             spawn_job ~tenant:"b"
               ~cores_of_tenant:(fun () -> Mv_hw.Topology.cores_of topo 2)
               ~svc:part_svc_b j;
             Exec.sleep exec part_inter_b
           done;
           let in_burst = part_burst_jobs_b * part_inter_b in
           if lending then begin
             Exec.sleep exec (part_settle_b - in_burst);
             Hvm.lend_core hvm ~core:lendc ~dst:1;
             Exec.sleep exec (part_period_b - part_settle_b);
             Hvm.reclaim_core hvm ~core:lendc
           end
           else Exec.sleep exec (part_period_b - in_burst)
         done));
  Sim.run machine.Machine.sim;
  let pct l p = Cycles.to_us (int_of_float (Mv_obs.Metrics.latency_percentile l p)) in
  let tenant l completed =
    { tn_completed = completed; tn_p50_us = pct l 50.0; tn_p99_us = pct l 99.0 }
  in
  {
    pt_a = tenant sojourn_a !completed_a;
    pt_b = tenant sojourn_b !completed_b;
    pt_makespan = !makespan;
    pt_tput_cps =
      float_of_int (!completed_a + !completed_b) /. Cycles.to_sec !makespan;
    pt_lends = Hvm.lends hvm;
    pt_reclaims = Hvm.reclaims hvm;
  }

(* Memoized: `partition --json` runs the A/B once; the two cells are
   independent whole-machine runs, so they fan out under --jobs. *)
let partition_cells =
  lazy
    (match par_map (fun lending -> measure_partition ~lending) [ false; true ] with
    | [ off; on ] -> (off, on)
    | _ -> assert false)

let partition_bench () =
  section
    (Printf.sprintf
       "Partition: 2-tenant consolidation (hrt_parts [%s]), core lending on vs off"
       (String.concat ";" (List.map string_of_int !partition_spec)));
  let off, on = Lazy.force partition_cells in
  let t =
    Table.create
      ~headers:
        [ "lending"; "tenant"; "completed"; "p50 (us)"; "p99 (us)"; "agg tput (k/s)" ]
  in
  let rows mode r =
    let row name (tn : tenant_res) agg =
      Table.add_row t
        [
          mode;
          name;
          string_of_int tn.tn_completed;
          Printf.sprintf "%.1f" tn.tn_p50_us;
          Printf.sprintf "%.1f" tn.tn_p99_us;
          agg;
        ]
    in
    row "A (steady)" r.pt_a (Printf.sprintf "%.1f" (r.pt_tput_cps /. 1e3));
    row "B (bursty)" r.pt_b ""
  in
  rows "off" off;
  rows "on" on;
  print_string (Table.to_string t);
  printf "lends/reclaims with lending on: %d/%d\n" on.pt_lends on.pt_reclaims;
  printf
    "(acceptance: lending collapses tenant A's p99 sojourn and raises aggregate \
     throughput; tenant B's burst p99 is unchanged — the reclaim beats the next \
     burst)\n"

(* BENCH_partition.json: both sides of the lending A/B. *)
let write_partition_json path =
  let off, on = Lazy.force partition_cells in
  let open Bench_report in
  let tenant (tn : tenant_res) =
    Obj
      [
        ("completed", Int tn.tn_completed);
        ("p50_us", Float (tn.tn_p50_us, 1));
        ("p99_us", Float (tn.tn_p99_us, 1));
      ]
  in
  let side r =
    Obj
      [
        ("tenant_a", tenant r.pt_a);
        ("tenant_b", tenant r.pt_b);
        ("makespan_cycles", Int r.pt_makespan);
        ("aggregate_throughput_cps", Float (r.pt_tput_cps, 1));
        ("lends", Int r.pt_lends);
        ("reclaims", Int r.pt_reclaims);
      ]
  in
  write ~path ~kind:"multiverse-partition-bench"
    [
      ( "partitions",
        List (List.map (fun n -> Int n) !partition_spec) );
      ("jobs_a", Int part_jobs_a);
      ("service_cycles_a", Int part_svc_a);
      ("interarrival_cycles_a", Int part_inter_a);
      ("bursts_b", Int part_bursts_b);
      ("burst_jobs_b", Int part_burst_jobs_b);
      ("service_cycles_b", Int part_svc_b);
      ("burst_period_cycles", Int part_period_b);
      ("lending_off", side off);
      ("lending_on", side on);
    ];
  printf "wrote %s (tenant A p99: off %.0fus vs on %.0fus)\n%!" path
    off.pt_a.tn_p99_us on.pt_a.tn_p99_us

(* ------------------------------------------------------------------ *)
(* Host: wall-clock cost of the engine itself (events/sec, words/event)*)
(* ------------------------------------------------------------------ *)

(* Unlike every other section, these numbers are HOST-side: how fast the
   OCaml engine chews through simulated events and how much it allocates
   per event.  The simulated-cycle outputs of the same workloads are part
   of the golden surface and must not move; the host wall-clock and the
   GC words are exactly what hot-loop work is allowed to change.  Cells
   run sequentially (never under --jobs): Gc.quick_stat is per-domain and
   a concurrent cell would pollute the deltas. *)
type host_cell = {
  ho_name : string;
  ho_events : int;  (* simulated events processed *)
  ho_sim_cycles : int;  (* simulated makespan: deterministic, golden-adjacent *)
  ho_wall_s : float;
  ho_minor_words : float;
  ho_promoted_words : float;
  ho_major_words : float;
}

let measure_host_cell name f =
  Gc.full_major ();
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let events, sim_cycles = f () in
  let t1 = Unix.gettimeofday () in
  let s1 = Gc.quick_stat () in
  {
    ho_name = name;
    ho_events = events;
    ho_sim_cycles = sim_cycles;
    ho_wall_s = t1 -. t0;
    ho_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
    ho_promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
    ho_major_words = s1.Gc.major_words -. s0.Gc.major_words;
  }

let ho_events_per_sec c =
  if c.ho_wall_s <= 0.0 then 0.0 else float_of_int c.ho_events /. c.ho_wall_s

let ho_minor_words_per_event c =
  if c.ho_events = 0 then 0.0 else c.ho_minor_words /. float_of_int c.ho_events

(* --trace-limit N: bounded trace retention for the host cells' machines
   (exercises the ring store; simulated output is unaffected because the
   host cells run untraced either way). *)
let host_trace_limit : int option ref = ref None

(* Cell 1: the standard 1000-group scale run (the scale bench's base
   config at one mid-curve load point, admission off). *)
let host_scale_offered = 400_000.0

let host_scale_cell () =
  measure_host_cell "scale-1000-groups" (fun () ->
      let r =
        Loadgen.run
          {
            Loadgen.default_config with
            Loadgen.lg_groups = scale_groups;
            lg_calls_per_group = 16;
            lg_workers_per_group = 16;
            lg_arrival = Loadgen.Poisson;
            lg_offered_cps = host_scale_offered;
            lg_trace_limit = !host_trace_limit;
          }
      in
      (r.Loadgen.r_events, r.Loadgen.r_makespan))

(* Cell 2: the 16k-fiber dispatch stress — thousands of Ready fibers
   yielding on few cores, the pure executor/event-queue path with no
   fabric or memory model in the way (the shape that used to go O(n^2)
   before the one-armed-dispatch fix). *)
let host_stress_fibers = 16_384
let host_stress_yields = 4

let host_stress_cell () =
  measure_host_cell "dispatch-16k-fibers" (fun () ->
      let machine = Machine.create ?trace_limit:!host_trace_limit () in
      let exec = machine.Machine.exec in
      let ros = Array.of_list (Mv_hw.Topology.ros_cores machine.Machine.topo) in
      let nros = Array.length ros in
      for i = 0 to host_stress_fibers - 1 do
        ignore
          (Exec.spawn exec ~cpu:ros.(i mod nros)
             ~name:(Printf.sprintf "stress-%d" i)
             (fun () ->
               for _ = 1 to host_stress_yields do
                 Machine.charge machine 100;
                 Exec.yield exec
               done))
      done;
      Sim.run machine.Machine.sim;
      (Sim.events_processed machine.Machine.sim, Sim.now machine.Machine.sim))

(* Memoized so `host --json` measures once. *)
let host_cells = lazy [ host_scale_cell (); host_stress_cell () ]

let host_bench () =
  section "Host: engine events/sec and GC words/event (wall-clock, not simulated)";
  let cells = Lazy.force host_cells in
  let t =
    Table.create
      ~headers:
        [ "workload"; "events"; "wall (s)"; "events/sec"; "minor w/event"; "promoted w/event" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.ho_name;
          string_of_int c.ho_events;
          Printf.sprintf "%.3f" c.ho_wall_s;
          Printf.sprintf "%.0f" (ho_events_per_sec c);
          Printf.sprintf "%.1f" (ho_minor_words_per_event c);
          Printf.sprintf "%.2f"
            (if c.ho_events = 0 then 0.0
             else c.ho_promoted_words /. float_of_int c.ho_events);
        ])
    cells;
  print_string (Table.to_string t);
  printf
    "(simulated cycles are pinned by the golden surface; wall-clock and words/event\n\
    \ are the knobs host-perf work is allowed to move)\n"

(* BENCH_host.json.  Wall-clock fields are machine-dependent noise; the
   CI allocation guard keys on minor_words_per_event only. *)
let write_host_json path =
  let cells = Lazy.force host_cells in
  let open Bench_report in
  let cell c =
    Obj
      [
        ("events", Int c.ho_events);
        ("sim_cycles", Int c.ho_sim_cycles);
        ("wall_s", Float (c.ho_wall_s, 4));
        ("events_per_sec", Float (ho_events_per_sec c, 0));
        ("minor_words_per_event", Float (ho_minor_words_per_event c, 2));
        ("minor_words", Float (c.ho_minor_words, 0));
        ("promoted_words", Float (c.ho_promoted_words, 0));
        ("major_words", Float (c.ho_major_words, 0));
      ]
  in
  write ~path ~kind:"multiverse-host-bench"
    [
      ( "scale",
        Obj
          [
            ("groups", Int scale_groups);
            ("calls_per_group", Int 16);
            ("offered_cps", Float (host_scale_offered, 0));
            ("cell", cell (List.nth cells 0));
          ] );
      ( "dispatch_stress",
        Obj
          [
            ("fibers", Int host_stress_fibers);
            ("yields_per_fiber", Int host_stress_yields);
            ("cell", cell (List.nth cells 1));
          ] );
    ];
  let c = List.nth cells 0 in
  printf "wrote %s (scale: %.0f events/sec, %.1f minor words/event)\n%!" path
    (ho_events_per_sec c) (ho_minor_words_per_event c)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator's own hot paths           *)
(* ------------------------------------------------------------------ *)

let microbench () =
  section "Microbenchmarks (host-side, Bechamel): simulator hot paths";
  let open Bechamel in
  let open Toolkit in
  let pt = Mv_hw.Page_table.create () in
  let flags = Mv_hw.Page_table.(f_present lor f_writable lor f_user) in
  for i = 0 to 1023 do
    Mv_hw.Page_table.map pt (i * 4096) ~frame:i ~flags
  done;
  let tlb = Mv_hw.Tlb.create () in
  let pte = Mv_hw.Page_table.{ frame = 1; pte_flags = flags } in
  Mv_hw.Tlb.fill tlb ~page:5 pte;
  let q = Mv_engine.Event_queue.create () in
  let tests =
    [
      Test.make ~name:"page_table.walk" (Staged.stage (fun () -> Mv_hw.Page_table.walk pt 0x5000));
      Test.make ~name:"page_table.map+unmap"
        (Staged.stage (fun () ->
             Mv_hw.Page_table.map pt 0x7f0000 ~frame:9 ~flags;
             ignore (Mv_hw.Page_table.unmap pt 0x7f0000)));
      Test.make ~name:"tlb.lookup" (Staged.stage (fun () -> Mv_hw.Tlb.lookup tlb ~page:5));
      Test.make ~name:"event_queue.push+pop"
        (Staged.stage (fun () ->
             Mv_engine.Event_queue.push q ~time:5 ();
             ignore (Mv_engine.Event_queue.pop q)));
      Test.make ~name:"sexp.parse"
        (Staged.stage (fun () -> Mv_racket.Sexp.parse_all "(define (f x) (+ x 1))"));
    ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> printf "%-24s %10.1f ns/op\n" (Test.Elt.name elt) t
          | _ -> printf "%-24s (no estimate)\n" (Test.Elt.name elt))
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig2", fig2);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fabric", fabric_bench);
    ("scale", scale_bench);
    ("numa", numa_bench);
    ("partition", partition_bench);
    ("mempath", mempath);
    ("host", host_bench);
    ("ablation_symcache", ablation_symcache);
    ("ablation_channel", ablation_channel);
    ("ablation_porting", ablation_porting);
    ("ablation_wp", ablation_wp);
    ("native_model", native_model);
    ("microbench", microbench);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --json additionally writes machine-readable metrics next to the text
     output (CI uploads them as artifacts); it composes with section
     names: the fabric file is written when the fabric section is in
     scope, the mempath file when mempath is.  With no section names,
     --json writes both and skips the text sections. *)
  let json = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--json") args in
  (* --jobs N: worker domains for the measurement matrices.  Output is
     identical at any N. *)
  let rec take_jobs acc = function
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j
        | _ ->
            prerr_endline ("bench: bad --jobs " ^ n);
            exit 2);
        take_jobs acc rest
    (* --topology SxC: geometry for the numa section (default 4x32). *)
    | "--topology" :: s :: rest ->
        (match String.index_opt s 'x' with
        | Some i -> (
            let a = String.sub s 0 i
            and b = String.sub s (i + 1) (String.length s - i - 1) in
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some sk, Some cp when sk > 0 && cp > 0 && sk * cp >= 2 ->
                numa_topology := (sk, cp)
            | _ ->
                prerr_endline
                  ("bench: bad --topology " ^ s ^ " (want SOCKETSxCORES, e.g. 4x32)");
                exit 2)
        | None ->
            prerr_endline
              ("bench: bad --topology " ^ s ^ " (want SOCKETSxCORES, e.g. 4x32)");
            exit 2);
        take_jobs acc rest
    (* --partitions SPEC: HRT partition geometry for the partition
       section (comma-separated core counts, default 2,2; the last
       partition must keep a core when it lends, so every entry must be
       at least 1 and the lending tenant's at least 2). *)
    | "--partitions" :: s :: rest ->
        let parts =
          try List.map int_of_string (String.split_on_char ',' s) with _ -> []
        in
        (match parts with
        | _ :: _ :: _ when List.for_all (fun n -> n > 0) parts ->
            partition_spec := parts
        | _ ->
            prerr_endline
              ("bench: bad --partitions " ^ s
             ^ " (want two or more comma-separated positive core counts, e.g. 2,2)");
            exit 2);
        take_jobs acc rest
    (* --trace-limit N: bounded trace retention on the host section's
       machines (0 retains nothing). *)
    | "--trace-limit" :: n :: rest ->
        (match int_of_string_opt n with
        | Some l when l >= 0 -> host_trace_limit := Some l
        | _ ->
            prerr_endline ("bench: bad --trace-limit " ^ n);
            exit 2);
        take_jobs acc rest
    | a :: rest -> take_jobs (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = take_jobs [] args in
  let wants name = args = [] || List.mem name args in
  (match args with
  | [ "--list" ] -> List.iter (fun (name, _) -> printf "%s\n" name) sections
  | [] ->
      if not json then begin
        printf "Multiverse reproduction benchmarks (all sections)\n";
        printf "machine: 2 sockets x 4 cores @ 2.2 GHz (simulated)\n";
        List.iter (fun (_, f) -> f ()) sections
      end
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> f ()
          | None -> printf "unknown section %s (try --list)\n" name)
        names);
  if json && (wants "fig2" || wants "fabric") then write_fabric_json "BENCH_fabric.json";
  if json && wants "mempath" then write_mempath_json "BENCH_mempath.json";
  if json && wants "scale" then write_scale_json "BENCH_scale.json";
  if json && wants "numa" then write_numa_json "BENCH_numa.json";
  if json && wants "partition" then write_partition_json "BENCH_partition.json";
  if json && wants "host" then write_host_json "BENCH_host.json"
