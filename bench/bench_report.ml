(* Shared emitter for the machine-readable BENCH_*.json artifacts.

   Every report is one JSON object whose first field is
   "schema": "<kind>/<schema_version>" — the version constant lives here
   once, so all BENCH files move in lockstep when the shape changes.
   The JSON is hand-rolled (the image carries no JSON library):
   deterministic field order, two-space indent. *)

type value =
  | Int of int
  | Float of float * int  (* value, decimal places *)
  | Str of string
  | Obj of (string * value) list
  | List of value list

let schema_version = 2

let rec emit buf indent = function
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float (v, dp) -> Buffer.add_string buf (Printf.sprintf "%.*f" dp v)
  | Str s -> Buffer.add_string buf (Printf.sprintf "%S" s)
  | Obj fields ->
      Buffer.add_string buf "{\n";
      let pad = String.make (indent + 2) ' ' in
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf (Printf.sprintf "%S: " k);
          emit buf (indent + 2) v)
        fields;
      Buffer.add_string buf "\n";
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_string buf "}"
  | List items ->
      Buffer.add_string buf "[\n";
      let pad = String.make (indent + 2) ' ' in
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          emit buf (indent + 2) v)
        items;
      Buffer.add_string buf "\n";
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_string buf "]"

let render ~kind fields =
  let buf = Buffer.create 1024 in
  let schema = Printf.sprintf "%s/%d" kind schema_version in
  emit buf 0 (Obj (("schema", Str schema) :: fields));
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write ~path ~kind fields =
  let oc = open_out path in
  output_string oc (render ~kind fields);
  close_out oc
