(* mvtrace: run a workload with event tracing and analyze its Linux-ABI
   interactions and ROS<->HRT crossings — the analysis a developer does
   before deciding what to port to the AeroKernel (the paper's
   incremental model: "identify hot spots in the legacy interface").

     dune exec bin/mvtrace.exe -- summary binary-tree-2 [n] [--mode multiverse]
     dune exec bin/mvtrace.exe -- critical-path binary-tree-2 --mode multiverse
     dune exec bin/mvtrace.exe -- export-chrome fasta 500 --out fasta.trace.json
     dune exec bin/mvtrace.exe -- export-folded binary-tree-2 --mode virtual

   Bare `mvtrace BENCH [N] [--mode MODE]` runs `summary`. *)

open Multiverse
module Args = Mv_util.Args
module Machine = Mv_engine.Machine
module Tracer = Mv_obs.Tracer

let modes = [ "native"; "virtual"; "multiverse" ]

let run_traced ~bench ~n ~mode =
  match Mv_workloads.Benchmarks.find bench with
  | exception Not_found ->
      Printf.eprintf "mvtrace: unknown benchmark %S (see multiverse_run --list)\n" bench;
      exit 2
  | b ->
      let n = Option.value n ~default:b.Mv_workloads.Benchmarks.b_test_n in
      let prog = Mv_workloads.Benchmarks.program b ~n in
      let rs =
        match mode with
        | "native" -> Toolchain.run_native ~trace:true prog
        | "virtual" -> Toolchain.run_virtual ~trace:true prog
        | "multiverse" -> Toolchain.run_multiverse ~trace:true (Toolchain.hybridize prog)
        | m ->
            Printf.eprintf "mvtrace: unknown mode %S (%s)\n" m (String.concat " | " modes);
            exit 2
      in
      (rs, n)

(* --- shared CLI pieces --- *)

let bench_arg =
  Args.pos Args.string ~index:0 ~docv:"BENCH"
    ~doc:"Benchmark name (default binary-tree-2)."

let n_arg = Args.pos Args.int ~index:1 ~docv:"N" ~doc:"Problem size (integer)."

let mode_arg =
  Args.opt Args.string ~default:"native" ~names:[ "mode"; "m" ] ~docv:"MODE"
    ~doc:"native | virtual | multiverse."

let with_bench bench n mode f =
  let bench = Option.value bench ~default:"binary-tree-2" in
  let rs, n = run_traced ~bench ~n ~mode in
  f ~bench ~n ~mode rs

(* --- summary (the legacy mvtrace output) --- *)

let summary bench n mode raw =
  with_bench bench n mode @@ fun ~bench ~n ~mode rs ->
  Printf.printf "tracing %s (n=%d) under %s...\n%!" bench n mode;
  let records =
    Mv_engine.Trace.records_in rs.Toolchain.rs_machine.Machine.trace
      ~category:"pagefault"
  in
  Printf.printf "\nwall %.4f s | %d syscalls | %d page faults (%d traced)\n\n"
    (Toolchain.wall_seconds rs) (Toolchain.total_syscalls rs)
    rs.Toolchain.rs_rusage.Mv_ros.Rusage.minflt (List.length records);
  (* Fault histogram by VMA kind: which memory is faulting? *)
  let by_kind = Mv_util.Histogram.create () in
  let writes = ref 0 in
  List.iter
    (fun r ->
      let msg = r.Mv_engine.Trace.message in
      (match String.index_opt msg '=' with
      | Some _ -> (
          (* "pid=1 vma=<kind>+<off> w=<bool>" *)
          match String.split_on_char ' ' msg with
          | [ _pid; vma; w ] ->
              let kind =
                match String.split_on_char '=' vma with
                | [ _; v ] -> (
                    match String.index_opt v '+' with
                    | Some i -> String.sub v 0 i
                    | None -> v)
                | _ -> "?"
              in
              Mv_util.Histogram.incr by_kind kind;
              if w = "w=true" then incr writes
          | _ -> Mv_util.Histogram.incr by_kind "?")
      | None -> Mv_util.Histogram.incr by_kind "?"))
    records;
  Printf.printf "page faults by memory region (porting targets on top):\n";
  Format.printf "%a@." (Mv_util.Histogram.pp_bars ~width:36) by_kind;
  Printf.printf "writes: %d / reads: %d\n\n" !writes (List.length records - !writes);
  Printf.printf "system calls:\n";
  Format.printf "%a@." (Mv_util.Histogram.pp_bars ~width:36) rs.Toolchain.rs_syscalls;
  if raw > 0 then begin
    Printf.printf "\nfirst %d fault records:\n" raw;
    List.iteri
      (fun i r ->
        if i < raw then
          Printf.printf "  [%12d cyc] %s\n" r.Mv_engine.Trace.at
            r.Mv_engine.Trace.message)
      records
  end;
  0

(* --- critical-path: per-crossing cycle attribution --- *)

let critical_path bench n mode =
  with_bench bench n mode @@ fun ~bench ~n ~mode rs ->
  Printf.printf "critical path: %s (n=%d) under %s\n\n%!" bench n mode;
  let obs = rs.Toolchain.rs_machine.Machine.obs in
  let report = Mv_obs.Critical_path.compute (Tracer.spans obs) in
  if report.Mv_obs.Critical_path.rows = [] then begin
    Printf.printf "no ROS<->HRT crossings recorded (mode %s)\n" mode;
    0
  end
  else begin
    Format.printf "%a@." Mv_obs.Critical_path.pp report;
    0
  end

(* --- exporters --- *)

let write_output ~out ~default data =
  let path = Option.value out ~default in
  if path = "-" then begin
    print_string data;
    0
  end
  else begin
    let oc = open_out path in
    output_string oc data;
    close_out oc;
    Printf.printf "wrote %s (%d bytes)\n" path (String.length data);
    0
  end

let export_chrome bench n mode out =
  with_bench bench n mode @@ fun ~bench ~n:_ ~mode rs ->
  let machine = rs.Toolchain.rs_machine in
  let data =
    Mv_obs.Export.chrome
      ~process_name:(Printf.sprintf "%s/%s" bench mode)
      ~metrics:machine.Machine.metrics machine.Machine.obs
  in
  write_output ~out ~default:(Printf.sprintf "mvtrace-%s-%s.json" bench mode) data

let export_folded bench n mode out =
  with_bench bench n mode @@ fun ~bench ~n:_ ~mode rs ->
  let data = Mv_obs.Export.folded rs.Toolchain.rs_machine.Machine.obs in
  write_output ~out ~default:(Printf.sprintf "mvtrace-%s-%s.folded" bench mode) data

(* --- wiring --- *)

let out_arg =
  Args.opt_opt Args.string ~names:[ "out"; "o" ] ~docv:"FILE"
    ~doc:"Output file ('-' for stdout)."

let () =
  let open Args in
  let base term = const term $ bench_arg $ n_arg $ mode_arg in
  let summary_cmd =
    cmd "summary" ~doc:"Syscall/page-fault porting analysis (the default)"
      (base summary
      $ opt int ~default:0 ~names:[ "raw" ] ~docv:"K"
          ~doc:"Also print the first K raw fault records.")
      (fun code -> code)
  in
  let critical_cmd =
    cmd "critical-path"
      ~doc:"Attribute forwarded-crossing cycles to guest/transport/service/reply"
      (base critical_path) (fun code -> code)
  in
  let chrome_cmd =
    cmd "export-chrome" ~doc:"Write a Chrome trace-event JSON of the run"
      (base export_chrome $ out_arg)
      (fun code -> code)
  in
  let folded_cmd =
    cmd "export-folded" ~doc:"Write collapsed flamegraph stacks of the run"
      (base export_folded $ out_arg)
      (fun code -> code)
  in
  exit
    (run_group ~name:"mvtrace"
       ~doc:
         "Trace a workload on the Multiverse simulation and analyze where \
          its time and Linux-ABI interactions go"
       ~default:"summary"
       [ summary_cmd; critical_cmd; chrome_cmd; folded_cmd ]
       (List.tl (Array.to_list Sys.argv)))
