(* multiverse_run: run a benchmark (or a Scheme file) under a chosen
   execution mode on the simulated machine, and report the paper's
   metrics.

   Examples:
     dune exec bin/multiverse_run.exe -- --bench binary-tree-2 --mode multiverse
     dune exec bin/multiverse_run.exe -- --bench n-body -n 500 --mode native --stats
     dune exec bin/multiverse_run.exe -- --file prog.scm --mode multiverse --porting full
     dune exec bin/multiverse_run.exe -- --list *)

open Multiverse
open Cmdliner
module Fault_plan = Mv_faults.Fault_plan

let parse_fault_sites spec =
  match Fault_plan.sites_of_string spec with
  | Ok sites -> sites
  | Error msg -> failwith msg

let run_one ~mode ~porting ~sync_channel ~symbol_cache ~faults ~huge_pages ~stats ~quiet prog =
  let options =
    {
      Toolchain.mv_channel =
        (if sync_channel then Mv_hvm.Event_channel.Sync else Mv_hvm.Event_channel.Async);
      mv_symbol_cache = symbol_cache;
      mv_porting =
        (match porting with
        | "none" -> Runtime.no_porting
        | "mmap" -> { Runtime.port_mmap = true; port_signals = false; port_faults = false }
        | "faults" -> { Runtime.port_mmap = true; port_signals = false; port_faults = true }
        | "full" -> Runtime.full_porting
        | other -> failwith ("unknown porting level: " ^ other));
      mv_faults = faults;
      mv_huge_pages = huge_pages;
    }
  in
  (* A fault run keeps the trace on so the injected faults and the
     resilience reactions can be shown afterwards. *)
  let trace = Fault_plan.enabled faults in
  let rs =
    match mode with
    | "native" -> Toolchain.run_native ~huge_pages prog
    | "virtual" -> Toolchain.run_virtual ~huge_pages prog
    | "multiverse" -> Toolchain.run_multiverse ~trace ~options (Toolchain.hybridize prog)
    | other -> failwith ("unknown mode: " ^ other)
  in
  if not quiet then print_string rs.Toolchain.rs_stdout;
  Printf.eprintf "\n[%s] wall %.4f s | %d syscalls | %d page faults | maxrss %d KB | exit %d\n"
    rs.Toolchain.rs_mode (Toolchain.wall_seconds rs) (Toolchain.total_syscalls rs)
    rs.Toolchain.rs_rusage.Mv_ros.Rusage.minflt rs.Toolchain.rs_rusage.Mv_ros.Rusage.maxrss_kb
    rs.Toolchain.rs_exit_code;
  (match rs.Toolchain.rs_runtime with
  | Some rt ->
      let nk = Runtime.nk rt in
      Printf.eprintf
        "[multiverse] groups %d | forwarded: %d syscalls, %d faults | re-merges %d | local faults %d\n"
        (Runtime.groups_created rt)
        (Mv_aerokernel.Nautilus.stats_syscalls_forwarded nk)
        (Mv_aerokernel.Nautilus.stats_faults_forwarded nk)
        (Mv_aerokernel.Nautilus.stats_remerges nk)
        (Runtime.faults_serviced_locally rt);
      if Fault_plan.enabled faults then begin
        Printf.eprintf "[faults] %s | retries %d | fallbacks %d | respawns %d | reroutes %d\n"
          (Format.asprintf "%a" Fault_plan.pp_summary faults)
          (Runtime.retries rt) (Runtime.fallbacks rt) (Runtime.respawns rt)
          (Runtime.reroutes rt);
        let trace = rs.Toolchain.rs_machine.Mv_engine.Machine.trace in
        let dump category =
          List.iter
            (fun r ->
              Printf.eprintf "  %12d [%s] %s\n" r.Mv_engine.Trace.at
                r.Mv_engine.Trace.category r.Mv_engine.Trace.message)
            (Mv_engine.Trace.records_in trace ~category)
        in
        Printf.eprintf "[fault trace]\n";
        dump "fault";
        Printf.eprintf "[resilience trace]\n";
        dump "resilience"
      end
  | None -> ());
  if stats then begin
    Printf.eprintf "\nsystem calls:\n";
    List.iter
      (fun (name, count) -> Printf.eprintf "  %-20s %8d\n" name count)
      (Mv_util.Histogram.to_sorted_list rs.Toolchain.rs_syscalls)
  end

let main bench file n mode porting sync_channel symbol_cache fault_seed fault_rate fault_sites
    no_huge_pages stats quiet list_benches =
  let huge_pages = not no_huge_pages in
  match
    match fault_seed with
    | Some seed -> (
        if mode <> "multiverse" then Error "fault injection requires --mode multiverse"
        else
          try Ok (Fault_plan.create ~seed ~rate:fault_rate ~sites:(parse_fault_sites fault_sites) ())
          with Failure msg | Invalid_argument msg -> Error msg)
    | None ->
        if fault_rate <> 0.05 || fault_sites <> "all" then
          Error "--fault-rate/--fault-sites have no effect without --fault-seed"
        else Ok Fault_plan.none
  with
  | Error msg -> `Error (false, msg)
  | Ok faults ->
  if list_benches then begin
    List.iter
      (fun b ->
        Printf.printf "%-16s (test n=%d, bench n=%d)\n" b.Mv_workloads.Benchmarks.b_name
          b.Mv_workloads.Benchmarks.b_test_n b.Mv_workloads.Benchmarks.b_bench_n)
      Mv_workloads.Benchmarks.all;
    `Ok ()
  end
  else
    match (bench, file) with
    | Some name, _ -> (
        match Mv_workloads.Benchmarks.find name with
        | b ->
            let n = match n with Some n -> n | None -> b.Mv_workloads.Benchmarks.b_test_n in
            run_one ~mode ~porting ~sync_channel ~symbol_cache ~faults ~huge_pages ~stats ~quiet
              (Mv_workloads.Benchmarks.program b ~n);
            `Ok ()
        | exception Not_found -> `Error (false, "unknown benchmark " ^ name))
    | None, Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let src = really_input_string ic len in
        close_in ic;
        let prog =
          {
            Toolchain.prog_name = Filename.basename path;
            prog_main =
              (fun env ->
                let engine = Mv_racket.Engine.start env in
                Mv_racket.Engine.run_program engine src);
          }
        in
        run_one ~mode ~porting ~sync_channel ~symbol_cache ~faults ~huge_pages ~stats ~quiet prog;
        `Ok ()
    | None, None -> `Error (true, "pass --bench NAME or --file PROG.scm (or --list)")

let cmd =
  let bench =
    Arg.(value & opt (some string) None & info [ "bench"; "b" ] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"FILE" ~doc:"Scheme source file to run through the Racket engine.")
  in
  let n = Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Problem size.") in
  let mode =
    Arg.(value & opt string "native" & info [ "mode"; "m" ] ~docv:"MODE" ~doc:"native | virtual | multiverse.")
  in
  let porting =
    Arg.(value & opt string "none" & info [ "porting" ] ~docv:"LEVEL" ~doc:"none | mmap | faults | full (multiverse only).")
  in
  let sync_channel = Arg.(value & flag & info [ "sync-channel" ] ~doc:"Use synchronous (polling) event channels.") in
  let symbol_cache = Arg.(value & flag & info [ "symbol-cache" ] ~doc:"Enable the override symbol cache.") in
  let fault_seed =
    Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED"
         ~doc:"Arm deterministic fault injection with this seed (multiverse only).")
  in
  let fault_rate =
    Arg.(value & opt float 0.05 & info [ "fault-rate" ] ~docv:"RATE"
         ~doc:"Per-site injection probability, 0.0-1.0 (with --fault-seed).")
  in
  let fault_sites =
    Arg.(value & opt string "all" & info [ "fault-sites" ] ~docv:"SITES"
         ~doc:"Comma-separated fault sites to arm, or 'all': chan-drop, chan-delay, chan-dup, chan-corrupt, partner-kill, boot-stall, syscall-eagain, syscall-enosys.")
  in
  let no_huge_pages =
    Arg.(value & flag & info [ "no-huge-pages" ]
         ~doc:"Disable the huge-page memory path (4 KiB mappings only).")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print the per-syscall histogram.") in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the program's stdout.") in
  let list_benches = Arg.(value & flag & info [ "list" ] ~doc:"List benchmarks.") in
  let term =
    Term.(
      ret
        (const main $ bench $ file $ n $ mode $ porting $ sync_channel $ symbol_cache
       $ fault_seed $ fault_rate $ fault_sites $ no_huge_pages $ stats $ quiet $ list_benches))
  in
  Cmd.v (Cmd.info "multiverse_run" ~doc:"Run workloads on the Multiverse simulation") term

let () = exit (Cmd.eval cmd)
