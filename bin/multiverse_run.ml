(* multiverse_run: run a benchmark (or a Scheme file) under a chosen
   execution mode on the simulated machine, and report the paper's
   metrics.

   Examples:
     dune exec bin/multiverse_run.exe -- --bench binary-tree-2 --mode multiverse
     dune exec bin/multiverse_run.exe -- --bench n-body -n 500 --mode native --stats
     dune exec bin/multiverse_run.exe -- --file prog.scm --mode multiverse --porting full
     dune exec bin/multiverse_run.exe -- --list *)

open Multiverse
module Args = Mv_util.Args
module Fault_plan = Mv_faults.Fault_plan

let parse_fault_sites spec =
  match Fault_plan.sites_of_string spec with
  | Ok sites -> sites
  | Error msg -> failwith msg

let options_of ~porting ~sync_channel ~symbol_cache ~faults ~huge_pages ~topology ~hrt_cores
    ~partitions ~placement ~work_stealing ~trace_limit =
  let sockets, cores_per_socket = topology in
  {
    Toolchain.mv_channel =
      (if sync_channel then Mv_hvm.Event_channel.Sync else Mv_hvm.Event_channel.Async);
    mv_symbol_cache = symbol_cache;
    mv_porting =
      (match porting with
      | "none" -> Runtime.no_porting
      | "mmap" -> { Runtime.port_mmap = true; port_signals = false; port_faults = false }
      | "faults" -> { Runtime.port_mmap = true; port_signals = false; port_faults = true }
      | "full" -> Runtime.full_porting
      | other -> failwith ("unknown porting level: " ^ other));
    mv_faults = faults;
    mv_huge_pages = huge_pages;
    mv_sockets = sockets;
    mv_cores_per_socket = cores_per_socket;
    mv_hrt_cores = hrt_cores;
    mv_partitions = partitions;
    mv_placement = placement;
    mv_work_stealing = work_stealing;
    mv_trace_limit = trace_limit;
  }

let run_one ~mode ~porting ~sync_channel ~symbol_cache ~faults ~huge_pages ~topology
    ~hrt_cores ~partitions ~placement ~work_stealing ~trace_limit ~stats ~quiet prog =
  let options =
    options_of ~porting ~sync_channel ~symbol_cache ~faults ~huge_pages ~topology ~hrt_cores
      ~partitions ~placement ~work_stealing ~trace_limit
  in
  (* A fault run keeps the trace on so the injected faults and the
     resilience reactions can be shown afterwards. *)
  let trace = Fault_plan.enabled faults in
  let rs =
    match mode with
    | "native" -> Toolchain.run_native ~huge_pages ~topology ~hrt_cores ?trace_limit prog
    | "virtual" -> Toolchain.run_virtual ~huge_pages ~topology ~hrt_cores ?trace_limit prog
    | "multiverse" -> Toolchain.run_multiverse ~trace ~options (Toolchain.hybridize prog)
    | other -> failwith ("unknown mode: " ^ other)
  in
  if not quiet then print_string rs.Toolchain.rs_stdout;
  Printf.eprintf "\n[%s] wall %.4f s | %d syscalls | %d page faults | maxrss %d KB | exit %d\n"
    rs.Toolchain.rs_mode (Toolchain.wall_seconds rs) (Toolchain.total_syscalls rs)
    rs.Toolchain.rs_rusage.Mv_ros.Rusage.minflt rs.Toolchain.rs_rusage.Mv_ros.Rusage.maxrss_kb
    rs.Toolchain.rs_exit_code;
  (match rs.Toolchain.rs_runtime with
  | Some rt ->
      let nk = Runtime.nk rt in
      Printf.eprintf
        "[multiverse] groups %d | forwarded: %d syscalls, %d faults | re-merges %d | local faults %d\n"
        (Runtime.groups_created rt)
        (Mv_aerokernel.Nautilus.stats_syscalls_forwarded nk)
        (Mv_aerokernel.Nautilus.stats_faults_forwarded nk)
        (Mv_aerokernel.Nautilus.stats_remerges nk)
        (Runtime.faults_serviced_locally rt);
      if Fault_plan.enabled faults then begin
        Printf.eprintf "[faults] %s | retries %d | fallbacks %d | respawns %d | reroutes %d\n"
          (Format.asprintf "%a" Fault_plan.pp_summary faults)
          (Runtime.retries rt) (Runtime.fallbacks rt) (Runtime.respawns rt)
          (Runtime.reroutes rt);
        let trace = rs.Toolchain.rs_machine.Mv_engine.Machine.trace in
        let dump category =
          List.iter
            (fun r ->
              Printf.eprintf "  %12d [%s] %s\n" r.Mv_engine.Trace.at
                r.Mv_engine.Trace.category r.Mv_engine.Trace.message)
            (Mv_engine.Trace.records_in trace ~category)
        in
        Printf.eprintf "[fault trace]\n";
        dump "fault";
        Printf.eprintf "[resilience trace]\n";
        dump "resilience"
      end
  | None -> ());
  if stats then begin
    Printf.eprintf "\nsystem calls:\n";
    List.iter
      (fun (name, count) -> Printf.eprintf "  %-20s %8d\n" name count)
      (Mv_util.Histogram.to_sorted_list rs.Toolchain.rs_syscalls)
  end

let usage_error msg =
  prerr_endline ("multiverse_run: " ^ msg);
  2

(* --fault-sweep: the same program under fault seeds 1..N, one fresh
   machine per seed, optionally fanned out over worker domains.  Cells
   are domain-confined (each hybridizes its own copy) and return rows;
   all printing happens afterwards in seed order, so the report is
   identical at any --jobs. *)
type sweep_row = {
  sw_seed : int;
  sw_exit : int;
  sw_injected : int;
  sw_retries : int;
  sw_fallbacks : int;
  sw_respawns : int;
  sw_reroutes : int;
  sw_wall : float;
}

let run_fault_sweep ~porting ~sync_channel ~symbol_cache ~huge_pages ~topology ~hrt_cores
    ~partitions ~placement ~work_stealing ~trace_limit ~rate ~sites ~sweep ~jobs prog =
  let cell seed =
    let faults = Fault_plan.create ~seed ~rate ~sites () in
    let options =
      options_of ~porting ~sync_channel ~symbol_cache ~faults ~huge_pages ~topology
        ~hrt_cores ~partitions ~placement ~work_stealing ~trace_limit
    in
    let rs = Toolchain.run_multiverse ~options (Toolchain.hybridize prog) in
    let retries, fallbacks, respawns, reroutes =
      match rs.Toolchain.rs_runtime with
      | Some rt ->
          (Runtime.retries rt, Runtime.fallbacks rt, Runtime.respawns rt, Runtime.reroutes rt)
      | None -> (0, 0, 0, 0)
    in
    {
      sw_seed = seed;
      sw_exit = rs.Toolchain.rs_exit_code;
      sw_injected = Fault_plan.injected faults;
      sw_retries = retries;
      sw_fallbacks = fallbacks;
      sw_respawns = respawns;
      sw_reroutes = reroutes;
      sw_wall = Toolchain.wall_seconds rs;
    }
  in
  let rows =
    Mv_host_par.Pool.run ~jobs (List.init sweep (fun i () -> cell (i + 1)))
  in
  Printf.printf "[fault-sweep] %d seeds | rate %.3f | sites %s\n" sweep rate
    (Fault_plan.sites_to_string sites);
  Printf.printf "%6s %6s %9s %8s %10s %9s %9s %10s\n" "seed" "exit" "injected" "retries"
    "fallbacks" "respawns" "reroutes" "wall(s)";
  List.iter
    (fun r ->
      Printf.printf "%6d %6d %9d %8d %10d %9d %9d %10.4f\n" r.sw_seed r.sw_exit
        r.sw_injected r.sw_retries r.sw_fallbacks r.sw_respawns r.sw_reroutes r.sw_wall)
    rows;
  let tot f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let failures = List.filter (fun r -> r.sw_exit <> 0) rows in
  Printf.printf
    "[fault-sweep] injected %d | retries %d | fallbacks %d | respawns %d | reroutes %d | \
     survived %d/%d\n"
    (tot (fun r -> r.sw_injected))
    (tot (fun r -> r.sw_retries))
    (tot (fun r -> r.sw_fallbacks))
    (tot (fun r -> r.sw_respawns))
    (tot (fun r -> r.sw_reroutes))
    (sweep - List.length failures)
    sweep;
  if failures = [] then 0
  else begin
    Printf.eprintf "multiverse_run: fault sweep: %d of %d seeds exited nonzero (first: seed %d)\n"
      (List.length failures) sweep
      (List.hd failures).sw_seed;
    1
  end

(* --groups: the open-loop scale mode (no program; the load generator
   drives the fabric directly). *)
let run_scale ~groups ~arrival ~offered_load ~admission ~sync_channel ~topology ~hrt_cores
    ~placement ~trace_limit =
  let open Mv_workloads.Loadgen in
  match
    match arrival_of_string arrival with
    | None -> Error ("unknown arrival process: " ^ arrival ^ " (poisson | bursty)")
    | Some arr -> (
        match admission with
        | "off" -> Ok (arr, None)
        | "shed" -> Ok (arr, Some (Mv_hvm.Fabric.make_admission ~policy:Mv_hvm.Fabric.Shed ()))
        | "block" ->
            Ok (arr, Some (Mv_hvm.Fabric.make_admission ~policy:Mv_hvm.Fabric.Block ()))
        | other -> Error ("unknown admission policy: " ^ other ^ " (off | shed | block)"))
  with
  | Error msg -> usage_error msg
  | Ok _ when groups < 1 || groups > 100_000 ->
      usage_error "--groups must be between 1 and 100000"
  | Ok _ when offered_load <= 0.0 -> usage_error "--offered-load must be positive"
  | Ok (arr, adm) ->
      let sockets, cores_per_socket = topology in
      let cfg =
        {
          default_config with
          lg_groups = groups;
          lg_arrival = arr;
          lg_offered_cps = offered_load;
          lg_admission = adm;
          lg_kind =
            (if sync_channel then Mv_hvm.Event_channel.Sync else Mv_hvm.Event_channel.Async);
          lg_sockets = sockets;
          lg_cores_per_socket = cores_per_socket;
          lg_hrt_cores = hrt_cores;
          lg_placement =
            (match placement with
            | Runtime.Spread -> Round_robin
            | Runtime.Affine -> Affine_socket);
          lg_trace_limit = trace_limit;
        }
      in
      let r = run cfg in
      Printf.printf
        "[scale] %d groups | %s arrivals | offered %.0f calls/s | admission %s | %dx%d \
         cores (%d hrt) | placement %s\n"
        groups arrival offered_load admission sockets cores_per_socket hrt_cores
        (placement_to_string cfg.lg_placement);
      Printf.printf
        "[scale] issued %d | completed %d | dropped %d | throughput %.0f calls/s\n"
        r.r_issued r.r_completed r.r_dropped r.r_throughput_cps;
      Printf.printf "[scale] sojourn p50 %.1f us | p95 %.1f us | p99 %.1f us\n" r.r_p50_us
        r.r_p95_us r.r_p99_us;
      Printf.printf
        "[scale] ring high-water %d | sheds %d | shed retries %d | blocked %d | watchdog \
         flips %d restores %d\n"
        r.r_ring_hw r.r_sheds r.r_shed_retries r.r_blocked r.r_shed_flips r.r_shed_restores;
      0

let prog_of ~bench ~file ~n =
  match (bench, file) with
  | Some name, _ -> (
      match Mv_workloads.Benchmarks.find name with
      | b ->
          let n = match n with Some n -> n | None -> b.Mv_workloads.Benchmarks.b_test_n in
          Ok (Mv_workloads.Benchmarks.program b ~n)
      | exception Not_found -> Error ("unknown benchmark " ^ name))
  | None, Some path ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      Ok
        {
          Toolchain.prog_name = Filename.basename path;
          prog_main =
            (fun env ->
              let engine = Mv_racket.Engine.start env in
              Mv_racket.Engine.run_program engine src);
        }
  | None, None -> Error "pass --bench NAME or --file PROG.scm (or --list)"

let main bench file n mode porting sync_channel symbol_cache fault_seed fault_rate fault_sites
    fault_sweep jobs groups arrival offered_load admission topology hrt_cores partitions
    placement work_stealing trace_limit no_huge_pages stats quiet list_benches =
  let huge_pages = not no_huge_pages in
  let sockets, cores_per_socket = topology in
  (* Scale mode keeps the load generator's own HRT sizing when none is
     given; program modes keep the reference machine's single HRT core. *)
  let hrt_default ~scale =
    if scale then Mv_workloads.Loadgen.default_config.Mv_workloads.Loadgen.lg_hrt_cores
    else 1
  in
  let resolve_hrt ~scale = Option.value hrt_cores ~default:(hrt_default ~scale) in
  let bad_hrt n = n < 1 || n >= sockets * cores_per_socket in
  if partitions <> None && hrt_cores <> None then
    exit (usage_error "--partitions and --hrt-cores are mutually exclusive")
  else if partitions <> None && mode <> "multiverse" then
    exit (usage_error "--partitions requires --mode multiverse")
  else if partitions <> None && groups <> None then
    exit (usage_error "--partitions is incompatible with --groups (scale mode)")
  else if
    (match partitions with
    | Some spec -> List.fold_left ( + ) 0 spec >= sockets * cores_per_socket
    | None -> false)
  then
    exit
      (usage_error
         (Printf.sprintf "--partitions %s does not leave a ROS core on a %dx%d machine"
            (String.concat "," (List.map string_of_int (Option.get partitions)))
            sockets cores_per_socket))
  else if partitions = None && bad_hrt (resolve_hrt ~scale:(groups <> None)) then
    exit
      (usage_error
         (Printf.sprintf "--hrt-cores %d does not leave a ROS core on a %dx%d machine"
            (resolve_hrt ~scale:(groups <> None))
            sockets cores_per_socket))
  else
  match fault_sweep with
  | Some sweep ->
      if fault_seed <> None then usage_error "--fault-sweep is incompatible with --fault-seed"
      else if groups <> None then usage_error "--fault-sweep is incompatible with --groups"
      else if mode <> "multiverse" then usage_error "--fault-sweep requires --mode multiverse"
      else if sweep < 1 then usage_error "--fault-sweep must be at least 1"
      else if jobs < 1 then usage_error "--jobs must be at least 1"
      else (
        match Fault_plan.sites_of_string fault_sites with
        | Error msg -> usage_error msg
        | Ok sites -> (
            match prog_of ~bench ~file ~n with
            | Error msg -> usage_error msg
            | Ok prog ->
                run_fault_sweep ~porting ~sync_channel ~symbol_cache ~huge_pages ~topology
                  ~hrt_cores:(resolve_hrt ~scale:false) ~partitions ~placement ~work_stealing
                  ~trace_limit ~rate:fault_rate ~sites ~sweep ~jobs prog))
  | None ->
  if jobs <> 1 then usage_error "--jobs has no effect without --fault-sweep"
  else
  match
    match fault_seed with
    | Some seed -> (
        if mode <> "multiverse" then Error "fault injection requires --mode multiverse"
        else
          try Ok (Fault_plan.create ~seed ~rate:fault_rate ~sites:(parse_fault_sites fault_sites) ())
          with Failure msg | Invalid_argument msg -> Error msg)
    | None ->
        if fault_rate <> 0.05 || fault_sites <> "all" then
          Error "--fault-rate/--fault-sites have no effect without --fault-seed"
        else Ok Fault_plan.none
  with
  | Error msg -> usage_error msg
  | Ok faults -> (
  match groups with
  | Some groups ->
      if bench <> None || file <> None then
        usage_error "--groups (scale mode) is incompatible with --bench/--file"
      else if Fault_plan.enabled faults then
        usage_error "fault injection is not supported in scale mode"
      else
        run_scale ~groups ~arrival ~offered_load ~admission ~sync_channel ~topology
          ~hrt_cores:(resolve_hrt ~scale:true) ~placement ~trace_limit
  | None ->
  if arrival <> "poisson" || offered_load <> 100_000.0 || admission <> "off" then
    usage_error "--arrival/--offered-load/--admission have no effect without --groups"
  else if list_benches then begin
    List.iter
      (fun b ->
        Printf.printf "%-16s (test n=%d, bench n=%d)\n" b.Mv_workloads.Benchmarks.b_name
          b.Mv_workloads.Benchmarks.b_test_n b.Mv_workloads.Benchmarks.b_bench_n)
      Mv_workloads.Benchmarks.all;
    0
  end
  else
    match prog_of ~bench ~file ~n with
    | Error msg -> usage_error msg
    | Ok prog ->
        run_one ~mode ~porting ~sync_channel ~symbol_cache ~faults ~huge_pages ~topology
          ~hrt_cores:(resolve_hrt ~scale:false) ~partitions ~placement ~work_stealing
          ~trace_limit ~stats ~quiet prog;
        0)

let () =
  let open Args in
  let term =
    const main
    $ opt_opt string ~names:[ "bench"; "b" ] ~docv:"NAME" ~doc:"Benchmark name."
    $ opt_opt string ~names:[ "file"; "f" ] ~docv:"FILE"
        ~doc:"Scheme source file to run through the Racket engine."
    $ opt_opt int ~names:[ "n" ] ~docv:"N" ~doc:"Problem size."
    $ opt string ~default:"native" ~names:[ "mode"; "m" ] ~docv:"MODE"
        ~doc:"native | virtual | multiverse."
    $ opt string ~default:"none" ~names:[ "porting" ] ~docv:"LEVEL"
        ~doc:"none | mmap | faults | full (multiverse only)."
    $ flag ~names:[ "sync-channel" ] ~doc:"Use synchronous (polling) event channels."
    $ flag ~names:[ "symbol-cache" ] ~doc:"Enable the override symbol cache."
    $ opt_opt int ~names:[ "fault-seed" ] ~docv:"SEED"
        ~doc:"Arm deterministic fault injection with this seed (multiverse only)."
    $ opt float ~default:0.05 ~names:[ "fault-rate" ] ~docv:"RATE"
        ~doc:"Per-site injection probability, 0.0-1.0 (with --fault-seed)."
    $ opt string ~default:"all" ~names:[ "fault-sites" ] ~docv:"SITES"
        ~doc:
          "Comma-separated fault sites to arm, or 'all': chan-drop, chan-delay, \
           chan-dup, chan-corrupt, partner-kill, boot-stall, syscall-eagain, \
           syscall-enosys."
    $ opt_opt int ~names:[ "fault-sweep" ] ~docv:"N"
        ~doc:
          "Run the program once per fault seed 1..N (multiverse only; uses \
           --fault-rate/--fault-sites) and report a per-seed resilience matrix. \
           Exits nonzero if any seed's run fails."
    $ opt int ~default:1 ~names:[ "jobs"; "j" ] ~docv:"M"
        ~doc:
          "Worker domains for --fault-sweep (default 1 = sequential). The \
           report is identical at any M."
    $ opt_opt int ~names:[ "groups"; "g" ] ~docv:"N"
        ~doc:
          "Scale mode: drive N execution groups (1-100000) with the open-loop \
           load generator instead of running a program."
    $ opt string ~default:"poisson" ~names:[ "arrival" ] ~docv:"PROC"
        ~doc:"poisson | bursty arrival process (with --groups)."
    $ opt float ~default:100_000.0 ~names:[ "offered-load" ] ~docv:"CPS"
        ~doc:"Total offered load in calls/second across all groups (with --groups)."
    $ opt string ~default:"off" ~names:[ "admission" ] ~docv:"POLICY"
        ~doc:"off | shed | block admission control (with --groups)."
    $ opt topology ~default:(2, 4) ~names:[ "topology" ] ~docv:"SxC"
        ~doc:
          "Machine geometry as SOCKETSxCORES_PER_SOCKET (default 2x4, the \
           reference box).  Geometries that cannot hold a ROS core are \
           rejected."
    $ opt_opt int ~names:[ "hrt-cores" ] ~docv:"N"
        ~doc:
          "Cores carved out for the HRT partition (default 1; scale mode \
           defaults to the load generator's sizing).  Must leave at least \
           one ROS core."
    $ opt_opt partitions ~names:[ "partitions" ] ~docv:"SPEC"
        ~doc:
          "Elastic partition spec as comma-separated core counts, one HRT \
           partition per entry carved from the top of the core range (e.g. \
           2,1 gives partition 1 two cores and partition 2 one).  \
           Multiverse mode only; mutually exclusive with --hrt-cores; must \
           leave at least one ROS core."
    $ opt
        (enum [ ("spread", Runtime.Spread); ("affine", Runtime.Affine) ])
        ~default:Runtime.Spread ~names:[ "placement" ] ~docv:"POLICY"
        ~doc:
          "Execution-group placement: spread (historical round-robin) or \
           affine (group cores, frames and pollers kept on one socket)."
    $ flag ~names:[ "work-stealing" ]
        ~doc:
          "Enable deterministic work stealing across the ROS cores' \
           per-core runqueues (multiverse only)."
    $ opt_opt int ~names:[ "trace-limit" ] ~docv:"N"
        ~doc:
          "Bound trace retention to the newest N records (a preallocated \
           ring; 0 retains nothing).  Default: unbounded, full history.  \
           Simulated timing is unaffected."
    $ flag ~names:[ "no-huge-pages" ]
        ~doc:"Disable the huge-page memory path (4 KiB mappings only)."
    $ flag ~names:[ "stats" ] ~doc:"Print the per-syscall histogram."
    $ flag ~names:[ "quiet"; "q" ] ~doc:"Suppress the program's stdout."
    $ flag ~names:[ "list" ] ~doc:"List benchmarks."
  in
  exit
    (run ~name:"multiverse_run" ~doc:"Run workloads on the Multiverse simulation" term
       (List.tl (Array.to_list Sys.argv)))
