(* mvcheck: the schedule-exploration model checker CLI.

   Scenarios build a slice of the Multiverse stack and run it under
   explicit scheduling control (see lib/check).  `run` sweeps random
   schedules and fault plans looking for invariant violations, shrinks any
   failure to a minimal (seed, choice-trace) and writes a replayable
   counterexample artifact; `replay` re-executes one.  `golden` prints the
   canonical traced run used by the golden regression test. *)

module Args = Mv_util.Args
module Explore = Mv_check.Explore
module Scenario = Mv_check.Scenario
module Scenarios = Mv_check.Scenarios

let list_scenarios () =
  List.iter
    (fun sc ->
      Printf.printf "%-16s %s%s\n" sc.Scenario.sc_name
        (if sc.Scenario.sc_expect_bug then "[expected-bug] " else "")
        sc.Scenario.sc_descr)
    Scenarios.all_scenarios;
  0

let print_counterexample cx =
  print_string (Explore.to_artifact cx);
  if not cx.Explore.cx_confirmed then
    print_endline "WARNING: replay did not reproduce the original failure"

let save_artifact path cx =
  let oc = open_out path in
  output_string oc (Explore.to_artifact cx);
  close_out oc;
  Printf.printf "counterexample written to %s\n" path

(* A scenario "behaves" when exploration finds a bug iff one is seeded.
   The process exits 0 only if every selected scenario behaves. *)
let run_scenario ~pool ~seeds ~shrink_budget ~out sc =
  let r =
    match pool with
    | None -> Explore.explore ~seeds ~shrink_budget sc
    | Some pool -> Explore.explore_par ~pool ~seeds ~shrink_budget sc
  in
  match (r.Explore.ex_counterexample, sc.Scenario.sc_expect_bug) with
  | Some cx, expected ->
      Printf.printf "%s: FAILURE after %d runs%s\n" sc.Scenario.sc_name
        r.Explore.ex_runs
        (if expected then " (expected: seeded bug found)" else "");
      print_counterexample cx;
      Option.iter (fun path -> save_artifact path cx) out;
      expected
  | None, true ->
      Printf.printf "%s: seeded bug NOT found in %d runs (seed budget %d)\n"
        sc.Scenario.sc_name r.Explore.ex_runs seeds;
      false
  | None, false ->
      Printf.printf "%s: no violation in %d runs\n" sc.Scenario.sc_name
        r.Explore.ex_runs;
      true

let run_scenarios name seeds shrink_budget jobs topology partitions out =
  (* Install the geometry override before the sweep (and before any worker
     domains spawn) so every scenario machine sees it. *)
  Scenario.set_topology topology;
  Scenario.set_partitions partitions;
  let selected =
    match Option.value name ~default:"all" with
    | "all" -> Ok Scenarios.all_scenarios
    | name -> (
        match Scenarios.find name with
        | Some sc -> Ok [ sc ]
        | None ->
            Error
              (Printf.sprintf "unknown scenario %S (try `mvcheck list')" name))
  in
  match selected with
  | Error msg ->
      prerr_endline ("mvcheck run: " ^ msg);
      2
  | Ok scenarios when jobs < 1 ->
      Printf.eprintf "mvcheck run: --jobs %d: need at least 1\n" jobs;
      ignore scenarios;
      2
  | Ok scenarios ->
      let pool = if jobs > 1 then Some (Mv_host_par.Pool.create ~jobs) else None in
      let verdicts =
        Fun.protect
          ~finally:(fun () -> Option.iter Mv_host_par.Pool.shutdown pool)
          (fun () ->
            (* Every scenario runs and reports, even after a failure:
               List.for_all would short-circuit and both truncate the
               report and let a late failure decide the exit code alone. *)
            List.map (run_scenario ~pool ~seeds ~shrink_budget ~out) scenarios)
      in
      if List.for_all Fun.id verdicts then 0
      else begin
        prerr_endline "mvcheck run: scenario check failed";
        1
      end

let replay path =
  let text =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Explore.of_artifact text with
  | Error msg ->
      Printf.eprintf "mvcheck replay: %s: %s\n" path msg;
      2
  | Ok cx -> (
      match Scenarios.find cx.Explore.cx_scenario with
      | None ->
          Printf.eprintf "mvcheck replay: unknown scenario %S\n" cx.Explore.cx_scenario;
          2
      | Some sc -> (
          match Explore.replay sc cx with
          | Scenario.Fail msg, _ ->
              Printf.printf "reproduced: %s\n" msg;
              if msg <> cx.Explore.cx_message then
                Printf.printf "note: artifact recorded %S\n" cx.Explore.cx_message;
              0
          | Scenario.Pass, _ ->
              prerr_endline "mvcheck replay: replay PASSED: counterexample did not reproduce";
              1))

let golden show_stdout =
  if show_stdout then print_string (Mv_check.Golden.stdout_string ())
  else print_string (Mv_check.Golden.trace_string ());
  0

let () =
  let open Args in
  let list_cmd =
    cmd "list" ~doc:"List the checkable scenarios" (const ()) (fun () ->
        list_scenarios ())
  in
  let run_cmd =
    cmd "run" ~doc:"Explore schedules/fault plans; shrink and report any violation"
      (const run_scenarios
      $ pos string ~index:0 ~docv:"SCENARIO" ~doc:"Scenario name, or 'all' (default)."
      $ opt int ~default:20 ~names:[ "seeds" ] ~docv:"N"
          ~doc:"Random schedule seeds to sweep per fault shape."
      $ opt int ~default:300 ~names:[ "shrink-budget" ] ~docv:"N"
          ~doc:"Max extra runs spent shrinking a failing trace."
      $ opt int ~default:1 ~names:[ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the schedule sweep (default 1 = sequential). \
             Verdicts, counterexamples and run counts are identical at any N."
      $ opt_opt topology ~names:[ "topology" ] ~docv:"SxC"
          ~doc:
            "Run every scenario machine on this geometry \
             (SOCKETSxCORES_PER_SOCKET, e.g. 4x32) instead of the reference \
             2x4 box."
      $ opt_opt partitions ~names:[ "partitions" ] ~docv:"SPEC"
          ~doc:
            "Carve the scenario machines' HRT side into this elastic \
             partition spec (comma-separated core counts, e.g. 2,1) \
             instead of the single default HRT partition.  Scenarios that \
             fix their own geometry (repartition) ignore it."
      $ opt_opt string ~names:[ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the counterexample artifact to FILE.")
      (fun code -> code)
  in
  let replay_cmd =
    cmd "replay" ~doc:"Re-execute a counterexample artifact"
      (const replay
      $ pos_req string ~index:0 ~docv:"FILE"
          ~doc:"Counterexample artifact produced by `mvcheck run'.")
      (fun code -> code)
  in
  let golden_cmd =
    cmd "golden" ~doc:"Print the canonical traced multiverse run (golden-file regen)"
      (const golden
      $ flag ~names:[ "stdout" ]
          ~doc:"Print the run's guest stdout instead of the machine trace.")
      (fun code -> code)
  in
  exit
    (run_group ~name:"mvcheck"
       ~doc:
         "Deterministic schedule-exploration model checker for the Multiverse \
          runtime"
       [ list_cmd; run_cmd; replay_cmd; golden_cmd ]
       (List.tl (Array.to_list Sys.argv)))
