(* mvcheck: the schedule-exploration model checker CLI.

   Scenarios build a slice of the Multiverse stack and run it under
   explicit scheduling control (see lib/check).  `run` sweeps random
   schedules and fault plans looking for invariant violations, shrinks any
   failure to a minimal (seed, choice-trace) and writes a replayable
   counterexample artifact; `replay` re-executes one.  `golden` prints the
   canonical traced run used by the golden regression test. *)

open Cmdliner
module Explore = Mv_check.Explore
module Scenario = Mv_check.Scenario
module Scenarios = Mv_check.Scenarios

let list_scenarios () =
  List.iter
    (fun sc ->
      Printf.printf "%-16s %s%s\n" sc.Scenario.sc_name
        (if sc.Scenario.sc_expect_bug then "[expected-bug] " else "")
        sc.Scenario.sc_descr)
    Scenarios.all_scenarios;
  `Ok ()

let print_counterexample cx =
  print_string (Explore.to_artifact cx);
  if not cx.Explore.cx_confirmed then
    print_endline "WARNING: replay did not reproduce the original failure"

let save_artifact path cx =
  let oc = open_out path in
  output_string oc (Explore.to_artifact cx);
  close_out oc;
  Printf.printf "counterexample written to %s\n" path

(* A scenario "behaves" when exploration finds a bug iff one is seeded.
   The process exits 0 only if every selected scenario behaves. *)
let run_scenario ~seeds ~shrink_budget ~out sc =
  let r = Explore.explore ~seeds ~shrink_budget sc in
  match (r.Explore.ex_counterexample, sc.Scenario.sc_expect_bug) with
  | Some cx, expected ->
      Printf.printf "%s: FAILURE after %d runs%s\n" sc.Scenario.sc_name
        r.Explore.ex_runs
        (if expected then " (expected: seeded bug found)" else "");
      print_counterexample cx;
      Option.iter (fun path -> save_artifact path cx) out;
      expected
  | None, true ->
      Printf.printf "%s: seeded bug NOT found in %d runs (seed budget %d)\n"
        sc.Scenario.sc_name r.Explore.ex_runs seeds;
      false
  | None, false ->
      Printf.printf "%s: no violation in %d runs\n" sc.Scenario.sc_name
        r.Explore.ex_runs;
      true

let run name seeds shrink_budget out =
  let selected =
    match name with
    | "all" -> Ok Scenarios.all_scenarios
    | name -> (
        match Scenarios.find name with
        | Some sc -> Ok [ sc ]
        | None ->
            Error
              (Printf.sprintf "unknown scenario %S (try `mvcheck list')" name))
  in
  match selected with
  | Error msg -> `Error (false, msg)
  | Ok scenarios ->
      let ok =
        List.for_all (run_scenario ~seeds ~shrink_budget ~out) scenarios
      in
      if ok then `Ok () else `Error (false, "scenario check failed")

let replay path =
  let text =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Explore.of_artifact text with
  | Error msg -> `Error (false, Printf.sprintf "%s: %s" path msg)
  | Ok cx -> (
      match Scenarios.find cx.Explore.cx_scenario with
      | None ->
          `Error (false, Printf.sprintf "unknown scenario %S" cx.Explore.cx_scenario)
      | Some sc -> (
          match Explore.replay sc cx with
          | Scenario.Fail msg, _ ->
              Printf.printf "reproduced: %s\n" msg;
              if msg = cx.Explore.cx_message then `Ok ()
              else begin
                Printf.printf "note: artifact recorded %S\n" cx.Explore.cx_message;
                `Ok ()
              end
          | Scenario.Pass, _ ->
              `Error (false, "replay PASSED: counterexample did not reproduce")))

let golden show_stdout =
  if show_stdout then print_string (Mv_check.Golden.stdout_string ())
  else print_string (Mv_check.Golden.trace_string ());
  `Ok ()

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the checkable scenarios")
    Term.(ret (const list_scenarios $ const ()))

let run_cmd =
  let scenario =
    Arg.(value & pos 0 string "all" & info [] ~docv:"SCENARIO"
         ~doc:"Scenario name, or 'all'.")
  in
  let seeds =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N"
         ~doc:"Random schedule seeds to sweep per fault shape.")
  in
  let shrink_budget =
    Arg.(value & opt int 300 & info [ "shrink-budget" ] ~docv:"N"
         ~doc:"Max extra runs spent shrinking a failing trace.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
         ~doc:"Write the counterexample artifact to FILE.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Explore schedules/fault plans; shrink and report any violation")
    Term.(ret (const run $ scenario $ seeds $ shrink_budget $ out))

let replay_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Counterexample artifact produced by `mvcheck run'.")
  in
  Cmd.v (Cmd.info "replay" ~doc:"Re-execute a counterexample artifact")
    Term.(ret (const replay $ file))

let golden_cmd =
  let show_stdout =
    Arg.(value & flag & info [ "stdout" ]
         ~doc:"Print the run's guest stdout instead of the machine trace.")
  in
  Cmd.v
    (Cmd.info "golden"
       ~doc:"Print the canonical traced multiverse run (golden-file regen)")
    Term.(ret (const golden $ show_stdout))

let cmd =
  Cmd.group
    (Cmd.info "mvcheck"
       ~doc:"Deterministic schedule-exploration model checker for the \
             Multiverse runtime")
    [ list_cmd; run_cmd; replay_cmd; golden_cmd ]

let () = exit (Cmd.eval cmd)
