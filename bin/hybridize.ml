(* hybridize: the toolchain step, as a command.

   Packages a program as a Multiverse fat binary (embedded AeroKernel
   image + override configuration + init hooks), prints its layout, and
   optionally writes the binary to disk and parses it back — what the
   Multiverse runtime does at program startup.

     dune exec bin/hybridize.exe -- --name myprog [--image-kb 640]
         [--override "pthread_create=nk_thread_create cost=450"]
         [-o out.mvfb] *)

open Multiverse
module Args = Mv_util.Args

let main name image_kb overrides out =
  let config =
    List.fold_left
      (fun cfg spec ->
        (* split on the FIRST '=' only: the cost=N option also contains one *)
        match String.index_opt spec '=' with
        | Some i -> (
            let legacy = String.sub spec 0 i in
            let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
            match String.split_on_char ' ' rest |> List.filter (( <> ) "") with
            | symbol :: opts ->
                let cost =
                  List.fold_left
                    (fun acc opt ->
                      match String.split_on_char '=' opt with
                      | [ "cost"; v ] -> int_of_string v
                      | _ -> acc)
                    500 opts
                in
                Override_config.add cfg
                  { Override_config.ov_legacy = legacy; ov_symbol = symbol; ov_cost = cost; ov_args = 0 }
            | [] -> cfg)
        | None ->
            Printf.eprintf "ignoring malformed override %S\n" spec;
            cfg)
      Override_config.empty overrides
  in
  let prog = { Toolchain.prog_name = name; prog_main = (fun _ -> ()) } in
  let hx = Toolchain.hybridize ~overrides:config ~image_kb prog in
  Printf.printf "fat binary for %S: %d bytes\n\n" name (String.length hx.Toolchain.hx_bytes);
  Printf.printf "%-16s %10s\n" "section" "bytes";
  List.iter
    (fun s ->
      Printf.printf "%-16s %10d\n" s (Fat_binary.section_size hx.Toolchain.hx_fat s))
    (Fat_binary.section_names hx.Toolchain.hx_fat);
  Printf.printf "\noverride configuration (defaults are enforced at init):\n%s"
    (match Fat_binary.section hx.Toolchain.hx_fat Fat_binary.sec_overrides with
    | Some "" | None -> "(none)\n"
    | Some text -> text);
  (match out with
  | Some path ->
      let oc = open_out_bin path in
      output_string oc hx.Toolchain.hx_bytes;
      close_out oc;
      (* Round-trip, as the runtime's startup parser would. *)
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Fat_binary.decode data with
      | Ok _ -> Printf.printf "\nwrote %s (parses back cleanly)\n" path
      | Error e -> Printf.printf "\nwrote %s but it does NOT parse: %s\n" path e)
  | None -> ());
  0

let () =
  let open Args in
  let term =
    const main
    $ opt string ~default:"app" ~names:[ "name" ] ~docv:"NAME" ~doc:"Program name."
    $ opt int ~default:640 ~names:[ "image-kb" ] ~docv:"KB" ~doc:"AeroKernel image size."
    $ opt_all string ~names:[ "override" ] ~docv:"SPEC" ~doc:"legacy=symbol [cost=N]."
    $ opt_opt string ~names:[ "output"; "o" ] ~docv:"FILE" ~doc:"Write the fat binary to FILE."
  in
  exit
    (run ~name:"hybridize" ~doc:"Package a program as a Multiverse fat binary" term
       (List.tl (Array.to_list Sys.argv)))
