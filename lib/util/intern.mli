(** Prefix-keyed string cache for hot-path labels.

    Call sites like [block ~reason:("evtchan:" ^ kind)] allocate a fresh
    string per call even though [kind] is drawn from a handful of values.
    An [Intern.t] memoizes [prefix ^ key] so steady-state lookups allocate
    nothing. *)

type t

val create : string -> t
(** [create prefix] makes a cache for labels of the form [prefix ^ key]. *)

val get : t -> string -> string
(** [get t key] returns [prefix ^ key], computed at most once per [key]. *)
