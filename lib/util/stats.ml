type t = {
  mutable samples : float list;
  mutable n : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable lo : float;
  mutable hi : float;
  mutable sorted : float array option;  (* cache, invalidated by [add] *)
}

let create () =
  {
    samples = [];
    n = 0;
    sum = 0.;
    sum_sq = 0.;
    lo = infinity;
    hi = neg_infinity;
    sorted = None;
  }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  t.sorted <- None;
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let merge_into dst src =
  (* rev_append keeps this O(|src|); sample order is irrelevant because
     every consumer reduces (mean/extrema) or sorts (percentiles). *)
  dst.samples <- List.rev_append src.samples dst.samples;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  dst.sum_sq <- dst.sum_sq +. src.sum_sq;
  dst.sorted <- None;
  if src.lo < dst.lo then dst.lo <- src.lo;
  if src.hi > dst.hi then dst.hi <- src.hi

let count t = t.n
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.
  else
    let m = mean t in
    let var = (t.sum_sq /. float_of_int t.n) -. (m *. m) in
    sqrt (Float.max var 0.)

let min t = t.lo
let max t = t.hi

(* Sort once per batch of adds: repeated percentile queries (p50/p95/p99
   over the same accumulated samples) reuse the cached array. *)
let sorted t =
  match t.sorted with
  | Some arr -> arr
  | None ->
      let arr = Array.of_list t.samples in
      Array.sort compare arr;
      t.sorted <- Some arr;
      arr

let percentile t p =
  assert (t.n > 0);
  let arr = sorted t in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int t.n)) - 1 in
  let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) rank) in
  arr.(idx)

let percentile_interp t p =
  assert (t.n > 0);
  let arr = sorted t in
  let h = p /. 100. *. float_of_int (t.n - 1) in
  let lo = int_of_float (floor h) in
  let lo = Stdlib.max 0 (Stdlib.min (t.n - 1) lo) in
  let hi = Stdlib.min (t.n - 1) (lo + 1) in
  let frac = h -. float_of_int lo in
  arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

type summary = {
  s_count : int;
  s_mean : float;
  s_stddev : float;
  s_min : float;
  s_max : float;
}

let summary t =
  { s_count = t.n; s_mean = mean t; s_stddev = stddev t; s_min = t.lo; s_max = t.hi }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" s.s_count s.s_mean
    s.s_stddev s.s_min s.s_max
