type 'a conv = { cv_parse : string -> ('a, string) result; cv_kind : string }

let string = { cv_parse = (fun s -> Ok s); cv_kind = "string" }

let int =
  {
    cv_parse =
      (fun s ->
        match int_of_string_opt s with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "expected an integer, got %S" s));
    cv_kind = "int";
  }

let float =
  {
    cv_parse =
      (fun s ->
        match float_of_string_opt s with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "expected a number, got %S" s));
    cv_kind = "float";
  }

let topology =
  {
    cv_parse =
      (fun s ->
        match String.index_opt s 'x' with
        | None -> Error (Printf.sprintf "expected SOCKETSxCORES (e.g. 4x32), got %S" s)
        | Some i -> (
            let a = String.sub s 0 i
            and b = String.sub s (i + 1) (String.length s - i - 1) in
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some sockets, Some cores when sockets > 0 && cores > 0 ->
                if sockets * cores < 2 then
                  Error
                    (Printf.sprintf
                       "topology %dx%d leaves no ROS core (need at least 2 cores)" sockets
                       cores)
                else Ok (sockets, cores)
            | _ ->
                Error
                  (Printf.sprintf "expected SOCKETSxCORES with positive integers, got %S" s)));
    cv_kind = "topology";
  }

let partitions =
  {
    cv_parse =
      (fun s ->
        let fields = String.split_on_char ',' s in
        let parse f =
          match int_of_string_opt (String.trim f) with
          | Some n when n > 0 -> Ok n
          | Some n -> Error (Printf.sprintf "partition size must be positive, got %d" n)
          | None -> Error (Printf.sprintf "expected a comma-separated list of core counts (e.g. 2,1), got %S" s)
        in
        List.fold_left
          (fun acc f ->
            match (acc, parse f) with
            | Ok sizes, Ok n -> Ok (sizes @ [ n ])
            | (Error _ as e), _ | _, (Error _ as e) -> e)
          (Ok []) fields
        |> function
        | Ok [] -> Error "expected at least one partition size"
        | r -> r);
    cv_kind = "partitions";
  }

let enum alts =
  {
    cv_parse =
      (fun s ->
        match List.assoc_opt s alts with
        | Some v -> Ok v
        | None ->
            Error
              (Printf.sprintf "expected one of %s, got %S"
                 (String.concat " | " (List.map fst alts))
                 s));
    cv_kind = "enum";
  }

type spec =
  | Sflag of { names : string list; doc : string }
  | Sopt of { names : string list; docv : string; doc : string }
  | Spos of { index : int; docv : string; doc : string; required : bool }

type store = {
  mutable st_flags : string list;  (* canonical names, one entry per hit *)
  mutable st_opts : (string * string) list;  (* canonical -> raw, latest first *)
  mutable st_pos : string list;  (* reversed *)
}

type 'a t = { specs : spec list; eval : store -> ('a, string) result }

let const v = { specs = []; eval = (fun _ -> Ok v) }

let ( $ ) f x =
  {
    specs = f.specs @ x.specs;
    eval =
      (fun st ->
        match f.eval st with
        | Error _ as e -> e
        | Ok fn -> ( match x.eval st with Ok v -> Ok (fn v) | Error _ as e -> e));
  }

let canonical = function [] -> invalid_arg "Args: empty name list" | n :: _ -> n
let dashed n = if String.length n = 1 then "-" ^ n else "--" ^ n

let flag ~names ~doc =
  let c = canonical names in
  {
    specs = [ Sflag { names; doc } ];
    eval = (fun st -> Ok (List.mem c st.st_flags));
  }

let opt_raw conv ~names ~docv st =
  match List.assoc_opt (canonical names) st.st_opts with
  | None -> Ok None
  | Some raw -> (
      match conv.cv_parse raw with
      | Ok v -> Ok (Some v)
      | Error e ->
          Error (Printf.sprintf "option %s %s: %s" (dashed (canonical names)) docv e))

let opt conv ~default ~names ~docv ~doc =
  {
    specs = [ Sopt { names; docv; doc } ];
    eval =
      (fun st ->
        match opt_raw conv ~names ~docv st with
        | Ok None -> Ok default
        | Ok (Some v) -> Ok v
        | Error _ as e -> e);
  }

let opt_opt conv ~names ~docv ~doc =
  { specs = [ Sopt { names; docv; doc } ]; eval = opt_raw conv ~names ~docv }

let opt_all conv ~names ~docv ~doc =
  let c = canonical names in
  {
    specs = [ Sopt { names; docv; doc } ];
    eval =
      (fun st ->
        let raws =
          List.rev (List.filter_map (fun (k, v) -> if k = c then Some v else None) st.st_opts)
        in
        List.fold_left
          (fun acc raw ->
            match (acc, conv.cv_parse raw) with
            | Ok vs, Ok v -> Ok (vs @ [ v ])
            | Error _, _ -> acc
            | _, Error e ->
                Error (Printf.sprintf "option %s %s: %s" (dashed c) docv e))
          (Ok []) raws);
  }

let pos_nth st index =
  let all = List.rev st.st_pos in
  List.nth_opt all index

let pos conv ~index ~docv ~doc =
  {
    specs = [ Spos { index; docv; doc; required = false } ];
    eval =
      (fun st ->
        match pos_nth st index with
        | None -> Ok None
        | Some raw -> (
            match conv.cv_parse raw with
            | Ok v -> Ok (Some v)
            | Error e -> Error (Printf.sprintf "argument %s: %s" docv e)));
  }

let pos_req conv ~index ~docv ~doc =
  {
    specs = [ Spos { index; docv; doc; required = true } ];
    eval =
      (fun st ->
        match pos_nth st index with
        | None -> Error (Printf.sprintf "missing required argument %s" docv)
        | Some raw -> (
            match conv.cv_parse raw with
            | Ok v -> Ok v
            | Error e -> Error (Printf.sprintf "argument %s: %s" docv e)));
  }

(* --- help rendering --- *)

let sorted_positionals specs =
  List.filter_map
    (function
      | Spos { index; docv; doc; required } -> Some (index, docv, doc, required)
      | _ -> None)
    specs
  |> List.sort compare

let usage_line ~name specs =
  let poss =
    List.map
      (fun (_, docv, _, required) -> if required then docv else "[" ^ docv ^ "]")
      (sorted_positionals specs)
  in
  Printf.sprintf "usage: %s [OPTION]...%s" name
    (match poss with [] -> "" | l -> " " ^ String.concat " " l)

let print_help ~name ~doc specs oc =
  Printf.fprintf oc "%s\n\n%s\n" (usage_line ~name specs) doc;
  let poss = sorted_positionals specs in
  if poss <> [] then begin
    Printf.fprintf oc "\narguments:\n";
    List.iter (fun (_, docv, doc, _) -> Printf.fprintf oc "  %-22s %s\n" docv doc) poss
  end;
  let opts = List.filter (function Sflag _ | Sopt _ -> true | _ -> false) specs in
  if opts <> [] then begin
    Printf.fprintf oc "\noptions:\n";
    List.iter
      (function
        | Sflag { names; doc } ->
            Printf.fprintf oc "  %-22s %s\n"
              (String.concat ", " (List.map dashed names))
              doc
        | Sopt { names; docv; doc } ->
            Printf.fprintf oc "  %-22s %s\n"
              (String.concat ", " (List.map dashed names) ^ " " ^ docv)
              doc
        | Spos _ -> ())
      opts
  end

(* --- token walk --- *)

let lookup_named specs name =
  List.find_opt
    (function
      | Sflag { names; _ } | Sopt { names; _ } -> List.mem name names
      | Spos _ -> false)
    specs

let is_option_token tok =
  String.length tok > 1 && tok.[0] = '-'
  && not (String.length tok > 1 && tok.[1] >= '0' && tok.[1] <= '9')

let strip_dashes tok =
  if String.length tok > 2 && String.sub tok 0 2 = "--" then
    String.sub tok 2 (String.length tok - 2)
  else String.sub tok 1 (String.length tok - 1)

let parse_tokens specs args =
  let st = { st_flags = []; st_opts = []; st_pos = [] } in
  let npos =
    List.fold_left (fun n -> function Spos _ -> n + 1 | _ -> n) 0 specs
  in
  let rec go = function
    | [] -> Ok st
    | tok :: rest when tok = "--help" || tok = "-h" -> Error (`Help (tok :: rest))
    | tok :: rest when is_option_token tok -> (
        let body = strip_dashes tok in
        let name, inline =
          match String.index_opt body '=' with
          | Some i ->
              ( String.sub body 0 i,
                Some (String.sub body (i + 1) (String.length body - i - 1)) )
          | None -> (body, None)
        in
        match lookup_named specs name with
        | Some (Sflag { names; _ }) ->
            if inline <> None then
              Error (`Msg (Printf.sprintf "%s takes no value" (dashed name)))
            else begin
              st.st_flags <- canonical names :: st.st_flags;
              go rest
            end
        | Some (Sopt { names; docv; _ }) -> (
            match (inline, rest) with
            | Some v, _ ->
                st.st_opts <- (canonical names, v) :: st.st_opts;
                go rest
            | None, v :: rest' ->
                st.st_opts <- (canonical names, v) :: st.st_opts;
                go rest'
            | None, [] ->
                Error
                  (`Msg (Printf.sprintf "option %s needs a %s value" (dashed name) docv)))
        | Some (Spos _) | None ->
            Error (`Msg (Printf.sprintf "unknown option %s" tok)))
    | tok :: rest ->
        if List.length st.st_pos >= npos then
          Error (`Msg (Printf.sprintf "unexpected argument %S" tok))
        else begin
          st.st_pos <- tok :: st.st_pos;
          go rest
        end
  in
  go args

let run ~name ~doc term args =
  match parse_tokens term.specs args with
  | Error (`Help _) ->
      print_help ~name ~doc term.specs stdout;
      exit 0
  | Error (`Msg msg) ->
      Printf.eprintf "%s: %s\n%s\n" name msg (usage_line ~name term.specs);
      exit 2
  | Ok st -> (
      match term.eval st with
      | Ok v -> v
      | Error msg ->
          Printf.eprintf "%s: %s\n%s\n" name msg (usage_line ~name term.specs);
          exit 2)

(* --- subcommand groups --- *)

type cmd = { c_name : string; c_doc : string; c_run : group:string -> string list -> int }

let cmd name ~doc term handler =
  {
    c_name = name;
    c_doc = doc;
    c_run =
      (fun ~group args -> handler (run ~name:(group ^ " " ^ name) ~doc term args));
  }

let print_group_help ~name ~doc cmds oc =
  Printf.fprintf oc "usage: %s COMMAND [ARG]...\n\n%s\n\ncommands:\n" name doc;
  List.iter (fun c -> Printf.fprintf oc "  %-16s %s\n" c.c_name c.c_doc) cmds

let run_group ~name ~doc ?default cmds args =
  let find n = List.find_opt (fun c -> c.c_name = n) cmds in
  match args with
  | ("--help" | "-h") :: _ ->
      print_group_help ~name ~doc cmds stdout;
      exit 0
  | first :: rest when find first <> None ->
      (Option.get (find first)).c_run ~group:name rest
  | _ -> (
      match default with
      | Some d -> (
          match find d with
          | Some c -> c.c_run ~group:name args
          | None -> invalid_arg ("Args.run_group: unknown default command " ^ d))
      | None ->
          Printf.eprintf "%s: expected a command (%s)\n" name
            (String.concat " | " (List.map (fun c -> c.c_name) cmds));
          exit 2)
