(** Small statistics accumulator used by the benchmark harness.

    Collects samples and reports mean, standard deviation, extrema and
    simple percentiles.  Evaluation numbers in the paper are averages of 10
    runs; [summary] provides the same reduction. *)

type t

val create : unit -> t
val add : t -> float -> unit
val merge_into : t -> t -> unit
(** [merge_into dst src] folds [src]'s samples into [dst], as if every
    sample had been {!add}ed to [dst] directly: count, mean, stddev,
    extrema and percentiles afterwards equal those of the concatenated
    sample sets.  Invalidates [dst]'s percentile cache.  [src] is left
    untouched.  Used to reduce per-worker accumulators after a parallel
    sweep. *)

val count : t -> int
val mean : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]; nearest-rank on the sorted
    samples.  Requires at least one sample.  The sorted order is computed
    once and cached until the next {!add}, so repeated queries
    (p50/p95/p99 over one batch of samples) sort only once. *)

val percentile_interp : t -> float -> float
(** Like {!percentile} but linearly interpolating between the two
    neighbouring ranks (the [h = p/100 * (n-1)] convention), for smooth
    tail estimates at small sample counts.  Shares the sorted cache. *)

type summary = {
  s_count : int;
  s_mean : float;
  s_stddev : float;
  s_min : float;
  s_max : float;
}

val summary : t -> summary
val pp_summary : Format.formatter -> summary -> unit
