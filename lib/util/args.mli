(** Applicative command-line parsing shared by the Multiverse binaries.

    A ['a t] describes how to build a value of type ['a] from argv:
    combine converters, flags, options and positionals with {!const} and
    {!($)} (in the style of [Cmdliner.Term]), then hand the term to
    {!run} — or wrap several terms as subcommands with {!cmd} and
    {!run_group}.

    Conventions: single-character option names render as [-x], longer
    names as [--name]; [--name=value] and [--name value] are both
    accepted; [--help]/[-h] print generated usage and exit 0; a parse
    error (unknown option, unparseable or excess argument, missing
    required positional) prints a message plus usage to stderr and exits
    with code 2 — excess positionals are an error, never silently
    reinterpreted. *)

(** {1 Converters} *)

type 'a conv

val string : string conv
val int : int conv
val float : float conv

val enum : (string * 'a) list -> 'a conv
(** Accepts exactly the listed spellings; the error message enumerates
    them. *)

val topology : (int * int) conv
(** Machine geometry as [SOCKETSxCORES] (e.g. ["4x32"] for 4 sockets of
    32 cores): both counts must be positive and the machine must have at
    least two cores total — a one-core geometry leaves no ROS core once
    an HRT core is carved out, so it is rejected at parse time (usage
    error, exit 2). *)

val partitions : int list conv
(** An elastic partition spec as comma-separated positive core counts
    (e.g. ["2,1"]: HRT partition 1 gets 2 cores, partition 2 gets 1).
    Whether the sizes fit the machine is checked downstream by
    [Topology.create], which names the offending spec. *)

(** {1 Terms} *)

type 'a t

val const : 'a -> 'a t

val ( $ ) : ('a -> 'b) t -> 'a t -> 'b t
(** Applicative application: [const f $ a $ b]. *)

val flag : names:string list -> doc:string -> bool t
(** A boolean flag; [names] are given without dashes, the first one is
    canonical. *)

val opt : 'a conv -> default:'a -> names:string list -> docv:string -> doc:string -> 'a t
(** A valued option; the last occurrence wins. *)

val opt_opt : 'a conv -> names:string list -> docv:string -> doc:string -> 'a option t
(** A valued option with no default: [None] when absent. *)

val opt_all : 'a conv -> names:string list -> docv:string -> doc:string -> 'a list t
(** A repeatable valued option: every occurrence, in argv order. *)

val pos : 'a conv -> index:int -> docv:string -> doc:string -> 'a option t
(** The [index]-th positional argument (0-based), [None] when absent. *)

val pos_req : 'a conv -> index:int -> docv:string -> doc:string -> 'a t
(** A required positional: parse error when absent. *)

(** {1 Running} *)

val run : name:string -> doc:string -> 'a t -> string list -> 'a
(** [run ~name ~doc term args] parses [args] (argv without the program
    name) against [term].  Exits the process on [--help] (code 0) and on
    parse errors (code 2). *)

(** {1 Subcommands} *)

type cmd

val cmd : string -> doc:string -> 'a t -> ('a -> int) -> cmd
(** [cmd name ~doc term handler]: when dispatched, parses the remaining
    arguments with [term] and returns [handler]'s exit code. *)

val run_group :
  name:string -> doc:string -> ?default:string -> cmd list -> string list -> int
(** Dispatch on the first argument as a subcommand name.  When it is not
    a known subcommand, fall back to the [default] subcommand with the
    whole argument list (when given) or fail with a usage error.  Returns
    the handler's exit code; exits directly for [--help] and usage
    errors, as {!run} does. *)
