type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed64 = next_int64 t in
  { state = seed64 }

let substream t index =
  if index < 0 then invalid_arg "Rng.substream: negative index";
  (* A read-only derivation: perturb the current state by an odd constant
     times (index+1) and push it through the mix64 bijection.  Distinct
     indices land in distinct states, and the parent stream is untouched,
     so concurrent runs can each take substream i of one root generator. *)
  { state = mix64 (Int64.add t.state (Int64.mul (Int64.of_int (index + 1)) 0xD1B54A32D192ED03L)) }

let next t =
  (* Mask to 62 bits so the result is a non-negative OCaml int. *)
  Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL)

let int t bound =
  assert (bound > 0);
  next t mod bound

let float t bound =
  let x = float_of_int (next t) /. float_of_int 0x3FFFFFFFFFFFFFFF in
  x *. bound

let bool t = next t land 1 = 1
