(** A deterministic token bucket over the virtual clock.

    The classic (rate, burst) regulator: tokens accrue continuously at
    [rate] per cycle up to a ceiling of [burst]; each admission consumes
    one.  Over any window of [w] cycles the number of admissions is
    therefore at most [burst + rate * w] — the property the fabric's
    per-execution-group admission control relies on so one bursty tenant
    cannot monopolize the shared poller pool.

    Time is passed in explicitly (virtual cycles), so the bucket is pure
    state with no clock dependency and is directly property-testable. *)

type t

val create : rate:float -> burst:int -> now:int -> t
(** [rate] is tokens per cycle and must be positive; [burst] is the
    bucket ceiling (and initial fill) and must be at least 1.
    @raise Invalid_argument on a non-positive rate or a burst below 1. *)

val take : t -> now:int -> bool
(** Refill up to [now], then consume one token if at least one whole
    token is available.  [now] values must be non-decreasing across
    calls; a stale [now] simply skips the refill. *)

val level : t -> now:int -> float
(** The token level after refilling up to [now]. *)

val next_available : t -> now:int -> int
(** Cycles from [now] until a whole token will be available (0 when one
    already is) — the admission-queue refill-timer delay. *)
