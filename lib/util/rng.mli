(** Deterministic pseudo-random number generation.

    The whole simulation must be reproducible run-to-run, so all randomness
    flows through explicitly seeded generators.  The implementation is
    splitmix64, which is fast, has a full 64-bit state, and splits cleanly
    into independent streams. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] is a new generator statistically independent of [t]'s
    subsequent output.  Advances [t]. *)

val substream : t -> int -> t
(** [substream t i] is the [i]th derived generator of [t]'s current state
    ([i >= 0]).  Unlike {!split} it does {e not} advance [t], and distinct
    indices yield independent streams, so a parallel sweep can hand
    substream [i] to task [i] without any cross-task ordering.  Raises
    [Invalid_argument] on a negative index. *)

val next : t -> int
(** [next t] is a uniformly distributed non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
