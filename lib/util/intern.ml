type t = { prefix : string; cache : (string, string) Hashtbl.t }

let create prefix = { prefix; cache = Hashtbl.create 8 }

let get t key =
  match Hashtbl.find_opt t.cache key with
  | Some s -> s
  | None ->
      let s = t.prefix ^ key in
      Hashtbl.add t.cache key s;
      s
