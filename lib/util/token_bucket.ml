type t = {
  rate : float;  (* tokens per cycle *)
  burst : float;
  mutable tokens : float;
  mutable last : int;  (* cycle timestamp of the last refill *)
}

let create ~rate ~burst ~now =
  if rate <= 0. then invalid_arg "Token_bucket.create: rate must be positive";
  if burst < 1 then invalid_arg "Token_bucket.create: burst must be >= 1";
  { rate; burst = float_of_int burst; tokens = float_of_int burst; last = now }

let refill t ~now =
  if now > t.last then begin
    t.tokens <- Float.min t.burst (t.tokens +. (float_of_int (now - t.last) *. t.rate));
    t.last <- now
  end

let take t ~now =
  refill t ~now;
  if t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    true
  end
  else false

let level t ~now =
  refill t ~now;
  t.tokens

let next_available t ~now =
  refill t ~now;
  if t.tokens >= 1.0 then 0
  else int_of_float (Float.ceil ((1.0 -. t.tokens) /. t.rate))
