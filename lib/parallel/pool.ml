module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Nautilus = Mv_aerokernel.Nautilus

type backend =
  | Linux of Mv_guest.Env.t
  | Aerokernel of Nautilus.t

type work = { w_lo : int; w_hi : int; w_fn : int -> unit }

type worker = {
  mutable wk_box : work option;
  mutable wk_wake : (unit -> unit) option;  (* set while parked *)
  mutable wk_partial : float;  (* reduction contribution *)
}

type t = {
  backend : backend;
  machine : Machine.t;
  workers : worker array;
  mutable handles : Exec.thread array;
  mutable remaining : int;
  mutable master_wake : (unit -> unit) option;
  mutable stopping : bool;
  mutable n_regions : int;
}

let machine_of = function
  | Linux env -> env.Mv_guest.Env.kernel.Mv_ros.Kernel.machine
  | Aerokernel nk -> Nautilus.machine nk

(* Cost of parking a thread / waking one, per backend.  The Linux pool
   parks on futexes: a FUTEX_WAIT when going to sleep and the wake-up side
   of someone's FUTEX_WAKE, both full syscalls.  The AeroKernel pool uses
   in-kernel wait queues: a function call and a cheap context switch. *)
let park_costs t =
  let costs = t.machine.Machine.costs in
  match t.backend with
  | Linux env ->
      let k = env.Mv_guest.Env.kernel and p = env.Mv_guest.Env.proc in
      Mv_ros.Kernel.count_syscall k p "futex";
      Mv_ros.Kernel.in_sys k (fun () ->
          Machine.charge t.machine (costs.Mv_hw.Costs.syscall_trap + 900))
  | Aerokernel _ -> Machine.charge t.machine 180

let signal_costs t =
  let costs = t.machine.Machine.costs in
  match t.backend with
  | Linux env ->
      let k = env.Mv_guest.Env.kernel and p = env.Mv_guest.Env.proc in
      Mv_ros.Kernel.count_syscall k p "futex";
      Mv_ros.Kernel.in_sys k (fun () ->
          Machine.charge t.machine (costs.Mv_hw.Costs.syscall_trap + 900))
  | Aerokernel _ -> Machine.charge t.machine 120

let charge t c = Machine.charge t.machine c
let regions t = t.n_regions
let nworkers t = Array.length t.workers

(* --- worker loop --- *)

let finish_chunk t =
  t.remaining <- t.remaining - 1;
  if t.remaining = 0 then begin
    signal_costs t;
    match t.master_wake with
    | Some wake ->
        t.master_wake <- None;
        wake ()
    | None -> ()  (* master has not parked yet; it will observe remaining=0 *)
  end

let rec worker_loop t wk () =
  if not t.stopping then begin
    match wk.wk_box with
    | Some work ->
        wk.wk_box <- None;
        (try
           for i = work.w_lo to work.w_hi - 1 do
             work.w_fn i
           done
         with e ->
           finish_chunk t;
           raise e);
        finish_chunk t;
        worker_loop t wk ()
    | None ->
        park_costs t;
        Exec.block t.machine.Machine.exec ~reason:"pool-park" (fun ~now:_ ~wake ->
            wk.wk_wake <- Some wake);
        worker_loop t wk ()
  end

let create backend ~nworkers =
  if nworkers <= 0 then invalid_arg "Pool.create: nworkers <= 0";
  let machine = machine_of backend in
  let workers =
    Array.init nworkers (fun _ -> { wk_box = None; wk_wake = None; wk_partial = 0.0 })
  in
  let t =
    {
      backend;
      machine;
      workers;
      handles = [||];
      remaining = 0;
      master_wake = None;
      stopping = false;
      n_regions = 0;
    }
  in
  t.handles <-
    Array.mapi
      (fun i wk ->
        let name = Printf.sprintf "pool-worker-%d" i in
        match backend with
        | Linux env -> env.Mv_guest.Env.thread_create ~name (worker_loop t wk)
        | Aerokernel nk ->
            (* Spread across the AeroKernel's partition. *)
            let cores = Nautilus.cores nk in
            let core = List.nth cores (i mod List.length cores) in
            Nautilus.create_thread_local nk ~name ~core (worker_loop t wk))
      workers;
  t

let wake_worker t wk =
  match wk.wk_wake with
  | Some wake ->
      wk.wk_wake <- None;
      signal_costs t;
      wake ()
  | None -> ()  (* still draining its previous state; it will see the box *)

let dispatch t mk_fn =
  if t.stopping then invalid_arg "Pool: already shut down";
  let n = Array.length t.workers in
  t.n_regions <- t.n_regions + 1;
  t.remaining <- n;
  Array.iteri
    (fun i wk ->
      wk.wk_box <- Some (mk_fn i);
      wake_worker t wk)
    t.workers;
  (* Barrier: wait for the last chunk. *)
  if t.remaining > 0 then begin
    park_costs t;
    Exec.block t.machine.Machine.exec ~reason:"pool-barrier" (fun ~now:_ ~wake ->
        t.master_wake <- Some wake)
  end

let chunk_bounds ~lo ~hi ~n i =
  let total = hi - lo in
  let base = total / n and extra = total mod n in
  let start = lo + (i * base) + min i extra in
  let len = base + if i < extra then 1 else 0 in
  (start, start + len)

let parallel_for t ~lo ~hi fn =
  dispatch t (fun i ->
      let c_lo, c_hi = chunk_bounds ~lo ~hi ~n:(Array.length t.workers) i in
      { w_lo = c_lo; w_hi = c_hi; w_fn = fn })

let parallel_reduce t ~lo ~hi fn =
  Array.iter (fun wk -> wk.wk_partial <- 0.0) t.workers;
  dispatch t (fun i ->
      let c_lo, c_hi = chunk_bounds ~lo ~hi ~n:(Array.length t.workers) i in
      let wk = t.workers.(i) in
      { w_lo = c_lo; w_hi = c_hi; w_fn = (fun j -> wk.wk_partial <- wk.wk_partial +. fn j) });
  Array.fold_left (fun acc wk -> acc +. wk.wk_partial) 0.0 t.workers

let shutdown t =
  t.stopping <- true;
  Array.iter (fun wk -> wake_worker t wk) t.workers;
  Array.iter
    (fun h ->
      match Exec.state t.machine.Machine.exec h with
      | Exec.Finished -> ()
      | _ -> Exec.join t.machine.Machine.exec h)
    t.handles
