module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Sim = Mv_engine.Sim
module Trace = Mv_engine.Trace
module Tracer = Mv_obs.Tracer
module Fault_plan = Mv_faults.Fault_plan
open Mv_hw

(* Hot-path labels are [prefix ^ kind] over a handful of request kinds;
   interning keeps per-call block/span setup free of string allocation. *)
let reason_ride = Mv_util.Intern.create "fabric:ride:"
let reason_admit = Mv_util.Intern.create "fabric:admit:"
let span_fwd = Mv_util.Intern.create "fwd:"

(* Ring-slot protocol: a rider's request is Pending until either a server
   drain takes it (Pending -> Taken -> Done) or the rider's own timeout
   reclaims it (Pending -> Claimed) to re-dispatch through the transport.
   Both transitions read-check-write with no cycle charge in between, so
   they are host-atomic and at most one of them ever wins: the payload
   runs exactly once. *)
type slot_state = Slot_pending | Slot_claimed | Slot_taken | Slot_done

type slot = {
  sl_req : Event_channel.request;
  mutable sl_state : slot_state;
  mutable sl_wake : (unit -> unit) option;
}

type endpoint = {
  ep_name : string;
  ep_batch_label : string;  (* "batch:<name>", precomputed off the hot path *)
  ep_serve_label : string;  (* "serve:<name>", likewise *)
  ep_chan : Event_channel.t;
  mutable ep_ros_core : int;  (* server-side core; routes the endpoint to a poller group *)
  mutable ep_group : int;  (* index into [fb_groups]; reassigned by start_pool *)
  ep_ring : slot Queue.t;  (* the shared-page batching ring *)
  mutable ep_inflight : bool;  (* a leader call is mid-flight *)
  mutable ep_npending : int;  (* Pending slots awaiting a drain *)
  mutable ep_busy : bool;  (* a poller owns this channel's server side *)
  mutable ep_announced : bool;  (* a run-queue token for this endpoint is outstanding *)
  mutable ep_attentive : bool;  (* the owning poller is busy-polling the ring *)
  (* --- admission control (all dormant while the fabric has no policy) --- *)
  mutable ep_bucket : Mv_util.Token_bucket.t option;  (* per-group rate limit *)
  ep_waiters : (unit -> unit) Queue.t;  (* FIFO admission queue (Block policy) *)
  mutable ep_nwaiters : int;
  mutable ep_granted : int;  (* admissions handed to woken waiters, not yet ring slots *)
  mutable ep_refill_armed : bool;  (* a token-refill timer is outstanding *)
  mutable ep_occupancy_hw : int;  (* high-water mark of [ep_npending] *)
}

type local_entry = { le_promote_after : int; le_cost : int }

(* --- overload model ------------------------------------------------ *)

type overload_policy = Shed | Block

type admission = {
  ad_policy : overload_policy;
  ad_ring_capacity : int;  (* max Pending slots per endpoint ring *)
  ad_queue_capacity : int;  (* max blocked callers per endpoint (Block) *)
  ad_rate : float;  (* token-bucket refill, tokens per cycle per endpoint *)
  ad_burst : int;  (* token-bucket ceiling *)
  ad_high_water : float;  (* ring-occupancy fraction entering shed mode *)
  ad_low_water : float;  (* ring-occupancy fraction leaving shed mode *)
  ad_shed_retries : int;  (* stub backoff retries before [offer] gives up *)
}

type overload = { ov_kind : string; ov_endpoint : string; ov_sheds : int }

(* --- poller groups -------------------------------------------------- *)

(* The shared poller pool is a set of groups, each with its own run queue,
   parked set and cores.  The default is one global group — byte-identical
   to the pre-group fabric — while [Per_socket] grouping shards the pool by
   topology so doorbells are served by a poller on the endpoint's own
   socket and wake tokens never cross the interconnect. *)
type grouping = Global | Per_socket

type pgroup = {
  pg_socket : int;  (* socket served, -1 for the global group *)
  mutable pg_cores : int list;  (* spawn cores; lending may swap members *)
  pg_runq : endpoint Queue.t;  (* doorbells awaiting a poller of this group *)
  pg_parked : (Exec.thread * (unit -> unit)) Queue.t;
  mutable pg_pollers : Exec.thread list;
  mutable pg_next_poller : int;  (* round-robin cursor over [pg_cores] *)
}

let make_pgroup ?(socket = -1) cores =
  {
    pg_socket = socket;
    pg_cores = cores;
    pg_runq = Queue.create ();
    pg_parked = Queue.create ();
    pg_pollers = [];
    pg_next_poller = 0;
  }

type t = {
  fb_machine : Machine.t;
  fb_kind : Event_channel.kind;
  fb_faults : Fault_plan.t;
  fb_heartbeat : int;
  mutable fb_batching : bool;
  mutable fb_groups : pgroup array;  (* poller groups; one global group by default *)
  mutable fb_grouping : grouping;
  mutable fb_spawn : (name:string -> core:int -> (unit -> unit) -> Exec.thread) option;
  mutable fb_next_poller : int;  (* global poller-name counter *)
  mutable fb_stop : bool;
  mutable fb_wakes_pending : int;  (* poller wakeups scheduled but not yet run *)
  mutable fb_endpoints : endpoint list;
  mutable fb_inject_ep : endpoint option;
  fb_locals : (string, local_entry) Hashtbl.t;
  fb_promo : (string * string, int ref) Hashtbl.t;  (* (kind, key) -> hits *)
  mutable fb_admission : admission option;
  mutable fb_attentive_polls : int;  (* doorbell-suppression window width *)
  mutable fb_shed_mode : bool;
  mutable fb_shed_flipped : endpoint list;  (* endpoints the watchdog flipped Sync->Async *)
  mutable fb_monitor_armed : bool;
  (* Metric handles resolved once and cached: the watchdog gauges and the
     per-kind crossing-latency recorders would otherwise re-walk the
     string-keyed registry index on every heartbeat / traced call. *)
  mutable fb_shed_gauges : (Mv_obs.Metrics.gauge * Mv_obs.Metrics.gauge * Mv_obs.Metrics.gauge) option;
  fb_crossing_lat : (string, Mv_obs.Metrics.latency) Hashtbl.t;
  mutable n_calls : int;
  mutable n_transport : int;
  mutable n_riders : int;
  mutable n_ride_timeouts : int;
  mutable n_drains : int;
  mutable n_drained : int;
  mutable n_local_hits : int;
  mutable n_local_misses : int;
  mutable n_errno_retries : int;
  mutable n_reroutes : int;
  mutable n_fallbacks : int;
  mutable n_respawns : int;
  mutable n_admitted : int;
  mutable n_sheds : int;  (* typed Overload replies returned to the stub *)
  mutable n_shed_retries : int;  (* stub backoff retries after an Overload *)
  mutable n_blocked : int;  (* callers parked in an admission queue *)
  mutable n_queue_rejects : int;  (* admission-queue overflow sheds *)
  mutable n_shed_flips : int;  (* shed-mode entries *)
  mutable n_shed_restores : int;  (* shed-mode exits *)
}

(* Doorbell-suppression window defaults; see the attentive-poll comment
   above [serve_endpoint].  The watchdog widens the window by
   [shed_attentive_widening] while in shed mode. *)
let default_attentive_polls = 4
let shed_attentive_widening = 4

let create ?(faults = Fault_plan.none) ?(batching = true) ?heartbeat machine ~kind =
  let heartbeat =
    match heartbeat with
    | Some h -> h
    | None -> 4 * machine.Machine.costs.Costs.async_channel_rtt
  in
  {
    fb_machine = machine;
    fb_kind = kind;
    fb_faults = faults;
    fb_heartbeat = heartbeat;
    fb_batching = batching;
    fb_groups = [| make_pgroup [] |];
    fb_grouping = Global;
    fb_spawn = None;
    fb_next_poller = 0;
    fb_stop = false;
    fb_wakes_pending = 0;
    fb_endpoints = [];
    fb_inject_ep = None;
    fb_locals = Hashtbl.create 8;
    fb_promo = Hashtbl.create 32;
    fb_admission = None;
    fb_attentive_polls = default_attentive_polls;
    fb_shed_mode = false;
    fb_shed_flipped = [];
    fb_monitor_armed = false;
    fb_shed_gauges = None;
    fb_crossing_lat = Hashtbl.create 8;
    n_calls = 0;
    n_transport = 0;
    n_riders = 0;
    n_ride_timeouts = 0;
    n_drains = 0;
    n_drained = 0;
    n_local_hits = 0;
    n_local_misses = 0;
    n_errno_retries = 0;
    n_reroutes = 0;
    n_fallbacks = 0;
    n_respawns = 0;
    n_admitted = 0;
    n_sheds = 0;
    n_shed_retries = 0;
    n_blocked = 0;
    n_queue_rejects = 0;
    n_shed_flips = 0;
    n_shed_restores = 0;
  }

let set_batching t flag = t.fb_batching <- flag
let batching t = t.fb_batching
let resilient t = Fault_plan.enabled t.fb_faults
let channel ep = ep.ep_chan
let endpoint_name ep = ep.ep_name

(* Ring costs: shared-memory stores and flag polls, a fraction of the
   sync-channel round trip (both live in the shared data page). *)
let ring_cost t = t.fb_machine.Machine.costs.Costs.sync_channel_same_socket / 4
let ack_latency t = t.fb_machine.Machine.costs.Costs.sync_channel_same_socket / 2

let sched_now t fn =
  let exec = t.fb_machine.Machine.exec in
  let sim = Exec.sim exec in
  Sim.schedule_at sim (max (Exec.local_now exec) (Sim.now sim)) fn

let sched_after t delay fn =
  let exec = t.fb_machine.Machine.exec in
  let sim = Exec.sim exec in
  Sim.schedule_at sim (max (Exec.local_now exec) (Sim.now sim) + delay) fn

(* --- admission control --------------------------------------------- *)

let bucket_of t ep ad =
  match ep.ep_bucket with
  | Some b -> b
  | None ->
      let b =
        Mv_util.Token_bucket.create ~rate:ad.ad_rate ~burst:ad.ad_burst
          ~now:(Machine.now t.fb_machine)
      in
      ep.ep_bucket <- Some b;
      b

(* Admit parked callers from the endpoint's FIFO admission queue while
   ring space and a token are both available.  The waker consumes the
   token and reserves the ring slot ([ep_granted]) on the waiter's behalf,
   so the wake is never spurious and admission order is exactly queue
   order.  When the queue is blocked on the token bucket alone, arm one
   timer for the refill instant — every other unblocking edge (a drain
   freeing ring slots, a slot reclaim) re-enters here directly, so no
   waiter can be lost. *)
let rec pump_admission t ep =
  match t.fb_admission with
  | None -> ()
  | Some ad ->
      let rec go () =
        if ep.ep_nwaiters > 0 && ep.ep_npending + ep.ep_granted < ad.ad_ring_capacity
        then begin
          let b = bucket_of t ep ad in
          let now = Machine.now t.fb_machine in
          if Mv_util.Token_bucket.take b ~now then (
            match Queue.take_opt ep.ep_waiters with
            | Some wake ->
                ep.ep_nwaiters <- ep.ep_nwaiters - 1;
                ep.ep_granted <- ep.ep_granted + 1;
                sched_now t wake;
                go ()
            | None -> ())
          else if not ep.ep_refill_armed then begin
            ep.ep_refill_armed <- true;
            let wait = max 1 (Mv_util.Token_bucket.next_available b ~now) in
            sched_after t wait (fun () ->
                ep.ep_refill_armed <- false;
                pump_admission t ep)
          end
        end
      in
      go ()

(* --- batching ring drain (shared between servers and leaders) --- *)

(* Runs server-side (in whichever context executes the drain): service
   every Pending slot, ack riders through the shared page. *)
let drain_ring t ep =
  if not (Queue.is_empty ep.ep_ring) then begin
    t.n_drains <- t.n_drains + 1;
    (* The batch span covers every slot this drain services: the leader
       and its riders share it (their per-crossing service segments are
       measured inside). *)
    Tracer.with_span t.fb_machine.Machine.obs ~name:ep.ep_batch_label ~cat:"fabric"
      (fun () ->
        let before = t.n_drained in
        let rec go () =
          match Queue.take_opt ep.ep_ring with
          | None -> ()
          | Some slot ->
              (match slot.sl_state with
              | Slot_claimed | Slot_done | Slot_taken -> ()  (* reclaimed or stale *)
              | Slot_pending ->
                  slot.sl_state <- Slot_taken;
                  (* Ring scan + payload fetch from the shared page. *)
                  Machine.charge t.fb_machine (ring_cost t);
                  slot.sl_req.Event_channel.req_run ();
                  slot.sl_state <- Slot_done;
                  ep.ep_npending <- ep.ep_npending - 1;
                  t.n_drained <- t.n_drained + 1;
                  (* Completion flag store + the rider's poll notice. *)
                  (match slot.sl_wake with
                  | Some w ->
                      slot.sl_wake <- None;
                      sched_after t (ack_latency t) w
                  | None -> ()));
              go ()
        in
        go ();
        if Tracer.enabled t.fb_machine.Machine.obs then
          Tracer.annotate t.fb_machine.Machine.obs "drained"
            (string_of_int (t.n_drained - before)));
    (* Ring slots were freed: admit parked callers in FIFO order. *)
    pump_admission t ep
  end

(* --- poller pool (the ROS side) --- *)

(* The poller group an endpoint with this server core routes to: group 0
   under global pooling, the core's socket group under per-socket
   grouping. *)
let group_index_for t ~ros_core =
  match t.fb_grouping with
  | Global -> 0
  | Per_socket ->
      let s = Topology.socket_of t.fb_machine.Machine.topo ros_core in
      let idx = ref 0 in
      Array.iteri (fun i pg -> if pg.pg_socket = s then idx := i) t.fb_groups;
      !idx

let group_of t ep =
  t.fb_groups.(min ep.ep_group (Array.length t.fb_groups - 1))

let rec wake_poller t pg =
  match Queue.take_opt pg.pg_parked with
  | None -> ()  (* every poller is busy; they re-check the runq before parking *)
  | Some (th, wake) ->
      if Exec.state t.fb_machine.Machine.exec th = Exec.Finished then
        (* Killed while parked: its waker is stale, try the next one. *)
        wake_poller t pg
      else begin
        (* Count scheduled-but-not-yet-run wakeups so the pool watchdog can
           tell a stranded token (its wakeup died with a killed poller) from
           one that is already being picked up. *)
        t.fb_wakes_pending <- t.fb_wakes_pending + 1;
        sched_now t (fun () ->
            t.fb_wakes_pending <- t.fb_wakes_pending - 1;
            wake ())
      end

(* How many empty ring polls an attentive server tolerates before parking
   again ([fb_attentive_polls]), and therefore how long doorbell
   suppression outlives the doorbell: a burst of callers pays one
   transport round trip total, then rides the shared page at store+poll
   cost.  The default window is 4 polls; the load-shedding watchdog widens
   it while in shed mode so saturated endpoints are served exit-lessly,
   and restores it on drain. *)

let serve_endpoint t ep =
  (* One poller at a time may own a channel's server side ([serving] is
     per-channel state); losers drop the token — the owner drains until
     both the channel and the ring are empty, so nothing is lost.  The
     final empty scan, the flag clears and the exit happen in one
     host-atomic segment, so a request enqueued after them always raises
     a fresh doorbell. *)
  if not ep.ep_busy then begin
    ep.ep_busy <- true;
    Fun.protect
      ~finally:(fun () ->
        ep.ep_busy <- false;
        ep.ep_attentive <- false)
      (fun () ->
        Tracer.with_span t.fb_machine.Machine.obs ~name:ep.ep_serve_label
          ~cat:"ros"
        @@ fun () ->
        let rec drain served =
          match Event_channel.poll_next ep.ep_chan with
          | None ->
              let before = t.n_drained in
              drain_ring t ep;
              if t.n_drained > before then drain true else served
          | Some req ->
              req.Event_channel.req_run ();
              Event_channel.complete ep.ep_chan;
              drain true
          | exception Event_channel.Protocol_error msg ->
              Machine.emit t.fb_machine (Trace.Server_survived { msg });
              drain served
        in
        (* The first pass answers the doorbell that woke us.  Afterwards
           stay attentive: keep polling the shared ring for a few beats so
           follow-up requests ride instead of paying a fresh doorbell and
           transport pickup ("Look Mum, no VM Exits!"-style exit-less
           servicing on the partitioned server side). *)
        let rec attentive misses =
          if misses < t.fb_attentive_polls && not t.fb_stop then begin
            Exec.sleep t.fb_machine.Machine.exec (ack_latency t);
            if drain false then attentive 0 else attentive (misses + 1)
          end
        in
        if drain false then begin
          ep.ep_attentive <- true;
          attentive 0
        end)
  end

let poller_loop t pg () =
  let exec = t.fb_machine.Machine.exec in
  let me = Exec.self exec in
  let rec go () =
    if not t.fb_stop then
      match Queue.take_opt pg.pg_runq with
      | Some ep ->
          (* Clearing the token flag before serving keeps the doorbell
             live: entries enqueued while we drain re-announce themselves
             (and the announce-then-check order below makes the last one
             visible to whoever serves). *)
          ep.ep_announced <- false;
          serve_endpoint t ep;
          go ()
      | None ->
          Exec.block exec ~reason:"fabric:poll" (fun ~now:_ ~wake ->
              Queue.add (me, fun () -> wake ()) pg.pg_parked);
          go ()
  in
  go ()

let spawn_poller t pg =
  match t.fb_spawn with
  | None -> failwith "Fabric: poller pool not started"
  | Some spawn ->
      let cores = match pg.pg_cores with [] -> [ 0 ] | cs -> cs in
      let core = List.nth cores (pg.pg_next_poller mod List.length cores) in
      let name = Printf.sprintf "fabric/poller-%d" t.fb_next_poller in
      t.fb_next_poller <- t.fb_next_poller + 1;
      pg.pg_next_poller <- pg.pg_next_poller + 1;
      spawn ~name ~core (poller_loop t pg)

(* Pool watchdog (armed only under a fault plan): respawn dead pollers one
   beat after they die — recovery mirrors the per-group partner watchdog
   it replaces — and drive the Partner_kill injection site.  A poller may
   only be killed while parked idle, so exactly-once payload execution
   survives the kill. *)
let rec pool_monitor t () =
  if not t.fb_stop then begin
    let exec = t.fb_machine.Machine.exec in
    Array.iter
      (fun pg ->
        pg.pg_pollers <-
          List.map
            (fun th ->
              if Exec.state exec th = Exec.Finished then begin
                t.n_respawns <- t.n_respawns + 1;
                Machine.emit t.fb_machine (Trace.Watchdog_respawn { was = Exec.name th });
                spawn_poller t pg
              end
              else th)
            pg.pg_pollers;
        List.iter
          (fun th ->
            match Exec.state exec th with
            | Exec.Blocked r
              when r = "fabric:poll"
                   && Fault_plan.fire t.fb_faults Fault_plan.Partner_kill (Exec.name th) ->
                Exec.kill exec th
            | _ -> ())
          pg.pg_pollers;
        (* Tokens whose wakeup died with a killed poller are re-announced.
           The pending-wake guard keeps this from firing on a token that is
           already being picked up — under a never-firing plan this branch is
           unreachable, preserving schedule neutrality. *)
        if (not (Queue.is_empty pg.pg_runq)) && t.fb_wakes_pending = 0 then
          wake_poller t pg)
      t.fb_groups;
    Sim.schedule_after (Exec.sim exec) t.fb_heartbeat (pool_monitor t)
  end

let start_pool t ~spawn ~cores ?size ?(grouping = Global) () =
  let total = match size with Some n -> max 1 n | None -> max 2 (List.length cores) in
  t.fb_spawn <- Some spawn;
  t.fb_grouping <- grouping;
  let groups =
    match grouping with
    | Global -> [| make_pgroup cores |]
    | Per_socket ->
        (* One group per socket that owns at least one pool core, in
           ascending socket order — the routing is a pure function of the
           topology. *)
        let topo = t.fb_machine.Machine.topo in
        let sockets =
          List.sort_uniq compare (List.map (Topology.socket_of topo) cores)
        in
        sockets
        |> List.map (fun s ->
               make_pgroup ~socket:s
                 (List.filter (fun c -> Topology.socket_of topo c = s) cores))
        |> Array.of_list
  in
  (* Endpoints may predate the pool: recompute their routing, carrying any
     outstanding doorbell tokens into the new group run queues. *)
  let stale_tokens =
    Array.to_list t.fb_groups
    |> List.concat_map (fun pg ->
           List.rev (Queue.fold (fun acc ep -> ep :: acc) [] pg.pg_runq))
  in
  t.fb_groups <- groups;
  List.iter
    (fun ep -> ep.ep_group <- group_index_for t ~ros_core:ep.ep_ros_core)
    t.fb_endpoints;
  List.iter (fun ep -> Queue.add ep (group_of t ep).pg_runq) stale_tokens;
  (* Each group's poller count follows its share of the pool cores (the
     global group owns them all, so this is [total] there): a group never
     gets more pollers than it can spread over its own cores, which would
     only stack fibers on the busiest socket. *)
  let ncores = max 1 (List.length cores) in
  Array.iter
    (fun pg ->
      let share = max 1 (total * List.length pg.pg_cores / ncores) in
      for _ = 1 to share do
        pg.pg_pollers <- spawn_poller t pg :: pg.pg_pollers
      done)
    groups;
  if resilient t then
    Sim.schedule_after (Exec.sim t.fb_machine.Machine.exec) t.fb_heartbeat (pool_monitor t)

let endpoint t ~name ~ros_core ~hrt_core =
  let ch =
    Event_channel.create ~faults:t.fb_faults t.fb_machine ~kind:t.fb_kind ~ros_core
      ~hrt_core
  in
  let ep =
    {
      ep_name = name;
      ep_batch_label = "batch:" ^ name;
      ep_serve_label = "serve:" ^ name;
      ep_chan = ch;
      ep_ros_core = ros_core;
      ep_group = 0;
      ep_ring = Queue.create ();
      ep_inflight = false;
      ep_npending = 0;
      ep_busy = false;
      ep_announced = false;
      ep_attentive = false;
      ep_bucket = None;
      ep_waiters = Queue.create ();
      ep_nwaiters = 0;
      ep_granted = 0;
      ep_refill_armed = false;
      ep_occupancy_hw = 0;
    }
  in
  (* The channel doorbell becomes a fabric run-queue token, suppressed
     while one is already outstanding for this endpoint: the token's owner
     drains the channel until empty, so one token covers any number of
     enqueued entries (and the run queue never accumulates stale tokens). *)
  ep.ep_group <- group_index_for t ~ros_core;
  Event_channel.set_notify ch
    (Some
       (fun () ->
         if not ep.ep_announced then begin
           ep.ep_announced <- true;
           let pg = group_of t ep in
           Queue.add ep pg.pg_runq;
           wake_poller t pg
         end));
  t.fb_endpoints <- ep :: t.fb_endpoints;
  ep

(* Core lending moved [core] out of its partition: every endpoint binding
   that referenced it re-routes.  A server-side (ROS) binding follows
   [ros_to] — poller-group routing and the channel's server core move
   together, and the poller pool's spawn cores drop the lent core so a
   watchdog respawn never lands on it.  An HRT-side binding follows
   [hrt_to].  In-flight ring slots and queued channel entries carry over
   untouched (their wakes are thread-homed and the executor re-homed
   those), so no request or wakeup is lost across the move. *)
let rehome_core t ~core ?ros_to ?hrt_to () =
  let rerouted = ref 0 in
  (match ros_to with
  | None -> ()
  | Some r ->
      Array.iter
        (fun pg ->
          if List.mem core pg.pg_cores then begin
            let cs = List.filter (fun c -> c <> core) pg.pg_cores in
            pg.pg_cores <- (if List.mem r cs then cs else cs @ [ r ])
          end)
        t.fb_groups);
  List.iter
    (fun ep ->
      (match ros_to with
      | Some r when ep.ep_ros_core = core ->
          ep.ep_ros_core <- r;
          Event_channel.rehome ep.ep_chan ~ros_core:r ();
          ep.ep_group <- group_index_for t ~ros_core:r;
          incr rerouted
      | Some _ | None -> ());
      match hrt_to with
      | Some h when Event_channel.hrt_core ep.ep_chan = core ->
          Event_channel.rehome ep.ep_chan ~hrt_core:h ();
          incr rerouted
      | Some _ | None -> ())
    t.fb_endpoints;
  !rerouted

(* --- load-shedding watchdog ---------------------------------------- *)

let ring_occupancy t =
  List.fold_left (fun m ep -> Stdlib.max m ep.ep_npending) 0 t.fb_endpoints

let ring_occupancy_hw t =
  List.fold_left (fun m ep -> Stdlib.max m ep.ep_occupancy_hw) 0 t.fb_endpoints

(* Shed-mode entry flips live Sync endpoints onto the always-works Async
   hypercall channel — under saturation the sync shared-word polling burns
   the very poller cycles the backlog needs — and remembers exactly which
   endpoints it flipped so the drain-side restore never promotes a channel
   that degraded because its sync path actually died. *)
let flip_endpoints_async t =
  List.iter
    (fun ep ->
      if
        Event_channel.kind ep.ep_chan = Event_channel.Sync
        && not (Event_channel.failed ep.ep_chan)
      then begin
        Event_channel.degrade_to_async ep.ep_chan;
        t.fb_shed_flipped <- ep :: t.fb_shed_flipped
      end)
    t.fb_endpoints

let restore_endpoints t =
  List.iter (fun ep -> Event_channel.restore_sync ep.ep_chan) t.fb_shed_flipped;
  t.fb_shed_flipped <- []

(* The watchdog samples ring occupancy every heartbeat and runs the
   high/low-water hysteresis: crossing [ad_high_water] (as a fraction of
   ring capacity) enters shed mode — Sync endpoints flip to Async and the
   doorbell-suppression window widens — and draining below [ad_low_water]
   restores both.  It also publishes the occupancy gauges. *)
let rec shed_monitor t () =
  match t.fb_admission with
  | None -> t.fb_monitor_armed <- false
  | Some _ when t.fb_stop -> t.fb_monitor_armed <- false
  | Some ad ->
      let cap = Stdlib.max 1 ad.ad_ring_capacity in
      let occ = ring_occupancy t in
      let g_occ, g_waiters, g_shed =
        match t.fb_shed_gauges with
        | Some g -> g
        | None ->
            let m = t.fb_machine.Machine.metrics in
            let g =
              ( Mv_obs.Metrics.gauge m ~ns:"fabric" "ring_occupancy",
                Mv_obs.Metrics.gauge m ~ns:"fabric" "admission_waiters",
                Mv_obs.Metrics.gauge m ~ns:"fabric" "shed_mode" )
            in
            t.fb_shed_gauges <- Some g;
            g
      in
      Mv_obs.Metrics.set_gauge g_occ (float_of_int occ);
      Mv_obs.Metrics.set_gauge g_waiters
        (float_of_int (List.fold_left (fun a ep -> a + ep.ep_nwaiters) 0 t.fb_endpoints));
      let frac = float_of_int occ /. float_of_int cap in
      if (not t.fb_shed_mode) && frac >= ad.ad_high_water then begin
        t.fb_shed_mode <- true;
        t.n_shed_flips <- t.n_shed_flips + 1;
        t.fb_attentive_polls <- default_attentive_polls * shed_attentive_widening;
        flip_endpoints_async t;
        Machine.emit t.fb_machine (Trace.Shed_mode { on = true })
      end
      else if t.fb_shed_mode && frac <= ad.ad_low_water then begin
        t.fb_shed_mode <- false;
        t.n_shed_restores <- t.n_shed_restores + 1;
        t.fb_attentive_polls <- default_attentive_polls;
        restore_endpoints t;
        Machine.emit t.fb_machine (Trace.Shed_mode { on = false })
      end;
      Mv_obs.Metrics.set_gauge g_shed (if t.fb_shed_mode then 1. else 0.);
      Sim.schedule_after (Exec.sim t.fb_machine.Machine.exec) t.fb_heartbeat (shed_monitor t)

let set_admission t ad =
  t.fb_admission <- ad;
  (* Bucket parameters may have changed: rebuild lazily on next use, and
     give any parked waiters a chance to pass under the new policy. *)
  List.iter (fun ep -> ep.ep_bucket <- None) t.fb_endpoints;
  List.iter (fun ep -> pump_admission t ep) t.fb_endpoints;
  match ad with
  | Some _ when not t.fb_monitor_armed ->
      t.fb_monitor_armed <- true;
      Sim.schedule_after (Exec.sim t.fb_machine.Machine.exec) t.fb_heartbeat (shed_monitor t)
  | _ -> ()

let admission t = t.fb_admission
let shed_mode t = t.fb_shed_mode

let make_admission ?(policy = Shed) ?(ring_capacity = 8) ?(queue_capacity = 16)
    ?(rate = 1e-4) ?(burst = 4) ?(high_water = 0.75) ?(low_water = 0.25)
    ?(shed_retries = 6) () =
  if ring_capacity < 1 then invalid_arg "Fabric.make_admission: ring_capacity < 1";
  if queue_capacity < 0 then invalid_arg "Fabric.make_admission: queue_capacity < 0";
  if not (low_water <= high_water) then
    invalid_arg "Fabric.make_admission: low_water > high_water";
  {
    ad_policy = policy;
    ad_ring_capacity = ring_capacity;
    ad_queue_capacity = queue_capacity;
    ad_rate = rate;
    ad_burst = burst;
    ad_high_water = high_water;
    ad_low_water = low_water;
    ad_shed_retries = shed_retries;
  }

let shutdown t =
  t.fb_stop <- true;
  let exec = t.fb_machine.Machine.exec in
  Array.iter
    (fun pg ->
      let rec release () =
        match Queue.take_opt pg.pg_parked with
        | None -> ()
        | Some (th, wake) ->
            if Exec.state exec th <> Exec.Finished then sched_now t wake;
            release ()
      in
      release ())
    t.fb_groups

(* --- transport with graceful degradation --- *)

(* Last-resort degradation: the endpoint (or the whole HRT partition) is
   lost, so instead of wedging, pay a native trap and run the payload in
   the caller's context — the legacy path that always works. *)
let reroute t (req : Event_channel.request) =
  t.n_reroutes <- t.n_reroutes + 1;
  Machine.emit t.fb_machine
    (Trace.Reroute { kind = req.Event_channel.req_kind; spurious_errnos = false });
  Machine.charge t.fb_machine t.fb_machine.Machine.costs.Costs.syscall_trap;
  req.Event_channel.req_run ()

(* Channel call with the degradation chain: on exhausted retries a Sync
   endpoint falls back to the always-works Async hypercall channel; if
   even that fails, the endpoint is declared dead and this plus all
   subsequent requests reroute to ROS-native execution. *)
let transport t ep (req : Event_channel.request) =
  t.n_transport <- t.n_transport + 1;
  if not (resilient t) then Event_channel.call ep.ep_chan req
  else if Event_channel.failed ep.ep_chan then reroute t req
  else
    try Event_channel.call ep.ep_chan req
    with Event_channel.Channel_failure _ ->
      if Event_channel.kind ep.ep_chan = Event_channel.Sync then begin
        Event_channel.degrade_to_async ep.ep_chan;
        t.n_fallbacks <- t.n_fallbacks + 1;
        Machine.emit t.fb_machine
          (Trace.Fallback_sync_to_async { kind = req.Event_channel.req_kind });
        try Event_channel.call ep.ep_chan req
        with Event_channel.Channel_failure _ ->
          Event_channel.mark_failed ep.ep_chan;
          reroute t req
      end
      else begin
        Event_channel.mark_failed ep.ep_chan;
        reroute t req
      end

(* --- batching: leaders, riders --- *)

(* Ride while somebody will service the ring without a new doorbell: a
   leader's doorbell is pending, or the endpoint's server is attentively
   polling the shared page. *)
let rec dispatch t ep (req : Event_channel.request) =
  if t.fb_batching && (ep.ep_inflight || ep.ep_attentive) then ride t ep req
  else lead t ep req

(* The leader rings the doorbell for everyone: its payload carries a ring
   drain that services every rider queued so far.  The suppression window
   is "doorbell rung but not yet answered" — the server closes it (first
   thing in the payload) before scanning the ring, so a caller arriving
   after the scan rings its own doorbell instead of waiting on a ride
   nobody will service.  The post-transport loop is only a backstop for
   degraded paths; on the healthy path the window discipline guarantees
   the payload drain leaves no rider pending. *)
and lead t ep (req : Event_channel.request) =
  ep.ep_inflight <- true;
  Fun.protect
    ~finally:(fun () -> ep.ep_inflight <- false)
    (fun () ->
      transport t ep
        {
          req with
          Event_channel.req_run =
            (fun () ->
              ep.ep_inflight <- false;
              req.Event_channel.req_run ();
              drain_ring t ep);
        };
      (* Backstop for degraded paths only: an attentive server is already
         committed to the remaining slots, and on the healthy path the
         window discipline leaves none pending. *)
      while ep.ep_npending > 0 && not ep.ep_attentive do
        transport t ep
          { Event_channel.req_kind = "#drain"; req_run = (fun () -> drain_ring t ep) }
      done)

(* A rider queues into the shared-page ring: no hypercall, no doorbell —
   the in-flight leader's drain services it.  Under a fault plan the ride
   carries its own timeout; a timed-out Pending slot is reclaimed
   (host-atomically, see the slot-state comment) and re-dispatched. *)
and ride t ep (req : Event_channel.request) =
  t.n_riders <- t.n_riders + 1;
  let exec = t.fb_machine.Machine.exec in
  let slot = { sl_req = req; sl_state = Slot_pending; sl_wake = None } in
  Queue.add slot ep.ep_ring;
  ep.ep_npending <- ep.ep_npending + 1;
  if ep.ep_npending > ep.ep_occupancy_hw then ep.ep_occupancy_hw <- ep.ep_npending;
  (* The ring-slot store into the shared page. *)
  Machine.charge t.fb_machine (ring_cost t);
  let timeout = if resilient t then Some (64 * Event_channel.rtt ep.ep_chan) else None in
  let rec wait () =
    let outcome =
      Exec.block exec
        ~reason:(Mv_util.Intern.get reason_ride req.Event_channel.req_kind)
        (fun ~now ~wake ->
          let live = ref true in
          slot.sl_wake <-
            Some
              (fun () ->
                if !live then begin
                  live := false;
                  wake `Done
                end);
          match timeout with
          | Some cycles ->
              Sim.schedule_at (Exec.sim exec) (now + cycles) (fun () ->
                  if !live then begin
                    live := false;
                    wake `Timeout
                  end)
          | None -> ())
    in
    match outcome with
    | `Done -> ()
    | `Timeout -> (
        match slot.sl_state with
        | Slot_done -> ()  (* the drain won the race *)
        | Slot_taken -> wait ()  (* server mid-payload: re-arm and keep waiting *)
        | Slot_pending ->
            (* Reclaim and escalate: ring our own doorbell after all. *)
            slot.sl_state <- Slot_claimed;
            ep.ep_npending <- ep.ep_npending - 1;
            pump_admission t ep;
            t.n_ride_timeouts <- t.n_ride_timeouts + 1;
            Machine.emit t.fb_machine
              (Trace.Ride_timeout { kind = req.Event_channel.req_kind });
            dispatch t ep req
        | Slot_claimed -> assert false)
  in
  wait ()

(* --- promotion table (HRT-local fast paths) --- *)

let install_local t ~kind ?(promote_after = 0) ?(cost = 0) () =
  Hashtbl.replace t.fb_locals kind { le_promote_after = promote_after; le_cost = cost }

let local_path t ~key ~local_try (req : Event_channel.request) =
  match Hashtbl.find_opt t.fb_locals req.Event_channel.req_kind with
  | None -> false
  | Some le ->
      let k = (req.Event_channel.req_kind, Option.value key ~default:"") in
      let hits =
        match Hashtbl.find_opt t.fb_promo k with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.replace t.fb_promo k r;
            r
      in
      if !hits >= le.le_promote_after then begin
        let attempt =
          match local_try with
          | Some f -> f
          | None ->
              fun () ->
                req.Event_channel.req_run ();
                true
        in
        if attempt () then begin
          incr hits;
          if le.le_cost > 0 then Machine.charge t.fb_machine le.le_cost;
          t.n_local_hits <- t.n_local_hits + 1;
          true
        end
        else begin
          (* Demote: this key goes back to forwarding and must re-earn
             promotion (e.g. a write-barrier page that keeps re-faulting). *)
          hits := 0;
          t.n_local_misses <- t.n_local_misses + 1;
          false
        end
      end
      else begin
        incr hits;
        false
      end

(* --- the admission gate (guest-side stub) -------------------------- *)

(* One gate pass per caller-visible forwarded request, evaluated after a
   local fast-path miss and before the request engages the transport.
   Admission needs ring space (the bounded slot ring) and a token from the
   endpoint's bucket; the errno retry chain and ride-timeout re-dispatches
   of an admitted request do not re-enter the gate.

   On refusal the [Shed] policy returns the typed [Overload] reply and the
   stub retries with exponential backoff (the PR 1 discipline, paid as
   simulated sleep so servers drain meanwhile); an impatient caller
   ({!offer}) gives up after [ad_shed_retries] replies.  The [Block]
   policy parks the caller in the endpoint's FIFO admission queue —
   backpressure on the enqueuing group — falling back to shedding only
   when that queue overflows its explicit capacity. *)
let admission_gate t ep ~patient (req : Event_channel.request) =
  match t.fb_admission with
  | None -> Ok ()
  | Some ad ->
      let exec = t.fb_machine.Machine.exec in
      let base = Event_channel.rtt ep.ep_chan in
      let max_backoff = 64 * base in
      let enqueue_waiter () =
        t.n_blocked <- t.n_blocked + 1;
        Exec.block exec
          ~reason:(Mv_util.Intern.get reason_admit req.Event_channel.req_kind)
          (fun ~now:_ ~wake ->
            ep.ep_nwaiters <- ep.ep_nwaiters + 1;
            Queue.add (fun () -> wake ()) ep.ep_waiters;
            (* The pump wakes us via a scheduled event, so kicking it from
               the registration segment cannot wake a not-yet-parked
               thread. *)
            pump_admission t ep);
        (* The waker consumed a token and reserved our ring slot. *)
        ep.ep_granted <- ep.ep_granted - 1
      in
      let rec attempt ~sheds ~backoff =
        let admissible =
          if ep.ep_npending + ep.ep_granted >= ad.ad_ring_capacity then false
          else if ad.ad_policy = Block && ep.ep_nwaiters > 0 then
            false (* FIFO fairness: nobody overtakes the admission queue *)
          else
            Mv_util.Token_bucket.take (bucket_of t ep ad)
              ~now:(Machine.now t.fb_machine)
        in
        if admissible then begin
          t.n_admitted <- t.n_admitted + 1;
          Ok ()
        end
        else if ad.ad_policy = Block && ep.ep_nwaiters < ad.ad_queue_capacity then begin
          enqueue_waiter ();
          t.n_admitted <- t.n_admitted + 1;
          Ok ()
        end
        else begin
          if ad.ad_policy = Block then t.n_queue_rejects <- t.n_queue_rejects + 1;
          t.n_sheds <- t.n_sheds + 1;
          Machine.emit t.fb_machine
            (Trace.Overload_shed
               { kind = req.Event_channel.req_kind; endpoint = ep.ep_name });
          if (not patient) && sheds + 1 > ad.ad_shed_retries then
            Error
              {
                ov_kind = req.Event_channel.req_kind;
                ov_endpoint = ep.ep_name;
                ov_sheds = sheds + 1;
              }
          else begin
            t.n_shed_retries <- t.n_shed_retries + 1;
            Exec.sleep exec backoff;
            attempt ~sheds:(sheds + 1) ~backoff:(Stdlib.min max_backoff (backoff * 2))
          end
        end
      in
      attempt ~sheds:0 ~backoff:base

let admit_patient t ep req =
  match admission_gate t ep ~patient:true req with
  | Ok () -> ()
  | Error _ -> assert false (* a patient gate never sheds terminally *)

(* --- the caller-facing entry point --- *)

(* Route a request that missed the local fast path: straight dispatch, or
   the spurious-errno retry chain when this call site is an errno fault
   site under an armed plan. *)
let route t ep ~errno_site (req : Event_channel.request) =
  if not (errno_site && resilient t) then dispatch t ep req
  else begin
    (* Spurious-errno injection and retry for forwarded syscalls: the
       server-side runner draws the errno stream; an injected errno means
       the payload never ran, so retry with exponential backoff and after
       persistent failures run it ROS-natively. *)
    let rec go attempt backoff =
      let ran = ref false in
      let wrapped =
        {
          req with
          Event_channel.req_run =
            (fun () ->
              if Event_channel.failed ep.ep_chan then begin
                ran := true;
                req.Event_channel.req_run ()
              end
              else
                match Fault_plan.syscall_errno t.fb_faults req.Event_channel.req_kind with
                | Some _errno -> ()  (* spurious errno: the payload never ran *)
                | None ->
                    ran := true;
                    req.Event_channel.req_run ());
        }
      in
      dispatch t ep wrapped;
      if not !ran then
        if attempt >= 4 then begin
          t.n_reroutes <- t.n_reroutes + 1;
          Machine.emit t.fb_machine
            (Trace.Reroute { kind = req.Event_channel.req_kind; spurious_errnos = true });
          Machine.charge t.fb_machine t.fb_machine.Machine.costs.Costs.syscall_trap;
          req.Event_channel.req_run ()
        end
        else begin
          t.n_errno_retries <- t.n_errno_retries + 1;
          Machine.emit t.fb_machine
            (Trace.Errno_retry { attempt = attempt + 1; kind = req.Event_channel.req_kind });
          Machine.charge t.fb_machine backoff;
          go (attempt + 1) (backoff * 2)
        end
    in
    go 0 (Event_channel.rtt ep.ep_chan)
  end

let crossing_latency t kind =
  match Hashtbl.find_opt t.fb_crossing_lat kind with
  | Some l -> l
  | None ->
      let l =
        Mv_obs.Metrics.latency t.fb_machine.Machine.metrics ~ns:"fabric" ("crossing:" ^ kind)
      in
      Hashtbl.add t.fb_crossing_lat kind l;
      l

let call t ep ?key ?(errno_site = false) ?local_try (req : Event_channel.request) =
  t.n_calls <- t.n_calls + 1;
  let obs = t.fb_machine.Machine.obs in
  if not (Tracer.enabled obs) then begin
    if not (local_path t ~key ~local_try req) then begin
      admit_patient t ep req;
      route t ep ~errno_site req
    end
  end
  else begin
    (* Crossing span: one per caller-visible forwarded request, covering
       the whole ROS<->HRT round trip.  The payload wrapper timestamps the
       server-side pickup and completion (same virtual clock domain on
       both sides), and the three measured child segments — transport,
       service, reply — are recorded on return.  Whatever the segments do
       not cover (fast-path hits, injection overhead) is guest time by
       subtraction.  Nothing here charges simulated cycles. *)
    let now () = Machine.now t.fb_machine in
    let t0 = now () in
    let cid =
      Tracer.begin_span obs
        ~name:(Mv_util.Intern.get span_fwd req.Event_channel.req_kind)
        ~cat:"crossing" ()
    in
    let ran = ref false in
    let pickup = ref t0 and svc_end = ref t0 in
    let inst =
      {
        req with
        Event_channel.req_run =
          (fun () ->
            pickup := now ();
            req.Event_channel.req_run ();
            svc_end := now ();
            ran := true);
      }
    in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now () in
        if !ran then begin
          ignore
            (Tracer.complete obs ~parent:cid ~name:"transport" ~cat:"transport" ~ts:t0
               ~dur:(!pickup - t0) ());
          ignore
            (Tracer.complete obs ~parent:cid ~name:"service" ~cat:"service" ~ts:!pickup
               ~dur:(!svc_end - !pickup) ());
          ignore
            (Tracer.complete obs ~parent:cid ~name:"reply" ~cat:"reply" ~ts:!svc_end
               ~dur:(t1 - !svc_end) ())
        end;
        Tracer.end_span obs cid;
        Mv_obs.Metrics.observe
          (crossing_latency t req.Event_channel.req_kind)
          (float_of_int (t1 - t0)))
      (fun () ->
        if not (local_path t ~key ~local_try inst) then begin
          admit_patient t ep inst;
          route t ep ~errno_site inst
        end)
  end

(* Overload-aware variant of {!call} for open-loop clients that can drop
   work: the admission gate runs impatiently, so after [ad_shed_retries]
   typed [Overload] replies the request is abandoned without ever touching
   the transport (the payload has not run).  With no admission policy
   installed this is {!call} minus the promotion table and tracing. *)
let offer t ep ?(errno_site = false) (req : Event_channel.request) =
  t.n_calls <- t.n_calls + 1;
  match admission_gate t ep ~patient:false req with
  | Error _ as e -> e
  | Ok () ->
      route t ep ~errno_site req;
      Ok ()

(* --- injection (signals) --- *)

let set_inject_endpoint t ep = t.fb_inject_ep <- Some ep

let inject t ?(kind = "#signal-inject") fn =
  match t.fb_inject_ep with
  | Some ep -> Event_channel.post ep.ep_chan { Event_channel.req_kind = kind; req_run = fn }
  | None ->
      (* No injection endpoint wired: deliver after an async round trip,
         the pre-fabric HVM behavior. *)
      sched_after t t.fb_machine.Machine.costs.Costs.async_channel_rtt fn

(* --- counters --- *)

let calls t = t.n_calls
let transport_calls t = t.n_transport
let riders t = t.n_riders
let ride_timeouts t = t.n_ride_timeouts
let drains t = t.n_drains
let drained t = t.n_drained
let local_hits t = t.n_local_hits
let local_misses t = t.n_local_misses

let retries t =
  List.fold_left
    (fun acc ep -> acc + Event_channel.retries ep.ep_chan)
    t.n_errno_retries t.fb_endpoints

let fallbacks t = t.n_fallbacks
let reroutes t = t.n_reroutes
let respawns t = t.n_respawns
let endpoints t = List.length t.fb_endpoints

let pollers t =
  Array.fold_left (fun acc pg -> acc + List.length pg.pg_pollers) 0 t.fb_groups

let poller_groups t = Array.length t.fb_groups

let group_cores t ~group =
  if group < 0 || group >= Array.length t.fb_groups then []
  else t.fb_groups.(group).pg_cores

let endpoint_group _t ep = ep.ep_group
let admitted t = t.n_admitted
let sheds t = t.n_sheds
let shed_retries t = t.n_shed_retries
let admission_blocked t = t.n_blocked
let queue_rejects t = t.n_queue_rejects
let shed_flips t = t.n_shed_flips
let shed_restores t = t.n_shed_restores

let sample_metrics t m =
  let add ~ns name v =
    let c = Mv_obs.Metrics.counter m ~ns name in
    Mv_obs.Metrics.set_counter c (Mv_obs.Metrics.counter_value c + v)
  in
  add ~ns:"fabric" "calls" t.n_calls;
  add ~ns:"fabric" "transport" t.n_transport;
  add ~ns:"fabric" "riders" t.n_riders;
  add ~ns:"fabric" "ride_timeouts" t.n_ride_timeouts;
  add ~ns:"fabric" "drains" t.n_drains;
  add ~ns:"fabric" "drained" t.n_drained;
  add ~ns:"fabric" "local_hits" t.n_local_hits;
  add ~ns:"fabric" "local_misses" t.n_local_misses;
  add ~ns:"fabric" "errno_retries" t.n_errno_retries;
  add ~ns:"fabric" "reroutes" t.n_reroutes;
  add ~ns:"fabric" "fallbacks" t.n_fallbacks;
  add ~ns:"fabric" "respawns" t.n_respawns;
  add ~ns:"fabric" "admitted" t.n_admitted;
  add ~ns:"fabric" "sheds" t.n_sheds;
  add ~ns:"fabric" "shed_retries" t.n_shed_retries;
  add ~ns:"fabric" "admission_blocked" t.n_blocked;
  add ~ns:"fabric" "queue_rejects" t.n_queue_rejects;
  add ~ns:"fabric" "shed_flips" t.n_shed_flips;
  add ~ns:"fabric" "shed_restores" t.n_shed_restores;
  Mv_obs.Metrics.set_gauge
    (Mv_obs.Metrics.gauge m ~ns:"fabric" "ring_occupancy_hw")
    (float_of_int (ring_occupancy_hw t));
  List.iter (fun ep -> Event_channel.sample_metrics ep.ep_chan m) t.fb_endpoints
