(** HVM event channels: the ROS<->HRT communication mechanism.

    A channel is a shared data page plus a signaling discipline.  Two kinds
    exist (paper, Sections 2 and 4.3, measured in Figure 2):

    - {b Async}: hypercall + interrupt injection; ~25 K cycles (1.1 us)
      round trip.  Works without any prior setup.
    - {b Sync}: after an address-space merger, both sides poll a shared
      memory word with no VMM involvement; ~790 cycles same-socket,
      ~1060 cross-socket round trip.

    The server (a Multiverse partner thread in the ROS) handles one request
    at a time; requests from multiple HRT threads of one execution group
    queue ("the top-level HRT thread's corresponding partner acting as the
    communication end-point", paper Section 4.2).

    {b Failure model.}  By default the channel is infallible and the code
    path is byte-identical to a lossless channel.  Under a
    {!Mv_faults.Fault_plan} the channel becomes lossy (drop / delay /
    duplicate / corrupt per the plan) and {e resilient}: each {!call}
    attempt carries a cycle-budget timeout, timed-out calls retry with
    exponential backoff (latencies charged through the ordinary cycle
    model), and payloads are deduplicated server-side so a logical call
    executes exactly once however many times its message is delivered. *)

type kind = Async | Sync

exception Protocol_error of string
(** A violation of the request/complete protocol: completing with nothing
    being served, or a corrupt (injected) request the server must discard.
    Server loops are expected to trace and survive it. *)

exception Channel_failure of string
(** Raised by {!call} when every retry of a request timed out (carries the
    request kind), and by calls on a channel {!mark_failed} earlier.  The
    runtime reacts by degrading: Sync -> Async, then ROS-native rerouting. *)

type request = { req_kind : string; req_run : unit -> unit }
(** A named request carrying its executable payload; the server runs
    [req_run] in its own (ROS) context. *)

type t

val create :
  ?faults:Mv_faults.Fault_plan.t ->
  ?dedup:bool ->
  Mv_engine.Machine.t ->
  kind:kind ->
  ros_core:int ->
  hrt_core:int ->
  t
(** A fault plan (when enabled) arms both injection and the
    timeout/retry/backoff resilience machinery; without one the channel
    behaves exactly as the seed implementation.  [~dedup:false] disables
    the server-side payload deduplication — a deliberately broken protocol
    used only by the mvcheck model checker to prove it can find the
    resulting at-most-once violation. *)

val kind : t -> kind

val rtt : t -> int
(** The modeled round-trip latency in cycles (socket-distance aware). *)

val ros_core : t -> int
val hrt_core : t -> int

val rehome : t -> ?ros_core:int -> ?hrt_core:int -> unit -> unit
(** Retarget one (or both) ends of the channel after core lending moved
    the underlying core.  The RTT follows the new socket distance; armed
    resilience timeouts are re-sized for it.  In-flight entries are
    unaffected — the queue and its wakes carry over, so no request is
    lost across a re-home. *)

val call : t -> request -> unit
(** Issue a request and block until the server completes it (thread
    context, caller side).
    @raise Channel_failure when resilience is armed and retries exhaust. *)

val post : t -> request -> unit
(** Fire-and-forget: enqueue a request with no completion expected.  Safe
    to use outside thread context (e.g. from a signal-injection event).
    Posts carry control messages and are never fault-injected. *)

val serve_next : t -> request
(** Block until a request arrives (server side).
    @raise Protocol_error on an injected-corrupt request (discarded). *)

val poll_next : t -> request option
(** Non-blocking server-side take: [None] when the queue is empty.  For
    poller-pool servers multiplexing several channels.  Charges the same
    poll/notice latency as {!serve_next}'s queue-pop path.
    @raise Protocol_error on an injected-corrupt request (discarded). *)

val set_notify : t -> (unit -> unit) option -> unit
(** Install (or clear) a doorbell hook fired once per enqueued entry in
    place of the parked-server delivery of {!serve_next}.  At-least-once:
    the consumer must treat an empty {!poll_next} as a no-op. *)

val complete : t -> unit
(** Finish the request obtained from {!serve_next}: wakes the caller if it
    was a {!call}; a no-op for {!post}ed requests.
    @raise Protocol_error if nothing is being served. *)

val serve_loop : t -> on_request:(request -> unit) -> unit
(** Convenience server: forever take a request, run [on_request] (which
    should execute [req_run]), complete.  Traces and survives
    {!Protocol_error}.  Never returns. *)

(** {1 Degradation and recovery} *)

val degrade_to_async : t -> unit
(** Fall back from Sync polling to the always-works Async hypercall
    channel (no-op if already Async); re-arms timeouts for async latency. *)

val restore_sync : t -> unit
(** Undo a {!degrade_to_async} flip: promote a live Async channel back to
    Sync polling and re-arm timeouts for sync latency.  No-op on a failed
    or already-Sync channel.  Callers (the fabric's load-shedding
    watchdog) must only restore channels they themselves degraded — a
    channel that fell back because its sync path died must stay Async. *)

val queue_depth : t -> int
(** Entries enqueued but not yet taken by the server — the channel's
    contribution to endpoint occupancy. *)

val mark_failed : t -> unit
(** Declare the channel dead: subsequent {!call}s raise {!Channel_failure}
    immediately so the runtime reroutes work ROS-natively. *)

val reset_server : t -> unit
(** Drop server-side state left behind by a dead partner thread (parked
    waker, half-served entry) so a respawned partner can re-enter
    {!serve_next} cleanly. *)

(** {1 Counters} *)

val calls : t -> int
val timeouts : t -> int
val retries : t -> int
val protocol_errors : t -> int
val degraded : t -> bool
val failed : t -> bool

val sample_metrics : t -> Mv_obs.Metrics.t -> unit
(** Accumulate this channel's counters into the registry under the
    [event_channel] namespace. *)
