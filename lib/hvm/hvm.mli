(** The Hybrid Virtual Machine: a Palacios extension that runs one VM with
    a partitioned personality — a ROS (Linux) on some cores and one or
    more HRT (Nautilus) partitions on the rest (paper, Section 2,
    generalized to N coexisting HRTs).

    The HVM exposes hypercalls to ROS user space: install an HRT image
    ("much like an exec()") into a partition, boot/reboot a partition's
    HRT (milliseconds), merge address spaces per partition, and invoke
    functions asynchronously in an HRT.  It also delivers HRT-to-ROS
    signals by building an interrupt-like frame for a registered user
    handler ("interrupt to user"), and ROS-to-HRT signals by exception
    injection.

    Partition geometry is elastic: {!lend_core} moves a core into another
    partition at runtime — draining its run queue, fencing its per-core
    dispatch and steal state, and re-homing fabric routing through the
    {!on_repartition} hooks — and {!reclaim_core} returns it home. *)

type t

val create : Mv_engine.Machine.t -> ros:Mv_ros.Kernel.t -> t
(** Wrap the machine; the ROS kernel is marked virtualized.  One HRT slot
    is created per HRT partition in the machine's topology. *)

val set_faults : t -> Mv_faults.Fault_plan.t -> unit
(** Arm fault injection for HVM-mediated protocols (today: the HRT boot
    stall site). *)

val machine : t -> Mv_engine.Machine.t
val ros : t -> Mv_ros.Kernel.t

(** {1 Partitions} *)

val partitions : t -> Mv_hw.Partition.id list
(** The HRT partition ids this HVM manages, ascending. *)

val find_hrt : t -> Mv_hw.Partition.id -> Mv_aerokernel.Nautilus.t option
(** The AeroKernel instance installed in a partition, if any.
    @raise Invalid_argument on an unknown HRT partition id. *)

val hrt : t -> Mv_aerokernel.Nautilus.t option
(** @deprecated The single-HRT accessor from before elastic partitioning:
    equivalent to [find_hrt t 1] (the first HRT partition), [None] when
    the machine has no HRT partition.  Use partition-addressed accessors
    ({!partitions}, {!find_hrt}) in new code. *)

val lend_core : t -> core:int -> dst:Mv_hw.Partition.id -> unit
(** Move a core into partition [dst] at runtime (one [hrt_repartition]
    hypercall).  The core's run queue drains onto a sibling core of the
    source partition with FIFO order preserved; threads homed on it —
    including those with wake-enqueue events still in flight — are
    re-targeted so no wakeup is lost; scheduling parameters, the steal
    domain, and the core's architectural state are re-derived for the
    destination; registered {!on_repartition} hooks then re-home fabric
    routing.  Emits a [Repartition] trace event.
    @raise Invalid_argument when [dst] already owns the core, when the
    source partition would be left empty, when [dst] is unknown, or when
    called from a thread running on the lent core. *)

val reclaim_core : t -> core:int -> unit
(** Return a lent core to its home partition (the one it was carved into
    at creation); same protocol as {!lend_core}.
    @raise Invalid_argument if the core is not currently lent out. *)

val on_repartition :
  t -> (core:int -> src:Mv_hw.Partition.id -> dst:Mv_hw.Partition.id -> unit) -> unit
(** Register a hook fired after every core move (lend or reclaim) — the
    forwarding fabric uses this to re-route endpoints bound to the moved
    core.  Hooks run in registration order. *)

(** {1 Hypercalls (ROS user space -> VMM)} *)

val hypercall : t -> name:string -> unit
(** Charge one guest-exit + VMM dispatch and count it. *)

val install_hrt_image : t -> image_kb:int -> Mv_aerokernel.Nautilus.t -> unit
(** Copy the AeroKernel image into HRT physical memory (cost scales with
    the image size) and remember it as the instance of {e its} partition
    ({!Mv_aerokernel.Nautilus.partition}). *)

val boot_hrt : ?part:Mv_hw.Partition.id -> t -> unit
(** Boot (or reboot) the HRT installed in [part] (default 1); blocks the
    caller for the boot's milliseconds.  Under an armed fault plan the
    boot protocol may stall once, costing an extra boot budget plus a
    reissued hypercall.
    @raise Failure if no image is installed in the partition. *)

val merge_address_space : ?part:Mv_hw.Partition.id -> t -> Mv_ros.Process.t -> unit
(** The address-space-merger hypercall: the shared data page carries the
    caller's CR3; the VMM forwards to the partition's HRT which copies the
    lower-half PML4.  Each partition merges independently (its own shadow
    root and staleness generation). *)

val hrt_create_thread :
  ?part:Mv_hw.Partition.id ->
  t ->
  Mv_ros.Process.t ->
  name:string ->
  ?core:int ->
  (unit -> unit) ->
  Mv_engine.Exec.thread
(** The asynchronous-function-call hypercall: ask the partition's HRT
    event loop to create a kernel thread; superimposes the caller's
    GDT/TLS state onto the target core first.  [core] defaults to the
    partition's first core. *)

(** {1 Signals} *)

val register_ros_signal : t -> handler:(int -> unit) -> unit
(** Register the user-level handler + stack for HRT-to-ROS signals
    (analogous to [signal(2)]). *)

val raise_signal_to_ros : t -> payload:int -> unit
(** HRT side: raise an asynchronous signal; the HVM waits for a user-mode
    entry window and injects the handler invocation (~11 us). *)

val set_signal_transport : t -> ((unit -> unit) -> unit) option -> unit
(** Route HRT-to-ROS signal injections through an external transport (the
    forwarding fabric's async endpoint) instead of the built-in
    schedule-at-RTT path.  The transport receives the ready-to-run handler
    invocation.  [None] restores the built-in path. *)

val inject_exception_to_hrt : t -> (unit -> unit) -> unit
(** ROS-to-HRT signal: exception injection, highest precedence, prompt. *)

(** {1 Statistics} *)

val hypercalls : t -> int
val exits : t -> int

val lends : t -> int
(** Completed {!lend_core} moves. *)

val reclaims : t -> int
(** Completed {!reclaim_core} moves. *)

val pp_stats : Format.formatter -> t -> unit
