(** The Hybrid Virtual Machine: a Palacios extension that runs one VM with
    a partitioned personality — a ROS (Linux) on some cores and an
    HRT (Nautilus) on the rest (paper, Section 2).

    The HVM exposes hypercalls to ROS user space: install an HRT image
    ("much like an exec()"), boot/reboot the HRT (milliseconds), merge
    address spaces, and invoke functions asynchronously in the HRT.  It
    also delivers HRT-to-ROS signals by building an interrupt-like frame
    for a registered user handler ("interrupt to user"), and ROS-to-HRT
    signals by exception injection. *)

type t

val create : Mv_engine.Machine.t -> ros:Mv_ros.Kernel.t -> t
(** Wrap the machine; the ROS kernel is marked virtualized. *)

val set_faults : t -> Mv_faults.Fault_plan.t -> unit
(** Arm fault injection for HVM-mediated protocols (today: the HRT boot
    stall site). *)

val machine : t -> Mv_engine.Machine.t
val ros : t -> Mv_ros.Kernel.t
val hrt : t -> Mv_aerokernel.Nautilus.t option

(** {1 Hypercalls (ROS user space -> VMM)} *)

val hypercall : t -> name:string -> unit
(** Charge one guest-exit + VMM dispatch and count it. *)

val install_hrt_image : t -> image_kb:int -> Mv_aerokernel.Nautilus.t -> unit
(** Copy the AeroKernel image into HRT physical memory (cost scales with
    the image size) and remember it as the VM's HRT. *)

val boot_hrt : t -> unit
(** Boot (or reboot) the installed HRT; blocks the caller for the boot's
    milliseconds.  Under an armed fault plan the boot protocol may stall
    once, costing an extra boot budget plus a reissued hypercall.
    @raise Failure if no image is installed. *)

val merge_address_space : t -> Mv_ros.Process.t -> unit
(** The address-space-merger hypercall: the shared data page carries the
    caller's CR3; the VMM forwards to the HRT which copies the lower-half
    PML4. *)

val hrt_create_thread :
  t -> Mv_ros.Process.t -> name:string -> ?core:int -> (unit -> unit) -> Mv_engine.Exec.thread
(** The asynchronous-function-call hypercall: ask the HRT event loop to
    create a kernel thread; superimposes the caller's GDT/TLS state onto
    the target core first. *)

(** {1 Signals} *)

val register_ros_signal : t -> handler:(int -> unit) -> unit
(** Register the user-level handler + stack for HRT-to-ROS signals
    (analogous to [signal(2)]). *)

val raise_signal_to_ros : t -> payload:int -> unit
(** HRT side: raise an asynchronous signal; the HVM waits for a user-mode
    entry window and injects the handler invocation (~11 us). *)

val set_signal_transport : t -> ((unit -> unit) -> unit) option -> unit
(** Route HRT-to-ROS signal injections through an external transport (the
    forwarding fabric's async endpoint) instead of the built-in
    schedule-at-RTT path.  The transport receives the ready-to-run handler
    invocation.  [None] restores the built-in path. *)

val inject_exception_to_hrt : t -> (unit -> unit) -> unit
(** ROS-to-HRT signal: exception injection, highest precedence, prompt. *)

(** {1 Statistics} *)

val hypercalls : t -> int
val exits : t -> int
val pp_stats : Format.formatter -> t -> unit
