(** State superpositions (paper, Section 3.2).

    Multiverse makes pieces of ROS state appear inside the HRT without the
    HRT implementing them: the user half of the address space, the process
    GDT, and the thread-local-storage base ([%fs]).  The VMM can in
    principle superimpose any state it can see; these are the three the
    paper's implementation uses. *)

val merge_address_space :
  Mv_aerokernel.Nautilus.t -> Mv_ros.Process.t -> unit
(** Copy the lower-half PML4 of the process into the HRT root and shoot
    down HRT TLBs (lower half only).  Charges the measured merger cost
    (~33 K cycles, Figure 2) to the calling thread.  Asserts that huge
    leaves survive the slot copy — the merger shares sub-trees, so the
    ROS's 2M promotions must appear in the HRT at full size.

    Per-partition state: the stale-PML4 merge generation lives on the
    {!Mv_aerokernel.Nautilus.t} instance — one per HRT partition — and the
    process records one shadow root {e per merged partition}
    ({!Mv_ros.Mm.add_shadow_root} deduplicates by root id), so two HRTs
    merging the same process track staleness and receive shootdown
    filtering independently; neither a merge nor a re-merge in one
    partition disturbs the other's generation snapshot. *)

val huge_leaves_preserved :
  Mv_aerokernel.Nautilus.t -> Mv_ros.Process.t -> bool
(** Do the lower halves of the process and HRT roots agree on their
    (2M, 1G) large-leaf counts? *)

val superimpose_thread_state :
  Mv_aerokernel.Nautilus.t -> Mv_ros.Process.t -> core:int -> unit
(** Mirror the process GDT image and [%fs] base onto an HRT core, so
    user-space linkage (TLS, function calls through the merged lower half)
    works from HRT threads. *)

val verify_superposition :
  Mv_aerokernel.Nautilus.t -> Mv_ros.Process.t -> core:int -> bool
(** Do the HRT core's GDT and [%fs] match the process? (test helper) *)
