module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Sim = Mv_engine.Sim
module Trace = Mv_engine.Trace
module Fault_plan = Mv_faults.Fault_plan
open Mv_hw

(* Block reasons are [prefix ^ kind] over a handful of kinds; interning
   keeps the per-call hot path free of string allocation. *)
let reason_call = Mv_util.Intern.create "evtchan:"

type kind = Async | Sync

exception Protocol_error of string
exception Channel_failure of string

type request = { req_kind : string; req_run : unit -> unit }

(* A message on the channel.  [e_done] is shared by every entry of one
   logical call (retries, injected duplicates): the payload runs exactly
   once, re-deliveries only re-acknowledge.  [e_complete] wakes the caller
   attempt that sent this entry; it self-guards so that a completion and a
   timeout racing for the same attempt consume the waker at most once. *)
type entry = {
  e_req : request;
  e_complete : (unit -> unit) option;  (* [None] for posted requests *)
  e_done : bool ref;
  e_corrupt : bool;
}

type resilience = { r_timeout : int; r_max_retries : int; r_backoff : int }

type t = {
  machine : Machine.t;
  mutable ckind : kind;
  mutable ros_core : int;  (* server-side core; retargeted by core lending *)
  mutable hrt_core : int;  (* HRT-side core; retargeted by core lending *)
  faults : Fault_plan.t;
  dedup : bool;
  mutable res : resilience option;
  queue : entry Queue.t;
  mutable serving : entry option;
  mutable server_wake : (entry -> unit) option;
  mutable notify : (unit -> unit) option;
  mutable failed : bool;
  mutable n_calls : int;
  mutable n_timeouts : int;
  mutable n_retries : int;
  mutable n_protocol_errors : int;
  mutable n_degraded : int;
}

let rtt_of machine ~kind ~ros_core ~hrt_core =
  let costs = machine.Machine.costs in
  match kind with
  | Async -> costs.Costs.async_channel_rtt
  | Sync ->
      (* Distance-scaled: 0 and 1 hops are Figure 2's same/cross-socket
         numbers verbatim; wider machines pay per extra hop. *)
      let d = Topology.distance machine.Machine.topo ros_core hrt_core in
      Costs.sync_channel_rtt costs ~distance:d

let create ?(faults = Fault_plan.none) ?(dedup = true) machine ~kind ~ros_core ~hrt_core =
  let res =
    (* Resilience (attempt timeout + bounded retry) arms only under a
       fault plan: the default channel is byte-identical to the seed. *)
    if Fault_plan.enabled faults then
      let rtt = rtt_of machine ~kind ~ros_core ~hrt_core in
      Some { r_timeout = 64 * rtt; r_max_retries = 6; r_backoff = rtt }
    else None
  in
  {
    machine;
    ckind = kind;
    ros_core;
    hrt_core;
    faults;
    dedup;
    res;
    queue = Queue.create ();
    serving = None;
    server_wake = None;
    notify = None;
    failed = false;
    n_calls = 0;
    n_timeouts = 0;
    n_retries = 0;
    n_protocol_errors = 0;
    n_degraded = 0;
  }

let kind t = t.ckind
let rtt t = rtt_of t.machine ~kind:t.ckind ~ros_core:t.ros_core ~hrt_core:t.hrt_core
let one_way t = rtt t / 2
let ros_core t = t.ros_core
let hrt_core t = t.hrt_core

let rehome t ?ros_core ?hrt_core () =
  (* Core lending moved an end of the channel; the RTT follows the new
     socket distance automatically ([rtt] recomputes per call), but armed
     resilience timeouts were sized for the old distance and re-arm. *)
  (match ros_core with Some c -> t.ros_core <- c | None -> ());
  (match hrt_core with Some c -> t.hrt_core <- c | None -> ());
  match t.res with
  | Some r ->
      let rtt = rtt t in
      t.res <- Some { r with r_timeout = 64 * rtt; r_backoff = rtt }
  | None -> ()

let signal_cost t =
  (* Raising the event: a hypercall for the async (interrupt-injected)
     channel; a shared-memory store for the sync channel. *)
  match t.ckind with
  | Async -> t.machine.Machine.costs.Costs.hypercall
  | Sync -> 20

let sched_at t time fn =
  let sim = Exec.sim t.machine.Machine.exec in
  Sim.schedule_at sim (max time (Sim.now sim)) fn

(* Extra in-flight latency when a delay fault fires on this message. *)
let deliver_latency t req_kind =
  let base = one_way t in
  if Fault_plan.fire t.faults Fault_plan.Chan_delay req_kind then
    base + Fault_plan.extra_delay t.faults Fault_plan.Chan_delay ~base:(rtt t * 4)
  else base

(* If the server is parked and work is queued, deliver the head request
   after the one-way propagation delay. *)
let try_deliver t =
  match t.server_wake with
  | Some swake when not (Queue.is_empty t.queue) ->
      t.server_wake <- None;
      let e = Queue.pop t.queue in
      t.serving <- Some e;
      sched_at t
        (Exec.local_now t.machine.Machine.exec + deliver_latency t e.e_req.req_kind)
        (fun () -> swake e)
  | Some _ | None -> ()

let set_notify t hook = t.notify <- hook

(* Each enqueued entry raises the doorbell: either the externally-installed
   notify hook (the fabric's poller pool) or the classic parked-server
   delivery.  Notify is at-least-once — consumers must treat an empty poll
   as a no-op. *)
let kick t =
  match t.notify with Some f -> f () | None -> try_deliver t

let call t req =
  if t.failed then raise (Channel_failure req.req_kind);
  let done_ = ref false in
  let rec attempt n backoff =
    t.n_calls <- t.n_calls + 1;
    Machine.charge t.machine (signal_cost t);
    let outcome =
      Exec.block t.machine.Machine.exec
        ~reason:(Mv_util.Intern.get reason_call req.req_kind)
        (fun ~now ~wake ->
          let live = ref true in
          let entry =
            {
              e_req = req;
              e_complete =
                Some
                  (fun () ->
                    if !live then begin
                      live := false;
                      wake `Done
                    end);
              e_done = done_;
              e_corrupt = Fault_plan.fire t.faults Fault_plan.Chan_corrupt req.req_kind;
            }
          in
          if not (Fault_plan.fire t.faults Fault_plan.Chan_drop req.req_kind) then begin
            Queue.add entry t.queue;
            kick t;
            if Fault_plan.fire t.faults Fault_plan.Chan_duplicate req.req_kind then begin
              Queue.add entry t.queue;
              kick t
            end
          end;
          match t.res with
          | Some r ->
              Sim.schedule_at
                (Exec.sim t.machine.Machine.exec)
                (now + r.r_timeout)
                (fun () ->
                  if !live then begin
                    live := false;
                    wake `Timeout
                  end)
          | None -> ())
    in
    match outcome with
    | `Done -> ()
    | `Timeout -> (
        t.n_timeouts <- t.n_timeouts + 1;
        match t.res with
        | None -> assert false
        | Some r ->
            if n >= r.r_max_retries then begin
              Machine.emit t.machine
                (Trace.Channel_exhausted { retries = n; kind = req.req_kind });
              raise (Channel_failure req.req_kind)
            end
            else begin
              t.n_retries <- t.n_retries + 1;
              Machine.emit t.machine
                (Trace.Channel_retry { attempt = n + 1; backoff; kind = req.req_kind });
              (* Exponential backoff, charged to the caller through the
                 ordinary cycle model. *)
              Machine.charge t.machine backoff;
              attempt (n + 1) (backoff * 2)
            end)
  in
  attempt 0 (match t.res with Some r -> r.r_backoff | None -> rtt t)

let post t req =
  (* Posts carry control messages (hrt-exit, shutdown) whose loss is not
     recoverable by a caller-side timeout, so they are not fault sites. *)
  t.n_calls <- t.n_calls + 1;
  Queue.add { e_req = req; e_complete = None; e_done = ref false; e_corrupt = false } t.queue;
  kick t

let complete t =
  match t.serving with
  | None -> raise (Protocol_error "Event_channel.complete: nothing being served")
  | Some e -> (
      t.serving <- None;
      e.e_done := true;
      match e.e_complete with
      | None -> ()  (* posted request: fire-and-forget *)
      | Some fire_wake ->
          Machine.charge t.machine (signal_cost t);
          sched_at t (Exec.local_now t.machine.Machine.exec + one_way t) fire_wake)

let rec serve_next t =
  let accept e =
    if e.e_corrupt then begin
      (* The shared-page payload fails validation: discard; the caller's
         timeout-and-retry recovers the request. *)
      t.serving <- None;
      t.n_protocol_errors <- t.n_protocol_errors + 1;
      raise (Protocol_error ("corrupt request discarded: " ^ e.e_req.req_kind))
    end
    else if t.dedup && !(e.e_done) then begin
      (* Duplicate or retried delivery of an already-executed request:
         acknowledge without re-running the payload. *)
      complete t;
      serve_next t
    end
    else e.e_req
  in
  match Queue.take_opt t.queue with
  | Some e ->
      t.serving <- Some e;
      (* The request already sat in the shared page; pay the poll/notice
         latency. *)
      Machine.charge t.machine (one_way t);
      accept e
  | None ->
      let e =
        Exec.block t.machine.Machine.exec ~reason:"evtchan:serve" (fun ~now:_ ~wake ->
            t.server_wake <- Some wake)
      in
      accept e

(* Non-blocking server-side take, for poller-pool servers that multiplex
   several channels and must not park on any single one.  Charges the same
   poll/notice latency as the queue-pop path of [serve_next] (including
   injected delivery delay) so single-channel timing is unchanged. *)
let rec poll_next t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some e ->
      t.serving <- Some e;
      Machine.charge t.machine (deliver_latency t e.e_req.req_kind);
      if e.e_corrupt then begin
        t.serving <- None;
        t.n_protocol_errors <- t.n_protocol_errors + 1;
        raise (Protocol_error ("corrupt request discarded: " ^ e.e_req.req_kind))
      end
      else if t.dedup && !(e.e_done) then begin
        complete t;
        poll_next t
      end
      else Some e.e_req

let serve_loop t ~on_request =
  let rec go () =
    (match serve_next t with
    | req ->
        on_request req;
        complete t
    | exception Protocol_error msg ->
        Machine.emit t.machine (Trace.Server_survived { msg }));
    go ()
  in
  go ()

let degrade_to_async t =
  if t.ckind = Sync then begin
    t.ckind <- Async;
    t.n_degraded <- t.n_degraded + 1;
    (* Timeout and backoff were sized for sync latencies; re-arm for the
       (much slower) hypercall channel. *)
    (match t.res with
    | Some r ->
        let rtt = rtt t in
        t.res <- Some { r with r_timeout = 64 * rtt; r_backoff = rtt }
    | None -> ());
    Machine.emit t.machine Trace.Degrade_sync_to_async
  end

let restore_sync t =
  (* The inverse flip, for the fabric's load-shedding watchdog: only a
     live channel currently running Async may be promoted back, and the
     caller is responsible for only restoring channels it degraded (a
     fallback after Channel_failure must stay Async). *)
  if t.ckind = Async && not t.failed then begin
    t.ckind <- Sync;
    (match t.res with
    | Some r ->
        let rtt = rtt t in
        t.res <- Some { r with r_timeout = 64 * rtt; r_backoff = rtt }
    | None -> ());
    Machine.emit t.machine Trace.Restore_async_to_sync
  end

let mark_failed t =
  if not t.failed then begin
    t.failed <- true;
    Machine.emit t.machine Trace.Channel_marked_failed
  end

let reset_server t =
  (* A dead server's parked waker and half-served entry are both stale;
     the respawned server re-enters [serve_next] against a clean slate.
     Unserved entries stay queued, an unacknowledged-but-executed entry is
     recovered by its caller's retry hitting the [e_done] dedup path. *)
  t.server_wake <- None;
  t.serving <- None

let queue_depth t = Queue.length t.queue
let calls t = t.n_calls
let timeouts t = t.n_timeouts
let retries t = t.n_retries
let protocol_errors t = t.n_protocol_errors
let degraded t = t.n_degraded > 0
let failed t = t.failed

let sample_metrics t m =
  let add ~ns name v =
    let c = Mv_obs.Metrics.counter m ~ns name in
    Mv_obs.Metrics.set_counter c (Mv_obs.Metrics.counter_value c + v)
  in
  add ~ns:"event_channel" "calls" t.n_calls;
  add ~ns:"event_channel" "timeouts" t.n_timeouts;
  add ~ns:"event_channel" "retries" t.n_retries;
  add ~ns:"event_channel" "protocol_errors" t.n_protocol_errors;
  add ~ns:"event_channel" "degraded" t.n_degraded
