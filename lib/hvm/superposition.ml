module Machine = Mv_engine.Machine
module Nautilus = Mv_aerokernel.Nautilus
open Mv_hw

(* Large leaves in the lower half, as (n_2m, n_1g).  The merger copies
   whole PML4 slots, so sub-trees — huge leaves included — are shared, not
   rebuilt; this must hold across both the initial merge and every
   re-merge, or the HRT would silently demote the ROS's 2M promotions. *)
let lower_huge_leaves pt =
  let n2m = ref 0 and n1g = ref 0 in
  Page_table.iter_leaves pt (fun addr size _ ->
      if Addr.is_lower_half addr then
        match size with
        | Page_table.S2m -> incr n2m
        | Page_table.S1g -> incr n1g
        | Page_table.S4k -> ());
  (!n2m, !n1g)

let huge_leaves_preserved nk (p : Mv_ros.Process.t) =
  lower_huge_leaves (Mv_ros.Mm.page_table p.Mv_ros.Process.mm)
  = lower_huge_leaves (Nautilus.page_table nk)

let merge_address_space nk (p : Mv_ros.Process.t) =
  let machine = Nautilus.machine nk in
  Mv_obs.Tracer.with_span machine.Machine.obs ~name:"merge-address-space" ~cat:"hvm"
  @@ fun () ->
  Machine.charge machine machine.Machine.costs.Costs.merge_address_space;
  Nautilus.merge_lower_half nk ~from:(Mv_ros.Mm.page_table p.Mv_ros.Process.mm);
  Mv_ros.Mm.add_shadow_root p.Mv_ros.Process.mm (Nautilus.page_table nk);
  if not (huge_leaves_preserved nk p) then
    failwith "Superposition: huge leaves lost across address-space merge"

let superimpose_thread_state nk (p : Mv_ros.Process.t) ~core =
  let machine = Nautilus.machine nk in
  let cpu = machine.Machine.cpus.(core) in
  cpu.Cpu.gdt <- p.Mv_ros.Process.gdt_image;
  cpu.Cpu.fs_base <- p.Mv_ros.Process.fs_base;
  Machine.charge machine 400

let verify_superposition nk (p : Mv_ros.Process.t) ~core =
  let machine = Nautilus.machine nk in
  let cpu = machine.Machine.cpus.(core) in
  cpu.Cpu.gdt = p.Mv_ros.Process.gdt_image
  && cpu.Cpu.fs_base = p.Mv_ros.Process.fs_base
  && huge_leaves_preserved nk p
