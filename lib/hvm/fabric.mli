(** The forwarding fabric: one typed transport layer for every ROS<->HRT
    interaction (forwarded syscalls, replicated page faults, signal
    injection), built on {!Event_channel}.

    The fabric adds three things over raw per-group channels:

    - {b Request batching + doorbell suppression.}  While a leader call is
      in flight on an endpoint, subsequent forwarded calls from the same
      execution group enqueue into a shared-page ring instead of raising
      their own doorbell; the server drains the whole ring in one wakeup
      ("Look Mum, no VM Exits!", arXiv:1705.06932 — exit suppression on
      partitioned cores).  A rider pays shared-memory stores (a fraction of
      the sync-channel cost) instead of a hypercall plus a round trip.

    - {b Routing.}  Per-group channels become fabric {e endpoints}, served
      by a shared ROS-side poller pool instead of one dedicated
      partner-busy-loop per group, so concurrent execution groups scale
      past the number of partner threads.  Channel doorbells enqueue the
      endpoint on a run queue; any idle poller picks it up.

    - {b HRT-local fast paths.}  A promotion table services repeat
      lower-half faults post-merge and vdso-like calls locally without
      touching the transport at all (the paper's PML4 re-merge escape
      hatch, generalized).

    The resilience machinery introduced with the fault-injection harness —
    per-call timeout/retry at the channel layer, spurious-errno retry for
    forwarded syscalls, Sync->Async degradation, ROS-native rerouting when
    a channel dies, and a watchdog that respawns killed servers — lives
    here once, instead of being copied into every caller.  With
    {!Mv_faults.Fault_plan.none} every resilience path is dormant and the
    fabric is cycle-neutral relative to direct channel calls. *)

type t
type endpoint

val create :
  ?faults:Mv_faults.Fault_plan.t ->
  ?batching:bool ->
  ?heartbeat:int ->
  Mv_engine.Machine.t ->
  kind:Event_channel.kind ->
  t
(** [heartbeat] is the poller-watchdog period in cycles (default: four
    async round trips); the watchdog only runs under an enabled fault
    plan.  [batching] defaults to [true]. *)

val set_batching : t -> bool -> unit
val batching : t -> bool

val start_pool :
  t ->
  spawn:(name:string -> core:int -> (unit -> unit) -> Mv_engine.Exec.thread) ->
  cores:int list ->
  ?size:int ->
  unit ->
  unit
(** Spawn the shared ROS-side poller pool ([size] defaults to
    [max 2 (length cores)]), spreading pollers round-robin over [cores].
    [spawn] is the host's thread factory (the runtime passes
    [Kernel.spawn_thread] so pollers account like any process thread).
    Under an enabled fault plan this also arms the pool watchdog:
    respawning dead pollers and driving the [Partner_kill] injection site
    (a poller may only be killed while parked idle, so no payload is ever
    mid-execution when the kill lands). *)

val endpoint : t -> name:string -> ros_core:int -> hrt_core:int -> endpoint
(** Create a fabric endpoint (an event channel plus its batching ring) and
    wire its doorbell into the poller run queue. *)

val channel : endpoint -> Event_channel.t
val endpoint_name : endpoint -> string

val call :
  t ->
  endpoint ->
  ?key:string ->
  ?errno_site:bool ->
  ?local_try:(unit -> bool) ->
  Event_channel.request ->
  unit
(** Forward a request (thread context, HRT side); returns when the payload
    has executed exactly once — on the ROS side via the transport, batched
    into another call's drain, locally via a promoted fast path, or
    ROS-natively after the transport degraded all the way down.

    [key] sub-indexes the promotion table (e.g. the faulting page);
    [local_try] attempts local servicing once promoted, returning whether
    it succeeded (failure demotes the entry and falls back to the
    transport).  [errno_site] arms spurious-errno injection and retry for
    this request under an enabled fault plan. *)

val inject : t -> ?kind:string -> (unit -> unit) -> unit
(** Fire-and-forget injection (safe outside thread context): posts onto
    the dedicated injection endpoint, falling back to an async-RTT
    delayed event when none is wired. *)

val set_inject_endpoint : t -> endpoint -> unit

val install_local : t -> kind:string -> ?promote_after:int -> ?cost:int -> unit -> unit
(** Register a request kind in the promotion table: after [promote_after]
    forwarded calls per key (default 0: immediately), {!call} attempts
    local servicing first, charging [cost] cycles per local hit
    (default 0: the [local_try] closure does its own accounting). *)

val shutdown : t -> unit
(** Stop the pool: wake parked pollers so they exit and stop the
    watchdog.  Endpoints stay usable for draining in-flight work. *)

(** {1 Counters} *)

val calls : t -> int
(** Requests entering {!call}. *)

val transport_calls : t -> int
(** Requests that went through an {!Event_channel.call} (leaders and
    drain rounds), i.e. doorbells actually rung. *)

val riders : t -> int
(** Requests batched into a ring instead of ringing their own doorbell
    (= doorbells suppressed). *)

val ride_timeouts : t -> int
val drains : t -> int
(** Ring drain rounds executed server-side. *)

val drained : t -> int
(** Total ring slots serviced across all drains. *)

val local_hits : t -> int
val local_misses : t -> int

val retries : t -> int
(** Channel-level timeout retries across all endpoints plus
    spurious-errno retries. *)

val fallbacks : t -> int
(** Sync -> Async endpoint degradations. *)

val reroutes : t -> int
(** Requests run ROS-natively after their endpoint died (or errno
    injection persisted). *)

val respawns : t -> int
(** Pollers respawned by the pool watchdog. *)

val endpoints : t -> int
val pollers : t -> int

val sample_metrics : t -> Mv_obs.Metrics.t -> unit
(** Push the fabric counters (namespace ["fabric"]) and every endpoint
    channel's counters (namespace ["event_channel"]) into a metrics
    registry, adding to any values already registered there. *)
