(** The forwarding fabric: one typed transport layer for every ROS<->HRT
    interaction (forwarded syscalls, replicated page faults, signal
    injection), built on {!Event_channel}.

    The fabric adds three things over raw per-group channels:

    - {b Request batching + doorbell suppression.}  While a leader call is
      in flight on an endpoint, subsequent forwarded calls from the same
      execution group enqueue into a shared-page ring instead of raising
      their own doorbell; the server drains the whole ring in one wakeup
      ("Look Mum, no VM Exits!", arXiv:1705.06932 — exit suppression on
      partitioned cores).  A rider pays shared-memory stores (a fraction of
      the sync-channel cost) instead of a hypercall plus a round trip.

    - {b Routing.}  Per-group channels become fabric {e endpoints}, served
      by a shared ROS-side poller pool instead of one dedicated
      partner-busy-loop per group, so concurrent execution groups scale
      past the number of partner threads.  Channel doorbells enqueue the
      endpoint on a run queue; any idle poller picks it up.

    - {b HRT-local fast paths.}  A promotion table services repeat
      lower-half faults post-merge and vdso-like calls locally without
      touching the transport at all (the paper's PML4 re-merge escape
      hatch, generalized).

    The resilience machinery introduced with the fault-injection harness —
    per-call timeout/retry at the channel layer, spurious-errno retry for
    forwarded syscalls, Sync->Async degradation, ROS-native rerouting when
    a channel dies, and a watchdog that respawns killed servers — lives
    here once, instead of being copied into every caller.  With
    {!Mv_faults.Fault_plan.none} every resilience path is dormant and the
    fabric is cycle-neutral relative to direct channel calls. *)

type t
type endpoint

(** {1 Overload model}

    Off by default: with no {!admission} installed every path below is
    dormant and the fabric behaves byte-identically to previous
    revisions.  Installing a policy arms four mechanisms:

    - {b Bounded slot rings.}  An endpoint's batching ring holds at most
      [ad_ring_capacity] pending slots; admission reserves a slot before
      the request may engage the transport.
    - {b Token-bucket admission per execution group.}  Each endpoint (one
      per group) refills at [ad_rate] tokens/cycle up to [ad_burst], so
      over any window of [w] cycles a group is admitted at most
      [burst + rate*w] requests and one bursty tenant cannot monopolize
      the shared poller pool.
    - {b Shed-or-block.}  A refused request either receives a typed
      [Overload] reply that the guest-side stub retries with exponential
      backoff ({!Shed}; {!offer} surfaces the reply to callers that can
      drop work), or parks in the endpoint's FIFO admission queue of
      explicit capacity [ad_queue_capacity], applying backpressure to the
      enqueuing group ({!Block}; queue overflow sheds).
    - {b Load-shedding watchdog.}  Every heartbeat, ring occupancy is
      compared against the high/low-water hysteresis: crossing
      [ad_high_water * ring_capacity] flips Sync endpoints to Async and
      widens the doorbell-suppression window; draining below
      [ad_low_water * ring_capacity] restores both. *)

type overload_policy = Shed | Block

type admission = {
  ad_policy : overload_policy;
  ad_ring_capacity : int;
  ad_queue_capacity : int;
  ad_rate : float;
  ad_burst : int;
  ad_high_water : float;
  ad_low_water : float;
  ad_shed_retries : int;
}

type overload = { ov_kind : string; ov_endpoint : string; ov_sheds : int }
(** The typed [Overload] reply: which request was refused, where, and how
    many sheds (initial refusal plus backoff retries) it absorbed. *)

val make_admission :
  ?policy:overload_policy ->
  ?ring_capacity:int ->
  ?queue_capacity:int ->
  ?rate:float ->
  ?burst:int ->
  ?high_water:float ->
  ?low_water:float ->
  ?shed_retries:int ->
  unit ->
  admission
(** Validated constructor (defaults: Shed, ring 8, queue 16, 1e-4
    tokens/cycle, burst 4, high water 0.75, low water 0.25, 6 retries).
    @raise Invalid_argument on a non-positive ring capacity, a negative
    queue capacity, or [low_water > high_water]. *)

val create :
  ?faults:Mv_faults.Fault_plan.t ->
  ?batching:bool ->
  ?heartbeat:int ->
  Mv_engine.Machine.t ->
  kind:Event_channel.kind ->
  t
(** [heartbeat] is the poller-watchdog period in cycles (default: four
    async round trips); the watchdog only runs under an enabled fault
    plan.  [batching] defaults to [true]. *)

val set_batching : t -> bool -> unit
val batching : t -> bool

type grouping = Global | Per_socket
(** Poller-pool sharding.  [Global] (the default) is one pool serving every
    endpoint — byte-identical to the pre-group fabric.  [Per_socket]
    derives the pool layout from the machine topology: one poller group per
    socket that owns pool cores, endpoints routed to the group of their
    server-side core's socket, so doorbells are answered locally and wake
    tokens never cross the interconnect. *)

val start_pool :
  t ->
  spawn:(name:string -> core:int -> (unit -> unit) -> Mv_engine.Exec.thread) ->
  cores:int list ->
  ?size:int ->
  ?grouping:grouping ->
  unit ->
  unit
(** Spawn the shared ROS-side poller pool ([size] defaults to
    [max 2 (length cores)]), spreading pollers round-robin over [cores].
    With [~grouping:Per_socket] the pool is sharded by topology instead:
    [size] is split evenly across the socket groups (at least one poller
    each), and each group round-robins over its own socket's cores.
    [spawn] is the host's thread factory (the runtime passes
    [Kernel.spawn_thread] so pollers account like any process thread).
    Under an enabled fault plan this also arms the pool watchdog:
    respawning dead pollers and driving the [Partner_kill] injection site
    (a poller may only be killed while parked idle, so no payload is ever
    mid-execution when the kill lands). *)

val endpoint : t -> name:string -> ros_core:int -> hrt_core:int -> endpoint
(** Create a fabric endpoint (an event channel plus its batching ring) and
    wire its doorbell into the poller run queue. *)

val rehome_core : t -> core:int -> ?ros_to:int -> ?hrt_to:int -> unit -> int
(** Core lending moved [core] out of its partition: re-route every
    endpoint binding that referenced it.  Endpoints whose server-side core
    was [core] move to [ros_to] (poller-group routing, channel server core,
    and the pool's spawn cores move together); endpoints whose HRT-side
    core was [core] move to [hrt_to].  In-flight slots and queued entries
    carry over untouched — their wakes were re-homed by the executor — so
    no request or wakeup is lost.  Returns the number of endpoint bindings
    re-routed.  The HVM's {!Hvm.on_repartition} hook is the intended
    caller. *)

val channel : endpoint -> Event_channel.t
val endpoint_name : endpoint -> string

val call :
  t ->
  endpoint ->
  ?key:string ->
  ?errno_site:bool ->
  ?local_try:(unit -> bool) ->
  Event_channel.request ->
  unit
(** Forward a request (thread context, HRT side); returns when the payload
    has executed exactly once — on the ROS side via the transport, batched
    into another call's drain, locally via a promoted fast path, or
    ROS-natively after the transport degraded all the way down.

    [key] sub-indexes the promotion table (e.g. the faulting page);
    [local_try] attempts local servicing once promoted, returning whether
    it succeeded (failure demotes the entry and falls back to the
    transport).  [errno_site] arms spurious-errno injection and retry for
    this request under an enabled fault plan. *)

val offer : t -> endpoint -> ?errno_site:bool -> Event_channel.request -> (unit, overload) result
(** Impatient {!call} for open-loop sources that can drop work: the
    admission gate retries a shed at most [ad_shed_retries] times with
    exponential backoff, then returns the typed [Error overload] reply
    {e without the payload having run}.  [Ok ()] carries the same
    executed-exactly-once guarantee as {!call}.  Identical to {!call}
    when no admission policy is installed (always [Ok]). *)

val set_admission : t -> admission option -> unit
(** Install (arming the watchdog and pumping any parked waiters) or
    remove the overload policy.  Changing policies resets per-endpoint
    token buckets. *)

val admission : t -> admission option

val shed_mode : t -> bool
(** Whether the watchdog currently holds the fabric in degraded mode. *)

val ring_occupancy : t -> int
(** Largest current per-endpoint count of in-flight ring slots. *)

val ring_occupancy_hw : t -> int
(** High-water mark of per-endpoint ring occupancy since creation. *)

val inject : t -> ?kind:string -> (unit -> unit) -> unit
(** Fire-and-forget injection (safe outside thread context): posts onto
    the dedicated injection endpoint, falling back to an async-RTT
    delayed event when none is wired. *)

val set_inject_endpoint : t -> endpoint -> unit

val install_local : t -> kind:string -> ?promote_after:int -> ?cost:int -> unit -> unit
(** Register a request kind in the promotion table: after [promote_after]
    forwarded calls per key (default 0: immediately), {!call} attempts
    local servicing first, charging [cost] cycles per local hit
    (default 0: the [local_try] closure does its own accounting). *)

val shutdown : t -> unit
(** Stop the pool: wake parked pollers so they exit and stop the
    watchdog.  Endpoints stay usable for draining in-flight work. *)

(** {1 Counters} *)

val calls : t -> int
(** Requests entering {!call}. *)

val transport_calls : t -> int
(** Requests that went through an {!Event_channel.call} (leaders and
    drain rounds), i.e. doorbells actually rung. *)

val riders : t -> int
(** Requests batched into a ring instead of ringing their own doorbell
    (= doorbells suppressed). *)

val ride_timeouts : t -> int
val drains : t -> int
(** Ring drain rounds executed server-side. *)

val drained : t -> int
(** Total ring slots serviced across all drains. *)

val local_hits : t -> int
val local_misses : t -> int

val retries : t -> int
(** Channel-level timeout retries across all endpoints plus
    spurious-errno retries. *)

val fallbacks : t -> int
(** Sync -> Async endpoint degradations. *)

val reroutes : t -> int
(** Requests run ROS-natively after their endpoint died (or errno
    injection persisted). *)

val respawns : t -> int
(** Pollers respawned by the pool watchdog. *)

val endpoints : t -> int
val pollers : t -> int

val poller_groups : t -> int
(** Number of poller groups (1 under [Global] pooling). *)

val group_cores : t -> group:int -> int list
(** The cores a poller group round-robins over ([[]] out of range). *)

val endpoint_group : t -> endpoint -> int
(** The poller group an endpoint routes to. *)

val admitted : t -> int
(** Requests passing the admission gate (directly or after queueing). *)

val sheds : t -> int
(** Admission refusals (each emits an [Overload_shed] trace event). *)

val shed_retries : t -> int
(** Backoff retries absorbed by patient callers and by {!offer} before
    its retry budget ran out. *)

val admission_blocked : t -> int
(** Requests that parked in an endpoint's FIFO admission queue. *)

val queue_rejects : t -> int
(** Block-policy requests shed because the admission queue was full. *)

val shed_flips : t -> int
(** Watchdog high-water crossings (shed mode engaged). *)

val shed_restores : t -> int
(** Watchdog low-water drains (shed mode released). *)

val sample_metrics : t -> Mv_obs.Metrics.t -> unit
(** Push the fabric counters (namespace ["fabric"]) and every endpoint
    channel's counters (namespace ["event_channel"]) into a metrics
    registry, adding to any values already registered there. *)
