module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Sim = Mv_engine.Sim
module Nautilus = Mv_aerokernel.Nautilus
open Mv_hw

module Fault_plan = Mv_faults.Fault_plan

type t = {
  machine : Machine.t;
  ros : Mv_ros.Kernel.t;
  mutable nk : Nautilus.t option;
  mutable image_kb : int;
  mutable n_hypercalls : int;
  mutable n_exits : int;
  mutable ros_signal_handler : (int -> unit) option;
  mutable signal_transport : ((unit -> unit) -> unit) option;
  mutable faults : Fault_plan.t;
}

let create machine ~ros =
  ros.Mv_ros.Kernel.virtualized <- true;
  {
    machine;
    ros;
    nk = None;
    image_kb = 0;
    n_hypercalls = 0;
    n_exits = 0;
    ros_signal_handler = None;
    signal_transport = None;
    faults = Fault_plan.none;
  }

let set_faults t plan = t.faults <- plan

let machine t = t.machine
let ros t = t.ros
let hrt t = t.nk

let hypercall t ~name:_ =
  t.n_hypercalls <- t.n_hypercalls + 1;
  t.n_exits <- t.n_exits + 1;
  let costs = t.machine.Machine.costs in
  Machine.charge t.machine (costs.Costs.hypercall + costs.Costs.vm_exit)

let require_hrt t =
  match t.nk with Some nk -> nk | None -> failwith "Hvm: no HRT image installed"

let install_hrt_image t ~image_kb nk =
  Mv_obs.Tracer.with_span t.machine.Machine.obs ~name:"hrt-install" ~cat:"hvm"
  @@ fun () ->
  hypercall t ~name:"hrt_install";
  Machine.charge t.machine (image_kb * t.machine.Machine.costs.Costs.image_install_per_kb);
  t.image_kb <- image_kb;
  t.nk <- Some nk

let boot_hrt t =
  Mv_obs.Tracer.with_span t.machine.Machine.obs ~name:"hrt-boot" ~cat:"hvm"
  @@ fun () ->
  hypercall t ~name:"hrt_boot";
  let nk = require_hrt t in
  if Fault_plan.fire t.faults Fault_plan.Boot_stall "hrt_boot" then begin
    (* The boot handshake stalls: the ROS-side init waits out a full boot
       budget, then reissues the boot hypercall. *)
    Machine.charge t.machine t.machine.Machine.costs.Costs.hrt_boot;
    hypercall t ~name:"hrt_boot"
  end;
  Nautilus.boot nk

let merge_address_space t p =
  hypercall t ~name:"hrt_merge";
  let nk = require_hrt t in
  (* The shared page carries the caller's CR3; the HRT does the copy. *)
  Superposition.merge_address_space nk p

let hrt_create_thread t p ~name ?core body =
  hypercall t ~name:"hrt_create_thread";
  let nk = require_hrt t in
  let core =
    match core with
    | Some c -> c
    | None -> Topology.first_hrt_core t.machine.Machine.topo
  in
  Superposition.superimpose_thread_state nk p ~core;
  Nautilus.request_create_thread nk ~name ~core body

let register_ros_signal t ~handler = t.ros_signal_handler <- Some handler
let set_signal_transport t transport = t.signal_transport <- transport

let raise_signal_to_ros t ~payload =
  (* "Interrupt to user": the HVM records the raise and injects the handler
     at the next user-mode entry window; measured latency ~11 us (paper,
     Section 2).  Lower priority than real interrupts and guest signals. *)
  match t.ros_signal_handler with
  | None -> failwith "Hvm.raise_signal_to_ros: no handler registered"
  | Some handler -> (
      match t.signal_transport with
      | Some transport -> transport (fun () -> handler payload)
      | None ->
          let exec = t.machine.Machine.exec in
          let delay = t.machine.Machine.costs.Costs.async_channel_rtt in
          Sim.schedule_at (Exec.sim exec)
            (max (Exec.local_now exec) (Sim.now (Exec.sim exec)) + delay)
            (fun () -> handler payload))

let inject_exception_to_hrt t f =
  (* Exception injection takes precedence within the HRT; model as a
     prompt event after the exit/injection cost. *)
  t.n_exits <- t.n_exits + 1;
  let exec = t.machine.Machine.exec in
  let delay = t.machine.Machine.costs.Costs.vm_exit in
  Sim.schedule_at (Exec.sim exec)
    (max (Exec.local_now exec) (Sim.now (Exec.sim exec)) + delay)
    f

let hypercalls t = t.n_hypercalls
let exits t = t.n_exits

let pp_stats ppf t =
  Format.fprintf ppf "hvm: hypercalls=%d exits=%d image=%dKB hrt=%s" t.n_hypercalls
    t.n_exits t.image_kb
    (match t.nk with Some nk -> if Nautilus.booted nk then "booted" else "installed"
                   | None -> "none")
