module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Sim = Mv_engine.Sim
module Trace = Mv_engine.Trace
module Nautilus = Mv_aerokernel.Nautilus
open Mv_hw

module Fault_plan = Mv_faults.Fault_plan

(* One slot per HRT partition: the installed AeroKernel instance and its
   image.  The slot exists from HVM creation (the partition geometry is
   fixed by the topology), the instance arrives with [install_hrt_image]. *)
type part_slot = {
  ps_id : Partition.id;
  mutable ps_nk : Nautilus.t option;
  mutable ps_image_kb : int;
}

type t = {
  machine : Machine.t;
  ros : Mv_ros.Kernel.t;
  slots : part_slot array;  (* HRT partitions, indexed by pid - 1 *)
  mutable n_hypercalls : int;
  mutable n_exits : int;
  mutable n_lends : int;
  mutable n_reclaims : int;
  mutable ros_signal_handler : (int -> unit) option;
  mutable signal_transport : ((unit -> unit) -> unit) option;
  mutable repartition_hooks :
    (core:int -> src:Partition.id -> dst:Partition.id -> unit) list;
      (* fired after a core moves, newest first: fabric routing and other
         per-partition subsystems re-home their state here *)
  mutable faults : Fault_plan.t;
}

let create machine ~ros =
  ros.Mv_ros.Kernel.virtualized <- true;
  let slots =
    Topology.hrt_partitions machine.Machine.topo
    |> List.map (fun p -> { ps_id = Partition.id p; ps_nk = None; ps_image_kb = 0 })
    |> Array.of_list
  in
  {
    machine;
    ros;
    slots;
    n_hypercalls = 0;
    n_exits = 0;
    n_lends = 0;
    n_reclaims = 0;
    ros_signal_handler = None;
    signal_transport = None;
    repartition_hooks = [];
    faults = Fault_plan.none;
  }

let set_faults t plan = t.faults <- plan

let machine t = t.machine
let ros t = t.ros

let slot t part =
  let found = ref None in
  Array.iter (fun s -> if s.ps_id = part then found := Some s) t.slots;
  match !found with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Hvm: no HRT partition %d" part)

let partitions t = Array.to_list t.slots |> List.map (fun s -> s.ps_id)
let find_hrt t part = (slot t part).ps_nk

(* Deprecated single-HRT shim: the first HRT partition's instance. *)
let hrt t = if Array.length t.slots = 0 then None else t.slots.(0).ps_nk

let hypercall t ~name:_ =
  t.n_hypercalls <- t.n_hypercalls + 1;
  t.n_exits <- t.n_exits + 1;
  let costs = t.machine.Machine.costs in
  Machine.charge t.machine (costs.Costs.hypercall + costs.Costs.vm_exit)

let require_hrt ?(part = 1) t =
  match find_hrt t part with
  | Some nk -> nk
  | None -> failwith (Printf.sprintf "Hvm: no HRT image installed in partition %d" part)

let install_hrt_image t ~image_kb nk =
  Mv_obs.Tracer.with_span t.machine.Machine.obs ~name:"hrt-install" ~cat:"hvm"
  @@ fun () ->
  hypercall t ~name:"hrt_install";
  Machine.charge t.machine (image_kb * t.machine.Machine.costs.Costs.image_install_per_kb);
  let s = slot t (Nautilus.partition nk) in
  s.ps_image_kb <- image_kb;
  s.ps_nk <- Some nk

let boot_hrt ?(part = 1) t =
  Mv_obs.Tracer.with_span t.machine.Machine.obs ~name:"hrt-boot" ~cat:"hvm"
  @@ fun () ->
  hypercall t ~name:"hrt_boot";
  let nk = require_hrt ~part t in
  if Fault_plan.fire t.faults Fault_plan.Boot_stall "hrt_boot" then begin
    (* The boot handshake stalls: the ROS-side init waits out a full boot
       budget, then reissues the boot hypercall. *)
    Machine.charge t.machine t.machine.Machine.costs.Costs.hrt_boot;
    hypercall t ~name:"hrt_boot"
  end;
  Nautilus.boot nk

let merge_address_space ?(part = 1) t p =
  hypercall t ~name:"hrt_merge";
  let nk = require_hrt ~part t in
  (* The shared page carries the caller's CR3; the HRT does the copy. *)
  Superposition.merge_address_space nk p

let hrt_create_thread ?(part = 1) t p ~name ?core body =
  hypercall t ~name:"hrt_create_thread";
  let nk = require_hrt ~part t in
  let core =
    match core with
    | Some c -> c
    | None -> (
        match Topology.cores_of t.machine.Machine.topo part with
        | c :: _ -> c
        | [] -> invalid_arg (Printf.sprintf "Hvm: partition %d has no cores" part))
  in
  Superposition.superimpose_thread_state nk p ~core;
  Nautilus.request_create_thread nk ~name ~core body

(* --- dynamic core lending ------------------------------------------ *)

let on_repartition t hook = t.repartition_hooks <- hook :: t.repartition_hooks

(* The lending protocol.  Order matters:

   1. Drain — the core's run queue and every thread homed on it move to
      a sibling core of the {e source} partition ([Exec.rehome]), which
      also fences the core's last-thread affinity and re-homes pending
      wake-enqueue events, so no wakeup is lost and no fiber is stranded.
   2. Reassign — the topology moves the core between partition handles
      and flips its role.
   3. Re-derive — scheduling parameters (switch cost, slice) and the
      work-stealing domain follow the new role, and the core's
      architectural state is configured for the destination personality
      (ring 0 / CR0.WP / IST joining an HRT, ROS defaults returning).
   4. Re-home routing — registered repartition hooks (the forwarding
      fabric) re-route endpoints bound to the moved core.

   The caller runs in thread context on some {e other} core (the protocol
   is a hypercall); moving the caller's own core is refused, as is
   emptying the source partition. *)
let move_core t ~core ~dst ~counted =
  let topo = t.machine.Machine.topo in
  let src = Topology.partition_of topo core in
  if src = dst then
    invalid_arg (Printf.sprintf "Hvm: core %d already belongs to partition %d" core dst);
  ignore (Topology.partition topo dst);
  let siblings = List.filter (fun c -> c <> core) (Topology.cores_of topo src) in
  let home =
    match siblings with
    | c :: _ -> c
    | [] ->
        invalid_arg
          (Printf.sprintf "Hvm: cannot lend partition %d's last core (%d)" src core)
  in
  hypercall t ~name:"hrt_repartition";
  let moved = Exec.rehome t.machine.Machine.exec ~cpu:core ~dst:home in
  Topology.reassign topo ~core dst;
  Machine.apply_core_params t.machine ~core;
  Machine.refresh_steal_domain t.machine;
  (match find_hrt t dst with
  | Some nk -> Nautilus.adopt_core nk ~core
  | None ->
      if dst = Partition.ros_id then Nautilus.deconfigure_core t.machine core);
  counted t;
  Machine.emit t.machine (Trace.Repartition { core; src; dst; moved });
  List.iter (fun hook -> hook ~core ~src ~dst) (List.rev t.repartition_hooks)

let lend_core t ~core ~dst =
  move_core t ~core ~dst ~counted:(fun t -> t.n_lends <- t.n_lends + 1)

let reclaim_core t ~core =
  let topo = t.machine.Machine.topo in
  let home = Topology.home_of topo core in
  if Topology.partition_of topo core = home then
    invalid_arg (Printf.sprintf "Hvm.reclaim_core: core %d is not lent out" core);
  move_core t ~core ~dst:home ~counted:(fun t -> t.n_reclaims <- t.n_reclaims + 1)

(* --- signals -------------------------------------------------------- *)

let register_ros_signal t ~handler = t.ros_signal_handler <- Some handler
let set_signal_transport t transport = t.signal_transport <- transport

let raise_signal_to_ros t ~payload =
  (* "Interrupt to user": the HVM records the raise and injects the handler
     at the next user-mode entry window; measured latency ~11 us (paper,
     Section 2).  Lower priority than real interrupts and guest signals. *)
  match t.ros_signal_handler with
  | None -> failwith "Hvm.raise_signal_to_ros: no handler registered"
  | Some handler -> (
      match t.signal_transport with
      | Some transport -> transport (fun () -> handler payload)
      | None ->
          let exec = t.machine.Machine.exec in
          let delay = t.machine.Machine.costs.Costs.async_channel_rtt in
          Sim.schedule_at (Exec.sim exec)
            (max (Exec.local_now exec) (Sim.now (Exec.sim exec)) + delay)
            (fun () -> handler payload))

let inject_exception_to_hrt t f =
  (* Exception injection takes precedence within the HRT; model as a
     prompt event after the exit/injection cost. *)
  t.n_exits <- t.n_exits + 1;
  let exec = t.machine.Machine.exec in
  let delay = t.machine.Machine.costs.Costs.vm_exit in
  Sim.schedule_at (Exec.sim exec)
    (max (Exec.local_now exec) (Sim.now (Exec.sim exec)) + delay)
    f

let hypercalls t = t.n_hypercalls
let exits t = t.n_exits
let lends t = t.n_lends
let reclaims t = t.n_reclaims

let pp_stats ppf t =
  let part_status s =
    Printf.sprintf "p%d=%s" s.ps_id
      (match s.ps_nk with
      | Some nk -> if Nautilus.booted nk then "booted" else "installed"
      | None -> "none")
  in
  Format.fprintf ppf "hvm: hypercalls=%d exits=%d lends=%d reclaims=%d hrt=[%s]"
    t.n_hypercalls t.n_exits t.n_lends t.n_reclaims
    (String.concat " " (Array.to_list (Array.map part_status t.slots)))
