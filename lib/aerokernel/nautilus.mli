(** The Nautilus AeroKernel.

    A lightweight kernel framework that runs on the HRT core partition,
    entirely in ring 0.  It provides the pieces Multiverse needs (paper,
    Sections 2 and 4.4):

    - fast kernel threads (creation orders of magnitude cheaper than Linux);
    - a boot protocol measured in milliseconds, ending in an event loop
      that services thread-creation requests from the ROS side;
    - a page-fault handler that forwards lower-half (ROS user) faults over
      an event channel, with duplicate-fault detection that re-merges the
      PML4 when the ROS changed a top-level entry;
    - a system-call stub that forwards to the ROS, working around the
      SYSRET ring-0-to-ring-0 restriction and the red zone by pulling the
      stack down and using IST interrupt stacks;
    - CR0.WP enforcement so ring-0 execution keeps user-mode paging
      semantics (copy-on-write, write barriers);
    - an exported-function table used by AeroKernel overrides.

    The ROS-facing services (how exactly a fault or syscall is forwarded)
    are injected by the HVM/Multiverse layer via {!set_services}. *)

type fault_reply = Fault_fixed | Fault_fatal of string

type services = {
  svc_forward_fault : Mv_hw.Addr.t -> write:bool -> fault_reply;
      (** ship a lower-half page fault to the ROS partner and wait *)
  svc_forward_syscall : string -> (unit -> unit) -> unit;
      (** ship a system-call request (named, with its executable payload)
          to the ROS partner and wait for completion *)
  svc_request_remerge : unit -> Mv_hw.Page_table.t;
      (** ask for the current ROS root to re-copy the lower half from *)
}

type t

val create : ?part:Mv_hw.Partition.id -> Mv_engine.Machine.t -> t
(** Configure an AeroKernel image for one HRT partition's cores (default:
    partition 1): IST stacks on, CR0.WP set, higher-half identity map in
    place.  Does not boot.  Multiple instances may coexist on one machine,
    one per HRT partition.
    @raise Invalid_argument if the partition has no cores or is the ROS. *)

val partition : t -> Mv_hw.Partition.id
(** The HRT partition this instance runs on. *)

val cores : t -> int list
(** The partition's current cores — dynamic under core lending. *)

val adopt_core : t -> core:int -> unit
(** Configure the architectural state of a core lent {e into} this
    partition (ring 0, CR0.WP, IST stacks) — what [create] does for the
    initial core set. *)

val deconfigure_core : Mv_engine.Machine.t -> int -> unit
(** Restore a core's ROS-side architectural defaults (ring 3, CR0.WP off,
    no IST) when it leaves an HRT partition. *)

val boot : t -> unit
(** Boot (thread context; costs milliseconds of virtual time).  Brings up
    the per-core event loops.  Idempotent reboot is permitted. *)

val booted : t -> bool
val machine : t -> Mv_engine.Machine.t
val page_table : t -> Mv_hw.Page_table.t
val set_services : t -> services -> unit

(** {1 Threads} *)

val request_create_thread :
  t -> name:string -> ?core:int -> (unit -> unit) -> Mv_engine.Exec.thread
(** Enqueue a thread-creation request to the boot event loop and wait for
    the thread to exist (thread context; this is what an HVM function-call
    hypercall turns into). *)

val create_thread_local :
  t -> name:string -> ?core:int -> (unit -> unit) -> Mv_engine.Exec.thread
(** Nested-thread creation from {e inside} the HRT: no event loop round
    trip, just the (cheap) AeroKernel thread cost. *)

val join_thread : t -> Mv_engine.Exec.thread -> unit
val thread_count : t -> int

(** {1 Memory} *)

val merge_lower_half : t -> from:Mv_hw.Page_table.t -> unit
(** Copy PML4 slots 0..255 from the ROS root and shoot down the HRT TLBs'
    {e lower half} (the ranged invalidation leaves the higher-half 1 GiB
    identity entries resident).  Records the source and its lower-half
    generation so staleness is detectable. *)

val access : t -> Mv_hw.Addr.t -> write:bool -> unit
(** Memory access from an HRT thread: ring-0 MMU check against the HRT
    root; lower-half faults are forwarded to the ROS; a repeated fault on
    the same page — or a lower-half generation diverging from the merge
    snapshot, which would otherwise translate stale frames {e without}
    faulting — re-merges the PML4 (paper, Section 4.4).  Higher-half
    faults are fatal with huge pages on (the 1 GiB map covers physical
    memory); with them off the direct map demand-fills 4 KiB at a time.
    @raise Failure on unresolvable faults or when no services are wired. *)

val remerge : t -> unit
(** Re-copy the lower half from the current ROS root (asking the wired
    services for it) and shoot down HRT TLBs.  Charges the merge cost. *)

val page_resolves : t -> Mv_hw.Addr.t -> write:bool -> bool
(** Whether the access would succeed against the {e ROS} master table —
    i.e. the HRT copy is merely stale and a local {!remerge} fixes the
    fault with no ROS round trip. *)

val syscall : t -> name:string -> (unit -> unit) -> unit
(** The system-call stub: charges the ring-0 trap, red-zone stack pull and
    SYSRET emulation, then forwards. *)

(** {1 Exported functions (overrides)} *)

val register_func : t -> name:string -> cost:int -> (unit -> unit) -> unit
(** Export an AeroKernel function at a fresh higher-half address. *)

val func_address : t -> string -> Mv_hw.Addr.t option
val call_func : t -> name:string -> unit
(** Invoke an exported function directly (HRT context).  @raise Not_found. *)

(** {1 Statistics} *)

val stats_faults_forwarded : t -> int

val stats_silent_writes : t -> int
(** Ring-0 writes that silently bypassed a read-only PTE (only possible
    when CR0.WP is cleared — the paper's memory-corruption scenario). *)

val set_wp : t -> bool -> unit
(** Toggle CR0.WP on every HRT core (ablation support). *)

val stats_remerges : t -> int
val stats_syscalls_forwarded : t -> int

val stats_hh_fills : t -> int
(** 4 KiB demand fills of the higher-half direct map (zero when the 1 GiB
    identity map is active). *)

val boot_count : t -> int
