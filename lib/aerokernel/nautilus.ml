open Mv_hw
module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Tracer = Mv_obs.Tracer

type fault_reply = Fault_fixed | Fault_fatal of string

type services = {
  svc_forward_fault : Addr.t -> write:bool -> fault_reply;
  svc_forward_syscall : string -> (unit -> unit) -> unit;
  svc_request_remerge : unit -> Page_table.t;
}

type create_request = {
  cr_name : string;
  cr_core : int;
  cr_body : unit -> unit;
  cr_reply : Exec.thread -> unit;
}

type nk_func = { fn_addr : Addr.t; fn_cost : int; fn_impl : unit -> unit }

type t = {
  machine : Machine.t;
  part : Partition.id;  (* the HRT partition this instance runs on *)
  boot_core : int;  (* core the boot event loop was pinned to *)
  pt : Page_table.t;
  mutable booted : boolean_state;
  mutable boots : int;
  mutable services : services option;
  mutable merged_from : Page_table.t option;
  mutable merge_gen : int;
      (* Lower-half generation of [merged_from] snapshotted at merge time.
         Divergence means the ROS replaced a top-level slot since: our PML4
         copy still translates through the *old* sub-tree — a silent stale
         translation, not a fault — so [access] re-merges before trusting
         lower-half addresses. *)
  phys_pages : int;  (* span of the higher-half identity map, in 4K pages *)
  recent_fault : (int, int) Hashtbl.t;  (* core -> last forwarded fault page *)
  request_q : create_request Queue.t;
  mutable loop_wake : (unit -> unit) option;  (* event loop parked here *)
  mutable threads : Exec.thread list;
  funcs : (string, nk_func) Hashtbl.t;
  mutable next_func_addr : Addr.t;
  mutable n_faults_forwarded : int;
  mutable n_remerges : int;
  mutable n_syscalls_forwarded : int;
  mutable n_silent_writes : int;
  mutable n_hh_fills : int;  (* 4K demand fills of the higher half (huge off) *)
}

and boolean_state = Not_booted | Booting | Booted

(* Configure the architectural state of a core joining the HRT partition:
   ring 0, IST interrupt stacks (the red-zone fix), and CR0.WP so that
   ring-0 writes respect read-only PTEs (Section 4.4).  Applied to every
   partition core at [create], and by the HVM to a core lent in later. *)
let configure_core machine core =
  let cpu = machine.Machine.cpus.(core) in
  cpu.Cpu.ring <- 0;
  cpu.Cpu.cr0_wp <- true;
  cpu.Cpu.ist_configured <- true

let create ?(part = 1) machine =
  let hrt_cores = Topology.cores_of machine.Machine.topo part in
  if hrt_cores = [] then
    invalid_arg
      (Printf.sprintf "Nautilus.create: partition %d has no cores" part);
  (match Topology.partition machine.Machine.topo part |> Partition.kind with
  | Partition.Hrt -> ()
  | Partition.Ros ->
      invalid_arg
        (Printf.sprintf "Nautilus.create: partition %d is the ROS partition" part));
  let pt = Page_table.create () in
  let phys_pages =
    Phys_mem.total machine.Machine.phys Phys_mem.Ros_region
    + Phys_mem.total machine.Machine.phys Phys_mem.Hrt_region
  in
  (* Identity-map physical memory into the higher half "with the largest
     pages possible" (paper, Section 4.4): with huge pages on, a handful of
     1 GiB leaves cover the machine, so kernel-mode runtimes never demand-
     fault and a few TLB entries give full reach.  With them off we model
     the pre-large-page world: a presence marker at the base, the rest
     filled 4 KiB at a time on first touch. *)
  if machine.Machine.huge_pages then begin
    let gigs = (phys_pages + Addr.pages_per_1g - 1) / Addr.pages_per_1g in
    for i = 0 to max 0 (gigs - 1) do
      Page_table.map_size pt
        (Addr.higher_half_base + (i * Addr.page_size_1g))
        ~size:Page_table.S1g
        ~frame:(i * Addr.pages_per_1g)
        ~flags:Page_table.(f_present lor f_writable)
    done
  end
  else
    Page_table.map pt Addr.higher_half_base ~frame:0
      ~flags:Page_table.(f_present lor f_writable);
  List.iter (configure_core machine) hrt_cores;
  {
    machine;
    part;
    boot_core = List.hd hrt_cores;
    pt;
    booted = Not_booted;
    boots = 0;
    services = None;
    merged_from = None;
    merge_gen = 0;
    phys_pages;
    recent_fault = Hashtbl.create 8;
    request_q = Queue.create ();
    loop_wake = None;
    threads = [];
    funcs = Hashtbl.create 32;
    next_func_addr = Addr.higher_half_base + 0x100000;
    n_faults_forwarded = 0;
    n_remerges = 0;
    n_syscalls_forwarded = 0;
    n_silent_writes = 0;
    n_hh_fills = 0;
  }

let machine t = t.machine
let partition t = t.part

(* The partition's current cores — dynamic, because lending may move
   cores in and out after creation. *)
let cores t = Topology.cores_of t.machine.Machine.topo t.part

let deconfigure_core machine core =
  (* Restore the ROS-side architectural defaults when a core leaves the
     HRT partition (the inverse of [configure_core]). *)
  let cpu = machine.Machine.cpus.(core) in
  cpu.Cpu.ring <- 3;
  cpu.Cpu.cr0_wp <- false;
  cpu.Cpu.ist_configured <- false

let adopt_core t ~core = configure_core t.machine core

let set_wp t flag =
  List.iter (fun core -> t.machine.Machine.cpus.(core).Cpu.cr0_wp <- flag) (cores t)
let page_table t = t.pt
let booted t = t.booted = Booted
let set_services t svc = t.services <- Some svc

let services t =
  match t.services with
  | Some s -> s
  | None -> failwith "Nautilus: ROS services not wired (no HVM?)"

let default_core t = match cores t with [] -> t.boot_core | c :: _ -> c

(* --- event loop --- *)

let rec event_loop t () =
  match Queue.take_opt t.request_q with
  | Some req ->
      Machine.charge t.machine t.machine.Machine.costs.Costs.thread_create_nk;
      let th = Exec.spawn t.machine.Machine.exec ~cpu:req.cr_core ~name:req.cr_name req.cr_body in
      t.threads <- th :: t.threads;
      req.cr_reply th;
      event_loop t ()
  | None ->
      Exec.block t.machine.Machine.exec ~reason:"nk-event-loop" (fun ~now:_ ~wake ->
          t.loop_wake <- Some (fun () -> wake ()));
      event_loop t ()

let boot t =
  (* Boot (or reboot) takes milliseconds — on par with fork+exec (paper,
     Section 2) — and ends in the event loop awaiting requests. *)
  Tracer.with_span t.machine.Machine.obs ~name:"nk:boot" ~cat:"hrt" @@ fun () ->
  t.booted <- Booting;
  t.boots <- t.boots + 1;
  Machine.charge t.machine t.machine.Machine.costs.Costs.hrt_boot;
  Hashtbl.reset t.recent_fault;
  if t.boots = 1 then
    ignore
      (Exec.spawn t.machine.Machine.exec ~cpu:(default_core t) ~name:"nk/event-loop"
         (event_loop t));
  t.booted <- Booted

let kick_loop t =
  match t.loop_wake with
  | Some wake ->
      t.loop_wake <- None;
      wake ()
  | None -> ()

let request_create_thread t ~name ?core body =
  if t.booted <> Booted then failwith "Nautilus: not booted";
  let core = match core with Some c -> c | None -> default_core t in
  Exec.block t.machine.Machine.exec ~reason:"nk-create-thread" (fun ~now:_ ~wake ->
      Queue.add { cr_name = name; cr_core = core; cr_body = body; cr_reply = wake }
        t.request_q;
      kick_loop t)

let create_thread_local t ~name ?core body =
  let core = match core with Some c -> c | None -> default_core t in
  Machine.charge t.machine t.machine.Machine.costs.Costs.thread_create_nk;
  let th = Exec.spawn t.machine.Machine.exec ~cpu:core ~name body in
  t.threads <- th :: t.threads;
  th

let join_thread t th = Exec.join t.machine.Machine.exec th
let thread_count t = List.length t.threads

(* --- memory --- *)

let shootdown t =
  (* A merge only rewrites lower-half PML4 slots, so the shootdown is a
     ranged invalidation of the lower half: the higher-half 1 GiB identity
     entries — the whole point of the large-page AeroKernel map — survive. *)
  let costs = t.machine.Machine.costs in
  List.iter
    (fun core ->
      let cpu = t.machine.Machine.cpus.(core) in
      Tlb.invalidate_range cpu.Cpu.tlb ~page:0
        ~npages:(Addr.page_of Addr.higher_half_base);
      Walk_cache.flush cpu.Cpu.pwc;
      Machine.charge t.machine costs.Costs.tlb_shootdown_percore)
    (cores t)

let merge_lower_half t ~from =
  ignore (Page_table.copy_lower_half ~src:from ~dst:t.pt);
  t.merged_from <- Some from;
  t.merge_gen <- Page_table.lower_half_generation from;
  (* Huge leaves ride along structurally — slot sharing copies whole
     sub-trees, large pages included.  Superposition re-verifies this
     invariant at the HVM level after each full merge. *)
  shootdown t

let remerge t =
  Tracer.with_span t.machine.Machine.obs ~name:"nk:remerge" ~cat:"hrt" @@ fun () ->
  let svc = services t in
  let from = svc.svc_request_remerge () in
  t.n_remerges <- t.n_remerges + 1;
  Machine.charge t.machine t.machine.Machine.costs.Costs.merge_address_space;
  merge_lower_half t ~from

(* Would the access succeed against the current ROS master table?  True
   means the HRT's merged copy is merely stale and a local re-merge fixes
   the fault without any ROS involvement — the promotion-table fast path
   for repeat lower-half faults. *)
let page_resolves t addr ~write =
  match t.merged_from with
  | None -> false
  | Some src -> (
      match Page_table.walk src addr with
      | Some pte, _ ->
          Page_table.has pte.Page_table.pte_flags Page_table.f_present
          && ((not write) || Page_table.has pte.Page_table.pte_flags Page_table.f_writable)
      | None, _ -> false)

let access t addr ~write =
  let costs = t.machine.Machine.costs in
  let exec = t.machine.Machine.exec in
  let core = Exec.cpu_of (Exec.self exec) in
  let cpu = t.machine.Machine.cpus.(core) in
  if cpu.Cpu.cr3 <> Page_table.id t.pt then Cpu.load_cr3 cpu t.pt;
  (* Stale-merge guard: if the ROS replaced a lower-half PML4 slot since we
     merged, our copy still points at the old sub-tree and would translate
     stale frames *without faulting*.  The generation word is shared state
     the merger maintains, so the check is a single compare. *)
  (match t.merged_from with
  | Some src
    when Addr.is_lower_half addr
         && Page_table.lower_half_generation src <> t.merge_gen ->
      remerge t
  | Some _ | None -> ());
  let kind = if write then Mmu.Write else Mmu.Read in
  let page = Addr.page_of addr in
  let rec attempt tries =
    if tries > 16 then failwith "Nautilus.access: unresolvable fault"
    else
      match Mmu.access costs cpu t.pt addr kind with
      | Mmu.Hit (_, cost) -> Machine.charge t.machine cost
      | Mmu.Silent_write (_, cost) ->
          (* Unreachable while CR0.WP is set; with WP cleared this is
             exactly the paper's "mysterious memory corruption": the write
             lands on a page that was meant to be protected. *)
          Machine.charge t.machine cost;
          t.n_silent_writes <- t.n_silent_writes + 1
      | Mmu.Fault (_, cost) ->
          Machine.charge t.machine cost;
          if Addr.is_higher_half addr then begin
            (* With 1 GiB identity leaves this cannot happen inside the
               mapped span.  Without them, the direct map fills 4 KiB at a
               time on first touch. *)
            let hh_page = Addr.page_of (addr - Addr.higher_half_base) in
            if t.machine.Machine.huge_pages || hh_page >= t.phys_pages then
              failwith "Nautilus.access: fault in AeroKernel half"
            else begin
              Machine.charge t.machine (costs.Costs.demand_page / 4);
              Page_table.map t.pt (Addr.align_down addr) ~frame:hh_page
                ~flags:Page_table.(f_present lor f_writable);
              t.n_hh_fills <- t.n_hh_fills + 1;
              attempt (tries + 1)
            end
          end
          else begin
            (* Vector through the IDT onto the IST stack. *)
            Machine.charge t.machine costs.Costs.interrupt_dispatch;
            (match Hashtbl.find_opt t.recent_fault core with
            | Some last_page when last_page = page && t.merged_from <> None ->
                (* Same page faulted twice in a row: our PML4 copy is
                   stale; re-merge instead of forwarding again. *)
                Hashtbl.remove t.recent_fault core;
                remerge t
            | Some _ | None -> (
                Hashtbl.replace t.recent_fault core page;
                t.n_faults_forwarded <- t.n_faults_forwarded + 1;
                let svc = services t in
                match svc.svc_forward_fault addr ~write with
                | Fault_fixed -> ()
                | Fault_fatal reason ->
                    failwith ("Nautilus.access: ROS reports fatal fault: " ^ reason)));
            attempt (tries + 1)
          end
  in
  attempt 0

(* --- syscalls --- *)

let syscall t ~name work =
  Tracer.with_span t.machine.Machine.obs ~name:("sys:" ^ name) ~cat:"guest" @@ fun () ->
  let costs = t.machine.Machine.costs in
  (* Ring-0 to ring-0 SYSCALL: the trap itself, the stack-pointer pull that
     protects the red zone, and the emulated SYSRET on the way back. *)
  Machine.charge t.machine
    (costs.Costs.syscall_trap + costs.Costs.redzone_stack_pull
   + costs.Costs.sysret_emulation);
  t.n_syscalls_forwarded <- t.n_syscalls_forwarded + 1;
  (services t).svc_forward_syscall name work

(* --- exported functions --- *)

let register_func t ~name ~cost impl =
  let addr = t.next_func_addr in
  t.next_func_addr <- t.next_func_addr + 0x1000;
  Hashtbl.replace t.funcs name { fn_addr = addr; fn_cost = cost; fn_impl = impl }

let func_address t name =
  match Hashtbl.find_opt t.funcs name with
  | Some f -> Some f.fn_addr
  | None -> None

let call_func t ~name =
  let f = Hashtbl.find t.funcs name in
  Machine.charge t.machine f.fn_cost;
  f.fn_impl ()

let stats_silent_writes t = t.n_silent_writes
let stats_faults_forwarded t = t.n_faults_forwarded
let stats_remerges t = t.n_remerges
let stats_syscalls_forwarded t = t.n_syscalls_forwarded
let stats_hh_fills t = t.n_hh_fills
let boot_count t = t.boots
