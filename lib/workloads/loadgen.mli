(** Open-loop load generator for the forwarding fabric.

    Spawns one execution group per configured group (1k-10k), each with
    its own fabric endpoint and a precomputed arrival schedule that does
    {e not} react to the system: arrivals that find the fabric saturated
    queue up as sojourn time rather than silently throttling the source,
    so latency-vs-offered-load curves show the true overload knee
    (closed-loop generators flatten it, cf. "Open Versus Closed: A
    Cautionary Tale", NSDI'06).

    Each call is issued with {!Mv_hvm.Fabric.offer}: when admission
    control sheds a request past the retry budget, the generator counts
    it dropped and moves on — exactly the client an overloaded service
    wants, and the reason throughput stays non-retrograde past the knee
    when shedding is on. *)

type arrival =
  | Poisson  (** exponential interarrivals at the group's mean rate *)
  | Bursty
      (** the same mean rate delivered as on/off duty-cycle bursts
          (4x rate during 25% duty), phase-staggered across groups *)

type placement =
  | Round_robin
      (** the historical stride: group [g]'s server core is
          [ros_cores[g mod nros]], regardless of where its HRT core sits *)
  | Affine_socket
      (** group-affine: the server core nearest the group's HRT core (ties
          rotated by group id), and the poller pool sharded per socket
          ({!Mv_hvm.Fabric.Per_socket}) so doorbells stay on-socket *)

type config = {
  lg_groups : int;  (** execution groups = fabric endpoints *)
  lg_calls_per_group : int;
  lg_workers_per_group : int;
      (** concurrent issuers striding the group's arrival schedule, so up
          to this many of the group's calls can be outstanding at once
          (the open-loop concurrency bound; clamped to
          [lg_calls_per_group]) *)
  lg_offered_cps : float;  (** total offered load, calls/second, all groups *)
  lg_arrival : arrival;
  lg_service_cycles : int;  (** ROS-side service cost charged per request *)
  lg_kind : Mv_hvm.Event_channel.kind;
  lg_admission : Mv_hvm.Fabric.admission option;  (** [None] = control off *)
  lg_seed : int;
  lg_sockets : int;
  lg_cores_per_socket : int;
  lg_hrt_cores : int;
  lg_pool_size : int option;  (** poller pool size; [None] = topology-sized *)
  lg_placement : placement;  (** endpoint/pool placement (default round-robin) *)
  lg_trace_limit : int option;
      (** bounded trace retention for the machine ({!Mv_engine.Machine.create});
          [None] (the default) keeps full history *)
}

val default_config : config
(** 1000 groups x 4 calls (4 workers each), 100k calls/s Poisson, sync
    channels, 20k-cycle service, admission off, 2x4 cores with 4 HRT. *)

type results = {
  r_offered_cps : float;
  r_issued : int;
  r_completed : int;
  r_dropped : int;  (** typed [Overload] replies past the retry budget *)
  r_events : int;  (** simulated events processed ({!Mv_engine.Sim.events_processed}) *)
  r_makespan : Mv_util.Cycles.t;
  r_throughput_cps : float;  (** completed / makespan *)
  r_p50_us : float;  (** sojourn percentiles: completion - scheduled arrival *)
  r_p95_us : float;
  r_p99_us : float;
  r_ring_hw : int;  (** per-endpoint ring occupancy high-water mark *)
  r_sheds : int;
  r_shed_retries : int;
  r_blocked : int;
  r_shed_flips : int;  (** watchdog high-water crossings *)
  r_shed_restores : int;
}

val run : config -> results
(** Build a machine, run the generator to completion, return the
    aggregate.  Deterministic for a fixed config (all randomness flows
    from [lg_seed]).
    @raise Invalid_argument on [lg_groups < 1] or a non-positive rate. *)

val arrival_of_string : string -> arrival option
val arrival_to_string : arrival -> string

val placement_of_string : string -> placement option
(** ["round-robin"] or ["affine"]. *)

val placement_to_string : placement -> string
