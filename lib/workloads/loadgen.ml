module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Sim = Mv_engine.Sim
module Fabric = Mv_hvm.Fabric
module Event_channel = Mv_hvm.Event_channel
module Topology = Mv_hw.Topology
module Rng = Mv_util.Rng
module Cycles = Mv_util.Cycles
module Metrics = Mv_obs.Metrics

type arrival = Poisson | Bursty
type placement = Round_robin | Affine_socket

type config = {
  lg_groups : int;
  lg_calls_per_group : int;
  lg_workers_per_group : int;
  lg_offered_cps : float;
  lg_arrival : arrival;
  lg_service_cycles : int;
  lg_kind : Event_channel.kind;
  lg_admission : Fabric.admission option;
  lg_seed : int;
  lg_sockets : int;
  lg_cores_per_socket : int;
  lg_hrt_cores : int;
  lg_pool_size : int option;
  lg_placement : placement;
  lg_trace_limit : int option;
}

let default_config =
  {
    lg_groups = 1000;
    lg_calls_per_group = 4;
    lg_workers_per_group = 4;
    lg_offered_cps = 100_000.0;
    lg_arrival = Poisson;
    lg_service_cycles = 20_000;
    lg_kind = Event_channel.Sync;
    lg_admission = None;
    lg_seed = 42;
    lg_sockets = 2;
    lg_cores_per_socket = 4;
    lg_hrt_cores = 4;
    lg_pool_size = None;
    lg_placement = Round_robin;
    lg_trace_limit = None;
  }

type results = {
  r_offered_cps : float;
  r_issued : int;
  r_completed : int;
  r_dropped : int;
  r_events : int;
  r_makespan : Cycles.t;
  r_throughput_cps : float;
  r_p50_us : float;
  r_p95_us : float;
  r_p99_us : float;
  r_ring_hw : int;
  r_sheds : int;
  r_shed_retries : int;
  r_blocked : int;
  r_shed_flips : int;
  r_shed_restores : int;
}

(* Bursty sources modulate the Poisson process with a deterministic on/off
   duty cycle: the same mean rate as the plain Poisson source, delivered as
   [1/burst_duty]-times-rate bursts covering [burst_duty] of the timeline.
   Phases are offset per group so the aggregate still overlaps. *)
let burst_duty = 0.25
let burst_period_cycles = Cycles.of_sec 0.002

(* Exponential interarrival draw; clamped away from 0 so the schedule is a
   strictly increasing sequence of integer cycle counts. *)
let exp_draw rng ~mean =
  let u = 1.0 -. Rng.float rng 1.0 in
  max 1 (int_of_float (-.mean *. log u))

(* Precompute each group's absolute arrival schedule.  Open-loop: the
   schedule depends only on the seed and the offered rate, never on how
   the system responds. *)
let arrival_schedule cfg rng ~group =
  let group_cps = cfg.lg_offered_cps /. float_of_int cfg.lg_groups in
  let mean = Cycles.of_sec 1.0 |> float_of_int |> fun cps -> cps /. group_cps in
  let n = cfg.lg_calls_per_group in
  let arr = Array.make n 0 in
  (* Stagger each group's duty window so bursts from different groups
     pile onto the pollers together in waves rather than averaging out. *)
  let offset = group * burst_period_cycles / 7 in
  let duty_len = int_of_float (burst_duty *. float_of_int burst_period_cycles) in
  let phase_of t = (t + offset) mod burst_period_cycles in
  let t = ref 0 in
  for i = 0 to n - 1 do
    (match cfg.lg_arrival with
    | Poisson -> t := !t + exp_draw rng ~mean
    | Bursty ->
        (* Draw at the boosted in-burst rate, then skip any off-phase gap
           forward to this group's next duty-window start. *)
        t := !t + exp_draw rng ~mean:(mean *. burst_duty);
        if phase_of !t >= duty_len then
          t := !t + (burst_period_cycles - phase_of !t));
    arr.(i) <- !t
  done;
  arr

let run cfg =
  if cfg.lg_groups < 1 then invalid_arg "Loadgen.run: lg_groups must be >= 1";
  if cfg.lg_offered_cps <= 0.0 then invalid_arg "Loadgen.run: lg_offered_cps must be > 0";
  let machine =
    Machine.create ~sockets:cfg.lg_sockets ~cores_per_socket:cfg.lg_cores_per_socket
      ~hrt_cores:cfg.lg_hrt_cores ?trace_limit:cfg.lg_trace_limit ()
  in
  let exec = machine.Machine.exec in
  let ros_cores = Topology.ros_cores machine.Machine.topo in
  let hrt_cores =
    List.concat_map Mv_hw.Partition.cores
      (Topology.hrt_partitions machine.Machine.topo)
  in
  let fabric = Fabric.create machine ~kind:cfg.lg_kind in
  Fabric.set_admission fabric cfg.lg_admission;
  Fabric.start_pool fabric
    ~spawn:(fun ~name ~core body -> Exec.spawn exec ~cpu:core ~name body)
    ~cores:ros_cores ?size:cfg.lg_pool_size
    ~grouping:
      (match cfg.lg_placement with
      | Round_robin -> Fabric.Global
      | Affine_socket -> Fabric.Per_socket)
    ();
  let nros = List.length ros_cores and nhrt = List.length hrt_cores in
  (* Server-side core per group: the historical round-robin stride, or —
     affine — the ROS core nearest the group's HRT core (ties rotated by
     group id, spreading same-socket groups over that socket's cores). *)
  let ros_core_for g hrt_core =
    match cfg.lg_placement with
    | Round_robin -> List.nth ros_cores (g mod nros)
    | Affine_socket ->
        let topo = machine.Machine.topo in
        let scored =
          List.sort compare
            (List.map (fun c -> (Topology.distance topo c hrt_core, c)) ros_cores)
        in
        let d0 = fst (List.hd scored) in
        let near = List.filter (fun (d, _) -> d = d0) scored in
        snd (List.nth near (g mod List.length near))
  in
  let sojourn = Metrics.latency machine.Machine.metrics ~ns:"loadgen" "sojourn" in
  let master = Rng.create ~seed:cfg.lg_seed in
  let issued = ref 0 and completed = ref 0 and dropped = ref 0 in
  let makespan = ref Cycles.zero in
  (* [W] concurrent worker fibers per group stride the group's arrival
     schedule (worker w takes arrivals w, w+W, ...), so up to W calls from
     one group can be outstanding at once: the source stays open-loop
     instead of being silently throttled to one-outstanding-per-group by
     a blocked issuer, and the endpoint's batching ring actually fills
     under overload. *)
  let nworkers = min (max 1 cfg.lg_workers_per_group) cfg.lg_calls_per_group in
  let workers =
    List.concat
      (List.init cfg.lg_groups (fun g ->
           let rng = Rng.split master in
           let arrivals = arrival_schedule cfg rng ~group:g in
           let hrt_core = List.nth hrt_cores (g mod nhrt) in
           let ep =
             Fabric.endpoint fabric
               ~name:(Printf.sprintf "grp-%d" g)
               ~ros_core:(ros_core_for g hrt_core) ~hrt_core
           in
           List.init nworkers (fun w ->
               Exec.spawn exec
                 ~cpu:(List.nth hrt_cores (g mod nhrt))
                 ~name:(Printf.sprintf "loadgen-%d.%d" g w)
                 (fun () ->
                   let i = ref w in
                   while !i < cfg.lg_calls_per_group do
                     let at = arrivals.(!i) in
                     let now = Exec.local_now exec in
                     if at > now then Exec.sleep exec (at - now);
                     incr issued;
                     let req =
                       {
                         Event_channel.req_kind = "loadgen";
                         req_run = (fun () -> Machine.charge machine cfg.lg_service_cycles);
                       }
                     in
                     (match Fabric.offer fabric ep req with
                     | Ok () ->
                         incr completed;
                         (* Sojourn from the scheduled arrival, not the
                            issue instant: under overload the gap between
                            the two IS the queueing delay an open-loop
                            client observes. *)
                         Metrics.observe sojourn (float_of_int (Exec.local_now exec - at))
                     | Error (_ : Fabric.overload) -> incr dropped);
                     i := !i + nworkers
                   done))))
  in
  ignore
    (Exec.spawn exec ~cpu:(List.hd ros_cores) ~name:"loadgen-coordinator" (fun () ->
         List.iter (fun th -> Exec.join exec th) workers;
         makespan := Exec.local_now exec;
         Fabric.shutdown fabric));
  Sim.run machine.Machine.sim;
  let span = max 1 !makespan in
  let pct p = Cycles.to_us (int_of_float (Metrics.latency_percentile sojourn p)) in
  {
    r_offered_cps = cfg.lg_offered_cps;
    r_issued = !issued;
    r_completed = !completed;
    r_dropped = !dropped;
    r_events = Sim.events_processed machine.Machine.sim;
    r_makespan = span;
    r_throughput_cps = float_of_int !completed /. Cycles.to_sec span;
    r_p50_us = pct 50.0;
    r_p95_us = pct 95.0;
    r_p99_us = pct 99.0;
    r_ring_hw = Fabric.ring_occupancy_hw fabric;
    r_sheds = Fabric.sheds fabric;
    r_shed_retries = Fabric.shed_retries fabric;
    r_blocked = Fabric.admission_blocked fabric;
    r_shed_flips = Fabric.shed_flips fabric;
    r_shed_restores = Fabric.shed_restores fabric;
  }

let arrival_of_string = function
  | "poisson" -> Some Poisson
  | "bursty" -> Some Bursty
  | _ -> None

let arrival_to_string = function Poisson -> "poisson" | Bursty -> "bursty"

let placement_of_string = function
  | "round-robin" -> Some Round_robin
  | "affine" -> Some Affine_socket
  | _ -> None

let placement_to_string = function
  | Round_robin -> "round-robin"
  | Affine_socket -> "affine"
