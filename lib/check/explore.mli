(** The schedule/fault-plan explorer: sweep a {!Scenario} across many
    random schedules (and the scenario's fault shapes), confirm any
    failure by replay, and greedily shrink its choice trace to a minimal
    counterexample.

    Everything is deterministic: a failure is fully identified by
    (scenario, choice trace, fault seed/rate/sites), and that tuple is
    what the counterexample artifact serializes.  Because decision 0 is
    the FIFO default and a replay trace past its end answers 0,
    {e truncating} a trace means "run the tail FIFO" — which is why
    shrinking is truncate-then-zero. *)

type fault_config = {
  fc_seed : int;
  fc_rate : float;
  fc_sites : Mv_faults.Fault_plan.site list;
}

val no_faults : fault_config
val plan_of : fault_config -> Mv_faults.Fault_plan.t

val run_once :
  Scenario.t ->
  spec:Strategy.spec ->
  fc:fault_config ->
  Scenario.outcome * int list
(** One bounded run with a fresh strategy and a fresh fault plan; returns
    the outcome and the recorded choice trace.  Exceptions escaping the
    scenario become [Fail]. *)

type counterexample = {
  cx_scenario : string;
  cx_found_by : string;  (** strategy spec that first hit the failure *)
  cx_trace : int list;  (** shrunk choice trace; [[]] = pure FIFO *)
  cx_fault : fault_config;
  cx_message : string;  (** failure message of the shrunk run *)
  cx_confirmed : bool;
      (** replaying the original recorded trace reproduced the identical
          failure message and identical choice trace *)
}

type result = {
  ex_scenario : string;
  ex_runs : int;  (** total bounded runs, including confirm + shrink *)
  ex_counterexample : counterexample option;
}

val attempts : ?seeds:int -> Scenario.t -> (Strategy.spec * fault_config) array
(** The full attempt schedule of a sweep, in sweep order: FIFO under each
    fault config (seed 1), then for each seed in [1..seeds], [Random seed]
    under no faults and under each of the scenario's
    {!Scenario.fault_spec}s (instantiated with the same seed).  Both
    {!explore} and {!explore_par} walk exactly this array, which is what
    makes their verdicts comparable. *)

val explore : ?seeds:int -> ?shrink_budget:int -> Scenario.t -> result
(** Sweep {!attempts} in order.  The first failure is confirmed by
    replay, shrunk (at most [shrink_budget] extra runs), and returned.
    Defaults: [seeds = 20], [shrink_budget = 300]. *)

val explore_par :
  pool:Mv_host_par.Pool.t -> ?seeds:int -> ?shrink_budget:int -> Scenario.t -> result
(** {!explore} with the attempt sweep fanned out over a host pool.
    Deterministic: the winning attempt is the {e lowest-index} failing
    entry of {!attempts} (completion order is unobservable), and
    confirmation + shrinking stay sequential on the winning trace, so the
    result — verdict, counterexample, [ex_runs] — equals the sequential
    {!explore}'s whenever every attempt below the winner passes (which
    {!Mv_host_par.Pool.find_first} guarantees by running them all). *)

val shrink :
  Scenario.t -> fc:fault_config -> budget:int -> int list -> int list * int
(** [shrink sc ~fc ~budget trace] greedily minimizes a failing trace:
    strip trailing zeros (free — they replay as defaults), halving
    truncation, then zeroing individual nonzero entries.  Returns the
    shrunk trace and the number of runs spent.  The input trace must fail;
    every kept candidate fails too. *)

val replay : Scenario.t -> counterexample -> Scenario.outcome * int list
(** Re-run a counterexample: [Replay cx_trace] under [cx_fault]. *)

val to_artifact : counterexample -> string
(** Line-based replayable artifact ("mvcheck counterexample v1"). *)

val of_artifact : string -> (counterexample, string) Stdlib.result
