(** Scheduling strategies for the mv_check model checker.

    A strategy answers every {!Mv_engine.Exec.sched_hook} choice point —
    which Ready thread to dispatch when several are runnable at the same
    virtual instant, and whether a slice expiry preempts — and records the
    decisions it made as a flat [int list] {e choice trace}:

    - {!Fifo} always answers 0, reproducing the executor's default FIFO
      schedule decision-for-decision (and therefore byte-for-byte).
    - [Random seed] draws uniformly from a splitmix64 stream; one seed is
      one deterministic schedule.
    - [Replay trace] replays a recorded trace decision-for-decision; past
      the end of the trace (or on an out-of-range entry) it answers 0, so
      truncating a trace means "run the tail FIFO" — the shrinking move.

    Decision 0 is always the FIFO-equivalent default; a trace of all zeros
    is the default schedule. *)

type spec = Fifo | Random of int | Replay of int list

val spec_to_string : spec -> string

type t

val create : spec -> t
val spec : t -> spec

val decide : t -> n:int -> int
(** Draw (and record) one decision among [n >= 1] alternatives. *)

val recorded : t -> int list
(** The choice trace so far, in decision order. *)

val decisions : t -> int

val hook : t -> Mv_engine.Exec.sched_hook
(** The executor hook backed by this strategy: dispatch picks are
    [decide ~n:(Array.length candidates)]; preemption decisions are
    [decide ~n:2] with 0 = preempt. *)

val install : t -> Mv_engine.Exec.t -> unit
(** [Exec.set_sched_hook exec (Some (hook t))]. *)
