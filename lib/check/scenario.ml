module Exec = Mv_engine.Exec
module Fault_plan = Mv_faults.Fault_plan

type outcome = Pass | Fail of string

type fault_spec = {
  fs_rate : float;
  fs_sites : Fault_plan.site list;
}

type t = {
  sc_name : string;
  sc_descr : string;
  sc_fault_specs : fault_spec list;
  sc_expect_bug : bool;
  sc_run : strategy:Strategy.t -> faults:Fault_plan.t -> outcome;
}

(* A healthy scenario run is well under 10^5 events; only a genuine
   livelock (e.g. a watchdog rescheduling forever over a wedged group)
   ever reaches the budget, and hitting it is itself a verdict. *)
let default_max_events = 400_000

(* Geometry override for scenario machines, installed by the mvcheck CLI's
   --topology flag before any sweep starts (so worker domains observe it
   without synchronization).  Scenarios build their machines through
   [make_machine] and derive cores from the resulting topology rather than
   hardcoding ids, so the whole sweep runs on the requested box. *)
let topology_override : (int * int) option ref = ref None
let set_topology o = topology_override := o
let topology () = !topology_override

(* Elastic partition spec override, installed by the CLI's --partitions
   flag; same discipline as [topology_override]. *)
let partitions_override : int list option ref = ref None
let set_partitions o = partitions_override := o
let partitions () = !partitions_override

let make_machine ?(hrt_cores = 1) ?hrt_parts ?(work_stealing = false) () =
  let hrt_parts = match hrt_parts with Some _ as p -> p | None -> !partitions_override in
  match !topology_override with
  | None -> Mv_engine.Machine.create ~hrt_cores ?hrt_parts ~work_stealing ()
  | Some (sockets, cores_per_socket) ->
      Mv_engine.Machine.create ~sockets ~cores_per_socket ~hrt_cores ?hrt_parts
        ~work_stealing ()

let failf fmt = Format.kasprintf (fun s -> Fail s) fmt

let check_quiesced ?(allow_blocked = fun _ -> false) exec ~quiesced =
  if not quiesced then
    Fail "event budget exhausted: simulation did not quiesce (livelock?)"
  else
    let stuck =
      List.filter_map
        (fun th ->
          match Exec.state exec th with
          | Exec.Finished -> None
          | Exec.Blocked reason when allow_blocked (Exec.name th) -> ignore reason; None
          | Exec.Blocked reason ->
              Some (Printf.sprintf "%s (blocked: %s)" (Exec.name th) reason)
          | Exec.Ready | Exec.Running ->
              (* Quiesced with a runnable thread cannot happen; report it
                 loudly if it ever does. *)
              Some (Printf.sprintf "%s (runnable at quiescence!)" (Exec.name th)))
        (Exec.threads exec)
    in
    match stuck with
    | [] -> Pass
    | l -> failf "threads blocked forever: %s" (String.concat ", " l)

let rec all = function
  | [] -> Pass
  | check :: rest -> ( match check () with Pass -> all rest | Fail _ as f -> f)
