module Exec = Mv_engine.Exec
module Rng = Mv_util.Rng

type spec = Fifo | Random of int | Replay of int list

let spec_to_string = function
  | Fifo -> "fifo"
  | Random seed -> "random:" ^ string_of_int seed
  | Replay trace ->
      "replay:" ^ String.concat "," (List.map string_of_int trace)

type t = {
  spec : spec;
  rng : Rng.t option;
  mutable replaying : int list;
  mutable recorded_rev : int list;
}

let create spec =
  {
    spec;
    rng = (match spec with Random seed -> Some (Rng.create ~seed) | Fifo | Replay _ -> None);
    replaying = (match spec with Replay trace -> trace | Fifo | Random _ -> []);
    recorded_rev = [];
  }

let spec t = t.spec

(* One scheduling decision among [n] alternatives.  Decision 0 is always
   the FIFO-equivalent default, which is what makes traces shrinkable
   toward 0s and lets a replay trace end early (the tail defaults). *)
let decide t ~n =
  let c =
    match t.spec with
    | Fifo -> 0
    | Random _ -> Rng.int (Option.get t.rng) n
    | Replay _ -> (
        match t.replaying with
        | [] -> 0
        | x :: rest ->
            t.replaying <- rest;
            if x >= 0 && x < n then x else 0)
  in
  t.recorded_rev <- c :: t.recorded_rev;
  c

let recorded t = List.rev t.recorded_rev
let decisions t = List.length t.recorded_rev

let hook t =
  {
    Exec.sh_pick = (fun ~cpu:_ cands -> decide t ~n:(Array.length cands));
    (* Preemption decision: 0 = preempt (the FIFO/OS default), 1 = extend
       the slice once.  Encoded in the same decision stream as the picks. *)
    sh_preempt = (fun ~cpu:_ _th -> decide t ~n:2 = 0);
    (* Victim choice when an idle core steals: 0 = the deterministic
       default victim (most loaded, lowest id), others divert the steal. *)
    sh_steal = (fun ~cpu:_ ~victims -> decide t ~n:(Array.length victims));
  }

let install t exec = Exec.set_sched_hook exec (Some (hook t))
