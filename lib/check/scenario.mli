(** Checkable scenarios: a named system construction plus its invariants.

    A scenario builds some slice of the Multiverse stack (from a bare
    executor up to the full boot-merge-forward pipeline), runs it to
    quiescence under a given {!Strategy} and {!Mv_faults.Fault_plan}, and
    judges the final state against its oracles.  The {!Explore} sweep
    drives one scenario across many schedules and fault plans. *)

type outcome = Pass | Fail of string

type fault_spec = {
  fs_rate : float;
  fs_sites : Mv_faults.Fault_plan.site list;
}
(** A fault-plan shape to sweep: the explorer instantiates it with each
    schedule seed ([Fault_plan.create ~seed ~rate:fs_rate ~sites:fs_sites]). *)

type t = {
  sc_name : string;
  sc_descr : string;
  sc_fault_specs : fault_spec list;
      (** Fault shapes worth sweeping in addition to the fault-free run. *)
  sc_expect_bug : bool;
      (** [true] for the deliberately broken scenarios the checker must be
          able to find (racy wakeup, dedup disabled). *)
  sc_run : strategy:Strategy.t -> faults:Mv_faults.Fault_plan.t -> outcome;
      (** Build a fresh system, install the strategy's hook, run bounded,
          check oracles.  Must be deterministic in (strategy, faults). *)
}

val default_max_events : int
(** Event budget for one bounded run (generous: a healthy run is orders of
    magnitude below it; only livelocks hit it). *)

val set_topology : (int * int) option -> unit
(** Install a [(sockets, cores_per_socket)] geometry override for every
    scenario machine (the mvcheck [--topology] flag).  Install it before
    starting a sweep; [None] restores the reference 2x4 box. *)

val topology : unit -> (int * int) option

val set_partitions : int list option -> unit
(** Install an elastic partition spec override for every scenario machine
    (the mvcheck [--partitions] flag): one HRT partition per entry, same
    semantics as [Topology.create ~hrt_parts].  [None] restores the
    single-HRT default, which is byte-identical to no override. *)

val partitions : unit -> int list option

val make_machine :
  ?hrt_cores:int -> ?hrt_parts:int list -> ?work_stealing:bool -> unit -> Mv_engine.Machine.t
(** Build a scenario machine honouring the topology and partition overrides
    (reference geometry when none is installed).  An explicit [?hrt_parts]
    takes precedence over the CLI override — scenarios that need a fixed
    multi-partition geometry (e.g. [repartition]) pass their own.
    Scenarios must derive core ids from the machine's topology instead of
    hardcoding them. *)

val failf : ('a, Format.formatter, unit, outcome) format4 -> 'a
(** [failf fmt ...] is [Fail (sprintf fmt ...)]. *)

val check_quiesced :
  ?allow_blocked:(string -> bool) ->
  Mv_engine.Exec.t ->
  quiesced:bool ->
  outcome
(** The no-blocked-forever oracle: the event queue drained within budget
    and every thread is Finished — except daemons whose {e name} satisfies
    [allow_blocked] (e.g. the AeroKernel event loop, channel servers),
    which are allowed to stay parked. *)

val all : (unit -> outcome) list -> outcome
(** First failure wins; [Pass] if every check passes. *)
