module Trace = Mv_engine.Trace
module Machine = Mv_engine.Machine
open Multiverse

let benchmark = "binary-tree-2"

let run () =
  let b = Mv_workloads.Benchmarks.find benchmark in
  let prog = Mv_workloads.Benchmarks.program b ~n:b.Mv_workloads.Benchmarks.b_test_n in
  let hx = Toolchain.hybridize prog in
  Toolchain.run_multiverse ~trace:true hx

let trace_string () =
  let rs = run () in
  Format.asprintf "%a" Trace.pp rs.Toolchain.rs_machine.Machine.trace

let stdout_string () =
  let rs = run () in
  rs.Toolchain.rs_stdout
