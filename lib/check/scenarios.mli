(** The built-in scenario registry (see {!Scenario}).

    - [racy-wakeup] {e (expected bug)}: a seeded lost-wakeup at the
      executor level; FIFO passes, picking the consumer first at the first
      choice point deadlocks it (minimal trace [[1]]).
    - [ping-pong-async] / [ping-pong-sync]: event-channel round trips;
      at-most-once payload execution under drop/delay/duplicate faults.
    - [broken-dedup] {e (expected bug)}: the same protocol with
      server-side dedup disabled; a duplicated delivery runs a payload
      twice.
    - [boot-handshake]: full-stack boot + one forwarded syscall under boot
      stalls and EAGAIN injection.
    - [group-respawn]: execution-group spawn/join while partners are
      killed; the watchdog respawn must converge and joins complete.
    - [merge-fault]: address-space merge with forwarded lower-half page
      faults over a lossy channel.
    - [work-steal]: deterministic work stealing across per-core runqueues;
      no lost wakeups, no fiber on two queues at once, FIFO within a
      runqueue, and steals never cross the ROS/HRT partition boundary.
    - [repartition]: dynamic core lending between two HRT partitions
      ([2;1] geometry): the lent core's runqueue drains FIFO onto a
      sibling, in-flight wake-enqueues follow the re-homed threads, no
      fiber is stranded, every core belongs to exactly one partition at
      every step, fabric endpoints re-route, and the reclaim returns the
      core to its home partition. *)

val all_scenarios : Scenario.t list
val find : string -> Scenario.t option
