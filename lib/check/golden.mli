(** The golden-trace oracle: one canonical hybridized run, fully traced.

    [trace_string ()] runs the binary-tree-2 benchmark (test size) through
    {!Multiverse.Toolchain.run_multiverse} with machine tracing enabled and
    renders the trace with {!Mv_engine.Trace.pp}.  The result is committed
    at [test/golden/multiverse_default.trace]; the regression test fails on
    any byte difference, which pins down the FIFO schedule, the cycle
    accounting, and the forwarding protocol all at once.

    Regenerate (after an intentional behaviour change) with:
    {[ dune exec bin/mvcheck.exe -- golden > test/golden/multiverse_default.trace ]} *)

val benchmark : string
(** The workload used ("binary-tree-2"). *)

val trace_string : unit -> string
(** Deterministic: same bytes on every run of the same build. *)

val stdout_string : unit -> string
(** The run's guest stdout, also covered by the golden test. *)
