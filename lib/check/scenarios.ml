(* The scenario registry: each entry builds a slice of the stack, runs it
   to quiescence under the given strategy/fault plan, and judges the final
   state.  The two [sc_expect_bug] entries are deliberately broken — they
   exist to prove the explorer can find and shrink real schedule and
   protocol bugs (ISSUE acceptance: a broken invariant is found within the
   default seed budget). *)

module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Sim = Mv_engine.Sim
module Addr = Mv_hw.Addr
module Event_channel = Mv_hvm.Event_channel
module Fabric = Mv_hvm.Fabric
module Fault_plan = Mv_faults.Fault_plan
module Nautilus = Mv_aerokernel.Nautilus
module Env = Mv_guest.Env
module Libc = Mv_guest.Libc
open Multiverse
open Scenario

(* --- racy-wakeup: a seeded lost-wakeup bug at the engine level --- *)

(* The classic stale-check sleep: the consumer samples "mailbox empty",
   politely yields, then blocks on the {e stale} sample without
   re-checking.  Spawn order puts the producer first, so the default FIFO
   schedule delivers before the consumer ever looks — the bug only fires
   when the scheduler picks the consumer first (decision 1 at the first
   choice point), making [1] the minimal counterexample trace. *)
let racy_wakeup_run ~strategy ~faults:_ =
  let machine = make_machine () in
  let exec = machine.Machine.exec in
  Strategy.install strategy exec;
  let mailbox = Queue.create () in
  let waiting = ref None in
  let consumed = ref false in
  ignore
    (Exec.spawn exec ~cpu:0 ~name:"producer" (fun () ->
         Queue.push () mailbox;
         match !waiting with
         | Some wake ->
             waiting := None;
             wake ()
         | None -> ()));
  ignore
    (Exec.spawn exec ~cpu:0 ~name:"consumer" (fun () ->
         let empty = Queue.is_empty mailbox in
         if empty then Exec.yield exec;
         (* BUG: blocks on the pre-yield sample instead of re-checking. *)
         if empty then
           Exec.block exec ~reason:"mailbox" (fun ~now:_ ~wake ->
               waiting := Some (fun () -> wake ()));
         match Queue.take_opt mailbox with
         | Some () -> consumed := true
         | None -> ()));
  let quiesced = Sim.run_bounded machine.Machine.sim ~max_events:default_max_events in
  all
    [
      (fun () -> check_quiesced exec ~quiesced);
      (fun () -> if !consumed then Pass else Fail "item never consumed");
    ]

let racy_wakeup =
  {
    sc_name = "racy-wakeup";
    sc_descr =
      "seeded lost-wakeup bug (stale empty-check before block); FIFO passes, \
       picking the consumer first deadlocks it";
    sc_fault_specs = [];
    sc_expect_bug = true;
    sc_run = racy_wakeup_run;
  }

(* --- ping-pong: event-channel at-most-once under a lossy channel --- *)

let server_name = "chan-server"

let ping_pong_run ~dedup ~kind ~calls ~strategy ~faults =
  let machine = make_machine () in
  let exec = machine.Machine.exec in
  let hrt = List.hd (Mv_hw.Topology.cores_of machine.Machine.topo 1) in
  Strategy.install strategy exec;
  if Fault_plan.enabled faults then Fault_plan.bind faults machine;
  let faults_opt = if Fault_plan.enabled faults then Some faults else None in
  let ch =
    Event_channel.create ?faults:faults_opt ~dedup machine ~kind ~ros_core:0
      ~hrt_core:hrt
  in
  let runs = Array.make calls 0 in
  let completed = Array.make calls false in
  ignore
    (Exec.spawn exec ~cpu:0 ~name:server_name (fun () ->
         Event_channel.serve_loop ch ~on_request:(fun r -> r.Event_channel.req_run ())));
  let caller =
    Exec.spawn exec ~cpu:hrt ~name:"caller" (fun () ->
        try
          for i = 0 to calls - 1 do
            Event_channel.call ch
              {
                Event_channel.req_kind = Printf.sprintf "ping-%d" i;
                req_run = (fun () -> runs.(i) <- runs.(i) + 1);
              };
            completed.(i) <- true
          done
        with Event_channel.Channel_failure _ -> ())
  in
  let quiesced = Sim.run_bounded machine.Machine.sim ~max_events:default_max_events in
  let at_most_once () =
    let bad = ref Pass in
    Array.iteri
      (fun i n ->
        if !bad = Pass then
          if n > 1 then
            bad := failf "call %d payload executed %d times (at-most-once violated)" i n
          else if completed.(i) && n <> 1 then
            bad := failf "call %d completed but payload ran %d times" i n)
      runs;
    !bad
  in
  all
    [
      (fun () ->
        check_quiesced exec ~quiesced ~allow_blocked:(fun n -> n = server_name));
      (fun () ->
        if Exec.state exec caller = Exec.Finished then Pass
        else Fail "caller never finished");
      at_most_once;
    ]

let lossy_spec =
  {
    fs_rate = 0.3;
    fs_sites = [ Fault_plan.Chan_drop; Fault_plan.Chan_delay; Fault_plan.Chan_duplicate ];
  }

let ping_pong kind =
  let kname = match kind with Event_channel.Async -> "async" | Event_channel.Sync -> "sync" in
  {
    sc_name = "ping-pong-" ^ kname;
    sc_descr =
      Printf.sprintf
        "%s event-channel call/serve/complete round trips; at-most-once payload \
         execution must hold even under drop/delay/duplicate faults"
        kname;
    sc_fault_specs = [ lossy_spec ];
    sc_expect_bug = false;
    sc_run = (fun ~strategy ~faults -> ping_pong_run ~dedup:true ~kind ~calls:6 ~strategy ~faults);
  }

let broken_dedup =
  {
    sc_name = "broken-dedup";
    sc_descr =
      "same ping-pong protocol with server-side dedup disabled: a duplicated \
       delivery executes the payload twice (seeded at-most-once violation)";
    sc_fault_specs = [ { fs_rate = 1.0; fs_sites = [ Fault_plan.Chan_duplicate ] } ];
    sc_expect_bug = true;
    sc_run =
      (fun ~strategy ~faults ->
        ping_pong_run ~dedup:false ~kind:Event_channel.Async ~calls:6 ~strategy ~faults);
  }

(* --- fabric: batching/routing/degradation on the forwarding fabric --- *)

(* [callers] concurrent HRT-side threads hammer one fabric endpoint: while
   a leader call is in flight the rest ride the batching ring, so the
   schedule sweep exercises every leader/rider/drain interleaving and the
   slot-reclaim race.  At-most-once payload execution must hold for every
   request even when the channel drops or duplicates deliveries and the
   watchdog's Partner_kill site takes pollers down mid-run. *)
let fabric_run ~callers ~calls ~kind ~strategy ~faults =
  let machine = make_machine () in
  let exec = machine.Machine.exec in
  let hrt = List.hd (Mv_hw.Topology.cores_of machine.Machine.topo 1) in
  let pool_cores =
    match Mv_hw.Topology.ros_cores machine.Machine.topo with
    | a :: b :: _ -> [ a; b ]
    | l -> l
  in
  Strategy.install strategy exec;
  if Fault_plan.enabled faults then Fault_plan.bind faults machine;
  let fabric = Fabric.create ~faults machine ~kind in
  Fabric.start_pool fabric
    ~spawn:(fun ~name ~core body -> Exec.spawn exec ~cpu:core ~name body)
    ~cores:pool_cores ();
  let ep = Fabric.endpoint fabric ~name:"shared" ~ros_core:0 ~hrt_core:hrt in
  let runs = Array.make (callers * calls) 0 in
  let completed = Array.make (callers * calls) false in
  let threads =
    List.init callers (fun c ->
        Exec.spawn exec ~cpu:hrt ~name:(Printf.sprintf "hrt-caller-%d" c)
          (fun () ->
            for i = 0 to calls - 1 do
              let slot = (c * calls) + i in
              Fabric.call fabric ep
                {
                  Event_channel.req_kind = Printf.sprintf "req-%d-%d" c i;
                  req_run = (fun () -> runs.(slot) <- runs.(slot) + 1);
                };
              completed.(slot) <- true
            done))
  in
  ignore
    (Exec.spawn exec ~cpu:0 ~name:"coordinator" (fun () ->
         List.iter (fun th -> Exec.join exec th) threads;
         Fabric.shutdown fabric));
  let quiesced = Sim.run_bounded machine.Machine.sim ~max_events:default_max_events in
  let at_most_once () =
    let bad = ref Pass in
    Array.iteri
      (fun i n ->
        if !bad = Pass then
          if n > 1 then
            bad := failf "request %d payload executed %d times (at-most-once violated)" i n
          else if completed.(i) && n <> 1 then
            bad := failf "request %d completed but payload ran %d times" i n)
      runs;
    !bad
  in
  all
    [
      (fun () -> check_quiesced exec ~quiesced);
      (fun () ->
        if Array.for_all (fun c -> c) completed then Pass
        else Fail "a caller never finished its calls");
      at_most_once;
    ]

let fabric_batch =
  {
    sc_name = "fabric-batch";
    sc_descr =
      "four concurrent callers batching through one fabric endpoint (leader \
       rings, riders queue into the shared ring); at-most-once and bounded \
       quiescence must hold under drop/duplicate faults and poller kills";
    sc_fault_specs =
      [
        {
          fs_rate = 0.4;
          fs_sites =
            [ Fault_plan.Chan_drop; Fault_plan.Chan_duplicate; Fault_plan.Partner_kill ];
        };
      ];
    sc_expect_bug = false;
    sc_run =
      (fun ~strategy ~faults ->
        fabric_run ~callers:4 ~calls:4 ~kind:Event_channel.Async ~strategy ~faults);
  }

let fabric_degrade =
  {
    sc_name = "fabric-degrade";
    sc_descr =
      "sync fabric endpoint under heavy channel loss: calls must complete \
       exactly once through the degradation chain (sync -> async fallback, \
       then ROS-native reroute) under schedule perturbation";
    sc_fault_specs = [ { fs_rate = 0.7; fs_sites = [ Fault_plan.Chan_drop ] } ];
    sc_expect_bug = false;
    sc_run =
      (fun ~strategy ~faults ->
        fabric_run ~callers:2 ~calls:4 ~kind:Event_channel.Sync ~strategy ~faults);
  }

(* [callers] impatient HRT-side threads push through a deliberately tiny
   admission envelope (ring 2, queue 3, trickle token rate), so most
   attempts hit the gate: shed-and-retry under [Shed], park-in-FIFO under
   [Block], terminal [Overload] replies past the retry budget.  The
   oracles pin the overload contract: bounded quiescence (every parked
   admission waiter is woken — no lost wakeups), every caller resolves
   each request to exactly one of admitted/dropped, an admitted request's
   payload runs exactly once (retried sheds never double-execute), and a
   dropped request's payload never ran at all. *)
let fabric_overload_run ~policy ~callers ~calls ~strategy ~faults =
  let machine = make_machine () in
  let exec = machine.Machine.exec in
  let hrt = List.hd (Mv_hw.Topology.cores_of machine.Machine.topo 1) in
  let pool_cores =
    match Mv_hw.Topology.ros_cores machine.Machine.topo with
    | a :: b :: _ -> [ a; b ]
    | l -> l
  in
  Strategy.install strategy exec;
  if Fault_plan.enabled faults then Fault_plan.bind faults machine;
  let fabric = Fabric.create ~faults machine ~kind:Event_channel.Sync in
  Fabric.set_admission fabric
    (Some
       (Fabric.make_admission ~policy ~ring_capacity:2 ~queue_capacity:3 ~rate:1e-5
          ~burst:2 ~shed_retries:2 ()));
  Fabric.start_pool fabric
    ~spawn:(fun ~name ~core body -> Exec.spawn exec ~cpu:core ~name body)
    ~cores:pool_cores ();
  let ep = Fabric.endpoint fabric ~name:"shared" ~ros_core:0 ~hrt_core:hrt in
  let n = callers * calls in
  let runs = Array.make n 0 in
  let admitted = Array.make n false in
  let dropped = Array.make n false in
  let threads =
    List.init callers (fun c ->
        Exec.spawn exec ~cpu:hrt ~name:(Printf.sprintf "hrt-offerer-%d" c)
          (fun () ->
            for i = 0 to calls - 1 do
              let slot = (c * calls) + i in
              match
                Fabric.offer fabric ep
                  {
                    Event_channel.req_kind = Printf.sprintf "req-%d-%d" c i;
                    req_run = (fun () -> runs.(slot) <- runs.(slot) + 1);
                  }
              with
              | Ok () -> admitted.(slot) <- true
              | Error (_ : Fabric.overload) -> dropped.(slot) <- true
            done))
  in
  ignore
    (Exec.spawn exec ~cpu:0 ~name:"coordinator" (fun () ->
         List.iter (fun th -> Exec.join exec th) threads;
         Fabric.shutdown fabric));
  let quiesced = Sim.run_bounded machine.Machine.sim ~max_events:default_max_events in
  let accounted () =
    let bad = ref Pass in
    for i = 0 to n - 1 do
      if !bad = Pass then
        if admitted.(i) && dropped.(i) then
          bad := failf "request %d both admitted and dropped" i
        else if not (admitted.(i) || dropped.(i)) then
          bad := failf "request %d never resolved (offer lost the caller)" i
    done;
    !bad
  in
  let exactly_once_or_never () =
    let bad = ref Pass in
    Array.iteri
      (fun i r ->
        if !bad = Pass then
          if admitted.(i) && r <> 1 then
            bad := failf "admitted request %d payload ran %d times (want exactly 1)" i r
          else if dropped.(i) && r <> 0 then
            bad := failf "shed request %d payload ran %d times (want 0)" i r)
      runs;
    !bad
  in
  all
    [
      (fun () -> check_quiesced exec ~quiesced);
      accounted;
      exactly_once_or_never;
    ]

let fabric_overload =
  {
    sc_name = "fabric-overload";
    sc_descr =
      "six impatient callers vs a tiny shed-policy admission envelope: every \
       request resolves to admitted xor dropped, admitted payloads run exactly \
       once (retried sheds never double-execute), dropped payloads never ran, \
       and quiescence is bounded even under channel loss/duplication";
    sc_fault_specs =
      [
        {
          fs_rate = 0.3;
          fs_sites = [ Fault_plan.Chan_drop; Fault_plan.Chan_duplicate ];
        };
      ];
    sc_expect_bug = false;
    sc_run =
      (fun ~strategy ~faults ->
        fabric_overload_run ~policy:Fabric.Shed ~callers:6 ~calls:3 ~strategy ~faults);
  }

let fabric_overload_block =
  {
    sc_name = "fabric-overload-block";
    sc_descr =
      "the same overload envelope under the Block policy: callers park in the \
       bounded FIFO admission queue (overflow degrades to shedding); the parked \
       waiters must all be woken and the same admitted-exactly-once / \
       dropped-never-ran contract must hold";
    sc_fault_specs = [ { fs_rate = 0.3; fs_sites = [ Fault_plan.Chan_drop ] } ];
    sc_expect_bug = false;
    sc_run =
      (fun ~strategy ~faults ->
        fabric_overload_run ~policy:Fabric.Block ~callers:6 ~calls:3 ~strategy ~faults);
  }

(* --- full-stack scenarios: boot, execution groups, merge + forwarding --- *)

(* Daemons that legitimately stay parked after a healthy full-stack run:
   the AeroKernel event loop, any partner thread still waiting on its
   group, and fabric pollers parked on the run queue. *)
let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let has_prefix s p =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let full_stack_daemon name =
  name = "nk/event-loop" || contains_sub name "/partner" || has_prefix name "fabric/"

let run_full ?(options = Toolchain.default_mv_options) ~name ~expect_stdout
    ~extra_checks prog ~strategy ~faults =
  let hx = Toolchain.hybridize prog in
  let rt_box = ref None in
  let options =
    match topology () with
    | None -> options
    | Some (sockets, cores_per_socket) ->
        { options with Toolchain.mv_sockets = sockets; mv_cores_per_socket = cores_per_socket }
  in
  let machine, _kernel, proc =
    Toolchain.setup_multiverse
      ~options:{ options with Toolchain.mv_faults = faults }
      ~name ~fat:hx.Toolchain.hx_fat
      (fun _kernel _p rt ->
        rt_box := Some rt;
        let partner =
          Runtime.hrt_invoke rt ~name:"main" (fun env ->
              prog.Toolchain.prog_main env)
        in
        Runtime.join rt partner)
  in
  Strategy.install strategy machine.Machine.exec;
  let quiesced = Sim.run_bounded machine.Machine.sim ~max_events:default_max_events in
  all
    [
      (fun () ->
        check_quiesced machine.Machine.exec ~quiesced
          ~allow_blocked:full_stack_daemon);
      (fun () ->
        if not proc.Mv_ros.Process.exited then Fail "process never exited"
        else if proc.Mv_ros.Process.exit_code <> 0 then
          failf "exit code %d" proc.Mv_ros.Process.exit_code
        else Pass);
      (fun () ->
        let out = Mv_ros.Process.stdout_contents proc in
        if out = expect_stdout then Pass
        else failf "stdout mismatch: got %S, want %S" out expect_stdout);
      (fun () ->
        match !rt_box with
        | None -> Fail "runtime never initialized"
        | Some rt -> all (List.map (fun check () -> check rt) extra_checks));
    ]

let boot_prog =
  {
    Toolchain.prog_name = "mvcheck-boot";
    prog_main =
      (fun env ->
        let libc = Libc.create env in
        env.Env.work 10_000;
        ignore (env.Env.getpid ());
        Libc.printf libc "booted pid ok\n";
        Libc.flush_all libc);
  }

let boot_handshake =
  {
    sc_name = "boot-handshake";
    sc_descr =
      "full stack boot: HVM install, AeroKernel boot handshake, one forwarded \
       syscall, clean exit (swept under boot stalls and EAGAIN faults)";
    sc_fault_specs =
      [
        { fs_rate = 1.0; fs_sites = [ Fault_plan.Boot_stall ] };
        { fs_rate = 0.5; fs_sites = [ Fault_plan.Syscall_eagain ] };
      ];
    sc_expect_bug = false;
    sc_run =
      run_full ~name:"mvcheck-boot" ~expect_stdout:"booted pid ok\n"
        ~extra_checks:[] boot_prog;
  }

let group_prog =
  {
    Toolchain.prog_name = "mvcheck-groups";
    prog_main =
      (fun env ->
        let libc = Libc.create env in
        let slots = Array.make 2 0 in
        let spawn i =
          env.Env.thread_create ~name:(Printf.sprintf "worker-%d" i) (fun () ->
              let acc = ref 0 in
              for k = 1 to 6 do
                env.Env.work 20_000;
                ignore (env.Env.getrusage ());
                acc := !acc + k
              done;
              slots.(i) <- !acc)
        in
        let t0 = spawn 0 in
        let t1 = spawn 1 in
        env.Env.thread_join t0;
        env.Env.thread_join t1;
        Libc.printf libc "groups done %d %d\n" slots.(0) slots.(1);
        Libc.flush_all libc);
  }

let group_respawn =
  {
    sc_name = "group-respawn";
    sc_descr =
      "execution group spawn/join with forwarded syscalls; joins must complete \
       and results survive partner kills (watchdog respawn converges)";
    sc_fault_specs = [ { fs_rate = 0.5; fs_sites = [ Fault_plan.Partner_kill ] } ];
    sc_expect_bug = false;
    sc_run =
      run_full ~name:"mvcheck-groups" ~expect_stdout:"groups done 21 21\n"
        ~extra_checks:[] group_prog;
  }

let merge_prog =
  {
    Toolchain.prog_name = "mvcheck-merge";
    prog_main =
      (fun env ->
        let libc = Libc.create env in
        let pages = 12 in
        let len = pages * Addr.page_size in
        let base = env.Env.mmap ~len ~prot:Mv_ros.Mm.prot_rw ~kind:"mvcheck-buf" in
        for p = 0 to pages - 1 do
          env.Env.store (base + (p * Addr.page_size));
          env.Env.work 5_000
        done;
        env.Env.munmap ~addr:base ~len;
        Libc.printf libc "merge done\n";
        Libc.flush_all libc);
  }

let merge_fault =
  {
    sc_name = "merge-fault";
    sc_descr =
      "address-space merge plus lower-half page faults forwarded to the ROS; \
       every touched page must be resolved, also under a lossy channel";
    sc_fault_specs = [ { fs_rate = 0.3; fs_sites = [ Fault_plan.Chan_drop; Fault_plan.Chan_delay ] } ];
    sc_expect_bug = false;
    sc_run =
      run_full ~name:"mvcheck-merge" ~expect_stdout:"merge done\n"
        ~extra_checks:
          [
            (fun rt ->
              let forwarded = Nautilus.stats_faults_forwarded (Runtime.nk rt) in
              if forwarded >= 1 then Pass
              else failf "expected forwarded page faults, saw %d" forwarded);
          ]
        merge_prog;
  }

let many_groups_prog =
  {
    Toolchain.prog_name = "mvcheck-manygroups";
    prog_main =
      (fun env ->
        let libc = Libc.create env in
        let n = 4 in
        let slots = Array.make n 0 in
        let spawn i =
          env.Env.thread_create ~name:(Printf.sprintf "grp-%d" i) (fun () ->
              let acc = ref 0 in
              for k = 1 to 4 do
                env.Env.work 15_000;
                ignore (env.Env.getrusage ());
                acc := !acc + k
              done;
              slots.(i) <- !acc)
        in
        let ts = List.init n spawn in
        List.iter env.Env.thread_join ts;
        Libc.printf libc "many %d %d %d %d\n" slots.(0) slots.(1) slots.(2) slots.(3);
        Libc.flush_all libc);
  }

let multi_group =
  {
    sc_name = "multi-group";
    sc_descr =
      "four concurrent execution groups routed over the shared poller pool \
       (more groups than dedicated servers); every forwarded syscall must \
       complete and every join converge, also under loss and poller kills";
    sc_fault_specs =
      [ { fs_rate = 0.3; fs_sites = [ Fault_plan.Chan_drop; Fault_plan.Partner_kill ] } ];
    sc_expect_bug = false;
    sc_run =
      run_full ~name:"mvcheck-manygroups" ~expect_stdout:"many 10 10 10 10\n"
        ~extra_checks:
          [
            (fun rt ->
              let groups = Runtime.groups_created rt in
              if groups >= 5 then Pass
              else failf "expected >= 5 execution groups, saw %d" groups);
            (fun rt ->
              let calls = Fabric.calls (Runtime.fabric rt) in
              if calls >= 16 then Pass
              else failf "expected >= 16 fabric calls, saw %d" calls);
          ]
        many_groups_prog;
  }

(* --- merge-stale-pml4: huge leaves across a stale lower-half re-merge --- *)

(* The merger copies PML4 slots, so when the ROS rebuilds its lower half
   (new top-level slots, same virtual addresses) the HRT's copy still
   points at the {e old} sub-trees: the access would resolve — to stale
   frames — with no fault to catch.  The generation guard in
   [Nautilus.access] must notice the source table's lower-half generation
   moved and re-merge before translating.  Huge leaves raise the stakes:
   one stale 2M slot mistranslates 512 pages at once, and the re-merge
   must preserve the leaf rather than demoting it. *)
let merge_stale_pml4_run ~strategy ~faults:_ =
  let machine = make_machine () in
  let exec = machine.Machine.exec in
  let hrt = List.hd (Mv_hw.Topology.cores_of machine.Machine.topo 1) in
  Strategy.install strategy exec;
  let nk = Nautilus.create machine in
  let ros_pt = Mv_hw.Page_table.create () in
  let addr = Addr.of_indices ~pml4:0 ~pdpt:0 ~pd:5 ~pt:0 ~offset:0 in
  let map_chunk frame =
    Mv_hw.Page_table.map_size ros_pt addr ~size:Mv_hw.Page_table.S2m ~frame
      ~flags:Mv_hw.Page_table.(f_present lor f_writable lor f_user)
  in
  map_chunk 1000;
  let unexpected_faults = ref 0 in
  Nautilus.set_services nk
    {
      Nautilus.svc_forward_fault =
        (fun _addr ~write:_ ->
          incr unexpected_faults;
          Nautilus.Fault_fixed);
      svc_forward_syscall = (fun _ run -> run ());
      svc_request_remerge = (fun () -> ros_pt);
    };
  ignore
    (Exec.spawn exec ~cpu:hrt ~name:"hrt" (fun () ->
         Nautilus.boot nk;
         Nautilus.merge_lower_half nk ~from:ros_pt;
         Nautilus.access nk addr ~write:true;
         (* The ROS rebuilds its lower half: same addresses, fresh PML4
            slots, different frames.  No fault will announce this. *)
         Mv_hw.Page_table.clear_lower_half ros_pt;
         map_chunk 2000;
         Nautilus.access nk addr ~write:true));
  let quiesced = Sim.run_bounded machine.Machine.sim ~max_events:default_max_events in
  all
    [
      (fun () ->
        check_quiesced exec ~quiesced ~allow_blocked:(fun name ->
            name = "nk/event-loop"));
      (fun () ->
        match fst (Mv_hw.Page_table.walk_sized (Nautilus.page_table nk) addr) with
        | Some (pte, Mv_hw.Page_table.S2m) when pte.Mv_hw.Page_table.frame = 2000 -> Pass
        | Some (pte, size) ->
            failf "HRT resolves frame %d as %s (want 2000 as 2M)"
              pte.Mv_hw.Page_table.frame
              (Format.asprintf "%a" Mv_hw.Page_table.pp_size size)
        | None -> Fail "HRT no longer maps the chunk after re-merge");
      (fun () ->
        if Nautilus.stats_remerges nk >= 1 then Pass
        else Fail "generation guard never re-merged: stale translation went silent");
      (fun () ->
        if Nautilus.stats_silent_writes nk = 0 then Pass
        else failf "%d silent writes" (Nautilus.stats_silent_writes nk));
      (fun () ->
        if !unexpected_faults = 0 then Pass
        else failf "%d unexpected forwarded faults" !unexpected_faults);
    ]

let merge_stale_pml4 =
  {
    sc_name = "merge-stale-pml4";
    sc_descr =
      "re-merge after the ROS rebuilds lower-half PML4 slots holding 2M \
       leaves: the generation guard must catch the silent stale \
       translation and the re-merge must preserve the huge leaf";
    sc_fault_specs = [];
    sc_expect_bug = false;
    sc_run = merge_stale_pml4_run;
  }

(* --- work-steal: deterministic stealing across per-core runqueues --- *)

(* All jobs spawn on the first ROS core with the rest of the partition
   idle, so any job that executes elsewhere got there by stealing; the
   schedule sweep drives the [sh_steal] victim choice, exploring different
   steal interleavings.  Oracles, checked from runqueue snapshots taken by
   a monitor on an HRT core (outside the steal domain):

   - no lost wakeups: a waiter parked on the loaded core is woken by the
     last job and the system quiesces with everything finished;
   - a fiber is never on two runqueues at once;
   - FIFO within a runqueue: a thief only steals into an {e empty} queue
     and stealing takes the oldest prefix, so every ROS runqueue is at all
     times a contiguous slice of the original spawn order — straight-line
     jobs must appear in ascending spawn order in every snapshot;
   - stealing never crosses the partition boundary: jobs only ever run on
     ROS cores. *)
let work_steal_run ~strategy ~faults:_ =
  let machine = make_machine ~work_stealing:true () in
  let exec = machine.Machine.exec in
  Strategy.install strategy exec;
  let topo = machine.Machine.topo in
  let ros = Array.of_list (Mv_hw.Topology.ros_cores topo) in
  let hrt = List.hd (Mv_hw.Topology.cores_of topo 1) in
  let njobs = 12 in
  let runs = Array.make njobs 0 in
  let ran_on = Array.make njobs (-1) in
  let job_of_tid = Hashtbl.create 16 in
  let done_jobs = ref 0 in
  let woken = ref false in
  let wake_pending = ref false in
  let parked = ref None in
  ignore
    (Exec.spawn exec ~cpu:ros.(0) ~name:"waiter" (fun () ->
         (* The pending check and the block are one host-atomic segment,
            so the wake cannot slip between them. *)
         if not !wake_pending then
           Exec.block exec ~reason:"parked" (fun ~now:_ ~wake -> parked := Some wake);
         woken := true));
  for i = 0 to njobs - 1 do
    let th =
      Exec.spawn exec ~cpu:ros.(0)
        ~name:(Printf.sprintf "job-%d" i)
        (fun () ->
          runs.(i) <- runs.(i) + 1;
          ran_on.(i) <- Exec.cpu_of (Exec.self exec);
          (* Uneven service times keep the queues imbalanced so steal
             opportunities persist deep into the run (all well under the
             ROS timeslice: a preemption would requeue and break the
             contiguous-slice argument). *)
          Machine.charge machine (300 * ((i mod 5) + 1));
          if i = njobs - 1 then (
            match !parked with
            | Some wake ->
                parked := None;
                wake ()
            | None -> wake_pending := true);
          incr done_jobs)
    in
    Hashtbl.replace job_of_tid (Exec.tid th) i
  done;
  let snapshot_bad = ref None in
  let note_bad msg = if !snapshot_bad = None then snapshot_bad := Some msg in
  let check_snapshot () =
    let seen = Hashtbl.create 32 in
    Array.iter
      (fun c ->
        let last_job = ref (-1) in
        List.iter
          (fun th ->
            let tid = Exec.tid th in
            (match Hashtbl.find_opt seen tid with
            | Some c' ->
                note_bad
                  (Printf.sprintf "tid %d on the runqueues of cores %d and %d at once" tid
                     c' c)
            | None -> Hashtbl.replace seen tid c);
            match Hashtbl.find_opt job_of_tid tid with
            | Some j ->
                if j < !last_job then
                  note_bad
                    (Printf.sprintf
                       "core %d runqueue holds job %d behind job %d (FIFO broken)" c j
                       !last_job);
                last_job := max !last_job j
            | None -> ())
          (Exec.runq exec ~cpu:c))
      ros
  in
  ignore
    (Exec.spawn exec ~cpu:hrt ~name:"monitor" (fun () ->
         while !done_jobs < njobs do
           check_snapshot ();
           Exec.sleep exec 100
         done;
         check_snapshot ()));
  let quiesced = Sim.run_bounded machine.Machine.sim ~max_events:default_max_events in
  all
    [
      (fun () -> check_quiesced exec ~quiesced);
      (fun () -> if !woken then Pass else Fail "waiter never woke (lost wakeup)");
      (fun () -> match !snapshot_bad with None -> Pass | Some m -> Fail m);
      (fun () ->
        let bad = ref Pass in
        Array.iteri
          (fun i n -> if !bad = Pass && n <> 1 then bad := failf "job %d ran %d times" i n)
          runs;
        !bad);
      (fun () ->
        let bad = ref Pass in
        Array.iteri
          (fun i c ->
            if !bad = Pass && not (Array.exists (fun r -> r = c) ros) then
              bad := failf "job %d ran on core %d, outside the ROS partition" i c)
          ran_on;
        !bad);
    ]

let work_steal =
  {
    sc_name = "work-steal";
    sc_descr =
      "deterministic work stealing across per-core runqueues: no lost \
       wakeups, no fiber on two queues, FIFO within a runqueue, steals \
       never cross the partition boundary";
    sc_fault_specs = [];
    sc_expect_bug = false;
    sc_run = work_steal_run;
  }

(* --- repartition: dynamic core lending between HRT partitions --- *)

(* Geometry [2;1]: partition 1 owns two cores and lends its second to
   partition 2, then reclaims it.  The lend happens while the core's
   runqueue still holds queued jobs and a wake-enqueue for a parked waiter
   is in flight.  Oracles:

   - no lost wakeup: the waiter woken just before the lend still runs
     (its pending enqueue must follow the re-homed thread);
   - no stranded fiber: the lent core's runqueue is empty of pre-lend
     work from the instant the lend returns until the reclaim;
   - FIFO across the drain: the jobs still queued when the core moves
     land on the sibling in their original spawn order (the strategy may
     permute completion, but never the queue);
   - exclusive ownership: at every monitor snapshot each core belongs to
     exactly one partition handle, consistent with [partition_of];
   - fabric re-home: the endpoint bound to the lent core moves to the
     source partition's remaining core and still serves calls;
   - the destination partition can schedule onto the adopted core, and
     the reclaim returns the core home. *)
let repartition_run ~strategy ~faults:_ =
  let module Hvm = Mv_hvm.Hvm in
  let module Topology = Mv_hw.Topology in
  let machine =
    (* The [2;1]+ROS carve needs at least four cores; below that, fall
       back to the reference box rather than reject the sweep. *)
    match topology () with
    | Some (s, c) when s * c >= 4 -> make_machine ~hrt_parts:[ 2; 1 ] ~work_stealing:true ()
    | Some _ | None ->
        Machine.create ~hrt_parts:[ 2; 1 ] ~work_stealing:true ()
  in
  let exec = machine.Machine.exec in
  Strategy.install strategy exec;
  let topo = machine.Machine.topo in
  let ros0 = List.hd (Topology.ros_cores topo) in
  let c1a, lendc =
    match Topology.cores_of topo 1 with
    | [ a; b ] -> (a, b)
    | l -> failwith (Printf.sprintf "partition 1 has %d cores" (List.length l))
  in
  let kernel = Mv_ros.Kernel.create machine in
  let hvm = Hvm.create machine ~ros:kernel in
  let nk1 = Mv_aerokernel.Nautilus.create ~part:1 machine in
  let nk2 = Mv_aerokernel.Nautilus.create ~part:2 machine in
  let fabric = Fabric.create machine ~kind:Event_channel.Async in
  Fabric.start_pool fabric
    ~spawn:(fun ~name ~core body -> Exec.spawn exec ~cpu:core ~name body)
    ~cores:(Topology.ros_cores topo) ();
  Hvm.on_repartition hvm (fun ~core ~src:_ ~dst:_ ->
      let ros_to = match Topology.ros_cores topo with c :: _ -> Some c | [] -> None in
      let hrt_to = match Topology.cores_of topo 1 with c :: _ -> Some c | [] -> None in
      ignore (Fabric.rehome_core fabric ~core ?ros_to ?hrt_to ()));
  let ep = Fabric.endpoint fabric ~name:"grp" ~ros_core:ros0 ~hrt_core:lendc in
  let njobs = 8 in
  let runs = Array.make njobs 0 in
  let drained_order = ref [] in
  let job_tids = Hashtbl.create 16 in
  let done_jobs = ref 0 in
  let woken = ref false in
  let parked = ref None in
  let lent = ref false in
  let reclaimed = ref false in
  let stranded = ref None in
  let exclusive_bad = ref None in
  let ep_after_lend = ref (-1) in
  let runq_after_lend = ref (-1) in
  let p2_ran_on = ref (-1) in
  let fabric_runs = ref 0 in
  let note r msg = if !r = None then r := Some msg in
  let check_ownership () =
    let n = Topology.ncores topo in
    let owners = Array.make n 0 in
    List.iter
      (fun p ->
        List.iter (fun c -> owners.(c) <- owners.(c) + 1) (Mv_hw.Partition.cores p))
      (Topology.partitions topo);
    Array.iteri
      (fun c k ->
        if k <> 1 then
          note exclusive_bad (Printf.sprintf "core %d belongs to %d partitions" c k)
        else if
          not
            (List.mem c (Topology.cores_of topo (Topology.partition_of topo c)))
        then
          note exclusive_bad
            (Printf.sprintf "core %d: partition_of disagrees with the handle" c))
      owners
  in
  let check_stranded () =
    if !lent && not !reclaimed then
      List.iter
        (fun th ->
          if Hashtbl.mem job_tids (Exec.tid th) then
            note stranded
              (Printf.sprintf "job tid %d stranded on lent core %d" (Exec.tid th) lendc))
        (Exec.runq exec ~cpu:lendc)
  in
  let wake_pending = ref false in
  let ctl_done = ref false in
  ignore
    (Exec.spawn exec ~cpu:ros0 ~name:"ctl" (fun () ->
         (* Installed but not booted: the boot's milliseconds of virtual
            time would let the polling monitor below eat the whole event
            budget, and lending only needs the instances registered. *)
         Hvm.install_hrt_image hvm ~image_kb:64 nk1;
         Hvm.install_hrt_image hvm ~image_kb:64 nk2;
         ignore
           (Exec.spawn exec ~cpu:lendc ~name:"waiter" (fun () ->
                (* The pending check and the block are one host-atomic
                   segment, so the wake cannot slip between them. *)
                if not !wake_pending then
                  Exec.block exec ~reason:"parked" (fun ~now:_ ~wake ->
                      parked := Some wake);
                woken := true));
         for i = 0 to njobs - 1 do
           let th =
             Exec.spawn exec ~cpu:lendc
               ~name:(Printf.sprintf "job-%d" i)
               (fun () ->
                 runs.(i) <- runs.(i) + 1;
                 Machine.charge machine (400 * ((i mod 3) + 1));
                 incr done_jobs)
           in
           Hashtbl.replace job_tids (Exec.tid th) i
         done;
         ignore
           (Exec.spawn exec ~cpu:c1a ~name:"monitor" (fun () ->
                while not !ctl_done do
                  check_ownership ();
                  check_stranded ();
                  Exec.sleep exec 150
                done;
                check_ownership ()));
         Exec.sleep exec 900;
         (* Wake the parked waiter and lend in the same host segment: the
            wake-enqueue event is still in flight when the core moves, so
            it must follow the re-homed thread. *)
         (match !parked with
         | Some wake ->
             parked := None;
             wake ()
         | None -> wake_pending := true);
         Hvm.lend_core hvm ~core:lendc ~dst:2;
         lent := true;
         runq_after_lend :=
           List.length
             (List.filter
                (fun th -> Hashtbl.mem job_tids (Exec.tid th))
                (Exec.runq exec ~cpu:lendc));
         (* Same host segment as the lend: this is exactly the drain's
            output order on the sibling, before any dispatch touches it. *)
         drained_order :=
           List.filter_map
             (fun th -> Hashtbl.find_opt job_tids (Exec.tid th))
             (Exec.runq exec ~cpu:c1a);
         ep_after_lend := Event_channel.hrt_core (Fabric.channel ep);
         (* The destination partition schedules onto its adopted core. *)
         let p2 =
           Nautilus.create_thread_local nk2 ~name:"p2-job" ~core:lendc (fun () ->
               p2_ran_on := Exec.cpu_of (Exec.self exec);
               Machine.charge machine 500)
         in
         (* The re-homed endpoint still serves calls end to end. *)
         let caller =
           Exec.spawn exec ~cpu:c1a ~name:"caller" (fun () ->
               Fabric.call fabric ep
                 { Event_channel.req_kind = "probe"; req_run = (fun () -> incr fabric_runs) })
         in
         Exec.join exec p2;
         Exec.join exec caller;
         while !done_jobs < njobs || not !woken do
           Exec.sleep exec 200
         done;
         Hvm.reclaim_core hvm ~core:lendc;
         reclaimed := true;
         Fabric.shutdown fabric;
         ctl_done := true));
  let quiesced = Sim.run_bounded machine.Machine.sim ~max_events:default_max_events in
  all
    [
      (fun () ->
        check_quiesced exec ~quiesced ~allow_blocked:(fun name -> name = "nk/event-loop"));
      (fun () -> if !woken then Pass else Fail "waiter never woke (lost wakeup)");
      (fun () -> match !stranded with None -> Pass | Some m -> Fail m);
      (fun () -> match !exclusive_bad with None -> Pass | Some m -> Fail m);
      (fun () ->
        let bad = ref Pass in
        Array.iteri
          (fun i n -> if !bad = Pass && n <> 1 then bad := failf "job %d ran %d times" i n)
          runs;
        !bad);
      (fun () ->
        let rec ascending = function
          | a :: (b :: _ as rest) ->
              if a > b then
                failf "jobs %d and %d drained out of spawn order" a b
              else ascending rest
          | _ -> Pass
        in
        ascending !drained_order);
      (fun () ->
        if !runq_after_lend = 0 then Pass
        else failf "%d entries left on the lent core's runqueue" !runq_after_lend);
      (fun () ->
        if !ep_after_lend = c1a then Pass
        else failf "endpoint hrt core is %d after the lend (want %d)" !ep_after_lend c1a);
      (fun () ->
        if !p2_ran_on = lendc then Pass
        else failf "partition-2 job ran on core %d (want adopted core %d)" !p2_ran_on lendc);
      (fun () -> if !fabric_runs = 1 then Pass else failf "probe ran %d times" !fabric_runs);
      (fun () ->
        if Hvm.lends hvm = 1 && Hvm.reclaims hvm = 1 then Pass
        else failf "lends=%d reclaims=%d (want 1/1)" (Hvm.lends hvm) (Hvm.reclaims hvm));
      (fun () ->
        if Topology.partition_of topo lendc = 1 then Pass
        else failf "core %d ended in partition %d (want home 1)" lendc
          (Topology.partition_of topo lendc));
    ]

let repartition =
  {
    sc_name = "repartition";
    sc_descr =
      "dynamic core lending between two HRT partitions: runqueue drained \
       FIFO onto a sibling, in-flight wakeups follow the re-home, no fiber \
       stranded, exclusive core ownership at every step, fabric endpoints \
       re-routed, and the reclaim returns the core home";
    sc_fault_specs = [];
    sc_expect_bug = false;
    sc_run = repartition_run;
  }

let all_scenarios =
  [
    racy_wakeup;
    ping_pong Event_channel.Async;
    ping_pong Event_channel.Sync;
    broken_dedup;
    fabric_batch;
    fabric_degrade;
    fabric_overload;
    fabric_overload_block;
    boot_handshake;
    group_respawn;
    merge_fault;
    merge_stale_pml4;
    multi_group;
    work_steal;
    repartition;
  ]

let find name = List.find_opt (fun sc -> sc.sc_name = name) all_scenarios
