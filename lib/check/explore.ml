module Fault_plan = Mv_faults.Fault_plan
open Scenario

type fault_config = {
  fc_seed : int;
  fc_rate : float;
  fc_sites : Fault_plan.site list;
}

let no_faults = { fc_seed = 0; fc_rate = 0.0; fc_sites = [] }

let plan_of fc =
  if fc.fc_rate <= 0.0 || fc.fc_sites = [] then Fault_plan.none
  else Fault_plan.create ~seed:fc.fc_seed ~rate:fc.fc_rate ~sites:fc.fc_sites ()

let run_once sc ~spec ~fc =
  let strategy = Strategy.create spec in
  let faults = plan_of fc in
  let outcome =
    try sc.sc_run ~strategy ~faults
    with e -> Fail ("uncaught exception: " ^ Printexc.to_string e)
  in
  (outcome, Strategy.recorded strategy)

type counterexample = {
  cx_scenario : string;
  cx_found_by : string;
  cx_trace : int list;
  cx_fault : fault_config;
  cx_message : string;
  cx_confirmed : bool;
}

type result = {
  ex_scenario : string;
  ex_runs : int;
  ex_counterexample : counterexample option;
}

(* --- trace surgery --- *)

let strip_trailing_zeros trace =
  let rec strip = function 0 :: rest -> strip rest | t -> t in
  List.rev (strip (List.rev trace))

let take n l = List.filteri (fun i _ -> i < n) l

let zero_at i l = List.mapi (fun j x -> if j = i then 0 else x) l

(* --- shrinking --- *)

let shrink sc ~fc ~budget trace =
  let spent = ref 0 in
  let fails cand =
    incr spent;
    match run_once sc ~spec:(Strategy.Replay cand) ~fc with
    | Fail _, _ -> true
    | Pass, _ -> false
  in
  (* Trailing zeros are free to drop: replay past the end answers 0, so
     the two traces denote the same schedule. *)
  let t = ref (strip_trailing_zeros trace) in
  (* Halving truncation: cutting the tail means "finish the run FIFO". *)
  let chunk = ref (max 1 (List.length !t / 2)) in
  while !chunk >= 1 && !spent < budget && !t <> [] do
    let n = List.length !t in
    let cand = take (max 0 (n - !chunk)) !t in
    if fails cand then t := strip_trailing_zeros cand
    else if !chunk = 1 then chunk := 0
    else chunk := !chunk / 2
  done;
  (* Zero out the surviving nonzero decisions one by one. *)
  let n = List.length !t in
  let i = ref 0 in
  while !i < n && !spent < budget do
    (if List.nth !t !i <> 0 then
       let cand = zero_at !i !t in
       if fails cand then t := cand);
    incr i
  done;
  (strip_trailing_zeros !t, !spent)

(* --- the sweep --- *)

(* The full attempt schedule, materialized so the sequential and parallel
   sweeps walk the exact same (strategy, fault-config) order: the FIFO
   baseline (fault-free and under each fault shape — bugs reachable
   without randomness shrink to trace []), then each random seed under
   the same configs instantiated with that seed. *)
let attempts ?(seeds = 20) sc =
  let configs_for seed =
    no_faults
    :: List.map
         (fun fs -> { fc_seed = seed; fc_rate = fs.fs_rate; fc_sites = fs.fs_sites })
         sc.sc_fault_specs
  in
  let baseline = List.map (fun fc -> (Strategy.Fifo, fc)) (configs_for 1) in
  let random =
    List.concat_map
      (fun seed -> List.map (fun fc -> (Strategy.Random seed, fc)) (configs_for seed))
      (List.init seeds (fun i -> i + 1))
  in
  Array.of_list (baseline @ random)

(* Once a failing attempt is in hand, the investigation is strictly
   sequential (confirm, shrink, re-message) whichever sweep found it;
   [runs] already counts the attempts spent reaching the failure. *)
let investigate sc ~shrink_budget ~runs ~spec ~fc ~msg ~recorded =
  let attempt spec fc =
    incr runs;
    run_once sc ~spec ~fc
  in
  (* Confirm determinism: replaying the recorded trace must reproduce
     the identical failure and make the identical decisions. *)
  let confirmed =
    match attempt (Strategy.Replay recorded) fc with
    | Fail msg', recorded' -> msg' = msg && recorded' = recorded
    | Pass, _ -> false
  in
  let trace, spent =
    if confirmed then shrink sc ~fc ~budget:shrink_budget recorded
    else (strip_trailing_zeros recorded, 0)
  in
  runs := !runs + spent;
  (* The shrunk trace's own message is what the artifact reports. *)
  let msg =
    if trace = strip_trailing_zeros recorded then msg
    else
      match attempt (Strategy.Replay trace) fc with
      | Fail m, _ -> m
      | Pass, _ -> msg
  in
  {
    cx_scenario = sc.sc_name;
    cx_found_by = Strategy.spec_to_string spec;
    cx_trace = trace;
    cx_fault = fc;
    cx_message = msg;
    cx_confirmed = confirmed;
  }

let explore ?(seeds = 20) ?(shrink_budget = 300) sc =
  let atts = attempts ~seeds sc in
  let runs = ref 0 in
  let cx = ref None in
  (try
     Array.iter
       (fun (spec, fc) ->
         incr runs;
         match run_once sc ~spec ~fc with
         | Pass, _ -> ()
         | Fail msg, recorded ->
             cx := Some (investigate sc ~shrink_budget ~runs ~spec ~fc ~msg ~recorded);
             raise Exit)
       atts
   with Exit -> ());
  { ex_scenario = sc.sc_name; ex_runs = !runs; ex_counterexample = !cx }

let explore_par ~pool ?(seeds = 20) ?(shrink_budget = 300) sc =
  let atts = attempts ~seeds sc in
  let hit =
    Mv_host_par.Pool.find_first pool
      (fun (spec, fc) ->
        match run_once sc ~spec ~fc with
        | Fail msg, recorded -> Some (msg, recorded)
        | Pass, _ -> None)
      atts
  in
  match hit with
  | None ->
      { ex_scenario = sc.sc_name; ex_runs = Array.length atts; ex_counterexample = None }
  | Some (idx, (msg, recorded)) ->
      let spec, fc = atts.(idx) in
      (* [find_first] guarantees every attempt below [idx] ran (and
         passed), so counting them plus this one reproduces the
         sequential [ex_runs] exactly. *)
      let runs = ref (idx + 1) in
      let cx = investigate sc ~shrink_budget ~runs ~spec ~fc ~msg ~recorded in
      { ex_scenario = sc.sc_name; ex_runs = !runs; ex_counterexample = Some cx }

let replay sc cx = run_once sc ~spec:(Strategy.Replay cx.cx_trace) ~fc:cx.cx_fault

(* --- the replayable artifact --- *)

let trace_to_string trace = String.concat "," (List.map string_of_int trace)

let trace_of_string s =
  match String.trim s with
  | "" -> Ok []
  | s -> (
      try Ok (List.map (fun x -> int_of_string (String.trim x)) (String.split_on_char ',' s))
      with _ -> Error (Printf.sprintf "bad trace %S" s))

let to_artifact cx =
  String.concat "\n"
    [
      "mvcheck counterexample v1";
      "scenario: " ^ cx.cx_scenario;
      "found-by: " ^ cx.cx_found_by;
      "fault-seed: " ^ string_of_int cx.cx_fault.fc_seed;
      "fault-rate: " ^ string_of_float cx.cx_fault.fc_rate;
      "fault-sites: "
      ^ (if cx.cx_fault.fc_sites = [] then "none"
         else Fault_plan.sites_to_string cx.cx_fault.fc_sites);
      "trace: " ^ trace_to_string cx.cx_trace;
      "message: " ^ String.escaped cx.cx_message;
      "";
    ]

let of_artifact text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | header :: rest when String.trim header = "mvcheck counterexample v1" -> (
      let field key =
        let prefix = key ^ ": " in
        let plen = String.length prefix in
        List.find_map
          (fun line ->
            if String.length line >= plen && String.sub line 0 plen = prefix then
              Some (String.sub line plen (String.length line - plen))
            else if String.trim line = key ^ ":" then Some ""
            else None)
          rest
      in
      let ( let* ) r f = Result.bind r f in
      let require key =
        match field key with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing field %S" key)
      in
      let int_field key =
        let* v = require key in
        try Ok (int_of_string (String.trim v))
        with _ -> Error (Printf.sprintf "bad %s: %S" key v)
      in
      let* scenario = require "scenario" in
      let* found_by = require "found-by" in
      let* fault_seed = int_field "fault-seed" in
      let* rate_s = require "fault-rate" in
      let* rate =
        try Ok (float_of_string (String.trim rate_s))
        with _ -> Error (Printf.sprintf "bad fault-rate: %S" rate_s)
      in
      let* sites_s = require "fault-sites" in
      let* sites =
        if String.trim sites_s = "none" || rate <= 0.0 then Ok []
        else Fault_plan.sites_of_string sites_s
      in
      let* trace_s = require "trace" in
      let* trace = trace_of_string trace_s in
      let* message = require "message" in
      Ok
        {
          cx_scenario = String.trim scenario;
          cx_found_by = String.trim found_by;
          cx_trace = trace;
          cx_fault = { fc_seed = fault_seed; fc_rate = rate; fc_sites = sites };
          cx_message = Scanf.unescaped message;
          cx_confirmed = true;
        })
  | _ -> Error "not an mvcheck counterexample (bad header)"
