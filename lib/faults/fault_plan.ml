module Machine = Mv_engine.Machine
module Rng = Mv_util.Rng

type site =
  | Chan_drop
  | Chan_delay
  | Chan_duplicate
  | Chan_corrupt
  | Partner_kill
  | Boot_stall
  | Syscall_eagain
  | Syscall_enosys

let all_sites =
  [
    Chan_drop;
    Chan_delay;
    Chan_duplicate;
    Chan_corrupt;
    Partner_kill;
    Boot_stall;
    Syscall_eagain;
    Syscall_enosys;
  ]

let nsites = List.length all_sites

let site_index = function
  | Chan_drop -> 0
  | Chan_delay -> 1
  | Chan_duplicate -> 2
  | Chan_corrupt -> 3
  | Partner_kill -> 4
  | Boot_stall -> 5
  | Syscall_eagain -> 6
  | Syscall_enosys -> 7

let site_name = function
  | Chan_drop -> "chan-drop"
  | Chan_delay -> "chan-delay"
  | Chan_duplicate -> "chan-dup"
  | Chan_corrupt -> "chan-corrupt"
  | Partner_kill -> "partner-kill"
  | Boot_stall -> "boot-stall"
  | Syscall_eagain -> "syscall-eagain"
  | Syscall_enosys -> "syscall-enosys"

let site_of_name name = List.find_opt (fun s -> site_name s = name) all_sites

let sites_of_string spec =
  match String.lowercase_ascii (String.trim spec) with
  | "" | "all" -> Ok all_sites
  | spec -> (
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | name :: rest -> (
            let name = String.trim name in
            match site_of_name name with
            | Some site -> parse (site :: acc) rest
            | None ->
                Error
                  (Printf.sprintf "unknown fault site %S (known: %s)" name
                     (String.concat ", " (List.map site_name all_sites))))
      in
      parse [] (String.split_on_char ',' spec))

let sites_to_string = function
  | sites when sites = all_sites -> "all"
  | sites -> String.concat "," (List.map site_name sites)

type t = {
  p_enabled : bool;
  p_seed : int;
  p_rate : float;
  p_mask : bool array;
  p_streams : Rng.t array;  (* one independent stream per site *)
  p_counts : int array;
  mutable p_total : int;
  mutable p_machine : Machine.t option;
}

let none =
  {
    p_enabled = false;
    p_seed = 0;
    p_rate = 0.;
    p_mask = Array.make nsites false;
    p_streams = [||];
    p_counts = Array.make nsites 0;
    p_total = 0;
    p_machine = None;
  }

let create ~seed ?(rate = 0.05) ?(sites = all_sites) () =
  if rate < 0. || rate > 1. then invalid_arg "Fault_plan.create: rate not in [0,1]";
  let root = Rng.create ~seed in
  (* Streams are split off in fixed site order so the [sites] filter never
     shifts another site's randomness. *)
  let streams = Array.init nsites (fun _ -> Rng.split root) in
  let mask = Array.make nsites false in
  List.iter (fun s -> mask.(site_index s) <- true) sites;
  {
    p_enabled = true;
    p_seed = seed;
    p_rate = rate;
    p_mask = mask;
    p_streams = streams;
    p_counts = Array.make nsites 0;
    p_total = 0;
    p_machine = None;
  }

let enabled t = t.p_enabled
let site_enabled t site = t.p_enabled && t.p_mask.(site_index site)
let bind t machine = if t.p_enabled then t.p_machine <- Some machine
let seed t = t.p_seed
let rate t = t.p_rate
let injected t = t.p_total
let injected_at t site = t.p_counts.(site_index site)

let fire t site ctx =
  t.p_enabled
  && t.p_mask.(site_index site)
  &&
  let i = site_index site in
  let hit = Rng.float t.p_streams.(i) 1.0 < t.p_rate in
  if hit then begin
    t.p_counts.(i) <- t.p_counts.(i) + 1;
    t.p_total <- t.p_total + 1;
    match t.p_machine with
    | Some m ->
        Machine.emit m (Mv_engine.Trace.Fault_injected { site = site_name site; ctx })
    | None -> ()
  end;
  hit

let extra_delay t site ~base =
  let base = max 1 base in
  base + Rng.int t.p_streams.(site_index site) (3 * base)

let syscall_errno t name =
  if fire t Syscall_eagain name then Some "EAGAIN"
  else if fire t Syscall_enosys name then Some "ENOSYS"
  else None

let pp_summary ppf t =
  if not t.p_enabled then Format.fprintf ppf "faults disabled"
  else begin
    Format.fprintf ppf "seed=%d rate=%.3f injected=%d" t.p_seed t.p_rate t.p_total;
    List.iter
      (fun s ->
        let n = injected_at t s in
        if n > 0 then Format.fprintf ppf " %s=%d" (site_name s) n)
      all_sites
  end
