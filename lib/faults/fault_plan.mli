(** Deterministic fault injection.

    A fault plan decides, at a set of named {e sites}, whether the next
    boundary crossing misbehaves: event-channel messages can be dropped,
    delayed, duplicated, or corrupted; partner threads can be killed; the
    HRT boot protocol can stall; forwarded syscalls can return spurious
    errnos.  Every decision flows through a per-site splitmix64 stream
    derived from one seed, so a run is exactly reproducible from
    [(seed, rate, sites)] — and changing which sites are enabled does not
    perturb the streams of the others.

    Every injected fault is emitted through the bound machine's
    {!Mv_engine.Trace} under category ["fault"], which is what the
    determinism tests compare byte-for-byte.

    The disabled plan ({!none}) costs one branch per site query; consumers
    use it as the default so the harness is zero-cost when off. *)

type site =
  | Chan_drop  (** lose an event-channel request in transit *)
  | Chan_delay  (** deliver an event-channel request late *)
  | Chan_duplicate  (** deliver an event-channel request twice *)
  | Chan_corrupt  (** corrupt a request so the server must discard it *)
  | Partner_kill  (** kill an idle ROS partner thread *)
  | Boot_stall  (** stall the millisecond HRT boot protocol once *)
  | Syscall_eagain  (** forwarded syscall spuriously returns EAGAIN *)
  | Syscall_enosys  (** forwarded syscall spuriously returns ENOSYS *)

val all_sites : site list
val site_name : site -> string
val site_of_name : string -> site option

val sites_of_string : string -> (site list, string) result
(** Parse a comma-separated site list (["all"] or [""] mean every site);
    the error names the offending site and lists the known ones.  Shared
    by the CLI drivers and the mvcheck counterexample artifacts. *)

val sites_to_string : site list -> string
(** Inverse of {!sites_of_string} (["all"] when every site is listed). *)

type t

val none : t
(** The inert plan: never fires, never draws randomness, never traces. *)

val create : seed:int -> ?rate:float -> ?sites:site list -> unit -> t
(** [create ~seed ~rate ~sites ()] arms the listed sites (default: all)
    with per-query probability [rate] (default 0.05).  A rate of [0.] is a
    {e zero-fault plan}: the resilience machinery runs armed but no fault
    ever fires — used to prove the machinery itself is cycle-neutral. *)

val enabled : t -> bool
(** [true] for any created plan (even rate 0), [false] for {!none}.
    Consumers arm their resilience paths iff this is set. *)

val site_enabled : t -> site -> bool

val bind : t -> Mv_engine.Machine.t -> unit
(** Attach the trace sink; injected faults emit records at the machine's
    current virtual time. *)

val fire : t -> site -> string -> bool
(** [fire t site ctx] draws the site's stream and reports whether to
    inject here; on [true] the fault is counted and traced with [ctx]. *)

val extra_delay : t -> site -> base:int -> int
(** Cycles of extra latency for a delay-class fault that just fired:
    uniform in [[base, 4*base)], drawn from the site's stream. *)

val syscall_errno : t -> string -> string option
(** Spurious errno (["EAGAIN"] | ["ENOSYS"]) for a forwarded syscall, or
    [None] to let it through. *)

val seed : t -> int
val rate : t -> float
val injected : t -> int
val injected_at : t -> site -> int

val pp_summary : Format.formatter -> t -> unit
(** One-line [site=count] summary of everything injected so far. *)
