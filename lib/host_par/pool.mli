(** A host-side OCaml 5 domain task pool for embarrassingly parallel
    simulation sweeps.

    Every (scenario, seed, strategy) tuple of an mvcheck sweep, every seed
    of a fault matrix, and every cell of a bench matrix is one independent
    {!Mv_engine.Machine} run; this pool fans such runs out across a fixed
    number of worker domains.  The design invariant is {b determinism}:
    results are merged by {e submission index}, never by completion order,
    so any quantity computed from a {!map} or {!find_first} result is
    bit-identical whatever [jobs] is and however the domains interleave.

    Tasks must be {e domain-confined}: they may not share mutable state
    with each other or with the submitter (each task builds its own
    machine).  Tasks must not print — they return values, and the
    submitter renders them in submission order.

    With [jobs = 1] no domains are spawned and every operation runs
    inline in the calling domain, byte-for-byte the sequential code
    path. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs] worker domains ([jobs >= 1]; with 1, no
    domains are spawned and work runs inline).  Raises [Invalid_argument]
    on [jobs < 1]. *)

val jobs : t -> int
(** The configured worker count. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] runs [f xs.(i)] for every [i], in parallel across the
    workers, and returns the results {e in submission order}:
    [(map t f xs).(i) = f xs.(i)].  Blocks until every task completes.
    If any task raises, the exception of the {e lowest} raising index is
    re-raised in the caller (after all tasks have finished). *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val find_first : t -> ('a -> 'b option) -> 'a array -> (int * 'b) option
(** [find_first t f xs] is [Some (i, r)] for the {e smallest} [i] with
    [f xs.(i) = Some r], or [None].  Deterministic: the winner is decided
    by submission index, not completion order.  Tasks whose index is
    already above the best-known hit may be skipped entirely (their [f]
    is never called), so a sweep short-circuits like its sequential
    counterpart; tasks below the winning index always run. *)

val run : jobs:int -> (unit -> 'a) list -> 'a list
(** One-shot convenience: create a pool, {!map_list} the thunks, shut it
    down. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  The pool must be idle (no batch in
    flight).  Idempotent. *)
