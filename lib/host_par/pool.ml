(* A fixed-size domain pool over one shared FIFO of tasks.

   Tasks here are whole simulation runs (milliseconds each), so a single
   mutex-protected queue is nowhere near contended; what matters is the
   merge discipline: every batch writes results into a slot array indexed
   by submission order, and the submitter only reads it back after the
   batch barrier, so completion order is unobservable. *)

type task = unit -> unit

type t = {
  m : Mutex.t;
  work : Condition.t;  (* task queued, or stopping *)
  queue : task Queue.t;
  n_jobs : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t array;
}

let jobs t = t.n_jobs

let rec worker t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* stopping *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.m;
    task ();
    worker t
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      n_jobs = jobs;
      stopping = false;
      domains = [||];
    }
  in
  if jobs > 1 then t.domains <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

(* One batch: a completion latch the submitter parks on.  Result slots are
   plain array stores (distinct indices, no tearing on boxed values); the
   latch mutex orders them before the submitter's reads. *)
type batch = { bm : Mutex.t; done_ : Condition.t; mutable left : int }

let submit t tasks =
  let n = Array.length tasks in
  let batch = { bm = Mutex.create (); done_ = Condition.create (); left = n } in
  let wrap task () =
    task ();
    Mutex.lock batch.bm;
    batch.left <- batch.left - 1;
    if batch.left = 0 then Condition.signal batch.done_;
    Mutex.unlock batch.bm
  in
  Mutex.lock t.m;
  if t.stopping then begin
    Mutex.unlock t.m;
    invalid_arg "Pool: already shut down"
  end;
  Array.iter (fun task -> Queue.add (wrap task) t.queue) tasks;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  Mutex.lock batch.bm;
  while batch.left > 0 do
    Condition.wait batch.done_ batch.bm
  done;
  Mutex.unlock batch.bm

(* Re-raise the lowest-index failure so the caller sees the same error the
   sequential left-to-right loop would have seen first. *)
let reraise_first results =
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.n_jobs = 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    submit t
      (Array.init n (fun i () ->
           let r =
             try Ok (f xs.(i))
             with e -> Error (e, Printexc.get_raw_backtrace ())
           in
           results.(i) <- Some r));
    reraise_first results;
    Array.map
      (function Some (Ok r) -> r | Some (Error _) | None -> assert false)
      results
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let rec atomic_min a i =
  let cur = Atomic.get a in
  if i < cur && not (Atomic.compare_and_set a cur i) then atomic_min a i

let find_first t f xs =
  let n = Array.length xs in
  if t.n_jobs = 1 then begin
    let rec go i =
      if i >= n then None
      else match f xs.(i) with Some r -> Some (i, r) | None -> go (i + 1)
    in
    go 0
  end
  else begin
    let best = Atomic.make max_int in
    let hits = Array.make n None in
    let errors = Array.make n None in
    submit t
      (Array.init n (fun i () ->
           (* Skipping is sound: [best] only decreases, so a task skipped at
              index [i] can never have been the winner. *)
           if Atomic.get best > i then
             match f xs.(i) with
             | Some r ->
                 hits.(i) <- Some r;
                 atomic_min best i
             | None -> ()
             | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())));
    let b = Atomic.get best in
    (* An error below the winning index would have decided a sequential
       sweep; surface it rather than a possibly-wrong winner. *)
    Array.iteri
      (fun i err ->
        match err with
        | Some (e, bt) when i < b -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      errors;
    if b = max_int then None else Some (b, Option.get hits.(b))
  end

let run ~jobs thunks =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map_list t (fun f -> f ()) thunks)
