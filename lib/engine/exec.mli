(** Simulated-thread executor: per-CPU dispatch in virtual time.

    A thread is a fiber pinned to a CPU.  When dispatched it executes
    OCaml code instantaneously in host time while accumulating virtual
    cycles via {!charge}; the segment ends when the thread blocks, yields,
    is preempted (slice expiry), or finishes, at which point the CPU is
    busy until [segment_start + accumulated_charge].  All cross-thread
    interaction must go through {!block}/wake, which keeps virtual-time
    causality consistent even though segments are host-atomic.

    Both the ROS scheduler and the AeroKernel build on this; they differ
    only in switch cost and preemption policy (Linux preempts on a
    timeslice, Nautilus threads are cooperative). *)

type t
type thread

type thread_state = Ready | Running | Blocked of string | Finished

type sched_hook = {
  sh_pick : cpu:int -> thread array -> int;
      (** Called when two or more Ready threads compete for a CPU at the
          same virtual instant.  Candidates are in FIFO order; return the
          index to dispatch (out-of-range falls back to 0).  Returning 0
          everywhere reproduces the default FIFO schedule exactly. *)
  sh_preempt : cpu:int -> thread -> bool;
      (** Called at a slice expiry while local competitors wait.  [true]
          preempts (the default behaviour); [false] extends the slice by
          one quantum, modelling timer jitter.  Hooks must not starve:
          return [true] eventually. *)
  sh_steal : cpu:int -> victims:int array -> int;
      (** Called when an idle core in the steal domain has two or more
          candidate victims.  [victims] are cpu ids in the default
          preference order (most Ready threads first, ties to the lowest
          core id); return the index to steal from (out-of-range falls back
          to 0).  Returning 0 everywhere reproduces the default
          deterministic stealing exactly. *)
}

val create : Sim.t -> ncpus:int -> t
val sim : t -> Sim.t
val ncpus : t -> int

val set_sched_hook : t -> sched_hook option -> unit
(** Install (or clear) the schedule-exploration hook.  With [None] — the
    default — dispatch is plain FIFO and behaviour is byte-identical to an
    executor that never heard of hooks. *)

val threads : t -> thread list
(** Every thread ever spawned on this executor, in spawn order — the model
    checker's view for quiescence and lost-wakeup oracles. *)

val set_steal_domain : t -> int list option -> unit
(** Enable deterministic work stealing among the listed cores (or disable
    it with [None], the default).  An idle domain core with an empty run
    queue steals the oldest half (rounded up) of the Ready threads of the
    most-loaded domain peer — fixed victim order by core id, ties to the
    lowest id — migrating them permanently.  Cores outside the domain
    neither steal nor are stolen from, so the ROS/HRT partition boundary
    is never crossed.  With stealing disabled, scheduling is byte-identical
    to an executor that never heard of stealing.
    @raise Invalid_argument if a core id is out of range. *)

val steals : t -> cpu:int -> int
(** Successful steals performed by a cpu. *)

val runq : t -> cpu:int -> thread list
(** The threads currently sitting in a cpu's run queue, in queue (FIFO)
    order — a model-checker observation point; may include entries whose
    state is no longer [Ready]. *)

val set_cpu_params :
  t -> cpu:int -> ?switch_cost:int -> ?slice:Mv_util.Cycles.t option -> unit -> unit
(** Configure context-switch cost and the preemption quantum ([None] means
    cooperative) for one CPU. *)

val rehome : t -> cpu:int -> dst:int -> int
(** [rehome t ~cpu ~dst] evacuates [cpu]'s scheduling state onto [dst] —
    the executor half of the HVM's core-lending protocol.  Queued threads
    move to the back of [dst]'s run queue preserving their relative FIFO
    order; every live thread homed on [cpu] (blocked, queued, or with a
    wake-enqueue event still in flight) is retargeted so pending wakeups
    land on [dst] with none lost; [cpu]'s last-dispatched-thread affinity
    is fenced so its next owner starts from a clean switch.  Returns the
    number of threads re-homed.  The caller is responsible for partition
    bookkeeping and for re-applying per-cpu parameters to [cpu].
    @raise Invalid_argument when the running thread is homed on [cpu]. *)

(** {1 Thread lifecycle} *)

val spawn : t -> cpu:int -> name:string -> (unit -> unit) -> thread
(** Create a thread on [cpu], runnable as of the caller's local time.  The
    body runs as a fiber; returning ends the thread. *)

val kill : t -> thread -> unit
(** Terminate a thread.  A blocked thread's fiber is unwound with
    {!Fiber.Cancelled}; a ready thread is descheduled.  Killing the running
    thread (self) is not supported — just return from the body. *)

val state : t -> thread -> thread_state
val name : thread -> string
val tid : thread -> int
val cpu_of : thread -> int

(** {1 Inside a thread} *)

val self : t -> thread
(** @raise Failure when no thread is executing. *)

val self_opt : t -> thread option
(** [None] outside thread context (event callbacks, the top level). *)

val charge : t -> Mv_util.Cycles.t -> unit
(** Account virtual compute time to the running thread.  May preempt (and
    therefore suspend the fiber) if the CPU's slice expires and another
    thread is waiting. *)

val set_charge_hook : t -> (thread -> Mv_util.Cycles.t -> unit) -> unit
(** Observe every {!charge} (thread, amount) — used by the ROS to split
    cycles into user and system time.  The hook runs before any preemption
    the charge triggers. *)

val local_now : t -> Mv_util.Cycles.t
(** The current thread's virtual time ([segment start + charge so far]);
    equals [Sim.now] outside thread context. *)

val block : t -> reason:string -> (now:Mv_util.Cycles.t -> wake:('a -> unit) -> unit) -> 'a
(** [block t ~reason register] suspends the current thread.  [register] is
    called immediately with the thread's block time [now] and a [wake]
    function; stash [wake] somewhere (a wait queue, a timer) and the thread
    resumes — no earlier than [now] — with the value passed to it.  [wake]
    must be called at most once. *)

val yield : t -> unit
(** Voluntarily give up the CPU, staying runnable. *)

val sleep : t -> Mv_util.Cycles.t -> unit

val join : t -> thread -> unit
(** Block until the target thread finishes (no-op if it already has). *)

val on_exit : t -> thread -> (unit -> unit) -> unit
(** Run a callback (in event context, at the thread's exit time) when the
    thread finishes; immediate if already finished. *)

val after : t -> Mv_util.Cycles.t -> (unit -> unit) -> unit
(** Schedule an event [delay] after the caller's local time. *)

(** {1 Accounting} *)

val cpu_time : thread -> Mv_util.Cycles.t
(** Total virtual cycles the thread has consumed. *)

val voluntary_switches : thread -> int
val involuntary_switches : thread -> int
val cpu_switches : t -> cpu:int -> int
(** Context switches (thread-to-different-thread dispatches) on a CPU. *)
