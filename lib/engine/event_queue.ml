(* Struct-of-arrays binary min-heap.  The hot loop processes one event per
   [push]/[pop] pair, so the representation is chosen for zero allocation
   per operation: times and sequence numbers live in parallel unboxed
   [int array]s (compared without chasing a pointer per node), payloads in
   a third parallel array.  The payload array is created lazily from the
   first pushed element (there is no [:'a] dummy to pre-fill with), and
   popped slots keep a stale duplicate reference exactly as the previous
   boxed-record heap did — retention is bounded by heap capacity either
   way. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;  (* length 0 until the first push *)
  mutable n : int;
  mutable next_seq : int;
}

let create ?(capacity = 0) () =
  let cap = if capacity > 0 then capacity else 0 in
  {
    times = Array.make (max cap 0) 0;
    seqs = Array.make (max cap 0) 0;
    payloads = [||];
    n = 0;
    next_seq = 0;
  }

let is_empty t = t.n = 0
let size t = t.n

let before t i j =
  let ti = t.times.(i) and tj = t.times.(j) in
  ti < tj || (ti = tj && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let sq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- sq;
  let p = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- p

let grow t fill =
  let cap = Array.length t.times in
  if t.n >= cap then begin
    let ncap = max 16 (cap * 2) in
    let nt = Array.make ncap 0 and ns = Array.make ncap 0 in
    Array.blit t.times 0 nt 0 t.n;
    Array.blit t.seqs 0 ns 0 t.n;
    t.times <- nt;
    t.seqs <- ns
  end;
  if t.n >= Array.length t.payloads then begin
    let ncap = Array.length t.times in
    let np = Array.make ncap fill in
    Array.blit t.payloads 0 np 0 t.n;
    t.payloads <- np
  end

let push t ~time payload =
  grow t payload;
  let i = t.n in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.payloads.(i) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.n <- t.n + 1;
  (* sift up *)
  let i = ref i in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t !i parent
  do
    let parent = (!i - 1) / 2 in
    swap t !i parent;
    i := parent
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.n && before t l !smallest then smallest := l;
    if r < t.n && before t r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap t !i !smallest;
      i := !smallest
    end
    else continue := false
  done

let next_time t = if t.n = 0 then max_int else t.times.(0)

let pop_exn t =
  if t.n = 0 then invalid_arg "Event_queue.pop_exn: empty";
  let top = t.payloads.(0) in
  t.n <- t.n - 1;
  if t.n > 0 then begin
    t.times.(0) <- t.times.(t.n);
    t.seqs.(0) <- t.seqs.(t.n);
    t.payloads.(0) <- t.payloads.(t.n);
    sift_down t
  end;
  top

let pop t =
  if t.n = 0 then None
  else begin
    let time = t.times.(0) in
    Some (time, pop_exn t)
  end

let peek_time t = if t.n = 0 then None else Some t.times.(0)
