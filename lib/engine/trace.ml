type record = { at : Mv_util.Cycles.t; category : string; message : string }

(* --- typed events ------------------------------------------------- *)

type payload =
  | Page_fault of { pid : int; vma : string option; page_off : int; addr : int; write : bool }
  | Fatal_signal of { signal : string; pid : int; addr : int }
  | Fault_injected of { site : string; ctx : string }
  | Channel_retry of { attempt : int; backoff : int; kind : string }
  | Channel_exhausted of { retries : int; kind : string }
  | Server_survived of { msg : string }
  | Degrade_sync_to_async
  | Channel_marked_failed
  | Watchdog_respawn of { was : string }
  | Fallback_sync_to_async of { kind : string }
  | Reroute of { kind : string; spurious_errnos : bool }
  | Ride_timeout of { kind : string }
  | Errno_retry of { attempt : int; kind : string }
  | Overload_shed of { kind : string; endpoint : string }
  | Shed_mode of { on : bool }
  | Restore_async_to_sync
  | Repartition of { core : int; src : int; dst : int; moved : int }
  | Message of { category : string; text : string }

let category_of = function
  | Page_fault _ -> "pagefault"
  | Fatal_signal _ -> "fatal"
  | Fault_injected _ -> "fault"
  | Channel_retry _ | Channel_exhausted _ | Server_survived _ | Degrade_sync_to_async
  | Channel_marked_failed | Watchdog_respawn _ | Fallback_sync_to_async _ | Reroute _
  | Ride_timeout _ | Errno_retry _ ->
      "resilience"
  | Overload_shed _ | Shed_mode _ | Restore_async_to_sync -> "overload"
  | Repartition _ -> "partition"
  | Message { category; _ } -> category

(* Renderings are the record shapes tests and the golden trace assert
   on — byte-for-byte the strings the printf call sites used to emit. *)
let render = function
  | Page_fault { pid; vma = Some kind; page_off; write; _ } ->
      Printf.sprintf "pid=%d vma=%s+%d w=%b" pid kind page_off write
  | Page_fault { pid; vma = None; addr; write; _ } ->
      Printf.sprintf "pid=%d addr=%x w=%b" pid addr write
  | Fatal_signal { signal; pid; addr } -> Printf.sprintf "%s pid=%d addr=%x" signal pid addr
  | Fault_injected { site; ctx } -> Printf.sprintf "inject %s %s" site ctx
  | Channel_retry { attempt; backoff; kind } ->
      Printf.sprintf "retry %d backoff=%d: %s" attempt backoff kind
  | Channel_exhausted { retries; kind } ->
      Printf.sprintf "channel failure after %d retries: %s" retries kind
  | Server_survived { msg } -> "server survived: " ^ msg
  | Degrade_sync_to_async -> "degrade sync->async"
  | Channel_marked_failed -> "channel marked failed"
  | Watchdog_respawn { was } -> Printf.sprintf "watchdog respawn poller (was %s)" was
  | Fallback_sync_to_async { kind } -> "fallback sync->async: " ^ kind
  | Reroute { kind; spurious_errnos = false } -> "reroute ros-native: " ^ kind
  | Reroute { kind; spurious_errnos = true } ->
      "reroute ros-native after spurious errnos: " ^ kind
  | Ride_timeout { kind } -> "ride timeout, escalating: " ^ kind
  | Errno_retry { attempt; kind } ->
      Printf.sprintf "retry %d after spurious errno: %s" attempt kind
  | Overload_shed { kind; endpoint } -> Printf.sprintf "overload shed %s @%s" kind endpoint
  | Shed_mode { on = true } -> "shed mode on: sync->async, doorbell suppression widened"
  | Shed_mode { on = false } -> "shed mode off: endpoints restored"
  | Restore_async_to_sync -> "restore async->sync"
  | Repartition { core; src; dst; moved } ->
      Printf.sprintf "core %d: partition %d -> %d (rehomed %d threads)" core src dst moved
  | Message { text; _ } -> text

(* --- the record store --------------------------------------------- *)

(* Entries are kept newest-first, plus a per-category index maintained on
   emit so [records_in]/[count_in] are O(category size)/O(1) instead of
   rebuilding and filtering the full reversed list per call (bench runs
   with tracing on used to go quadratic in hot categories). *)
type bucket = { mutable b_entries : record list (* newest first *); mutable b_count : int }

type span_sink =
  name:string -> cat:string -> ts:Mv_util.Cycles.t -> dur:Mv_util.Cycles.t -> unit

(* Two retention modes behind one query surface.  [Unbounded] (the
   default) is the compatibility mode golden runs and tests rely on:
   full history in a newest-first list plus the per-category index.
   [Ring ~limit] keeps only the newest [limit] records in a circular
   buffer — O(1) per emit, zero growth — for scale runs where the trace
   is a live debugging window rather than an artifact; with [limit = 0]
   and an event sink installed, records stream out without any
   retention.  Category queries in ring mode scan the (bounded)
   window. *)
type store =
  | Unbounded of {
      mutable entries : record list;  (* newest first *)
      mutable count : int;
      by_category : (string, bucket) Hashtbl.t;
    }
  | Ring of {
      ring : record array;
      mutable head : int;  (* index of the oldest retained record *)
      mutable len : int;
      mutable dropped : int;
    }

type t = {
  mutable enabled : bool;
  capacity : int;
  store : store;
  (* Oldest-first view served by [records]; rebuilt lazily so repeated
     calls after a run stop paying a [List.rev] each (exporters and
     tests call it in loops). *)
  mutable memo : record list;
  mutable memo_valid : bool;
  mutable span_sink : span_sink option;
  mutable event_sink : (record -> unit) option;
}

let dummy_record = { at = 0; category = ""; message = "" }

let create ?(enabled = false) ?(capacity = 100_000) ?limit () =
  let store =
    match limit with
    | Some n when n >= 0 -> Ring { ring = Array.make n dummy_record; head = 0; len = 0; dropped = 0 }
    | Some n -> invalid_arg (Printf.sprintf "Trace.create: negative limit %d" n)
    | None -> Unbounded { entries = []; count = 0; by_category = Hashtbl.create 16 }
  in
  { enabled; capacity; store; memo = []; memo_valid = true; span_sink = None; event_sink = None }

let enable t flag = t.enabled <- flag
let enabled t = t.enabled
let set_span_sink t sink = t.span_sink <- sink
let set_event_sink t sink = t.event_sink <- sink

let limit t = match t.store with Ring g -> Some (Array.length g.ring) | Unbounded _ -> None
let dropped t = match t.store with Ring g -> g.dropped | Unbounded _ -> 0

let bucket by_category category =
  match Hashtbl.find_opt by_category category with
  | Some b -> b
  | None ->
      let b = { b_entries = []; b_count = 0 } in
      Hashtbl.replace by_category category b;
      b

let add t r =
  t.memo_valid <- false;
  (match t.store with
  | Unbounded u ->
      u.entries <- r :: u.entries;
      u.count <- u.count + 1;
      let b = bucket u.by_category r.category in
      b.b_entries <- r :: b.b_entries;
      b.b_count <- b.b_count + 1;
      if u.count > t.capacity then begin
        (* Drop the oldest half; O(n) but amortized and rare. *)
        let keep = t.capacity / 2 in
        let rec take n acc = function
          | [] -> List.rev acc
          | x :: rest -> if n = 0 then List.rev acc else take (n - 1) (x :: acc) rest
        in
        u.entries <- take keep [] u.entries;
        u.count <- keep;
        Hashtbl.reset u.by_category;
        (* [entries] is newest-first; fold from the oldest end so each
           bucket also ends up newest-first. *)
        List.fold_right
          (fun r () ->
            let b = bucket u.by_category r.category in
            b.b_entries <- r :: b.b_entries;
            b.b_count <- b.b_count + 1)
          u.entries ()
      end
  | Ring g ->
      let n = Array.length g.ring in
      if n = 0 then g.dropped <- g.dropped + 1
      else if g.len < n then begin
        g.ring.((g.head + g.len) mod n) <- r;
        g.len <- g.len + 1
      end
      else begin
        g.ring.(g.head) <- r;
        g.head <- (g.head + 1) mod n;
        g.dropped <- g.dropped + 1
      end);
  match t.event_sink with Some sink -> sink r | None -> ()

let emit_event t ~at payload =
  (* The disabled path must stay one branch: [render] (and therefore any
     formatting or allocation) only runs when the trace is live. *)
  if t.enabled then add t { at; category = category_of payload; message = render payload }

let emit t ~at ~category message =
  if t.enabled then add t { at; category; message }

let emit_span t ~name ~cat ~ts ~dur =
  if t.enabled then
    match t.span_sink with Some sink -> sink ~name ~cat ~ts ~dur | None -> ()

let records t =
  if t.memo_valid then t.memo
  else begin
    let l =
      match t.store with
      | Unbounded u -> List.rev u.entries
      | Ring g ->
          let n = Array.length g.ring in
          let rec go i acc =
            if i < 0 then acc else go (i - 1) (g.ring.((g.head + i) mod n) :: acc)
          in
          if n = 0 then [] else go (g.len - 1) []
    in
    t.memo <- l;
    t.memo_valid <- true;
    l
  end

let iter t f =
  match t.store with
  | Unbounded _ -> List.iter f (records t)
  | Ring g ->
      let n = Array.length g.ring in
      for i = 0 to g.len - 1 do
        f g.ring.((g.head + i) mod n)
      done

let records_in t ~category =
  match t.store with
  | Unbounded u -> (
      match Hashtbl.find_opt u.by_category category with
      | Some b -> List.rev b.b_entries
      | None -> [])
  | Ring g ->
      let n = Array.length g.ring in
      let acc = ref [] in
      for i = g.len - 1 downto 0 do
        let r = g.ring.((g.head + i) mod n) in
        if String.equal r.category category then acc := r :: !acc
      done;
      !acc

let count_in t ~category =
  match t.store with
  | Unbounded u -> (
      match Hashtbl.find_opt u.by_category category with
      | Some b -> b.b_count
      | None -> 0)
  | Ring g ->
      let n = Array.length g.ring in
      let c = ref 0 in
      for i = 0 to g.len - 1 do
        if String.equal g.ring.((g.head + i) mod n).category category then incr c
      done;
      !c

let clear t =
  t.memo <- [];
  t.memo_valid <- true;
  match t.store with
  | Unbounded u ->
      u.entries <- [];
      u.count <- 0;
      Hashtbl.reset u.by_category
  | Ring g ->
      g.head <- 0;
      g.len <- 0;
      g.dropped <- 0;
      (* Release the retained records so a cleared ring doesn't pin them. *)
      Array.fill g.ring 0 (Array.length g.ring) dummy_record

let pp ppf t =
  iter t (fun r ->
      Format.fprintf ppf "[%12d %-10s] %s@." r.at r.category r.message)
