type record = { at : Mv_util.Cycles.t; category : string; message : string }

(* Entries are kept newest-first, plus a per-category index maintained on
   emit so [records_in]/[count_in] are O(category size)/O(1) instead of
   rebuilding and filtering the full reversed list per call (bench runs
   with tracing on used to go quadratic in hot categories). *)
type bucket = { mutable b_entries : record list (* newest first *); mutable b_count : int }

type t = {
  mutable enabled : bool;
  capacity : int;
  mutable entries : record list;  (* newest first *)
  mutable count : int;
  by_category : (string, bucket) Hashtbl.t;
}

let create ?(enabled = false) ?(capacity = 100_000) () =
  { enabled; capacity; entries = []; count = 0; by_category = Hashtbl.create 16 }

let enable t flag = t.enabled <- flag

let bucket t category =
  match Hashtbl.find_opt t.by_category category with
  | Some b -> b
  | None ->
      let b = { b_entries = []; b_count = 0 } in
      Hashtbl.replace t.by_category category b;
      b

let reindex t =
  Hashtbl.reset t.by_category;
  (* [t.entries] is newest-first; fold from the oldest end so each bucket
     also ends up newest-first. *)
  List.fold_right
    (fun r () ->
      let b = bucket t r.category in
      b.b_entries <- r :: b.b_entries;
      b.b_count <- b.b_count + 1)
    t.entries ()

let emit t ~at ~category message =
  if t.enabled then begin
    let r = { at; category; message } in
    t.entries <- r :: t.entries;
    t.count <- t.count + 1;
    let b = bucket t category in
    b.b_entries <- r :: b.b_entries;
    b.b_count <- b.b_count + 1;
    if t.count > t.capacity then begin
      (* Drop the oldest half; O(n) but amortized and rare. *)
      let keep = t.capacity / 2 in
      let rec take n acc = function
        | [] -> List.rev acc
        | x :: rest -> if n = 0 then List.rev acc else take (n - 1) (x :: acc) rest
      in
      t.entries <- take keep [] t.entries;
      t.count <- keep;
      reindex t
    end
  end

let records t = List.rev t.entries

let records_in t ~category =
  match Hashtbl.find_opt t.by_category category with
  | Some b -> List.rev b.b_entries
  | None -> []

let count_in t ~category =
  match Hashtbl.find_opt t.by_category category with
  | Some b -> b.b_count
  | None -> 0

let clear t =
  t.entries <- [];
  t.count <- 0;
  Hashtbl.reset t.by_category

let pp ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "[%12d %-10s] %s@." r.at r.category r.message)
    (records t)
