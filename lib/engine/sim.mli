(** Discrete-event simulation core: the virtual clock and event loop. *)

type t

val create : ?capacity:int -> ?trace:Trace.t -> unit -> t
(** [capacity] pre-sizes the event queue ({!Event_queue.create}). *)

val now : t -> Mv_util.Cycles.t
(** Current virtual time (the timestamp of the event being processed). *)

val trace : t -> Trace.t

val schedule_at : t -> Mv_util.Cycles.t -> (unit -> unit) -> unit
(** Fire a callback at an absolute virtual time.  Scheduling in the past is
    an error ([Invalid_argument]); simultaneous events fire in scheduling
    order. *)

val schedule_after : t -> Mv_util.Cycles.t -> (unit -> unit) -> unit
(** Relative to [now]. *)

val run : t -> unit
(** Process events until the queue drains. *)

val run_bounded : t -> max_events:int -> bool
(** Like {!run}, but process at most [max_events] events; returns [true]
    if the queue drained (quiescence) and [false] if the budget ran out
    first — the model checker's livelock guard. *)

val run_until : t -> Mv_util.Cycles.t -> unit
(** Process events with timestamps [<= limit]; the clock ends at [limit] or
    at quiescence, whichever is earlier. *)

val step : t -> bool
(** Process one event; [false] if the queue was empty. *)

val events_processed : t -> int
