type t = {
  mutable clock : Mv_util.Cycles.t;
  queue : (unit -> unit) Event_queue.t;
  trace : Trace.t;
  mutable processed : int;
}

let create ?capacity ?trace () =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  { clock = 0; queue = Event_queue.create ?capacity (); trace; processed = 0 }

let now t = t.clock
let trace t = t.trace

let schedule_at t time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %d is before now %d" time t.clock);
  Event_queue.push t.queue ~time fn

let schedule_after t delay fn = schedule_at t (t.clock + delay) fn

(* [next_time] returns [max_int] on empty, so the hot loop runs without
   allocating an option per event; an event legitimately scheduled at
   [max_int] is disambiguated by the emptiness check. *)
let step t =
  let time = Event_queue.next_time t.queue in
  if time = max_int && Event_queue.is_empty t.queue then false
  else begin
    let fn = Event_queue.pop_exn t.queue in
    t.clock <- time;
    t.processed <- t.processed + 1;
    fn ();
    true
  end

let run t = while step t do () done

let run_bounded t ~max_events =
  let budget = ref max_events in
  let continue = ref true in
  let quiesced = ref true in
  while !continue do
    if !budget <= 0 then begin
      continue := false;
      quiesced := Event_queue.is_empty t.queue
    end
    else if step t then decr budget
    else continue := false
  done;
  !quiesced

let run_until t limit =
  let continue = ref true in
  while !continue do
    let time = Event_queue.next_time t.queue in
    if time <= limit then begin
      if not (step t) then begin
        continue := false;
        if t.clock < limit then t.clock <- limit
      end
    end
    else begin
      continue := false;
      if t.clock < limit then t.clock <- limit
    end
  done

let events_processed t = t.processed
