type t = {
  mutable clock : Mv_util.Cycles.t;
  queue : (unit -> unit) Event_queue.t;
  trace : Trace.t;
  mutable processed : int;
}

let create ?trace () =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  { clock = 0; queue = Event_queue.create (); trace; processed = 0 }

let now t = t.clock
let trace t = t.trace

let schedule_at t time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %d is before now %d" time t.clock);
  Event_queue.push t.queue ~time fn

let schedule_after t delay fn = schedule_at t (t.clock + delay) fn

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, fn) ->
      t.clock <- time;
      t.processed <- t.processed + 1;
      fn ();
      true

let run t = while step t do () done

let run_bounded t ~max_events =
  let budget = ref max_events in
  let continue = ref true in
  let quiesced = ref true in
  while !continue do
    if !budget <= 0 then begin
      continue := false;
      quiesced := Event_queue.is_empty t.queue
    end
    else if step t then decr budget
    else continue := false
  done;
  !quiesced

let run_until t limit =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when time <= limit -> ignore (step t)
    | Some _ | None ->
        continue := false;
        if t.clock < limit then t.clock <- limit
  done

let events_processed t = t.processed
