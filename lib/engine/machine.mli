(** The simulated physical platform, bundling the pieces every kernel
    needs: the clock/event loop, the executor, core topology, architectural
    per-core state, physical memory, the cost model, and the trace sink.

    One machine hosts both the ROS and the HRT; the HVM partitions its
    cores and memory between them. *)

type t = {
  sim : Sim.t;
  exec : Exec.t;
  topo : Mv_hw.Topology.t;
  costs : Mv_hw.Costs.t;
  phys : Mv_hw.Phys_mem.t;
  cpus : Mv_hw.Cpu.t array;
  trace : Trace.t;
  obs : Mv_obs.Tracer.t;
      (** the span tracer: causal, typed observability across the
          ROS<->HRT boundary; enable with {!set_tracing} *)
  metrics : Mv_obs.Metrics.t;  (** per-subsystem counters/gauges/latencies *)
  zero_frame : int;  (** the shared all-zeroes frame used for anonymous reads *)
  mutable huge_pages : bool;
      (** large-page memory path: 1G AeroKernel identity maps, transparent
          2M promotion of big anonymous VMAs, range-batched shootdowns *)
  mutable numa_local_alloc : bool;
      (** demand-paged frames come from the faulting core's NUMA zone
          ({!Mv_hw.Phys_mem.alloc_near}) instead of the flat first-fit
          order; off by default (the flat order is part of the golden
          trace) *)
  mutable work_stealing : bool;
      (** whether deterministic work stealing is on; core lending reads
          this to recompute the steal domain when partition membership
          changes *)
}

val create :
  ?costs:Mv_hw.Costs.t ->
  ?sockets:int ->
  ?cores_per_socket:int ->
  ?hrt_cores:int ->
  ?hrt_parts:int list ->
  ?hrt_mem_fraction:float ->
  ?huge_pages:bool ->
  ?work_stealing:bool ->
  ?trace_limit:int ->
  unit ->
  t
(** Build the reference machine: 2 sockets x 4 cores at 2.2 GHz by default,
    with [hrt_cores] (default 1) assigned to HRT partition 1.  [hrt_parts]
    generalizes to N HRT partitions (per-partition core counts, see
    {!Mv_hw.Topology.create}); when present it overrides [hrt_cores].
    [huge_pages] (default [true]) enables the large-page memory path.
    [work_stealing] (default [false]) turns on deterministic work stealing
    among the ROS cores ({!Exec.set_steal_domain}); the default is off,
    which is byte-identical to the pre-stealing scheduler.
    [trace_limit] bounds trace retention to the newest [trace_limit]
    records (see {!Trace.create}'s [limit]); the default keeps full
    history, which the golden trace depends on. *)

val apply_core_params : t -> core:int -> unit
(** Re-derive one core's scheduling parameters (switch cost, preemption
    slice) from its {e current} topology role — run by the lending
    protocol after {!Mv_hw.Topology.reassign} moves the core across the
    ROS/HRT boundary. *)

val refresh_steal_domain : t -> unit
(** Recompute the work-stealing domain from the current ROS core set
    (no-op when stealing is off).  Lending must call this so a lent core
    neither keeps stealing for its old partition nor is stolen from. *)

val charge : t -> int -> unit
(** Charge cycles to the running thread (see {!Exec.charge}). *)

val now : t -> Mv_util.Cycles.t
(** The running thread's local virtual time, or the event time outside
    thread context. *)

val cpu_of_current : t -> Mv_hw.Cpu.t
(** Architectural state of the core the current thread runs on. *)

val alloc_frame : t -> Mv_hw.Phys_mem.region -> int
(** Allocate a physical frame honouring the machine's placement policy:
    with [numa_local_alloc] set (and a current thread), the frame comes
    from the faulting core's zone via {!Mv_hw.Phys_mem.alloc_near};
    otherwise — and always outside thread context — this is exactly
    [Phys_mem.alloc]. *)

val mem_access_cost : t -> core:int -> frame:int -> Mv_util.Cycles.t
(** Extra memory-path cycles for [core] touching [frame]:
    [costs.remote_access] per socket hop between the core's socket and the
    frame's NUMA zone, 0 when local.  Locality-sensitive paths (group frame
    placement, the numa bench) charge this on top of the flat MMU costs. *)

val emit : t -> Trace.payload -> unit
(** Record a typed event at the current virtual time (and mirror it into
    the span tracer when that is enabled). *)

val trace_emit : t -> category:string -> string -> unit
(** Deprecated printf-style shim over {!emit}; prefer typed payloads. *)

val set_tracing : t -> bool -> unit
(** Enable/disable the flat trace and the span tracer together. *)
