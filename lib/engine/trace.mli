(** Lightweight event tracing.

    Components emit categorized records; tests assert on them (e.g. the
    paper's requirement that the page-fault trace of an application under
    Multiverse be identical to its native trace) and debugging dumps them.
    Disabled tracing costs one branch per emit. *)

type record = { at : Mv_util.Cycles.t; category : string; message : string }

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
val enable : t -> bool -> unit
val emit : t -> at:Mv_util.Cycles.t -> category:string -> string -> unit
val records : t -> record list
(** In emission order. *)

val records_in : t -> category:string -> record list
(** In emission order; served from a per-category index maintained on
    emit, so repeated queries don't re-filter the whole trace. *)

val count_in : t -> category:string -> int
(** O(1) count of records in a category. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
