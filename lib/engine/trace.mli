(** Typed event tracing.

    Components emit {e typed} events ({!payload}); the trace renders each
    to a stable categorized record at emit time.  Tests assert on the
    records (e.g. the paper's requirement that the page-fault trace of an
    application under Multiverse be identical to its native trace) and
    debugging dumps them; the record shapes — category names and message
    formats — are a compatibility surface and do not change when new
    payload constructors are added.

    Trace is the flat-record compatibility surface of the observability
    layer; span-shaped data lives in [Mv_obs.Tracer] (see [Machine.obs]),
    to which {!emit_span} forwards.  Disabled tracing costs one branch
    per emit: no rendering, no allocation. *)

type record = { at : Mv_util.Cycles.t; category : string; message : string }

(** One typed event.  [category_of] maps constructors onto the stable
    record categories ("pagefault", "fatal", "fault", "resilience");
    [Message] is the escape hatch carrying a preformatted string. *)
type payload =
  | Page_fault of { pid : int; vma : string option; page_off : int; addr : int; write : bool }
      (** [vma = Some kind] renders the address-layout-independent form
          ["pid=… vma=kind+off w=…"]; [None] falls back to the raw
          address. *)
  | Fatal_signal of { signal : string; pid : int; addr : int }
  | Fault_injected of { site : string; ctx : string }
  | Channel_retry of { attempt : int; backoff : int; kind : string }
  | Channel_exhausted of { retries : int; kind : string }
  | Server_survived of { msg : string }
  | Degrade_sync_to_async
  | Channel_marked_failed
  | Watchdog_respawn of { was : string }
  | Fallback_sync_to_async of { kind : string }
  | Reroute of { kind : string; spurious_errnos : bool }
  | Ride_timeout of { kind : string }
  | Errno_retry of { attempt : int; kind : string }
  | Overload_shed of { kind : string; endpoint : string }
      (** Admission control returned a typed [Overload] reply (category
          "overload"). *)
  | Shed_mode of { on : bool }
      (** The load-shedding watchdog crossed the high-water mark (on) or
          drained below the low-water mark (off). *)
  | Restore_async_to_sync
      (** A shed-mode Sync->Async flip was undone on drain. *)
  | Repartition of { core : int; src : int; dst : int; moved : int }
      (** Core lending moved [core] between partitions, re-homing [moved]
          threads (category "partition"). *)
  | Message of { category : string; text : string }

val category_of : payload -> string

val render : payload -> string
(** The record message a payload emits — exposed so exporters can render
    typed events without an enabled trace. *)

type t

val create : ?enabled:bool -> ?capacity:int -> ?limit:int -> unit -> t
(** [limit] selects bounded retention: keep only the newest [limit]
    records in a preallocated ring (O(1) per emit, zero growth), counting
    evictions in {!dropped}.  [limit = 0] retains nothing — useful with
    an event sink installed to stream records without holding any live.
    Without [limit] (the default) the trace keeps full history, which the
    golden trace and tests depend on; [capacity] is the legacy high-water
    mark above which the oldest half is discarded.  Raises
    [Invalid_argument] on a negative [limit]. *)

val enable : t -> bool -> unit
val enabled : t -> bool

val limit : t -> int option
(** The ring size, or [None] in unbounded mode. *)

val dropped : t -> int
(** Records evicted from the ring (always 0 in unbounded mode). *)

val emit_event : t -> at:Mv_util.Cycles.t -> payload -> unit
(** Record a typed event.  Rendering happens only when enabled. *)

val emit_span :
  t -> name:string -> cat:string -> ts:Mv_util.Cycles.t -> dur:Mv_util.Cycles.t -> unit
(** Forward a completed span to the installed span sink (the machine
    wires this to its [Mv_obs.Tracer]); a no-op when disabled or no sink
    is installed. *)

val emit : t -> at:Mv_util.Cycles.t -> category:string -> string -> unit
(** Deprecated printf-style surface, kept as a thin shim over
    {!emit_event}'s [Message] payload.  New call sites should emit typed
    payloads (or spans via [Machine.obs]). *)

type span_sink =
  name:string -> cat:string -> ts:Mv_util.Cycles.t -> dur:Mv_util.Cycles.t -> unit

val set_span_sink : t -> span_sink option -> unit

val set_event_sink : t -> (record -> unit) option -> unit
(** Observe every recorded event (the machine mirrors them into the span
    tracer as instants so exports interleave records with spans). *)

val records : t -> record list
(** In emission order (oldest first; in ring mode, the retained window).
    The list is memoized until the next emit or {!clear}, so repeated
    calls are O(1). *)

val iter : t -> (record -> unit) -> unit
(** Apply to every retained record in emission order without
    materializing a list (ring mode walks the buffer in place). *)

val records_in : t -> category:string -> record list
(** In emission order; served from a per-category index maintained on
    emit, so repeated queries don't re-filter the whole trace. *)

val count_in : t -> category:string -> int
(** O(1) count of records in a category. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
