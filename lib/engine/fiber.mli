(** One-shot coroutines over OCaml 5 effect handlers.

    A fiber runs ordinary OCaml code until it [suspend]s; the suspension
    captures the continuation and hands the caller a {!resumer} with which
    to continue (or cancel) it later.  The scheduler in {!Exec} builds
    simulated threads out of these.

    The resumer is a bare one-shot cell holding the continuation (not a
    pair of closures): consuming it twice raises
    [Failure "Fiber: resumer used twice"]. *)

exception Cancelled
(** Raised inside a fiber when its resumer is cancelled (e.g. the simulated
    thread is killed). *)

type 'a resumer

val resume : 'a resumer -> 'a -> unit
(** Continue the fiber with a value (once). *)

val cancel : 'a resumer -> exn -> unit
(** Discontinue the fiber with an exception (once). *)

val run : (unit -> unit) -> unit
(** [run body] executes [body] as a fiber in the current stack frame.  It
    returns when the fiber finishes {e or} first suspends.  Uncaught
    exceptions other than {!Cancelled} propagate to whoever called [run] or
    a [resume]. *)

val suspend : ('a resumer -> unit) -> 'a
(** [suspend register] — callable only inside a fiber — captures the
    continuation, passes its resumer to [register], and returns whatever
    value the resumer is eventually fed.  @raise Failure outside a fiber. *)
