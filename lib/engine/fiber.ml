exception Cancelled

(* The resumer holds the captured continuation directly in a mutable slot
   (consumed on first use) instead of wrapping it in resume/cancel closures
   with a shared one-shot guard: a suspension then allocates one two-field
   record plus the [Some], not five closures.  Suspend/resume is the
   innermost host hot path — every simulated block, sleep, and yield goes
   through here. *)
type 'a resumer = { mutable rk : ('a, unit) Effect.Deep.continuation option }

type _ Effect.t += Suspend : ('a resumer -> unit) -> 'a Effect.t

let suspend register = Effect.perform (Suspend register)

let take r =
  match r.rk with
  | None -> failwith "Fiber: resumer used twice"
  | Some k ->
      r.rk <- None;
      k

let resume r v = Effect.Deep.continue (take r) v
let cancel r e = Effect.Deep.discontinue (take r) e

(* One handler for every fiber (no captured state), so [run] allocates
   nothing beyond the effect machinery itself. *)
let handler =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> match e with Cancelled -> () | _ -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
            Some (fun (k : (a, unit) continuation) -> register { rk = Some k })
        | _ -> None);
  }

let run body = Effect.Deep.match_with body () handler
