(** Priority queue of timed events (binary min-heap).

    Ordered by (time, insertion sequence) so simultaneous events fire in
    insertion order, which keeps the whole simulation deterministic.

    The heap is struct-of-arrays — parallel unboxed [int] arrays for
    time/seq plus a payload array — so [push]/[pop] allocate nothing
    (amortized; growth doubles the arrays). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] pre-sizes the time/seq arrays to avoid growth doublings
    when the caller knows the expected concurrent-event high-water mark. *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(time, payload)].  Allocates
    the option and tuple; hot loops should use {!next_time} + {!pop_exn}. *)

val pop_exn : 'a t -> 'a
(** Remove and return the earliest event's payload without allocating.
    @raise Invalid_argument if the queue is empty. *)

val next_time : 'a t -> int
(** Timestamp of the earliest event, or [max_int] when empty — the
    non-allocating {!peek_time}. *)

val peek_time : 'a t -> int option
