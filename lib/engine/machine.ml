type t = {
  sim : Sim.t;
  exec : Exec.t;
  topo : Mv_hw.Topology.t;
  costs : Mv_hw.Costs.t;
  phys : Mv_hw.Phys_mem.t;
  cpus : Mv_hw.Cpu.t array;
  trace : Trace.t;
  obs : Mv_obs.Tracer.t;
  metrics : Mv_obs.Metrics.t;
  zero_frame : int;
  mutable huge_pages : bool;
      (* Large-page support: 1G identity maps in the AeroKernel, transparent
         2M promotion of big anonymous VMAs in the ROS, range-batched
         shootdowns.  On by default; the mempath bench A/Bs it. *)
  mutable numa_local_alloc : bool;
      (* Demand-paged frames come from the faulting core's NUMA zone
         (falling back by distance) instead of the flat first-fit order.
         Off by default — the flat order is part of the golden trace. *)
  mutable work_stealing : bool;
      (* Whether deterministic work stealing is on; remembered so core
         lending can recompute the steal domain when the ROS core set
         changes. *)
}

let create ?(costs = Mv_hw.Costs.default) ?(sockets = 2) ?(cores_per_socket = 4)
    ?(hrt_cores = 1) ?hrt_parts ?(hrt_mem_fraction = 0.25) ?(huge_pages = true)
    ?(work_stealing = false) ?trace_limit () =
  (* [trace_limit] selects the trace's bounded ring mode; the default
     (unbounded, full history) is what the golden trace asserts on. *)
  let sim =
    Sim.create ?trace:(Option.map (fun n -> Trace.create ~limit:n ()) trace_limit) ()
  in
  let topo = Mv_hw.Topology.create ~sockets ~cores_per_socket ?hrt_parts ~hrt_cores () in
  let ncores = Mv_hw.Topology.ncores topo in
  let exec = Exec.create sim ~ncpus:ncores in
  if work_stealing then
    (* Stealing stays inside the ROS partition: HRT cores are cooperative
       and their pinning is part of the partition contract. *)
    Exec.set_steal_domain exec (Some (Mv_hw.Topology.ros_cores topo));
  let phys =
    Mv_hw.Phys_mem.create ~sockets ~cores_per_socket
      ~hrt_fraction:hrt_mem_fraction ()
  in
  let cpus = Array.init ncores (fun core_id -> Mv_hw.Cpu.create ~core_id) in
  (* ROS cores run a preemptive scheduler; HRT cores are cooperative and
     switch threads at AeroKernel cost. *)
  Array.iteri
    (fun i _ ->
      match Mv_hw.Topology.role topo i with
      | Mv_hw.Topology.Ros_core ->
          Exec.set_cpu_params exec ~cpu:i ~switch_cost:costs.context_switch_ros
            ~slice:(Some costs.timeslice_ros) ()
      | Mv_hw.Topology.Hrt_core ->
          Exec.set_cpu_params exec ~cpu:i ~switch_cost:costs.context_switch_nk
            ~slice:None ())
    cpus;
  let zero_frame = Mv_hw.Phys_mem.alloc phys Mv_hw.Phys_mem.Ros_region in
  (* The span tracer shares the executor's virtual clock; tracks are
     thread ids (-1 outside thread context, e.g. event callbacks). *)
  let obs =
    Mv_obs.Tracer.create
      ~now:(fun () -> Exec.local_now exec)
      ~track:(fun () -> match Exec.self_opt exec with Some th -> Exec.tid th | None -> -1)
      ~track_name:(fun () ->
        match Exec.self_opt exec with Some th -> Exec.name th | None -> "sim")
      ()
  in
  let trace = Sim.trace sim in
  (* Flat records mirror into the span tracer as instant events, and
     Trace.emit_span lands in the tracer, so one export interleaves
     both surfaces. *)
  Trace.set_event_sink trace
    (Some
       (fun r ->
         if Mv_obs.Tracer.enabled obs then
           Mv_obs.Tracer.instant obs ~cat:r.Trace.category ~detail:r.Trace.message
             ~name:r.Trace.category ()));
  Trace.set_span_sink trace
    (Some
       (fun ~name ~cat ~ts ~dur ->
         ignore (Mv_obs.Tracer.complete obs ~name ~cat ~ts ~dur ())));
  {
    sim;
    exec;
    topo;
    costs;
    phys;
    cpus;
    trace;
    obs;
    metrics = Mv_obs.Metrics.create ();
    zero_frame;
    huge_pages;
    numa_local_alloc = false;
    work_stealing;
  }

let charge t c = Exec.charge t.exec c
let now t = Exec.local_now t.exec

let apply_core_params t ~core =
  (* Re-derive one core's scheduling parameters from its current role —
     the same assignment [create] makes, re-run after lending moves the
     core across the ROS/HRT boundary. *)
  match Mv_hw.Topology.role t.topo core with
  | Mv_hw.Topology.Ros_core ->
      Exec.set_cpu_params t.exec ~cpu:core ~switch_cost:t.costs.context_switch_ros
        ~slice:(Some t.costs.timeslice_ros) ()
  | Mv_hw.Topology.Hrt_core ->
      Exec.set_cpu_params t.exec ~cpu:core ~switch_cost:t.costs.context_switch_nk
        ~slice:None ()

let refresh_steal_domain t =
  if t.work_stealing then
    Exec.set_steal_domain t.exec (Some (Mv_hw.Topology.ros_cores t.topo))

let mem_access_cost t ~core ~frame =
  let d =
    Mv_hw.Topology.socket_distance t.topo
      (Mv_hw.Topology.socket_of t.topo core)
      (Mv_hw.Phys_mem.zone_of_frame t.phys frame)
  in
  Mv_hw.Costs.remote_access_cost t.costs ~distance:d

let alloc_frame t region =
  if t.numa_local_alloc then
    match Exec.self_opt t.exec with
    | Some th -> Mv_hw.Phys_mem.alloc_near t.phys ~core:(Exec.cpu_of th) region
    | None -> Mv_hw.Phys_mem.alloc t.phys region
  else Mv_hw.Phys_mem.alloc t.phys region

let cpu_of_current t =
  let th = Exec.self t.exec in
  t.cpus.(Exec.cpu_of th)

let emit t payload = Trace.emit_event t.trace ~at:(now t) payload
let trace_emit t ~category msg = Trace.emit t.trace ~at:(now t) ~category msg

let set_tracing t flag =
  Trace.enable t.trace flag;
  Mv_obs.Tracer.set_enabled t.obs flag
