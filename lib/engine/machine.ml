type t = {
  sim : Sim.t;
  exec : Exec.t;
  topo : Mv_hw.Topology.t;
  costs : Mv_hw.Costs.t;
  phys : Mv_hw.Phys_mem.t;
  cpus : Mv_hw.Cpu.t array;
  trace : Trace.t;
  zero_frame : int;
  mutable huge_pages : bool;
      (* Large-page support: 1G identity maps in the AeroKernel, transparent
         2M promotion of big anonymous VMAs in the ROS, range-batched
         shootdowns.  On by default; the mempath bench A/Bs it. *)
}

let create ?(costs = Mv_hw.Costs.default) ?(sockets = 2) ?(cores_per_socket = 4)
    ?(hrt_cores = 1) ?(hrt_mem_fraction = 0.25) ?(huge_pages = true) () =
  let sim = Sim.create () in
  let topo = Mv_hw.Topology.create ~sockets ~cores_per_socket ~hrt_cores () in
  let ncores = Mv_hw.Topology.ncores topo in
  let exec = Exec.create sim ~ncpus:ncores in
  let phys = Mv_hw.Phys_mem.create ~sockets ~hrt_fraction:hrt_mem_fraction () in
  let cpus = Array.init ncores (fun core_id -> Mv_hw.Cpu.create ~core_id) in
  (* ROS cores run a preemptive scheduler; HRT cores are cooperative and
     switch threads at AeroKernel cost. *)
  Array.iteri
    (fun i _ ->
      match Mv_hw.Topology.role topo i with
      | Mv_hw.Topology.Ros_core ->
          Exec.set_cpu_params exec ~cpu:i ~switch_cost:costs.context_switch_ros
            ~slice:(Some costs.timeslice_ros) ()
      | Mv_hw.Topology.Hrt_core ->
          Exec.set_cpu_params exec ~cpu:i ~switch_cost:costs.context_switch_nk
            ~slice:None ())
    cpus;
  let zero_frame = Mv_hw.Phys_mem.alloc phys Mv_hw.Phys_mem.Ros_region in
  { sim; exec; topo; costs; phys; cpus; trace = Sim.trace sim; zero_frame; huge_pages }

let charge t c = Exec.charge t.exec c
let now t = Exec.local_now t.exec

let cpu_of_current t =
  let th = Exec.self t.exec in
  t.cpus.(Exec.cpu_of th)

let trace_emit t ~category msg = Trace.emit t.trace ~at:(now t) ~category msg
