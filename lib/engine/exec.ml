type thread_state = Ready | Running | Blocked of string | Finished

type thread = {
  t_id : int;
  t_name : string;
  mutable t_cpu : int;  (* home cpu; work stealing may migrate it *)
  mutable t_state : thread_state;
  mutable t_seg_start : int;
  mutable t_charge : int;
  mutable t_slice_base : int;  (* charge level at last slice reset *)
  mutable t_block_end : int;  (* local time at which the last segment ended *)
  mutable t_total : int;
  mutable t_vcsw : int;
  mutable t_ivcsw : int;
  mutable t_resume : (unit -> unit) option;
      (* initial-segment body, set once by [spawn]; woken blocks resume
         through [t_resumer] instead *)
  mutable t_resumer : Obj.t;
      (* the pending ['a Fiber.resumer] while blocked or woken-and-queued;
         [no_resumer] otherwise.  Stored untyped so the record is not
         parameterized by the block's wake type — values are uniformly
         represented, and [t_wake_v] is always the matching ['a]. *)
  mutable t_wake_v : Obj.t;  (* value to resume [t_resumer] with *)
  mutable t_can_cancel : bool;
      (* the registration is still outstanding (kill must discontinue);
         cleared by wake and by resume *)
  mutable t_wake_fn : Obj.t -> unit;
      (* per-thread wake callback shared by every [block], so waking
         allocates nothing; filled in lazily (captures the executor) *)
  mutable t_on_exit : (unit -> unit) list;
  mutable t_exit_time : int;  (* virtual time of termination, once Finished *)
  mutable t_enqueue_fn : unit -> unit;
      (* the wake-enqueue event callback, allocated once per thread rather
         than per wake; filled in lazily (captures the executor) *)
  mutable t_some : thread option;
      (* cached [Some th] so entering a segment does not box [t.current] *)
}

(* Per-cpu run queue: a growable circular buffer instead of [Queue.t], so
   an enqueue is an array store (no cons cell per element) and a dequeue
   returns the thread directly (no [Some] box).  Popped slots keep a stale
   reference — harmless, every thread is retained in [all_threads_rev]
   for its whole lifetime anyway. *)
module Runq = struct
  type t = {
    mutable buf : thread array;  (* length 0 until the first push *)
    mutable head : int;
    mutable len : int;
  }

  let create () = { buf = [||]; head = 0; len = 0 }
  let is_empty q = q.len = 0

  let grow q fill =
    let cap = Array.length q.buf in
    if q.len >= cap then begin
      let ncap = max 16 (cap * 2) in
      let nb = Array.make ncap fill in
      for i = 0 to q.len - 1 do
        nb.(i) <- q.buf.((q.head + i) mod cap)
      done;
      q.buf <- nb;
      q.head <- 0
    end

  let push q th =
    grow q th;
    q.buf.((q.head + q.len) mod Array.length q.buf) <- th;
    q.len <- q.len + 1

  let pop_exn q =
    if q.len = 0 then invalid_arg "Exec.Runq.pop_exn: empty";
    let th = q.buf.(q.head) in
    q.head <- (q.head + 1) mod Array.length q.buf;
    q.len <- q.len - 1;
    th

  let clear q =
    q.head <- 0;
    q.len <- 0

  (* Front-to-back. *)
  let iter f q =
    let cap = Array.length q.buf in
    for i = 0 to q.len - 1 do
      f q.buf.((q.head + i) mod cap)
    done

  let fold f acc q =
    let acc = ref acc in
    iter (fun th -> acc := f !acc th) q;
    !acc

  (* Allocation-free (the loop refs do not escape, so they compile to
     mutable locals) — this runs on every idle-core steal probe. *)
  let has_ready q =
    let cap = Array.length q.buf in
    let found = ref false in
    for i = 0 to q.len - 1 do
      if (not !found) && q.buf.((q.head + i) mod cap).t_state = Ready then
        found := true
    done;
    !found
end

type cpu = {
  c_id : int;
  mutable c_busy_until : int;
  c_runq : Runq.t;
  mutable c_last_tid : int;
  mutable c_switch_cost : int;
  mutable c_slice : int option;
  mutable c_dispatch_armed_at : int;
      (* earliest pending dispatch event for this cpu, -1 = none.  With
         thousands of Ready threads queued on one core, every segment end
         would otherwise wake the whole herd of stale dispatch events and
         each would reschedule itself at the new busy_until — O(n^2) event
         churn.  One armed event per cpu is always sufficient: dispatch is
         state-driven and re-arms itself while the core is busy. *)
  mutable c_switches : int;
  mutable c_steals : int;  (* successful steals performed by this cpu *)
  mutable c_idle_expiries : int;
      (* timer expiries with an empty run queue; every Nth models a
         preemption by unrelated background work, as /usr/bin/time would
         report on a real (non-idle) machine *)
  mutable c_dispatch_fn : unit -> unit;
      (* the dispatch event callback, allocated once at [create] rather
         than per [request_dispatch]; filled in after [t] exists *)
}

(* Sentinel for [c_dispatch_fn] before its first arm; a single module-level
   closure so the install check can be physical equality ([ignore] itself
   is an external and eta-expands to a fresh closure per use site). *)
let dispatch_fn_unset () = ()

(* Same trick for the per-thread wake callback. *)
let wake_fn_unset (_ : Obj.t) = ()

(* [t_resumer] when no registration is pending: an immediate, so the
   presence check is a pointer-vs-int comparison. *)
let no_resumer : Obj.t = Obj.repr 0

type sched_hook = {
  sh_pick : cpu:int -> thread array -> int;
  sh_preempt : cpu:int -> thread -> bool;
  sh_steal : cpu:int -> victims:int array -> int;
}

(* Sentinel for "no timestamp override" — [ctx_now] is a plain [int] so
   entering a callback window stores an unboxed value instead of a [Some]. *)
let no_ctx_now = min_int

type t = {
  sim : Sim.t;
  cpus : cpu array;
  mutable current : thread option;
  mutable ctx_now : int;  (* timestamp override for callback windows; [no_ctx_now] = none *)
  mutable next_tid : int;
  mutable charge_hook : (thread -> int -> unit) option;
  mutable sched_hook : sched_hook option;
  mutable steal_domain : bool array option;
      (* per-cpu membership in the work-stealing domain, [None] = stealing
         off (the default).  Only cores inside the domain steal, and only
         from each other — the ROS never drains an HRT core's queue. *)
  mutable all_threads_rev : thread list;  (* every thread ever spawned *)
}

let create sim ~ncpus =
  let cpus =
    Array.init ncpus (fun i ->
        {
          c_id = i;
          c_busy_until = 0;
          c_runq = Runq.create ();
          c_last_tid = -1;
          c_switch_cost = 0;
          c_slice = None;
          c_dispatch_armed_at = -1;
          c_switches = 0;
          c_steals = 0;
          c_idle_expiries = 0;
          c_dispatch_fn = dispatch_fn_unset;
        })
  in
  {
    sim;
    cpus;
    current = None;
    ctx_now = no_ctx_now;
    next_tid = 0;
    charge_hook = None;
    sched_hook = None;
    steal_domain = None;
    all_threads_rev = [];
  }

let sim t = t.sim
let ncpus t = Array.length t.cpus
let set_sched_hook t hook = t.sched_hook <- hook
let threads t = List.rev t.all_threads_rev

let set_steal_domain t cores =
  match cores with
  | None -> t.steal_domain <- None
  | Some cores ->
      let dom = Array.make (Array.length t.cpus) false in
      List.iter
        (fun c ->
          if c < 0 || c >= Array.length t.cpus then
            invalid_arg "Exec.set_steal_domain: core out of range";
          dom.(c) <- true)
        cores;
      t.steal_domain <- Some dom

let steals t ~cpu = t.cpus.(cpu).c_steals

let runq t ~cpu =
  List.rev (Runq.fold (fun acc th -> th :: acc) [] t.cpus.(cpu).c_runq)

let set_cpu_params t ~cpu ?switch_cost ?slice () =
  let c = t.cpus.(cpu) in
  (match switch_cost with Some sc -> c.c_switch_cost <- sc | None -> ());
  match slice with Some s -> c.c_slice <- s | None -> ()

let local_now t =
  match t.current with
  | Some th -> th.t_seg_start + th.t_charge
  | None -> if t.ctx_now <> no_ctx_now then t.ctx_now else Sim.now t.sim

let with_ctx_now t now f =
  let saved = t.ctx_now in
  t.ctx_now <- now;
  match f () with
  | v ->
      t.ctx_now <- saved;
      v
  | exception e ->
      t.ctx_now <- saved;
      raise e

(* --- dispatch --- *)

(* Fast pre-check for [try_steal]: an idle core probes on every dispatch,
   so discovering "no domain peer has ready work" must not allocate. *)
let steal_candidates_exist t cpu dom =
  let found = ref false in
  for i = 0 to Array.length t.cpus - 1 do
    if not !found then begin
      let c = t.cpus.(i) in
      if c.c_id <> cpu.c_id && dom.(c.c_id) && Runq.has_ready c.c_runq then
        found := true
    end
  done;
  !found

let rec dispatch t cpu () =
  if t.current = None then begin
    (* An idle core (free, nothing queued) inside the steal domain pulls
       work from a loaded peer before giving up the dispatch. *)
    if
      Runq.is_empty cpu.c_runq
      && t.steal_domain <> None
      && Sim.now t.sim >= cpu.c_busy_until
    then try_steal t cpu;
    if not (Runq.is_empty cpu.c_runq) then run_one t cpu
  end

and run_one t cpu =
  begin
    let now = Sim.now t.sim in
    if now < cpu.c_busy_until then
      request_dispatch t cpu ~at:cpu.c_busy_until
    else
      match t.sched_hook with
      | None ->
          if not (Runq.is_empty cpu.c_runq) then begin
            let th = Runq.pop_exn cpu.c_runq in
            if th.t_state <> Ready then dispatch t cpu () else run_segment t cpu th
          end
      | Some hook -> (
          (* Schedule-exploration choice point: collect the Ready threads
             in FIFO order (dropping stale entries), let the hook pick one,
             and re-queue the rest in their original order.  A hook that
             always picks index 0 reproduces the FIFO path exactly. *)
          let cands =
            List.rev
              (Runq.fold
                 (fun acc th -> if th.t_state = Ready then th :: acc else acc)
                 [] cpu.c_runq)
          in
          Runq.clear cpu.c_runq;
          match cands with
          | [] -> ()
          | [ th ] -> run_segment t cpu th
          | cands ->
              let arr = Array.of_list cands in
              let i = hook.sh_pick ~cpu:cpu.c_id arr in
              let i = if i < 0 || i >= Array.length arr then 0 else i in
              Array.iteri (fun j th -> if j <> i then Runq.push cpu.c_runq th) arr;
              run_segment t cpu arr.(i))
  end

(* Deterministic work stealing.  The thief considers every other domain
   core in ascending id order; the default victim is the one with the most
   Ready threads (ties to the lowest core id).  A sched hook may divert the
   choice to any candidate victim — that is the interleaving mvcheck
   explores — but the candidate list itself is a pure function of the
   queues.  The steal takes the oldest ceil(n/2) Ready threads ("steal
   half"), preserving relative FIFO order on both queues. *)
and try_steal t cpu =
  match t.steal_domain with
  | None -> ()
  | Some dom when not dom.(cpu.c_id) -> ()
  | Some dom when not (steal_candidates_exist t cpu dom) -> ()
  | Some dom -> (
      let ready_count c =
        Runq.fold (fun n th -> if th.t_state = Ready then n + 1 else n) 0 c.c_runq
      in
      let cands = ref [] in
      Array.iter
        (fun c ->
          if c.c_id <> cpu.c_id && dom.(c.c_id) then
            let n = ready_count c in
            if n > 0 then cands := (c, n) :: !cands)
        t.cpus;
      let cands =
        List.stable_sort
          (fun (a, na) (b, nb) -> compare (-na, a.c_id) (-nb, b.c_id))
          (List.rev !cands)
      in
      match cands with
      | [] -> ()
      | cands ->
          let arr = Array.of_list cands in
          let pick =
            match t.sched_hook with
            | Some hook when Array.length arr > 1 ->
                let victims = Array.map (fun (c, _) -> c.c_id) arr in
                let i = hook.sh_steal ~cpu:cpu.c_id ~victims in
                if i < 0 || i >= Array.length arr then 0 else i
            | _ -> 0
          in
          let victim, nready = arr.(pick) in
          let want = (nready + 1) / 2 in
          let all = List.rev (Runq.fold (fun acc th -> th :: acc) [] victim.c_runq) in
          Runq.clear victim.c_runq;
          let taken = ref 0 in
          List.iter
            (fun th ->
              if th.t_state = Ready && !taken < want then begin
                incr taken;
                th.t_cpu <- cpu.c_id;
                Runq.push cpu.c_runq th
              end
              else Runq.push victim.c_runq th)
            all;
          cpu.c_steals <- cpu.c_steals + 1)

(* New work appeared on [owner]'s queue: give every other free domain core
   a chance to steal it (the owner's own dispatch is requested first, so a
   free owner still wins its local work). *)
and poke_thieves t ~owner ~at =
  match t.steal_domain with
  | None -> ()
  | Some dom ->
      if dom.(owner.c_id) then
        Array.iter
          (fun c ->
            if c.c_id <> owner.c_id && dom.(c.c_id) then request_dispatch t c ~at)
          t.cpus

and request_dispatch t cpu ~at =
  let at = max at (max cpu.c_busy_until (Sim.now t.sim)) in
  if cpu.c_dispatch_armed_at < 0 || at < cpu.c_dispatch_armed_at then begin
    cpu.c_dispatch_armed_at <- at;
    (* The callback is shared across arms (allocated on the cpu record the
       first time through), so arming costs no closure.  A dispatch event
       fires exactly at its scheduled time, so [Sim.now = at-of-this-arm]
       replaces the captured [at] in the stale-event disarm check. *)
    if cpu.c_dispatch_fn == dispatch_fn_unset then
      cpu.c_dispatch_fn <-
        (fun () ->
          if cpu.c_dispatch_armed_at = Sim.now t.sim then cpu.c_dispatch_armed_at <- -1;
          dispatch t cpu ());
    Sim.schedule_at t.sim at cpu.c_dispatch_fn
  end

and run_segment t cpu th =
  let switch =
    if cpu.c_last_tid <> th.t_id && cpu.c_last_tid >= 0 then begin
      cpu.c_switches <- cpu.c_switches + 1;
      cpu.c_switch_cost
    end
    else 0
  in
  cpu.c_last_tid <- th.t_id;
  th.t_state <- Running;
  th.t_seg_start <- max (Sim.now t.sim) cpu.c_busy_until + switch;
  th.t_charge <- 0;
  th.t_slice_base <- 0;
  t.current <- th.t_some;
  (if th.t_resumer != no_resumer then begin
     let r : Obj.t Fiber.resumer = Obj.obj th.t_resumer in
     let v = th.t_wake_v in
     th.t_resumer <- no_resumer;
     th.t_wake_v <- no_resumer;
     th.t_can_cancel <- false;
     Fiber.resume r v
   end
   else
     match th.t_resume with
     | Some k ->
         th.t_resume <- None;
         k ()
     | None -> failwith "Exec: dispatching thread with no continuation");
  (* The fiber has host-returned: it blocked, yielded, or finished; the
     per-case bookkeeping already ran inside the fiber. *)
  assert (t.current = None)

(* Finalize the current segment; returns the thread (its end time is
   [t_block_end] — no tuple, this is a per-segment path). *)
and end_segment t =
  match t.current with
  | None -> failwith "Exec: no running thread"
  | Some th ->
      let cpu = t.cpus.(th.t_cpu) in
      let t_end = th.t_seg_start + th.t_charge in
      th.t_total <- th.t_total + th.t_charge;
      th.t_block_end <- t_end;
      cpu.c_busy_until <- t_end;
      t.current <- None;
      request_dispatch t cpu ~at:t_end;
      th

and make_runnable t th ~at =
  match th.t_state with
  | Finished -> ()
  | Running | Ready -> failwith "Exec: waking a thread that is not blocked"
  | Blocked _ ->
      th.t_state <- Ready;
      enqueue_at t th ~at:(max at th.t_block_end)

(* The run queue must only ever hold threads that are eligible to run {e at
   the current virtual time}; otherwise a dispatch event scheduled for an
   earlier time could start a thread before its wake time.  So the enqueue
   itself is a timed event. *)
and enqueue_at t th ~at =
  let at = max at (Sim.now t.sim) in
  (* Shared across wakes: the event fires exactly at its scheduled time,
     so [Sim.now] stands in for the captured [at]. *)
  if th.t_enqueue_fn == dispatch_fn_unset then
    th.t_enqueue_fn <-
      (fun () ->
        if th.t_state = Ready then begin
          let at = Sim.now t.sim in
          let cpu = t.cpus.(th.t_cpu) in
          Runq.push cpu.c_runq th;
          request_dispatch t cpu ~at;
          poke_thieves t ~owner:cpu ~at
        end);
  Sim.schedule_at t.sim at th.t_enqueue_fn

let self t =
  match t.current with
  | Some th -> th
  | None -> failwith "Exec.self: no thread context"

let self_opt t = t.current

let block (type a) t ~reason (register : now:int -> wake:(a -> unit) -> unit) :
    a =
  let th = self t in
  th.t_vcsw <- th.t_vcsw + 1;
  th.t_state <- Blocked reason;
  let t_end = (end_segment t).t_block_end in
  Fiber.suspend (fun (resumer : a Fiber.resumer) ->
      th.t_resumer <- Obj.repr resumer;
      th.t_can_cancel <- true;
      if th.t_wake_fn == wake_fn_unset then
        th.t_wake_fn <-
          (fun v ->
            if th.t_state <> Finished then begin
              th.t_can_cancel <- false;
              th.t_wake_v <- v;
              make_runnable t th ~at:(local_now t)
            end);
      (* The wake function is shared across this thread's blocks (monomorphic
         at [Obj.t] — values are uniformly represented), so a block allocates
         no wake closure, no resume thunk, and no cancel thunk.  The usual
         contract stands: wake only while this block is outstanding, at most
         once effectively (callers guard with one-shot refs). *)
      let wake : a -> unit = Obj.magic th.t_wake_fn in
      with_ctx_now t t_end (fun () -> register ~now:t_end ~wake))

(* Shared state cell for the yield path — [Blocked "yield"] would box a
   fresh variant per yield. *)
let blocked_yield = Blocked "yield"

let requeue_self t =
  let th = self t in
  th.t_state <- blocked_yield;
  let t_end = (end_segment t).t_block_end in
  Fiber.suspend (fun (resumer : unit Fiber.resumer) ->
      th.t_resumer <- Obj.repr resumer;
      th.t_wake_v <- Obj.repr ();
      th.t_can_cancel <- true;
      th.t_state <- Ready;
      let cpu = t.cpus.(th.t_cpu) in
      Runq.push cpu.c_runq th;
      request_dispatch t cpu ~at:t_end;
      poke_thieves t ~owner:cpu ~at:t_end)

let yield t =
  let th = self t in
  th.t_vcsw <- th.t_vcsw + 1;
  requeue_self t

let preempt t =
  let th = self t in
  th.t_ivcsw <- th.t_ivcsw + 1;
  requeue_self t

let set_charge_hook t hook = t.charge_hook <- Some hook

let charge t c =
  match t.current with
  | None -> failwith "Exec.charge: no thread context"
  | Some th -> (
      th.t_charge <- th.t_charge + c;
      (match t.charge_hook with Some hook -> hook th c | None -> ());
      let cpu = t.cpus.(th.t_cpu) in
      match cpu.c_slice with
      | Some slice when th.t_charge - th.t_slice_base >= slice ->
          if Runq.is_empty cpu.c_runq then begin
            (* Timer fires but no local competitor: usually keep going,
               but every 8th expiry a background task (kernel thread,
               daemon) briefly takes the core. *)
            th.t_slice_base <- th.t_charge;
            cpu.c_idle_expiries <- cpu.c_idle_expiries + 1;
            if cpu.c_idle_expiries land 7 = 0 then begin
              th.t_ivcsw <- th.t_ivcsw + 1;
              cpu.c_switches <- cpu.c_switches + 1;
              th.t_charge <- th.t_charge + (2 * cpu.c_switch_cost)
            end
          end
          else begin
            (* Preemption-point choice: a hook may extend the slice instead
               of preempting (modelling timer jitter); default is preempt. *)
            match t.sched_hook with
            | Some hook when not (hook.sh_preempt ~cpu:cpu.c_id th) ->
                th.t_slice_base <- th.t_charge
            | Some _ | None -> preempt t
          end
      | Some _ | None -> ())

let sleep t delay =
  block t ~reason:"sleep" (fun ~now ~wake ->
      Sim.schedule_at t.sim (now + delay) wake)

let spawn t ~cpu ~name body =
  let id = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  let th =
    {
      t_id = id;
      t_name = name;
      t_cpu = cpu;
      t_state = Blocked "spawn";
      t_seg_start = 0;
      t_charge = 0;
      t_slice_base = 0;
      t_block_end = local_now t;
      t_total = 0;
      t_vcsw = 0;
      t_ivcsw = 0;
      t_resume = None;
      t_resumer = no_resumer;
      t_wake_v = no_resumer;
      t_can_cancel = false;
      t_wake_fn = wake_fn_unset;
      t_on_exit = [];
      t_exit_time = 0;
      t_enqueue_fn = dispatch_fn_unset;
      t_some = None;
    }
  in
  th.t_some <- Some th;
  let finish () =
    let th = end_segment t in
    let t_end = th.t_block_end in
    th.t_state <- Finished;
    th.t_exit_time <- t_end;
    let callbacks = List.rev th.t_on_exit in
    th.t_on_exit <- [];
    with_ctx_now t t_end (fun () -> List.iter (fun f -> f ()) callbacks)
  in
  th.t_resume <-
    Some
      (fun () ->
        Fiber.run (fun () ->
            match body () with
            | () -> finish ()
            | exception Fiber.Cancelled ->
                (* Killed: {!kill} already did the bookkeeping, and the
                   current segment belongs to the killer — do not touch it. *)
                ()));
  th.t_state <- Ready;
  t.all_threads_rev <- th :: t.all_threads_rev;
  enqueue_at t th ~at:(local_now t);
  th

let kill t th =
  match th.t_state with
  | Finished -> ()
  | Running -> invalid_arg "Exec.kill: cannot kill the running thread"
  | Ready | Blocked _ ->
      th.t_state <- Finished;
      th.t_exit_time <- local_now t;
      let callbacks = List.rev th.t_on_exit in
      th.t_on_exit <- [];
      (* Discontinue only a still-outstanding registration; a woken thread
         waiting in the run queue just has its pending resume dropped (the
         killer's segment must not run the victim's finalizers twice). *)
      let resumer = th.t_resumer in
      let cancelable = th.t_can_cancel in
      th.t_resumer <- no_resumer;
      th.t_wake_v <- no_resumer;
      th.t_can_cancel <- false;
      th.t_resume <- None;
      with_ctx_now t th.t_exit_time (fun () ->
          (if cancelable && resumer != no_resumer then
             Fiber.cancel (Obj.obj resumer : Obj.t Fiber.resumer) Fiber.Cancelled);
          List.iter (fun f -> f ()) callbacks)

(* Core lending support: evacuate one cpu's scheduling state onto another.
   Queued entries move in FIFO order, appended after [dst]'s own queue;
   every live thread homed on [cpu] is retargeted, which also re-homes
   pending wake-enqueue events ([t_enqueue_fn] reads [t.cpus.(th.t_cpu)]
   at fire time) so a wakeup issued before the move still lands — on the
   new home — with nothing lost.  The vacated core's last-thread affinity
   is fenced; its stale armed dispatch event, if any, fires into an empty
   queue and is harmless (dispatch is state-driven). *)
let rehome t ~cpu ~dst =
  if cpu = dst then 0
  else begin
    (match t.current with
    | Some th when th.t_cpu = cpu ->
        invalid_arg "Exec.rehome: cannot evacuate the running thread's core"
    | Some _ | None -> ());
    let src = t.cpus.(cpu) in
    let d = t.cpus.(dst) in
    let had_work = not (Runq.is_empty src.c_runq) in
    Runq.iter (fun th -> Runq.push d.c_runq th) src.c_runq;
    Runq.clear src.c_runq;
    let moved = ref 0 in
    List.iter
      (fun th ->
        if th.t_cpu = cpu && th.t_state <> Finished then begin
          th.t_cpu <- dst;
          incr moved
        end)
      t.all_threads_rev;
    src.c_last_tid <- -1;
    if had_work then begin
      let at = Sim.now t.sim in
      request_dispatch t d ~at;
      poke_thieves t ~owner:d ~at
    end;
    !moved
  end

let state _t th = th.t_state
let name th = th.t_name
let tid th = th.t_id
let cpu_of th = th.t_cpu

let on_exit t th fn =
  match th.t_state with
  | Finished ->
      (* The target may have host-executed ahead of the caller's virtual
         time; fire no earlier than its recorded exit time. *)
      let at = max (local_now t) th.t_exit_time in
      Sim.schedule_at t.sim (max at (Sim.now t.sim)) fn
  | Ready | Running | Blocked _ -> th.t_on_exit <- fn :: th.t_on_exit

let join t target =
  match target.t_state with
  | Finished when target.t_exit_time <= local_now t -> ()
  | Finished ->
      (* Finished in host order but, virtually, later than now: wait. *)
      block t ~reason:("join " ^ target.t_name) (fun ~now:_ ~wake ->
          Sim.schedule_at t.sim (max target.t_exit_time (Sim.now t.sim)) (fun () ->
              wake ()))
  | Ready | Running | Blocked _ ->
      block t ~reason:("join " ^ target.t_name) (fun ~now:_ ~wake ->
          target.t_on_exit <- (fun () -> wake ()) :: target.t_on_exit)

let after t delay fn = Sim.schedule_at t.sim (local_now t + delay) fn

let cpu_time th = th.t_total
let voluntary_switches th = th.t_vcsw
let involuntary_switches th = th.t_ivcsw
let cpu_switches t ~cpu = t.cpus.(cpu).c_switches
