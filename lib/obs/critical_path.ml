type row = {
  r_kind : string;
  r_count : int;
  r_total : int;
  r_guest : int;
  r_transport : int;
  r_service : int;
  r_reply : int;
}

type report = { rows : row list; total : int; attributed : int }

let compute spans =
  (* Segment children grouped under their crossing parent. *)
  let segs = Hashtbl.create 256 in
  List.iter
    (fun (sp : Tracer.span) ->
      match sp.Tracer.sp_cat with
      | "transport" | "service" | "reply" ->
          let t, s, r =
            Option.value (Hashtbl.find_opt segs sp.Tracer.sp_parent) ~default:(0, 0, 0)
          in
          let d = sp.Tracer.sp_dur in
          Hashtbl.replace segs sp.Tracer.sp_parent
            (match sp.Tracer.sp_cat with
            | "transport" -> (t + d, s, r)
            | "service" -> (t, s + d, r)
            | _ -> (t, s, r + d))
      | _ -> ())
    spans;
  let rows = Hashtbl.create 16 in
  let total = ref 0 and attributed = ref 0 in
  List.iter
    (fun (sp : Tracer.span) ->
      if sp.Tracer.sp_cat = "crossing" then begin
        let t, s, r = Option.value (Hashtbl.find_opt segs sp.Tracer.sp_id) ~default:(0, 0, 0) in
        let dur = sp.Tracer.sp_dur in
        (* Segments are measured on the servicing side; clamp to the
           crossing's own extent so retries/degraded paths cannot
           attribute more than 100%. *)
        let covered = min dur (t + s + r) in
        let guest = dur - covered in
        total := !total + dur;
        attributed := !attributed + covered + guest;
        let row =
          match Hashtbl.find_opt rows sp.Tracer.sp_name with
          | Some row -> row
          | None ->
              let row =
                ref
                  {
                    r_kind = sp.Tracer.sp_name;
                    r_count = 0;
                    r_total = 0;
                    r_guest = 0;
                    r_transport = 0;
                    r_service = 0;
                    r_reply = 0;
                  }
              in
              Hashtbl.replace rows sp.Tracer.sp_name row;
              row
        in
        row :=
          {
            !row with
            r_count = !row.r_count + 1;
            r_total = !row.r_total + dur;
            r_guest = !row.r_guest + guest;
            r_transport = !row.r_transport + t;
            r_service = !row.r_service + s;
            r_reply = !row.r_reply + r;
          }
      end)
    spans;
  let rows =
    Hashtbl.fold (fun _ row acc -> !row :: acc) rows []
    |> List.sort (fun a b ->
           if a.r_total <> b.r_total then compare b.r_total a.r_total
           else compare a.r_kind b.r_kind)
  in
  { rows; total = !total; attributed = !attributed }

let attributed_fraction report =
  if report.total = 0 then 1.0
  else float_of_int report.attributed /. float_of_int report.total

let pp ppf report =
  let pct part total = if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total in
  Format.fprintf ppf "%-20s %8s %12s %7s %10s %9s %7s@." "crossing" "count" "cycles" "guest%"
    "transport%" "service%" "reply%";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-20s %8d %12d %6.1f%% %9.1f%% %8.1f%% %6.1f%%@." r.r_kind r.r_count
        r.r_total (pct r.r_guest r.r_total) (pct r.r_transport r.r_total)
        (pct r.r_service r.r_total) (pct r.r_reply r.r_total))
    report.rows;
  Format.fprintf ppf "total %d crossings, %d cycles, %.2f%% attributed@."
    (List.fold_left (fun acc r -> acc + r.r_count) 0 report.rows)
    report.total
    (100.0 *. attributed_fraction report)
