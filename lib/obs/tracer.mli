(** Typed, span-based tracing with causal parent links.

    A span is a named interval of virtual time on a {e track} (one track
    per simulated thread).  Spans form a tree: every span records the id
    of its parent, and ids propagate across ROS<->HRT crossings so a
    forwarded syscall's request, its fabric batch, the poller-pool
    service and the reply all hang off one causal root.  Timestamps are
    virtual cycles ({!Mv_util.Cycles}), never host time.

    Disabled tracing costs one branch per call: no allocation, no
    formatting, no table lookups.  All recording is host-side only — the
    tracer never charges simulated cycles, so enabling it cannot perturb
    schedules or benchmark numbers. *)

type span = {
  sp_id : int;
  sp_parent : int;  (** 0 = no parent (root span) *)
  sp_name : string;
  sp_cat : string;  (** segment class: "crossing", "transport", ... *)
  sp_track : int;
  sp_ts : Mv_util.Cycles.t;  (** start, virtual cycles *)
  sp_dur : Mv_util.Cycles.t;
  sp_args : (string * string) list;
}

type instant = {
  in_name : string;
  in_cat : string;
  in_track : int;
  in_ts : Mv_util.Cycles.t;
  in_detail : string;
}

type t

val create :
  ?enabled:bool ->
  ?capacity:int ->
  now:(unit -> Mv_util.Cycles.t) ->
  track:(unit -> int) ->
  ?track_name:(unit -> string) ->
  unit ->
  t
(** [now] supplies virtual-cycle timestamps; [track] identifies the
    current simulated thread (any stable int; -1 for "outside thread
    context" is conventional).  [track_name], consulted once per new
    track, labels tracks in exports.  [capacity] bounds the number of
    {e completed} spans retained; excess spans are counted in
    {!dropped} instead of stored. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** {1 Recording} *)

val begin_span : t -> ?parent:int -> name:string -> cat:string -> unit -> int
(** Open a span on the current track and push it on that track's ambient
    stack.  [parent] defaults to the innermost open span of the track
    (0 = root if none).  Returns the span id, or 0 when disabled. *)

val end_span : t -> int -> unit
(** Close an open span (id 0 is ignored, so
    [end_span t (begin_span t ...)] is safe when disabled).  Closing a
    span that is not the innermost also closes any still-open spans
    nested inside it. *)

val with_span : t -> ?parent:int -> name:string -> cat:string -> (unit -> 'a) -> 'a
(** [begin_span]/[end_span] around a callback, exception-safe.  When
    disabled this is exactly one branch plus the call. *)

val complete : t -> ?parent:int -> ?args:(string * string) list ->
  name:string -> cat:string -> ts:Mv_util.Cycles.t -> dur:Mv_util.Cycles.t -> unit -> int
(** Record an already-measured interval directly (used for segments whose
    boundaries are observed from both sides of a crossing).  Returns the
    span id, 0 when disabled. *)

val instant : t -> ?cat:string -> ?detail:string -> name:string -> unit -> unit
(** A zero-duration event on the current track. *)

val annotate : t -> string -> string -> unit
(** Attach a key=value argument to the innermost open span of the
    current track; dropped if no span is open (or disabled). *)

val current : t -> int
(** Id of the innermost open span on the current track; 0 if none.
    Capture it before handing work to another thread, then pass it as
    [?parent] on the far side — this is how causality crosses the
    ROS<->HRT boundary. *)

(** {1 Reading back} *)

val spans : t -> span list
(** Completed spans, oldest first. *)

val instants : t -> instant list
(** Oldest first. *)

val track_label : t -> int -> string
val tracks : t -> int list
(** Tracks seen, ascending. *)

val open_count : t -> int
(** Spans begun but not yet ended (should be 0 after a quiesced run). *)

val span_count : t -> int
val dropped : t -> int
val clear : t -> unit
