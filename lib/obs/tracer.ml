type span = {
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_cat : string;
  sp_track : int;
  sp_ts : Mv_util.Cycles.t;
  sp_dur : Mv_util.Cycles.t;
  sp_args : (string * string) list;
}

type instant = {
  in_name : string;
  in_cat : string;
  in_track : int;
  in_ts : Mv_util.Cycles.t;
  in_detail : string;
}

type open_span = {
  os_id : int;
  os_parent : int;
  os_name : string;
  os_cat : string;
  os_track : int;
  os_ts : int;
  mutable os_args : (string * string) list;
}

type t = {
  mutable on : bool;
  capacity : int;
  now : unit -> int;
  track : unit -> int;
  track_name : unit -> string;
  mutable next_id : int;
  mutable spans : span list;  (* newest first *)
  mutable nspans : int;
  mutable ndropped : int;
  mutable instants : instant list;  (* newest first *)
  mutable nopen : int;
  stacks : (int, open_span list ref) Hashtbl.t;  (* track -> open spans, innermost first *)
  track_labels : (int, string) Hashtbl.t;
}

let create ?(enabled = false) ?(capacity = 500_000) ~now ~track
    ?(track_name = fun () -> "") () =
  {
    on = enabled;
    capacity;
    now;
    track;
    track_name;
    next_id = 1;
    spans = [];
    nspans = 0;
    ndropped = 0;
    instants = [];
    nopen = 0;
    stacks = Hashtbl.create 32;
    track_labels = Hashtbl.create 32;
  }

let enabled t = t.on
let set_enabled t flag = t.on <- flag

let stack t track =
  match Hashtbl.find_opt t.stacks track with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.replace t.stacks track s;
      (if not (Hashtbl.mem t.track_labels track) then
         let label = t.track_name () in
         Hashtbl.replace t.track_labels track
           (if label = "" then Printf.sprintf "track-%d" track else label));
      s

let push_span t sp =
  if t.nspans >= t.capacity then t.ndropped <- t.ndropped + 1
  else begin
    t.spans <- sp :: t.spans;
    t.nspans <- t.nspans + 1
  end

let begin_span t ?parent ~name ~cat () =
  if not t.on then 0
  else begin
    let track = t.track () in
    let st = stack t track in
    let parent =
      match parent with
      | Some p -> p
      | None -> ( match !st with [] -> 0 | os :: _ -> os.os_id)
    in
    let id = t.next_id in
    t.next_id <- id + 1;
    st :=
      { os_id = id; os_parent = parent; os_name = name; os_cat = cat;
        os_track = track; os_ts = t.now (); os_args = [] }
      :: !st;
    t.nopen <- t.nopen + 1;
    id
  end

let close_open t os ~at =
  t.nopen <- t.nopen - 1;
  push_span t
    {
      sp_id = os.os_id;
      sp_parent = os.os_parent;
      sp_name = os.os_name;
      sp_cat = os.os_cat;
      sp_track = os.os_track;
      sp_ts = os.os_ts;
      sp_dur = max 0 (at - os.os_ts);
      sp_args = List.rev os.os_args;
    }

let end_span t id =
  if t.on && id <> 0 then begin
    let track = t.track () in
    let st = stack t track in
    (* Normally [id] is the innermost; if callers unwound past nested
       spans (an exception path), close the orphans too so every begun
       span ends exactly once. *)
    if List.exists (fun os -> os.os_id = id) !st then begin
      let at = t.now () in
      let rec unwind = function
        | [] -> []
        | os :: rest ->
            close_open t os ~at;
            if os.os_id = id then rest else unwind rest
      in
      st := unwind !st
    end
  end

let with_span t ?parent ~name ~cat f =
  if not t.on then f ()
  else begin
    let id = begin_span t ?parent ~name ~cat () in
    Fun.protect ~finally:(fun () -> end_span t id) f
  end

let complete t ?parent ?(args = []) ~name ~cat ~ts ~dur () =
  if not t.on then 0
  else begin
    let track = t.track () in
    ignore (stack t track);
    let id = t.next_id in
    t.next_id <- id + 1;
    push_span t
      {
        sp_id = id;
        sp_parent = Option.value parent ~default:0;
        sp_name = name;
        sp_cat = cat;
        sp_track = track;
        sp_ts = ts;
        sp_dur = max 0 dur;
        sp_args = args;
      };
    id
  end

let instant t ?(cat = "event") ?(detail = "") ~name () =
  if t.on then begin
    let track = t.track () in
    ignore (stack t track);
    t.instants <-
      { in_name = name; in_cat = cat; in_track = track; in_ts = t.now (); in_detail = detail }
      :: t.instants
  end

let annotate t key value =
  if t.on then
    match !(stack t (t.track ())) with
    | [] -> ()
    | os :: _ -> os.os_args <- (key, value) :: os.os_args

let current t =
  if not t.on then 0
  else match !(stack t (t.track ())) with [] -> 0 | os :: _ -> os.os_id

let spans t = List.rev t.spans
let instants t = List.rev t.instants

let track_label t track =
  match Hashtbl.find_opt t.track_labels track with
  | Some l -> l
  | None -> Printf.sprintf "track-%d" track

let tracks t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.track_labels [] |> List.sort compare

let open_count t = t.nopen
let span_count t = t.nspans
let dropped t = t.ndropped

let clear t =
  t.spans <- [];
  t.nspans <- 0;
  t.ndropped <- 0;
  t.instants <- [];
  t.nopen <- 0;
  Hashtbl.reset t.stacks;
  Hashtbl.reset t.track_labels
