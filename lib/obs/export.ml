(* JSON string escaping, covering the characters our span names and
   trace messages can realistically contain. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us cycles = Mv_util.Cycles.to_us cycles

let args_json args =
  match args with
  | [] -> ""
  | args ->
      let fields =
        List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) args
      in
      Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)

type ev = { ev_ts : int; ev_ord : int; ev_json : string }

let chrome ?(process_name = "multiverse") ?metrics tracer =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n\"traceEvents\": [\n";
  let events = ref [] in
  let add ~ts ~ord json = events := { ev_ts = ts; ev_ord = ord; ev_json = json } :: !events in
  (* Track metadata first (ord below any real event at ts 0). *)
  add ~ts:0 ~ord:(-1)
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
       (escape process_name));
  List.iter
    (fun track ->
      add ~ts:0 ~ord:(-1)
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           track
           (escape (Tracer.track_label tracer track))))
    (Tracer.tracks tracer);
  List.iter
    (fun (sp : Tracer.span) ->
      add ~ts:sp.Tracer.sp_ts ~ord:sp.Tracer.sp_id
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"id\":%d%s%s}"
           (escape sp.Tracer.sp_name) (escape sp.Tracer.sp_cat) (us sp.Tracer.sp_ts)
           (us sp.Tracer.sp_dur) sp.Tracer.sp_track sp.Tracer.sp_id
           (if sp.Tracer.sp_parent = 0 then ""
            else Printf.sprintf ",\"parent\":%d" sp.Tracer.sp_parent)
           (args_json sp.Tracer.sp_args)))
    (Tracer.spans tracer);
  List.iteri
    (fun i (ins : Tracer.instant) ->
      add ~ts:ins.Tracer.in_ts ~ord:(1_000_000_000 + i)
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"s\":\"t\"%s}"
           (escape ins.Tracer.in_name) (escape ins.Tracer.in_cat) (us ins.Tracer.in_ts)
           ins.Tracer.in_track
           (args_json (if ins.Tracer.in_detail = "" then [] else [ ("detail", ins.Tracer.in_detail) ]))))
    (Tracer.instants tracer);
  let sorted =
    List.sort
      (fun a b -> if a.ev_ts <> b.ev_ts then compare a.ev_ts b.ev_ts else compare a.ev_ord b.ev_ord)
      (List.rev !events)
  in
  List.iteri
    (fun i ev ->
      Buffer.add_string buf ev.ev_json;
      if i < List.length sorted - 1 then Buffer.add_string buf ",";
      Buffer.add_char buf '\n')
    sorted;
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf "\"displayTimeUnit\": \"ns\",\n\"otherData\": {\"clock\": \"virtual-cycles\", \"spans\": %d, \"dropped\": %d"
       (Tracer.span_count tracer) (Tracer.dropped tracer));
  (match metrics with
  | None -> ()
  | Some m ->
      Buffer.add_string buf ", \"metrics\": {";
      let entries =
        List.map
          (fun (k, v) ->
            match v with
            | Metrics.Counter_v n -> Printf.sprintf "\"%s\": %d" (escape k) n
            | Metrics.Gauge_v g -> Printf.sprintf "\"%s\": %.4f" (escape k) g
            | Metrics.Latency_v s ->
                Printf.sprintf "\"%s\": {\"count\": %d, \"mean\": %.1f, \"max\": %.1f}"
                  (escape k) s.Mv_util.Stats.s_count s.Mv_util.Stats.s_mean
                  (if s.Mv_util.Stats.s_count = 0 then 0.0 else s.Mv_util.Stats.s_max))
          (Metrics.to_list m)
      in
      Buffer.add_string buf (String.concat ", " entries);
      Buffer.add_string buf "}");
  Buffer.add_string buf "}\n}\n";
  Buffer.contents buf

let folded tracer =
  let spans = Tracer.spans tracer in
  let by_id = Hashtbl.create 256 in
  List.iter (fun (sp : Tracer.span) -> Hashtbl.replace by_id sp.Tracer.sp_id sp) spans;
  (* Children duration per parent, for self-time subtraction. *)
  let child_dur = Hashtbl.create 256 in
  List.iter
    (fun (sp : Tracer.span) ->
      if sp.Tracer.sp_parent <> 0 then
        let prev = Option.value (Hashtbl.find_opt child_dur sp.Tracer.sp_parent) ~default:0 in
        Hashtbl.replace child_dur sp.Tracer.sp_parent (prev + sp.Tracer.sp_dur))
    spans;
  let rec path (sp : Tracer.span) acc =
    let acc = sp.Tracer.sp_name :: acc in
    match Hashtbl.find_opt by_id sp.Tracer.sp_parent with
    | Some parent -> path parent acc
    | None -> Tracer.track_label tracer sp.Tracer.sp_track :: acc
  in
  let weights = Hashtbl.create 256 in
  List.iter
    (fun (sp : Tracer.span) ->
      let self =
        sp.Tracer.sp_dur
        - Option.value (Hashtbl.find_opt child_dur sp.Tracer.sp_id) ~default:0
      in
      if self > 0 then begin
        let line = String.concat ";" (path sp []) in
        let prev = Option.value (Hashtbl.find_opt weights line) ~default:0 in
        Hashtbl.replace weights line (prev + self)
      end)
    spans;
  let lines = Hashtbl.fold (fun k v acc -> Printf.sprintf "%s %d" k v :: acc) weights [] in
  String.concat "\n" (List.sort compare lines) ^ if lines = [] then "" else "\n"
