type counter = { mutable c_val : int }
type gauge = { mutable g_val : float }
type latency = { l_stats : Mv_util.Stats.t; l_hist : Mv_util.Histogram.t }

type metric = Counter of counter | Gauge of gauge | Latency of latency

type t = { cells : (string, metric) Hashtbl.t }

let create () = { cells = Hashtbl.create 64 }

let key ~ns name = ns ^ "/" ^ name

let counter t ~ns name =
  let k = key ~ns name in
  match Hashtbl.find_opt t.cells k with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ k ^ " registered with another type")
  | None ->
      let c = { c_val = 0 } in
      Hashtbl.replace t.cells k (Counter c);
      c

let inc c ?(by = 1) () = c.c_val <- c.c_val + by
let set_counter c v = c.c_val <- v
let counter_value c = c.c_val

let gauge t ~ns name =
  let k = key ~ns name in
  match Hashtbl.find_opt t.cells k with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ k ^ " registered with another type")
  | None ->
      let g = { g_val = 0.0 } in
      Hashtbl.replace t.cells k (Gauge g);
      g

let set_gauge g v = g.g_val <- v
let gauge_value g = g.g_val

let latency t ~ns name =
  let k = key ~ns name in
  match Hashtbl.find_opt t.cells k with
  | Some (Latency l) -> l
  | Some _ -> invalid_arg ("Metrics.latency: " ^ k ^ " registered with another type")
  | None ->
      let l = { l_stats = Mv_util.Stats.create (); l_hist = Mv_util.Histogram.create () } in
      Hashtbl.replace t.cells k (Latency l);
      l

(* Log2 bucket label for a sample: "<2^k" covers [2^(k-1), 2^k). *)
let bucket_label v =
  let v = int_of_float (Float.max v 0.0) in
  let rec log2 acc n = if n <= 1 then acc else log2 (acc + 1) (n lsr 1) in
  Printf.sprintf "<2^%d" (if v = 0 then 0 else log2 0 v + 1)

let observe l v =
  Mv_util.Stats.add l.l_stats v;
  Mv_util.Histogram.incr l.l_hist (bucket_label v)

let latency_stats l = Mv_util.Stats.summary l.l_stats
let latency_count l = Mv_util.Stats.count l.l_stats

let latency_percentile l p =
  if Mv_util.Stats.count l.l_stats = 0 then 0.
  else Mv_util.Stats.percentile_interp l.l_stats p

let bucket_order label =
  (* "<2^k" -> k, for ascending numeric sort. *)
  match String.index_opt label '^' with
  | Some i -> ( try int_of_string (String.sub label (i + 1) (String.length label - i - 1)) with _ -> 0)
  | None -> 0

let latency_buckets l =
  Mv_util.Histogram.to_sorted_list l.l_hist
  |> List.sort (fun (a, _) (b, _) -> compare (bucket_order a) (bucket_order b))

type value =
  | Counter_v of int
  | Gauge_v of float
  | Latency_v of Mv_util.Stats.summary

let value_of = function
  | Counter c -> Counter_v c.c_val
  | Gauge g -> Gauge_v g.g_val
  | Latency l -> Latency_v (latency_stats l)

let to_list t =
  Hashtbl.fold (fun k m acc -> (k, value_of m) :: acc) t.cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find t k = Option.map value_of (Hashtbl.find_opt t.cells k)
let clear t = Hashtbl.reset t.cells

let pp ppf t =
  List.iter
    (fun (k, v) ->
      match v with
      | Counter_v n -> Format.fprintf ppf "%-40s %d@." k n
      | Gauge_v g -> Format.fprintf ppf "%-40s %.3f@." k g
      | Latency_v s -> Format.fprintf ppf "%-40s %a@." k Mv_util.Stats.pp_summary s)
    (to_list t)
