(* Int-indexed slot registry.  The string-keyed Hashtbl is consulted only
   at registration: [counter]/[gauge]/[latency] resolve a name to a slot
   index once, and the handle they hand back is (registry, index), so the
   hot-path update is an array store into an unboxed [int array] /
   [float array].  Counter and gauge values living in flat arrays (rather
   than per-cell boxed records) also keeps exports cache-friendly and
   makes the registry trivially resettable. *)

type t = {
  mutable counters : int array;
  mutable gauges : float array;
  mutable lats : lat_cell array;
  mutable n_counters : int;
  mutable n_gauges : int;
  mutable n_lats : int;
  index : (string, slot) Hashtbl.t;  (* registration-time only *)
}

and lat_cell = {
  l_stats : Mv_util.Stats.t;
  l_buckets : int array;  (* log2 buckets: slot k counts [2^(k-1), 2^k) *)
}

and slot = C of int | G of int | L of int

type counter = { ct_t : t; ct_idx : int }
type gauge = { ga_t : t; ga_idx : int }
type latency = lat_cell

let n_log2_buckets = 64

let create () =
  {
    counters = [||];
    gauges = [||];
    lats = [||];
    n_counters = 0;
    n_gauges = 0;
    n_lats = 0;
    index = Hashtbl.create 64;
  }

let key ~ns name = ns ^ "/" ^ name

let grow_int arr n =
  let cap = Array.length arr in
  if n >= cap then begin
    let na = Array.make (max 16 (cap * 2)) 0 in
    Array.blit arr 0 na 0 n;
    na
  end
  else arr

let grow_float arr n =
  let cap = Array.length arr in
  if n >= cap then begin
    let na = Array.make (max 16 (cap * 2)) 0.0 in
    Array.blit arr 0 na 0 n;
    na
  end
  else arr

let grow_lat arr n fill =
  let cap = Array.length arr in
  if n >= cap then begin
    let na = Array.make (max 16 (cap * 2)) fill in
    Array.blit arr 0 na 0 n;
    na
  end
  else arr

let type_clash fn k = invalid_arg ("Metrics." ^ fn ^ ": " ^ k ^ " registered with another type")

let counter t ~ns name =
  let k = key ~ns name in
  match Hashtbl.find_opt t.index k with
  | Some (C i) -> { ct_t = t; ct_idx = i }
  | Some _ -> type_clash "counter" k
  | None ->
      let i = t.n_counters in
      t.counters <- grow_int t.counters i;
      t.counters.(i) <- 0;
      t.n_counters <- i + 1;
      Hashtbl.replace t.index k (C i);
      { ct_t = t; ct_idx = i }

let inc c ?(by = 1) () =
  let a = c.ct_t.counters in
  a.(c.ct_idx) <- a.(c.ct_idx) + by

let set_counter c v = c.ct_t.counters.(c.ct_idx) <- v
let counter_value c = c.ct_t.counters.(c.ct_idx)

let gauge t ~ns name =
  let k = key ~ns name in
  match Hashtbl.find_opt t.index k with
  | Some (G i) -> { ga_t = t; ga_idx = i }
  | Some _ -> type_clash "gauge" k
  | None ->
      let i = t.n_gauges in
      t.gauges <- grow_float t.gauges i;
      t.gauges.(i) <- 0.0;
      t.n_gauges <- i + 1;
      Hashtbl.replace t.index k (G i);
      { ga_t = t; ga_idx = i }

let set_gauge g v = g.ga_t.gauges.(g.ga_idx) <- v
let gauge_value g = g.ga_t.gauges.(g.ga_idx)

let latency t ~ns name =
  let k = key ~ns name in
  match Hashtbl.find_opt t.index k with
  | Some (L i) -> t.lats.(i)
  | Some _ -> type_clash "latency" k
  | None ->
      let l = { l_stats = Mv_util.Stats.create (); l_buckets = Array.make n_log2_buckets 0 } in
      let i = t.n_lats in
      t.lats <- grow_lat t.lats i l;
      t.lats.(i) <- l;
      t.n_lats <- i + 1;
      Hashtbl.replace t.index k (L i);
      l

(* Log2 bucket index for a sample: slot k covers [2^(k-1), 2^k), so the
   label rendered at read time is "<2^k". *)
let bucket_index v =
  let v = int_of_float (Float.max v 0.0) in
  if v = 0 then 0
  else
    let rec log2 acc n = if n <= 1 then acc else log2 (acc + 1) (n lsr 1) in
    min (n_log2_buckets - 1) (log2 0 v + 1)

let observe l v =
  Mv_util.Stats.add l.l_stats v;
  let i = bucket_index v in
  l.l_buckets.(i) <- l.l_buckets.(i) + 1

let latency_stats l = Mv_util.Stats.summary l.l_stats
let latency_count l = Mv_util.Stats.count l.l_stats

let latency_percentile l p =
  if Mv_util.Stats.count l.l_stats = 0 then 0.
  else Mv_util.Stats.percentile_interp l.l_stats p

let latency_buckets l =
  let acc = ref [] in
  for k = n_log2_buckets - 1 downto 0 do
    if l.l_buckets.(k) > 0 then acc := (Printf.sprintf "<2^%d" k, l.l_buckets.(k)) :: !acc
  done;
  !acc

type value =
  | Counter_v of int
  | Gauge_v of float
  | Latency_v of Mv_util.Stats.summary

let value_of t = function
  | C i -> Counter_v t.counters.(i)
  | G i -> Gauge_v t.gauges.(i)
  | L i -> Latency_v (latency_stats t.lats.(i))

let to_list t =
  Hashtbl.fold (fun k s acc -> (k, value_of t s) :: acc) t.index []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find t k = Option.map (value_of t) (Hashtbl.find_opt t.index k)

(* Drops every registration; handles resolved before the clear keep
   writing into the orphaned arrays and are never exported again. *)
let clear t =
  Hashtbl.reset t.index;
  t.counters <- [||];
  t.gauges <- [||];
  t.lats <- [||];
  t.n_counters <- 0;
  t.n_gauges <- 0;
  t.n_lats <- 0

let pp ppf t =
  List.iter
    (fun (k, v) ->
      match v with
      | Counter_v n -> Format.fprintf ppf "%-40s %d@." k n
      | Gauge_v g -> Format.fprintf ppf "%-40s %.3f@." k g
      | Latency_v s -> Format.fprintf ppf "%-40s %a@." k Mv_util.Stats.pp_summary s)
    (to_list t)
