(** A namespaced metrics registry: counters, gauges, and latency
    recorders, keyed ["namespace/name"] (namespaces: [fabric], [mmu],
    [tlb], [walk_cache], [mm], [sgc], [event_channel], ...).

    Registration is idempotent — [counter m ~ns name] returns an
    equivalent handle every time — but resolution walks the string-keyed
    index, so hot paths must resolve once and hold the handle.  Handles
    are int-indexed slots into flat unboxed arrays: updating one is an
    array store, and nothing allocates after registration.  Latency
    recorders reuse {!Mv_util.Stats} for the moment summary plus a flat
    log2 bucket array for the distribution (labels are rendered only
    when read back). *)

type t

type counter
type gauge
type latency

val create : unit -> t

val counter : t -> ns:string -> string -> counter
val inc : counter -> ?by:int -> unit -> unit
val set_counter : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> ns:string -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val latency : t -> ns:string -> string -> latency
val observe : latency -> float -> unit
(** Record one sample (cycles). *)

val latency_stats : latency -> Mv_util.Stats.summary
val latency_count : latency -> int

val latency_percentile : latency -> float -> float
(** Interpolated percentile ([p] in [\[0,100\]]) over the recorded
    samples; 0 when none have been observed.  Served from
    {!Mv_util.Stats}'s cached sorted array, so tail queries after a run
    (p50/p95/p99) sort the samples once. *)

val latency_buckets : latency -> (string * int) list
(** Log2 buckets ["<2^k"] with counts, ascending. *)

(** {1 Reading back} *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Latency_v of Mv_util.Stats.summary

val to_list : t -> (string * value) list
(** All registered metrics, sorted by full name. *)

val find : t -> string -> value option
val clear : t -> unit
val pp : Format.formatter -> t -> unit
