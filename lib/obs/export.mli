(** Exporters over a {!Tracer} dump.

    [chrome] renders the Trace Event Format JSON that [chrome://tracing]
    and Perfetto load: one complete ("ph":"X") event per span, instant
    ("ph":"i") events, and thread-name metadata per track.  Timestamps
    are virtual cycles converted to microseconds at the simulated clock
    rate.  The JSON is hand-rolled (the image carries no JSON library)
    and deterministic: events are ordered by timestamp, then span id.

    [folded] renders collapsed flamegraph stacks
    ("track;outer;inner <self-cycles>" per line, sorted), where each
    span's self time is its duration minus that of its children. *)

val chrome :
  ?process_name:string -> ?metrics:Metrics.t -> Tracer.t -> string

val folded : Tracer.t -> string
