(** Per-crossing critical path: the cycle breakdown of every forwarded
    ROS<->HRT interaction.

    A {e crossing} is a span with category ["crossing"] (the fabric opens
    one per forwarded call).  Its child segments — recorded from
    measurements taken on both sides of the boundary — carry categories
    ["transport"] (doorbell + delivery + ring wait until the server picks
    the payload up), ["service"] (the ROS-side payload run), and
    ["reply"] (completion store + caller wakeup).  Cycles of the crossing
    not covered by those segments are attributed to ["guest"]: the
    caller-side trap/ring overhead around the boundary. *)

type row = {
  r_kind : string;  (** crossing span name, e.g. ["fwd:write"] *)
  r_count : int;
  r_total : int;  (** end-to-end cycles, summed *)
  r_guest : int;
  r_transport : int;
  r_service : int;
  r_reply : int;
}

type report = {
  rows : row list;  (** descending by total cycles *)
  total : int;
  attributed : int;  (** cycles landing in a named segment (guest included) *)
}

val compute : Tracer.span list -> report

val attributed_fraction : report -> float
(** [attributed / total]; 1.0 for an empty report. *)

val pp : Format.formatter -> report -> unit
