(** Bytecode representation and shared compilation state. *)

type prim =
  (* numbers *)
  | Padd | Psub | Pmul | Pdiv | Pquotient | Premainder | Pmodulo
  | Pabs | Pmin | Pmax | Pexpt | Psqrt | Pfloor | Ptruncate | Pround
  | Pexact_to_inexact | Pinexact_to_exact | Psin | Pcos | Patan | Plog | Pexp
  | Plt | Pgt | Ple | Pge | Pnumeq
  | Pzerop | Pevenp | Poddp | Pnegativep | Ppositivep
  (* predicates *)
  | Peq | Peqv | Pequal | Pnot | Pnullp | Ppairp | Pnumberp | Pintegerp
  | Pstringp | Psymbolp | Pprocedurep | Pvectorp | Pbooleanp | Pcharp
  (* pairs and lists *)
  | Pcons | Pcar | Pcdr | Psetcar | Psetcdr | Plist | Plength | Pappend
  | Preverse | Plist_ref | Plist_tail | Pmemq | Pmember | Passq | Passv
  (* vectors *)
  | Pmake_vector | Pvector | Pvector_ref | Pvector_set | Pvector_length
  | Pvector_fill
  (* strings and chars *)
  | Pstring_length | Pstring_ref | Pstring_set | Pmake_string | Pstring_append
  | Psubstring | Pstring_to_symbol | Psymbol_to_string | Pnumber_to_string
  | Pstring_to_number | Pstring_eq | Pstring_copy | Plist_to_string
  | Pstring_to_list | Pchar_to_integer | Pinteger_to_char | Pchar_eq
  | Preal_to_decimal_string
  (* boxes *)
  | Pbox | Punbox | Pset_box
  (* I/O and misc *)
  | Pdisplay | Pwrite | Pnewline | Pwrite_char | Pwrite_string | Pread_line
  | Pflush_output | Pvoid | Perror | Papply | Pcurrent_seconds | Pcollect_garbage
  | Pplace_spawn | Pplace_send | Pplace_recv | Pplace_wait
  | Popen_input | Popen_output | Pclose_port | Peof_objectp | Pportp | Pread_char

val prim_of_name : string -> (prim * int option) option
(** Primitive and its required arity ([None] = variadic). *)

type instr =
  | Imm of Value.v  (** push an immediate value *)
  | Const of int  (** push constants.(i) (quoted structure) *)
  | Lref of int * int  (** (depth, slot) lexical reference *)
  | Lset of int * int
  | Gref of int
  | Gset of int
  | MkClosure of int  (** code index; captures the current frame *)
  | Call of int  (** argc *)
  | TailCall of int
  | Ret
  | Jmp of int  (** absolute target *)
  | Jif of int  (** pop; jump if false *)
  | Pop
  | Prim of prim * int  (** primitive with argc *)
  | PrimVarargs of prim
      (** body of a synthetic variadic-primitive closure; accepts the
          caller's argument count *)
  | PushFrame of int
      (** [let]: pop n values into a fresh frame and make it current *)
  | PopFrame  (** leave a [let] body (non-tail position) *)

type code = {
  c_name : string;
  c_arity : int;
  c_frame_size : int;  (** slots in the activation frame (>= arity) *)
  mutable c_instrs : instr array;
  mutable c_jitted : bool;  (** JIT-compiled on first call *)
  mutable c_no_capture : int;  (** frame-capture analysis: -1 unknown, 0 captures, 1 free *)
}

(** Shared state between the compiler and the VM: interned symbols, the
    global table, code objects, and the (GC-rooted) constants pool. *)
type cstate = {
  gc : Sgc.t;
  syms : (string, int) Hashtbl.t;
  mutable sym_names : string array;
  mutable nsyms : int;
  globals_map : (string, int) Hashtbl.t;
  mutable nglobals : int;
  mutable codes : code array;
  mutable ncodes : int;
  mutable constants : Value.v array;
  mutable nconstants : int;
  mutable gensym : int;
      (** compiler temporary-name counter — per-unit so concurrent
          compilations on different domains stay independent and every
          run names its temporaries identically *)
}

val make_cstate : Sgc.t -> cstate
val intern : cstate -> string -> int
val sym_name : cstate -> int -> string
val global_slot : cstate -> string -> int
val find_global : cstate -> string -> int option
val add_code : cstate -> code -> int
val add_constant : cstate -> Value.v -> int
val pp_instr : Format.formatter -> instr -> unit
