(** SenoraGC: a conservative mark-sweep garbage collector over simulated
    pages, in the style of the portable collector the paper's Racket port
    uses (paper, Section 5).

    The collector drives exactly the OS interactions Figures 11 and 12
    attribute to the Racket runtime's GC:

    - heap segments acquired with anonymous [mmap] and released with
      [munmap] as they empty;
    - after each collection, occupied pages are write-protected with
      [mprotect]; the first subsequent write to such a page raises SIGSEGV,
      whose handler (installed with [rt_sigaction]) unprotects the page and
      records it dirty — a page-granularity write barrier;
    - demand-paging faults on first touch of fresh heap pages.

    Objects are word-arrays with a one-word header (low 8 bits: type tag;
    upper bits: payload length in words).  Marking is conservative: any
    root or payload word that decodes as a pointer to a live object start
    is treated as a reference. *)

type t

type stats = {
  mutable collections : int;
  mutable bytes_allocated : int;
  mutable segments_mapped : int;
  mutable segments_unmapped : int;
  mutable barrier_faults : int;
  mutable objects_swept : int;
}

val create :
  Mv_guest.Env.t ->
  ?segment_pages:int ->
  ?threshold:int ->
  ?protect_after_gc:bool ->
  unit ->
  t
(** Build the collector (maps an initial segment).  [segment_pages]
    defaults to 512 (2 MiB segments — one transparent-huge-page chunk);
    [threshold] is the allocation volume between collections (default
    4 MiB). *)

val install_barrier : t -> unit
(** Register the SIGSEGV write-barrier handler ([rt_sigaction] +
    [rt_sigprocmask], as in Figure 11's startup profile). *)

val set_roots : t -> ((int -> unit) -> unit) -> unit
(** Provide the root enumerator: called at collection time with a visitor
    to be applied to every potential root word. *)

val alloc : t -> tag:int -> words:int -> Mv_hw.Addr.t
(** Allocate an object with a zeroed payload of [words] words; may run a
    collection first.  Returns the header address (the value pointer). *)

val collect : t -> unit
(** Force a full collection. *)

(** {1 Heap access} *)

val read_word : t -> Mv_hw.Addr.t -> int
val write_word : t -> Mv_hw.Addr.t -> int -> unit
val header_tag : t -> Mv_hw.Addr.t -> int
val header_words : t -> Mv_hw.Addr.t -> int
val is_heap_pointer : t -> int -> bool
(** Does this word decode as a pointer to a live object start? *)

(** {1 Scannable tags} *)

val set_scannable : t -> tag:int -> bool -> unit
(** Declare whether objects with [tag] have payloads containing values
    (default: not scannable). *)

(** {1 Introspection} *)

val stats : t -> stats
val live_bytes : t -> int
(** As of the last collection. *)

val mapped_bytes : t -> int
val dirty_pages : t -> int
(** Pages unprotected by the write barrier since the last collection. *)

val sample_metrics : t -> Mv_obs.Metrics.t -> unit
(** Snapshot the collector statistics into a metrics registry under the
    ["sgc"] namespace (absolute values, overwriting prior samples). *)
