open Code

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* --- instruction emitter with back-patching --- *)

type emitter = { mutable arr : instr array; mutable n : int }

let new_emitter () = { arr = Array.make 32 Ret; n = 0 }

let emit e i =
  if e.n >= Array.length e.arr then begin
    let a = Array.make (2 * Array.length e.arr) Ret in
    Array.blit e.arr 0 a 0 e.n;
    e.arr <- a
  end;
  e.arr.(e.n) <- i;
  e.n <- e.n + 1;
  e.n - 1

let here e = e.n
let patch e pos i = e.arr.(pos) <- i
let finish e = Array.sub e.arr 0 e.n

(* --- desugaring helpers --- *)

(* Counter lives in the compilation unit, not the process: concurrent
   compilations on other domains don't perturb the names here. *)
let gensym cs prefix =
  cs.gensym <- cs.gensym + 1;
  Printf.sprintf " %s%d" prefix cs.gensym  (* leading space: unreadable *)

let sym s = Sexp.Atom_sym s
let slist l = Sexp.List l

(* Internal defines at the head of a body become a letrec*-style prologue:
   the frame gains their names, and the body starts with set!s. *)
let split_internal_defines body =
  let rec go defs = function
    | Sexp.List (Sexp.Atom_sym "define" :: Sexp.List (Sexp.Atom_sym name :: params) :: fbody)
      :: rest ->
        go ((name, slist (sym "lambda" :: slist params :: fbody)) :: defs) rest
    | Sexp.List [ Sexp.Atom_sym "define"; Sexp.Atom_sym name; expr ] :: rest ->
        go ((name, expr) :: defs) rest
    | rest -> (List.rev defs, rest)
  in
  go [] body

(* --- lexical environments --- *)

type cenv = string list list

let lookup (cenv : cenv) name =
  let rec go depth = function
    | [] -> None
    | frame :: rest -> (
        match List.find_index (String.equal name) frame with
        | Some idx -> Some (depth, idx)
        | None -> go (depth + 1) rest)
  in
  go 0 cenv

(* --- compiler --- *)

let special_forms =
  [ "quote"; "if"; "begin"; "lambda"; "define"; "set!"; "let"; "let*"; "letrec";
    "letrec*"; "and"; "or"; "cond"; "case"; "when"; "unless"; "do"; "named-lambda" ]

let rec compile_quote cs (d : Sexp.t) : Value.v =
  match d with
  | Sexp.Atom_int n -> Value.fixnum n
  | Sexp.Atom_bool b -> Value.bool_v b
  | Sexp.Atom_char c -> Value.char_v c
  | Sexp.Atom_sym s -> Value.sym (intern cs s)
  | Sexp.Atom_float f -> Value.flonum cs.gc f
  | Sexp.Atom_string s -> Value.string_v cs.gc s
  | Sexp.List items ->
      (* Build back-to-front; every intermediate is reachable from the
         accumulator, which we keep registered as a constant to survive a
         collection triggered mid-construction. *)
      let slot = add_constant cs Value.nil in
      List.iter
        (fun item ->
          let v = compile_quote cs item in
          cs.constants.(slot) <- Value.cons cs.gc v cs.constants.(slot))
        (List.rev items);
      cs.constants.(slot)
  | Sexp.Dotted (items, tail) ->
      let slot = add_constant cs (compile_quote cs tail) in
      List.iter
        (fun item ->
          let v = compile_quote cs item in
          cs.constants.(slot) <- Value.cons cs.gc v cs.constants.(slot))
        (List.rev items);
      cs.constants.(slot)

let rec compile_expr cs (cenv : cenv) e (x : Sexp.t) ~tail =
  match x with
  | Sexp.Atom_int n -> ignore (emit e (Imm (Value.fixnum n)))
  | Sexp.Atom_bool b -> ignore (emit e (Imm (Value.bool_v b)))
  | Sexp.Atom_char c -> ignore (emit e (Imm (Value.char_v c)))
  | Sexp.Atom_float f -> ignore (emit e (Const (add_constant cs (Value.flonum cs.gc f))))
  | Sexp.Atom_string s -> ignore (emit e (Const (add_constant cs (Value.string_v cs.gc s))))
  | Sexp.Atom_sym name -> compile_var cs cenv e name
  | Sexp.List [] -> fail "empty application"
  | Sexp.Dotted _ -> fail "dotted pair outside quote"
  | Sexp.List (Sexp.Atom_sym form :: _) when List.mem form special_forms ->
      compile_special cs cenv e x ~tail
  | Sexp.List (fn :: args) -> compile_apply cs cenv e fn args ~tail

and compile_var cs cenv e name =
  match lookup cenv name with
  | Some (d, i) -> ignore (emit e (Lref (d, i)))
  | None -> (
      match find_global cs name with
      | Some slot -> ignore (emit e (Gref slot))
      | None -> (
          match prim_of_name name with
          | Some (_, Some arity) ->
              (* Eta-expand a fixed-arity primitive used as a value. *)
              let params = List.init arity (fun i -> Printf.sprintf "x%d" i) in
              let body = slist (sym name :: List.map sym params) in
              let lam = slist [ sym "lambda"; slist (List.map sym params); body ] in
              compile_expr cs cenv e lam ~tail:false
          | Some (p, None) ->
              (* Variadic primitive as a value: a synthetic closure whose
                 body accepts whatever argument count the caller passes. *)
              let idx =
                add_code cs
                  {
                    c_name = name;
                    c_arity = -1;
                    c_frame_size = 0;
                    c_instrs = [| PrimVarargs p; Ret |];
                    c_jitted = true;
                    c_no_capture = 1;
                  }
              in
              ignore (emit e (MkClosure idx))
          | None ->
              (* Forward reference to a global defined later. *)
              ignore (emit e (Gref (global_slot cs name)))))

and compile_seq cs cenv e body ~tail =
  match body with
  | [] -> ignore (emit e (Imm Value.vvoid))
  | [ last ] -> compile_expr cs cenv e last ~tail
  | x :: rest ->
      compile_expr cs cenv e x ~tail:false;
      ignore (emit e Pop);
      compile_seq cs cenv e rest ~tail

and compile_lambda cs cenv ~name params body =
  let params =
    List.map
      (function Sexp.Atom_sym s -> s | _ -> fail "lambda: bad parameter list")
      params
  in
  let defs, rest = split_internal_defines body in
  let frame_names = params @ List.map fst defs in
  let cenv' = frame_names :: cenv in
  let e = new_emitter () in
  (* letrec* prologue for internal defines *)
  List.iter
    (fun (dname, dexpr) ->
      compile_expr cs cenv' e dexpr ~tail:false;
      match lookup cenv' dname with
      | Some (0, i) -> ignore (emit e (Lset (0, i)))
      | _ -> assert false)
    defs;
  compile_seq cs cenv' e rest ~tail:true;
  ignore (emit e Ret);
  add_code cs
    {
      c_name = name;
      c_arity = List.length params;
      c_frame_size = List.length frame_names;
      c_instrs = finish e;
      c_jitted = false;
      c_no_capture = -1;
    }

and compile_apply cs cenv e fn args ~tail =
  let direct_prim =
    match fn with
    | Sexp.Atom_sym name when lookup cenv name = None && find_global cs name = None ->
        prim_of_name name
    | _ -> None
  in
  match direct_prim with
  | Some (p, arity) ->
      let argc = List.length args in
      (match arity with
      | Some a when a <> argc ->
          fail "primitive %s expects %d arguments, got %d" (Sexp.to_string fn) a argc
      | _ -> ());
      List.iter (fun a -> compile_expr cs cenv e a ~tail:false) args;
      ignore (emit e (Prim (p, argc)))
  | None ->
      compile_expr cs cenv e fn ~tail:false;
      List.iter (fun a -> compile_expr cs cenv e a ~tail:false) args;
      ignore (emit e (if tail then TailCall (List.length args) else Call (List.length args)))

and compile_special cs cenv e x ~tail =
  match x with
  | Sexp.List [ Sexp.Atom_sym "quote"; d ] -> (
      match d with
      | Sexp.Atom_int n -> ignore (emit e (Imm (Value.fixnum n)))
      | Sexp.Atom_bool b -> ignore (emit e (Imm (Value.bool_v b)))
      | Sexp.Atom_char c -> ignore (emit e (Imm (Value.char_v c)))
      | Sexp.Atom_sym s -> ignore (emit e (Imm (Value.sym (intern cs s))))
      | _ -> ignore (emit e (Const (add_constant cs (compile_quote cs d)))))
  | Sexp.List (Sexp.Atom_sym "if" :: cond :: branches) -> (
      compile_expr cs cenv e cond ~tail:false;
      let jif_pos = emit e (Jif 0) in
      match branches with
      | [ then_e ] ->
          compile_expr cs cenv e then_e ~tail;
          let jmp_pos = emit e (Jmp 0) in
          patch e jif_pos (Jif (here e));
          ignore (emit e (Imm Value.vvoid));
          patch e jmp_pos (Jmp (here e))
      | [ then_e; else_e ] ->
          compile_expr cs cenv e then_e ~tail;
          let jmp_pos = emit e (Jmp 0) in
          patch e jif_pos (Jif (here e));
          compile_expr cs cenv e else_e ~tail;
          patch e jmp_pos (Jmp (here e))
      | _ -> fail "if: bad form")
  | Sexp.List (Sexp.Atom_sym "begin" :: body) -> compile_seq cs cenv e body ~tail
  | Sexp.List (Sexp.Atom_sym "lambda" :: Sexp.List params :: body) ->
      let idx = compile_lambda cs cenv ~name:"lambda" params body in
      ignore (emit e (MkClosure idx))
  | Sexp.List (Sexp.Atom_sym "named-lambda" :: Sexp.Atom_string name :: Sexp.List params :: body)
    ->
      let idx = compile_lambda cs cenv ~name params body in
      ignore (emit e (MkClosure idx))
  | Sexp.List [ Sexp.Atom_sym "set!"; Sexp.Atom_sym name; expr ] -> (
      compile_expr cs cenv e expr ~tail:false;
      match lookup cenv name with
      | Some (d, i) ->
          ignore (emit e (Lset (d, i)));
          ignore (emit e (Imm Value.vvoid))
      | None ->
          ignore (emit e (Gset (global_slot cs name)));
          ignore (emit e (Imm Value.vvoid)))
  | Sexp.List (Sexp.Atom_sym "let" :: Sexp.List bindings :: body) ->
      (* Compiled natively (no closure): evaluate the inits onto the stack
         and pop them into a fresh frame for the body.  Keeps loop bodies
         free of MkClosure so the self-tail-call fast path applies. *)
      let vars, inits =
        List.split
          (List.map
             (function
               | Sexp.List [ Sexp.Atom_sym v; init ] -> (v, init)
               | b -> fail "let: bad binding %s" (Sexp.to_string b))
             bindings)
      in
      List.iter (fun init -> compile_expr cs cenv e init ~tail:false) inits;
      ignore (emit e (PushFrame (List.length vars)));
      let cenv' = vars :: cenv in
      compile_seq cs cenv' e body ~tail;
      if not tail then ignore (emit e PopFrame)
  | Sexp.List (Sexp.Atom_sym "let" :: (Sexp.Atom_sym _ as loop) :: Sexp.List bindings :: body)
    ->
      (* named let -> letrec *)
      let vars, inits =
        List.split
          (List.map
             (function
               | Sexp.List [ (Sexp.Atom_sym _ as v); init ] -> (v, init)
               | b -> fail "named let: bad binding %s" (Sexp.to_string b))
             bindings)
      in
      let lam = slist (sym "lambda" :: slist vars :: body) in
      let expansion =
        slist
          [ sym "letrec"; slist [ slist [ loop; lam ] ]; slist (loop :: inits) ]
      in
      compile_expr cs cenv e expansion ~tail
  | Sexp.List (Sexp.Atom_sym "let*" :: Sexp.List bindings :: body) -> (
      match bindings with
      | [] -> compile_expr cs cenv e (slist (sym "let" :: slist [] :: body)) ~tail
      | first :: rest ->
          let inner = slist (sym "let*" :: slist rest :: body) in
          compile_expr cs cenv e (slist [ sym "let"; slist [ first ]; inner ]) ~tail)
  | Sexp.List (Sexp.Atom_sym ("letrec" | "letrec*") :: Sexp.List bindings :: body) ->
      (* ((lambda (vars) (set! var init)... body) undef...) via internal
         defines, which compile_lambda already implements. *)
      let defs =
        List.map
          (function
            | Sexp.List [ (Sexp.Atom_sym _ as v); init ] ->
                slist [ sym "define"; v; init ]
            | b -> fail "letrec: bad binding %s" (Sexp.to_string b))
          bindings
      in
      let lam = slist (sym "lambda" :: slist [] :: (defs @ body)) in
      compile_apply cs cenv e lam [] ~tail
  | Sexp.List (Sexp.Atom_sym "and" :: args) -> (
      match args with
      | [] -> ignore (emit e (Imm Value.vtrue))
      | [ last ] -> compile_expr cs cenv e last ~tail
      | first :: rest ->
          let expansion =
            slist [ sym "if"; first; slist (sym "and" :: rest); Sexp.Atom_bool false ]
          in
          compile_expr cs cenv e expansion ~tail)
  | Sexp.List (Sexp.Atom_sym "or" :: args) -> (
      match args with
      | [] -> ignore (emit e (Imm Value.vfalse))
      | [ last ] -> compile_expr cs cenv e last ~tail
      | first :: rest ->
          let t = gensym cs "or" in
          let expansion =
            slist
              [ sym "let";
                slist [ slist [ sym t; first ] ];
                slist [ sym "if"; sym t; sym t; slist (sym "or" :: rest) ];
              ]
          in
          compile_expr cs cenv e expansion ~tail)
  | Sexp.List (Sexp.Atom_sym "when" :: cond :: body) ->
      compile_expr cs cenv e
        (slist [ sym "if"; cond; slist (sym "begin" :: body) ])
        ~tail
  | Sexp.List (Sexp.Atom_sym "unless" :: cond :: body) ->
      compile_expr cs cenv e
        (slist [ sym "if"; slist [ sym "not"; cond ]; slist (sym "begin" :: body) ])
        ~tail
  | Sexp.List (Sexp.Atom_sym "cond" :: clauses) ->
      let rec expand = function
        | [] -> slist [ sym "void" ]
        | Sexp.List (Sexp.Atom_sym "else" :: body) :: _ -> slist (sym "begin" :: body)
        | Sexp.List [ cond ] :: rest -> slist [ sym "or"; cond; expand rest ]
        | Sexp.List (cond :: body) :: rest ->
            slist [ sym "if"; cond; slist (sym "begin" :: body); expand rest ]
        | c :: _ -> fail "cond: bad clause %s" (Sexp.to_string c)
      in
      compile_expr cs cenv e (expand clauses) ~tail
  | Sexp.List (Sexp.Atom_sym "case" :: key :: clauses) ->
      let t = gensym cs "case" in
      let rec expand = function
        | [] -> slist [ sym "void" ]
        | Sexp.List (Sexp.Atom_sym "else" :: body) :: _ -> slist (sym "begin" :: body)
        | Sexp.List (Sexp.List datums :: body) :: rest ->
            slist
              [ sym "if";
                slist [ sym "member"; sym t; slist [ sym "quote"; slist datums ] ];
                slist (sym "begin" :: body);
                expand rest;
              ]
        | c :: _ -> fail "case: bad clause %s" (Sexp.to_string c)
      in
      let expansion =
        slist [ sym "let"; slist [ slist [ sym t; key ] ]; expand clauses ]
      in
      compile_expr cs cenv e expansion ~tail
  | Sexp.List (Sexp.Atom_sym "do" :: Sexp.List specs :: Sexp.List (test :: result) :: body)
    ->
      (* (do ((v init step)...) (test result...) body...) *)
      let loop = gensym cs "do" in
      let vars, inits, steps =
        List.fold_right
          (fun spec (vs, is, ss) ->
            match spec with
            | Sexp.List [ (Sexp.Atom_sym _ as v); init; step ] ->
                (v :: vs, init :: is, step :: ss)
            | Sexp.List [ (Sexp.Atom_sym _ as v); init ] ->
                (v :: vs, init :: is, v :: ss)
            | s -> fail "do: bad spec %s" (Sexp.to_string s))
          specs ([], [], [])
      in
      let result_body =
        match result with [] -> [ slist [ sym "void" ] ] | r -> r
      in
      let expansion =
        slist
          [ sym "let"; sym loop;
            slist (List.map2 (fun v i -> slist [ v; i ]) vars inits);
            slist
              [ sym "if"; test;
                slist (sym "begin" :: result_body);
                slist
                  (sym "begin"
                  :: (body @ [ slist (sym loop :: steps) ]));
              ];
          ]
      in
      compile_expr cs cenv e expansion ~tail
  | Sexp.List (Sexp.Atom_sym "define" :: _) ->
      fail "define only allowed at top level or at the head of a body"
  | _ -> fail "bad special form: %s" (Sexp.to_string x)

(* --- top level --- *)

let compile_toplevel_form cs cenv e (x : Sexp.t) =
  match x with
  | Sexp.List (Sexp.Atom_sym "define" :: Sexp.List (Sexp.Atom_sym name :: params) :: body)
    ->
      let idx = compile_lambda cs cenv ~name params body in
      ignore (emit e (MkClosure idx));
      ignore (emit e (Gset (global_slot cs name)));
      ignore (emit e (Imm Value.vvoid))
  | Sexp.List [ Sexp.Atom_sym "define"; Sexp.Atom_sym name; expr ] ->
      compile_expr cs cenv e expr ~tail:false;
      ignore (emit e (Gset (global_slot cs name)));
      ignore (emit e (Imm Value.vvoid))
  | _ -> compile_expr cs cenv e x ~tail:false

let compile_toplevel cs forms =
  let e = new_emitter () in
  let rec go = function
    | [] -> ignore (emit e (Imm Value.vvoid))
    | [ last ] -> compile_toplevel_form cs [] e last
    | x :: rest ->
        compile_toplevel_form cs [] e x;
        ignore (emit e Pop);
        go rest
  in
  go forms;
  ignore (emit e Ret);
  add_code cs
    { c_name = "toplevel"; c_arity = 0; c_frame_size = 0; c_instrs = finish e;
      c_jitted = false; c_no_capture = -1 }

let compile_expr_code cs x = compile_toplevel cs [ x ]
