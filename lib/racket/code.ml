type prim =
  | Padd | Psub | Pmul | Pdiv | Pquotient | Premainder | Pmodulo
  | Pabs | Pmin | Pmax | Pexpt | Psqrt | Pfloor | Ptruncate | Pround
  | Pexact_to_inexact | Pinexact_to_exact | Psin | Pcos | Patan | Plog | Pexp
  | Plt | Pgt | Ple | Pge | Pnumeq
  | Pzerop | Pevenp | Poddp | Pnegativep | Ppositivep
  | Peq | Peqv | Pequal | Pnot | Pnullp | Ppairp | Pnumberp | Pintegerp
  | Pstringp | Psymbolp | Pprocedurep | Pvectorp | Pbooleanp | Pcharp
  | Pcons | Pcar | Pcdr | Psetcar | Psetcdr | Plist | Plength | Pappend
  | Preverse | Plist_ref | Plist_tail | Pmemq | Pmember | Passq | Passv
  | Pmake_vector | Pvector | Pvector_ref | Pvector_set | Pvector_length
  | Pvector_fill
  | Pstring_length | Pstring_ref | Pstring_set | Pmake_string | Pstring_append
  | Psubstring | Pstring_to_symbol | Psymbol_to_string | Pnumber_to_string
  | Pstring_to_number | Pstring_eq | Pstring_copy | Plist_to_string
  | Pstring_to_list | Pchar_to_integer | Pinteger_to_char | Pchar_eq
  | Preal_to_decimal_string
  | Pbox | Punbox | Pset_box
  | Pdisplay | Pwrite | Pnewline | Pwrite_char | Pwrite_string | Pread_line
  | Pflush_output | Pvoid | Perror | Papply | Pcurrent_seconds | Pcollect_garbage
  | Pplace_spawn | Pplace_send | Pplace_recv | Pplace_wait
  | Popen_input | Popen_output | Pclose_port | Peof_objectp | Pportp | Pread_char

let prim_table =
  [
    ("+", Padd, None);
    ("-", Psub, None);
    ("*", Pmul, None);
    ("/", Pdiv, None);
    ("quotient", Pquotient, Some 2);
    ("remainder", Premainder, Some 2);
    ("modulo", Pmodulo, Some 2);
    ("abs", Pabs, Some 1);
    ("min", Pmin, None);
    ("max", Pmax, None);
    ("expt", Pexpt, Some 2);
    ("sqrt", Psqrt, Some 1);
    ("floor", Pfloor, Some 1);
    ("truncate", Ptruncate, Some 1);
    ("round", Pround, Some 1);
    ("exact->inexact", Pexact_to_inexact, Some 1);
    ("inexact->exact", Pinexact_to_exact, Some 1);
    ("exact", Pinexact_to_exact, Some 1);
    ("sin", Psin, Some 1);
    ("cos", Pcos, Some 1);
    ("atan", Patan, Some 1);
    ("log", Plog, Some 1);
    ("exp", Pexp, Some 1);
    ("<", Plt, None);
    (">", Pgt, None);
    ("<=", Ple, None);
    (">=", Pge, None);
    ("=", Pnumeq, None);
    ("zero?", Pzerop, Some 1);
    ("even?", Pevenp, Some 1);
    ("odd?", Poddp, Some 1);
    ("negative?", Pnegativep, Some 1);
    ("positive?", Ppositivep, Some 1);
    ("eq?", Peq, Some 2);
    ("eqv?", Peqv, Some 2);
    ("equal?", Pequal, Some 2);
    ("not", Pnot, Some 1);
    ("null?", Pnullp, Some 1);
    ("pair?", Ppairp, Some 1);
    ("number?", Pnumberp, Some 1);
    ("integer?", Pintegerp, Some 1);
    ("string?", Pstringp, Some 1);
    ("symbol?", Psymbolp, Some 1);
    ("procedure?", Pprocedurep, Some 1);
    ("vector?", Pvectorp, Some 1);
    ("boolean?", Pbooleanp, Some 1);
    ("char?", Pcharp, Some 1);
    ("cons", Pcons, Some 2);
    ("car", Pcar, Some 1);
    ("cdr", Pcdr, Some 1);
    ("set-car!", Psetcar, Some 2);
    ("set-cdr!", Psetcdr, Some 2);
    ("list", Plist, None);
    ("length", Plength, Some 1);
    ("append", Pappend, None);
    ("reverse", Preverse, Some 1);
    ("list-ref", Plist_ref, Some 2);
    ("list-tail", Plist_tail, Some 2);
    ("memq", Pmemq, Some 2);
    ("member", Pmember, Some 2);
    ("assq", Passq, Some 2);
    ("assv", Passv, Some 2);
    ("make-vector", Pmake_vector, None);
    ("vector", Pvector, None);
    ("vector-ref", Pvector_ref, Some 2);
    ("vector-set!", Pvector_set, Some 3);
    ("vector-length", Pvector_length, Some 1);
    ("vector-fill!", Pvector_fill, Some 2);
    ("string-length", Pstring_length, Some 1);
    ("string-ref", Pstring_ref, Some 2);
    ("string-set!", Pstring_set, Some 3);
    ("make-string", Pmake_string, None);
    ("string-append", Pstring_append, None);
    ("substring", Psubstring, Some 3);
    ("string->symbol", Pstring_to_symbol, Some 1);
    ("symbol->string", Psymbol_to_string, Some 1);
    ("number->string", Pnumber_to_string, Some 1);
    ("string->number", Pstring_to_number, Some 1);
    ("string=?", Pstring_eq, Some 2);
    ("string-copy", Pstring_copy, Some 1);
    ("list->string", Plist_to_string, Some 1);
    ("string->list", Pstring_to_list, Some 1);
    ("char->integer", Pchar_to_integer, Some 1);
    ("integer->char", Pinteger_to_char, Some 1);
    ("char=?", Pchar_eq, Some 2);
    ("real->decimal-string", Preal_to_decimal_string, Some 2);
    ("box", Pbox, Some 1);
    ("unbox", Punbox, Some 1);
    ("set-box!", Pset_box, Some 2);
    ("display", Pdisplay, None);
    ("write", Pwrite, None);
    ("newline", Pnewline, None);
    ("write-char", Pwrite_char, None);
    ("write-string", Pwrite_string, None);
    ("read-line", Pread_line, None);
    ("flush-output", Pflush_output, None);
    ("void", Pvoid, Some 0);
    ("error", Perror, None);
    ("apply", Papply, Some 2);
    ("current-seconds", Pcurrent_seconds, Some 0);
    ("collect-garbage", Pcollect_garbage, Some 0);
    ("place-spawn", Pplace_spawn, Some 1);
    ("place-send", Pplace_send, Some 2);
    ("place-receive", Pplace_recv, Some 1);
    ("place-wait", Pplace_wait, Some 1);
    ("open-input-file", Popen_input, Some 1);
    ("open-output-file", Popen_output, Some 1);
    ("close-port", Pclose_port, Some 1);
    ("close-input-port", Pclose_port, Some 1);
    ("close-output-port", Pclose_port, Some 1);
    ("eof-object?", Peof_objectp, Some 1);
    ("port?", Pportp, Some 1);
    ("read-char", Pread_char, None);
  ]

let prim_map =
  let h = Hashtbl.create 128 in
  List.iter (fun (name, p, arity) -> Hashtbl.replace h name (p, arity)) prim_table;
  h

let prim_of_name name = Hashtbl.find_opt prim_map name

type instr =
  | Imm of Value.v
  | Const of int
  | Lref of int * int
  | Lset of int * int
  | Gref of int
  | Gset of int
  | MkClosure of int
  | Call of int
  | TailCall of int
  | Ret
  | Jmp of int
  | Jif of int
  | Pop
  | Prim of prim * int
  | PrimVarargs of prim
  | PushFrame of int
  | PopFrame

type code = {
  c_name : string;
  c_arity : int;
  c_frame_size : int;
  mutable c_instrs : instr array;
  mutable c_jitted : bool;
  mutable c_no_capture : int;
}

type cstate = {
  gc : Sgc.t;
  syms : (string, int) Hashtbl.t;
  mutable sym_names : string array;
  mutable nsyms : int;
  globals_map : (string, int) Hashtbl.t;
  mutable nglobals : int;
  mutable codes : code array;
  mutable ncodes : int;
  mutable constants : Value.v array;
  mutable nconstants : int;
  mutable gensym : int;
}

let make_cstate gc =
  {
    gc;
    syms = Hashtbl.create 256;
    sym_names = Array.make 256 "";
    nsyms = 0;
    globals_map = Hashtbl.create 256;
    nglobals = 0;
    codes = Array.make 64 { c_name = ""; c_arity = 0; c_frame_size = 0; c_instrs = [||]; c_jitted = false; c_no_capture = -1 };
    ncodes = 0;
    constants = Array.make 64 Value.vundef;
    nconstants = 0;
    gensym = 0;
  }

let intern cs name =
  match Hashtbl.find_opt cs.syms name with
  | Some id -> id
  | None ->
      let id = cs.nsyms in
      cs.nsyms <- id + 1;
      if id >= Array.length cs.sym_names then begin
        let a = Array.make (2 * Array.length cs.sym_names) "" in
        Array.blit cs.sym_names 0 a 0 id;
        cs.sym_names <- a
      end;
      cs.sym_names.(id) <- name;
      Hashtbl.replace cs.syms name id;
      id

let sym_name cs id = cs.sym_names.(id)

let global_slot cs name =
  match Hashtbl.find_opt cs.globals_map name with
  | Some i -> i
  | None ->
      let i = cs.nglobals in
      cs.nglobals <- i + 1;
      Hashtbl.replace cs.globals_map name i;
      i

let find_global cs name = Hashtbl.find_opt cs.globals_map name

let add_code cs code =
  let i = cs.ncodes in
  if i >= Array.length cs.codes then begin
    let a = Array.make (2 * Array.length cs.codes) cs.codes.(0) in
    Array.blit cs.codes 0 a 0 i;
    cs.codes <- a
  end;
  cs.codes.(i) <- code;
  cs.ncodes <- i + 1;
  i

let add_constant cs v =
  let i = cs.nconstants in
  if i >= Array.length cs.constants then begin
    let a = Array.make (2 * Array.length cs.constants) Value.vundef in
    Array.blit cs.constants 0 a 0 i;
    cs.constants <- a
  end;
  cs.constants.(i) <- v;
  cs.nconstants <- i + 1;
  i

let pp_instr ppf = function
  | Imm v -> Format.fprintf ppf "imm %d" v
  | Const i -> Format.fprintf ppf "const %d" i
  | Lref (d, i) -> Format.fprintf ppf "lref %d.%d" d i
  | Lset (d, i) -> Format.fprintf ppf "lset %d.%d" d i
  | Gref i -> Format.fprintf ppf "gref %d" i
  | Gset i -> Format.fprintf ppf "gset %d" i
  | MkClosure i -> Format.fprintf ppf "closure %d" i
  | Call n -> Format.fprintf ppf "call %d" n
  | TailCall n -> Format.fprintf ppf "tailcall %d" n
  | Ret -> Format.fprintf ppf "ret"
  | Jmp i -> Format.fprintf ppf "jmp %d" i
  | Jif i -> Format.fprintf ppf "jif %d" i
  | Pop -> Format.fprintf ppf "pop"
  | Prim (_, n) -> Format.fprintf ppf "prim/%d" n
  | PrimVarargs _ -> Format.fprintf ppf "prim-varargs"
  | PushFrame n -> Format.fprintf ppf "pushframe %d" n
  | PopFrame -> Format.fprintf ppf "popframe"
