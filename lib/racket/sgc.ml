module Env = Mv_guest.Env
module Tracer = Mv_obs.Tracer
open Mv_hw

let words_per_page = Addr.page_size / 8

type seg = {
  s_base : Addr.t;
  s_pages : int;
  s_words : int array;
  s_starts : Bytes.t;  (* per word: 1 = live object header *)
  s_frees : Bytes.t;  (* per word: 1 = free block header (size in s_words) *)
  s_marks : Bytes.t;  (* per word: mark bit for object headers *)
  s_resident : Bytes.t;  (* per page *)
  s_protected : Bytes.t;  (* per page *)
  mutable s_bump : int;  (* first never-allocated word *)
  mutable s_live_words : int;
}

type stats = {
  mutable collections : int;
  mutable bytes_allocated : int;
  mutable segments_mapped : int;
  mutable segments_unmapped : int;
  mutable barrier_faults : int;
  mutable objects_swept : int;
}

type t = {
  env : Env.t;
  segment_pages : int;
  mutable segs : seg list;
  page_map : (int, seg) Hashtbl.t;
  flists : (int, (seg * int) list ref) Hashtbl.t;  (* block words -> blocks *)
  mutable cur : seg;
  mutable bytes_since_gc : int;
  mutable threshold : int;
  base_threshold : int;
  protect_after_gc : bool;
  mutable roots : (int -> unit) -> unit;
  scannable : bool array;  (* by tag *)
  st : stats;
  mutable live_bytes : int;
  mutable dirty : int;
  mutable in_gc : bool;
  mutable barrier_installed : bool;
}

(* --- segments --- *)

let map_segment t pages =
  let base = t.env.Env.mmap ~len:(pages * Addr.page_size) ~prot:Mv_ros.Mm.prot_rw ~kind:"gc-heap" in
  let seg =
    {
      s_base = base;
      s_pages = pages;
      s_words = Array.make (pages * words_per_page) 0;
      s_starts = Bytes.make (pages * words_per_page) '\000';
      s_frees = Bytes.make (pages * words_per_page) '\000';
      s_marks = Bytes.make (pages * words_per_page) '\000';
      s_resident = Bytes.make pages '\000';
      s_protected = Bytes.make pages '\000';
      s_bump = 0;
      s_live_words = 0;
    }
  in
  t.segs <- seg :: t.segs;
  for i = 0 to pages - 1 do
    Hashtbl.replace t.page_map (Addr.page_of base + i) seg
  done;
  t.st.segments_mapped <- t.st.segments_mapped + 1;
  seg

let unmap_segment t seg =
  t.env.Env.munmap ~addr:seg.s_base ~len:(seg.s_pages * Addr.page_size);
  for i = 0 to seg.s_pages - 1 do
    Hashtbl.remove t.page_map (Addr.page_of seg.s_base + i)
  done;
  t.segs <- List.filter (fun s -> s != seg) t.segs;
  t.st.segments_unmapped <- t.st.segments_unmapped + 1

(* 512 pages = 2 MiB: exactly one huge-page chunk, so heap segments promote
   to 2M leaves under the transparent-huge-page path in Mm. *)
let create env ?(segment_pages = 512) ?(threshold = 4 * 1024 * 1024) ?(protect_after_gc = true)
    () =
  let st =
    {
      collections = 0;
      bytes_allocated = 0;
      segments_mapped = 0;
      segments_unmapped = 0;
      barrier_faults = 0;
      objects_swept = 0;
    }
  in
  let t =
    {
      env;
      segment_pages;
      segs = [];
      page_map = Hashtbl.create 256;
      flists = Hashtbl.create 32;
      cur = Obj.magic 0;  (* set below *)
      bytes_since_gc = 0;
      threshold;
      base_threshold = threshold;
      protect_after_gc;
      roots = (fun _ -> ());
      scannable = Array.make 256 false;
      st;
      live_bytes = 0;
      dirty = 0;
      in_gc = false;
      barrier_installed = false;
    }
  in
  let seg = map_segment t segment_pages in
  t.cur <- seg;
  t

let set_roots t fn = t.roots <- fn
let set_scannable t ~tag flag = t.scannable.(tag) <- flag

(* --- access --- *)

let locate t addr =
  match Hashtbl.find_opt t.page_map (Addr.page_of addr) with
  | Some seg -> (seg, (addr - seg.s_base) / 8)
  | None -> invalid_arg (Printf.sprintf "Sgc: address %x outside heap" addr)

let page_rel _seg widx = widx / words_per_page

(* Make the page holding word [widx] writable, paying the appropriate
   fault: demand paging on first touch, a write-barrier SIGSEGV when the
   page was protected after a collection. *)
let ensure_writable t seg widx =
  let pr = page_rel seg widx in
  if Bytes.get seg.s_resident pr = '\000' || Bytes.get seg.s_protected pr = '\001' then begin
    t.env.Env.store (seg.s_base + (widx * 8));
    Bytes.set seg.s_resident pr '\001';
    (* If the page was protected, the SIGSEGV handler has unprotected it
       and counted the barrier fault. *)
    Bytes.set seg.s_protected pr '\000'
  end

let write_word t addr v =
  let seg, widx = locate t addr in
  ensure_writable t seg widx;
  seg.s_words.(widx) <- v

let read_word t addr =
  let seg, widx = locate t addr in
  let pr = page_rel seg widx in
  if Bytes.get seg.s_resident pr = '\000' then begin
    t.env.Env.touch (seg.s_base + (widx * 8));
    Bytes.set seg.s_resident pr '\001'
  end;
  seg.s_words.(widx)

let header_of t addr =
  let seg, widx = locate t addr in
  seg.s_words.(widx)

let header_tag t addr = header_of t addr land 0xFF
let header_words t addr = header_of t addr lsr 8

let is_heap_pointer t v =
  v land 7 = 0 && v > 0
  &&
  match Hashtbl.find_opt t.page_map (Addr.page_of v) with
  | Some seg ->
      let widx = (v - seg.s_base) / 8 in
      widx < seg.s_bump && Bytes.get seg.s_starts widx = '\001'
  | None -> false

(* --- write barrier --- *)

let install_barrier t =
  t.env.Env.sigaction Mv_ros.Signal.Sigsegv
    (Mv_ros.Signal.Handler
       (fun info ->
         let addr = info.Mv_ros.Signal.si_addr in
         match Hashtbl.find_opt t.page_map (Addr.page_of addr) with
         | Some seg ->
             let pr = Addr.page_of addr - Addr.page_of seg.s_base in
             if Bytes.get seg.s_protected pr = '\001' then begin
               t.env.Env.mprotect ~addr:(Addr.align_down addr) ~len:Addr.page_size
                 ~prot:Mv_ros.Mm.prot_rw;
               Bytes.set seg.s_protected pr '\000';
               t.st.barrier_faults <- t.st.barrier_faults + 1;
               t.dirty <- t.dirty + 1
             end
             else failwith "Sgc: SIGSEGV on unprotected heap page"
         | None -> failwith (Printf.sprintf "Sgc: segfault outside heap at %x" addr)));
  (* The runtime briefly masks SIGSEGV while installing (glibc does the
     equivalent dance; visible as rt_sigprocmask in Figure 11). *)
  t.env.Env.sigprocmask ~block:true Mv_ros.Signal.Sigsegv;
  t.env.Env.sigprocmask ~block:false Mv_ros.Signal.Sigsegv;
  t.barrier_installed <- true

(* --- collection --- *)

let take_free t total =
  match Hashtbl.find_opt t.flists total with
  | Some ({ contents = (seg, widx) :: rest } as cell) ->
      cell := rest;
      Some (seg, widx)
  | Some _ | None -> None

let add_free t seg widx total =
  Bytes.set seg.s_frees widx '\001';
  seg.s_words.(widx) <- total;
  match Hashtbl.find_opt t.flists total with
  | Some cell -> cell := (seg, widx) :: !cell
  | None -> Hashtbl.replace t.flists total (ref [ (seg, widx) ])

let mark_phase t =
  let work = ref 0 in
  let stack = Stack.create () in
  let visit v =
    if is_heap_pointer t v then begin
      let seg, widx = locate t v in
      if Bytes.get seg.s_marks widx = '\000' then begin
        Bytes.set seg.s_marks widx '\001';
        Stack.push (seg, widx) stack
      end
    end
  in
  t.roots visit;
  while not (Stack.is_empty stack) do
    let seg, widx = Stack.pop stack in
    let header = seg.s_words.(widx) in
    let tag = header land 0xFF and words = header lsr 8 in
    work := !work + 12 + words;
    if t.scannable.(tag) then
      for i = 1 to words do
        visit seg.s_words.(widx + i)
      done
  done;
  t.env.Env.work !work

let sweep_phase t =
  Hashtbl.reset t.flists;
  let work = ref 0 in
  let live_words_total = ref 0 in
  let dead_segs = ref [] in
  List.iter
    (fun seg ->
      seg.s_live_words <- 0;
      let widx = ref 0 in
      let pending_free_start = ref (-1) in
      let flush_free upto =
        if !pending_free_start >= 0 then begin
          add_free t seg !pending_free_start (upto - !pending_free_start);
          pending_free_start := -1
        end
      in
      while !widx < seg.s_bump do
        let i = !widx in
        if Bytes.get seg.s_starts i = '\001' then begin
          let header = seg.s_words.(i) in
          let total = 1 + (header lsr 8) in
          t.st.objects_swept <- t.st.objects_swept + 1;
          work := !work + 4;
          if Bytes.get seg.s_marks i = '\001' then begin
            Bytes.set seg.s_marks i '\000';
            flush_free i;
            seg.s_live_words <- seg.s_live_words + total
          end
          else begin
            (* Dead: fold into the pending free run. *)
            Bytes.set seg.s_starts i '\000';
            if !pending_free_start < 0 then pending_free_start := i
          end;
          widx := i + total
        end
        else if Bytes.get seg.s_frees i = '\001' then begin
          let total = seg.s_words.(i) in
          Bytes.set seg.s_frees i '\000';
          if !pending_free_start < 0 then pending_free_start := i;
          widx := i + total
        end
        else begin
          (* Hole created by a bump-trim; treat as free space. *)
          if !pending_free_start < 0 then pending_free_start := i;
          widx := i + 1
        end
      done;
      (* Trailing free run: give it back to the bump pointer. *)
      if !pending_free_start >= 0 then seg.s_bump <- !pending_free_start;
      pending_free_start := -1;
      live_words_total := !live_words_total + seg.s_live_words;
      if seg.s_live_words = 0 && seg != t.cur then dead_segs := seg :: !dead_segs)
    t.segs;
  t.env.Env.work !work;
  (* Empty segments go back to the OS: the frequent small munmaps of
     Figure 12. *)
  List.iter
    (fun seg ->
      (* Drop free blocks that point into the doomed segment. *)
      Hashtbl.iter
        (fun _ cell -> cell := List.filter (fun (s, _) -> s != seg) !cell)
        t.flists;
      unmap_segment t seg)
    !dead_segs;
  t.live_bytes <- !live_words_total * 8

let protect_phase t =
  List.iter
    (fun seg ->
      let occupied_pages = (seg.s_bump + words_per_page - 1) / words_per_page in
      let resident_occupied = min occupied_pages seg.s_pages in
      if resident_occupied > 0 && seg.s_live_words > 0 then begin
        t.env.Env.mprotect ~addr:seg.s_base ~len:(resident_occupied * Addr.page_size)
          ~prot:Mv_ros.Mm.prot_r;
        for p = 0 to resident_occupied - 1 do
          if Bytes.get seg.s_resident p = '\001' then Bytes.set seg.s_protected p '\001'
        done
      end)
    t.segs

let obs t = t.env.Env.kernel.Mv_ros.Kernel.machine.Mv_engine.Machine.obs

let collect t =
  if not t.in_gc then begin
    t.in_gc <- true;
    Tracer.with_span (obs t) ~name:"gc:collect" ~cat:"sgc" (fun () ->
        t.st.collections <- t.st.collections + 1;
        t.env.Env.work 2_500;
        Tracer.with_span (obs t) ~name:"gc:mark" ~cat:"sgc" (fun () -> mark_phase t);
        Tracer.with_span (obs t) ~name:"gc:sweep" ~cat:"sgc" (fun () -> sweep_phase t);
        (* Write-protection is only safe once the SIGSEGV handler exists. *)
        if t.protect_after_gc && t.barrier_installed then
          Tracer.with_span (obs t) ~name:"gc:protect" ~cat:"sgc" (fun () ->
              protect_phase t);
        t.bytes_since_gc <- 0;
        t.dirty <- 0;
        t.threshold <- max t.base_threshold t.live_bytes);
    t.in_gc <- false
  end

(* --- allocation --- *)

let zero_payload seg widx total =
  Array.fill seg.s_words widx total 0

let alloc t ~tag ~words =
  if t.bytes_since_gc >= t.threshold then collect t;
  let total = words + 1 in
  t.bytes_since_gc <- t.bytes_since_gc + (total * 8);
  t.st.bytes_allocated <- t.st.bytes_allocated + (total * 8);
  t.env.Env.work 22;
  let seg, widx =
    match take_free t total with
    | Some (seg, widx) ->
        Bytes.set seg.s_frees widx '\000';
        (seg, widx)
    | None ->
        let seg =
          if t.cur.s_bump + total <= Array.length t.cur.s_words then t.cur
          else begin
            let pages = max t.segment_pages ((total * 8 / Addr.page_size) + 1) in
            let seg = map_segment t pages in
            t.cur <- seg;
            seg
          end
        in
        let widx = seg.s_bump in
        seg.s_bump <- seg.s_bump + total;
        (seg, widx)
  in
  (* Touch every page the object spans (demand paging / write barrier). *)
  let first_page = page_rel seg widx and last_page = page_rel seg (widx + total - 1) in
  for p = first_page to last_page do
    ensure_writable t seg (p * words_per_page + if p = first_page then widx mod words_per_page else 0)
  done;
  zero_payload seg widx total;
  seg.s_words.(widx) <- (words lsl 8) lor tag;
  Bytes.set seg.s_starts widx '\001';
  seg.s_base + (widx * 8)

let stats t = t.st
let live_bytes t = t.live_bytes
let mapped_bytes t = List.fold_left (fun acc s -> acc + (s.s_pages * Addr.page_size)) 0 t.segs
let dirty_pages t = t.dirty

let sample_metrics t m =
  let set ~ns name v =
    Mv_obs.Metrics.set_counter (Mv_obs.Metrics.counter m ~ns name) v
  in
  set ~ns:"sgc" "collections" t.st.collections;
  set ~ns:"sgc" "bytes_allocated" t.st.bytes_allocated;
  set ~ns:"sgc" "segments_mapped" t.st.segments_mapped;
  set ~ns:"sgc" "segments_unmapped" t.st.segments_unmapped;
  set ~ns:"sgc" "barrier_faults" t.st.barrier_faults;
  set ~ns:"sgc" "objects_swept" t.st.objects_swept;
  set ~ns:"sgc" "live_bytes" t.live_bytes;
  set ~ns:"sgc" "mapped_bytes" (mapped_bytes t)
