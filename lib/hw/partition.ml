type kind = Ros | Hrt

type id = int

type t = {
  p_id : id;
  p_kind : kind;
  mutable p_cores : int list;  (* ascending core ids; mutated by lending *)
}

let ros_id = 0

let make ~id ~kind cores = { p_id = id; p_kind = kind; p_cores = cores }

let id p = p.p_id
let kind p = p.p_kind
let cores p = p.p_cores
let ncores p = List.length p.p_cores
let is_hrt p = p.p_kind = Hrt

let add_core p c =
  if not (List.mem c p.p_cores) then
    p.p_cores <- List.sort compare (c :: p.p_cores)

let remove_core p c = p.p_cores <- List.filter (fun x -> x <> c) p.p_cores

let kind_to_string = function Ros -> "ros" | Hrt -> "hrt"

let pp ppf p =
  Format.fprintf ppf "partition %d (%s): cores %s" p.p_id (kind_to_string p.p_kind)
    (String.concat "," (List.map string_of_int p.p_cores))
