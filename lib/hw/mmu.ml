type access = Read | Write

type fault_reason = Not_present | Protection

type outcome =
  | Hit of Page_table.pte * int
  | Silent_write of Page_table.pte * int
  | Fault of fault_reason * int

let check_protection (cpu : Cpu.t) (pte : Page_table.pte) access cost =
  let writable = Page_table.has pte.pte_flags Page_table.f_writable in
  match access with
  | Read -> Hit (pte, cost)
  | Write ->
      if writable then Hit (pte, cost)
      else if cpu.ring = 0 && not cpu.cr0_wp then Silent_write (pte, cost)
      else Fault (Protection, cost)

let access (costs : Costs.t) (cpu : Cpu.t) root addr kind =
  assert (cpu.cr3 = Page_table.id root);
  let page = Addr.page_of addr in
  let walk_and_fill () =
    let entry, levels = Page_table.walk_sized root addr in
    (* The paging-structure cache lets the walk start below the PML4: a
       cached PDE leaves 1 level to read, a cached PDPTE leaves 2. *)
    let skip = Walk_cache.skip cpu.pwc addr in
    let paid = max 1 (levels - skip) in
    let cost =
      (paid * costs.page_walk_level) + if skip > 0 then costs.walk_cache_hit else 0
    in
    Walk_cache.note cpu.pwc addr ~levels;
    Tlb.note_walk cpu.tlb ~levels:paid ~cycles:cost;
    match entry with
    | None -> Fault (Not_present, cost)
    | Some (pte, size) ->
        if Page_table.has pte.pte_flags Page_table.f_present then begin
          Tlb.fill ~size cpu.tlb ~page pte;
          Tlb.note_fill cpu.tlb ~cycles:costs.tlb_fill;
          check_protection cpu pte kind (cost + costs.tlb_fill)
        end
        else Fault (Not_present, cost)
  in
  match Tlb.lookup cpu.tlb ~page with
  | Some pte when Page_table.has pte.pte_flags Page_table.f_present ->
      (* A genuine TLB hit is free: only real walks and fills pay. *)
      check_protection cpu pte kind 0
  | Some _ ->
      (* Stale cached entry for an unmapped page: hardware would not keep
         it, so drop and retry via the walk path. *)
      Tlb.invalidate_page cpu.tlb ~page;
      walk_and_fill ()
  | None -> walk_and_fill ()
