type flags = int

let f_present = 1
let f_writable = 2
let f_user = 4
let f_nx = 8
let f_cow = 16
let has flags bit = flags land bit <> 0

type pte = { mutable frame : int; mutable pte_flags : flags }

type size = S4k | S2m | S1g

let pages_of_size = function
  | S4k -> 1
  | S2m -> Addr.pages_per_2m
  | S1g -> Addr.pages_per_1g

let pp_size ppf s =
  Format.pp_print_string ppf (match s with S4k -> "4K" | S2m -> "2M" | S1g -> "1G")

(* Interior nodes hold either further tables or leaf entries, depending on
   the level.  Level numbering: 4 = PML4 ... 1 = PT.  A [Page] in a PT slot
   is a 4 KiB leaf; a [Page] in a PD slot is a 2 MiB large page; a [Page] in
   a PDPT slot is a 1 GiB large page (PS bit set, in real hardware). *)
type node = { slots : slot array }
and slot = Empty | Table of node | Page of pte

type t = { id : int; pml4 : node; mutable lower_gen : int }

(* Process-wide allocator so concurrent machines on different domains
   never mint the same id.  Ids are compared only for equality (cr3 tags,
   shadow-root membership) and never rendered into traces or metrics, so
   the values themselves carry no determinism obligation. *)
let next_id = Atomic.make 0

let fresh_node () = { slots = Array.make 512 Empty }

let create () =
  { id = 1 + Atomic.fetch_and_add next_id 1; pml4 = fresh_node (); lower_gen = 0 }

let id t = t.id

let indices addr =
  (Addr.pml4_index addr, Addr.pdpt_index addr, Addr.pd_index addr, Addr.pt_index addr)

let get_table node i =
  match node.slots.(i) with
  | Table n -> Some n
  | Empty -> None
  | Page _ -> invalid_arg "Page_table: leaf at interior level"

let get_or_make_table node i =
  match node.slots.(i) with
  | Table n -> (n, false)
  | Empty ->
      let n = fresh_node () in
      node.slots.(i) <- Table n;
      (n, true)
  | Page _ -> invalid_arg "Page_table: leaf at interior level"

(* Splitting a huge leaf replaces it by a full table of next-size-down
   children covering the same range: child [i] inherits the parent's flags
   and a frame offset matching its position (as hardware sees a contiguous
   physical large page). *)
let split_1g_slot pdpt i3 pte =
  let pd = fresh_node () in
  for i = 0 to 511 do
    pd.slots.(i) <- Page { frame = pte.frame + (i * Addr.pages_per_2m); pte_flags = pte.pte_flags }
  done;
  pdpt.slots.(i3) <- Table pd;
  pd

let split_2m_slot pd i2 pte =
  let pt = fresh_node () in
  for i = 0 to 511 do
    pt.slots.(i) <- Page { frame = pte.frame + i; pte_flags = pte.pte_flags }
  done;
  pd.slots.(i2) <- Table pt;
  pt

(* Descend to the PD for [addr], splitting a covering 1G leaf on the way.
   Returns [None] if the PDPT slot is empty. *)
let pd_of_split pdpt i3 =
  match pdpt.slots.(i3) with
  | Table n -> Some n
  | Page pte -> Some (split_1g_slot pdpt i3 pte)
  | Empty -> None

let pt_of_split pd i2 =
  match pd.slots.(i2) with
  | Table n -> Some n
  | Page pte -> Some (split_2m_slot pd i2 pte)
  | Empty -> None

let map t addr ~frame ~flags =
  if not (Addr.is_page_aligned addr) then invalid_arg "Page_table.map: unaligned";
  let i4, i3, i2, i1 = indices addr in
  let pdpt, created4 = get_or_make_table t.pml4 i4 in
  if created4 && i4 < 256 then t.lower_gen <- t.lower_gen + 1;
  let pd =
    match pd_of_split pdpt i3 with
    | Some n -> n
    | None ->
        let n = fresh_node () in
        pdpt.slots.(i3) <- Table n;
        n
  in
  let pt =
    match pt_of_split pd i2 with
    | Some n -> n
    | None ->
        let n = fresh_node () in
        pd.slots.(i2) <- Table n;
        n
  in
  match pt.slots.(i1) with
  | Page pte ->
      pte.frame <- frame;
      pte.pte_flags <- flags
  | Empty | Table _ -> pt.slots.(i1) <- Page { frame; pte_flags = flags }

let map_size t addr ~size ~frame ~flags =
  match size with
  | S4k -> map t addr ~frame ~flags
  | S2m ->
      if not (Addr.is_2m_aligned addr) then invalid_arg "Page_table.map_size: 2M-unaligned";
      let i4, i3, i2, _ = indices addr in
      let pdpt, created4 = get_or_make_table t.pml4 i4 in
      if created4 && i4 < 256 then t.lower_gen <- t.lower_gen + 1;
      let pd =
        match pd_of_split pdpt i3 with
        | Some n -> n
        | None ->
            let n = fresh_node () in
            pdpt.slots.(i3) <- Table n;
            n
      in
      (* Replaces any existing 4K sub-tree under this PD slot. *)
      pd.slots.(i2) <- Page { frame; pte_flags = flags }
  | S1g ->
      if not (Addr.is_1g_aligned addr) then invalid_arg "Page_table.map_size: 1G-unaligned";
      let i4, i3, _, _ = indices addr in
      let pdpt, created4 = get_or_make_table t.pml4 i4 in
      if created4 && i4 < 256 then t.lower_gen <- t.lower_gen + 1;
      pdpt.slots.(i3) <- Page { frame; pte_flags = flags }

let walk_sized t addr =
  let i4, i3, i2, i1 = indices addr in
  match get_table t.pml4 i4 with
  | None -> (None, 1)
  | Some pdpt -> (
      match pdpt.slots.(i3) with
      | Empty -> (None, 2)
      | Page pte -> (Some (pte, S1g), 2)
      | Table pd -> (
          match pd.slots.(i2) with
          | Empty -> (None, 3)
          | Page pte -> (Some (pte, S2m), 3)
          | Table pt -> (
              match pt.slots.(i1) with
              | Page pte -> (Some (pte, S4k), 4)
              | Empty | Table _ -> (None, 4))))

let walk t addr =
  match walk_sized t addr with
  | Some (pte, _), levels -> (Some pte, levels)
  | None, levels -> (None, levels)

let lookup t addr = fst (walk t addr)

let leaf_size t addr =
  match walk_sized t addr with Some (_, s), _ -> Some s | None, _ -> None

let unmap t addr =
  let i4, i3, i2, i1 = indices addr in
  match get_table t.pml4 i4 with
  | None -> false
  | Some pdpt -> (
      match pd_of_split pdpt i3 with
      | None -> false
      | Some pd -> (
          match pt_of_split pd i2 with
          | None -> false
          | Some pt -> (
              match pt.slots.(i1) with
              | Page _ ->
                  pt.slots.(i1) <- Empty;
                  true
              | Empty | Table _ -> false)))

let unmap_leaf t addr =
  let i4, i3, i2, i1 = indices addr in
  match get_table t.pml4 i4 with
  | None -> None
  | Some pdpt -> (
      match pdpt.slots.(i3) with
      | Empty -> None
      | Page _ ->
          pdpt.slots.(i3) <- Empty;
          Some S1g
      | Table pd -> (
          match pd.slots.(i2) with
          | Empty -> None
          | Page _ ->
              pd.slots.(i2) <- Empty;
              Some S2m
          | Table pt -> (
              match pt.slots.(i1) with
              | Page _ ->
                  pt.slots.(i1) <- Empty;
                  Some S4k
              | Empty | Table _ -> None)))

let protect t addr ~flags =
  let i4, i3, i2, i1 = indices addr in
  match get_table t.pml4 i4 with
  | None -> false
  | Some pdpt -> (
      match pd_of_split pdpt i3 with
      | None -> false
      | Some pd -> (
          match pt_of_split pd i2 with
          | None -> false
          | Some pt -> (
              match pt.slots.(i1) with
              | Page pte ->
                  pte.pte_flags <- flags;
                  true
              | Empty | Table _ -> false)))

let protect_leaf t addr ~flags =
  match walk_sized t addr with
  | Some (pte, s), _ ->
      pte.pte_flags <- flags;
      Some s
  | None, _ -> None

let pml4_slot_present t i =
  match t.pml4.slots.(i) with Empty -> false | Table _ | Page _ -> true

let copy_lower_half ~src ~dst =
  let copied = ref 0 in
  for i = 0 to 255 do
    (match (src.pml4.slots.(i), dst.pml4.slots.(i)) with
    | Empty, Empty -> ()
    | s, _ ->
        if s <> Empty then incr copied;
        dst.pml4.slots.(i) <- s);
    ()
  done;
  dst.lower_gen <- src.lower_gen;
  !copied

let clear_lower_half t =
  for i = 0 to 255 do
    if t.pml4.slots.(i) <> Empty then begin
      t.pml4.slots.(i) <- Empty;
      t.lower_gen <- t.lower_gen + 1
    end
  done

let lower_half_generation t = t.lower_gen

let iter_leaves t f =
  let visit_pt base_pt pt =
    Array.iteri
      (fun i1 slot ->
        match slot with
        | Page pte -> f (base_pt lor (i1 lsl 12)) S4k pte
        | Empty | Table _ -> ())
      pt.slots
  in
  let visit_pd base_pd pd =
    Array.iteri
      (fun i2 slot ->
        match slot with
        | Table pt -> visit_pt (base_pd lor (i2 lsl 21)) pt
        | Page pte -> f (base_pd lor (i2 lsl 21)) S2m pte
        | Empty -> ())
      pd.slots
  in
  let visit_pdpt base_pdpt pdpt =
    Array.iteri
      (fun i3 slot ->
        match slot with
        | Table pd -> visit_pd (base_pdpt lor (i3 lsl 30)) pd
        | Page pte -> f (base_pdpt lor (i3 lsl 30)) S1g pte
        | Empty -> ())
      pdpt.slots
  in
  Array.iteri
    (fun i4 slot ->
      match slot with
      | Table pdpt -> visit_pdpt (i4 lsl 39) pdpt
      | Empty | Page _ -> ())
    t.pml4.slots

let iter_mappings t f = iter_leaves t (fun addr _size pte -> f addr pte)

let count_mapped t =
  let n = ref 0 in
  iter_mappings t (fun _ _ -> incr n);
  !n

let count_huge t =
  let n2m = ref 0 and n1g = ref 0 in
  iter_leaves t (fun _ size _ ->
      match size with S2m -> incr n2m | S1g -> incr n1g | S4k -> ());
  (!n2m, !n1g)
