type role = Ros_core | Hrt_core

type core = {
  core_id : int;
  socket : int;
  mutable role : role;
  mutable part : Partition.id;  (* current owner; changes under lending *)
  home : Partition.id;  (* partition the core was carved into at creation *)
}

type t = {
  sockets : int;
  cores_per_socket : int;
  cores : core array;
  parts : Partition.t array;  (* index = partition id; slot 0 is the ROS *)
}

let spec_string spec =
  "[" ^ String.concat "," (List.map string_of_int spec) ^ "]"

let create ?(sockets = 2) ?(cores_per_socket = 4) ?hrt_parts ?(hrt_cores = 1) () =
  let n = sockets * cores_per_socket in
  (* The legacy single-HRT count is sugar for a one-partition spec. *)
  let spec =
    match hrt_parts with
    | Some l -> l
    | None -> if hrt_cores = 0 then [] else [ hrt_cores ]
  in
  List.iteri
    (fun i size ->
      if size <= 0 then
        invalid_arg
          (Printf.sprintf
             "Topology.create: partition %d of spec %s must have at least one core"
             (i + 1) (spec_string spec)))
    spec;
  let total = List.fold_left ( + ) 0 spec in
  if total >= n then
    invalid_arg
      (Printf.sprintf
         "Topology.create: partition spec %s leaves no ROS core on the %dx%d machine"
         (spec_string spec) sockets cores_per_socket);
  (* HRT partitions are carved from the top of the core range, in spec
     order: partition 1 gets the lowest of the reserved cores, the last
     partition the highest.  With a single partition this reproduces the
     historical "last N cores" layout exactly. *)
  let base = n - total in
  let bounds =
    (* partition id -> (first core, size); id 0 is the ROS remainder *)
    let acc = ref base in
    Array.of_list
      ((0, base)
      :: List.map
           (fun size ->
             let first = !acc in
             acc := !acc + size;
             (first, size))
           spec)
  in
  let part_of_core i =
    if i < base then 0
    else begin
      let pid = ref 0 in
      Array.iteri
        (fun p (first, size) -> if p > 0 && i >= first && i < first + size then pid := p)
        bounds;
      !pid
    end
  in
  let cores =
    Array.init n (fun i ->
        let part = part_of_core i in
        let role = if part = 0 then Ros_core else Hrt_core in
        { core_id = i; socket = i / cores_per_socket; role; part; home = part })
  in
  let parts =
    Array.mapi
      (fun pid (first, size) ->
        let kind = if pid = 0 then Partition.Ros else Partition.Hrt in
        let cs =
          if pid = 0 then
            (* The ROS keeps every core outside the reserved range (core 0,
               where the control process runs, is always among them). *)
            Array.to_list cores
            |> List.filter (fun c -> c.part = 0)
            |> List.map (fun c -> c.core_id)
          else List.init size (fun k -> first + k)
        in
        Partition.make ~id:pid ~kind cs)
      bounds
  in
  { sockets; cores_per_socket; cores; parts }

let ncores t = Array.length t.cores
let nsockets t = t.sockets
let cores_per_socket t = t.cores_per_socket
let core t i = t.cores.(i)
let same_socket t a b = t.cores.(a).socket = t.cores.(b).socket

(* NUMA distance in hops.  Sockets sit on a line interconnect (HyperTransport
   daisy chain on the reference Opteron), so the distance between two cores
   is the number of socket hops between them: 0 on the same socket, 1 for
   adjacent sockets.  At the default 2-socket geometry this reduces to the
   old [same_socket] boolean. *)
let socket_distance _t a b = abs (a - b)
let distance t a b = socket_distance t t.cores.(a).socket t.cores.(b).socket

let socket_of t i = t.cores.(i).socket

let nparts t = Array.length t.parts

let partition t pid =
  if pid < 0 || pid >= Array.length t.parts then
    invalid_arg (Printf.sprintf "Topology.partition: no partition %d" pid);
  t.parts.(pid)

let partitions t = Array.to_list t.parts
let hrt_partitions t = List.filter Partition.is_hrt (partitions t)
let cores_of t pid = Partition.cores (partition t pid)
let partition_of t i = t.cores.(i).part
let home_of t i = t.cores.(i).home

let ros_cores t = cores_of t Partition.ros_id
let role t i = t.cores.(i).role

let reassign t ~core pid =
  let dst = partition t pid in
  let c = t.cores.(core) in
  if c.part <> pid then begin
    Partition.remove_core t.parts.(c.part) core;
    Partition.add_core dst core;
    c.part <- pid;
    c.role <- (if Partition.is_hrt dst then Hrt_core else Ros_core)
  end

let pp ppf t =
  Format.fprintf ppf "%d sockets x %d cores; %a" t.sockets t.cores_per_socket
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Partition.pp)
    (partitions t)
