type role = Ros_core | Hrt_core

type core = { core_id : int; socket : int; mutable role : role }

type t = { sockets : int; cores_per_socket : int; cores : core array }

let create ?(sockets = 2) ?(cores_per_socket = 4) ~hrt_cores () =
  let n = sockets * cores_per_socket in
  if hrt_cores < 0 || hrt_cores >= n then
    invalid_arg "Topology.create: hrt_cores must leave at least one ROS core";
  let cores =
    Array.init n (fun i ->
        let role = if i >= n - hrt_cores then Hrt_core else Ros_core in
        { core_id = i; socket = i / cores_per_socket; role })
  in
  { sockets; cores_per_socket; cores }

let ncores t = Array.length t.cores
let nsockets t = t.sockets
let cores_per_socket t = t.cores_per_socket
let core t i = t.cores.(i)
let same_socket t a b = t.cores.(a).socket = t.cores.(b).socket

(* NUMA distance in hops.  Sockets sit on a line interconnect (HyperTransport
   daisy chain on the reference Opteron), so the distance between two cores
   is the number of socket hops between them: 0 on the same socket, 1 for
   adjacent sockets.  At the default 2-socket geometry this reduces to the
   old [same_socket] boolean. *)
let socket_distance _t a b = abs (a - b)
let distance t a b = socket_distance t t.cores.(a).socket t.cores.(b).socket

let socket_of t i = t.cores.(i).socket

let cores_with t role =
  Array.to_list t.cores
  |> List.filter (fun c -> c.role = role)
  |> List.map (fun c -> c.core_id)

let ros_cores t = cores_with t Ros_core
let hrt_cores t = cores_with t Hrt_core
let role t i = t.cores.(i).role

let first_hrt_core t =
  match hrt_cores t with
  | c :: _ -> c
  | [] -> invalid_arg "Topology.first_hrt_core: no HRT cores"

let pp ppf t =
  Format.fprintf ppf "%d sockets x %d cores; ROS=%s HRT=%s" t.sockets
    t.cores_per_socket
    (String.concat "," (List.map string_of_int (ros_cores t)))
    (String.concat "," (List.map string_of_int (hrt_cores t)))
