(** First-class partition handles.

    A partition is a named share of the machine's cores running one
    personality: partition 0 is always the ROS (the Linux-like kernel);
    partitions 1..N are HRT partitions, each hosting its own AeroKernel
    instance.  The handle owns the {e current} core set — dynamic core
    lending ({!Mv_hvm.Hvm.lend_core}) mutates it at runtime — while the
    topology records each core's home partition for reclaim. *)

type kind = Ros | Hrt

type id = int
(** Partition id: 0 is the ROS partition; HRT partitions are 1..N. *)

type t

val ros_id : id
(** The ROS partition's id (0). *)

val make : id:id -> kind:kind -> int list -> t
(** [make ~id ~kind cores] builds a handle over [cores] (ascending ids). *)

val id : t -> id
val kind : t -> kind
val is_hrt : t -> bool

val cores : t -> int list
(** The partition's current cores, ascending.  May shrink or grow at
    runtime under core lending; never shared with another partition. *)

val ncores : t -> int

val add_core : t -> int -> unit
(** Insert a core (keeps the list sorted; no-op if already present).
    Callers go through {!Topology.reassign}, which keeps the core-to-
    partition map and the handles consistent. *)

val remove_core : t -> int -> unit

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
