(** Core and socket topology of the simulated machine.

    The reference machine has two sockets with four cores each (AMD Opteron
    4122).  Multiverse partitions the cores of one HVM virtual machine into
    a ROS partition and an HRT partition; event-channel latency depends on
    whether the communicating cores share a socket. *)

type role = Ros_core | Hrt_core

type core = { core_id : int; socket : int; mutable role : role }

type t

val create : ?sockets:int -> ?cores_per_socket:int -> hrt_cores:int -> unit -> t
(** [create ~hrt_cores ()] builds the machine and assigns the {e last}
    [hrt_cores] cores to the HRT partition (the ROS keeps core 0, where the
    control process runs).  Default geometry is 2 sockets x 4 cores.
    Raises [Invalid_argument] if [hrt_cores] leaves no ROS core or exceeds
    the machine. *)

val ncores : t -> int
val nsockets : t -> int
val cores_per_socket : t -> int
val core : t -> int -> core
val same_socket : t -> int -> int -> bool

val distance : t -> int -> int -> int
(** [distance t a b] is the NUMA distance between cores [a] and [b] in
    socket hops: 0 on the same socket, 1 for adjacent sockets, and so on.
    Sockets form a line interconnect, so the hop count is the difference of
    the socket indices.  At the default two-socket geometry this carries
    exactly the information of {!same_socket}. *)

val socket_distance : t -> int -> int -> int
(** Distance in hops between two {e sockets} (the matrix underlying
    {!distance}). *)

(** [socket_of t i] is the socket index of core [i]. *)
val socket_of : t -> int -> int
val ros_cores : t -> int list
val hrt_cores : t -> int list
val role : t -> int -> role
val first_hrt_core : t -> int
val pp : Format.formatter -> t -> unit
