(** Core and socket topology of the simulated machine.

    The reference machine has two sockets with four cores each (AMD Opteron
    4122).  Multiverse partitions the cores of one HVM virtual machine into
    a ROS partition (id 0) and one or more HRT partitions (ids 1..N), each
    a first-class {!Partition.t} handle; event-channel latency depends on
    whether the communicating cores share a socket.  Core ownership is
    dynamic: {!reassign} moves a core between partitions at runtime (the
    HVM's core-lending protocol), while {!home_of} remembers where it was
    carved at creation so a loan can be reclaimed. *)

type role = Ros_core | Hrt_core

type core = {
  core_id : int;
  socket : int;
  mutable role : role;
  mutable part : Partition.id;  (** current owning partition *)
  home : Partition.id;  (** partition assigned at creation *)
}

type t

val create :
  ?sockets:int ->
  ?cores_per_socket:int ->
  ?hrt_parts:int list ->
  ?hrt_cores:int ->
  unit ->
  t
(** [create ~hrt_cores ()] builds the machine and assigns the {e last}
    [hrt_cores] cores (default 1) to HRT partition 1 (the ROS keeps core 0,
    where the control process runs).  [?hrt_parts] generalizes this to N HRT
    partitions: a list of per-partition core counts, carved from the top
    of the core range in spec order (so [~hrt_parts:[n]] is exactly
    [~hrt_cores:n], and [~hrt_parts:[2;1]] on 2x4 gives partition 1 cores
    5,6 and partition 2 core 7).  Default geometry is 2 sockets x 4 cores.
    Raises [Invalid_argument] naming the offending partition spec if any
    partition is empty or the spec leaves no ROS core. *)

val ncores : t -> int
val nsockets : t -> int
val cores_per_socket : t -> int
val core : t -> int -> core
val same_socket : t -> int -> int -> bool

val distance : t -> int -> int -> int
(** [distance t a b] is the NUMA distance between cores [a] and [b] in
    socket hops: 0 on the same socket, 1 for adjacent sockets, and so on.
    Sockets form a line interconnect, so the hop count is the difference of
    the socket indices.  At the default two-socket geometry this carries
    exactly the information of {!same_socket}. *)

val socket_distance : t -> int -> int -> int
(** Distance in hops between two {e sockets} (the matrix underlying
    {!distance}). *)

(** [socket_of t i] is the socket index of core [i]. *)
val socket_of : t -> int -> int

(** {1 Partitions} *)

val nparts : t -> int
(** Number of partitions including the ROS (so 1 + number of HRT
    partitions). *)

val partition : t -> Partition.id -> Partition.t
(** The partition handle for [pid].
    @raise Invalid_argument naming the pid when out of range. *)

val partitions : t -> Partition.t list
(** All partition handles, ROS first, in id order. *)

val hrt_partitions : t -> Partition.t list
(** The HRT partition handles, in id order. *)

val cores_of : t -> Partition.id -> int list
(** The cores {e currently} owned by a partition, ascending.  This replaces
    the old [hrt_cores]/[first_hrt_core] accessors: partition 0 is the ROS,
    [cores_of t 1] is the first (default) HRT partition.
    @raise Invalid_argument naming the pid when out of range. *)

val partition_of : t -> int -> Partition.id
(** The partition currently owning a core. *)

val home_of : t -> int -> Partition.id
(** The partition a core belonged to at creation (the reclaim target for
    a lent core). *)

val reassign : t -> core:int -> Partition.id -> unit
(** Move a core to another partition, updating both handles and the core's
    [role] to the destination's kind.  No-op if already owned.  This is the
    topology half of the lending protocol — {!Mv_hvm.Hvm.lend_core} layers
    runqueue draining and fabric re-homing on top.
    @raise Invalid_argument on an unknown partition id. *)

val ros_cores : t -> int list
(** [ros_cores t] = [cores_of t Partition.ros_id]. *)

val role : t -> int -> role
val pp : Format.formatter -> t -> unit
