type region = Ros_region | Hrt_region

type zone = {
  socket : int;
  first_frame : int;
  nframes : int;
  hrt_start : int;  (* frames >= hrt_start (zone-relative) belong to the HRT *)
  (* Free frames per region are a bump cursor over the never-yet-allocated
     ascending tail plus a LIFO of explicitly freed frames.  Equivalent to
     the old eager ascending freelist (frees pushed onto its head, allocs
     popped it) — the list was always freed-LIFO-prefix ++ untouched
     ascending suffix — without materializing a quarter-million list cells
     per zone at create. *)
  mutable ros_cursor : int;  (* next untouched ROS frame (absolute id) *)
  mutable freed_ros : int list;
  mutable hrt_cursor : int;
  mutable freed_hrt : int list;
}

type t = {
  zones : zone array;
  frames_per_zone : int;
  cores_per_socket : int;
  fallback : int array array;
      (* fallback.(z) = zone ids ordered local-first, then by NUMA distance
         (hops), ties broken by lowest zone id.  Precomputed so every alloc
         is a walk over per-zone freelists in a fixed order — no global
         scan, and the order is a pure function of the geometry. *)
  used : (int, region) Hashtbl.t;
  mutable allocated_ros : int;
  mutable allocated_hrt : int;
}

let fallback_order_of ~sockets z =
  List.init sockets (fun i -> i)
  |> List.stable_sort (fun a b ->
         compare (abs (a - z), a) (abs (b - z), b))
  |> Array.of_list

let create ?(frames_per_zone = 262_144) ?(cores_per_socket = 4) ~sockets
    ~hrt_fraction () =
  if hrt_fraction < 0. || hrt_fraction >= 1. then
    invalid_arg "Phys_mem.create: hrt_fraction must be in [0,1)";
  let make_zone s =
    let first_frame = s * frames_per_zone in
    let hrt_start = int_of_float (float_of_int frames_per_zone *. (1. -. hrt_fraction)) in
    {
      socket = s;
      first_frame;
      nframes = frames_per_zone;
      hrt_start;
      ros_cursor = first_frame;
      freed_ros = [];
      hrt_cursor = first_frame + hrt_start;
      freed_hrt = [];
    }
  in
  {
    zones = Array.init sockets make_zone;
    frames_per_zone;
    cores_per_socket = max 1 cores_per_socket;
    fallback = Array.init sockets (fallback_order_of ~sockets);
    used = Hashtbl.create 4096;
    allocated_ros = 0;
    allocated_hrt = 0;
  }

let nzones t = Array.length t.zones

let fallback_order t ~zone =
  let z = if zone >= 0 && zone < nzones t then zone else 0 in
  Array.to_list t.fallback.(z)

let take_from zone region =
  match region with
  | Ros_region -> (
      match zone.freed_ros with
      | f :: rest ->
          zone.freed_ros <- rest;
          Some f
      | [] ->
          if zone.ros_cursor < zone.first_frame + zone.hrt_start then begin
            let f = zone.ros_cursor in
            zone.ros_cursor <- f + 1;
            Some f
          end
          else None)
  | Hrt_region -> (
      match zone.freed_hrt with
      | f :: rest ->
          zone.freed_hrt <- rest;
          Some f
      | [] ->
          if zone.hrt_cursor < zone.first_frame + zone.nframes then begin
            let f = zone.hrt_cursor in
            zone.hrt_cursor <- f + 1;
            Some f
          end
          else None)

let alloc t ?zone region =
  (* Local zone first, then outward by distance.  With no hint the order is
     zone 0's (ascending ids), which is what the flat allocator did. *)
  let z = match zone with Some z when z >= 0 && z < nzones t -> z | _ -> 0 in
  let order = t.fallback.(z) in
  let n = Array.length order in
  let rec go i =
    if i >= n then raise Out_of_memory
    else
      match take_from t.zones.(order.(i)) region with
      | Some f ->
          Hashtbl.replace t.used f region;
          (match region with
          | Ros_region -> t.allocated_ros <- t.allocated_ros + 1
          | Hrt_region -> t.allocated_hrt <- t.allocated_hrt + 1);
          f
      | None -> go (i + 1)
  in
  go 0

let zone_of_core t core = core / t.cores_per_socket

let alloc_near t ~core region =
  let z = zone_of_core t core in
  let z = if z >= 0 && z < nzones t then z else 0 in
  alloc t ~zone:z region

let zone_of_frame t f = f / t.frames_per_zone

let region_of_frame t f =
  match Hashtbl.find_opt t.used f with
  | Some r -> r
  | None ->
      let z = t.zones.(zone_of_frame t f) in
      if f - z.first_frame >= z.hrt_start then Hrt_region else Ros_region

let free t f =
  match Hashtbl.find_opt t.used f with
  | None ->
      invalid_arg
        (Printf.sprintf "Phys_mem.free: frame %d (zone %d) not allocated" f
           (zone_of_frame t f))
  | Some region ->
      Hashtbl.remove t.used f;
      let z = t.zones.(zone_of_frame t f) in
      (match region with
      | Ros_region ->
          z.freed_ros <- f :: z.freed_ros;
          t.allocated_ros <- t.allocated_ros - 1
      | Hrt_region ->
          z.freed_hrt <- f :: z.freed_hrt;
          t.allocated_hrt <- t.allocated_hrt - 1)

let allocated t = function
  | Ros_region -> t.allocated_ros
  | Hrt_region -> t.allocated_hrt

let total t region =
  Array.fold_left
    (fun acc z ->
      acc
      + match region with Ros_region -> z.hrt_start | Hrt_region -> z.nframes - z.hrt_start)
    0 t.zones

let pp ppf t =
  Format.fprintf ppf "phys: ros %d/%d hrt %d/%d frames (%d zones)"
    t.allocated_ros (total t Ros_region) t.allocated_hrt (total t Hrt_region)
    (nzones t)
