(** Four-level x86-64 page tables (PML4 / PDPT / PD / PT).

    The structure matters for Multiverse: an address-space merger copies the
    first 256 PML4 entries of the ROS process's root into the HRT's root
    (paper, Section 4.4).  Because only the {e top-level} slots are copied,
    the sub-trees are shared; later mappings made by the ROS below an
    already-copied slot become visible to the HRT immediately, while a ROS
    change to a top-level slot itself leaves the HRT's copy stale — which
    the AeroKernel detects as a repeated page fault and repairs by
    re-merging.  This module models exactly that sharing. *)

type flags = int

val f_present : flags
val f_writable : flags
val f_user : flags
val f_nx : flags
val f_cow : flags
val has : flags -> flags -> bool

type pte = { mutable frame : int; mutable pte_flags : flags }
(** Leaf entry.  A leaf installed at PT level maps one 4 KiB page; large
    pages install the same record at PD (2 MiB) or PDPT (1 GiB) level, with
    [frame] naming the first 4 KiB frame of the contiguous physical run. *)

type size = S4k | S2m | S1g
(** Leaf granularity: the level the leaf lives at. *)

val pages_of_size : size -> int
(** 1, 512, or 512*512 — 4 KiB pages covered by one leaf of this size. *)

val pp_size : Format.formatter -> size -> unit

type t
(** A root page table (what CR3 points to). *)

val create : unit -> t

val id : t -> int
(** Unique identity, used as the simulated CR3 value. *)

val map : t -> Addr.t -> frame:int -> flags:flags -> unit
(** Install a 4 KiB leaf mapping, building intermediate levels as needed.
    A covering huge leaf is first split into next-size-down children (the
    siblings keep the inherited frame run and flags).  Requires a
    page-aligned address. *)

val map_size : t -> Addr.t -> size:size -> frame:int -> flags:flags -> unit
(** Install a leaf of the given granularity.  A 2M/1G map replaces any
    existing finer-grained sub-tree under its slot.  Requires the address
    aligned to the leaf size. *)

val unmap : t -> Addr.t -> bool
(** Remove a 4 KiB leaf mapping, splitting a covering huge leaf so only
    this page disappears; [false] if nothing was mapped. *)

val unmap_leaf : t -> Addr.t -> size option
(** Remove whatever leaf covers the address {e whole} (no splitting);
    returns its size, or [None] if unmapped. *)

val protect : t -> Addr.t -> flags:flags -> bool
(** Replace the flags of the 4 KiB leaf at the address, splitting a
    covering huge leaf so siblings keep their flags; [false] if unmapped. *)

val protect_leaf : t -> Addr.t -> flags:flags -> size option
(** Replace the flags of the covering leaf whatever its size (no split);
    returns the leaf size, or [None] if unmapped. *)

val walk : t -> Addr.t -> pte option * int
(** [(entry, levels)] where [levels] is the number of levels traversed
    before stopping (for TLB-miss cost accounting).  A 1 GiB leaf resolves
    in 2 levels, a 2 MiB leaf in 3, a 4 KiB leaf in 4. *)

val walk_sized : t -> Addr.t -> (pte * size) option * int
(** Like {!walk} but also reports the granularity of the resolved leaf. *)

val lookup : t -> Addr.t -> pte option

val leaf_size : t -> Addr.t -> size option
(** Granularity of the leaf covering the address, if mapped. *)

val pml4_slot_present : t -> int -> bool
(** Is top-level slot [i] populated? *)

val copy_lower_half : src:t -> dst:t -> int
(** The Multiverse merger: copy PML4 slots 0..255 from [src] to [dst]
    (sharing sub-trees).  Returns the number of populated slots copied. *)

val clear_lower_half : t -> unit

val lower_half_generation : t -> int
(** Incremented whenever a lower-half PML4 {e slot} of this root changes
    (a new sub-tree appears or one is removed).  A merger snapshots the
    source generation; staleness of a previous merge is observable as the
    generations diverging. *)

val count_mapped : t -> int
(** Number of leaf mappings (of any size) reachable from this root. *)

val count_huge : t -> int * int
(** [(n_2m, n_1g)] — large leaves reachable from this root.  Used by the
    merger to check huge leaves survive the PML4 slot copy. *)

val iter_mappings : t -> (Addr.t -> pte -> unit) -> unit
(** Visit every leaf (any size) once, with its base address. *)

val iter_leaves : t -> (Addr.t -> size -> pte -> unit) -> unit
