(* Each page size gets its own entry class, as on real cores (separate
   4K/2M/1G STLB partitions).  Keys are the page number shifted down to the
   class granularity, so one 2M entry gives reach over 512 4K pages. *)
type klass = {
  k_capacity : int;
  k_entries : (int, Page_table.pte) Hashtbl.t;
  k_order : int Queue.t;  (* FIFO eviction *)
}

let make_klass capacity =
  { k_capacity = capacity; k_entries = Hashtbl.create 64; k_order = Queue.create () }

type t = {
  k4 : klass;
  k2m : klass;
  k1g : klass;
  mutable hits : int;
  mutable misses : int;
  (* Walk/fill accounting, written by Mmu on each miss.  Living here keeps
     the per-core memory-path statistics in one place. *)
  mutable walks : int;
  mutable walk_levels : int;
  mutable walk_cycles : int;
  mutable fills : int;
  mutable fill_cycles : int;
}

let create ?(capacity = 512) ?(capacity_2m = 32) ?(capacity_1g = 8) () =
  {
    k4 = make_klass capacity;
    k2m = make_klass capacity_2m;
    k1g = make_klass capacity_1g;
    hits = 0;
    misses = 0;
    walks = 0;
    walk_levels = 0;
    walk_cycles = 0;
    fills = 0;
    fill_cycles = 0;
  }

let shift_of_size = function
  | Page_table.S4k -> 0
  | Page_table.S2m -> 9
  | Page_table.S1g -> 18

let klass_of_size t = function
  | Page_table.S4k -> t.k4
  | Page_table.S2m -> t.k2m
  | Page_table.S1g -> t.k1g

let find t ~page =
  (* Reach-based lookup: a huge entry covers the page if its class key
     matches the page shifted to that granularity.  Check smallest first. *)
  match Hashtbl.find_opt t.k4.k_entries page with
  | Some _ as r -> r
  | None -> (
      match Hashtbl.find_opt t.k2m.k_entries (page lsr 9) with
      | Some _ as r -> r
      | None -> Hashtbl.find_opt t.k1g.k_entries (page lsr 18))

let lookup t ~page =
  match find t ~page with
  | Some pte ->
      t.hits <- t.hits + 1;
      Some pte
  | None ->
      t.misses <- t.misses + 1;
      None

let rec evict_one k =
  match Queue.take_opt k.k_order with
  | None -> ()
  | Some key ->
      if Hashtbl.mem k.k_entries key then Hashtbl.remove k.k_entries key
      else evict_one k (* stale FIFO entry for an already-invalidated key *)

let fill ?(size = Page_table.S4k) t ~page pte =
  let k = klass_of_size t size in
  let key = page lsr shift_of_size size in
  if not (Hashtbl.mem k.k_entries key) then begin
    if Hashtbl.length k.k_entries >= k.k_capacity then evict_one k;
    Hashtbl.replace k.k_entries key pte;
    Queue.add key k.k_order
  end
  else Hashtbl.replace k.k_entries key pte

let invalidate_page t ~page =
  (* INVLPG semantics: drop any entry, of any size, covering the page. *)
  Hashtbl.remove t.k4.k_entries page;
  Hashtbl.remove t.k2m.k_entries (page lsr 9);
  Hashtbl.remove t.k1g.k_entries (page lsr 18)

let invalidate_range t ~page ~npages =
  let lo = page and hi = page + npages in
  let sweep k shift =
    let doomed =
      Hashtbl.fold
        (fun key _ acc ->
          let k_lo = key lsl shift and k_hi = (key + 1) lsl shift in
          if k_lo < hi && k_hi > lo then key :: acc else acc)
        k.k_entries []
    in
    List.iter (Hashtbl.remove k.k_entries) doomed
  in
  sweep t.k4 0;
  sweep t.k2m 9;
  sweep t.k1g 18

let flush t =
  let clear k =
    Hashtbl.reset k.k_entries;
    Queue.clear k.k_order
  in
  clear t.k4;
  clear t.k2m;
  clear t.k1g

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.walks <- 0;
  t.walk_levels <- 0;
  t.walk_cycles <- 0;
  t.fills <- 0;
  t.fill_cycles <- 0

let occupancy t =
  let len k = Hashtbl.length k.k_entries and cap k = k.k_capacity in
  float_of_int (len t.k4 + len t.k2m + len t.k1g)
  /. float_of_int (cap t.k4 + cap t.k2m + cap t.k1g)

let note_walk t ~levels ~cycles =
  t.walks <- t.walks + 1;
  t.walk_levels <- t.walk_levels + levels;
  t.walk_cycles <- t.walk_cycles + cycles

let note_fill t ~cycles =
  t.fills <- t.fills + 1;
  t.fill_cycles <- t.fill_cycles + cycles

let hits t = t.hits
let misses t = t.misses
let walks t = t.walks
let walk_levels t = t.walk_levels
let walk_cycles t = t.walk_cycles
let fills t = t.fills
let fill_cycles t = t.fill_cycles
