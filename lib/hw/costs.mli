(** Calibrated cycle-cost model of the simulated machine.

    The reference machine is the paper's testbed: a Dell PowerEdge 415 with
    an 8-core AMD Opteron 4122 at 2.2 GHz (two sockets, four cores each).
    Costs that the paper reports directly (Figure 2: event-channel and
    merger latencies) are taken verbatim; the rest are typical x86/Linux
    magnitudes.  Everything is expressed in cycles at 2.2 GHz.

    The record is functional so benchmarks and ablations can run with
    altered models (e.g. symbol-cache on/off, channel-kind comparisons). *)

type t = {
  (* --- traps and mode transitions --- *)
  syscall_trap : int;  (** SYSCALL/SYSRET pair, native kernel entry+exit *)
  vdso_call : int;  (** user-space fast path, no kernel entry *)
  tlb_pressure_penalty : int;
      (** extra cost of a vdso call on a busy, densely-mapped core; the HRT
          core's sparse TLB avoids it (paper: vdso calls are slightly
          {e faster} under Multiverse) *)
  sysret_emulation : int;
      (** Nautilus must emulate SYSRET with a direct [jmp] for the ring-0 to
          ring-0 return (paper, Section 4.4) *)
  redzone_stack_pull : int;  (** stack-pointer pull-down in the syscall stub *)
  interrupt_dispatch : int;  (** vectoring through the IDT, incl. IST switch *)
  signal_deliver : int;  (** building a user signal frame *)
  signal_return : int;  (** [rt_sigreturn] *)
  (* --- virtualization --- *)
  vm_exit : int;  (** one exit/entry round trip *)
  hypercall : int;  (** guest-to-VMM hypercall (bounds channel latency) *)
  nested_fill : int;  (** nested-paging fill on first touch of a guest page *)
  (* --- HVM event channels (paper, Figure 2) --- *)
  async_channel_rtt : int;  (** ~25 K cycles, 1.1 us *)
  sync_channel_same_socket : int;  (** ~790 cycles, 36 ns *)
  sync_channel_cross_socket : int;  (** ~1060 cycles, 48 ns — one hop *)
  channel_hop_multiplier : float;
      (** per-hop latency growth of the synchronous channel beyond one
          socket hop; inert on the paper's 2-socket machine (DESIGN §6) *)
  remote_access : int;
      (** extra cycles {e per socket hop} for a memory access served from a
          remote NUMA zone (DESIGN §6) *)
  merge_address_space : int;  (** ~33 K cycles, 1.5 us *)
  (* --- memory system --- *)
  page_walk_level : int;  (** per page-table level actually read on a TLB miss *)
  walk_cache_hit : int;
      (** probe + restart overhead when the paging-structure cache lets a
          walk skip its upper levels (Intel SDM 4.10.3) *)
  tlb_fill : int;
  tlb_shootdown_percore : int;  (** IPI + invalidation per remote core *)
  tlb_shootdown_range : int;
      (** one range-batched shootdown (single IPI covering a whole
          munmap/mprotect range) per remote core — amortizes what would be
          [pages * tlb_shootdown_percore] *)
  page_fault_trap : int;  (** #PF dispatch into the kernel *)
  demand_page : int;  (** allocate + zero + map one 4 KiB page *)
  demand_huge_page : int;
      (** allocate + zero + map one 2 MiB page: one trap and one PTE write,
          with the zeroing done by wide streaming stores — far below 512
          small-page faults *)
  huge_split : int;  (** demote one huge leaf to 4 KiB children *)
  cow_copy : int;  (** copy-on-write break of one page *)
  (* --- scheduling and threads --- *)
  context_switch_ros : int;  (** full Linux context switch *)
  context_switch_nk : int;  (** AeroKernel thread switch *)
  thread_create_ros : int;  (** clone + setup *)
  thread_create_nk : int;
      (** Nautilus thread creation; orders of magnitude below Linux (paper,
          Section 2) *)
  timeslice_ros : int;  (** scheduler quantum *)
  (* --- Multiverse runtime --- *)
  hrt_boot : int;  (** AeroKernel boot, "milliseconds" (paper, Section 2) *)
  image_install_per_kb : int;  (** copying the embedded AeroKernel image *)
  symbol_lookup : int;
      (** per-invocation override symbol lookup ("non-trivial overhead",
          paper Section 4.2) *)
  symbol_cache_hit : int;  (** with the ELF-style symbol cache ablation *)
  wrapper_dispatch : int;  (** override wrapper entry/exit *)
}

val default : t

val sync_channel_rtt : t -> distance:int -> int
(** Synchronous event-channel round trip at a given NUMA distance.
    Distances 0 and 1 are the paper's Figure 2 numbers verbatim
    ([sync_channel_same_socket] / [sync_channel_cross_socket]); each hop
    beyond the first scales by [channel_hop_multiplier].  The default
    two-socket machine never exceeds distance 1, so the flat model is
    reproduced bit-for-bit there. *)

val remote_access_cost : t -> distance:int -> int
(** Extra memory-path cycles for an access at a given NUMA distance:
    [remote_access * distance], 0 when local. *)

val pp : Format.formatter -> t -> unit
