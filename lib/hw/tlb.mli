(** Per-core, size-aware translation lookaside buffer.

    Three entry classes (4K / 2M / 1G) with separate capacities, mirroring
    the partitioned STLBs of real cores: one 2 MiB entry gives translation
    reach over 512 small pages, one 1 GiB entry over 512*512.  Lookup is
    reach-based — an address hits if any class holds an entry covering it.
    A merger broadcasts a shootdown to all HRT cores (paper, Section 4.4);
    a CR3 switch flushes.  The TLB also carries the per-core walk/fill
    accounting the memory-path bench reads. *)

type t

val create : ?capacity:int -> ?capacity_2m:int -> ?capacity_1g:int -> unit -> t
(** [capacity] is the 4K-class capacity (default 512); the large-page
    classes default to 32 (2M) and 8 (1G) entries. *)

val lookup : t -> page:int -> Page_table.pte option
(** Cached translation covering [page], if any (counts a hit or miss). *)

val fill : ?size:Page_table.size -> t -> page:int -> Page_table.pte -> unit
(** Insert after a page walk into the class for [size] (default 4K),
    evicting (FIFO, per class) if at capacity. *)

val invalidate_page : t -> page:int -> unit
(** Drop any entry, of any size, covering the page (INVLPG semantics). *)

val invalidate_range : t -> page:int -> npages:int -> unit
(** Drop every entry whose reach intersects [page, page+npages) — the
    receiving end of a range-batched shootdown. *)

val flush : t -> unit
(** Drop all entries.  Statistics are preserved; see {!reset_stats}. *)

val reset_stats : t -> unit
(** Zero hit/miss and walk/fill counters (bench warmup boundary). *)

val occupancy : t -> float
(** Fraction of total capacity in use, in [0,1]. *)

val hits : t -> int
val misses : t -> int

(** Walk/fill accounting, updated by [Mmu] on each miss: *)

val note_walk : t -> levels:int -> cycles:int -> unit
val note_fill : t -> cycles:int -> unit
val walks : t -> int
val walk_levels : t -> int
(** Sum of levels actually paid across walks (walk-cache skips excluded). *)

val walk_cycles : t -> int
val fills : t -> int
val fill_cycles : t -> int
