(** Per-core paging-structure (page-walk) caches.

    Real walkers cache interior PDPTE/PDE entries so a TLB miss under an
    already-walked region pays 1–2 memory accesses instead of 4 (Intel SDM
    4.10.3).  [Mmu.access] probes this before charging walk levels and
    populates it after each walk; it is flushed on CR3 load and — being a
    non-coherent cache — conservatively on shootdowns. *)

type t

val create : ?pdpte_capacity:int -> ?pde_capacity:int -> unit -> t

val skip : t -> Addr.t -> int
(** Walk levels a miss at this address may skip: 3 (PDE cached), 2 (PDPTE
    cached), or 0.  Counts a hit or a miss. *)

val note : t -> Addr.t -> levels:int -> unit
(** Record the structures a completed walk of [levels] traversed. *)

val flush : t -> unit
val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
