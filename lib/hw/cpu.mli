(** Architectural state of one simulated core.

    Holds the registers Multiverse superimposes or manipulates: CR3 (the
    root page table), CR0.WP (ring-0 write-protection enforcement, which
    Nautilus must set to preserve copy-on-write semantics in kernel mode —
    paper Section 4.4), the %fs base (thread-local storage superposition),
    the GDT selector, and whether IST interrupt stacks are configured (the
    red-zone workaround). *)

type t = {
  core_id : int;
  mutable ring : int;  (** current privilege level: 0 in the HRT, 3 for ROS user code *)
  mutable cr3 : int;  (** {!Page_table.id} of the active root; 0 = none *)
  mutable cr0_wp : bool;
  mutable fs_base : Addr.t;
  mutable gdt : int;  (** identity of the loaded GDT image *)
  mutable ist_configured : bool;
  tlb : Tlb.t;
  pwc : Walk_cache.t;  (** paging-structure (walk) cache *)
}

val create : core_id:int -> t

val load_cr3 : t -> Page_table.t -> unit
(** Point CR3 at a root table and flush the TLB and the paging-structure
    cache, as hardware does. *)
