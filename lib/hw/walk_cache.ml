(* Paging-structure caches (Intel SDM 4.10.3): small per-core caches of
   PDPTE and PDE entries, tagged by the address bits above the level they
   short-circuit.  A PDE-cache hit lets a 4 KiB miss start its walk at the
   PT (1 memory access); a PDPTE hit starts at the PD (2 accesses).  We
   cache presence only — the simulated walk still reads the live tree, the
   cache just discounts the levels a real walker would skip. *)

type klass = {
  k_capacity : int;
  k_keys : (int, unit) Hashtbl.t;
  k_order : int Queue.t;
}

let make_klass capacity =
  { k_capacity = capacity; k_keys = Hashtbl.create 16; k_order = Queue.create () }

type t = {
  pdpte : klass;  (* key: addr lsr 30 — one entry per mapped 1G region *)
  pde : klass;  (* key: addr lsr 21 — one entry per mapped 2M region *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(pdpte_capacity = 16) ?(pde_capacity = 32) () =
  { pdpte = make_klass pdpte_capacity; pde = make_klass pde_capacity; hits = 0; misses = 0 }

let skip t addr =
  (* Levels of the walk a hit lets us skip: 3 with a cached PDE
     (PML4E+PDPTE+PDE known), 2 with a cached PDPTE, else 0. *)
  if Hashtbl.mem t.pde.k_keys (addr lsr 21) then begin
    t.hits <- t.hits + 1;
    3
  end
  else if Hashtbl.mem t.pdpte.k_keys (addr lsr 30) then begin
    t.hits <- t.hits + 1;
    2
  end
  else begin
    t.misses <- t.misses + 1;
    0
  end

let rec evict_one k =
  match Queue.take_opt k.k_order with
  | None -> ()
  | Some key -> if Hashtbl.mem k.k_keys key then Hashtbl.remove k.k_keys key else evict_one k

let insert k key =
  if not (Hashtbl.mem k.k_keys key) then begin
    if Hashtbl.length k.k_keys >= k.k_capacity then evict_one k;
    Hashtbl.replace k.k_keys key ();
    Queue.add key k.k_order
  end

let note t addr ~levels =
  (* A walk that traversed the PDPT into a PD proves a PDPTE exists; one
     that traversed the PD into a PT proves a PDE exists.  Huge leaves stop
     the walk before the structure below them, so they cache nothing — their
     translations live in the TLB's large-page classes instead. *)
  if levels >= 3 then insert t.pdpte (addr lsr 30);
  if levels >= 4 then insert t.pde (addr lsr 21)

let flush t =
  let clear k =
    Hashtbl.reset k.k_keys;
    Queue.clear k.k_order
  in
  clear t.pdpte;
  clear t.pde

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
