(** x86-64 canonical virtual addresses.

    The hardware uses 48 significant bits; bits 48..63 are a sign extension
    of bit 47.  We represent an address by its 48-bit value in a native
    OCaml [int] (so the "higher half" starts at [0x8000_0000_0000] here and
    corresponds to [0xffff_8000_0000_0000] in the canonical form).  The
    canonical split is what makes the Multiverse merged address space work:
    the ROS kernel and the HRT both live in the higher half, user code in
    the lower half (paper, Section 4.4 and Figure 3). *)

type t = int
(** 48-bit virtual address, [0 <= a < 2^48]. *)

val page_size : int (* 4096 *)
val page_shift : int (* 12 *)
val word_size : int (* 8 *)

val page_size_2m : int (* 2 MiB — a PD-level large page *)
val page_size_1g : int (* 1 GiB — a PDPT-level large page *)
val page_shift_2m : int (* 21 *)
val page_shift_1g : int (* 30 *)

val pages_per_2m : int (* 512 *)
val pages_per_1g : int (* 512 * 512 *)

val lower_half_limit : t
(** First non-canonical address after the lower half: [2^47]. *)

val higher_half_base : t
(** Lowest higher-half address: [2^47] in 48-bit form. *)

val space_limit : t
(** [2^48]. *)

val is_lower_half : t -> bool
val is_higher_half : t -> bool

val page_of : t -> int
(** Page number containing the address. *)

val base_of_page : int -> t
val page_offset : t -> int
val align_down : t -> t
val align_up : t -> t
val is_page_aligned : t -> bool
val align_down_2m : t -> t
val align_down_1g : t -> t
val is_2m_aligned : t -> bool
val is_1g_aligned : t -> bool

val pml4_index : t -> int
(** Bits 39..47 — the top-level page-table slot (0..511).  Lower-half
    addresses map to slots 0..255; these are the 256 entries Multiverse
    copies during an address-space merger. *)

val pdpt_index : t -> int
val pd_index : t -> int
val pt_index : t -> int

val of_indices : pml4:int -> pdpt:int -> pd:int -> pt:int -> offset:int -> t

val canonical64 : t -> int64
(** Sign-extended 64-bit form for display. *)

val pp : Format.formatter -> t -> unit
(** Hex rendering of the canonical 64-bit form. *)
