type t = int

let page_size = 4096
let page_shift = 12
let word_size = 8
let page_shift_2m = 21
let page_shift_1g = 30
let page_size_2m = 1 lsl page_shift_2m
let page_size_1g = 1 lsl page_shift_1g
let pages_per_2m = page_size_2m / page_size
let pages_per_1g = page_size_1g / page_size
let lower_half_limit = 1 lsl 47
let higher_half_base = 1 lsl 47
let space_limit = 1 lsl 48

let is_lower_half a = a < lower_half_limit
let is_higher_half a = a >= higher_half_base && a < space_limit

let page_of a = a lsr page_shift
let base_of_page p = p lsl page_shift
let page_offset a = a land (page_size - 1)
let align_down a = a land lnot (page_size - 1)
let align_up a = (a + page_size - 1) land lnot (page_size - 1)
let is_page_aligned a = a land (page_size - 1) = 0
let align_down_2m a = a land lnot (page_size_2m - 1)
let align_down_1g a = a land lnot (page_size_1g - 1)
let is_2m_aligned a = a land (page_size_2m - 1) = 0
let is_1g_aligned a = a land (page_size_1g - 1) = 0

let pml4_index a = (a lsr 39) land 511
let pdpt_index a = (a lsr 30) land 511
let pd_index a = (a lsr 21) land 511
let pt_index a = (a lsr 12) land 511

let of_indices ~pml4 ~pdpt ~pd ~pt ~offset =
  (pml4 lsl 39) lor (pdpt lsl 30) lor (pd lsl 21) lor (pt lsl 12) lor offset

let canonical64 a =
  if a >= higher_half_base then Int64.logor (Int64.of_int a) 0xFFFF_0000_0000_0000L
  else Int64.of_int a

let pp ppf a = Format.fprintf ppf "0x%Lx" (canonical64 a)
