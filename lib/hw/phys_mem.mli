(** Physical frame allocator with NUMA zones and partition regions.

    The HVM segregates physical memory: the ROS sees only its own subset
    while the HRT has access to everything (paper, Section 2).  Frames are
    identified by integer frame numbers; each zone is a contiguous range of
    frames bound to a NUMA node (socket). *)

type region = Ros_region | Hrt_region

type t

val create :
  ?frames_per_zone:int ->
  ?cores_per_socket:int ->
  sockets:int ->
  hrt_fraction:float ->
  unit ->
  t
(** [create ~sockets ~hrt_fraction ()] builds one zone per socket and
    reserves the top [hrt_fraction] of each zone for the HRT partition.
    [cores_per_socket] (default 4) maps cores to their local zone for
    {!alloc_near}. *)

val alloc : t -> ?zone:int -> region -> int
(** Allocate a frame from [region]: local [zone] (a socket id) first, then
    the remaining zones outward in NUMA-distance order (ties to the lowest
    zone id).  With no hint the search starts at zone 0, which is the flat
    allocator's order.  Raises [Out_of_memory] if the region is exhausted
    everywhere. *)

val alloc_near : t -> core:int -> region -> int
(** Allocate by locality: like {!alloc} with the zone of [core]'s socket as
    the preferred zone, so callers never compute raw zone ids. *)

val free : t -> int -> unit
(** Return a frame.  Raises [Invalid_argument] on double free, naming the
    frame and its owning zone. *)

val nzones : t -> int

val fallback_order : t -> zone:int -> int list
(** The deterministic zone search order used by {!alloc} for a given
    preferred zone: local first, then by distance, ties to lowest id. *)

val zone_of_core : t -> int -> int
(** The NUMA zone local to a core. *)

val region_of_frame : t -> int -> region
val zone_of_frame : t -> int -> int
val allocated : t -> region -> int
val total : t -> region -> int
val pp : Format.formatter -> t -> unit
