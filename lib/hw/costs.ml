type t = {
  syscall_trap : int;
  vdso_call : int;
  tlb_pressure_penalty : int;
  sysret_emulation : int;
  redzone_stack_pull : int;
  interrupt_dispatch : int;
  signal_deliver : int;
  signal_return : int;
  vm_exit : int;
  hypercall : int;
  nested_fill : int;
  async_channel_rtt : int;
  sync_channel_same_socket : int;
  sync_channel_cross_socket : int;
  channel_hop_multiplier : float;
  remote_access : int;
  merge_address_space : int;
  page_walk_level : int;
  walk_cache_hit : int;
  tlb_fill : int;
  tlb_shootdown_percore : int;
  tlb_shootdown_range : int;
  page_fault_trap : int;
  demand_page : int;
  demand_huge_page : int;
  huge_split : int;
  cow_copy : int;
  context_switch_ros : int;
  context_switch_nk : int;
  thread_create_ros : int;
  thread_create_nk : int;
  timeslice_ros : int;
  hrt_boot : int;
  image_install_per_kb : int;
  symbol_lookup : int;
  symbol_cache_hit : int;
  wrapper_dispatch : int;
}

let default =
  {
    syscall_trap = 150;
    vdso_call = 60;
    tlb_pressure_penalty = 40;
    sysret_emulation = 90;
    redzone_stack_pull = 20;
    interrupt_dispatch = 350;
    signal_deliver = 1_800;
    signal_return = 700;
    vm_exit = 1_200;
    hypercall = 600;
    nested_fill = 1_500;
    (* Figure 2 of the paper, measured on the reference machine. *)
    async_channel_rtt = 25_000;
    sync_channel_same_socket = 790;
    sync_channel_cross_socket = 1_060;
    (* Beyond one hop the cache-coherent interconnect adds ~30% latency per
       additional hop (DESIGN §6); unused at the 2-socket default. *)
    channel_hop_multiplier = 1.3;
    (* Extra cycles per socket hop for a cache line served from a remote
       NUMA node (DESIGN §6). *)
    remote_access = 180;
    merge_address_space = 33_000;
    page_walk_level = 30;
    walk_cache_hit = 8;
    tlb_fill = 10;
    tlb_shootdown_percore = 2_000;
    tlb_shootdown_range = 2_400;
    page_fault_trap = 900;
    demand_page = 2_600;
    demand_huge_page = 20_000;
    huge_split = 6_000;
    cow_copy = 3_100;
    context_switch_ros = 3_000;
    context_switch_nk = 300;
    thread_create_ros = 28_000;
    thread_create_nk = 450;
    timeslice_ros = Mv_util.Cycles.of_ms 4.;
    hrt_boot = Mv_util.Cycles.of_ms 12.;
    image_install_per_kb = 400;
    symbol_lookup = 4_200;
    symbol_cache_hit = 90;
    wrapper_dispatch = 45;
  }

(* Distance-scaled costs (DESIGN §6).  Distance 0 and 1 reproduce the
   paper's Figure 2 numbers exactly; the multiplier only engages beyond one
   hop, so the default two-socket machine is bit-compatible with the flat
   model. *)
let sync_channel_rtt c ~distance =
  if distance <= 0 then c.sync_channel_same_socket
  else if distance = 1 then c.sync_channel_cross_socket
  else
    int_of_float
      (float_of_int c.sync_channel_cross_socket
      *. (c.channel_hop_multiplier ** float_of_int (distance - 1)))

let remote_access_cost c ~distance = c.remote_access * max 0 distance

let pp ppf c =
  Format.fprintf ppf
    "@[<v>syscall_trap=%d vdso=%d async_rtt=%d sync_same=%d sync_cross=%d \
     hop_mult=%.2f remote_access=%d merge=%d hrt_boot=%d@]"
    c.syscall_trap c.vdso_call c.async_channel_rtt c.sync_channel_same_socket
    c.sync_channel_cross_socket c.channel_hop_multiplier c.remote_access
    c.merge_address_space c.hrt_boot
