type t = {
  core_id : int;
  mutable ring : int;
  mutable cr3 : int;
  mutable cr0_wp : bool;
  mutable fs_base : Addr.t;
  mutable gdt : int;
  mutable ist_configured : bool;
  tlb : Tlb.t;
  pwc : Walk_cache.t;
}

let create ~core_id =
  {
    core_id;
    ring = 3;
    cr3 = 0;
    cr0_wp = false;
    fs_base = 0;
    gdt = 0;
    ist_configured = false;
    tlb = Tlb.create ();
    pwc = Walk_cache.create ();
  }

let load_cr3 t root =
  t.cr3 <- Page_table.id root;
  Tlb.flush t.tlb;
  Walk_cache.flush t.pwc
