module Machine = Mv_engine.Machine
module Sim = Mv_engine.Sim
module Nautilus = Mv_aerokernel.Nautilus
module Hvm = Mv_hvm.Hvm
open Mv_ros

type program = { prog_name : string; prog_main : Mv_guest.Env.t -> unit }

type hybrid_exe = { hx_program : program; hx_fat : Fat_binary.t; hx_bytes : string }

(* A deterministic stand-in for the compiled AeroKernel image: header plus
   pseudo-random payload of the requested size. *)
let make_image ~kb =
  let b = Buffer.create (kb * 1024) in
  Buffer.add_string b "NAUTILUS-AEROKERNEL v0.9 multiboot2\000";
  let rng = Mv_util.Rng.create ~seed:0x6e6b in
  while Buffer.length b < kb * 1024 do
    Buffer.add_char b (Char.chr (Mv_util.Rng.int rng 256))
  done;
  Buffer.sub b 0 (kb * 1024)

let hybridize ?(overrides = Override_config.empty) ?(image_kb = 640) program =
  let fat =
    Fat_binary.empty
    |> Fat_binary.add_section ~name:Fat_binary.sec_text
         ~data:("LEGACY-PROGRAM " ^ program.prog_name)
    |> Fat_binary.add_section ~name:Fat_binary.sec_hrt_image ~data:(make_image ~kb:image_kb)
    |> Fat_binary.add_section ~name:Fat_binary.sec_overrides
         ~data:(Override_config.to_text overrides)
    |> Fat_binary.add_section ~name:Fat_binary.sec_init
         ~data:"ros_signals,exit_hook,linkage,install,boot,merge"
  in
  { hx_program = program; hx_fat = fat; hx_bytes = Fat_binary.encode fat }

type mv_options = {
  mv_channel : Mv_hvm.Event_channel.kind;
  mv_symbol_cache : bool;
  mv_porting : Runtime.porting;
  mv_faults : Mv_faults.Fault_plan.t;
  mv_huge_pages : bool;
  mv_sockets : int;
  mv_cores_per_socket : int;
  mv_hrt_cores : int;
  mv_partitions : int list option;
  mv_placement : Runtime.placement;
  mv_work_stealing : bool;
  mv_trace_limit : int option;
}

let default_mv_options =
  {
    mv_channel = Mv_hvm.Event_channel.Async;
    mv_symbol_cache = false;
    mv_porting = Runtime.no_porting;
    mv_faults = Mv_faults.Fault_plan.none;
    mv_huge_pages = true;
    mv_sockets = 2;
    mv_cores_per_socket = 4;
    mv_hrt_cores = 1;
    mv_partitions = None;
    mv_placement = Runtime.Spread;
    mv_work_stealing = false;
    mv_trace_limit = None;
  }

type run_stats = {
  rs_mode : string;
  rs_stdout : string;
  rs_exit_code : int;
  rs_wall_cycles : int;
  rs_rusage : Rusage.t;
  rs_syscalls : Mv_util.Histogram.t;
  rs_kernel : Kernel.t;
  rs_machine : Machine.t;
  rs_runtime : Runtime.t option;
}

let total_syscalls rs = Mv_util.Histogram.total rs.rs_syscalls
let wall_seconds rs = Mv_util.Cycles.to_sec rs.rs_wall_cycles

let collect ~mode ~kernel ~machine ~proc ~runtime =
  (* Snapshot subsystem counters into the metrics registry: the kernel
     pushes tlb/mmu/mm on rusage finalization; fabric and event-channel
     counters live on the runtime when one exists. *)
  (match runtime with
  | Some rt -> Mv_hvm.Fabric.sample_metrics (Runtime.fabric rt) machine.Machine.metrics
  | None -> ());
  {
    rs_mode = mode;
    rs_stdout = Process.stdout_contents proc;
    rs_exit_code = proc.Process.exit_code;
    rs_wall_cycles = Kernel.runtime_of kernel proc;
    rs_rusage = proc.Process.rusage;
    rs_syscalls = proc.Process.syscall_counts;
    rs_kernel = kernel;
    rs_machine = machine;
    rs_runtime = runtime;
  }

let prepare_stdin proc stdin =
  match stdin with
  | Some data ->
      Vfs.feed proc.Process.stdin data;
      Vfs.close_stream proc.Process.stdin
  | None -> Vfs.close_stream proc.Process.stdin

let run_plain ~virtualized ?costs ?stdin ?(trace = false) ?(huge_pages = true)
    ?(topology = (2, 4)) ?(hrt_cores = 1) ?trace_limit program =
  let sockets, cores_per_socket = topology in
  let machine =
    Machine.create ?costs ~huge_pages ~sockets ~cores_per_socket ~hrt_cores ?trace_limit ()
  in
  if trace then Machine.set_tracing machine true;
  let kernel = Kernel.create ~virtualized machine in
  let proc =
    Kernel.spawn_process kernel ~name:program.prog_name (fun p ->
        let env = Mv_guest.Env.native kernel p in
        program.prog_main env)
  in
  prepare_stdin proc stdin;
  let mode = if virtualized then "virtual" else "native" in
  Mv_obs.Tracer.with_span machine.Machine.obs ~name:("run:" ^ mode) ~cat:"sim"
    (fun () -> Sim.run machine.Machine.sim);
  if not proc.Process.exited then
    failwith (program.prog_name ^ ": simulation quiesced before process exit");
  collect ~mode ~kernel ~machine ~proc ~runtime:None

let run_native ?costs ?stdin ?trace ?huge_pages ?topology ?hrt_cores ?trace_limit program =
  run_plain ~virtualized:false ?costs ?stdin ?trace ?huge_pages ?topology ?hrt_cores
    ?trace_limit program

let run_virtual ?costs ?stdin ?trace ?huge_pages ?topology ?hrt_cores ?trace_limit program =
  run_plain ~virtualized:true ?costs ?stdin ?trace ?huge_pages ?topology ?hrt_cores
    ?trace_limit program

let setup_multiverse ?costs ~options ~name ~fat body =
  let machine =
    Machine.create ?costs ~huge_pages:options.mv_huge_pages ~sockets:options.mv_sockets
      ~cores_per_socket:options.mv_cores_per_socket ~hrt_cores:options.mv_hrt_cores
      ?hrt_parts:options.mv_partitions ~work_stealing:options.mv_work_stealing
      ?trace_limit:options.mv_trace_limit ()
  in
  let kernel = Kernel.create machine in
  let hvm = Hvm.create machine ~ros:kernel in
  let nk = Nautilus.create machine in
  let proc =
    Kernel.spawn_process kernel ~name (fun p ->
        let rt =
          Runtime.init ~hvm ~proc:p ~fat ~nk ~channel_kind:options.mv_channel
            ~use_symbol_cache:options.mv_symbol_cache ~porting:options.mv_porting
            ~faults:options.mv_faults ~placement:options.mv_placement ()
        in
        body kernel p rt)
  in
  (machine, kernel, proc)

let run_multiverse ?costs ?stdin ?(trace = false) ?(options = default_mv_options) hx =
  let rt_box = ref None in
  let machine, kernel, proc =
    setup_multiverse ?costs ~options ~name:hx.hx_program.prog_name ~fat:hx.hx_fat
      (fun _kernel _p rt ->
        rt_box := Some rt;
        (* Incremental model: main() itself becomes a top-level HRT thread;
           the ROS main joins its partner. *)
        let partner =
          Runtime.hrt_invoke rt ~name:"main" (fun env -> hx.hx_program.prog_main env)
        in
        Runtime.join rt partner)
  in
  if trace then Machine.set_tracing machine true;
  prepare_stdin proc stdin;
  Mv_obs.Tracer.with_span machine.Machine.obs ~name:"run:multiverse" ~cat:"sim"
    (fun () -> Sim.run machine.Machine.sim);
  if not proc.Process.exited then
    failwith (hx.hx_program.prog_name ^ ": simulation quiesced before process exit");
  collect ~mode:"multiverse" ~kernel ~machine ~proc ~runtime:!rt_box

let run_accelerator ?costs ?stdin ?(options = default_mv_options) ~name body =
  let rt_box = ref None in
  let fat =
    (hybridize { prog_name = name; prog_main = (fun _ -> ()) }).hx_fat
  in
  let machine, kernel, proc =
    setup_multiverse ?costs ~options ~name ~fat (fun kernel p rt ->
        rt_box := Some rt;
        let ros_env = Mv_guest.Env.native kernel p in
        body ~ros_env ~rt)
  in
  prepare_stdin proc stdin;
  Mv_obs.Tracer.with_span machine.Machine.obs ~name:"run:accelerator" ~cat:"sim"
    (fun () -> Sim.run machine.Machine.sim);
  if not proc.Process.exited then failwith (name ^ ": simulation quiesced before exit");
  collect ~mode:"accelerator" ~kernel ~machine ~proc ~runtime:!rt_box
