(** The Multiverse toolchain and run harness.

    From the developer's perspective the HRT is a compilation target
    (paper, Section 3.1): [hybridize] takes an unmodified program (written
    against the {!Mv_guest.Env} ABI, i.e. the Linux ABI) and produces a fat
    binary that embeds the AeroKernel image and override configuration.

    The [run_*] functions execute a program in the paper's three
    evaluation configurations — native, virtualized, and hybridized — on a
    fresh simulated machine, and return uniform statistics. *)

type program = {
  prog_name : string;
  prog_main : Mv_guest.Env.t -> unit;
}

type hybrid_exe = {
  hx_program : program;
  hx_fat : Fat_binary.t;
  hx_bytes : string;  (** the encoded fat binary, as it would sit on disk *)
}

val hybridize :
  ?overrides:Override_config.t -> ?image_kb:int -> program -> hybrid_exe
(** "Recompile with the Multiverse toolchain": package the program with an
    embedded AeroKernel image (default 640 KiB) and the override
    configuration.  [overrides] are the developer's own, appended to the
    enforced pthread defaults at init time. *)

type mv_options = {
  mv_channel : Mv_hvm.Event_channel.kind;
  mv_symbol_cache : bool;
  mv_porting : Runtime.porting;
  mv_faults : Mv_faults.Fault_plan.t;
      (** Fault-injection plan; {!Mv_faults.Fault_plan.none} (the default)
          keeps every code path identical to the fault-free runtime. *)
  mv_huge_pages : bool;
      (** Enable the huge-page memory path (1 GiB HRT identity leaves,
          transparent 2 MiB promotion of anonymous VMAs, range-batched
          shootdowns).  Default [true]; the mempath bench A/Bs this. *)
  mv_sockets : int;  (** machine geometry (default 2 x 4, the reference box) *)
  mv_cores_per_socket : int;
  mv_hrt_cores : int;  (** cores carved out for the HRT partition (default 1) *)
  mv_partitions : int list option;
      (** elastic partition spec: [Some [n1; n2; ...]] carves one HRT
          partition of [ni] cores per entry from the top of the core range
          (ids 1, 2, ... in spec order).  Overrides [mv_hrt_cores] when
          set; [Some [n]] is byte-identical to [mv_hrt_cores = n].  The
          runtime binds to partition 1; further partitions are for
          multi-tenant drivers that create their own Nautilus instances
          ({!Mv_aerokernel.Nautilus.create} with [~part]).  Default
          [None]. *)
  mv_placement : Runtime.placement;
      (** execution-group placement (default [Spread], the historical
          behaviour; [Affine] keeps each group's cores, frames and poller
          group on one socket) *)
  mv_work_stealing : bool;
      (** deterministic work stealing across the ROS cores' per-core
          runqueues (default [false] — off is byte-identical to the
          pre-stealing scheduler) *)
  mv_trace_limit : int option;
      (** bounded trace retention: keep only the newest N records in a
          ring ({!Mv_engine.Trace.create}); default [None] = full
          history, which the golden trace depends on *)
}

val default_mv_options : mv_options

type run_stats = {
  rs_mode : string;
  rs_stdout : string;
  rs_exit_code : int;
  rs_wall_cycles : int;  (** process start to exit *)
  rs_rusage : Mv_ros.Rusage.t;
  rs_syscalls : Mv_util.Histogram.t;
  rs_kernel : Mv_ros.Kernel.t;
  rs_machine : Mv_engine.Machine.t;
  rs_runtime : Runtime.t option;  (** present for Multiverse runs *)
}

val total_syscalls : run_stats -> int
val wall_seconds : run_stats -> float

val run_native :
  ?costs:Mv_hw.Costs.t ->
  ?stdin:string ->
  ?trace:bool ->
  ?huge_pages:bool ->
  ?topology:int * int ->
  ?hrt_cores:int ->
  ?trace_limit:int ->
  program ->
  run_stats
(** Bare-metal Linux execution (the paper's "Native" rows).  [huge_pages]
    (default [true]) toggles the machine's huge-page memory path;
    [topology] is [(sockets, cores_per_socket)] (default [(2, 4)], the
    reference box); [trace_limit] bounds trace retention
    ({!Mv_engine.Machine.create}). *)

val run_virtual :
  ?costs:Mv_hw.Costs.t ->
  ?stdin:string ->
  ?trace:bool ->
  ?huge_pages:bool ->
  ?topology:int * int ->
  ?hrt_cores:int ->
  ?trace_limit:int ->
  program ->
  run_stats
(** The same, as an HVM guest: exit and nested-paging overheads apply. *)

val run_multiverse :
  ?costs:Mv_hw.Costs.t ->
  ?stdin:string ->
  ?trace:bool ->
  ?options:mv_options ->
  hybrid_exe ->
  run_stats
(** The incremental usage model: the program's [main] runs as a top-level
    HRT thread, everything else is forwarded.  The user-visible behaviour
    (stdout, exit code) must match the native run. *)

val setup_multiverse :
  ?costs:Mv_hw.Costs.t ->
  options:mv_options ->
  name:string ->
  fat:Fat_binary.t ->
  (Mv_ros.Kernel.t -> Mv_ros.Process.t -> Runtime.t -> unit) ->
  Mv_engine.Machine.t * Mv_ros.Kernel.t * Mv_ros.Process.t
(** Build the full Multiverse stack (machine, ROS kernel, HVM, AeroKernel,
    runtime) and spawn the process whose main runs [body kernel proc rt] —
    but do {e not} run the simulation.  Nothing executes until the caller
    drives [machine.sim]; the window in between is where the mvcheck model
    checker installs its {!Mv_engine.Exec.set_sched_hook} and where custom
    drivers can bound the event budget.  {!run_multiverse} is this plus
    [Sim.run] plus stat collection. *)

val run_accelerator :
  ?costs:Mv_hw.Costs.t ->
  ?stdin:string ->
  ?options:mv_options ->
  name:string ->
  (ros_env:Mv_guest.Env.t -> rt:Runtime.t -> unit) ->
  run_stats
(** The accelerator usage model: the given body runs as the program's ROS
    main with the Multiverse runtime initialized, free to mix legacy
    execution with [Runtime.hrt_invoke] and AeroKernel calls (the paper's
    Figure 4/5 examples). *)
