(** The Multiverse runtime component — what the toolchain compiles and
    links into the user program (paper, Sections 3 and 4).

    [init] performs the program-startup tasks the toolchain hooks in before
    [main()]: registering ROS signal handlers, hooking process exit,
    AeroKernel function linkage, parsing and installing the embedded
    AeroKernel image, booting the HRT, and merging the address spaces.

    [hrt_invoke] implements split execution: each top-level HRT thread gets
    a {e partner thread} in the ROS that allocates its ROS-side stack,
    requests its creation via the HVM (superimposing GDT/TLS state), and
    then serves its event channel until the HRT thread exits — signalled
    back asynchronously, flipping a bit in the partner's state.  Joining
    the partner is how [pthread_join] semantics are preserved. *)

exception Disallowed of string
(** Raised when HRT-context code uses functionality Multiverse prohibits
    ([execve], raw [clone], [futex] — paper, Section 4.2). *)

type porting = {
  port_mmap : bool;  (** mmap/munmap/mprotect served by AeroKernel overrides *)
  port_signals : bool;  (** sigaction/sigprocmask + delivery kept HRT-local *)
  port_faults : bool;  (** lower-half faults serviced in the HRT (kernel mode) *)
}

val no_porting : porting
val full_porting : porting

type t

val init :
  hvm:Mv_hvm.Hvm.t ->
  proc:Mv_ros.Process.t ->
  fat:Fat_binary.t ->
  nk:Mv_aerokernel.Nautilus.t ->
  ?channel_kind:Mv_hvm.Event_channel.kind ->
  ?use_symbol_cache:bool ->
  ?porting:porting ->
  ?faults:Mv_faults.Fault_plan.t ->
  unit ->
  t
(** Run the Multiverse initialization sequence (thread context: call from
    the program's main ROS thread).  Installs the default pthread
    overrides plus any from the fat binary's [.mv.overrides] section.

    An enabled [faults] plan arms the whole resilience stack: lossy event
    channels with timeout/retry/backoff, a per-group partner watchdog that
    respawns killed partners, spurious-errno retry on forwarded syscalls,
    and graceful degradation (Sync -> Async channel fallback, ROS-native
    rerouting when a channel dies).  With the default [Fault_plan.none]
    every code path is byte-identical to the fault-free runtime. *)

val hrt_env : t -> Mv_guest.Env.t
(** The guest ABI as seen from HRT context: syscalls forward over the
    execution group's event channel, vdso calls and overridden functions
    run locally, memory faults follow the Nautilus forwarding path. *)

val hrt_invoke : t -> name:string -> (Mv_guest.Env.t -> unit) -> Mv_guest.Env.thread_handle
(** Create an execution group running the function as a top-level HRT
    thread; returns the ROS partner thread (join it to join the group).
    Callable from ROS context or (via the pthread override) from HRT
    context. *)

val join : t -> Mv_guest.Env.thread_handle -> unit

val create_nested : t -> name:string -> (unit -> unit) -> Mv_guest.Env.thread_handle
(** From HRT context: create a {e nested} HRT thread (paper, Figure 7) —
    a pure AeroKernel thread with no partner of its own that raises its
    events through the caller's top-level partner.  Join it with
    {!join_nested}. *)

val join_nested : t -> Mv_guest.Env.thread_handle -> unit
(** Join a nested thread directly (AeroKernel join; no partner involved). *)

val shutdown : t -> unit
(** Poison all live partners (the process-exit hook calls this). *)

(** {1 Introspection} *)

val symbols : t -> Symbols.t
val config : t -> Override_config.t
val nk : t -> Mv_aerokernel.Nautilus.t
val groups_created : t -> int
val faults_serviced_locally : t -> int
val overridden_calls : t -> int

(** {1 Resilience counters} *)

val fault_plan : t -> Mv_faults.Fault_plan.t

val faults_injected : t -> int
(** Total faults the plan injected (all sites). *)

val retries : t -> int
(** Channel call retries (timeout + backoff) plus forwarded-syscall
    retries after spurious errnos. *)

val fallbacks : t -> int
(** Sync -> Async channel degradations. *)

val respawns : t -> int
(** Partner threads respawned by the watchdog. *)

val reroutes : t -> int
(** Requests rerouted to ROS-native execution after channel death or
    persistent spurious errnos. *)
