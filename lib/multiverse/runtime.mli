(** The Multiverse runtime component — what the toolchain compiles and
    links into the user program (paper, Sections 3 and 4).

    [init] performs the program-startup tasks the toolchain hooks in before
    [main()]: registering ROS signal handlers, hooking process exit,
    AeroKernel function linkage, parsing and installing the embedded
    AeroKernel image, booting the HRT, merging the address spaces, and
    bringing up the forwarding fabric ({!Mv_hvm.Fabric}) with its shared
    ROS-side poller pool.

    [hrt_invoke] implements split execution: each top-level HRT thread gets
    a {e partner thread} in the ROS that allocates its ROS-side stack and
    requests its creation via the HVM (superimposing GDT/TLS state).  The
    group's events are served by the fabric's poller pool — the partner
    itself just waits for the HRT-exit signal, so joining the partner is
    how [pthread_join] semantics are preserved without a dedicated server
    loop per group. *)

exception Disallowed of string
(** Raised when HRT-context code uses functionality Multiverse prohibits
    ([execve], raw [clone], [futex] — paper, Section 4.2). *)

type porting = {
  port_mmap : bool;  (** mmap/munmap/mprotect served by AeroKernel overrides *)
  port_signals : bool;  (** sigaction/sigprocmask + delivery kept HRT-local *)
  port_faults : bool;  (** lower-half faults serviced in the HRT (kernel mode) *)
}

val no_porting : porting
val full_porting : porting

type placement = Spread | Affine
(** Execution-group placement policy.  [Spread] (the default, and the
    historical behaviour) serves every group from the first ROS core and
    round-robins HRT threads over the whole HRT partition.  [Affine] keeps
    a group on one socket: the HRT round-robin is unchanged, but the
    group's partner/endpoint lands on the ROS core nearest its HRT core
    (ties rotated by group id), the fabric poller pool is sharded
    per-socket ({!Mv_hvm.Fabric.Per_socket}), and demand-paged frames come
    from the faulting core's NUMA zone
    ({!Mv_engine.Machine.alloc_frame}). *)

type t

val init :
  hvm:Mv_hvm.Hvm.t ->
  proc:Mv_ros.Process.t ->
  fat:Fat_binary.t ->
  nk:Mv_aerokernel.Nautilus.t ->
  ?channel_kind:Mv_hvm.Event_channel.kind ->
  ?use_symbol_cache:bool ->
  ?porting:porting ->
  ?faults:Mv_faults.Fault_plan.t ->
  ?placement:placement ->
  unit ->
  t
(** Run the Multiverse initialization sequence (thread context: call from
    the program's main ROS thread).  Installs the default pthread
    overrides plus any from the fat binary's [.mv.overrides] section.

    An enabled [faults] plan arms the fabric's whole resilience stack:
    lossy event channels with timeout/retry/backoff, a pool watchdog that
    respawns killed pollers, spurious-errno retry on forwarded syscalls,
    and graceful degradation (Sync -> Async endpoint fallback, ROS-native
    rerouting when an endpoint dies).  With the default [Fault_plan.none]
    every code path is byte-identical to the fault-free runtime. *)

val hrt_env : t -> Mv_guest.Env.t
(** The guest ABI as seen from HRT context: syscalls forward over the
    execution group's fabric endpoint (batching into in-flight calls when
    possible), vdso calls and overridden functions run locally, memory
    faults follow the Nautilus forwarding path with promoted repeat faults
    re-merged locally. *)

val hrt_invoke : t -> name:string -> (Mv_guest.Env.t -> unit) -> Mv_guest.Env.thread_handle
(** Create an execution group running the function as a top-level HRT
    thread; returns the ROS partner thread (join it to join the group).
    Callable from ROS context or (via the pthread override) from HRT
    context. *)

val join : t -> Mv_guest.Env.thread_handle -> unit

val create_nested : t -> name:string -> (unit -> unit) -> Mv_guest.Env.thread_handle
(** From HRT context: create a {e nested} HRT thread (paper, Figure 7) —
    a pure AeroKernel thread with no partner of its own that raises its
    events through the caller's execution-group endpoint.  Join it with
    {!join_nested}. *)

val join_nested : t -> Mv_guest.Env.thread_handle -> unit
(** Join a nested thread directly (AeroKernel join; no partner involved). *)

val shutdown : t -> unit
(** Release all live partners and stop the fabric's poller pool (the
    process-exit hook calls this). *)

(** {1 Introspection} *)

val symbols : t -> Symbols.t
val config : t -> Override_config.t
val nk : t -> Mv_aerokernel.Nautilus.t

val partition : t -> Mv_hw.Partition.id
(** The HRT partition this runtime is bound to — the partition its [nk]
    was created in.  Execution groups round-robin over this partition's
    cores, and the runtime registers an {!Mv_hvm.Hvm.on_repartition} hook
    so core lending re-homes its fabric endpoints. *)

val fabric : t -> Mv_hvm.Fabric.t
(** The forwarding fabric (batching/routing/fast-path counters live
    there). *)

val groups_created : t -> int
val faults_serviced_locally : t -> int
val overridden_calls : t -> int

(** {1 Resilience counters (delegated to the fabric)} *)

val fault_plan : t -> Mv_faults.Fault_plan.t

val faults_injected : t -> int
(** Total faults the plan injected (all sites). *)

val retries : t -> int
(** Channel call retries (timeout + backoff) plus forwarded-syscall
    retries after spurious errnos. *)

val fallbacks : t -> int
(** Sync -> Async endpoint degradations. *)

val respawns : t -> int
(** Pollers respawned by the fabric watchdog. *)

val reroutes : t -> int
(** Requests rerouted to ROS-native execution after endpoint death or
    persistent spurious errnos. *)
