module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Nautilus = Mv_aerokernel.Nautilus
module Hvm = Mv_hvm.Hvm
module Event_channel = Mv_hvm.Event_channel
module Fabric = Mv_hvm.Fabric
module Fault_plan = Mv_faults.Fault_plan
open Mv_ros
open Mv_hw

exception Disallowed of string

type porting = { port_mmap : bool; port_signals : bool; port_faults : bool }

let no_porting = { port_mmap = false; port_signals = false; port_faults = false }
let full_porting = { port_mmap = true; port_signals = true; port_faults = true }

type placement = Spread | Affine

type group = {
  g_id : int;
  g_name : string;
  g_ep : Fabric.endpoint;
  mutable g_partner : Exec.thread option;
  mutable g_hrt : Exec.thread option;
  mutable g_done : bool;  (* flipped by the HRT-exit signal handler *)
  mutable g_wake : (unit -> unit) option;  (* the parked partner *)
  mutable g_stack : Addr.t option;  (* ROS-side stack, freed by the partner *)
}

type t = {
  hvm : Hvm.t;
  ros : Kernel.t;
  proc : Process.t;
  part : Partition.id;  (* the HRT partition this runtime is bound to *)
  the_nk : Nautilus.t;
  the_symbols : Symbols.t;
  the_config : Override_config.t;
  the_fabric : Fabric.t;
  porting : porting;
  faults : Fault_plan.t;
  channels : (int, Fabric.endpoint) Hashtbl.t;  (* HRT tid -> endpoint *)
  groups : (int, group) Hashtbl.t;
  mutable next_group : int;
  nk_signals : Signal.t;  (* HRT-local signal table when port_signals *)
  mutable n_local_faults : int;
  mutable n_overridden : int;
  mutable the_env : Mv_guest.Env.t option;
  mutable shutting_down : bool;
  mutable hrt_rr : int;  (* round-robin cursor over the HRT cores *)
  placement : placement;
}

let hrt_stack_size = 64 * 1024

let machine t = Hvm.machine t.hvm

let in_hrt_context t =
  let core = Exec.cpu_of (Exec.self (machine t).Machine.exec) in
  Topology.role (machine t).Machine.topo core = Topology.Hrt_core

let ep_of_self t =
  let self = Exec.self (machine t).Machine.exec in
  match Hashtbl.find_opt t.channels (Exec.tid self) with
  | Some ep -> ep
  | None ->
      failwith
        (Printf.sprintf "Multiverse: HRT thread has no fabric endpoint (%s)"
           (Exec.name self))

(* Forward a typed operation through the Nautilus syscall stub; its wired
   service ships the payload over the current execution group's fabric
   endpoint, where it runs in ROS context (a pool poller, or batched into
   another call's drain).  All resilience — spurious-errno retry, channel
   timeout/backoff, Sync->Async degradation, ROS-native rerouting — lives
   in the fabric now. *)
let forward (type a) t name (f : unit -> a) : a =
  let result = ref None in
  Nautilus.syscall t.the_nk ~name (fun () -> result := Some (f ()));
  match !result with
  | Some v -> v
  | None -> failwith ("Multiverse.forward: no result for " ^ name)

(* --- Nautilus service wiring --- *)

let deliver_segv_locally t info =
  (* In-kernel delivery: no user frame, just a function call. *)
  match Signal.action t.nk_signals info.Signal.si_signo with
  | Signal.Handler h ->
      Machine.charge (machine t) 350;
      h info;
      Machine.charge (machine t) 120
  | Signal.Ignore -> ()
  | Signal.Default ->
      failwith
        (Printf.sprintf "Multiverse: unhandled local %s at %x"
           (Signal.name info.Signal.si_signo)
           info.Signal.si_addr)

let service_fault_local t addr ~write =
  t.n_local_faults <- t.n_local_faults + 1;
  let costs = (machine t).Machine.costs in
  (* Kernel-mode fault service: the trap already happened on the HRT core;
     page-table edits are direct ("hundreds of times faster ... instead of
     behind a system call interface", paper Section 5). *)
  Machine.charge (machine t) (costs.Costs.page_fault_trap / 4);
  match Mm.handle_fault t.proc.Process.mm addr ~write with
  | Mm.Fixed_minor ->
      t.proc.Process.rusage.Rusage.minflt <- t.proc.Process.rusage.Rusage.minflt + 1;
      Nautilus.Fault_fixed
  | Mm.Segv info ->
      if t.porting.port_signals && Signal.registered t.nk_signals info.Signal.si_signo
      then begin
        deliver_segv_locally t info;
        Nautilus.Fault_fixed
      end
      else begin
        (* Signals not ported: replicate to the ROS for delivery. *)
        Fabric.call t.the_fabric (ep_of_self t)
          {
            Event_channel.req_kind = "#signal";
            req_run = (fun () -> Kernel.deliver_signal t.ros t.proc info);
          };
        Nautilus.Fault_fixed
      end

let service_fault_forwarded t addr ~write =
  (* Repeat faults on a page whose mapping already exists in the ROS master
     table are promoted to an HRT-local re-merge: the PML4 copy is merely
     stale and no ROS round trip is needed (paper, Section 4.4). *)
  Fabric.call t.the_fabric (ep_of_self t)
    ~key:(Printf.sprintf "%x" (Addr.page_of addr))
    ~local_try:(fun () ->
      if Nautilus.page_resolves t.the_nk addr ~write then begin
        Nautilus.remerge t.the_nk;
        true
      end
      else false)
    {
      Event_channel.req_kind = "#pf";
      req_run =
        (fun () ->
          (* The server replicates the access; the same exception occurs on
             the ROS core and is handled as it would be natively, including
             SIGSEGV delivery to the registered handler. *)
          match Kernel.service_fault t.ros t.proc addr ~write with
          | Mm.Fixed_minor -> ()
          | Mm.Segv info -> Kernel.deliver_signal t.ros t.proc info);
    };
  Nautilus.Fault_fixed

let wire_services t =
  Nautilus.set_services t.the_nk
    {
      Nautilus.svc_forward_fault =
        (fun addr ~write ->
          if t.porting.port_faults then service_fault_local t addr ~write
          else service_fault_forwarded t addr ~write);
      svc_forward_syscall =
        (fun name run ->
          Fabric.call t.the_fabric (ep_of_self t) ~errno_site:true
            { Event_channel.req_kind = name; req_run = run });
      svc_request_remerge = (fun () -> Mm.page_table t.proc.Process.mm);
    }

(* --- execution groups (split execution) --- *)

(* HRT thread exited (or the runtime is winding down): unbind the HRT tid
   and free the ROS-side stack.  Runs in the partner thread after its wait
   is released. *)
let partner_cleanup t g =
  let mach = machine t in
  (match g.g_hrt with
  | Some hrt_th -> Hashtbl.remove t.channels (Exec.tid hrt_th)
  | None -> ());
  match g.g_stack with
  | Some stack ->
      g.g_stack <- None;
      Kernel.in_sys t.ros (fun () -> Machine.charge mach mach.Machine.costs.Costs.syscall_trap);
      ignore (Syscalls.munmap t.ros t.proc ~addr:stack ~len:hrt_stack_size)
  | None -> ()

(* Mark the group done and release its parked partner.  Runs from the
   HRT-exit signal handler (delivered through the fabric's injection
   endpoint) or from [shutdown]. *)
let finish_group g =
  if not g.g_done then begin
    g.g_done <- true;
    match g.g_wake with
    | Some wake ->
        g.g_wake <- None;
        wake ()
    | None -> ()
  end

(* Affine placement: the ROS core nearest the group's HRT core (ties
   rotated by group id, so same-socket groups still spread over the
   socket's ROS cores). *)
let affine_ros_core t ~gid ~hrt_core =
  let topo = (machine t).Machine.topo in
  let scored =
    List.sort compare
      (List.map (fun c -> (Topology.distance topo c hrt_core, c)) (Topology.ros_cores topo))
  in
  let d0 = fst (List.hd scored) in
  let nearest = List.filter (fun (d, _) -> d = d0) scored in
  snd (List.nth nearest ((gid - 1) mod List.length nearest))

let create_group t ~name fn =
  let gid = t.next_group in
  t.next_group <- t.next_group + 1;
  let mach = machine t in
  (* Spread execution groups across this runtime's HRT partition. *)
  let hrt_cores = Topology.cores_of mach.Machine.topo t.part in
  let hrt_core = List.nth hrt_cores (t.hrt_rr mod List.length hrt_cores) in
  t.hrt_rr <- t.hrt_rr + 1;
  let ros_core =
    match t.placement with
    | Spread -> List.hd (Topology.ros_cores mach.Machine.topo)
    | Affine -> affine_ros_core t ~gid ~hrt_core
  in
  let ep = Fabric.endpoint t.the_fabric ~name ~ros_core ~hrt_core in
  let g =
    {
      g_id = gid;
      g_name = name;
      g_ep = ep;
      g_partner = None;
      g_hrt = None;
      g_done = false;
      g_wake = None;
      g_stack = None;
    }
  in
  Hashtbl.replace t.groups gid g;
  let hrt_body () =
    (* First thing on the HRT side: bind this thread to its group endpoint
       (nested threads inherit it). *)
    Hashtbl.replace t.channels (Exec.tid (Exec.self mach.Machine.exec)) ep;
    (try fn (Option.get t.the_env)
     with Kernel.Process_killed _ -> ());
    (* Signal exit: the HVM injects an "interrupt to user" whose handler
       flips the partner's bit (paper, Section 4.2). *)
    Hvm.raise_signal_to_ros t.hvm ~payload:gid
  in
  let partner_body () =
    let costs = mach.Machine.costs in
    (* The partner allocates the ROS-side stack for the HRT thread... *)
    Kernel.in_sys t.ros (fun () -> Machine.charge mach costs.Costs.syscall_trap);
    let stack =
      match
        Syscalls.mmap t.ros t.proc ~len:hrt_stack_size ~prot:Mm.prot_rw ~kind:"hrt-stack"
      with
      | Ok a -> a
      | Error e -> failwith ("partner: stack mmap failed: " ^ Syscalls.errno_name e)
    in
    g.g_stack <- Some stack;
    (* ... then asks the HVM to create the HRT thread (superimposing
       GDT/TLS state on the target core).  The group's events are served
       by the fabric's shared poller pool, so the partner itself just
       waits for the HRT-exit signal: [pthread_join] semantics without a
       dedicated busy-loop server per group. *)
    let hrt_th =
      Hvm.hrt_create_thread ~part:t.part t.hvm t.proc ~name:(name ^ "/hrt") ~core:hrt_core
        hrt_body
    in
    g.g_hrt <- Some hrt_th;
    Hashtbl.replace t.channels (Exec.tid hrt_th) ep;
    Kernel.register_foreign_thread t.ros t.proc hrt_th;
    if not g.g_done then
      Exec.block mach.Machine.exec ~reason:"partner:wait" (fun ~now:_ ~wake ->
          g.g_wake <- Some (fun () -> wake ()));
    partner_cleanup t g
  in
  let partner =
    Kernel.spawn_thread t.ros t.proc ~name:(name ^ "/partner") ~cpu:ros_core partner_body
  in
  g.g_partner <- Some partner;
  partner

let hrt_invoke t ~name fn =
  if t.shutting_down then failwith "Multiverse: runtime is shutting down";
  if in_hrt_context t then
    (* pthread_create from HRT context: the group creation itself is a
       request to the ROS side, served through the fabric. *)
    forward t "hrt-invoke" (fun () -> create_group t ~name fn)
  else create_group t ~name fn

(* Partners are never fault-injection targets (the kill site drives the
   fabric's poller pool instead), so joining a group is a plain join on
   its partner thread. *)
let join t partner = Exec.join (machine t).Machine.exec partner

(* Nested HRT threads (paper, Figure 7): created from inside the HRT,
   cheap AeroKernel threads with no partner; their events go through the
   creator's execution-group endpoint. *)
let create_nested t ~name body =
  if not (in_hrt_context t) then
    failwith "Multiverse.create_nested: only callable from HRT context";
  let ep = ep_of_self t in
  let mach = machine t in
  let core = Exec.cpu_of (Exec.self mach.Machine.exec) in
  let th =
    Nautilus.create_thread_local t.the_nk ~name ~core (fun () ->
        (* Bind to the parent's endpoint before anything can fault. *)
        Hashtbl.replace t.channels (Exec.tid (Exec.self mach.Machine.exec)) ep;
        Fun.protect
          ~finally:(fun () ->
            Hashtbl.remove t.channels (Exec.tid (Exec.self mach.Machine.exec)))
          body)
  in
  Hashtbl.replace t.channels (Exec.tid th) ep;
  Kernel.register_foreign_thread t.ros t.proc th;
  th

let join_nested t th = Nautilus.join_thread t.the_nk th

let shutdown t =
  t.shutting_down <- true;
  Hashtbl.iter (fun _ g -> finish_group g) t.groups;
  Fabric.shutdown t.the_fabric

(* --- the HRT-side guest ABI --- *)

let override_call t name =
  t.n_overridden <- t.n_overridden + 1;
  let costs = (machine t).Machine.costs in
  Machine.charge (machine t) costs.Costs.wrapper_dispatch;
  match Override_config.find t.the_config ~legacy:name with
  | Some entry ->
      ignore (Symbols.lookup t.the_symbols entry.Override_config.ov_symbol);
      Machine.charge (machine t) entry.Override_config.ov_cost
  | None -> failwith ("Multiverse: no override entry for " ^ name)

(* The hybridized program's ABI.  Split execution means the {e same} code
   can run on either side: HRT threads forward over their group's fabric
   endpoint, while guest code momentarily executing in ROS context (e.g. a
   SIGSEGV handler delivered during fault replication) takes the native
   path.  Dispatch per call site on the current core's role. *)
let make_env t : Mv_guest.Env.t =
  let mach = machine t in
  let ros = t.ros and proc = t.proc in
  let nat = Mv_guest.Env.native ros proc in
  let ok_or_zero = function Ok n -> n | Error _ -> 0 in
  let hrt_side () = in_hrt_context t in
  let fwd name f = forward t name f in
  {
    Mv_guest.Env.mode_name = "multiverse";
    kernel = ros;
    proc;
    work = (fun c -> Machine.charge mach c);
    touch =
      (fun addr ->
        if hrt_side () then Nautilus.access t.the_nk addr ~write:false
        else nat.Mv_guest.Env.touch addr);
    store =
      (fun addr ->
        if hrt_side () then Nautilus.access t.the_nk addr ~write:true
        else nat.Mv_guest.Env.store addr);
    mmap =
      (fun ~len ~prot ~kind ->
        if not (hrt_side ()) then nat.Mv_guest.Env.mmap ~len ~prot ~kind
        else if t.porting.port_mmap then begin
          override_call t "mmap";
          Kernel.count_syscall ros proc "nk_mmap";
          Mm.mmap proc.Process.mm ~len ~prot ~kind
        end
        else
          fwd "mmap" (fun () ->
              match Syscalls.mmap ros proc ~len ~prot ~kind with
              | Ok a -> a
              | Error e -> failwith ("mmap: " ^ Syscalls.errno_name e)));
    munmap =
      (fun ~addr ~len ->
        if not (hrt_side ()) then nat.Mv_guest.Env.munmap ~addr ~len
        else if t.porting.port_mmap then begin
          override_call t "munmap";
          Kernel.count_syscall ros proc "nk_munmap";
          ignore (Mm.munmap proc.Process.mm addr ~len)
        end
        else fwd "munmap" (fun () -> ignore (Syscalls.munmap ros proc ~addr ~len)));
    mprotect =
      (fun ~addr ~len ~prot ->
        if not (hrt_side ()) then nat.Mv_guest.Env.mprotect ~addr ~len ~prot
        else if t.porting.port_mmap then begin
          override_call t "mprotect";
          Kernel.count_syscall ros proc "nk_mprotect";
          ignore (Mm.mprotect proc.Process.mm addr ~len prot)
        end
        else
          fwd "mprotect" (fun () -> ignore (Syscalls.mprotect ros proc ~addr ~len ~prot)));
    brk =
      (fun req ->
        if hrt_side () then fwd "brk" (fun () -> Syscalls.brk ros proc req)
        else nat.Mv_guest.Env.brk req);
    open_ =
      (fun ~path ~flags ->
        if hrt_side () then fwd "open" (fun () -> Syscalls.openat ros proc ~path ~flags)
        else nat.Mv_guest.Env.open_ ~path ~flags);
    close =
      (fun ~fd ->
        if hrt_side () then fwd "close" (fun () -> ignore (Syscalls.close ros proc ~fd))
        else nat.Mv_guest.Env.close ~fd);
    read =
      (fun ~fd ~buf ~off ~len ->
        if hrt_side () then
          fwd "read" (fun () -> ok_or_zero (Syscalls.read ros proc ~fd ~buf ~off ~len))
        else nat.Mv_guest.Env.read ~fd ~buf ~off ~len);
    write =
      (fun ~fd ~buf ~off ~len ->
        if hrt_side () then
          fwd "write" (fun () -> ok_or_zero (Syscalls.write ros proc ~fd ~buf ~off ~len))
        else nat.Mv_guest.Env.write ~fd ~buf ~off ~len);
    stat =
      (fun ~path ->
        if hrt_side () then fwd "stat" (fun () -> Syscalls.stat ros proc ~path)
        else nat.Mv_guest.Env.stat ~path);
    fstat =
      (fun ~fd ->
        if hrt_side () then fwd "fstat" (fun () -> Syscalls.fstat ros proc ~fd)
        else nat.Mv_guest.Env.fstat ~fd);
    lseek =
      (fun ~fd ~pos ->
        if hrt_side () then
          fwd "lseek" (fun () -> ok_or_zero (Syscalls.lseek ros proc ~fd ~pos))
        else nat.Mv_guest.Env.lseek ~fd ~pos);
    access_path =
      (fun ~path ->
        if hrt_side () then
          fwd "access" (fun () ->
              match Syscalls.access_path ros proc ~path with Ok () -> true | Error _ -> false)
        else nat.Mv_guest.Env.access_path ~path);
    getcwd =
      (fun () ->
        if hrt_side () then fwd "getcwd" (fun () -> Syscalls.getcwd ros proc)
        else nat.Mv_guest.Env.getcwd ());
    sigaction =
      (fun signo handler ->
        if not (hrt_side ()) then nat.Mv_guest.Env.sigaction signo handler
        else if t.porting.port_signals then begin
          override_call t "rt_sigaction";
          Kernel.count_syscall ros proc "nk_sigaction";
          Signal.set_action t.nk_signals signo handler
        end
        else fwd "rt_sigaction" (fun () -> Syscalls.rt_sigaction ros proc ~signo ~handler));
    sigprocmask =
      (fun ~block signo ->
        if not (hrt_side ()) then nat.Mv_guest.Env.sigprocmask ~block signo
        else if t.porting.port_signals then begin
          Kernel.count_syscall ros proc "nk_sigprocmask";
          if block then Signal.block t.nk_signals signo
          else Signal.unblock t.nk_signals signo
        end
        else fwd "rt_sigprocmask" (fun () -> Syscalls.rt_sigprocmask ros proc ~block ~signo));
    (* vdso calls execute locally in the merged address space — the HRT
       core's sparse TLB makes them slightly faster than under
       virtualization (Figure 9).  They still route through the fabric so
       the promotion table accounts them as local fast-path hits. *)
    gettimeofday =
      (fun () ->
        if hrt_side () then begin
          let r = ref 0. in
          Fabric.call t.the_fabric (ep_of_self t)
            {
              Event_channel.req_kind = "gettimeofday";
              req_run = (fun () -> r := Syscalls.gettimeofday ros proc);
            };
          !r
        end
        else Syscalls.gettimeofday ros proc);
    getpid =
      (fun () ->
        if hrt_side () then begin
          let r = ref 0 in
          Fabric.call t.the_fabric (ep_of_self t)
            {
              Event_channel.req_kind = "getpid";
              req_run = (fun () -> r := Syscalls.getpid ros proc);
            };
          !r
        end
        else Syscalls.getpid ros proc);
    getrusage =
      (fun () ->
        if hrt_side () then fwd "getrusage" (fun () -> Syscalls.getrusage ros proc)
        else nat.Mv_guest.Env.getrusage ());
    setitimer =
      (fun ~interval_us ->
        if hrt_side () then
          fwd "setitimer" (fun () -> Syscalls.setitimer ros proc ~interval_us)
        else nat.Mv_guest.Env.setitimer ~interval_us);
    poll =
      (fun ~fds ~timeout_ms ->
        if hrt_side () then fwd "poll" (fun () -> Syscalls.poll ros proc ~fds ~timeout_ms)
        else nat.Mv_guest.Env.poll ~fds ~timeout_ms);
    nanosleep =
      (fun ~ns ->
        if hrt_side () then fwd "nanosleep" (fun () -> Syscalls.nanosleep ros proc ~ns)
        else nat.Mv_guest.Env.nanosleep ~ns);
    sched_yield =
      (fun () ->
        if hrt_side () then fwd "sched_yield" (fun () -> Syscalls.sched_yield ros proc)
        else nat.Mv_guest.Env.sched_yield ());
    uname =
      (fun () ->
        if hrt_side () then fwd "uname" (fun () -> Syscalls.uname ros proc)
        else nat.Mv_guest.Env.uname ());
    thread_create =
      (fun ~name body ->
        (* Default override: pthread_create -> AeroKernel thread creation
           via a fresh execution group (paper, Figure 5). *)
        override_call t "pthread_create";
        hrt_invoke t ~name (fun _env -> body ()));
    thread_join =
      (fun partner ->
        override_call t "pthread_join";
        join t partner);
    exit =
      (fun ~code ->
        if hrt_side () then fwd "exit_group" (fun () -> Syscalls.exit_group ros proc ~code)
        else nat.Mv_guest.Env.exit ~code);
    execve =
      (fun ~path ->
        if hrt_side () then raise (Disallowed "execve")
        else nat.Mv_guest.Env.execve ~path);
  }

(* --- initialization (paper, Section 3.5) --- *)

let register_nk_variants nk config =
  let ensure name cost =
    if Nautilus.func_address nk name = None then
      Nautilus.register_func nk ~name ~cost (fun () -> ())
  in
  List.iter
    (fun e -> ensure e.Override_config.ov_symbol e.Override_config.ov_cost)
    config.Override_config.entries;
  ensure "nk_mmap" 320;
  ensure "nk_munmap" 360;
  ensure "nk_mprotect" 260;
  ensure "nk_sigaction" 180

let init ~hvm ~proc ~fat ~nk ?(channel_kind = Event_channel.Async)
    ?(use_symbol_cache = false) ?(porting = no_porting) ?(faults = Fault_plan.none)
    ?(placement = Spread) () =
  if porting.port_signals && not porting.port_faults then
    invalid_arg "Multiverse: porting signals requires porting fault handling";
  let ros = Hvm.ros hvm in
  let mach = Hvm.machine hvm in
  let costs = mach.Machine.costs in
  (* Parse the AeroKernel image embedded in our own fat binary. *)
  let image =
    match Fat_binary.section fat Fat_binary.sec_hrt_image with
    | Some s -> s
    | None -> failwith "Multiverse: executable has no embedded AeroKernel image"
  in
  let image_kb = max 1 (String.length image / 1024) in
  Machine.charge mach (image_kb * costs.Costs.image_install_per_kb / 4);
  (* Overrides: the enforced pthread defaults plus the developer's file. *)
  let config =
    match Fat_binary.section fat Fat_binary.sec_overrides with
    | Some text -> (
        match Override_config.parse text with
        | Ok c ->
            {
              Override_config.entries =
                Override_config.default.Override_config.entries @ c.Override_config.entries;
            }
        | Error e -> failwith ("Multiverse: bad override config: " ^ e))
    | None -> Override_config.default
  in
  (* Porting flags imply AeroKernel overrides for the ported interfaces. *)
  let imply cond entries config =
    if cond then
      List.fold_left
        (fun cfg (legacy, symbol, cost) ->
          if Override_config.mem cfg ~legacy then cfg
          else
            Override_config.add cfg
              { Override_config.ov_legacy = legacy; ov_symbol = symbol; ov_cost = cost; ov_args = 3 })
        config entries
    else config
  in
  let config =
    config
    |> imply porting.port_mmap
         [ ("mmap", "nk_mmap", 320); ("munmap", "nk_munmap", 360); ("mprotect", "nk_mprotect", 260) ]
    |> imply porting.port_signals
         [ ("rt_sigaction", "nk_sigaction", 180); ("rt_sigprocmask", "nk_sigaction", 120) ]
  in
  register_nk_variants nk config;
  Fault_plan.bind faults mach;
  Hvm.set_faults hvm faults;
  (* The forwarding fabric: one transport layer for every ROS<->HRT
     interaction.  Watchdog period: a few async round trips — long enough
     that a healthy poller always beats it, short enough to respawn
     quickly. *)
  let fabric =
    Fabric.create ~faults ~heartbeat:(4 * costs.Costs.async_channel_rtt) mach
      ~kind:channel_kind
  in
  let t =
    {
      hvm;
      ros;
      proc;
      part = Nautilus.partition nk;
      the_nk = nk;
      the_symbols = Symbols.create nk ~use_cache:use_symbol_cache;
      the_config = config;
      the_fabric = fabric;
      porting;
      faults;
      channels = Hashtbl.create 16;
      groups = Hashtbl.create 8;
      next_group = 1;
      nk_signals = Signal.create ();
      n_local_faults = 0;
      n_overridden = 0;
      the_env = None;
      shutting_down = false;
      hrt_rr = 0;
      placement;
    }
  in
  (* Affine placement also pulls a group's demand-paged frames from the
     faulting core's NUMA zone, so stacks and heap pages land on the
     group's socket. *)
  if placement = Affine then mach.Machine.numa_local_alloc <- true;
  (* Init tasks (Section 3.5): signal handlers, exit hook, linkage,
     image installation, boot, merger, fabric bring-up. *)
  Kernel.count_syscall ros proc "rt_sigaction";
  Hvm.register_ros_signal hvm ~handler:(fun gid ->
      match Hashtbl.find_opt t.groups gid with
      | Some g -> finish_group g
      | None -> ());
  Process.add_exit_hook proc (fun _ -> shutdown t);
  Hvm.install_hrt_image hvm ~image_kb nk;
  Hvm.boot_hrt ~part:t.part hvm;
  Hvm.merge_address_space ~part:t.part hvm proc;
  wire_services t;
  (* The shared ROS-side poller pool replaces the per-group partner server
     loops; pollers account like ordinary process threads. *)
  let ros_cores = Topology.ros_cores mach.Machine.topo in
  Fabric.start_pool fabric
    ~spawn:(fun ~name ~core body -> Kernel.spawn_thread ros proc ~name ~cpu:core body)
    ~cores:ros_cores
    ~grouping:(if placement = Affine then Fabric.Per_socket else Fabric.Global)
    ();
  (* HRT-to-ROS signal injection rides a dedicated fabric endpoint. *)
  let inject_ep =
    Fabric.endpoint fabric ~name:"signals" ~ros_core:(List.hd ros_cores)
      ~hrt_core:(List.hd (Topology.cores_of mach.Machine.topo t.part))
  in
  Fabric.set_inject_endpoint fabric inject_ep;
  Hvm.set_signal_transport hvm (Some (fun fn -> Fabric.inject fabric fn));
  (* Elastic partitioning: when a core this fabric routes through is lent
     away (or reclaimed), re-home the endpoint bindings that referenced
     it.  Replacement cores are the first remaining ROS core for the
     server side and the first remaining core of our partition for the
     HRT side. *)
  Hvm.on_repartition hvm (fun ~core ~src:_ ~dst:_ ->
      let topo = mach.Machine.topo in
      let ros_to = match Topology.ros_cores topo with c :: _ -> Some c | [] -> None in
      let hrt_to =
        match Topology.cores_of topo t.part with c :: _ -> Some c | [] -> None
      in
      ignore (Fabric.rehome_core fabric ~core ?ros_to ?hrt_to ()));
  (* Local fast paths: vdso-like calls immediately, repeat page faults
     after two forwarded occurrences per page. *)
  Fabric.install_local fabric ~kind:"gettimeofday" ();
  Fabric.install_local fabric ~kind:"getpid" ();
  Fabric.install_local fabric ~kind:"#pf" ~promote_after:2 ();
  t.the_env <- Some (make_env t);
  t

let hrt_env t =
  match t.the_env with Some e -> e | None -> failwith "Multiverse: not initialized"

let symbols t = t.the_symbols
let config t = t.the_config
let nk t = t.the_nk
let partition t = t.part
let fabric t = t.the_fabric
let groups_created t = t.next_group - 1
let faults_serviced_locally t = t.n_local_faults
let overridden_calls t = t.n_overridden

(* --- resilience counters (delegated to the fabric) --- *)

let fault_plan t = t.faults
let faults_injected t = Fault_plan.injected t.faults
let retries t = Fabric.retries t.the_fabric
let fallbacks t = Fabric.fallbacks t.the_fabric
let respawns t = Fabric.respawns t.the_fabric
let reroutes t = Fabric.reroutes t.the_fabric
