open Mv_hw
module Machine = Mv_engine.Machine
module IntMap = Map.Make (Int)

type prot = { pr_read : bool; pr_write : bool; pr_exec : bool }

let prot_none = { pr_read = false; pr_write = false; pr_exec = false }
let prot_r = { pr_read = true; pr_write = false; pr_exec = false }
let prot_rw = { pr_read = true; pr_write = true; pr_exec = false }
let prot_rx = { pr_read = true; pr_write = false; pr_exec = true }

type vma = { v_start : int; v_npages : int; v_prot : prot; v_kind : string }

type fault_outcome = Fixed_minor | Segv of Signal.siginfo

type t = {
  machine : Machine.t;
  pt : Page_table.t;
  mutable vmas : vma IntMap.t;  (* keyed by first page *)
  frames : (int, int) Hashtbl.t;  (* resident via 4K PTE: page -> frame *)
  huge_chunks : (int, int) Hashtbl.t;
      (* resident via a 2M leaf: head page -> frame of the contiguous run.
         A page is resident iff it has a [frames] entry or its 2M-aligned
         head has a [huge_chunks] entry — never both. *)
  mutable mmap_next : int;  (* next page for anonymous mmap, grows down *)
  mutable brk_base : int;  (* page *)
  mutable brk_end : Addr.t;
  mutable rss_pages : int;
  mutable maxrss_pages : int;
  mutable n_huge_promotions : int;
  mutable n_huge_splits : int;
  mutable n_shootdowns : int;  (* range-batched, counted per remote core *)
  mutable shootdown_cycles : int;
  mutable shadow_roots : int list;
      (* {!Page_table.id}s of other roots aliasing our lower half — the
         HVM's merged AeroKernel table.  Cores running one of these must
         be shot down too (Linux's mm_cpumask would include them). *)
}

let brk_base_addr = 0x0200_0000
let mmap_top_page = Addr.page_of 0x7f80_0000_0000

let create machine =
  {
    machine;
    pt = Page_table.create ();
    vmas = IntMap.empty;
    frames = Hashtbl.create 1024;
    huge_chunks = Hashtbl.create 64;
    mmap_next = mmap_top_page;
    brk_base = Addr.page_of brk_base_addr;
    brk_end = brk_base_addr;
    rss_pages = 0;
    maxrss_pages = 0;
    n_huge_promotions = 0;
    n_huge_splits = 0;
    n_shootdowns = 0;
    shootdown_cycles = 0;
    shadow_roots = [];
  }

let huge_enabled t = t.machine.Machine.huge_pages
let chunk_head page = page land lnot (Addr.pages_per_2m - 1)

let page_table t = t.pt

let add_shadow_root t pt =
  let id = Page_table.id pt in
  if not (List.mem id t.shadow_roots) then t.shadow_roots <- id :: t.shadow_roots

let pte_flags_of_prot prot ~cow =
  let f = Page_table.f_present lor Page_table.f_user in
  let f = if prot.pr_write && not cow then f lor Page_table.f_writable else f in
  let f = if not prot.pr_exec then f lor Page_table.f_nx else f in
  if cow then f lor Page_table.f_cow else f

let find_vma_page t page =
  match IntMap.find_last_opt (fun s -> s <= page) t.vmas with
  | Some (s, v) when page < s + v.v_npages -> Some v
  | Some _ | None -> None

let find_vma t addr = find_vma_page t (Addr.page_of addr)

let note_rss t delta =
  t.rss_pages <- t.rss_pages + delta;
  if t.rss_pages > t.maxrss_pages then t.maxrss_pages <- t.rss_pages

let drop_page t page =
  match Hashtbl.find_opt t.frames page with
  | None -> ()
  | Some frame ->
      (* Kill the PTE before detaching so stale TLB entries self-invalidate
         (they observe the cleared present bit). *)
      (match Page_table.lookup t.pt (Addr.base_of_page page) with
      | Some pte -> pte.Page_table.pte_flags <- 0
      | None -> ());
      ignore (Page_table.unmap t.pt (Addr.base_of_page page));
      Hashtbl.remove t.frames page;
      if frame <> t.machine.Machine.zero_frame then
        Phys_mem.free t.machine.Machine.phys frame;
      note_rss t (-1)

let drop_chunk t head =
  match Hashtbl.find_opt t.huge_chunks head with
  | None -> ()
  | Some frame ->
      (* Same self-invalidation discipline as [drop_page]: stale TLB copies
         of the leaf observe the cleared present bit. *)
      (match Page_table.lookup t.pt (Addr.base_of_page head) with
      | Some pte -> pte.Page_table.pte_flags <- 0
      | None -> ());
      ignore (Page_table.unmap_leaf t.pt (Addr.base_of_page head));
      Hashtbl.remove t.huge_chunks head;
      Phys_mem.free t.machine.Machine.phys frame;
      note_rss t (-Addr.pages_per_2m)

(* Demote a 2M chunk to per-page residency: every covered page stays
   resident but gets its own frame and 4K PTE (with its own VMA's flags, as
   the chunk may now straddle a prot split).  This is the THP-style split a
   partial munmap/mprotect forces. *)
let split_chunk t head =
  match Hashtbl.find_opt t.huge_chunks head with
  | None -> ()
  | Some chunk_frame ->
      Hashtbl.remove t.huge_chunks head;
      ignore (Page_table.unmap_leaf t.pt (Addr.base_of_page head));
      for page = head to head + Addr.pages_per_2m - 1 do
        match find_vma_page t page with
        | None -> note_rss t (-1) (* page lost its VMA; drop residency *)
        | Some v ->
            let frame = Machine.alloc_frame t.machine Phys_mem.Ros_region in
            Page_table.map t.pt (Addr.base_of_page page) ~frame
              ~flags:(pte_flags_of_prot v.v_prot ~cow:false);
            Hashtbl.replace t.frames page frame
      done;
      Phys_mem.free t.machine.Machine.phys chunk_frame;
      t.n_huge_splits <- t.n_huge_splits + 1;
      Machine.charge t.machine t.machine.Machine.costs.Costs.huge_split

(* Chunks whose coverage intersects [p0, p1) but is not contained in it
   must be demoted before a range operation edits individual pages. *)
let presplit_straddling_chunks t ~p0 ~p1 =
  if huge_enabled t then begin
    let straddling =
      Hashtbl.fold
        (fun head _ acc ->
          let tail = head + Addr.pages_per_2m in
          if head < p1 && tail > p0 && not (head >= p0 && tail <= p1) then head :: acc
          else acc)
        t.huge_chunks []
    in
    List.iter (split_chunk t) straddling
  end

(* One range-batched shootdown per munmap/mprotect call: a single IPI per
   core whose CR3 points at this table, invalidating the whole range,
   instead of one INVLPG IPI per page.  The paging-structure cache is not
   coherent, so it is dropped wholesale. *)
let shootdown_range t ~p0 ~p1 =
  if huge_enabled t && p1 > p0 then begin
    Mv_obs.Tracer.with_span t.machine.Machine.obs ~name:"tlb-shootdown" ~cat:"mm"
    @@ fun () ->
    let costs = t.machine.Machine.costs in
    let pt_id = Page_table.id t.pt in
    Array.iter
      (fun cpu ->
        if cpu.Cpu.cr3 = pt_id || List.mem cpu.Cpu.cr3 t.shadow_roots then begin
          Tlb.invalidate_range cpu.Cpu.tlb ~page:p0 ~npages:(p1 - p0);
          Walk_cache.flush cpu.Cpu.pwc;
          Machine.charge t.machine costs.Costs.tlb_shootdown_range;
          t.n_shootdowns <- t.n_shootdowns + 1;
          t.shootdown_cycles <- t.shootdown_cycles + costs.Costs.tlb_shootdown_range
        end)
      t.machine.Machine.cpus
  end

(* Split every VMA overlapping [p0, p1) so that the range is covered by
   whole VMAs, then hand each covered VMA to [action]. *)
let over_range t ~p0 ~p1 action =
  let overlapping =
    IntMap.to_seq t.vmas
    |> Seq.filter (fun (s, v) -> s < p1 && s + v.v_npages > p0)
    |> List.of_seq
  in
  List.iter
    (fun (s, v) ->
      t.vmas <- IntMap.remove s t.vmas;
      let e = s + v.v_npages in
      let lo = max s p0 and hi = min e p1 in
      if s < lo then
        t.vmas <- IntMap.add s { v with v_npages = lo - s } t.vmas;
      if hi < e then
        t.vmas <- IntMap.add hi { v with v_start = hi; v_npages = e - hi } t.vmas;
      action { v with v_start = lo; v_npages = hi - lo })
    overlapping

let pages_of_len len = (len + Addr.page_size - 1) / Addr.page_size

let mmap t ~len ~prot ~kind =
  if len <= 0 then invalid_arg "Mm.mmap: len <= 0";
  let npages = pages_of_len len in
  (* Huge-eligible regions get 2M-aligned placement so their chunks can
     promote (the SenoraGC heap mmaps are the intended beneficiary). *)
  if huge_enabled t && npages >= Addr.pages_per_2m then
    t.mmap_next <- (t.mmap_next - npages) land lnot (Addr.pages_per_2m - 1)
  else t.mmap_next <- t.mmap_next - npages;
  let start = t.mmap_next in
  t.vmas <- IntMap.add start { v_start = start; v_npages = npages; v_prot = prot; v_kind = kind } t.vmas;
  Addr.base_of_page start

let munmap t addr ~len =
  let p0 = Addr.page_of addr in
  let p1 = p0 + pages_of_len len in
  presplit_straddling_chunks t ~p0 ~p1;
  let freed = ref 0 in
  over_range t ~p0 ~p1 (fun v ->
      for page = v.v_start to v.v_start + v.v_npages - 1 do
        if Hashtbl.mem t.huge_chunks page then begin
          (* Whole chunk goes in one PTE edit; count it as one teardown. *)
          drop_chunk t page;
          incr freed
        end
        else if Hashtbl.mem t.huge_chunks (chunk_head page) then
          () (* interior of a live chunk; its head handles it *)
        else begin
          if Hashtbl.mem t.frames page then incr freed;
          drop_page t page
        end
      done);
  shootdown_range t ~p0 ~p1;
  !freed

let mprotect t addr ~len prot =
  let p0 = Addr.page_of addr in
  let p1 = p0 + pages_of_len len in
  presplit_straddling_chunks t ~p0 ~p1;
  let touched = ref 0 in
  over_range t ~p0 ~p1 (fun v ->
      t.vmas <- IntMap.add v.v_start { v with v_prot = prot } t.vmas;
      for page = v.v_start to v.v_start + v.v_npages - 1 do
        if Hashtbl.mem t.huge_chunks page then begin
          (* One leaf edit retags the whole chunk. *)
          ignore
            (Page_table.protect_leaf t.pt (Addr.base_of_page page)
               ~flags:(pte_flags_of_prot prot ~cow:false));
          incr touched
        end
        else if Hashtbl.mem t.huge_chunks (chunk_head page) then ()
        else
          match Page_table.lookup t.pt (Addr.base_of_page page) with
          | Some pte ->
              let cow = Page_table.has pte.Page_table.pte_flags Page_table.f_cow in
              pte.Page_table.pte_flags <- pte_flags_of_prot prot ~cow;
              incr touched
          | None -> ()
      done);
  shootdown_range t ~p0 ~p1;
  !touched

let add_fixed t ~addr ~len ~prot ~kind =
  let p0 = Addr.page_of addr in
  let npages = pages_of_len len in
  let overlap =
    IntMap.exists (fun s v -> s < p0 + npages && s + v.v_npages > p0) t.vmas
  in
  if overlap then invalid_arg "Mm.add_fixed: overlaps existing VMA";
  t.vmas <- IntMap.add p0 { v_start = p0; v_npages = npages; v_prot = prot; v_kind = kind } t.vmas

let brk t request =
  match request with
  | None -> t.brk_end
  | Some want ->
      let cur_pages = pages_of_len (t.brk_end - brk_base_addr) in
      let want = max want brk_base_addr in
      let want_pages = pages_of_len (want - brk_base_addr) in
      if want_pages > cur_pages then begin
        let start = t.brk_base + cur_pages in
        t.vmas <-
          IntMap.add start
            { v_start = start; v_npages = want_pages - cur_pages; v_prot = prot_rw; v_kind = "heap" }
            t.vmas
      end
      else if want_pages < cur_pages then
        ignore
          (munmap t
             (Addr.base_of_page (t.brk_base + want_pages))
             ~len:((cur_pages - want_pages) * Addr.page_size));
      t.brk_end <- want;
      t.brk_end

let segv addr ~write = Segv { Signal.si_signo = Signal.Sigsegv; si_addr = addr; si_write = write }

(* A chunk promotes only if its VMA is huge-sized, covers it entirely, and
   no page inside already went resident the 4K way (mixed residency would
   double-account frames). *)
let chunk_eligible t v head =
  v.v_npages >= Addr.pages_per_2m
  && head >= v.v_start
  && head + Addr.pages_per_2m <= v.v_start + v.v_npages
  && (not (Hashtbl.mem t.huge_chunks head))
  &&
  let clean = ref true in
  for p = head to head + Addr.pages_per_2m - 1 do
    if Hashtbl.mem t.frames p then clean := false
  done;
  !clean

let handle_fault t addr ~write =
  let machine = t.machine in
  let costs = machine.Machine.costs in
  let page = Addr.page_of addr in
  match find_vma_page t page with
  | None -> segv addr ~write
  | Some v -> (
      let allowed = if write then v.v_prot.pr_write else v.v_prot.pr_read in
      if not allowed then segv addr ~write
      else if Hashtbl.mem t.huge_chunks (chunk_head page) then begin
        (* Resident via a huge leaf yet faulted: the leaf's flags disagree
           with the VMA (racing protect); refresh the whole leaf. *)
        ignore
          (Page_table.protect_leaf t.pt
             (Addr.base_of_page (chunk_head page))
             ~flags:(pte_flags_of_prot v.v_prot ~cow:false));
        Fixed_minor
      end
      else if
        huge_enabled t
        && (not (Hashtbl.mem t.frames page))
        && chunk_eligible t v (chunk_head page)
      then begin
        (* Transparent promotion: first touch of a clean, fully-covered
           2M-aligned chunk of a big anonymous VMA maps one 2M leaf — one
           trap and one fill where the 4K path would take 512 of each. *)
        let head = chunk_head page in
        let frame = Machine.alloc_frame machine Phys_mem.Ros_region in
        Machine.charge machine costs.Costs.demand_huge_page;
        Page_table.map_size t.pt (Addr.base_of_page head) ~size:Page_table.S2m ~frame
          ~flags:(pte_flags_of_prot v.v_prot ~cow:false);
        Hashtbl.replace t.huge_chunks head frame;
        t.n_huge_promotions <- t.n_huge_promotions + 1;
        note_rss t Addr.pages_per_2m;
        Fixed_minor
      end
      else
        match Hashtbl.find_opt t.frames page with
        | None ->
            if write then begin
              (* First write: allocate a private zeroed frame. *)
              let frame = Machine.alloc_frame machine Phys_mem.Ros_region in
              Machine.charge machine costs.Costs.demand_page;
              Page_table.map t.pt (Addr.base_of_page page) ~frame
                ~flags:(pte_flags_of_prot v.v_prot ~cow:false);
              Hashtbl.replace t.frames page frame;
              note_rss t 1;
              Fixed_minor
            end
            else begin
              (* First read: share the zero page copy-on-write. *)
              Machine.charge machine (costs.Costs.demand_page / 2);
              Page_table.map t.pt (Addr.base_of_page page)
                ~frame:machine.Machine.zero_frame
                ~flags:(pte_flags_of_prot v.v_prot ~cow:true);
              Hashtbl.replace t.frames page machine.Machine.zero_frame;
              note_rss t 1;
              Fixed_minor
            end
        | Some frame when write && frame = machine.Machine.zero_frame ->
            (* COW break away from the shared zero page. *)
            let nframe = Machine.alloc_frame machine Phys_mem.Ros_region in
            Machine.charge machine costs.Costs.cow_copy;
            Page_table.map t.pt (Addr.base_of_page page) ~frame:nframe
              ~flags:(pte_flags_of_prot v.v_prot ~cow:false);
            Hashtbl.replace t.frames page nframe;
            Fixed_minor
        | Some _ ->
            (* Resident and permitted by the VMA, yet it faulted: the PTE
               disagrees (e.g. a racing protect); refresh it. *)
            (match Page_table.lookup t.pt (Addr.base_of_page page) with
            | Some pte -> pte.Page_table.pte_flags <- pte_flags_of_prot v.v_prot ~cow:false
            | None -> ());
            Fixed_minor)

let is_resident t addr =
  let page = Addr.page_of addr in
  Hashtbl.mem t.frames page || Hashtbl.mem t.huge_chunks (chunk_head page)

let rss_kb t = t.rss_pages * Addr.page_size / 1024
let maxrss_kb t = t.maxrss_pages * Addr.page_size / 1024
let vma_count t = IntMap.cardinal t.vmas

let mapped_bytes t =
  IntMap.fold (fun _ v acc -> acc + (v.v_npages * Addr.page_size)) t.vmas 0

let stats_huge_promotions t = t.n_huge_promotions
let stats_huge_splits t = t.n_huge_splits
let stats_shootdowns t = t.n_shootdowns
let stats_shootdown_cycles t = t.shootdown_cycles
let huge_resident_chunks t = Hashtbl.length t.huge_chunks

let release t =
  let heads = Hashtbl.fold (fun head _ acc -> head :: acc) t.huge_chunks [] in
  List.iter (fun head -> drop_chunk t head) heads;
  let pages = Hashtbl.fold (fun page _ acc -> page :: acc) t.frames [] in
  List.iter (fun page -> drop_page t page) pages;
  t.vmas <- IntMap.empty
