type t = {
  mutable utime : Mv_util.Cycles.t;
  mutable stime : Mv_util.Cycles.t;
  mutable maxrss_kb : int;
  mutable minflt : int;
  mutable majflt : int;
  mutable nvcsw : int;
  mutable nivcsw : int;
  (* Memory-path statistics (machine-wide at finalize time): *)
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable walks : int;
  mutable walk_levels : int;
  mutable walk_cycles : int;
  mutable fill_cycles : int;
  mutable shootdowns : int;
  mutable shootdown_cycles : int;
  mutable huge_promotions : int;
  mutable huge_splits : int;
}

let create () =
  {
    utime = 0;
    stime = 0;
    maxrss_kb = 0;
    minflt = 0;
    majflt = 0;
    nvcsw = 0;
    nivcsw = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    walks = 0;
    walk_levels = 0;
    walk_cycles = 0;
    fill_cycles = 0;
    shootdowns = 0;
    shootdown_cycles = 0;
    huge_promotions = 0;
    huge_splits = 0;
  }

let note_rss t ~kb = if kb > t.maxrss_kb then t.maxrss_kb <- kb

let tlb_hit_rate t =
  let total = t.tlb_hits + t.tlb_misses in
  if total = 0 then 1.0 else float_of_int t.tlb_hits /. float_of_int total

let add acc x =
  acc.utime <- acc.utime + x.utime;
  acc.stime <- acc.stime + x.stime;
  acc.maxrss_kb <- max acc.maxrss_kb x.maxrss_kb;
  acc.minflt <- acc.minflt + x.minflt;
  acc.majflt <- acc.majflt + x.majflt;
  acc.nvcsw <- acc.nvcsw + x.nvcsw;
  acc.nivcsw <- acc.nivcsw + x.nivcsw;
  acc.tlb_hits <- acc.tlb_hits + x.tlb_hits;
  acc.tlb_misses <- acc.tlb_misses + x.tlb_misses;
  acc.walks <- acc.walks + x.walks;
  acc.walk_levels <- acc.walk_levels + x.walk_levels;
  acc.walk_cycles <- acc.walk_cycles + x.walk_cycles;
  acc.fill_cycles <- acc.fill_cycles + x.fill_cycles;
  acc.shootdowns <- acc.shootdowns + x.shootdowns;
  acc.shootdown_cycles <- acc.shootdown_cycles + x.shootdown_cycles;
  acc.huge_promotions <- acc.huge_promotions + x.huge_promotions;
  acc.huge_splits <- acc.huge_splits + x.huge_splits

let pp ppf t =
  Format.fprintf ppf
    "user %.2fs sys %.2fs maxrss %dKB faults %d/%d csw %d/%d tlb %.1f%%"
    (Mv_util.Cycles.to_sec t.utime)
    (Mv_util.Cycles.to_sec t.stime)
    t.maxrss_kb t.minflt t.majflt t.nvcsw t.nivcsw
    (100. *. tlb_hit_rate t)
