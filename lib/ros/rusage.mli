(** Per-process resource accounting, mirroring what [/usr/bin/time] and
    [getrusage(2)] report — the columns of Figure 10 in the paper:
    user/system time, maximum resident set size, page faults, and context
    switches. *)

type t = {
  mutable utime : Mv_util.Cycles.t;  (** cycles spent in user code *)
  mutable stime : Mv_util.Cycles.t;  (** cycles spent in the kernel on this process's behalf *)
  mutable maxrss_kb : int;
  mutable minflt : int;  (** faults serviced without I/O (all of ours) *)
  mutable majflt : int;
  mutable nvcsw : int;  (** voluntary context switches *)
  mutable nivcsw : int;  (** involuntary context switches *)
  mutable tlb_hits : int;  (** TLB hits across the cores the process ran on *)
  mutable tlb_misses : int;
  mutable walks : int;  (** page walks taken on TLB misses *)
  mutable walk_levels : int;  (** levels actually read (walk-cache skips excluded) *)
  mutable walk_cycles : int;
  mutable fill_cycles : int;
  mutable shootdowns : int;  (** range-batched shootdowns, per remote core *)
  mutable shootdown_cycles : int;
  mutable huge_promotions : int;  (** VMA chunks promoted to 2M leaves *)
  mutable huge_splits : int;  (** 2M leaves demoted back to 4K *)
}

val create : unit -> t
val note_rss : t -> kb:int -> unit

val tlb_hit_rate : t -> float
(** Hits over total lookups, in [0,1]; 1.0 when no lookups happened. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] (times and faults sum, maxrss
    takes the max). *)

val pp : Format.formatter -> t -> unit
