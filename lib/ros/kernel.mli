(** The ROS (Linux-like) kernel: processes, threads, scheduling glue,
    memory-access and fault handling, signal delivery, and the accounting
    split between user and system time.

    The kernel can run bare-metal or "virtualized" (as the ROS partition of
    an HVM guest), in which case VM-exit and nested-paging costs apply —
    this is the paper's "Virtual" baseline configuration. *)

exception Process_killed of string
(** Raised inside a guest thread when its process dies (fatal signal,
    [exit_group], or a disallowed operation). *)

type task = { tk_proc : Process.t; tk_thread : Mv_engine.Exec.thread }

type t = {
  machine : Mv_engine.Machine.t;
  vfs : Vfs.t;
  mutable procs : Process.t list;
  by_tid : (int, task) Hashtbl.t;
  mutable next_pid : int;
  mutable virtualized : bool;
  mutable vm_exits : int;
  mutable silent_corruptions : int;
      (** ring-0 writes that bypassed read-only protections (CR0.WP clear) *)
  wall_epoch : float;  (** base wall-clock seconds at boot *)
  wall_started : (int, Mv_util.Cycles.t) Hashtbl.t;  (** pid -> start *)
  wall_finished : (int, Mv_util.Cycles.t) Hashtbl.t;  (** pid -> end *)
  futexes : (int * int, (unit -> unit) Queue.t) Hashtbl.t;
      (** waiters keyed by (pid, futex word address) *)
  ros_cores : int array;  (** cached topology for the O(1) core picker *)
  mutable rr_next : int;  (** round-robin cursor for thread placement *)
  sys_depth : (int, int) Hashtbl.t;
      (** per-tid [in_sys] nesting depth for user/system time attribution —
          per kernel so concurrent machines (whose tids coincide) stay
          independent *)
}

val create : ?virtualized:bool -> Mv_engine.Machine.t -> t

(** {1 Processes and threads} *)

val spawn_process :
  t -> name:string -> ?cpu:int -> ?stdout_tee:(string -> unit) -> (Process.t -> unit) -> Process.t
(** Create a process whose main thread runs the given body on a ROS core
    (core 0 by default).  The process exits when the body returns, raises,
    or calls [exit_group]. *)

val spawn_thread : t -> Process.t -> name:string -> ?cpu:int -> (unit -> unit) -> Mv_engine.Exec.thread
(** Add a thread to a process (the kernel side of [clone]). *)

val register_foreign_thread : t -> Process.t -> Mv_engine.Exec.thread -> unit
(** Associate a thread created elsewhere (an HRT thread) with a process so
    kernel services invoked on its behalf account correctly. *)

val set_work_stealing : t -> bool -> unit
(** Toggle deterministic work stealing across the ROS cores' per-core
    runqueues (see {!Mv_engine.Exec.set_steal_domain}).  Spawn placement
    stays round-robin; stealing rebalances afterwards.  Off by default —
    disabled scheduling is byte-identical to the pre-stealing kernel. *)

val current : t -> task
(** @raise Failure outside guest-thread context. *)

val exit_process : t -> Process.t -> code:int -> unit
(** Run exit hooks, tear down threads and memory, record end time.  If
    called from one of the process's own threads, raises
    {!Process_killed} after teardown. *)

val wait_process : t -> Process.t -> unit
(** Block (thread context) until the process has exited. *)

(** {1 Accounting} *)

val charge_user : t -> int -> unit
val in_sys : t -> (unit -> 'a) -> 'a
(** Attribute cycles charged inside the window to system time. *)

val count_syscall : t -> Process.t -> string -> unit
val wall_seconds : t -> float
(** Virtual wall-clock time, epoch-based. *)

val runtime_of : t -> Process.t -> Mv_util.Cycles.t
(** Wall-clock cycles between process start and exit (or now). *)

val finalize_rusage : t -> Process.t -> unit
(** Fold the per-thread context-switch counters into the process rusage. *)

(** {1 Memory access (native path)} *)

val access : t -> Mv_hw.Addr.t -> write:bool -> unit
(** Perform a guest memory access on the current core: TLB/walk, demand
    paging, COW, SIGSEGV delivery — retrying until the access succeeds or
    the process dies.  This is the native-execution path; under Multiverse
    the AeroKernel's forwarding version is used instead. *)

val service_fault : t -> Process.t -> Mv_hw.Addr.t -> write:bool -> Mm.fault_outcome
(** The kernel's fault service (shared by native and forwarded paths):
    charges the trap, updates counters, and resolves via {!Mm}. *)

val deliver_signal : t -> Process.t -> Signal.siginfo -> unit
(** Deliver a signal in the current thread: runs the registered guest
    handler (charging frame build and [rt_sigreturn]), or kills the
    process on an unhandled fatal signal. *)
