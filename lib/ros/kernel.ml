open Mv_hw
module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Trace = Mv_engine.Trace

exception Process_killed of string

type task = { tk_proc : Process.t; tk_thread : Exec.thread }

type t = {
  machine : Machine.t;
  vfs : Vfs.t;
  mutable procs : Process.t list;
  by_tid : (int, task) Hashtbl.t;
  mutable next_pid : int;
  mutable virtualized : bool;
  mutable vm_exits : int;
  mutable silent_corruptions : int;
  wall_epoch : float;
  wall_started : (int, Mv_util.Cycles.t) Hashtbl.t;
  wall_finished : (int, Mv_util.Cycles.t) Hashtbl.t;
  futexes : (int * int, (unit -> unit) Queue.t) Hashtbl.t;
  ros_cores : int array;  (* cached for the O(1) round-robin picker *)
  mutable rr_next : int;
  sys_depth : (int, int) Hashtbl.t;
      (* Attribution of charged cycles: by default cycles are user time;
         inside an [in_sys] window they are system time.  The window depth
         is tracked per thread id — per kernel, since tids restart from the
         same base in every machine and concurrent machines must not see
         each other's windows. *)
}

let create ?(virtualized = false) machine =
  let t =
    {
      machine;
      vfs = Vfs.create ();
      procs = [];
      by_tid = Hashtbl.create 64;
      next_pid = 1;
      virtualized;
      vm_exits = 0;
      silent_corruptions = 0;
      wall_epoch = 1_700_000_000.0;
      wall_started = Hashtbl.create 16;
      wall_finished = Hashtbl.create 16;
      futexes = Hashtbl.create 32;
      ros_cores = Array.of_list (Topology.ros_cores machine.Machine.topo);
      rr_next = 0;
      sys_depth = Hashtbl.create 64;
    }
  in
  Exec.set_charge_hook machine.Machine.exec (fun th c ->
      match Hashtbl.find_opt t.by_tid (Exec.tid th) with
      | None -> ()
      | Some task ->
          let ru = task.tk_proc.Process.rusage in
          let depth =
            match Hashtbl.find_opt t.sys_depth (Exec.tid th) with Some d -> d | None -> 0
          in
          if depth > 0 then ru.Rusage.stime <- ru.Rusage.stime + c
          else ru.Rusage.utime <- ru.Rusage.utime + c);
  t

let current t =
  let th = Exec.self t.machine.Machine.exec in
  match Hashtbl.find_opt t.by_tid (Exec.tid th) with
  | Some task -> task
  | None -> failwith "Kernel.current: thread is not a ROS task"

let charge_user t c = Machine.charge t.machine c

let in_sys t f =
  let th = Exec.self t.machine.Machine.exec in
  let tid = Exec.tid th in
  let d = match Hashtbl.find_opt t.sys_depth tid with Some d -> d | None -> 0 in
  Hashtbl.replace t.sys_depth tid (d + 1);
  Fun.protect
    ~finally:(fun () ->
      let d = match Hashtbl.find_opt t.sys_depth tid with Some d -> d | None -> 1 in
      Hashtbl.replace t.sys_depth tid (d - 1))
    f

let count_syscall _t p name = Mv_util.Histogram.incr p.Process.syscall_counts name

let wall_seconds t = t.wall_epoch +. Mv_util.Cycles.to_sec (Machine.now t.machine)

let runtime_of t p =
  let pid = p.Process.pid in
  let start = Option.value (Hashtbl.find_opt t.wall_started pid) ~default:0 in
  let stop =
    Option.value (Hashtbl.find_opt t.wall_finished pid) ~default:(Machine.now t.machine)
  in
  stop - start

let finalize_rusage t p =
  let ru = p.Process.rusage in
  ru.Rusage.nvcsw <- 0;
  ru.Rusage.nivcsw <- 0;
  List.iter
    (fun th ->
      ru.Rusage.nvcsw <- ru.Rusage.nvcsw + Exec.voluntary_switches th;
      ru.Rusage.nivcsw <- ru.Rusage.nivcsw + Exec.involuntary_switches th)
    p.Process.threads;
  Rusage.note_rss ru ~kb:(Mm.maxrss_kb p.Process.mm);
  (* Memory-path statistics: TLB/walk counters live per core and are
     assigned (not accumulated) so repeated getrusage calls stay stable. *)
  let hits = ref 0 and misses = ref 0 and walks = ref 0 in
  let levels = ref 0 and wcyc = ref 0 and fcyc = ref 0 in
  Array.iter
    (fun cpu ->
      let tlb = cpu.Mv_hw.Cpu.tlb in
      hits := !hits + Mv_hw.Tlb.hits tlb;
      misses := !misses + Mv_hw.Tlb.misses tlb;
      walks := !walks + Mv_hw.Tlb.walks tlb;
      levels := !levels + Mv_hw.Tlb.walk_levels tlb;
      wcyc := !wcyc + Mv_hw.Tlb.walk_cycles tlb;
      fcyc := !fcyc + Mv_hw.Tlb.fill_cycles tlb)
    t.machine.Machine.cpus;
  ru.Rusage.tlb_hits <- !hits;
  ru.Rusage.tlb_misses <- !misses;
  ru.Rusage.walks <- !walks;
  ru.Rusage.walk_levels <- !levels;
  ru.Rusage.walk_cycles <- !wcyc;
  ru.Rusage.fill_cycles <- !fcyc;
  ru.Rusage.shootdowns <- Mm.stats_shootdowns p.Process.mm;
  ru.Rusage.shootdown_cycles <- Mm.stats_shootdown_cycles p.Process.mm;
  ru.Rusage.huge_promotions <- Mm.stats_huge_promotions p.Process.mm;
  ru.Rusage.huge_splits <- Mm.stats_huge_splits p.Process.mm;
  (* The same sample lands in the metrics registry, under the memory-path
     namespaces, so exporters and fig10 read one source of truth. *)
  let m = t.machine.Machine.metrics in
  let set ~ns name v = Mv_obs.Metrics.set_counter (Mv_obs.Metrics.counter m ~ns name) v in
  set ~ns:"tlb" "hits" !hits;
  set ~ns:"tlb" "misses" !misses;
  set ~ns:"mmu" "walks" !walks;
  set ~ns:"mmu" "walk_levels" !levels;
  set ~ns:"mmu" "walk_cycles" !wcyc;
  set ~ns:"mmu" "fill_cycles" !fcyc;
  let pwc_hits = ref 0 and pwc_misses = ref 0 in
  Array.iter
    (fun cpu ->
      let pwc = cpu.Mv_hw.Cpu.pwc in
      pwc_hits := !pwc_hits + Mv_hw.Walk_cache.hits pwc;
      pwc_misses := !pwc_misses + Mv_hw.Walk_cache.misses pwc)
    t.machine.Machine.cpus;
  set ~ns:"walk_cache" "hits" !pwc_hits;
  set ~ns:"walk_cache" "misses" !pwc_misses;
  set ~ns:"mm" "shootdowns" (Mm.stats_shootdowns p.Process.mm);
  set ~ns:"mm" "shootdown_cycles" (Mm.stats_shootdown_cycles p.Process.mm);
  set ~ns:"mm" "huge_promotions" (Mm.stats_huge_promotions p.Process.mm);
  set ~ns:"mm" "huge_splits" (Mm.stats_huge_splits p.Process.mm);
  set ~ns:"mm" "minflt" ru.Rusage.minflt

(* --- processes and threads --- *)

let exit_process t p ~code =
  if not p.Process.exited then begin
    p.Process.exited <- true;
    p.Process.exit_code <- code;
    let hooks = p.Process.exit_hooks in
    p.Process.exit_hooks <- [];
    List.iter (fun h -> h p) hooks;
    Hashtbl.replace t.wall_finished p.Process.pid (Machine.now t.machine);
    finalize_rusage t p;
    let self_tid =
      match Exec.state t.machine.Machine.exec (Exec.self t.machine.Machine.exec) with
      | exception Failure _ -> None
      | _ -> Some (Exec.tid (Exec.self t.machine.Machine.exec))
    in
    List.iter
      (fun th ->
        match self_tid with
        | Some tid when tid = Exec.tid th -> ()  (* cannot kill self; raise below *)
        | _ -> ( match Exec.state t.machine.Machine.exec th with
            | Exec.Finished -> ()
            | _ -> Exec.kill t.machine.Machine.exec th))
      p.Process.threads;
    Mm.release p.Process.mm;
    match self_tid with
    | Some tid when List.exists (fun th -> Exec.tid th = tid) p.Process.threads ->
        raise (Process_killed p.Process.pname)
    | _ -> ()
  end

(* Per-core runqueues with optional deterministic work stealing: spawn
   placement is round-robin (the initial balance), and when stealing is on
   an idle ROS core drains half of the most-loaded peer's queue.  The
   domain is exactly the ROS cores — HRT cores are never touched. *)
let set_work_stealing t enabled =
  Exec.set_steal_domain t.machine.Machine.exec
    (if enabled then Some (Array.to_list t.ros_cores) else None)

(* Spread threads across the ROS cores round-robin (the Linux scheduler's
   load balancing, simplified). *)
let pick_ros_core t pref =
  match pref with
  | Some c -> c
  | None ->
      if Array.length t.ros_cores = 0 then 0
      else begin
        let c = t.ros_cores.(t.rr_next mod Array.length t.ros_cores) in
        t.rr_next <- t.rr_next + 1;
        c
      end

(* Main-thread wrapper: returning from main exits the whole process, as
   returning from main() does via the C runtime's exit(). *)
let main_body t p body () =
  try
    body ();
    if not p.Process.exited then exit_process t p ~code:0
  with Process_killed _ -> ()

(* Secondary threads just end; the process lives on. *)
let thread_body _t _p body () = try body () with Process_killed _ -> ()

let spawn_process t ~name ?cpu ?stdout_tee body =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let p = Process.create t.machine ~pid ~name ?stdout_tee () in
  t.procs <- p :: t.procs;
  Hashtbl.replace t.wall_started pid (Machine.now t.machine);
  let core = pick_ros_core t cpu in
  let th =
    Exec.spawn t.machine.Machine.exec ~cpu:core ~name:(name ^ "/main")
      (main_body t p (fun () -> body p))
  in
  p.Process.threads <- th :: p.Process.threads;
  Hashtbl.replace t.by_tid (Exec.tid th) { tk_proc = p; tk_thread = th };
  p

let spawn_thread t p ~name ?cpu body =
  let core = pick_ros_core t cpu in
  let th = Exec.spawn t.machine.Machine.exec ~cpu:core ~name (thread_body t p body) in
  p.Process.threads <- th :: p.Process.threads;
  Hashtbl.replace t.by_tid (Exec.tid th) { tk_proc = p; tk_thread = th };
  th

let register_foreign_thread t p th =
  p.Process.threads <- th :: p.Process.threads;
  Hashtbl.replace t.by_tid (Exec.tid th) { tk_proc = p; tk_thread = th }

let wait_process t p =
  if not p.Process.exited then
    Exec.block t.machine.Machine.exec ~reason:"waitpid" (fun ~now:_ ~wake ->
        Process.add_exit_hook p (fun _ -> wake ()))

(* --- signals --- *)

let deliver_signal t p (info : Signal.siginfo) =
  let costs = t.machine.Machine.costs in
  match Signal.action p.Process.signals info.Signal.si_signo with
  | Signal.Handler h ->
      in_sys t (fun () -> Machine.charge t.machine costs.Costs.signal_deliver);
      h info;
      count_syscall t p "rt_sigreturn";
      in_sys t (fun () -> Machine.charge t.machine costs.Costs.signal_return)
  | Signal.Ignore -> ()
  | Signal.Default -> (
      match info.Signal.si_signo with
      | Signal.Sigsegv | Signal.Sigint ->
          Machine.emit t.machine
            (Trace.Fatal_signal
               {
                 signal = Signal.name info.Signal.si_signo;
                 pid = p.Process.pid;
                 addr = info.Signal.si_addr;
               });
          exit_process t p ~code:139
      | Signal.Sigvtalrm | Signal.Sigusr1 | Signal.Sigusr2 | Signal.Sigchld -> ())

(* --- faults and memory access --- *)

let service_fault t p addr ~write =
  let costs = t.machine.Machine.costs in
  in_sys t (fun () ->
      Machine.charge t.machine costs.Costs.page_fault_trap;
      if t.virtualized then begin
        (* Nested-paging fill for a first touch in a guest. *)
        t.vm_exits <- t.vm_exits + 1;
        Machine.charge t.machine costs.Costs.nested_fill
      end;
      (* Trace in address-layout-independent form (VMA kind + page offset
         within the VMA): the Multiverse runtime's own allocations shift
         mmap addresses, but the {e application's} fault sequence must be
         identical to the native run (paper, Section 4.4). *)
      (match Mm.find_vma p.Process.mm addr with
      | Some v ->
          Machine.emit t.machine
            (Trace.Page_fault
               {
                 pid = p.Process.pid;
                 vma = Some v.Mm.v_kind;
                 page_off = Mv_hw.Addr.page_of addr - v.Mm.v_start;
                 addr;
                 write;
               })
      | None ->
          Machine.emit t.machine
            (Trace.Page_fault { pid = p.Process.pid; vma = None; page_off = 0; addr; write }));
      let outcome =
        Mv_obs.Tracer.with_span t.machine.Machine.obs ~name:"pagefault" ~cat:"ros" (fun () ->
            Mm.handle_fault p.Process.mm addr ~write)
      in
      (match outcome with
      | Mm.Fixed_minor -> p.Process.rusage.Rusage.minflt <- p.Process.rusage.Rusage.minflt + 1
      | Mm.Segv _ -> ());
      outcome)

let access t addr ~write =
  let task = current t in
  let p = task.tk_proc in
  let cpu = Machine.cpu_of_current t.machine in
  let root = Mm.page_table p.Process.mm in
  if cpu.Cpu.cr3 <> Page_table.id root then Cpu.load_cr3 cpu root;
  let kind = if write then Mmu.Write else Mmu.Read in
  let rec attempt tries =
    if tries > 8 then begin
      deliver_signal t p
        { Signal.si_signo = Signal.Sigsegv; si_addr = addr; si_write = write };
      raise (Process_killed "unresolvable fault")
    end
    else
      match Mmu.access t.machine.Machine.costs cpu root addr kind with
      | Mmu.Hit (_, cost) -> Machine.charge t.machine cost
      | Mmu.Silent_write (_, cost) ->
          (* Ring-0 write through a read-only mapping with WP clear. *)
          Machine.charge t.machine cost;
          t.silent_corruptions <- t.silent_corruptions + 1
      | Mmu.Fault (_, cost) -> (
          Machine.charge t.machine cost;
          match service_fault t p addr ~write with
          | Mm.Fixed_minor -> attempt (tries + 1)
          | Mm.Segv info ->
              deliver_signal t p info;
              (* The handler is expected to have repaired the mapping
                 (e.g. the GC write barrier unprotecting a page). *)
              attempt (tries + 1))
  in
  attempt 0
