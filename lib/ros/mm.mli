(** Process address spaces: VMAs, demand paging, copy-on-write, and page
    protection.

    This implements the Linux-ABI memory behaviour the hybridized Racket
    runtime leans on (paper, Section 5): anonymous [mmap]/[munmap] for the
    GC heap, [mprotect] + SIGSEGV for the write barrier, lazy population
    with a shared zero page, and RSS accounting for Figure 10. *)

type prot = { pr_read : bool; pr_write : bool; pr_exec : bool }

val prot_none : prot
val prot_r : prot
val prot_rw : prot
val prot_rx : prot

type vma = { v_start : int;  (** first page *) v_npages : int; v_prot : prot; v_kind : string }

type fault_outcome =
  | Fixed_minor  (** demand-paged in or COW-broken; a retry will succeed *)
  | Segv of Signal.siginfo  (** delivered to the process as SIGSEGV *)

type t

val create : Mv_engine.Machine.t -> t
(** An empty lower-half address space backed by ROS-region frames. *)

val page_table : t -> Mv_hw.Page_table.t

val add_shadow_root : t -> Mv_hw.Page_table.t -> unit
(** Declare another root (the HVM's merged AeroKernel table) as aliasing
    this address space's lower half: cores running it are included in
    range-batched shootdowns, as Linux's mm_cpumask would. *)

val mmap : t -> len:int -> prot:prot -> kind:string -> Mv_hw.Addr.t
(** Reserve an anonymous region ([len] rounded up to pages); no frames are
    allocated until touched.  With huge pages enabled, regions of 2 MiB or
    more get 2M-aligned placement so first touch can promote whole chunks
    to 2 MiB leaves.  Raises [Invalid_argument] on [len <= 0]. *)

val munmap : t -> Mv_hw.Addr.t -> len:int -> int
(** Drop every mapping overlapping the range (VMAs are split as needed);
    resident frames are freed, huge chunks straddling the boundary are
    demoted first, and one range-batched shootdown covers the whole range.
    Returns the number of PTE teardowns (a whole 2M chunk counts once). *)

val mprotect : t -> Mv_hw.Addr.t -> len:int -> prot -> int
(** Change protection over the range, splitting VMAs; resident PTEs are
    updated in place (visible to every core caching them), a fully-covered
    2M leaf in one edit.  One range-batched shootdown covers the range.
    Returns the number of PTEs whose flags changed. *)

val add_fixed : t -> addr:Mv_hw.Addr.t -> len:int -> prot:prot -> kind:string -> unit
(** Install a VMA at a fixed address (program image, stack).  Raises
    [Invalid_argument] if it overlaps an existing VMA. *)

val brk : t -> Mv_hw.Addr.t option -> Mv_hw.Addr.t
(** [brk t None] reads the current break; [brk t (Some a)] grows or shrinks
    the data segment and returns the new break. *)

val handle_fault : t -> Mv_hw.Addr.t -> write:bool -> fault_outcome
(** The kernel page-fault handler: demand-page, break COW, or classify as
    SIGSEGV.  Charges fault-service cycles to the current thread. *)

val find_vma : t -> Mv_hw.Addr.t -> vma option
val is_resident : t -> Mv_hw.Addr.t -> bool
val rss_kb : t -> int

val maxrss_kb : t -> int
(** High-water mark of the resident set. *)

val vma_count : t -> int
val mapped_bytes : t -> int

(** Huge-page / shootdown statistics (memory-path bench + rusage): *)

val stats_huge_promotions : t -> int
val stats_huge_splits : t -> int
val stats_shootdowns : t -> int
val stats_shootdown_cycles : t -> int
val huge_resident_chunks : t -> int

val release : t -> unit
(** Free every resident frame (process teardown). *)
