test/test_hw.ml: Addr Alcotest Costs Cpu Hashtbl List Mmu Mv_hw Page_table Phys_mem QCheck QCheck_alcotest Tlb Topology
