test/test_workloads.ml: Alcotest Benchmarks List Multiverse Mv_ros Mv_util Mv_workloads String Toolchain
