test/test_vcode.ml: Alcotest Array List Mv_engine Mv_guest Mv_parallel Mv_ros Mv_vcode Samples Vcode
