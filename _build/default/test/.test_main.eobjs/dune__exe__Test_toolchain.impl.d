test/test_toolchain.ml: Alcotest Fat_binary Gen Hashtbl List Multiverse Mv_aerokernel Mv_engine Mv_hw Option Override_config QCheck QCheck_alcotest Result Runtime String Symbols Toolchain
