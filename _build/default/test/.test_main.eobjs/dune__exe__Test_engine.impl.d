test/test_engine.ml: Alcotest Event_queue Exec Fiber Fun List Mv_engine Option QCheck QCheck_alcotest Sim
