test/test_racket.ml: Alcotest Array Engine List Mv_engine Mv_guest Mv_racket Mv_ros Mv_util Printf QCheck QCheck_alcotest Sexp Sgc Value Vm
