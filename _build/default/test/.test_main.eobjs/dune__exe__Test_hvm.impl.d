test/test_hvm.ml: Alcotest Array List Mv_aerokernel Mv_engine Mv_hvm Mv_hw Mv_ros Mv_util Printf
