test/test_multiverse.ml: Alcotest Array Bytes Env Libc List Multiverse Mv_aerokernel Mv_engine Mv_guest Mv_hvm Mv_hw Mv_ros Mv_util Printf Runtime String Symbols Toolchain
