test/test_ros.ml: Alcotest Bytes Kernel List Mm Mv_engine Mv_guest Mv_hw Mv_ros Mv_util Printf Process Rusage Signal String Syscalls Vfs
