test/test_util.ml: Alcotest Cycles Float Histogram List Mv_util Printf QCheck QCheck_alcotest Rng Stats String Table
