(* End-to-end tests of the Multiverse core: hybridization, split execution,
   event forwarding, overrides, usage models, and the paper's behavioural
   guarantees (identical user-visible behaviour across native / virtual /
   Multiverse execution; identical page-fault traces). *)

module H = Mv_util.Histogram
open Multiverse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* A small test program exercising the ABI: output, files, memory,
   signals-by-protection, and getpid/gettimeofday. *)
let test_program =
  {
    Toolchain.prog_name = "abi-exerciser";
    prog_main =
      (fun env ->
        let open Mv_guest in
        let libc = Libc.create env in
        Libc.printf libc "hello pid=%d\n" (env.Env.getpid ());
        (* anonymous memory: map, touch, protect, barrier, unprotect *)
        let addr = env.Env.mmap ~len:8192 ~prot:Mv_ros.Mm.prot_rw ~kind:"test" in
        env.Env.store addr;
        env.Env.store (addr + 4096);
        let hits = ref 0 in
        env.Env.sigaction Mv_ros.Signal.Sigsegv
          (Mv_ros.Signal.Handler
             (fun info ->
               incr hits;
               env.Env.mprotect ~addr:(Mv_hw.Addr.align_down info.Mv_ros.Signal.si_addr)
                 ~len:4096 ~prot:Mv_ros.Mm.prot_rw));
        env.Env.mprotect ~addr ~len:4096 ~prot:Mv_ros.Mm.prot_r;
        env.Env.store addr;  (* write barrier fires *)
        Libc.printf libc "barrier hits=%d\n" !hits;
        (* files *)
        (match env.Env.open_ ~path:"/tmp/out.txt" ~flags:Mv_ros.Syscalls.[ O_WRONLY; O_CREAT ] with
        | Ok fd ->
            let data = Bytes.of_string "persisted" in
            ignore (env.Env.write ~fd ~buf:data ~off:0 ~len:(Bytes.length data));
            env.Env.close ~fd
        | Error _ -> Libc.printf libc "open failed\n");
        (match env.Env.stat ~path:"/tmp/out.txt" with
        | Ok st -> Libc.printf libc "size=%d\n" st.Mv_ros.Syscalls.st_size
        | Error _ -> Libc.printf libc "stat failed\n");
        env.Env.munmap ~addr ~len:8192;
        let t0 = env.Env.gettimeofday () in
        env.Env.work 22_000;
        let t1 = env.Env.gettimeofday () in
        Libc.printf libc "time advanced=%b\n" (t1 > t0);
        Libc.flush_all libc)
  }

let expected_stdout = "hello pid=1\nbarrier hits=1\nsize=9\ntime advanced=true\n"

let test_native_run () =
  let rs = Toolchain.run_native test_program in
  check_string "stdout" expected_stdout rs.Toolchain.rs_stdout;
  check_int "exit code" 0 rs.Toolchain.rs_exit_code;
  check_bool "syscalls counted" true (Toolchain.total_syscalls rs > 5);
  check_bool "wall time positive" true (rs.Toolchain.rs_wall_cycles > 0)

let test_virtual_run () =
  let rs = Toolchain.run_virtual test_program in
  check_string "stdout" expected_stdout rs.Toolchain.rs_stdout;
  check_bool "vm exits happened" true (rs.Toolchain.rs_kernel.Mv_ros.Kernel.vm_exits > 0)

let test_multiverse_run () =
  let hx = Toolchain.hybridize test_program in
  let rs = Toolchain.run_multiverse hx in
  check_string "stdout identical to native" expected_stdout rs.Toolchain.rs_stdout;
  check_int "exit code" 0 rs.Toolchain.rs_exit_code;
  match rs.Toolchain.rs_runtime with
  | None -> Alcotest.fail "no runtime handle"
  | Some rt ->
      check_bool "at least one execution group" true (Runtime.groups_created rt >= 1);
      let nk = Runtime.nk rt in
      check_bool "hrt booted" true (Mv_aerokernel.Nautilus.booted nk);
      check_bool "syscalls were forwarded" true
        (Mv_aerokernel.Nautilus.stats_syscalls_forwarded nk > 5);
      check_bool "faults were forwarded" true
        (Mv_aerokernel.Nautilus.stats_faults_forwarded nk > 0)

let test_modes_agree () =
  (* The paper's core claim: the user sees no difference.  stdout and the
     kernel-visible syscall mix must match across all three modes. *)
  let rs_n = Toolchain.run_native test_program in
  let rs_v = Toolchain.run_virtual test_program in
  let hx = Toolchain.hybridize test_program in
  let rs_m = Toolchain.run_multiverse hx in
  check_string "native = virtual" rs_n.Toolchain.rs_stdout rs_v.Toolchain.rs_stdout;
  check_string "native = multiverse" rs_n.Toolchain.rs_stdout rs_m.Toolchain.rs_stdout;
  let count rs name = H.count rs.Toolchain.rs_syscalls name in
  (* Application-driven syscalls match exactly... *)
  List.iter
    (fun name ->
      check_int
        (Printf.sprintf "syscall %s count matches natively/multiverse" name)
        (count rs_n name) (count rs_m name))
    [ "mprotect"; "open"; "close"; "stat" ];
  (* ...while the Multiverse runtime itself adds exactly one mmap/munmap
     pair per execution group (the ROS-side HRT stack) and one signal
     registration at init. *)
  let groups =
    match rs_m.Toolchain.rs_runtime with
    | Some rt -> Runtime.groups_created rt
    | None -> Alcotest.fail "no runtime"
  in
  check_int "mmap adds one per group" (count rs_n "mmap" + groups) (count rs_m "mmap");
  check_int "munmap adds one per group" (count rs_n "munmap" + groups) (count rs_m "munmap");
  check_int "one extra rt_sigaction from init" (count rs_n "rt_sigaction" + 1)
    (count rs_m "rt_sigaction")

let fault_trace rs =
  Mv_engine.Trace.records_in rs.Toolchain.rs_machine.Mv_engine.Machine.trace
    ~category:"pagefault"
  |> List.map (fun r -> r.Mv_engine.Trace.message)

let test_fault_traces_identical () =
  (* Section 4.4: "if we collect a trace of page faults in the application
     running native and under Multiverse, the traces should look
     identical." *)
  let rs_n = Toolchain.run_native ~trace:true test_program in
  let hx = Toolchain.hybridize test_program in
  let rs_m = Toolchain.run_multiverse ~trace:true hx in
  let tn = fault_trace rs_n and tm = fault_trace rs_m in
  check_bool "trace nonempty" true (List.length tn > 0);
  Alcotest.(check (list string)) "fault traces identical" tn tm

let test_multiverse_slower_but_same_work () =
  let rs_n = Toolchain.run_native test_program in
  let hx = Toolchain.hybridize test_program in
  let rs_m = Toolchain.run_multiverse hx in
  check_bool "multiverse pays forwarding overhead" true
    (rs_m.Toolchain.rs_wall_cycles > rs_n.Toolchain.rs_wall_cycles)

let test_execve_disallowed () =
  let prog =
    {
      Toolchain.prog_name = "execve-attempt";
      prog_main =
        (fun env ->
          match env.Mv_guest.Env.execve ~path:"/bin/sh" with
          | Ok () | Error _ -> ());
    }
  in
  (* Fine natively... *)
  let rs = Toolchain.run_native prog in
  check_int "native exit" 0 rs.Toolchain.rs_exit_code;
  (* ...but prohibited in HRT context (Section 4.2). *)
  let hx = Toolchain.hybridize prog in
  match Toolchain.run_multiverse hx with
  | exception Runtime.Disallowed "execve" -> ()
  | _ -> Alcotest.fail "expected Disallowed"

let test_pthread_override_spawns_groups () =
  let prog =
    {
      Toolchain.prog_name = "threads";
      prog_main =
        (fun env ->
          let open Mv_guest in
          let libc = Libc.create env in
          let results = Array.make 3 0 in
          let mk i =
            env.Env.thread_create ~name:(Printf.sprintf "w%d" i) (fun () ->
                env.Env.work 10_000;
                results.(i) <- i + 1)
          in
          let handles = List.init 3 mk in
          List.iter (fun h -> env.Env.thread_join h) handles;
          Libc.printf libc "sum=%d\n" (Array.fold_left ( + ) 0 results);
          Libc.flush_all libc)
    }
  in
  let rs_n = Toolchain.run_native prog in
  check_string "native sum" "sum=6\n" rs_n.Toolchain.rs_stdout;
  check_bool "native used clone" true (H.count rs_n.Toolchain.rs_syscalls "clone" >= 3);
  let hx = Toolchain.hybridize prog in
  let rs_m = Toolchain.run_multiverse hx in
  check_string "multiverse sum" "sum=6\n" rs_m.Toolchain.rs_stdout;
  (match rs_m.Toolchain.rs_runtime with
  | Some rt ->
      check_bool "override created HRT groups (main + 3 workers)" true
        (Runtime.groups_created rt >= 4);
      check_bool "override wrappers ran" true (Runtime.overridden_calls rt >= 6)
  | None -> Alcotest.fail "no runtime");
  check_int "no clone forwarded under multiverse" 0
    (H.count rs_m.Toolchain.rs_syscalls "clone")

let test_accelerator_model () =
  (* Figure 4: a ROS main creates an HRT thread that calls an AeroKernel
     function directly and then printf()s through the merged address
     space. *)
  let seen = ref 0 in
  let rs =
    Toolchain.run_accelerator ~name:"accel-demo" (fun ~ros_env ~rt ->
        let nk = Runtime.nk rt in
        Mv_aerokernel.Nautilus.register_func nk ~name:"aerokernel_func" ~cost:250
          (fun () -> seen := 42);
        let libc = Mv_guest.Libc.create ros_env in
        let partner =
          Runtime.hrt_invoke rt ~name:"routine" (fun env ->
              Mv_aerokernel.Nautilus.call_func nk ~name:"aerokernel_func";
              let hrt_libc = Mv_guest.Libc.create env in
              Mv_guest.Libc.printf hrt_libc "Result = %d\n" !seen;
              Mv_guest.Libc.flush_all hrt_libc)
        in
        Runtime.join rt partner;
        Mv_guest.Libc.flush_all libc)
  in
  check_string "hrt printf reached ROS console" "Result = 42\n" rs.Toolchain.rs_stdout

let test_symbol_cache_ablation () =
  let prog =
    {
      Toolchain.prog_name = "override-heavy";
      prog_main =
        (fun env ->
          let handles =
            List.init 8 (fun i ->
                env.Mv_guest.Env.thread_create ~name:(Printf.sprintf "t%d" i) (fun () ->
                    env.Mv_guest.Env.work 1000))
          in
          List.iter (fun h -> env.Mv_guest.Env.thread_join h) handles)
    }
  in
  let hx = Toolchain.hybridize prog in
  let run cache =
    let options = { Toolchain.default_mv_options with mv_symbol_cache = cache } in
    let rs = Toolchain.run_multiverse ~options hx in
    match rs.Toolchain.rs_runtime with
    | Some rt -> (Symbols.lookups (Runtime.symbols rt), Symbols.cache_hits (Runtime.symbols rt))
    | None -> Alcotest.fail "no runtime"
  in
  let lookups_off, hits_off = run false in
  let lookups_on, hits_on = run true in
  check_int "no cache, no hits" 0 hits_off;
  check_bool "lookups happen either way" true (lookups_off > 0 && lookups_on > 0);
  check_bool "cache hits with cache on" true (hits_on > 0)

let test_channel_kinds () =
  let hx = Toolchain.hybridize test_program in
  let run kind =
    let options = { Toolchain.default_mv_options with mv_channel = kind } in
    Toolchain.run_multiverse ~options hx
  in
  let rs_async = run Mv_hvm.Event_channel.Async in
  let rs_sync = run Mv_hvm.Event_channel.Sync in
  check_string "sync channels produce identical behaviour"
    rs_async.Toolchain.rs_stdout rs_sync.Toolchain.rs_stdout;
  check_bool "sync channels are faster end-to-end" true
    (rs_sync.Toolchain.rs_wall_cycles < rs_async.Toolchain.rs_wall_cycles)

let test_porting_speeds_up () =
  let hx = Toolchain.hybridize test_program in
  let rs_none = Toolchain.run_multiverse hx in
  let options =
    { Toolchain.default_mv_options with mv_porting = Runtime.full_porting }
  in
  let rs_full = Toolchain.run_multiverse ~options hx in
  check_string "ported run behaves identically" rs_none.Toolchain.rs_stdout
    rs_full.Toolchain.rs_stdout;
  check_bool "porting reduces wall time" true
    (rs_full.Toolchain.rs_wall_cycles < rs_none.Toolchain.rs_wall_cycles);
  match rs_full.Toolchain.rs_runtime with
  | Some rt -> check_bool "faults served locally" true (Runtime.faults_serviced_locally rt > 0)
  | None -> Alcotest.fail "no runtime"

let test_stdin_roundtrip () =
  let prog =
    {
      Toolchain.prog_name = "echo";
      prog_main =
        (fun env ->
          let libc = Mv_guest.Libc.create env in
          let rec loop () =
            match Mv_guest.Libc.stdin_gets libc with
            | Some line ->
                Mv_guest.Libc.printf libc "> %s" line;
                loop ()
            | None -> ()
          in
          loop ();
          Mv_guest.Libc.flush_all libc)
    }
  in
  let input = "one\ntwo\n" in
  let rs_n = Toolchain.run_native ~stdin:input prog in
  check_string "echoed" "> one\n> two\n" rs_n.Toolchain.rs_stdout;
  let rs_m = Toolchain.run_multiverse ~stdin:input (Toolchain.hybridize prog) in
  check_string "echoed via forwarded read" "> one\n> two\n" rs_m.Toolchain.rs_stdout

let test_nested_hrt_threads () =
  (* Figure 7: a top-level HRT thread creates nested AeroKernel threads
     whose events flow through the top-level thread's partner. *)
  let order = ref [] in
  let rs =
    Toolchain.run_accelerator ~name:"nested" (fun ~ros_env:_ ~rt ->
        let partner =
          Runtime.hrt_invoke rt ~name:"top" (fun env ->
              let libc = Mv_guest.Libc.create env in
              let nested =
                List.init 3 (fun i ->
                    Runtime.create_nested rt ~name:(Printf.sprintf "nested-%d" i)
                      (fun () ->
                        (* Nested threads can use forwarded services: this
                           write goes through the top-level partner. *)
                        Mv_guest.Libc.printf libc "nested %d\n" i;
                        Mv_guest.Libc.flush_all libc;
                        order := i :: !order))
              in
              List.iter (fun th -> Runtime.join_nested rt th) nested;
              Mv_guest.Libc.printf libc "top done\n";
              Mv_guest.Libc.flush_all libc)
        in
        Runtime.join rt partner)
  in
  check_int "all nested ran" 3 (List.length !order);
  check_bool "nested output arrived" true
    (let lines = String.split_on_char '\n' rs.Toolchain.rs_stdout in
     List.mem "nested 0" lines && List.mem "top done" lines);
  (match rs.Toolchain.rs_runtime with
  | Some rt ->
      (* Only ONE execution group: nested threads have no partners. *)
      check_int "one group" 1 (Runtime.groups_created rt);
      check_bool "nested are AeroKernel threads" true
        (Mv_aerokernel.Nautilus.thread_count (Runtime.nk rt) >= 4)
  | None -> Alcotest.fail "no runtime")

let test_nested_outside_hrt_rejected () =
  let failed = ref false in
  ignore
    (Toolchain.run_accelerator ~name:"nested-bad" (fun ~ros_env:_ ~rt ->
         match Runtime.create_nested rt ~name:"x" (fun () -> ()) with
         | _ -> ()
         | exception Failure _ -> failed := true));
  check_bool "create_nested from ROS context rejected" true !failed

let suite =
  [
    ("native run of ABI exerciser", `Quick, test_native_run);
    ("virtual run (vm exits)", `Quick, test_virtual_run);
    ("multiverse run (forwarding)", `Quick, test_multiverse_run);
    ("all modes behave identically", `Quick, test_modes_agree);
    ("page-fault traces identical", `Quick, test_fault_traces_identical);
    ("multiverse pays forwarding overhead", `Quick, test_multiverse_slower_but_same_work);
    ("execve disallowed in HRT", `Quick, test_execve_disallowed);
    ("pthread override spawns execution groups", `Quick, test_pthread_override_spawns_groups);
    ("accelerator model (Figure 4)", `Quick, test_accelerator_model);
    ("symbol cache ablation hooks", `Quick, test_symbol_cache_ablation);
    ("sync vs async channels", `Quick, test_channel_kinds);
    ("incremental porting speeds up", `Quick, test_porting_speeds_up);
    ("stdin via forwarded read", `Quick, test_stdin_roundtrip);
    ("nested HRT threads (Figure 7)", `Quick, test_nested_hrt_threads);
    ("nested creation outside HRT rejected", `Quick, test_nested_outside_hrt_rejected);
  ]
