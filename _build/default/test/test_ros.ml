(* Tests for the ROS (Linux-like) kernel substrate: VFS, address spaces,
   system calls, signals, the libc layer, and process accounting. *)

module Machine = Mv_engine.Machine
module Sim = Mv_engine.Sim
module Exec = Mv_engine.Exec
open Mv_ros

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Vfs (pure) --- *)

let test_vfs_paths () =
  let fs = Vfs.create () in
  Vfs.add_file fs ~path:"/etc/hosts" "localhost";
  Vfs.mkdir_p fs "/a/b/c";
  check_bool "file resolves" true (Vfs.resolve fs ~cwd:"/" "/etc/hosts" <> None);
  check_bool "relative path" true (Vfs.resolve fs ~cwd:"/etc" "hosts" <> None);
  check_bool "dotdot" true (Vfs.resolve fs ~cwd:"/a/b" "../b/c" <> None);
  check_bool "missing" true (Vfs.resolve fs ~cwd:"/" "/nope" = None);
  check_bool "dev null exists" true (Vfs.resolve fs ~cwd:"/" "/dev/null" = Some Vfs.Dev_null);
  check_bool "remove" true (Vfs.remove fs ~path:"/etc/hosts");
  check_bool "gone" true (Vfs.resolve fs ~cwd:"/" "/etc/hosts" = None)

let test_vfs_file_rw () =
  let fs = Vfs.create () in
  Vfs.add_file fs ~path:"/tmp/x" "";
  match Vfs.resolve fs ~cwd:"/" "/tmp/x" with
  | Some (Vfs.File f) ->
      let data = Bytes.of_string "hello world" in
      ignore (Vfs.file_write f ~pos:0 ~buf:data ~off:0 ~len:11);
      check_string "contents" "hello world" (Vfs.file_contents f);
      let buf = Bytes.create 5 in
      let n = Vfs.file_read f ~pos:6 ~buf ~off:0 ~len:5 in
      check_int "read len" 5 n;
      check_string "read data" "world" (Bytes.to_string buf);
      (* Sparse write past the end zero-fills. *)
      ignore (Vfs.file_write f ~pos:20 ~buf:data ~off:0 ~len:5);
      check_int "size extended" 25 f.Vfs.size
  | _ -> Alcotest.fail "no file"

let test_vfs_stream () =
  let s = Vfs.stream_in () in
  let buf = Bytes.create 16 in
  check_bool "empty would block" true (Vfs.stream_read s ~buf ~off:0 ~len:16 = `Would_block);
  let fired = ref 0 in
  Vfs.stream_on_data s (fun () -> incr fired);
  Vfs.feed s "abc";
  check_int "waiter fired" 1 !fired;
  (match Vfs.stream_read s ~buf ~off:0 ~len:16 with
  | `Data 3 -> check_string "data" "abc" (Bytes.sub_string buf 0 3)
  | _ -> Alcotest.fail "expected 3 bytes");
  Vfs.close_stream s;
  check_bool "eof after close" true (Vfs.stream_read s ~buf ~off:0 ~len:16 = `Eof)

(* --- kernel fixtures --- *)

let with_proc f =
  let machine = Machine.create () in
  let k = Kernel.create machine in
  let result = ref None in
  let p = Kernel.spawn_process k ~name:"test" (fun p -> result := Some (f machine k p)) in
  Sim.run machine.Machine.sim;
  check_bool "process exited" true p.Process.exited;
  match !result with Some r -> r | None -> Alcotest.fail "process body did not run"

let test_mm_demand_paging () =
  with_proc (fun machine k p ->
      let before = p.Process.rusage.Rusage.minflt in
      let addr = Mm.mmap p.Process.mm ~len:(16 * 4096) ~prot:Mm.prot_rw ~kind:"t" in
      check_bool "nothing resident yet" true (not (Mm.is_resident p.Process.mm addr));
      Kernel.access k addr ~write:true;
      Kernel.access k (addr + 4096) ~write:true;
      Kernel.access k addr ~write:true (* no second fault *);
      check_int "two minor faults" (before + 2) p.Process.rusage.Rusage.minflt;
      check_bool "resident now" true (Mm.is_resident p.Process.mm addr);
      check_int "rss 8KB" 8 (Mm.rss_kb p.Process.mm);
      ignore machine)

let test_mm_zero_page_cow () =
  with_proc (fun machine k p ->
      let addr = Mm.mmap p.Process.mm ~len:4096 ~prot:Mm.prot_rw ~kind:"t" in
      (* First read maps the shared zero frame... *)
      Kernel.access k addr ~write:false;
      check_bool "resident after read" true (Mm.is_resident p.Process.mm addr);
      let ru = p.Process.rusage.Rusage.minflt in
      (* ...and the first write breaks COW with another minor fault. *)
      Kernel.access k addr ~write:true;
      check_int "cow fault" (ru + 1) p.Process.rusage.Rusage.minflt;
      ignore machine)

let test_mm_protection_signal () =
  with_proc (fun _machine k p ->
      let addr = Mm.mmap p.Process.mm ~len:4096 ~prot:Mm.prot_rw ~kind:"t" in
      Kernel.access k addr ~write:true;
      ignore (Mm.mprotect p.Process.mm addr ~len:4096 Mm.prot_r);
      let hits = ref 0 in
      Signal.set_action p.Process.signals Signal.Sigsegv
        (Signal.Handler
           (fun info ->
             incr hits;
             check_bool "write fault" true info.Signal.si_write;
             ignore
               (Mm.mprotect p.Process.mm
                  (Mv_hw.Addr.align_down info.Signal.si_addr)
                  ~len:4096 Mm.prot_rw)));
      Kernel.access k addr ~write:true;
      check_int "barrier fired once" 1 !hits;
      Kernel.access k addr ~write:true;
      check_int "no second fault" 1 !hits)

let test_mm_unmapped_kills () =
  let machine = Machine.create () in
  let k = Kernel.create machine in
  let p =
    Kernel.spawn_process k ~name:"segv" (fun _p ->
        Kernel.access k 0xdead000 ~write:true)
  in
  Sim.run machine.Machine.sim;
  check_bool "killed" true p.Process.exited;
  check_int "signal exit code" 139 p.Process.exit_code

let test_mm_split_vma () =
  with_proc (fun _machine k p ->
      let mm = p.Process.mm in
      let addr = Mm.mmap mm ~len:(10 * 4096) ~prot:Mm.prot_rw ~kind:"t" in
      let vmas0 = Mm.vma_count mm in
      (* Unmap the middle two pages: the VMA splits in three minus one. *)
      Kernel.access k (addr + (4 * 4096)) ~write:true;
      let freed = Mm.munmap mm (addr + (4 * 4096)) ~len:(2 * 4096) in
      check_int "one resident page freed" 1 freed;
      check_int "vma split" (vmas0 + 1) (Mm.vma_count mm);
      check_bool "hole unmapped" true (Mm.find_vma mm (addr + (4 * 4096)) = None);
      check_bool "left intact" true (Mm.find_vma mm addr <> None);
      check_bool "right intact" true (Mm.find_vma mm (addr + (9 * 4096)) <> None))

let test_brk () =
  with_proc (fun _machine k p ->
      let mm = p.Process.mm in
      let base = Mm.brk mm None in
      let nb = Mm.brk mm (Some (base + 65536)) in
      check_int "brk grew" (base + 65536) nb;
      Kernel.access k base ~write:true;
      check_bool "heap accessible" true (Mm.is_resident mm base);
      let back = Mm.brk mm (Some base) in
      check_int "brk shrank" base back;
      ignore k)

(* --- syscalls --- *)

let test_syscall_file_io () =
  with_proc (fun _machine k p ->
      (match Syscalls.openat k p ~path:"/tmp/f" ~flags:[ Syscalls.O_WRONLY; Syscalls.O_CREAT ] with
      | Ok fd ->
          let data = Bytes.of_string "hello" in
          (match Syscalls.write k p ~fd ~buf:data ~off:0 ~len:5 with
          | Ok 5 -> ()
          | _ -> Alcotest.fail "write");
          ignore (Syscalls.close k p ~fd)
      | Error _ -> Alcotest.fail "open for write");
      (match Syscalls.stat k p ~path:"/tmp/f" with
      | Ok st -> check_int "size" 5 st.Syscalls.st_size
      | Error _ -> Alcotest.fail "stat");
      (match Syscalls.openat k p ~path:"/tmp/f" ~flags:[ Syscalls.O_RDONLY ] with
      | Ok fd ->
          let buf = Bytes.create 16 in
          (match Syscalls.read k p ~fd ~buf ~off:0 ~len:16 with
          | Ok 5 -> check_string "roundtrip" "hello" (Bytes.sub_string buf 0 5)
          | _ -> Alcotest.fail "read");
          ignore (Syscalls.close k p ~fd)
      | Error _ -> Alcotest.fail "open for read");
      (match Syscalls.openat k p ~path:"/absent" ~flags:[ Syscalls.O_RDONLY ] with
      | Error Syscalls.ENOENT -> ()
      | _ -> Alcotest.fail "expected ENOENT");
      match Syscalls.read k p ~fd:99 ~buf:(Bytes.create 1) ~off:0 ~len:1 with
      | Error Syscalls.EBADF -> ()
      | _ -> Alcotest.fail "expected EBADF")

let test_syscall_counting () =
  with_proc (fun _machine k p ->
      ignore (Syscalls.getpid k p);
      ignore (Syscalls.gettimeofday k p);
      ignore (Syscalls.gettimeofday k p);
      ignore (Syscalls.getcwd k p);
      let h = p.Process.syscall_counts in
      check_int "getpid" 1 (Mv_util.Histogram.count h "getpid");
      check_int "gettimeofday" 2 (Mv_util.Histogram.count h "gettimeofday");
      check_int "getcwd" 1 (Mv_util.Histogram.count h "getcwd"))

let test_gettimeofday_advances () =
  with_proc (fun machine k p ->
      let t0 = Syscalls.gettimeofday k p in
      Machine.charge machine (Mv_util.Cycles.of_ms 5.0);
      let t1 = Syscalls.gettimeofday k p in
      Alcotest.(check bool) "clock advanced ~5ms" true (t1 -. t0 >= 0.004 && t1 -. t0 < 0.05))

let test_exit_group_kills () =
  let machine = Machine.create () in
  let k = Kernel.create machine in
  let after = ref false in
  let p =
    Kernel.spawn_process k ~name:"exiter" (fun p ->
        Syscalls.exit_group k p ~code:7;
        after := true)
  in
  Sim.run machine.Machine.sim;
  check_int "exit code" 7 p.Process.exit_code;
  check_bool "no code after exit" false !after

let test_futex () =
  let machine = Machine.create () in
  let k = Kernel.create machine in
  let woke = ref 0 in
  ignore
    (Kernel.spawn_process k ~name:"futex" (fun p ->
         let th =
           Kernel.spawn_thread k p ~name:"waiter" (fun () ->
               Syscalls.futex_wait k p ~uaddr:0x1000;
               incr woke)
         in
         (* Give the waiter a chance to park, then wake it. *)
         Exec.sleep machine.Machine.exec (Mv_util.Cycles.of_us 10.);
         let n = Syscalls.futex_wake k p ~uaddr:0x1000 ~all:false in
         check_int "one woken" 1 n;
         Exec.join machine.Machine.exec th))
  |> ignore;
  Sim.run machine.Machine.sim;
  check_int "waiter resumed" 1 !woke

let test_poll_timeout () =
  with_proc (fun machine k p ->
      let t0 = Machine.now machine in
      let n = Syscalls.poll k p ~fds:[ 0 ] ~timeout_ms:2 in
      check_int "nothing ready" 0 n;
      check_bool "waited ~2ms" true (Machine.now machine - t0 >= Mv_util.Cycles.of_ms 1.9))

let test_rusage_accounting () =
  with_proc (fun machine k p ->
      Machine.charge machine 10_000;  (* user work *)
      ignore (Syscalls.getrusage k p);
      let ru = p.Process.rusage in
      check_bool "utime counted" true (ru.Rusage.utime >= 10_000);
      check_bool "stime counted" true (ru.Rusage.stime > 0);
      check_bool "rss tracked" true (ru.Rusage.maxrss_kb >= 0);
      ignore k)

(* --- libc --- *)

let test_libc_buffered_stdio () =
  let machine = Machine.create () in
  let k = Kernel.create machine in
  let p =
    Kernel.spawn_process k ~name:"stdio" (fun p ->
        let env = Mv_guest.Env.native k p in
        let libc = Mv_guest.Libc.create env in
        (* Small writes coalesce into one syscall at flush. *)
        for _ = 1 to 100 do
          Mv_guest.Libc.printf libc "x"
        done;
        Mv_guest.Libc.flush_all libc)
  in
  Sim.run machine.Machine.sim;
  check_int "one hundred chars" 100 (String.length (Process.stdout_contents p));
  check_int "single write syscall" 1
    (Mv_util.Histogram.count p.Process.syscall_counts "write")

let test_libc_buffer_flush_at_4k () =
  let machine = Machine.create () in
  let k = Kernel.create machine in
  let p =
    Kernel.spawn_process k ~name:"stdio4k" (fun p ->
        let env = Mv_guest.Env.native k p in
        let libc = Mv_guest.Libc.create env in
        (* 10000 bytes: two automatic 4 KiB+ flushes plus the final one. *)
        for _ = 1 to 100 do
          Mv_guest.Libc.fwrite libc (Mv_guest.Libc.stdout_stream libc) (String.make 100 'y')
        done;
        Mv_guest.Libc.flush_all libc)
  in
  Sim.run machine.Machine.sim;
  check_int "all bytes out" 10_000 (String.length (Process.stdout_contents p));
  check_int "three writes" 3 (Mv_util.Histogram.count p.Process.syscall_counts "write")

let test_libc_malloc () =
  with_proc (fun _machine k p ->
      let env = Mv_guest.Env.native k p in
      let libc = Mv_guest.Libc.create env in
      let a = Mv_guest.Libc.malloc libc 64 in
      let b = Mv_guest.Libc.malloc libc 64 in
      check_bool "distinct blocks" true (a <> b);
      Mv_guest.Libc.free libc a;
      let c = Mv_guest.Libc.malloc libc 64 in
      check_int "free list reuse" a c;
      (* Large allocations go to mmap and munmap on free. *)
      let before = Mv_util.Histogram.count p.Process.syscall_counts "mmap" in
      let big = Mv_guest.Libc.malloc libc (512 * 1024) in
      check_int "mmap used" (before + 1) (Mv_util.Histogram.count p.Process.syscall_counts "mmap");
      Mv_guest.Libc.free libc big;
      check_bool "munmap on free" true
        (Mv_util.Histogram.count p.Process.syscall_counts "munmap" >= 1);
      check_int "live bytes balanced" 64 (Mv_guest.Libc.malloc_live_bytes libc - 64))

let test_thread_rusage_aggregation () =
  let machine = Machine.create () in
  let k = Kernel.create machine in
  let p =
    Kernel.spawn_process k ~name:"mt" (fun p ->
        let env = Mv_guest.Env.native k p in
        let ths =
          List.init 3 (fun i ->
              env.Mv_guest.Env.thread_create ~name:(Printf.sprintf "w%d" i) (fun () ->
                  Machine.charge machine 50_000))
        in
        List.iter (fun th -> env.Mv_guest.Env.thread_join th) ths)
  in
  Sim.run machine.Machine.sim;
  let ru = p.Process.rusage in
  check_bool "worker time aggregated" true (ru.Rusage.utime >= 150_000);
  check_bool "voluntary switches recorded" true (ru.Rusage.nvcsw > 0)

let suite =
  [
    ("vfs: path resolution", `Quick, test_vfs_paths);
    ("vfs: file read/write", `Quick, test_vfs_file_rw);
    ("vfs: input streams", `Quick, test_vfs_stream);
    ("mm: demand paging", `Quick, test_mm_demand_paging);
    ("mm: zero-page COW", `Quick, test_mm_zero_page_cow);
    ("mm: mprotect drives SIGSEGV barrier", `Quick, test_mm_protection_signal);
    ("mm: unmapped access kills", `Quick, test_mm_unmapped_kills);
    ("mm: VMA splitting", `Quick, test_mm_split_vma);
    ("mm: brk", `Quick, test_brk);
    ("syscalls: file I/O + errno", `Quick, test_syscall_file_io);
    ("syscalls: counting", `Quick, test_syscall_counting);
    ("syscalls: gettimeofday tracks virtual clock", `Quick, test_gettimeofday_advances);
    ("syscalls: exit_group", `Quick, test_exit_group_kills);
    ("syscalls: futex wait/wake", `Quick, test_futex);
    ("syscalls: poll timeout", `Quick, test_poll_timeout);
    ("rusage: user/sys accounting", `Quick, test_rusage_accounting);
    ("libc: buffered stdio", `Quick, test_libc_buffered_stdio);
    ("libc: flush at 4KiB", `Quick, test_libc_buffer_flush_at_4k);
    ("libc: malloc/free", `Quick, test_libc_malloc);
    ("rusage: multi-thread aggregation", `Quick, test_thread_rusage_aggregation);
  ]
