(* Tests for the Multiverse toolchain components: the fat-binary container
   format, the override configuration language, and symbol resolution. *)

open Multiverse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Fat_binary --- *)

let test_fat_roundtrip () =
  let fat =
    Fat_binary.empty
    |> Fat_binary.add_section ~name:".text" ~data:"CODE"
    |> Fat_binary.add_section ~name:".hrt.image" ~data:(String.make 1000 '\x7f')
    |> Fat_binary.add_section ~name:".mv.overrides" ~data:""
  in
  let bytes = Fat_binary.encode fat in
  match Fat_binary.decode bytes with
  | Ok fat' ->
      Alcotest.(check (list string))
        "section order preserved" [ ".text"; ".hrt.image"; ".mv.overrides" ]
        (Fat_binary.section_names fat');
      check_string "text" "CODE" (Option.get (Fat_binary.section fat' ".text"));
      check_int "image size" 1000 (Fat_binary.section_size fat' ".hrt.image");
      check_string "empty section" "" (Option.get (Fat_binary.section fat' ".mv.overrides"))
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_fat_rejects_garbage () =
  check_bool "bad magic" true (Result.is_error (Fat_binary.decode "ELF\x7f..."));
  (* Truncations anywhere must be detected, never crash. *)
  let good =
    Fat_binary.encode (Fat_binary.add_section Fat_binary.empty ~name:"s" ~data:"0123456789")
  in
  for cut = 0 to String.length good - 1 do
    match Fat_binary.decode (String.sub good 0 cut) with
    | Ok t ->
        if cut >= 6 then
          check_int "only valid prefix parses" 0 (List.length (Fat_binary.section_names t))
    | Error _ -> ()
  done

let test_fat_duplicate_rejected () =
  let fat = Fat_binary.add_section Fat_binary.empty ~name:"a" ~data:"1" in
  Alcotest.check_raises "duplicate" (Invalid_argument "Fat_binary.add_section: duplicate section a")
    (fun () -> ignore (Fat_binary.add_section fat ~name:"a" ~data:"2"))

let qcheck_fat_roundtrip =
  QCheck.Test.make ~name:"fat binary: encode/decode roundtrip" ~count:100
    QCheck.(small_list (pair (string_of_size (Gen.int_bound 20)) (string_of_size (Gen.int_bound 200))))
    (fun sections ->
      (* de-duplicate names, drop empties *)
      let seen = Hashtbl.create 8 in
      let sections =
        List.filter
          (fun (name, _) ->
            if name = "" || Hashtbl.mem seen name then false
            else begin
              Hashtbl.add seen name ();
              true
            end)
          sections
      in
      let fat =
        List.fold_left
          (fun acc (name, data) -> Fat_binary.add_section acc ~name ~data)
          Fat_binary.empty sections
      in
      match Fat_binary.decode (Fat_binary.encode fat) with
      | Ok fat' ->
          List.for_all
            (fun (name, data) -> Fat_binary.section fat' name = Some data)
            sections
          && List.length (Fat_binary.section_names fat') = List.length sections
      | Error _ -> false)

(* --- Override_config --- *)

let test_config_parse () =
  let text =
    "# developer overrides\n\
     override pthread_create = nk_thread_create cost=450 args=4\n\
     \n\
     override mmap = nk_mmap cost=320\n"
  in
  match Override_config.parse text with
  | Ok cfg ->
      check_int "two entries" 2 (List.length cfg.Override_config.entries);
      (match Override_config.find cfg ~legacy:"pthread_create" with
      | Some e ->
          check_string "symbol" "nk_thread_create" e.Override_config.ov_symbol;
          check_int "cost" 450 e.Override_config.ov_cost;
          check_int "args" 4 e.Override_config.ov_args
      | None -> Alcotest.fail "missing entry");
      check_bool "mem" true (Override_config.mem cfg ~legacy:"mmap");
      check_bool "absent" false (Override_config.mem cfg ~legacy:"read")
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_config_roundtrip () =
  let cfg = Override_config.default in
  match Override_config.parse (Override_config.to_text cfg) with
  | Ok cfg' -> check_bool "roundtrip" true (cfg = cfg')
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_config_errors () =
  let bad text =
    match Override_config.parse text with Error _ -> true | Ok _ -> false
  in
  check_bool "missing =" true (bad "override foo nk_foo\n");
  check_bool "bad cost" true (bad "override foo = nk_foo cost=abc\n");
  check_bool "unknown option" true (bad "override foo = nk_foo color=red\n");
  (* Error messages carry the line number. *)
  match Override_config.parse "# ok\noverride broken\n" with
  | Error msg -> check_bool "line number" true (String.length msg > 6 && String.sub msg 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected error"

(* --- Symbols --- *)

let test_symbol_costs () =
  let machine = Mv_engine.Machine.create () in
  let nk = Mv_aerokernel.Nautilus.create machine in
  Mv_aerokernel.Nautilus.register_func nk ~name:"nk_test" ~cost:100 (fun () -> ());
  let measure symbols =
    let cost = ref 0 in
    ignore
      (Mv_engine.Exec.spawn machine.Mv_engine.Machine.exec ~cpu:0 ~name:"m" (fun () ->
           let t0 = Mv_engine.Exec.local_now machine.Mv_engine.Machine.exec in
           ignore (Symbols.lookup symbols "nk_test");
           ignore (Symbols.lookup symbols "nk_test");
           cost := Mv_engine.Exec.local_now machine.Mv_engine.Machine.exec - t0));
    Mv_engine.Sim.run machine.Mv_engine.Machine.sim;
    !cost
  in
  let without = measure (Symbols.create nk ~use_cache:false) in
  let with_cache = measure (Symbols.create nk ~use_cache:true) in
  let costs = machine.Mv_engine.Machine.costs in
  check_int "two full lookups" (2 * costs.Mv_hw.Costs.symbol_lookup) without;
  check_int "miss then hit"
    (costs.Mv_hw.Costs.symbol_lookup + costs.Mv_hw.Costs.symbol_cache_hit)
    with_cache

let test_symbol_not_found () =
  let machine = Mv_engine.Machine.create () in
  let nk = Mv_aerokernel.Nautilus.create machine in
  let symbols = Symbols.create nk ~use_cache:true in
  let raised = ref false in
  ignore
    (Mv_engine.Exec.spawn machine.Mv_engine.Machine.exec ~cpu:0 ~name:"m" (fun () ->
         match Symbols.lookup symbols "nk_missing" with
         | _ -> ()
         | exception Not_found -> raised := true));
  Mv_engine.Sim.run machine.Mv_engine.Machine.sim;
  check_bool "Not_found" true !raised

(* --- hybridize glue --- *)

let test_hybridize_embeds_everything () =
  let overrides =
    Override_config.add Override_config.empty
      { Override_config.ov_legacy = "mmap"; ov_symbol = "nk_mmap"; ov_cost = 320; ov_args = 3 }
  in
  let hx =
    Toolchain.hybridize ~overrides ~image_kb:64
      { Toolchain.prog_name = "demo"; prog_main = (fun _ -> ()) }
  in
  check_int "image sized as requested" (64 * 1024)
    (Fat_binary.section_size hx.Toolchain.hx_fat Fat_binary.sec_hrt_image);
  check_bool "overrides embedded" true
    (match Fat_binary.section hx.Toolchain.hx_fat Fat_binary.sec_overrides with
    | Some text -> (
        match Override_config.parse text with
        | Ok cfg -> Override_config.mem cfg ~legacy:"mmap"
        | Error _ -> false)
    | None -> false);
  (* The on-disk bytes are the decoded fat binary. *)
  match Fat_binary.decode hx.Toolchain.hx_bytes with
  | Ok fat -> check_bool "bytes decode" true (Fat_binary.section_names fat <> [])
  | Error e -> Alcotest.failf "hx_bytes corrupt: %s" e

let test_embedded_overrides_take_effect () =
  (* A developer override with a recognizable cost must be picked up by the
     runtime's wrapper machinery. *)
  let overrides =
    Override_config.add Override_config.empty
      { Override_config.ov_legacy = "my_func"; ov_symbol = "nk_my_func"; ov_cost = 777; ov_args = 1 }
  in
  let prog = { Toolchain.prog_name = "cfgdemo"; prog_main = (fun _env -> ()) } in
  let hx = Toolchain.hybridize ~overrides prog in
  let rs = Toolchain.run_multiverse hx in
  match rs.Toolchain.rs_runtime with
  | Some rt ->
      let cfg = Runtime.config rt in
      check_bool "developer entry present" true (Override_config.mem cfg ~legacy:"my_func");
      check_bool "defaults also enforced" true
        (Override_config.mem cfg ~legacy:"pthread_create");
      (* The AeroKernel symbol was auto-registered for linkage. *)
      check_bool "symbol resolvable" true
        (Mv_aerokernel.Nautilus.func_address (Runtime.nk rt) "nk_my_func" <> None)
  | None -> Alcotest.fail "no runtime"

let suite =
  [
    ("fat binary: roundtrip", `Quick, test_fat_roundtrip);
    ("fat binary: rejects garbage/truncation", `Quick, test_fat_rejects_garbage);
    ("fat binary: duplicate sections rejected", `Quick, test_fat_duplicate_rejected);
    QCheck_alcotest.to_alcotest qcheck_fat_roundtrip;
    ("override config: parse", `Quick, test_config_parse);
    ("override config: print/parse roundtrip", `Quick, test_config_roundtrip);
    ("override config: errors with line numbers", `Quick, test_config_errors);
    ("symbols: lookup costs, cache effect", `Quick, test_symbol_costs);
    ("symbols: unknown symbol", `Quick, test_symbol_not_found);
    ("hybridize: embeds image + overrides", `Quick, test_hybridize_embeds_everything);
    ("hybridize: embedded overrides take effect", `Quick, test_embedded_overrides_take_effect);
  ]
