(* Tests for the NESL VCODE interpreter: the parser, each vector
   operation, control flow, the sample programs, and pooled (parallel)
   execution equivalence. *)

module Machine = Mv_engine.Machine
module Sim = Mv_engine.Sim
open Mv_vcode

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A cost sink that needs no simulation (parser/semantics tests). *)
let dry () = Vcode.create ~charge:(fun _ -> ()) ()

let run_main ?(stack = []) src =
  Vcode.run (dry ()) (Vcode.parse src) stack

let top_int src stack =
  match List.rev (run_main ~stack src) with
  | v :: _ -> (Vcode.to_int_array v).(0)
  | [] -> Alcotest.fail "empty result stack"

let test_parse_errors () =
  let bad src =
    match Vcode.parse src with exception Vcode.Vcode_error _ -> true | _ -> false
  in
  check_bool "no main" true (bad "FUNC f\nRET");
  check_bool "unknown opcode" true (bad "FUNC main\nFROBNICATE\nRET");
  check_bool "unbalanced IF" true (bad "FUNC main\nCONST BOOL T\nIF\nRET");
  check_bool "else without if" true (bad "FUNC main\nELSE\nRET");
  check_bool "duplicate func" true (bad "FUNC main\nRET\nFUNC main\nRET");
  check_bool "unknown call" true (bad "FUNC main\nCALL ghost\nRET");
  check_bool "bad const" true (bad "FUNC main\nCONST INT xyz\nRET")

let test_elementwise_and_stack () =
  check_int "sum of squares 0..9" 285 (top_int (Samples.sum_of_squares 10) []);
  check_int "iota+dist+add" 15
    (top_int
       {|
FUNC main
  CONST INT 5
  IOTA            ; [0 1 2 3 4]
  CONST INT 1
  CONST INT 5
  DIST            ; [1 1 1 1 1]
  + INT
  +_REDUCE INT    ; 1+2+3+4+5
  RET
|}
       [])

let test_control_flow () =
  check_int "factorial 10" 3628800 (top_int (Samples.factorial 10) []);
  check_int "factorial 1" 1 (top_int (Samples.factorial 1) []);
  check_int "if-else false branch" 99
    (top_int
       {|
FUNC main
  CONST BOOL F
  IF
    CONST INT 1
  ELSE
    CONST INT 99
  ENDIF
  RET
|}
       [])

let test_scan_and_pack () =
  (* line of sight over [3 1 4 1 5 9 2 6]: visible = 3,4,5,9 *)
  let out =
    run_main ~stack:[ Vcode.int_vec [| 3; 1; 4; 1; 5; 9; 2; 6 |] ] Samples.line_of_sight
  in
  (match List.rev out with
  | v :: _ ->
      let flags =
        match v with
        | Vcode.V_bool b -> b
        | _ -> Alcotest.fail "expected bool vector"
      in
      Alcotest.(check (array bool)) "visibility"
        [| true; false; true; false; true; true; false; false |]
        flags
  | [] -> Alcotest.fail "no result");
  (* PACK keeps the visible heights. *)
  let packed =
    run_main
      ~stack:[ Vcode.int_vec [| 3; 1; 4; 1; 5; 9; 2; 6 |] ]
      {|
FUNC main
  COPY
  COPY
  MAX_SCAN INT
  > INT
  PACK
  RET
|}
  in
  match List.rev packed with
  | v :: _ -> Alcotest.(check (array int)) "packed" [| 3; 4; 5; 9 |] (Vcode.to_int_array v)
  | [] -> Alcotest.fail "no result"

let test_permute_select_replace () =
  let rev =
    run_main
      ~stack:[ Vcode.int_vec [| 10; 20; 30; 40 |] ]
      {|
FUNC main
  CONST INT 4
  IOTA
  CONST INT 3
  CONST INT 4
  DIST
  SWAP
  - INT           ; [3 2 1 0]
  PERMUTE
  RET
|}
  in
  (match List.rev rev with
  | v :: _ -> Alcotest.(check (array int)) "reversed" [| 40; 30; 20; 10 |] (Vcode.to_int_array v)
  | [] -> Alcotest.fail "no result");
  let selected =
    run_main
      ~stack:
        [ Vcode.int_vec [| 1; 2; 3 |]; Vcode.int_vec [| 10; 20; 30 |];
          Vcode.V_bool [| true; false; true |] ]
      "FUNC main\nSELECT\nRET"
  in
  match List.rev selected with
  | v :: _ -> Alcotest.(check (array int)) "selected" [| 1; 20; 3 |] (Vcode.to_int_array v)
  | [] -> Alcotest.fail "no result"

let test_dot_and_segmented () =
  let dot =
    run_main
      ~stack:[ Vcode.float_vec [| 1.0; 2.0; 3.0 |]; Vcode.float_vec [| 4.0; 5.0; 6.0 |] ]
      Samples.dot_product
  in
  (match List.rev dot with
  | v :: _ -> Alcotest.(check (float 1e-9)) "dot" 32.0 (Vcode.to_float_array v).(0)
  | [] -> Alcotest.fail "no result");
  let rows =
    run_main
      ~stack:
        [ Vcode.int_vec [| 2; 3; 1 |];
          Vcode.float_vec [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] ]
      Samples.matvec_segmented
  in
  match List.rev rows with
  | v :: _ ->
      Alcotest.(check (array (float 1e-9))) "row sums" [| 3.0; 12.0; 6.0 |]
        (Vcode.to_float_array v)
  | [] -> Alcotest.fail "no result"

let test_dynamic_errors () =
  let boom ?(stack = []) src =
    match run_main ~stack src with
    | exception Vcode.Vcode_error _ -> true
    | _ -> false
  in
  check_bool "underflow" true (boom "FUNC main\nPOP\nRET");
  check_bool "length mismatch" true
    (boom
       ~stack:[ Vcode.int_vec [| 1 |]; Vcode.int_vec [| 1; 2 |] ]
       "FUNC main\n+ INT\nRET");
  check_bool "type mismatch" true
    (boom
       ~stack:[ Vcode.int_vec [| 1 |]; Vcode.float_vec [| 1.0 |] ]
       "FUNC main\n+ INT\nRET");
  check_bool "IF on vector" true
    (boom ~stack:[ Vcode.V_bool [| true; false |] ] "FUNC main\nIF\nENDIF\nRET");
  check_bool "infinite recursion bounded" true
    (boom "FUNC loop\nCALL loop\nRET\nFUNC main\nCALL loop\nRET");
  check_bool "division by zero" true
    (boom
       ~stack:[ Vcode.int_vec [| 1 |]; Vcode.int_vec [| 0 |] ]
       "FUNC main\n/ INT\nRET")

let test_pooled_equivalence () =
  (* The same program on a 4-worker pool yields the same values, charges
     virtual time, and fans vector ops out as parallel regions. *)
  let machine = Machine.create () in
  let k = Mv_ros.Kernel.create machine in
  let result = ref None in
  ignore
    (Mv_ros.Kernel.spawn_process k ~name:"vcode" (fun p ->
         let env = Mv_guest.Env.native k p in
         let pool = Mv_parallel.Pool.create (Mv_parallel.Pool.Linux env) ~nworkers:4 in
         let interp = Vcode.create ~pool ~charge:(fun c -> env.Mv_guest.Env.work c) () in
         let out = Vcode.run interp (Vcode.parse (Samples.sum_of_squares 4000)) [] in
         Mv_parallel.Pool.shutdown pool;
         result := Some (out, Vcode.elements_processed interp, Mv_parallel.Pool.regions pool)))
  |> ignore;
  Sim.run machine.Machine.sim;
  match !result with
  | Some ([ v ], elems, regions) ->
      (* sum i^2, i in [0,4000) *)
      let expect = 4000 * (4000 - 1) * ((2 * 4000) - 1) / 6 in
      check_int "pooled sum of squares" expect (Vcode.to_int_array v).(0);
      check_bool "elements counted" true (elems >= 3 * 4000);
      check_bool "vector ops became parallel regions" true (regions >= 3)
  | _ -> Alcotest.fail "pooled run failed"

let suite =
  [
    ("vcode: parse errors", `Quick, test_parse_errors);
    ("vcode: elementwise + stack ops", `Quick, test_elementwise_and_stack);
    ("vcode: control flow (factorial)", `Quick, test_control_flow);
    ("vcode: scan, line-of-sight, pack", `Quick, test_scan_and_pack);
    ("vcode: permute/select", `Quick, test_permute_select_replace);
    ("vcode: dot product + segmented reduce", `Quick, test_dot_and_segmented);
    ("vcode: dynamic errors", `Quick, test_dynamic_errors);
    ("vcode: pooled execution equivalence", `Quick, test_pooled_equivalence);
  ]
