(* Quickstart: the paper's Figure 4 and Figure 5 examples.

   A user program creates an HRT thread which calls an AeroKernel function
   directly and then uses plain printf() — which works because the merged
   address space makes the libc linkage valid and the event channels
   forward the eventual write(2) to the ROS.

   Run with:  dune exec examples/quickstart.exe *)

open Multiverse

let () =
  print_endline "--- Figure 4: hrt_invoke_func + aerokernel_func + printf ---";
  let rs =
    Toolchain.run_accelerator ~name:"quickstart" (fun ~ros_env ~rt ->
        let nk = Runtime.nk rt in
        (* The AeroKernel developer exports a function... *)
        let result = ref 0 in
        Mv_aerokernel.Nautilus.register_func nk ~name:"aerokernel_func" ~cost:300
          (fun () -> result := 42);
        (* ...and the user code runs it from kernel mode. *)
        let partner =
          Runtime.hrt_invoke rt ~name:"routine" (fun env ->
              Mv_aerokernel.Nautilus.call_func nk ~name:"aerokernel_func";
              let libc = Mv_guest.Libc.create env in
              Mv_guest.Libc.printf libc "Result = %d\n" !result;
              Mv_guest.Libc.flush_all libc)
        in
        Runtime.join rt partner;
        ignore ros_env)
  in
  print_string rs.Toolchain.rs_stdout;
  Printf.printf "(ran as an HRT: %d syscalls forwarded, %d hypercalls)\n\n"
    (match rs.Toolchain.rs_runtime with
    | Some rt -> Mv_aerokernel.Nautilus.stats_syscalls_forwarded (Runtime.nk rt)
    | None -> 0)
    (Mv_util.Histogram.total rs.Toolchain.rs_syscalls);

  print_endline "--- Figure 5: the same via the pthread_create override ---";
  let prog =
    {
      Toolchain.prog_name = "quickstart-pthread";
      prog_main =
        (fun env ->
          let libc = Mv_guest.Libc.create env in
          let t =
            env.Mv_guest.Env.thread_create ~name:"routine" (fun () ->
                Mv_guest.Libc.printf libc "Result = %d\n" (2 * 21))
          in
          env.Mv_guest.Env.thread_join t;
          Mv_guest.Libc.flush_all libc);
    }
  in
  let rs = Toolchain.run_multiverse (Toolchain.hybridize prog) in
  print_string rs.Toolchain.rs_stdout;
  (match rs.Toolchain.rs_runtime with
  | Some rt ->
      Printf.printf
        "(pthread_create was interposed: %d execution groups, %d override calls,\n\
        \ zero clone(2) syscalls: %b)\n"
        (Runtime.groups_created rt) (Runtime.overridden_calls rt)
        (Mv_util.Histogram.count rs.Toolchain.rs_syscalls "clone" = 0)
  | None -> ())
