(* The paper's headline demo: off-the-shelf Racket, hybridized.

   "When compiled and linked for HRT use, our port behaves identically":
   here the same Scheme session runs through the Racket engine's REPL both
   natively and as a kernel-mode HRT, and the transcripts are compared
   byte for byte.  The REPL input arrives over forwarded read(2) calls;
   the prompt comes back over forwarded write(2).

   Run with:  dune exec examples/repl_batch.exe *)

open Multiverse

let session =
  "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))\n\
   (fact 10)\n\
   (map (lambda (x) (* x x)) '(1 2 3 4 5))\n\
   (string-append \"hybrid \" \"runtime\")\n\
   (let loop ((i 0) (acc 0)) (if (= i 100000) acc (loop (+ i 1) (+ acc i))))\n"

let repl_program =
  {
    Toolchain.prog_name = "racket-repl";
    prog_main =
      (fun env ->
        let engine = Mv_racket.Engine.start env in
        Mv_racket.Engine.repl engine);
  }

let () =
  print_endline "--- session (fed to the REPL on stdin) ---";
  print_string session;
  let rs_native = Toolchain.run_native ~stdin:session repl_program in
  let rs_hrt = Toolchain.run_multiverse ~stdin:session (Toolchain.hybridize repl_program) in
  print_endline "\n--- transcript (kernel-mode Racket under Multiverse) ---";
  print_string rs_hrt.Toolchain.rs_stdout;
  Printf.printf "\nnative and HRT transcripts identical: %b\n"
    (rs_native.Toolchain.rs_stdout = rs_hrt.Toolchain.rs_stdout);
  match rs_hrt.Toolchain.rs_runtime with
  | Some rt ->
      let nk = Runtime.nk rt in
      Printf.printf
        "while the user typed Scheme, the runtime forwarded %d syscalls and %d\n\
         page faults from ring 0 — \"to the user, the package appears to run as\n\
         usual on Linux, but the bulk of it now runs as a kernel.\"\n"
        (Mv_aerokernel.Nautilus.stats_syscalls_forwarded nk)
        (Mv_aerokernel.Nautilus.stats_faults_forwarded nk)
  | None -> ()
