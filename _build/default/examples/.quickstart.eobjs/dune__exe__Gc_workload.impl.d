examples/gc_workload.ml: Array Multiverse Mv_aerokernel Mv_ros Mv_util Mv_workloads Printf Runtime Sys Toolchain
