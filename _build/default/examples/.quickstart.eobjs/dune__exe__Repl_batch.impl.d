examples/repl_batch.ml: Multiverse Mv_aerokernel Mv_racket Printf Runtime Toolchain
