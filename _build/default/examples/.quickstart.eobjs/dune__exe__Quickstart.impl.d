examples/quickstart.ml: Multiverse Mv_aerokernel Mv_guest Mv_util Printf Runtime Toolchain
