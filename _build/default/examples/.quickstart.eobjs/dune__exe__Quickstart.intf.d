examples/quickstart.mli:
