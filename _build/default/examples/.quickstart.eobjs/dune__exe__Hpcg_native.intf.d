examples/hpcg_native.mli:
