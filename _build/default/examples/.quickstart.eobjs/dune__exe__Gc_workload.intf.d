examples/gc_workload.mli:
