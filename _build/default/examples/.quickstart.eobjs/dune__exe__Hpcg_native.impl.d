examples/hpcg_native.ml: Array Hpcg List Mv_aerokernel Mv_engine Mv_guest Mv_hw Mv_parallel Mv_ros Mv_util Option Pool Printf Sys
