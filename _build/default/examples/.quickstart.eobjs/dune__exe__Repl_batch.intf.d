examples/repl_batch.mli:
