examples/nesl_vcode.mli:
