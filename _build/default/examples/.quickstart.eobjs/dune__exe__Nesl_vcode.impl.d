examples/nesl_vcode.ml: Format List Mv_aerokernel Mv_engine Mv_guest Mv_hw Mv_parallel Mv_ros Mv_util Mv_vcode Printf Samples String Vcode
