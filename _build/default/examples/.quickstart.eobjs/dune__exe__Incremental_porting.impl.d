examples/incremental_porting.ml: Array List Multiverse Mv_util Mv_workloads Option Printf Runtime Sys Toolchain
