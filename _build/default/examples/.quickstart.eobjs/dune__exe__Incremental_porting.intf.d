examples/incremental_porting.mli:
