(* The subtractive porting path (paper, Sections 1 and 5).

   Automatic hybridization gives a working-but-slow HRT; the developer
   then iteratively removes dependencies on the legacy OS.  This example
   walks binary-tree-2 through the steps the paper's conclusion suggests:
   port the mmap/mprotect machinery, then fault handling, then the signal
   delivery the garbage collector depends on — and watches the runtime
   approach native.

   Run with:  dune exec examples/incremental_porting.exe [n] *)

open Multiverse

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10 in
  let b = Mv_workloads.Benchmarks.find "binary-tree-2" in
  let prog = Mv_workloads.Benchmarks.program b ~n in
  let hx = Toolchain.hybridize prog in
  let native = (Toolchain.run_native prog).Toolchain.rs_wall_cycles in
  let steps =
    [
      ("step 0: automatic hybridization", Runtime.no_porting);
      ( "step 1: AeroKernel mmap/munmap/mprotect",
        { Runtime.port_mmap = true; port_signals = false; port_faults = false } );
      ( "step 2: + in-kernel fault handling",
        { Runtime.port_mmap = true; port_signals = false; port_faults = true } );
      ("step 3: + in-kernel signal delivery", Runtime.full_porting);
    ]
  in
  Printf.printf "binary-tree-2 (depth %d); native reference = %.4f s\n\n" n
    (Mv_util.Cycles.to_sec native);
  List.iter
    (fun (name, porting) ->
      let options = { Toolchain.default_mv_options with mv_porting = porting } in
      let rs = Toolchain.run_multiverse ~options hx in
      let rt = Option.get rs.Toolchain.rs_runtime in
      Printf.printf "%-42s %.4f s  (%.2fx native; %5d faults kept local, %d overrides)\n"
        name
        (Toolchain.wall_seconds rs)
        (float_of_int rs.Toolchain.rs_wall_cycles /. float_of_int native)
        (Runtime.faults_serviced_locally rt)
        (Runtime.overridden_calls rt))
    steps;
  print_newline ();
  print_endline
    "Each step behaves identically to native (same stdout); only the cost of\n\
     the remaining legacy interactions changes.  This is the paper's\n\
     incremental path from the Incremental model toward the Native model."
