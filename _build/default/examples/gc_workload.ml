(* A GC-bound workload across all three execution modes.

   Runs the binary-tree-2 benchmark (the paper's GC stress test) natively,
   under virtualization, and as an automatically hybridized HRT, and
   breaks down where the Multiverse overhead comes from: forwarded page
   faults and forwarded system calls.

   Run with:  dune exec examples/gc_workload.exe [n]   (default n=10) *)

open Multiverse
module H = Mv_util.Histogram

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10 in
  let b = Mv_workloads.Benchmarks.find "binary-tree-2" in
  let prog = Mv_workloads.Benchmarks.program b ~n in
  Printf.printf "binary-tree-2, max depth %d\n\n" n;
  let rs_n = Toolchain.run_native prog in
  let rs_v = Toolchain.run_virtual prog in
  let rs_m = Toolchain.run_multiverse (Toolchain.hybridize prog) in
  assert (rs_n.Toolchain.rs_stdout = rs_m.Toolchain.rs_stdout);
  print_string rs_n.Toolchain.rs_stdout;
  let t = Mv_util.Table.create ~headers:[ "Mode"; "Wall (s)"; "Syscalls"; "Page faults" ] in
  let row name rs =
    Mv_util.Table.add_row t
      [ name;
        Printf.sprintf "%.4f" (Toolchain.wall_seconds rs);
        string_of_int (Toolchain.total_syscalls rs);
        string_of_int rs.Toolchain.rs_rusage.Mv_ros.Rusage.minflt;
      ]
  in
  row "native" rs_n;
  row "virtual" rs_v;
  row "multiverse" rs_m;
  print_newline ();
  print_string (Mv_util.Table.to_string t);
  match rs_m.Toolchain.rs_runtime with
  | Some rt ->
      let nk = Runtime.nk rt in
      Printf.printf
        "\nMultiverse forwarding: %d page faults and %d syscalls crossed the\n\
         ROS<->HRT boundary (plus %d PML4 re-merges); the GC's mmap/mprotect/\n\
         SIGSEGV traffic is what makes this benchmark expensive to hybridize\n\
         without porting (see examples/incremental_porting.exe).\n"
        (Mv_aerokernel.Nautilus.stats_faults_forwarded nk)
        (Mv_aerokernel.Nautilus.stats_syscalls_forwarded nk)
        (Mv_aerokernel.Nautilus.stats_remerges nk)
  | None -> ()
