(* An interactive hybridized Racket REPL.

   The Scheme session runs inside the simulation — by default as a
   kernel-mode HRT, with every read(2)/write(2) forwarded over event
   channels — while this process bridges your real terminal to the
   simulated console.  The simulation quiesces exactly when the REPL
   blocks on stdin, so the bridge alternates: drain events, read a host
   line, feed it in.

     dune exec bin/racket_repl.exe            # hybridized (the default)
     dune exec bin/racket_repl.exe -- native  # plain user-level run *)

open Multiverse
module Machine = Mv_engine.Machine
module Sim = Mv_engine.Sim

let () =
  let native = Array.length Sys.argv > 1 && Sys.argv.(1) = "native" in
  let consumed = ref 0 in
  let tee _ = () in
  (* Build the stack by hand so we can pump the simulation interactively. *)
  let machine = Machine.create () in
  let kernel = Mv_ros.Kernel.create ~virtualized:(not native) machine in
  let proc_box = ref None in
  let start_repl p env =
    let engine = Mv_racket.Engine.start env in
    Mv_racket.Engine.repl engine;
    ignore p
  in
  (if native then
     ignore
       (Mv_ros.Kernel.spawn_process kernel ~name:"racket" ~stdout_tee:tee (fun p ->
            proc_box := Some p;
            start_repl p (Mv_guest.Env.native kernel p)))
   else begin
     let hvm = Mv_hvm.Hvm.create machine ~ros:kernel in
     let nk = Mv_aerokernel.Nautilus.create machine in
     let fat =
       (Toolchain.hybridize { Toolchain.prog_name = "racket"; prog_main = (fun _ -> ()) })
         .Toolchain.hx_fat
     in
     ignore
       (Mv_ros.Kernel.spawn_process kernel ~name:"racket" ~stdout_tee:tee (fun p ->
            proc_box := Some p;
            let rt = Runtime.init ~hvm ~proc:p ~fat ~nk () in
            let partner = Runtime.hrt_invoke rt ~name:"repl" (fun env -> start_repl p env) in
            Runtime.join rt partner))
   end);
  Printf.printf "Multiverse Racket REPL (%s mode) — Ctrl-D to exit\n%!"
    (if native then "native" else "kernel-mode HRT");
  let rec pump () =
    Sim.run machine.Machine.sim;
    match !proc_box with
    | None -> ()
    | Some p ->
        (* Show whatever the simulated console produced since last time. *)
        let out = Mv_ros.Process.stdout_contents p in
        if String.length out > !consumed then begin
          print_string (String.sub out !consumed (String.length out - !consumed));
          flush stdout;
          consumed := String.length out
        end;
        if not p.Mv_ros.Process.exited then (
          match input_line stdin with
          | line ->
              Mv_ros.Vfs.feed p.Mv_ros.Process.stdin (line ^ "\n");
              pump ()
          | exception End_of_file ->
              Mv_ros.Vfs.close_stream p.Mv_ros.Process.stdin;
              pump ())
  in
  pump ()
