(* mvtrace: run a workload with event tracing and summarize where its
   Linux-ABI interactions come from — the analysis a developer does before
   deciding what to port to the AeroKernel (the paper's incremental
   model: "identify hot spots in the legacy interface").

     dune exec bin/mvtrace.exe -- binary-tree-2 [n] [--mode multiverse]
     dune exec bin/mvtrace.exe -- fasta 500 --raw 20 *)

open Multiverse

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse bench n mode raw = function
    | [] -> (bench, n, mode, raw)
    | "--mode" :: m :: rest -> parse bench n m raw rest
    | "--raw" :: k :: rest -> parse bench n mode (int_of_string k) rest
    | a :: rest when int_of_string_opt a <> None ->
        parse bench (int_of_string_opt a) mode raw rest
    | a :: rest -> parse (Some a) n mode raw rest
  in
  let bench, n, mode, raw = parse None None "native" 0 args in
  let name = Option.value bench ~default:"binary-tree-2" in
  let b = Mv_workloads.Benchmarks.find name in
  let n = Option.value n ~default:b.Mv_workloads.Benchmarks.b_test_n in
  let prog = Mv_workloads.Benchmarks.program b ~n in
  Printf.printf "tracing %s (n=%d) under %s...\n%!" name n mode;
  let rs =
    match mode with
    | "native" -> Toolchain.run_native ~trace:true prog
    | "virtual" -> Toolchain.run_virtual ~trace:true prog
    | "multiverse" -> Toolchain.run_multiverse ~trace:true (Toolchain.hybridize prog)
    | m -> failwith ("unknown mode " ^ m)
  in
  let records =
    Mv_engine.Trace.records_in rs.Toolchain.rs_machine.Mv_engine.Machine.trace
      ~category:"pagefault"
  in
  Printf.printf "\nwall %.4f s | %d syscalls | %d page faults (%d traced)\n\n"
    (Toolchain.wall_seconds rs) (Toolchain.total_syscalls rs)
    rs.Toolchain.rs_rusage.Mv_ros.Rusage.minflt (List.length records);
  (* Fault histogram by VMA kind: which memory is faulting? *)
  let by_kind = Mv_util.Histogram.create () in
  let writes = ref 0 in
  List.iter
    (fun r ->
      let msg = r.Mv_engine.Trace.message in
      (match String.index_opt msg '=' with
      | Some _ -> (
          (* "pid=1 vma=<kind>+<off> w=<bool>" *)
          match String.split_on_char ' ' msg with
          | [ _pid; vma; w ] ->
              let kind =
                match String.split_on_char '=' vma with
                | [ _; v ] -> ( match String.index_opt v '+' with
                    | Some i -> String.sub v 0 i
                    | None -> v)
                | _ -> "?"
              in
              Mv_util.Histogram.incr by_kind kind;
              if w = "w=true" then incr writes
          | _ -> Mv_util.Histogram.incr by_kind "?")
      | None -> Mv_util.Histogram.incr by_kind "?"))
    records;
  Printf.printf "page faults by memory region (porting targets on top):\n";
  Format.printf "%a@." (Mv_util.Histogram.pp_bars ~width:36) by_kind;
  Printf.printf "writes: %d / reads: %d\n\n" !writes (List.length records - !writes);
  Printf.printf "system calls:\n";
  Format.printf "%a@." (Mv_util.Histogram.pp_bars ~width:36) rs.Toolchain.rs_syscalls;
  if raw > 0 then begin
    Printf.printf "\nfirst %d fault records:\n" raw;
    List.iteri
      (fun i r ->
        if i < raw then
          Printf.printf "  [%12d cyc] %s\n" r.Mv_engine.Trace.at r.Mv_engine.Trace.message)
      records
  end
