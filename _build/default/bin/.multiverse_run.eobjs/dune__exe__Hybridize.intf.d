bin/hybridize.mli:
