bin/mvtrace.mli:
