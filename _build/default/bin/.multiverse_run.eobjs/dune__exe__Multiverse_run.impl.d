bin/multiverse_run.ml: Arg Cmd Cmdliner Filename List Multiverse Mv_aerokernel Mv_hvm Mv_racket Mv_ros Mv_util Mv_workloads Printf Runtime Term Toolchain
