bin/racket_repl.mli:
