bin/multiverse_run.mli:
