bin/mvtrace.ml: Array Format List Multiverse Mv_engine Mv_ros Mv_util Mv_workloads Option Printf String Sys Toolchain
