bin/hybridize.ml: Arg Cmd Cmdliner Fat_binary List Multiverse Override_config Printf String Term Toolchain
