bin/racket_repl.ml: Array Multiverse Mv_aerokernel Mv_engine Mv_guest Mv_hvm Mv_racket Mv_ros Printf Runtime String Sys Toolchain
