type t = {
  capacity : int;
  entries : (int, Page_table.pte) Hashtbl.t;
  order : int Queue.t;  (* FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 512) () =
  { capacity; entries = Hashtbl.create 64; order = Queue.create (); hits = 0; misses = 0 }

let lookup t ~page =
  match Hashtbl.find_opt t.entries page with
  | Some pte ->
      t.hits <- t.hits + 1;
      Some pte
  | None ->
      t.misses <- t.misses + 1;
      None

let rec evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some page ->
      if Hashtbl.mem t.entries page then Hashtbl.remove t.entries page
      else evict_one t (* stale FIFO entry for an already-invalidated page *)

let fill t ~page pte =
  if not (Hashtbl.mem t.entries page) then begin
    if Hashtbl.length t.entries >= t.capacity then evict_one t;
    Hashtbl.replace t.entries page pte;
    Queue.add page t.order
  end
  else Hashtbl.replace t.entries page pte

let invalidate_page t ~page = Hashtbl.remove t.entries page

let flush t =
  Hashtbl.reset t.entries;
  Queue.clear t.order

let occupancy t = float_of_int (Hashtbl.length t.entries) /. float_of_int t.capacity
let hits t = t.hits
let misses t = t.misses
