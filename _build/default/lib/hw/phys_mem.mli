(** Physical frame allocator with NUMA zones and partition regions.

    The HVM segregates physical memory: the ROS sees only its own subset
    while the HRT has access to everything (paper, Section 2).  Frames are
    identified by integer frame numbers; each zone is a contiguous range of
    frames bound to a NUMA node (socket). *)

type region = Ros_region | Hrt_region

type t

val create : ?frames_per_zone:int -> sockets:int -> hrt_fraction:float -> unit -> t
(** [create ~sockets ~hrt_fraction ()] builds one zone per socket and
    reserves the top [hrt_fraction] of each zone for the HRT partition. *)

val alloc : t -> ?zone:int -> region -> int
(** Allocate a frame from [region], preferring NUMA [zone] (a socket id)
    when given.  Raises [Out_of_memory] if the region is exhausted. *)

val free : t -> int -> unit
(** Return a frame.  Raises [Invalid_argument] on double free. *)

val region_of_frame : t -> int -> region
val zone_of_frame : t -> int -> int
val allocated : t -> region -> int
val total : t -> region -> int
val pp : Format.formatter -> t -> unit
