(** Memory-access checking: TLB, page walk, and fault classification.

    This is where the paper's kernel-mode paging subtlety lives: by default
    an x86 core running in ring 0 silently succeeds when writing a
    read-only page — the source of the "mysterious memory corruption" the
    authors hit — unless CR0.WP is set, in which case the write faults just
    as it would in ring 3 (paper, Section 4.4). *)

type access = Read | Write

type fault_reason = Not_present | Protection

type outcome =
  | Hit of Page_table.pte * int
      (** translation succeeded; the [int] is the cycle cost of the lookup
          (TLB hit or walk + fill) *)
  | Silent_write of Page_table.pte * int
      (** ring-0 write to a read-only page with CR0.WP clear: the write
          {e goes through}, corrupting memory that was meant protected *)
  | Fault of fault_reason * int
      (** page fault; the [int] is the cost burned before faulting *)

val access : Costs.t -> Cpu.t -> Page_table.t -> Addr.t -> access -> outcome
(** Perform an access check on the given core against [root] (which must be
    the table CR3 points at; asserted). *)
