(** Per-core translation lookaside buffer.

    A small set-associative-ish cache of page-to-PTE translations.  A merger
    broadcasts a shootdown to all HRT cores (paper, Section 4.4); a CR3
    switch flushes.  The TLB also supports the paper's observation that the
    HRT core's {e sparse} TLB makes vdso calls slightly cheaper there: we
    expose an occupancy measure callers can consult. *)

type t

val create : ?capacity:int -> unit -> t

val lookup : t -> page:int -> Page_table.pte option
(** Cached translation for [page], if any. *)

val fill : t -> page:int -> Page_table.pte -> unit
(** Insert after a page walk, evicting (FIFO) if at capacity. *)

val invalidate_page : t -> page:int -> unit
val flush : t -> unit
val occupancy : t -> float
(** Fraction of capacity in use, in [0,1]. *)

val hits : t -> int
val misses : t -> int
