lib/hw/cpu.mli: Addr Page_table Tlb
