lib/hw/tlb.ml: Hashtbl Page_table Queue
