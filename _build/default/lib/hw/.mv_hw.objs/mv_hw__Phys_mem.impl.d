lib/hw/phys_mem.ml: Array Format Hashtbl List
