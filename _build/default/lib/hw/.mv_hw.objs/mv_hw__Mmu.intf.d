lib/hw/mmu.mli: Addr Costs Cpu Page_table
