lib/hw/addr.ml: Format Int64
