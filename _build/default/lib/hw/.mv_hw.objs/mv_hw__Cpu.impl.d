lib/hw/cpu.ml: Addr Page_table Tlb
