lib/hw/costs.ml: Format Mv_util
