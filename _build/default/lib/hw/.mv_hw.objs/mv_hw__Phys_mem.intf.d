lib/hw/phys_mem.mli: Format
