lib/hw/costs.mli: Format
