lib/hw/page_table.ml: Addr Array
