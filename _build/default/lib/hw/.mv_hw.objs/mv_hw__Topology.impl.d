lib/hw/topology.ml: Array Format List String
