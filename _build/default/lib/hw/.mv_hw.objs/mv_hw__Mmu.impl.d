lib/hw/mmu.ml: Addr Costs Cpu Page_table Tlb
