type access = Read | Write

type fault_reason = Not_present | Protection

type outcome =
  | Hit of Page_table.pte * int
  | Silent_write of Page_table.pte * int
  | Fault of fault_reason * int

let check_protection (cpu : Cpu.t) (pte : Page_table.pte) access cost =
  let writable = Page_table.has pte.pte_flags Page_table.f_writable in
  match access with
  | Read -> Hit (pte, cost)
  | Write ->
      if writable then Hit (pte, cost)
      else if cpu.ring = 0 && not cpu.cr0_wp then Silent_write (pte, cost)
      else Fault (Protection, cost)

let access (costs : Costs.t) (cpu : Cpu.t) root addr kind =
  assert (cpu.cr3 = Page_table.id root);
  let page = Addr.page_of addr in
  match Tlb.lookup cpu.tlb ~page with
  | Some pte ->
      if Page_table.has pte.pte_flags Page_table.f_present then
        check_protection cpu pte kind costs.tlb_fill
      else begin
        (* Stale cached entry for an unmapped page: hardware would not keep
           it, so drop and retry via the walk path. *)
        Tlb.invalidate_page cpu.tlb ~page;
        let entry, levels = Page_table.walk root addr in
        let cost = levels * costs.page_walk_level in
        match entry with
        | None -> Fault (Not_present, cost)
        | Some pte ->
            Tlb.fill cpu.tlb ~page pte;
            check_protection cpu pte kind (cost + costs.tlb_fill)
      end
  | None -> (
      let entry, levels = Page_table.walk root addr in
      let cost = levels * costs.page_walk_level in
      match entry with
      | None -> Fault (Not_present, cost)
      | Some pte ->
          if Page_table.has pte.pte_flags Page_table.f_present then begin
            Tlb.fill cpu.tlb ~page pte;
            check_protection cpu pte kind (cost + costs.tlb_fill)
          end
          else Fault (Not_present, cost))
