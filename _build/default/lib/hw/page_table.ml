type flags = int

let f_present = 1
let f_writable = 2
let f_user = 4
let f_nx = 8
let f_cow = 16
let has flags bit = flags land bit <> 0

type pte = { mutable frame : int; mutable pte_flags : flags }

(* Interior nodes hold either further tables or leaf entries, depending on
   the level.  Level numbering: 4 = PML4 ... 1 = PT (leaves live in PTs). *)
type node = { slots : slot array }
and slot = Empty | Table of node | Page of pte

type t = { id : int; pml4 : node; mutable lower_gen : int }

let next_id = ref 0

let fresh_node () = { slots = Array.make 512 Empty }

let create () =
  incr next_id;
  { id = !next_id; pml4 = fresh_node (); lower_gen = 0 }

let id t = t.id

let indices addr =
  (Addr.pml4_index addr, Addr.pdpt_index addr, Addr.pd_index addr, Addr.pt_index addr)

let get_table node i =
  match node.slots.(i) with
  | Table n -> Some n
  | Empty -> None
  | Page _ -> invalid_arg "Page_table: leaf at interior level"

let get_or_make_table node i =
  match node.slots.(i) with
  | Table n -> (n, false)
  | Empty ->
      let n = fresh_node () in
      node.slots.(i) <- Table n;
      (n, true)
  | Page _ -> invalid_arg "Page_table: leaf at interior level"

let map t addr ~frame ~flags =
  if not (Addr.is_page_aligned addr) then invalid_arg "Page_table.map: unaligned";
  let i4, i3, i2, i1 = indices addr in
  let pdpt, created4 = get_or_make_table t.pml4 i4 in
  if created4 && i4 < 256 then t.lower_gen <- t.lower_gen + 1;
  let pd, _ = get_or_make_table pdpt i3 in
  let pt, _ = get_or_make_table pd i2 in
  match pt.slots.(i1) with
  | Page pte ->
      pte.frame <- frame;
      pte.pte_flags <- flags
  | Empty | Table _ -> pt.slots.(i1) <- Page { frame; pte_flags = flags }

let walk t addr =
  let i4, i3, i2, i1 = indices addr in
  match get_table t.pml4 i4 with
  | None -> (None, 1)
  | Some pdpt -> (
      match get_table pdpt i3 with
      | None -> (None, 2)
      | Some pd -> (
          match get_table pd i2 with
          | None -> (None, 3)
          | Some pt -> (
              match pt.slots.(i1) with
              | Page pte -> (Some pte, 4)
              | Empty | Table _ -> (None, 4))))

let lookup t addr = fst (walk t addr)

let unmap t addr =
  let i4, i3, i2, i1 = indices addr in
  match get_table t.pml4 i4 with
  | None -> false
  | Some pdpt -> (
      match get_table pdpt i3 with
      | None -> false
      | Some pd -> (
          match get_table pd i2 with
          | None -> false
          | Some pt -> (
              match pt.slots.(i1) with
              | Page _ ->
                  pt.slots.(i1) <- Empty;
                  true
              | Empty | Table _ -> false)))

let protect t addr ~flags =
  match lookup t addr with
  | Some pte ->
      pte.pte_flags <- flags;
      true
  | None -> false

let pml4_slot_present t i =
  match t.pml4.slots.(i) with Empty -> false | Table _ | Page _ -> true

let copy_lower_half ~src ~dst =
  let copied = ref 0 in
  for i = 0 to 255 do
    (match (src.pml4.slots.(i), dst.pml4.slots.(i)) with
    | Empty, Empty -> ()
    | s, _ ->
        if s <> Empty then incr copied;
        dst.pml4.slots.(i) <- s);
    ()
  done;
  dst.lower_gen <- src.lower_gen;
  !copied

let clear_lower_half t =
  for i = 0 to 255 do
    if t.pml4.slots.(i) <> Empty then begin
      t.pml4.slots.(i) <- Empty;
      t.lower_gen <- t.lower_gen + 1
    end
  done

let lower_half_generation t = t.lower_gen

let iter_mappings t f =
  let visit_pt base_pt pt =
    Array.iteri
      (fun i1 slot ->
        match slot with
        | Page pte -> f (base_pt lor (i1 lsl 12)) pte
        | Empty | Table _ -> ())
      pt.slots
  in
  let visit_pd base_pd pd =
    Array.iteri
      (fun i2 slot ->
        match slot with
        | Table pt -> visit_pt (base_pd lor (i2 lsl 21)) pt
        | Empty | Page _ -> ())
      pd.slots
  in
  let visit_pdpt base_pdpt pdpt =
    Array.iteri
      (fun i3 slot ->
        match slot with
        | Table pd -> visit_pd (base_pdpt lor (i3 lsl 30)) pd
        | Empty | Page _ -> ())
      pdpt.slots
  in
  Array.iteri
    (fun i4 slot ->
      match slot with
      | Table pdpt -> visit_pdpt (i4 lsl 39) pdpt
      | Empty | Page _ -> ())
    t.pml4.slots

let count_mapped t =
  let n = ref 0 in
  iter_mappings t (fun _ _ -> incr n);
  !n
