(** Four-level x86-64 page tables (PML4 / PDPT / PD / PT).

    The structure matters for Multiverse: an address-space merger copies the
    first 256 PML4 entries of the ROS process's root into the HRT's root
    (paper, Section 4.4).  Because only the {e top-level} slots are copied,
    the sub-trees are shared; later mappings made by the ROS below an
    already-copied slot become visible to the HRT immediately, while a ROS
    change to a top-level slot itself leaves the HRT's copy stale — which
    the AeroKernel detects as a repeated page fault and repairs by
    re-merging.  This module models exactly that sharing. *)

type flags = int

val f_present : flags
val f_writable : flags
val f_user : flags
val f_nx : flags
val f_cow : flags
val has : flags -> flags -> bool

type pte = { mutable frame : int; mutable pte_flags : flags }
(** Leaf entry mapping one 4 KiB page. *)

type t
(** A root page table (what CR3 points to). *)

val create : unit -> t

val id : t -> int
(** Unique identity, used as the simulated CR3 value. *)

val map : t -> Addr.t -> frame:int -> flags:flags -> unit
(** Install a leaf mapping, building intermediate levels as needed.
    Requires a page-aligned address. *)

val unmap : t -> Addr.t -> bool
(** Remove a leaf mapping; [false] if nothing was mapped. *)

val protect : t -> Addr.t -> flags:flags -> bool
(** Replace the flags of an existing leaf; [false] if unmapped. *)

val walk : t -> Addr.t -> pte option * int
(** [(entry, levels)] where [levels] is the number of levels traversed
    before stopping (for TLB-miss cost accounting). *)

val lookup : t -> Addr.t -> pte option

val pml4_slot_present : t -> int -> bool
(** Is top-level slot [i] populated? *)

val copy_lower_half : src:t -> dst:t -> int
(** The Multiverse merger: copy PML4 slots 0..255 from [src] to [dst]
    (sharing sub-trees).  Returns the number of populated slots copied. *)

val clear_lower_half : t -> unit

val lower_half_generation : t -> int
(** Incremented whenever a lower-half PML4 {e slot} of this root changes
    (a new sub-tree appears or one is removed).  A merger snapshots the
    source generation; staleness of a previous merge is observable as the
    generations diverging. *)

val count_mapped : t -> int
(** Number of leaf mappings reachable from this root (test helper). *)

val iter_mappings : t -> (Addr.t -> pte -> unit) -> unit
