lib/aerokernel/nautilus.mli: Mv_engine Mv_hw
