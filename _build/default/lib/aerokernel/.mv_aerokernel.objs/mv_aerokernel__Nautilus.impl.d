lib/aerokernel/nautilus.ml: Addr Array Costs Cpu Hashtbl List Mmu Mv_engine Mv_hw Page_table Queue Tlb Topology
