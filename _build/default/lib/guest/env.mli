(** The guest ABI: everything a user-level program (the Racket runtime, the
    microbenchmarks) can ask of its execution environment.

    A guest program is written once against this record and runs unchanged
    in all three of the paper's configurations:

    - {b native}: syscalls trap into the local ROS kernel;
    - {b virtual}: the same, inside an HVM guest (exit overheads apply);
    - {b Multiverse}: the program executes as an HRT thread in kernel mode
      on an HRT core; syscalls and lower-half page faults are forwarded to
      a ROS partner thread over event channels, while vdso calls and
      AeroKernel overrides run locally.

    This mirrors the paper's claim that "the user sees no difference
    between HRT execution and user-level execution" — the interface is
    identical, only the wiring differs. *)

type thread_handle = Mv_engine.Exec.thread

type t = {
  mode_name : string;
  kernel : Mv_ros.Kernel.t;
  proc : Mv_ros.Process.t;
  work : int -> unit;  (** charge pure-compute cycles *)
  touch : Mv_hw.Addr.t -> unit;  (** read access (page granularity) *)
  store : Mv_hw.Addr.t -> unit;  (** write access (page granularity) *)
  mmap : len:int -> prot:Mv_ros.Mm.prot -> kind:string -> Mv_hw.Addr.t;
  munmap : addr:Mv_hw.Addr.t -> len:int -> unit;
  mprotect : addr:Mv_hw.Addr.t -> len:int -> prot:Mv_ros.Mm.prot -> unit;
  brk : Mv_hw.Addr.t option -> Mv_hw.Addr.t;
  open_ : path:string -> flags:Mv_ros.Syscalls.open_flag list -> (int, Mv_ros.Syscalls.errno) result;
  close : fd:int -> unit;
  read : fd:int -> buf:Bytes.t -> off:int -> len:int -> int;
  write : fd:int -> buf:Bytes.t -> off:int -> len:int -> int;
  stat : path:string -> (Mv_ros.Syscalls.stat_info, Mv_ros.Syscalls.errno) result;
  fstat : fd:int -> (Mv_ros.Syscalls.stat_info, Mv_ros.Syscalls.errno) result;
  lseek : fd:int -> pos:int -> int;
  access_path : path:string -> bool;
  getcwd : unit -> string;
  sigaction : Mv_ros.Signal.signo -> Mv_ros.Signal.handler -> unit;
  sigprocmask : block:bool -> Mv_ros.Signal.signo -> unit;
  gettimeofday : unit -> float;
  getpid : unit -> int;
  getrusage : unit -> Mv_ros.Rusage.t;
  setitimer : interval_us:int -> unit;
  poll : fds:int list -> timeout_ms:int -> int;
  nanosleep : ns:float -> unit;
  sched_yield : unit -> unit;
  uname : unit -> string;
  thread_create : name:string -> (unit -> unit) -> thread_handle;
  thread_join : thread_handle -> unit;
  exit : code:int -> unit;
  execve : path:string -> (unit, Mv_ros.Syscalls.errno) result;
}

val native : Mv_ros.Kernel.t -> Mv_ros.Process.t -> t
(** The direct-execution ABI: every syscall pays one SYSCALL trap into the
    given kernel; memory accesses go through the local MMU/fault path.
    This single constructor serves both the paper's "Native" and "Virtual"
    rows — the difference is whether the kernel was created with
    [~virtualized:true]. *)
