open Mv_hw

type stream = {
  mutable fd : int;
  wbuf : Buffer.t;
  bufsize : int;  (* 0 = unbuffered *)
  mutable rbuf : Bytes.t;
  mutable rpos : int;
  mutable rlen : int;
  mutable at_eof : bool;
}

type arena_block = { ab_addr : Addr.t; ab_size : int }

type t = {
  e : Env.t;
  out_s : stream;
  err_s : stream;
  in_s : stream;
  (* malloc state: a brk-backed bump arena with size-class free lists for
     small blocks, mmap for large ones. *)
  mutable brk_cur : Addr.t;
  mutable bump : Addr.t;
  mutable bump_end : Addr.t;
  free_lists : (int, Addr.t list ref) Hashtbl.t;
  mutable mmapped : arena_block list;
  sizes : (Addr.t, int) Hashtbl.t;
  mutable live_bytes : int;
}

let mk_stream ?(bufsize = 4096) fd =
  {
    fd;
    wbuf = Buffer.create (max bufsize 16);
    bufsize;
    rbuf = Bytes.create 4096;
    rpos = 0;
    rlen = 0;
    at_eof = false;
  }

let create e =
  let brk0 = e.Env.brk None in
  {
    e;
    out_s = mk_stream 1;
    err_s = mk_stream ~bufsize:0 2;
    in_s = mk_stream 0;
    brk_cur = brk0;
    bump = brk0;
    bump_end = brk0;
    free_lists = Hashtbl.create 16;
    mmapped = [];
    sizes = Hashtbl.create 64;
    live_bytes = 0;
  }

let env t = t.e
let stdout_stream t = t.out_s
let stderr_stream t = t.err_s

(* --- stdio --- *)

let raw_write t s data =
  let buf = Bytes.of_string data in
  let len = Bytes.length buf in
  let rec go off =
    if off < len then begin
      let n = t.e.Env.write ~fd:s.fd ~buf ~off ~len:(len - off) in
      if n <= 0 then () else go (off + n)
    end
  in
  go 0

let fflush t s =
  if Buffer.length s.wbuf > 0 then begin
    let data = Buffer.contents s.wbuf in
    Buffer.clear s.wbuf;
    raw_write t s data
  end

let fwrite t s data =
  (* A little user-space work per call: size checks and the memcpy into
     the stdio buffer. *)
  t.e.Env.work (40 + (String.length data / 8));
  if s.bufsize = 0 then raw_write t s data
  else begin
    Buffer.add_string s.wbuf data;
    if Buffer.length s.wbuf >= s.bufsize then fflush t s
  end

let fputs = fwrite
let fputc t s c = fwrite t s (String.make 1 c)
let printf t fmt = Printf.ksprintf (fun msg -> fwrite t t.out_s msg) fmt
let eprintf t fmt = Printf.ksprintf (fun msg -> fwrite t t.err_s msg) fmt

let flush_all t =
  fflush t t.out_s;
  fflush t t.err_s

let fopen t ~path ~mode =
  let flags =
    match mode with
    | "r" -> [ Mv_ros.Syscalls.O_RDONLY ]
    | "w" -> [ Mv_ros.Syscalls.O_WRONLY; Mv_ros.Syscalls.O_CREAT; Mv_ros.Syscalls.O_TRUNC ]
    | "a" -> [ Mv_ros.Syscalls.O_WRONLY; Mv_ros.Syscalls.O_CREAT; Mv_ros.Syscalls.O_APPEND ]
    | _ -> invalid_arg "Libc.fopen: unsupported mode"
  in
  match t.e.Env.open_ ~path ~flags with
  | Ok fd -> Ok (mk_stream fd)
  | Error e -> Error e

let fclose t s =
  fflush t s;
  t.e.Env.close ~fd:s.fd

let refill t s =
  if s.at_eof then 0
  else begin
    let n = t.e.Env.read ~fd:s.fd ~buf:s.rbuf ~off:0 ~len:(Bytes.length s.rbuf) in
    s.rpos <- 0;
    s.rlen <- n;
    if n = 0 then s.at_eof <- true;
    n
  end

let fgets t s ~max =
  let out = Buffer.create 64 in
  let rec go () =
    if Buffer.length out >= max then Some (Buffer.contents out)
    else if s.rpos >= s.rlen then
      if refill t s = 0 then
        if Buffer.length out = 0 then None else Some (Buffer.contents out)
      else go ()
    else begin
      let c = Bytes.get s.rbuf s.rpos in
      s.rpos <- s.rpos + 1;
      Buffer.add_char out c;
      if c = '\n' then Some (Buffer.contents out) else go ()
    end
  in
  go ()

let stdin_gets t = fgets t t.in_s ~max:65536

let fgetc t s =
  if s.rpos >= s.rlen && refill t s = 0 then None
  else begin
    let c = Bytes.get s.rbuf s.rpos in
    s.rpos <- s.rpos + 1;
    Some c
  end

let stdin_gets_char t = fgetc t t.in_s

(* --- malloc --- *)

let mmap_threshold = 128 * 1024
let chunk = 1 lsl 20  (* grow the brk arena 1 MiB at a time *)

let size_class n =
  (* Round to 16 bytes below 4 KiB, to pages above. *)
  if n <= 4096 then (n + 15) land lnot 15
  else (n + Addr.page_size - 1) land lnot (Addr.page_size - 1)

let malloc t n =
  t.e.Env.work 60;
  if n <= 0 then invalid_arg "Libc.malloc: size <= 0";
  let sz = size_class n in
  t.live_bytes <- t.live_bytes + sz;
  if sz >= mmap_threshold then begin
    let addr = t.e.Env.mmap ~len:sz ~prot:Mv_ros.Mm.prot_rw ~kind:"malloc" in
    t.mmapped <- { ab_addr = addr; ab_size = sz } :: t.mmapped;
    Hashtbl.replace t.sizes addr sz;
    t.e.Env.store addr;
    addr
  end
  else begin
    let fl =
      match Hashtbl.find_opt t.free_lists sz with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.replace t.free_lists sz l;
          l
    in
    match !fl with
    | addr :: rest ->
        fl := rest;
        Hashtbl.replace t.sizes addr sz;
        addr
    | [] ->
        if t.bump + sz > t.bump_end then begin
          let grow = max chunk sz in
          t.brk_cur <- t.e.Env.brk (Some (t.brk_cur + grow));
          t.bump_end <- t.brk_cur
        end;
        let addr = t.bump in
        t.bump <- t.bump + sz;
        Hashtbl.replace t.sizes addr sz;
        (* Touch the block's first page: header write. *)
        t.e.Env.store addr;
        addr
  end

let free t addr =
  t.e.Env.work 40;
  match Hashtbl.find_opt t.sizes addr with
  | None -> invalid_arg "Libc.free: not an allocated block"
  | Some sz ->
      Hashtbl.remove t.sizes addr;
      t.live_bytes <- t.live_bytes - sz;
      if sz >= mmap_threshold then begin
        t.mmapped <- List.filter (fun b -> b.ab_addr <> addr) t.mmapped;
        t.e.Env.munmap ~addr ~len:sz
      end
      else begin
        let fl =
          match Hashtbl.find_opt t.free_lists sz with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace t.free_lists sz l;
              l
        in
        fl := addr :: !fl
      end

let malloc_live_bytes t = t.live_bytes

let exit t code =
  flush_all t;
  t.e.Env.exit ~code
