lib/guest/env.mli: Bytes Mv_engine Mv_hw Mv_ros
