lib/guest/libc.mli: Env Mv_hw Mv_ros
