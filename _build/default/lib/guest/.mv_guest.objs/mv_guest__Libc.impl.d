lib/guest/libc.ml: Addr Buffer Bytes Env Hashtbl List Mv_hw Mv_ros Printf String
