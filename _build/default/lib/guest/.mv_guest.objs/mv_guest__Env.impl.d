lib/guest/env.ml: Bytes Kernel Mm Mv_engine Mv_hw Mv_ros Process Rusage Signal Syscalls
