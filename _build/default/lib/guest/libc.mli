(** A small user-space C library over the guest ABI.

    Provides what the hybridized Racket port needs from glibc: buffered
    stdio (so [fwrite]/[printf] batch into 4 KiB [write] syscalls), a
    [malloc] arena (brk for small blocks, [mmap] for large ones), and
    formatted output.  Because it is written against {!Env.t}, the same
    libc runs native, virtualized, or inside the HRT — in the latter case
    its syscalls transparently forward to the ROS, which is exactly the
    paper's merged-address-space printf example (Figure 4). *)

type stream

type t

val create : Env.t -> t
val env : t -> Env.t
val stdout_stream : t -> stream
val stderr_stream : t -> stream
(** stderr is unbuffered. *)

(** {1 Stdio} *)

val fwrite : t -> stream -> string -> unit
val fputs : t -> stream -> string -> unit
val fputc : t -> stream -> char -> unit
val printf : t -> ('a, unit, string, unit) format4 -> 'a
val eprintf : t -> ('a, unit, string, unit) format4 -> 'a
val fflush : t -> stream -> unit
val flush_all : t -> unit

val fopen : t -> path:string -> mode:string -> (stream, Mv_ros.Syscalls.errno) result
(** Modes "r", "w", "a". *)

val fclose : t -> stream -> unit
val fgets : t -> stream -> max:int -> string option
(** Read up to a newline (inclusive) or [max] bytes; [None] at EOF. *)

val stdin_gets : t -> string option
(** Read one line from fd 0 (blocking); [None] at EOF. *)

val fgetc : t -> stream -> char option
(** Read one character; [None] at EOF. *)

val stdin_gets_char : t -> char option

(** {1 Memory} *)

val malloc : t -> int -> Mv_hw.Addr.t
val free : t -> Mv_hw.Addr.t -> unit
val malloc_live_bytes : t -> int

(** {1 Misc} *)

val exit : t -> int -> unit
