module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
open Mv_ros

type thread_handle = Exec.thread

type t = {
  mode_name : string;
  kernel : Kernel.t;
  proc : Process.t;
  work : int -> unit;
  touch : Mv_hw.Addr.t -> unit;
  store : Mv_hw.Addr.t -> unit;
  mmap : len:int -> prot:Mm.prot -> kind:string -> Mv_hw.Addr.t;
  munmap : addr:Mv_hw.Addr.t -> len:int -> unit;
  mprotect : addr:Mv_hw.Addr.t -> len:int -> prot:Mm.prot -> unit;
  brk : Mv_hw.Addr.t option -> Mv_hw.Addr.t;
  open_ : path:string -> flags:Syscalls.open_flag list -> (int, Syscalls.errno) result;
  close : fd:int -> unit;
  read : fd:int -> buf:Bytes.t -> off:int -> len:int -> int;
  write : fd:int -> buf:Bytes.t -> off:int -> len:int -> int;
  stat : path:string -> (Syscalls.stat_info, Syscalls.errno) result;
  fstat : fd:int -> (Syscalls.stat_info, Syscalls.errno) result;
  lseek : fd:int -> pos:int -> int;
  access_path : path:string -> bool;
  getcwd : unit -> string;
  sigaction : Signal.signo -> Signal.handler -> unit;
  sigprocmask : block:bool -> Signal.signo -> unit;
  gettimeofday : unit -> float;
  getpid : unit -> int;
  getrusage : unit -> Rusage.t;
  setitimer : interval_us:int -> unit;
  poll : fds:int list -> timeout_ms:int -> int;
  nanosleep : ns:float -> unit;
  sched_yield : unit -> unit;
  uname : unit -> string;
  thread_create : name:string -> (unit -> unit) -> thread_handle;
  thread_join : thread_handle -> unit;
  exit : code:int -> unit;
  execve : path:string -> (unit, Syscalls.errno) result;
}

let native k p =
  let machine = k.Kernel.machine in
  let costs = machine.Machine.costs in
  (* Entry cost of one SYSCALL/SYSRET pair, charged as system time. *)
  let trap () = Kernel.in_sys k (fun () -> Machine.charge machine costs.Mv_hw.Costs.syscall_trap) in
  let ok_or_zero = function Ok n -> n | Error _ -> 0 in
  {
    mode_name = (if k.Kernel.virtualized then "virtual" else "native");
    kernel = k;
    proc = p;
    work = (fun c -> Machine.charge machine c);
    touch = (fun addr -> Kernel.access k addr ~write:false);
    store = (fun addr -> Kernel.access k addr ~write:true);
    mmap =
      (fun ~len ~prot ~kind ->
        trap ();
        match Syscalls.mmap k p ~len ~prot ~kind with
        | Ok addr -> addr
        | Error e -> failwith ("mmap: " ^ Syscalls.errno_name e));
    munmap =
      (fun ~addr ~len ->
        trap ();
        ignore (Syscalls.munmap k p ~addr ~len));
    mprotect =
      (fun ~addr ~len ~prot ->
        trap ();
        ignore (Syscalls.mprotect k p ~addr ~len ~prot));
    brk =
      (fun req ->
        trap ();
        Syscalls.brk k p req);
    open_ =
      (fun ~path ~flags ->
        trap ();
        Syscalls.openat k p ~path ~flags);
    close =
      (fun ~fd ->
        trap ();
        ignore (Syscalls.close k p ~fd));
    read =
      (fun ~fd ~buf ~off ~len ->
        trap ();
        ok_or_zero (Syscalls.read k p ~fd ~buf ~off ~len));
    write =
      (fun ~fd ~buf ~off ~len ->
        trap ();
        ok_or_zero (Syscalls.write k p ~fd ~buf ~off ~len));
    stat =
      (fun ~path ->
        trap ();
        Syscalls.stat k p ~path);
    fstat =
      (fun ~fd ->
        trap ();
        Syscalls.fstat k p ~fd);
    lseek =
      (fun ~fd ~pos ->
        trap ();
        ok_or_zero (Syscalls.lseek k p ~fd ~pos));
    access_path =
      (fun ~path ->
        trap ();
        match Syscalls.access_path k p ~path with Ok () -> true | Error _ -> false);
    getcwd =
      (fun () ->
        trap ();
        Syscalls.getcwd k p);
    sigaction =
      (fun signo handler ->
        trap ();
        Syscalls.rt_sigaction k p ~signo ~handler);
    sigprocmask =
      (fun ~block signo ->
        trap ();
        Syscalls.rt_sigprocmask k p ~block ~signo);
    (* vdso fast paths: no kernel entry. *)
    gettimeofday = (fun () -> Syscalls.gettimeofday k p);
    getpid = (fun () -> Syscalls.getpid k p);
    getrusage =
      (fun () ->
        trap ();
        Syscalls.getrusage k p);
    setitimer =
      (fun ~interval_us ->
        trap ();
        Syscalls.setitimer k p ~interval_us);
    poll =
      (fun ~fds ~timeout_ms ->
        trap ();
        Syscalls.poll k p ~fds ~timeout_ms);
    nanosleep =
      (fun ~ns ->
        trap ();
        Syscalls.nanosleep k p ~ns);
    sched_yield =
      (fun () ->
        trap ();
        Syscalls.sched_yield k p);
    uname =
      (fun () ->
        trap ();
        Syscalls.uname k p);
    thread_create =
      (fun ~name body ->
        trap ();
        Syscalls.clone k p ~name body);
    thread_join =
      (fun th ->
        (* glibc joins by futex-waiting on the thread's tid word. *)
        trap ();
        Kernel.count_syscall k p "futex";
        Exec.join machine.Machine.exec th);
    exit =
      (fun ~code ->
        trap ();
        Syscalls.exit_group k p ~code);
    execve =
      (fun ~path ->
        trap ();
        Syscalls.execve k p ~path);
  }
