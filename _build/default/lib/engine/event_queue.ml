type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* heap.(0) unused when n = 0 *)
  mutable n : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; n = 0; next_seq = 0 }
let is_empty t = t.n = 0
let size t = t.n

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.n >= cap then begin
    let ncap = max 16 (cap * 2) in
    let nh = Array.make ncap t.heap.(0) in
    Array.blit t.heap 0 nh 0 t.n;
    t.heap <- nh
  end

let push t ~time payload =
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.n = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 e;
  grow t;
  t.heap.(t.n) <- e;
  t.n <- t.n + 1;
  (* sift up *)
  let i = ref (t.n - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.n = 0 then None
  else begin
    let top = t.heap.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.heap.(0) <- t.heap.(t.n);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.n && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.n && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.n = 0 then None else Some t.heap.(0).time
