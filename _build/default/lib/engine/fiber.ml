exception Cancelled

type 'a resumer = { resume : 'a -> unit; cancel : exn -> unit }

type _ Effect.t += Suspend : ('a resumer -> unit) -> 'a Effect.t

let suspend register = Effect.perform (Suspend register)

let run body =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> match e with Cancelled -> () | _ -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let used = ref false in
                  let once f x =
                    if !used then failwith "Fiber: resumer used twice"
                    else begin
                      used := true;
                      f x
                    end
                  in
                  register
                    {
                      resume = (fun v -> once (continue k) v);
                      cancel = (fun e -> once (discontinue k) e);
                    })
          | _ -> None);
    }
  in
  match_with body () handler
