(** Priority queue of timed events (binary min-heap).

    Ordered by (time, insertion sequence) so simultaneous events fire in
    insertion order, which keeps the whole simulation deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(time, payload)]. *)

val peek_time : 'a t -> int option
