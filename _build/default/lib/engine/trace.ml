type record = { at : Mv_util.Cycles.t; category : string; message : string }

type t = {
  mutable enabled : bool;
  capacity : int;
  mutable entries : record list;  (* newest first *)
  mutable count : int;
}

let create ?(enabled = false) ?(capacity = 100_000) () =
  { enabled; capacity; entries = []; count = 0 }

let enable t flag = t.enabled <- flag

let emit t ~at ~category message =
  if t.enabled then begin
    t.entries <- { at; category; message } :: t.entries;
    t.count <- t.count + 1;
    if t.count > t.capacity then begin
      (* Drop the oldest half; O(n) but amortized and rare. *)
      let keep = t.capacity / 2 in
      let rec take n acc = function
        | [] -> List.rev acc
        | x :: rest -> if n = 0 then List.rev acc else take (n - 1) (x :: acc) rest
      in
      t.entries <- take keep [] t.entries;
      t.count <- keep
    end
  end

let records t = List.rev t.entries
let records_in t ~category = List.filter (fun r -> r.category = category) (records t)

let clear t =
  t.entries <- [];
  t.count <- 0

let pp ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "[%12d %-10s] %s@." r.at r.category r.message)
    (records t)
