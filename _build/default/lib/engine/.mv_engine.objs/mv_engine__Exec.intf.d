lib/engine/exec.mli: Mv_util Sim
