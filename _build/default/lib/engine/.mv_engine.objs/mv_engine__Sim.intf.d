lib/engine/sim.mli: Mv_util Trace
