lib/engine/fiber.mli:
