lib/engine/fiber.ml: Effect
