lib/engine/exec.ml: Array Fiber Fun List Queue Sim
