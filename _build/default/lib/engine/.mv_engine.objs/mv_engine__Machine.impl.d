lib/engine/machine.ml: Array Exec Mv_hw Sim Trace
