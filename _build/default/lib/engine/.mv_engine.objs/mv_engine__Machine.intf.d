lib/engine/machine.mli: Exec Mv_hw Mv_util Sim Trace
