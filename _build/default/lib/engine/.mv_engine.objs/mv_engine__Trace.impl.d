lib/engine/trace.ml: Format List Mv_util
