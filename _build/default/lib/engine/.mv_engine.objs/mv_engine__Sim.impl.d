lib/engine/sim.ml: Event_queue Mv_util Printf Trace
