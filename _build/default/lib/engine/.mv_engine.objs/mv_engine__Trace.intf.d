lib/engine/trace.mli: Format Mv_util
