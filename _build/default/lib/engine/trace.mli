(** Lightweight event tracing.

    Components emit categorized records; tests assert on them (e.g. the
    paper's requirement that the page-fault trace of an application under
    Multiverse be identical to its native trace) and debugging dumps them.
    Disabled tracing costs one branch per emit. *)

type record = { at : Mv_util.Cycles.t; category : string; message : string }

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
val enable : t -> bool -> unit
val emit : t -> at:Mv_util.Cycles.t -> category:string -> string -> unit
val records : t -> record list
(** In emission order. *)

val records_in : t -> category:string -> record list
val clear : t -> unit
val pp : Format.formatter -> t -> unit
