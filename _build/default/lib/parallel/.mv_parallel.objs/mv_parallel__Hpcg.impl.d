lib/parallel/hpcg.ml: Array Float Pool
