lib/parallel/pool.mli: Mv_aerokernel Mv_guest
