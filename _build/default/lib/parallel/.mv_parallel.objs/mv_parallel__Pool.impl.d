lib/parallel/pool.ml: Array List Mv_aerokernel Mv_engine Mv_guest Mv_hw Mv_ros Printf
