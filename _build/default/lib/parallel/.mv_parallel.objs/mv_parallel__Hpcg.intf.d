lib/parallel/hpcg.mli: Pool
