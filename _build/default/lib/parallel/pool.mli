(** A fork-join worker pool in the style of the parallel runtimes the HRT
    work targets (Legion, NESL VCODE — paper, Section 2).

    The pool keeps persistent workers that sleep between parallel regions.
    What it costs to put a worker to sleep and wake it again is the whole
    point: the {b Linux} backend does it the way a user-level runtime must
    (futex system calls, kernel context switches), while the {b AeroKernel}
    backend uses Nautilus primitives that are orders of magnitude cheaper
    — the reason the hand-ported HRT runtimes beat Linux by up to 20-40 %
    on HPCG in the authors' prior work, and the payoff of Multiverse's
    {e Native} usage model. *)

type t

type backend =
  | Linux of Mv_guest.Env.t
      (** persistent pthreads parked on futexes; every region dispatch and
          completion crosses the kernel *)
  | Aerokernel of Mv_aerokernel.Nautilus.t
      (** Nautilus threads on the HRT cores; wake/sleep are ring-0
          function calls *)

val create : backend -> nworkers:int -> t
(** Spawn the workers (thread context).  Workers are distributed across
    the backend's cores. *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** Run [f i] for every [lo <= i < hi], statically chunked across the
    workers; blocks until every chunk completes.  The body runs in worker
    context — charge its compute through {!charge}. *)

val parallel_reduce : t -> lo:int -> hi:int -> (int -> float) -> float
(** Sum [f i] over the range, chunk-wise partial sums combined at the
    barrier. *)

val charge : t -> int -> unit
(** Charge compute cycles to the calling (worker) thread. *)

val shutdown : t -> unit
(** Stop and join the workers (thread context). *)

val regions : t -> int
(** Parallel regions dispatched so far. *)

val nworkers : t -> int
