type result = {
  iterations : int;
  final_residual : float;
  regions : int;
  converged : bool;
}

(* 27-point stencil on an nx^3 grid: diagonal 26, off-diagonals -1 — the
   HPCG matrix.  Matrix-free: neighbours are enumerated on the fly. *)

let flops_per_row_cycles = 110  (* ~27 fused multiply-adds + loads *)
let axpy_row_cycles = 6
let dot_row_cycles = 5

let spmv pool ~nx x y =
  let n = nx * nx * nx in
  Pool.parallel_for pool ~lo:0 ~hi:n (fun row ->
      let i = row mod nx in
      let j = row / nx mod nx in
      let k = row / (nx * nx) in
      let acc = ref (26.0 *. x.(row)) in
      for dk = -1 to 1 do
        for dj = -1 to 1 do
          for di = -1 to 1 do
            if di <> 0 || dj <> 0 || dk <> 0 then begin
              let ni = i + di and nj = j + dj and nk = k + dk in
              if ni >= 0 && ni < nx && nj >= 0 && nj < nx && nk >= 0 && nk < nx then
                acc := !acc -. x.(ni + (nj * nx) + (nk * nx * nx))
            end
          done
        done
      done;
      y.(row) <- !acc;
      Pool.charge pool flops_per_row_cycles)

let dot pool a b n =
  Pool.parallel_reduce pool ~lo:0 ~hi:n (fun i ->
      Pool.charge pool dot_row_cycles;
      a.(i) *. b.(i))

(* y.(i) <- y.(i) + alpha * x.(i) *)
let axpy pool ~alpha x y n =
  Pool.parallel_for pool ~lo:0 ~hi:n (fun i ->
      Pool.charge pool axpy_row_cycles;
      y.(i) <- y.(i) +. (alpha *. x.(i)))

(* p.(i) <- r.(i) + beta * p.(i) *)
let xpay pool ~beta r p n =
  Pool.parallel_for pool ~lo:0 ~hi:n (fun i ->
      Pool.charge pool axpy_row_cycles;
      p.(i) <- r.(i) +. (beta *. p.(i)))

let run pool ~nx ?(max_iters = 50) ?(tol = 1e-9) () =
  let n = nx * nx * nx in
  let ones = Array.make n 1.0 in
  let b = Array.make n 0.0 in
  spmv pool ~nx ones b;  (* b = A*1, so the exact solution is all ones *)
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy b in
  let ap = Array.make n 0.0 in
  let rr0 = dot pool b b n in
  let rr = ref rr0 in
  let iters = ref 0 in
  while !iters < max_iters && !rr > tol *. tol *. rr0 do
    incr iters;
    spmv pool ~nx p ap;
    let p_ap = dot pool p ap n in
    let alpha = !rr /. p_ap in
    axpy pool ~alpha p x n;
    axpy pool ~alpha:(-.alpha) ap r n;
    let rr_new = dot pool r r n in
    let beta = rr_new /. !rr in
    xpay pool ~beta r p n;
    rr := rr_new
  done;
  (* Final residual against the original system. *)
  spmv pool ~nx x ap;
  let diff = Array.make n 0.0 in
  Pool.parallel_for pool ~lo:0 ~hi:n (fun i ->
      Pool.charge pool axpy_row_cycles;
      diff.(i) <- b.(i) -. ap.(i));
  let res = sqrt (dot pool diff diff n /. rr0) in
  (* The known solution is all ones. *)
  let max_err = Array.fold_left (fun acc xi -> Float.max acc (Float.abs (xi -. 1.0))) 0.0 x in
  {
    iterations = !iters;
    final_residual = res;
    regions = Pool.regions pool;
    converged = res < 1e-6 && max_err < 1e-5;
  }

let verify r = r.converged
