(** A compact HPCG: preconditioner-free conjugate gradients on the 27-point
    stencil of a 3-D grid — the benchmark the authors used to evaluate
    their hand-ported HRT runtimes (HPCG ported to Legion; paper,
    Section 2).

    Every SpMV, dot product and AXPY is a parallel region on a {!Pool}, so
    the solver's performance is dominated by region dispatch/barrier cost
    once the grid is small relative to the core count — which is exactly
    where the AeroKernel backend's cheap primitives pay off. *)

type result = {
  iterations : int;
  final_residual : float;  (** ||b - Ax|| / ||b|| *)
  regions : int;  (** parallel regions dispatched *)
  converged : bool;
}

val run : Pool.t -> nx:int -> ?max_iters:int -> ?tol:float -> unit -> result
(** Solve A x = b for the [nx^3] stencil system (b = A * ones, so the
    exact solution is all-ones and correctness is checkable).  Runs on the
    calling (master) thread, fanning work out to the pool. *)

val verify : result -> bool
(** Did CG converge to the known solution within tolerance? *)
