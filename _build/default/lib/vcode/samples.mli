(** Sample VCODE programs (the flavor of code the NESL compiler emits). *)

val sum_of_squares : int -> string
(** Sum of the squares of [0..n-1], computed with IOTA / elementwise
    multiply / +_REDUCE.  Result: a single INT. *)

val factorial : int -> string
(** Scalar recursion through CALL/IF — exercises control flow.  Result: a
    single INT. *)

val line_of_sight : string
(** The classic scan example: given altitudes on the stack, which points
    are visible from the start?  [visible(i) = h(i) > max(h(0..i-1))].
    Expects one INT vector on the initial stack; leaves a BOOL vector. *)

val dot_product : string
(** Expects two FLOAT vectors on the initial stack; leaves their dot
    product (FLOAT singleton). *)

val matvec_segmented : string
(** Sparse matrix-vector product in flattened form: expects the segment
    descriptor (row lengths, INT), the flattened products (FLOAT) — and
    reduces each row.  Leaves one FLOAT per row. *)
