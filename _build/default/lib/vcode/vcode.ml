type value =
  | V_int of int array
  | V_float of float array
  | V_bool of bool array

exception Vcode_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Vcode_error s)) fmt

type ty = T_int | T_float | T_bool

type binop = Add | Sub | Mul | Div | Min | Max | Lt | Le | Gt | Ge | Eq | And | Or

type redop = R_plus | R_max | R_min

type instr =
  | I_const of value
  | I_iota
  | I_dist
  | I_copy
  | I_pop
  | I_swap
  | I_length
  | I_extract
  | I_replace
  | I_permute
  | I_pack
  | I_select
  | I_not
  | I_itof
  | I_ftoi
  | I_binop of binop * ty
  | I_scan of redop * ty
  | I_reduce of redop * ty
  | I_seg_reduce of redop * ty
  | I_call of string
  | I_ret
  | I_jif of int  (* pop a bool singleton; jump when false *)
  | I_jmp of int

type program = {
  instrs : instr array;
  funcs : (string, int) Hashtbl.t;  (* name -> entry pc *)
}

let instruction_count p = Array.length p.instrs

(* --- parser --- *)

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let ty_of = function
  | "INT" -> T_int
  | "FLOAT" -> T_float
  | "BOOL" -> T_bool
  | s -> err "unknown type %s" s

let parse text =
  let tokens_of_line line =
    String.split_on_char ' ' (String.trim (strip_comment line))
    |> List.filter (( <> ) "")
  in
  let lines =
    String.split_on_char '\n' text |> List.map tokens_of_line |> List.filter (( <> ) [])
  in
  let instrs = ref [] in
  let n = ref 0 in
  let emit i =
    instrs := i :: !instrs;
    incr n;
    !n - 1
  in
  let funcs = Hashtbl.create 8 in
  let patches = ref [] in  (* (pos, fixup) resolved after the pass *)
  let if_stack = ref [] in
  List.iter
    (fun tokens ->
      match tokens with
      | [ "FUNC"; name ] ->
          if Hashtbl.mem funcs name then err "duplicate FUNC %s" name;
          Hashtbl.replace funcs name !n
      | [ "CONST"; "INT"; v ] -> (
          match int_of_string_opt v with
          | Some k -> ignore (emit (I_const (V_int [| k |])))
          | None -> err "bad INT constant %s" v)
      | [ "CONST"; "FLOAT"; v ] -> (
          match float_of_string_opt v with
          | Some f -> ignore (emit (I_const (V_float [| f |])))
          | None -> err "bad FLOAT constant %s" v)
      | [ "CONST"; "BOOL"; v ] ->
          ignore (emit (I_const (V_bool [| v = "T" || v = "#t" |])))
      | [ "IOTA" ] -> ignore (emit I_iota)
      | [ "DIST" ] -> ignore (emit I_dist)
      | [ "COPY" ] -> ignore (emit I_copy)
      | [ "POP" ] -> ignore (emit I_pop)
      | [ "SWAP" ] -> ignore (emit I_swap)
      | [ "LENGTH" ] -> ignore (emit I_length)
      | [ "EXTRACT" ] -> ignore (emit I_extract)
      | [ "REPLACE" ] -> ignore (emit I_replace)
      | [ "PERMUTE" ] -> ignore (emit I_permute)
      | [ "PACK" ] -> ignore (emit I_pack)
      | [ "SELECT" ] -> ignore (emit I_select)
      | [ "NOT" ] -> ignore (emit I_not)
      | [ "INT->FLOAT" ] -> ignore (emit I_itof)
      | [ "FLOAT->INT" ] -> ignore (emit I_ftoi)
      | [ op; tyname ]
        when List.mem op [ "+"; "-"; "*"; "/"; "MIN"; "MAX"; "<"; "<="; ">"; ">="; "="; "AND"; "OR" ]
        ->
          let ty = ty_of tyname in
          let bop =
            match op with
            | "+" -> Add | "-" -> Sub | "*" -> Mul | "/" -> Div
            | "MIN" -> Min | "MAX" -> Max
            | "<" -> Lt | "<=" -> Le | ">" -> Gt | ">=" -> Ge | "=" -> Eq
            | "AND" -> And | "OR" -> Or
            | _ -> assert false
          in
          ignore (emit (I_binop (bop, ty)))
      | [ op; tyname ] when List.mem op [ "+_SCAN"; "MAX_SCAN"; "MIN_SCAN" ] ->
          let r = match op with "+_SCAN" -> R_plus | "MAX_SCAN" -> R_max | _ -> R_min in
          ignore (emit (I_scan (r, ty_of tyname)))
      | [ op; tyname ] when List.mem op [ "+_REDUCE"; "MAX_REDUCE"; "MIN_REDUCE" ] ->
          let r =
            match op with "+_REDUCE" -> R_plus | "MAX_REDUCE" -> R_max | _ -> R_min
          in
          ignore (emit (I_reduce (r, ty_of tyname)))
      | [ op; tyname ] when List.mem op [ "+_REDUCE_SEG"; "MAX_REDUCE_SEG"; "MIN_REDUCE_SEG" ] ->
          let r =
            match op with
            | "+_REDUCE_SEG" -> R_plus
            | "MAX_REDUCE_SEG" -> R_max
            | _ -> R_min
          in
          ignore (emit (I_seg_reduce (r, ty_of tyname)))
      | [ "CALL"; name ] -> ignore (emit (I_call name))
      | [ "RET" ] -> ignore (emit I_ret)
      | [ "IF" ] ->
          let pos = emit (I_jif (-1)) in
          if_stack := `If pos :: !if_stack
      | [ "ELSE" ] -> (
          match !if_stack with
          | `If jif_pos :: rest ->
              let jmp_pos = emit (I_jmp (-1)) in
              patches := (jif_pos, `Target (!n)) :: !patches;
              if_stack := `Else jmp_pos :: rest
          | _ -> err "ELSE without IF")
      | [ "ENDIF" ] -> (
          match !if_stack with
          | `If jif_pos :: rest ->
              patches := (jif_pos, `Target !n) :: !patches;
              if_stack := rest
          | `Else jmp_pos :: rest ->
              patches := (jmp_pos, `Target !n) :: !patches;
              if_stack := rest
          | [] -> err "ENDIF without IF")
      | toks -> err "unknown instruction: %s" (String.concat " " toks))
    lines;
  if !if_stack <> [] then err "unterminated IF";
  let arr = Array.of_list (List.rev !instrs) in
  List.iter
    (fun (pos, `Target target) ->
      arr.(pos) <-
        (match arr.(pos) with
        | I_jif _ -> I_jif target
        | I_jmp _ -> I_jmp target
        | _ -> assert false))
    !patches;
  if not (Hashtbl.mem funcs "main") then err "no FUNC main";
  (* Validate CALL targets eagerly. *)
  Array.iter
    (function
      | I_call name when not (Hashtbl.mem funcs name) -> err "CALL to unknown FUNC %s" name
      | _ -> ())
    arr;
  { instrs = arr; funcs }

(* --- interpreter --- *)

type t = {
  pool : Mv_parallel.Pool.t option;
  charge : int -> unit;
  mutable n_ops : int;
  mutable n_elems : int;
}

let create ?pool ~charge () = { pool; charge; n_ops = 0; n_elems = 0 }

let ops_executed t = t.n_ops
let elements_processed t = t.n_elems

let cycles_per_elem = 4
let parallel_threshold = 64

(* Run [f i] over [0, len): a parallel region when a pool is attached and
   the vector is long enough — how the HRT-resident VCODE ran its vector
   ops. *)
let foreach t len f =
  t.n_elems <- t.n_elems + len;
  match t.pool with
  | Some pool when len >= parallel_threshold ->
      Mv_parallel.Pool.parallel_for pool ~lo:0 ~hi:len (fun i ->
          Mv_parallel.Pool.charge pool cycles_per_elem;
          f i)
  | _ ->
      t.charge (len * cycles_per_elem);
      for i = 0 to len - 1 do
        f i
      done

let length_of = function
  | V_int a -> Array.length a
  | V_float a -> Array.length a
  | V_bool a -> Array.length a

let int_vec a = V_int a
let float_vec a = V_float a

let to_int_array = function
  | V_int a -> a
  | v -> err "expected an INT vector, got length-%d other" (length_of v)

let to_float_array = function
  | V_float a -> a
  | v -> err "expected a FLOAT vector, got length-%d other" (length_of v)

let to_bool_array = function
  | V_bool a -> a
  | v -> err "expected a BOOL vector, got length-%d other" (length_of v)

let singleton_int = function
  | V_int [| k |] -> k
  | v -> err "expected an INT singleton, got length %d" (length_of v)

let pp_value ppf v =
  let p fmt arr pp_elem =
    Format.fprintf ppf "[%s]"
      (String.concat " " (Array.to_list (Array.map pp_elem arr)));
    ignore fmt
  in
  match v with
  | V_int a -> p "%d" a string_of_int
  | V_float a -> p "%g" a (Printf.sprintf "%g")
  | V_bool a -> p "%b" a (fun b -> if b then "T" else "F")

(* elementwise binop on same-length vectors *)
let binop t op ty a b =
  let la = length_of a and lb = length_of b in
  if la <> lb then err "elementwise op on lengths %d vs %d" la lb;
  let bool_out f =
    let out = Array.make la false in
    (out, V_bool out) |> fun (o, v) ->
    f o;
    v
  in
  match (ty, a, b) with
  | T_int, V_int x, V_int y -> (
      match op with
      | Lt | Le | Gt | Ge | Eq ->
          bool_out (fun o ->
              foreach t la (fun i ->
                  o.(i) <-
                    (match op with
                    | Lt -> x.(i) < y.(i)
                    | Le -> x.(i) <= y.(i)
                    | Gt -> x.(i) > y.(i)
                    | Ge -> x.(i) >= y.(i)
                    | _ -> x.(i) = y.(i))))
      | _ ->
          let o = Array.make la 0 in
          foreach t la (fun i ->
              o.(i) <-
                (match op with
                | Add -> x.(i) + y.(i)
                | Sub -> x.(i) - y.(i)
                | Mul -> x.(i) * y.(i)
                | Div -> if y.(i) = 0 then err "division by zero" else x.(i) / y.(i)
                | Min -> min x.(i) y.(i)
                | Max -> max x.(i) y.(i)
                | _ -> err "bad INT op"));
          V_int o)
  | T_float, V_float x, V_float y -> (
      match op with
      | Lt | Le | Gt | Ge | Eq ->
          bool_out (fun o ->
              foreach t la (fun i ->
                  o.(i) <-
                    (match op with
                    | Lt -> x.(i) < y.(i)
                    | Le -> x.(i) <= y.(i)
                    | Gt -> x.(i) > y.(i)
                    | Ge -> x.(i) >= y.(i)
                    | _ -> x.(i) = y.(i))))
      | _ ->
          let o = Array.make la 0.0 in
          foreach t la (fun i ->
              o.(i) <-
                (match op with
                | Add -> x.(i) +. y.(i)
                | Sub -> x.(i) -. y.(i)
                | Mul -> x.(i) *. y.(i)
                | Div -> x.(i) /. y.(i)
                | Min -> Float.min x.(i) y.(i)
                | Max -> Float.max x.(i) y.(i)
                | _ -> err "bad FLOAT op"));
          V_float o)
  | T_bool, V_bool x, V_bool y ->
      bool_out (fun o ->
          foreach t la (fun i ->
              o.(i) <-
                (match op with
                | And -> x.(i) && y.(i)
                | Or -> x.(i) || y.(i)
                | Eq -> x.(i) = y.(i)
                | _ -> err "bad BOOL op")))
  | _ -> err "operand type mismatch"

let scan t rop ty v =
  (* Exclusive scan, as VCODE defines it. *)
  let n = length_of v in
  t.n_elems <- t.n_elems + n;
  t.charge (n * (cycles_per_elem + 2));
  match (ty, v) with
  | T_int, V_int a ->
      let o = Array.make n 0 in
      let acc = ref (match rop with R_plus -> 0 | R_max -> min_int | R_min -> max_int) in
      for i = 0 to n - 1 do
        o.(i) <- !acc;
        acc :=
          (match rop with
          | R_plus -> !acc + a.(i)
          | R_max -> max !acc a.(i)
          | R_min -> min !acc a.(i))
      done;
      V_int o
  | T_float, V_float a ->
      let o = Array.make n 0.0 in
      let acc =
        ref (match rop with R_plus -> 0.0 | R_max -> neg_infinity | R_min -> infinity)
      in
      for i = 0 to n - 1 do
        o.(i) <- !acc;
        acc :=
          (match rop with
          | R_plus -> !acc +. a.(i)
          | R_max -> Float.max !acc a.(i)
          | R_min -> Float.min !acc a.(i))
      done;
      V_float o
  | _ -> err "scan type mismatch"

let reduce t rop ty v =
  let n = length_of v in
  t.n_elems <- t.n_elems + n;
  (match t.pool with
  | Some pool when n >= parallel_threshold -> (
      (* Chunked parallel reduction via the pool. *)
      match (ty, v) with
      | T_int, V_int a ->
          ignore
            (Mv_parallel.Pool.parallel_reduce pool ~lo:0 ~hi:n (fun i ->
                 Mv_parallel.Pool.charge pool cycles_per_elem;
                 float_of_int a.(i)))
      | T_float, V_float a ->
          ignore
            (Mv_parallel.Pool.parallel_reduce pool ~lo:0 ~hi:n (fun i ->
                 Mv_parallel.Pool.charge pool cycles_per_elem;
                 a.(i)))
      | _ -> ())
  | _ -> t.charge (n * cycles_per_elem));
  (* The numeric result is computed exactly (the pool pass above models
     cost; min/max/sum over floats must not depend on chunking). *)
  match (ty, v) with
  | T_int, V_int a ->
      let acc = ref (match rop with R_plus -> 0 | R_max -> min_int | R_min -> max_int) in
      Array.iter
        (fun x ->
          acc :=
            match rop with R_plus -> !acc + x | R_max -> max !acc x | R_min -> min !acc x)
        a;
      V_int [| !acc |]
  | T_float, V_float a ->
      let acc =
        ref (match rop with R_plus -> 0.0 | R_max -> neg_infinity | R_min -> infinity)
      in
      Array.iter
        (fun x ->
          acc :=
            match rop with
            | R_plus -> !acc +. x
            | R_max -> Float.max !acc x
            | R_min -> Float.min !acc x)
        a;
      V_float [| !acc |]
  | _ -> err "reduce type mismatch"

let seg_reduce t rop ty ~segs v =
  (* [segs] is the INT vector of segment lengths; one result per segment. *)
  let lens = to_int_array segs in
  let total = Array.fold_left ( + ) 0 lens in
  if total <> length_of v then
    err "segment descriptor covers %d elements, data has %d" total (length_of v);
  t.n_elems <- t.n_elems + total;
  t.charge (total * (cycles_per_elem + 1));
  let nseg = Array.length lens in
  match (ty, v) with
  | T_int, V_int a ->
      let o = Array.make nseg 0 in
      let pos = ref 0 in
      for s = 0 to nseg - 1 do
        let acc = ref (match rop with R_plus -> 0 | R_max -> min_int | R_min -> max_int) in
        for _ = 1 to lens.(s) do
          let x = a.(!pos) in
          incr pos;
          acc :=
            (match rop with R_plus -> !acc + x | R_max -> max !acc x | R_min -> min !acc x)
        done;
        o.(s) <- !acc
      done;
      V_int o
  | T_float, V_float a ->
      let o = Array.make nseg 0.0 in
      let pos = ref 0 in
      for s = 0 to nseg - 1 do
        let acc =
          ref (match rop with R_plus -> 0.0 | R_max -> neg_infinity | R_min -> infinity)
        in
        for _ = 1 to lens.(s) do
          let x = a.(!pos) in
          incr pos;
          acc :=
            (match rop with
            | R_plus -> !acc +. x
            | R_max -> Float.max !acc x
            | R_min -> Float.min !acc x)
        done;
        o.(s) <- !acc
      done;
      V_float o
  | _ -> err "segmented reduce type mismatch"

let max_call_depth = 10_000

let run t program ?(entry = "main") initial_stack =
  let stack = ref (List.rev initial_stack) in  (* top first *)
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> err "stack underflow"
  in
  let rstack = ref [] in
  let pc =
    ref
      (match Hashtbl.find_opt program.funcs entry with
      | Some pc -> pc
      | None -> err "no FUNC %s" entry)
  in
  let running = ref true in
  while !running do
    if !pc >= Array.length program.instrs then err "fell off the end of the program";
    let instr = program.instrs.(!pc) in
    incr pc;
    t.n_ops <- t.n_ops + 1;
    t.charge 14;  (* dispatch *)
    match instr with
    | I_const v -> push v
    | I_iota ->
        let n = singleton_int (pop ()) in
        if n < 0 then err "IOTA of negative length";
        let o = Array.make n 0 in
        foreach t n (fun i -> o.(i) <- i);
        push (V_int o)
    | I_dist -> (
        let n = singleton_int (pop ()) in
        let v = pop () in
        if length_of v <> 1 then err "DIST of a non-singleton";
        match v with
        | V_int [| x |] -> push (V_int (Array.make n x))
        | V_float [| x |] -> push (V_float (Array.make n x))
        | V_bool [| x |] -> push (V_bool (Array.make n x))
        | _ -> assert false)
    | I_copy -> (
        match !stack with
        | v :: _ -> push v
        | [] -> err "COPY on empty stack")
    | I_pop -> ignore (pop ())
    | I_swap ->
        let a = pop () in
        let b = pop () in
        push a;
        push b
    | I_length -> push (V_int [| length_of (pop ()) |])
    | I_extract -> (
        let i = singleton_int (pop ()) in
        let v = pop () in
        if i < 0 || i >= length_of v then err "EXTRACT index %d out of range" i;
        match v with
        | V_int a -> push (V_int [| a.(i) |])
        | V_float a -> push (V_float [| a.(i) |])
        | V_bool a -> push (V_bool [| a.(i) |]))
    | I_replace -> (
        let x = pop () in
        let i = singleton_int (pop ()) in
        let v = pop () in
        if i < 0 || i >= length_of v then err "REPLACE index %d out of range" i;
        match (v, x) with
        | V_int a, V_int [| x |] ->
            let o = Array.copy a in
            o.(i) <- x;
            push (V_int o)
        | V_float a, V_float [| x |] ->
            let o = Array.copy a in
            o.(i) <- x;
            push (V_float o)
        | V_bool a, V_bool [| x |] ->
            let o = Array.copy a in
            o.(i) <- x;
            push (V_bool o)
        | _ -> err "REPLACE type mismatch")
    | I_permute -> (
        let idx = to_int_array (pop ()) in
        let v = pop () in
        let n = length_of v in
        if Array.length idx <> n then err "PERMUTE index length mismatch";
        Array.iter (fun i -> if i < 0 || i >= n then err "PERMUTE index out of range") idx;
        match v with
        | V_int a ->
            let o = Array.make n 0 in
            foreach t n (fun i -> o.(idx.(i)) <- a.(i));
            push (V_int o)
        | V_float a ->
            let o = Array.make n 0.0 in
            foreach t n (fun i -> o.(idx.(i)) <- a.(i));
            push (V_float o)
        | V_bool a ->
            let o = Array.make n false in
            foreach t n (fun i -> o.(idx.(i)) <- a.(i));
            push (V_bool o))
    | I_pack -> (
        let flags = to_bool_array (pop ()) in
        let v = pop () in
        let n = length_of v in
        if Array.length flags <> n then err "PACK flag length mismatch";
        t.n_elems <- t.n_elems + n;
        t.charge (n * cycles_per_elem);
        let keep = Array.to_list flags |> List.filter Fun.id |> List.length in
        let fill src mk =
          let o = Array.make keep (src 0) in
          let w = ref 0 in
          for i = 0 to n - 1 do
            if flags.(i) then begin
              o.(!w) <- src i;
              incr w
            end
          done;
          mk o
        in
        if keep = 0 then
          push (match v with V_int _ -> V_int [||] | V_float _ -> V_float [||] | V_bool _ -> V_bool [||])
        else
          match v with
          | V_int a -> push (fill (fun i -> a.(i)) (fun o -> V_int o))
          | V_float a -> push (fill (fun i -> a.(i)) (fun o -> V_float o))
          | V_bool a -> push (fill (fun i -> a.(i)) (fun o -> V_bool o)))
    | I_select -> (
        let flags = to_bool_array (pop ()) in
        let b = pop () in
        let a = pop () in
        let n = Array.length flags in
        if length_of a <> n || length_of b <> n then err "SELECT length mismatch";
        match (a, b) with
        | V_int x, V_int y ->
            let o = Array.make n 0 in
            foreach t n (fun i -> o.(i) <- (if flags.(i) then x.(i) else y.(i)));
            push (V_int o)
        | V_float x, V_float y ->
            let o = Array.make n 0.0 in
            foreach t n (fun i -> o.(i) <- (if flags.(i) then x.(i) else y.(i)));
            push (V_float o)
        | _ -> err "SELECT type mismatch")
    | I_not ->
        let a = to_bool_array (pop ()) in
        let n = Array.length a in
        let o = Array.make n false in
        foreach t n (fun i -> o.(i) <- not a.(i));
        push (V_bool o)
    | I_itof ->
        let a = to_int_array (pop ()) in
        let n = Array.length a in
        let o = Array.make n 0.0 in
        foreach t n (fun i -> o.(i) <- float_of_int a.(i));
        push (V_float o)
    | I_ftoi ->
        let a = to_float_array (pop ()) in
        let n = Array.length a in
        let o = Array.make n 0 in
        foreach t n (fun i -> o.(i) <- int_of_float a.(i));
        push (V_int o)
    | I_binop (op, ty) ->
        let b = pop () in
        let a = pop () in
        push (binop t op ty a b)
    | I_scan (rop, ty) -> push (scan t rop ty (pop ()))
    | I_reduce (rop, ty) -> push (reduce t rop ty (pop ()))
    | I_seg_reduce (rop, ty) ->
        let v = pop () in
        let segs = pop () in
        push (seg_reduce t rop ty ~segs v)
    | I_call name ->
        if List.length !rstack >= max_call_depth then err "call depth exceeded";
        rstack := !pc :: !rstack;
        pc := Hashtbl.find program.funcs name
    | I_ret -> (
        match !rstack with
        | ret :: rest ->
            rstack := rest;
            pc := ret
        | [] -> running := false)
    | I_jif target -> (
        match pop () with
        | V_bool [| true |] -> ()
        | V_bool [| false |] -> pc := target
        | v -> err "IF expects a BOOL singleton, got length %d" (length_of v))
    | I_jmp target -> pc := target
  done;
  List.rev !stack
