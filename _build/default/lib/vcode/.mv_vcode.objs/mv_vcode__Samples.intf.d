lib/vcode/samples.mli:
