lib/vcode/vcode.ml: Array Float Format Fun Hashtbl List Mv_parallel Printf String
