lib/vcode/samples.ml: Printf
