lib/vcode/vcode.mli: Format Mv_parallel
