(** A VCODE interpreter — the NESL virtual machine, the second runtime the
    authors hand-ported to Nautilus (paper, Section 2; Blelloch et al.,
    "Implementation of a portable nested data-parallel language").

    VCODE is a stack machine whose stack holds {e vectors}; every
    instruction is a data-parallel operation (elementwise arithmetic,
    scans, reductions, permutations, packing) plus scalar control flow
    (functions and conditionals).  NESL's nested parallelism is flattened
    into segmented vector operations.

    Programs are written in a textual assembly:

    {v
    FUNC main          ; entry point
      CONST INT 10
      IOTA             ; [0 1 2 ... 9]
      COPY             ; duplicate the top vector
      * INT            ; elementwise square
      +_REDUCE INT     ; sum
      RET
    v}

    Execution charges virtual cycles per element; when a {!Mv_parallel.Pool}
    is supplied, each vector operation above a length threshold becomes a
    parallel region — the way the Nautilus/Legion port ran VCODE. *)

type value =
  | V_int of int array
  | V_float of float array
  | V_bool of bool array

exception Vcode_error of string

(** {1 Programs} *)

type program

val parse : string -> program
(** Assemble a program.  @raise Vcode_error on syntax errors (unknown
    opcode, unbalanced IF/ENDIF, duplicate or missing FUNC). *)

val instruction_count : program -> int

(** {1 Execution} *)

type t

val create : ?pool:Mv_parallel.Pool.t -> charge:(int -> unit) -> unit -> t
(** An interpreter instance.  [charge] accounts virtual cycles (wire it to
    [Env.work] or [Pool.charge]); with [pool], vector operations fan out. *)

val run : t -> program -> ?entry:string -> value list -> value list
(** Execute [entry] (default ["main"]) with the given initial stack
    (bottom first); returns the final stack (bottom first).
    @raise Vcode_error on dynamic errors (type/length mismatches, stack
    underflow, unbounded recursion). *)

val ops_executed : t -> int
val elements_processed : t -> int

(** {1 Helpers} *)

val int_vec : int array -> value
val float_vec : float array -> value
val to_int_array : value -> int array
val to_float_array : value -> float array
val pp_value : Format.formatter -> value -> unit
