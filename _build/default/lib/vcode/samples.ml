let sum_of_squares n =
  Printf.sprintf
    {|
FUNC main
  CONST INT %d
  IOTA
  COPY
  * INT
  +_REDUCE INT
  RET
|}
    n

let factorial n =
  Printf.sprintf
    {|
; n! by scalar recursion
FUNC fact
  COPY
  CONST INT 1
  <= INT
  IF
    POP
    CONST INT 1
  ELSE
    COPY
    CONST INT 1
    - INT
    CALL fact
    * INT
  ENDIF
  RET

FUNC main
  CONST INT %d
  CALL fact
  RET
|}
    n

let line_of_sight =
  {|
; visible(i) = h(i) > max of all previous heights (exclusive MAX_SCAN)
FUNC main
  COPY
  MAX_SCAN INT
  > INT
  RET
|}

let dot_product =
  {|
FUNC main
  * FLOAT
  +_REDUCE FLOAT
  RET
|}

let matvec_segmented =
  {|
; stack: [row-lengths (INT); flattened a_ij * x_j products (FLOAT)]
FUNC main
  +_REDUCE_SEG FLOAT
  RET
|}
