lib/workloads/benchmarks.ml: List Multiverse Mv_racket Printf
