lib/workloads/benchmarks.mli: Multiverse
