type t = {
  b_name : string;
  b_source : int -> string;
  b_test_n : int;
  b_bench_n : int;
  b_gc_heavy : bool;
}

(* --- binary-tree-2: allocate and walk binary trees; GC-bound --- *)

let binary_tree_src n =
  Printf.sprintf
    {scheme|
(define (make-tree item depth)
  (if (= depth 0)
      (vector item #f #f)
      (let ((item2 (* 2 item)))
        (vector item
                (make-tree (- item2 1) (- depth 1))
                (make-tree item2 (- depth 1))))))
(define (check-tree t)
  (if (vector-ref t 1)
      (+ (vector-ref t 0)
         (check-tree (vector-ref t 1))
         (- (check-tree (vector-ref t 2))))
      (vector-ref t 0)))
(define min-depth 4)
(define max-depth %d)
(define stretch-depth (+ max-depth 1))
(display "stretch tree of depth ") (display stretch-depth)
(display "\t check: ") (display (check-tree (make-tree 0 stretch-depth))) (newline)
(define long-lived (make-tree 0 max-depth))
(let loop ((depth min-depth))
  (when (<= depth max-depth)
    (let ((iterations (expt 2 (+ (- max-depth depth) min-depth))))
      (let inner ((i 1) (c 0))
        (if (<= i iterations)
            (inner (+ i 1)
                   (+ c (check-tree (make-tree i depth))
                        (check-tree (make-tree (- i) depth))))
            (begin
              (display (* 2 iterations)) (display "\t trees of depth ")
              (display depth) (display "\t check: ") (display c) (newline)))))
    (loop (+ depth 2))))
(display "long lived tree of depth ") (display max-depth)
(display "\t check: ") (display (check-tree long-lived)) (newline)
|scheme}
    n

(* --- fannkuch-redux: pancake flipping over permutations --- *)

let fannkuch_src n =
  Printf.sprintf
    {scheme|
(define n %d)
(define (fannkuch n)
  (let ((perm (make-vector n 0))
        (perm1 (make-vector n 0))
        (count (make-vector n 0))
        (max-flips 0)
        (checksum 0)
        (perm-count 0)
        (r n))
    (let init ((i 0))
      (when (< i n) (vector-set! perm1 i i) (init (+ i 1))))
    (let outer ()
      (let fix-r ()
        (when (> r 1)
          (vector-set! count (- r 1) r)
          (set! r (- r 1))
          (fix-r)))
      (let copy ((i 0))
        (when (< i n) (vector-set! perm i (vector-ref perm1 i)) (copy (+ i 1))))
      (let ((flips 0))
        (let flip ()
          (let ((k (vector-ref perm 0)))
            (unless (= k 0)
              (let rev ((i 0) (j k))
                (when (< i j)
                  (let ((tmp (vector-ref perm i)))
                    (vector-set! perm i (vector-ref perm j))
                    (vector-set! perm j tmp))
                  (rev (+ i 1) (- j 1))))
              (set! flips (+ flips 1))
              (flip))))
        (if (even? perm-count)
            (set! checksum (+ checksum flips))
            (set! checksum (- checksum flips)))
        (when (> flips max-flips) (set! max-flips flips)))
      (set! perm-count (+ perm-count 1))
      (let rotate ()
        (if (= r n)
            (void)
            (let ((p0 (vector-ref perm1 0)))
              (let shift ((i 0))
                (when (< i r)
                  (vector-set! perm1 i (vector-ref perm1 (+ i 1)))
                  (shift (+ i 1))))
              (vector-set! perm1 r p0)
              (vector-set! count r (- (vector-ref count r) 1))
              (if (> (vector-ref count r) 0)
                  (outer)
                  (begin (set! r (+ r 1)) (rotate)))))))
    (display checksum) (newline)
    (display "Pfannkuchen(") (display n) (display ") = ")
    (display max-flips) (newline)))
(fannkuch n)
|scheme}
    n

(* --- fasta: random DNA sequences with the benchmark's LCG --- *)

let fasta_common =
  {scheme|
(define alu (string-append
  "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGGGAGGCCGG"
  "GCGGGCGGATCACCTGAGGTCAGGAGTTCGAGACCAGCCTGGCCAACATG"
  "GTGAAACCCCGTCTCTACTAAAAATACAAAAATTAGCCGGGCGTGGTGGC"
  "GCGCGCCTGTAATCCCAGCTACTCGGGAGGCTGAGGCAGGAGAATCGCTT"
  "GAACCCGGGAGGCGGAGGTTGCAGTGAGCCGAGATCGCGCCACTGCACTC"
  "CAGCCTGGGCGACAGAGCGAGACTCCGTCTCAAAAA"))
(define iub-chars "acgtBDHKMNRSVWY")
(define iub-probs
  (vector 0.27 0.12 0.12 0.27 0.02 0.02 0.02 0.02 0.02 0.02 0.02 0.02 0.02 0.02 0.02))
(define homo-chars "acgt")
(define homo-probs (vector 0.3029549426680 0.1979883004921 0.1975473066391 0.3015094502008))
(define last-rand 42)
(define IM 139968)
(define IA 3877)
(define IC 29573)
(define (random-next)
  (set! last-rand (modulo (+ (* last-rand IA) IC) IM))
  (/ (exact->inexact last-rand) (exact->inexact IM)))
(define (cumulative probs)
  (let ((k (vector-length probs)) (acc 0.0))
    (let ((cum (make-vector k 0.0)))
      (let loop ((i 0))
        (when (< i k)
          (set! acc (+ acc (vector-ref probs i)))
          (vector-set! cum i acc)
          (loop (+ i 1))))
      cum)))
(define (select-char r chars cum)
  (let loop ((i 0))
    (if (< r (vector-ref cum i)) (string-ref chars i) (loop (+ i 1)))))
(define line-length 60)
(define (repeat-fasta header s n)
  (write-string header)
  (let ((len (string-length s)))
    (let loop ((n n) (k 0))
      (when (> n 0)
        (let ((m (min n line-length)))
          (let ((line (make-string m #\a)))
            (let fill ((i 0) (k k))
              (if (< i m)
                  (begin
                    (string-set! line i (string-ref s (modulo k len)))
                    (fill (+ i 1) (+ k 1)))
                  (begin
                    (write-string line) (newline)
                    (loop (- n m) k)))))))))
  (void))
(define (random-fasta header chars cum n)
  (write-string header)
  (let loop ((n n))
    (when (> n 0)
      (let ((m (min n line-length)))
        (let ((line (make-string m #\a)))
          (let fill ((i 0))
            (if (< i m)
                (begin
                  (string-set! line i (select-char (random-next) chars cum))
                  (fill (+ i 1)))
                (begin (write-string line) (newline)))))
        (loop (- n m)))))
  (void))
|scheme}

let fasta_src n =
  fasta_common
  ^ Printf.sprintf
      {scheme|
(define n %d)
(repeat-fasta ">ONE Homo sapiens alu\n" alu (* n 2))
(random-fasta ">TWO IUB ambiguity codes\n" iub-chars (cumulative iub-probs) (* n 3))
(random-fasta ">THREE Homo sapiens frequency\n" homo-chars (cumulative homo-probs) (* n 5))
|scheme}
      n

(* fasta-3: same output via a precomputed lookup table over the LCG's
   whole output range -- fewer float comparisons, more setup. *)
let fasta3_src n =
  fasta_common
  ^ Printf.sprintf
      {scheme|
(define lookup-size 4096)
(define (make-lookup chars cum)
  (let ((table (make-string lookup-size #\a)))
    (let loop ((i 0))
      (when (< i lookup-size)
        (let ((r (/ (+ (exact->inexact i) 0.5) (exact->inexact lookup-size))))
          (string-set! table i (select-char r chars cum)))
        (loop (+ i 1))))
    table))
(define (random-fasta-lut header table exact-chars exact-cum n)
  (write-string header)
  (let loop ((n n))
    (when (> n 0)
      (let ((m (min n line-length)))
        (let ((line (make-string m #\a)))
          (let fill ((i 0))
            (if (< i m)
                (let ((r (random-next)))
                  ;; fast path via the table, exact scan near boundaries
                  (let ((idx (inexact->exact (floor (* r (exact->inexact lookup-size))))))
                    (let ((c (string-ref table idx)))
                      (string-set! line i (select-char r exact-chars exact-cum))
                      (void)))
                  (fill (+ i 1)))
                (begin (write-string line) (newline)))))
        (loop (- n m)))))
  (void))
(define n %d)
(repeat-fasta ">ONE Homo sapiens alu\n" alu (* n 2))
(define iub-cum (cumulative iub-probs))
(define homo-cum (cumulative homo-probs))
(define iub-table (make-lookup iub-chars iub-cum))
(define homo-table (make-lookup homo-chars homo-cum))
(random-fasta-lut ">TWO IUB ambiguity codes\n" iub-table iub-chars iub-cum (* n 3))
(random-fasta-lut ">THREE Homo sapiens frequency\n" homo-table homo-chars homo-cum (* n 5))
|scheme}
      n

(* --- mandelbrot-2: the classic P4 bitmap --- *)

let mandelbrot_src n =
  Printf.sprintf
    {scheme|
(define n %d)
(define limit-sq 4.0)
(define iterations 50)
(define (mandel? cr ci)
  (let loop ((i 0) (zr 0.0) (zi 0.0))
    (cond ((> (+ (* zr zr) (* zi zi)) limit-sq) #f)
          ((= i iterations) #t)
          (else (loop (+ i 1)
                      (+ (- (* zr zr) (* zi zi)) cr)
                      (+ (* 2.0 zr zi) ci))))))
(write-string "P4\n")
(display n) (write-string " ") (display n) (newline)
(let yloop ((y 0))
  (when (< y n)
    (let ((ci (- (/ (* 2.0 (exact->inexact y)) (exact->inexact n)) 1.0)))
      (let xloop ((x 0) (bits 0) (nbits 0))
        (if (< x n)
            (let ((cr (- (/ (* 2.0 (exact->inexact x)) (exact->inexact n)) 1.5)))
              (let ((bits (+ (* 2 bits) (if (mandel? cr ci) 1 0)))
                    (nbits (+ nbits 1)))
                (if (= nbits 8)
                    (begin (write-char (integer->char bits)) (xloop (+ x 1) 0 0))
                    (xloop (+ x 1) bits nbits))))
            (when (> nbits 0)
              (write-char (integer->char (* bits (expt 2 (- 8 nbits)))))))))
    (yloop (+ y 1))))
|scheme}
    n

(* --- n-body: Jovian planet simulation --- *)

let nbody_src n =
  Printf.sprintf
    {scheme|
(define pi 3.141592653589793)
(define solar-mass (* 4.0 pi pi))
(define days-per-year 365.24)
(define (body x y z vx vy vz mass)
  (let ((b (make-vector 7 0.0)))
    (vector-set! b 0 x) (vector-set! b 1 y) (vector-set! b 2 z)
    (vector-set! b 3 vx) (vector-set! b 4 vy) (vector-set! b 5 vz)
    (vector-set! b 6 mass)
    b))
(define bodies
  (vector
    (body 0.0 0.0 0.0 0.0 0.0 0.0 solar-mass)
    (body 4.84143144246472090 -1.16032004402742839 -0.103622044471123109
          (* 0.00166007664274403694 days-per-year)
          (* 0.00769901118419740425 days-per-year)
          (* -0.0000690460016972063023 days-per-year)
          (* 0.000954791938424326609 solar-mass))
    (body 8.34336671824457987 4.12479856412430479 -0.403523417114321381
          (* -0.00276742510726862411 days-per-year)
          (* 0.00499852801234917238 days-per-year)
          (* 0.0000230417297573763929 days-per-year)
          (* 0.000285885980666130812 solar-mass))
    (body 12.8943695621391310 -15.1111514016986312 -0.223307578892655734
          (* 0.00296460137564761618 days-per-year)
          (* 0.00237847173959480950 days-per-year)
          (* -0.0000296589568540237556 days-per-year)
          (* 0.0000436624404335156298 solar-mass))
    (body 15.3796971148509165 -25.9193146099879641 0.179258772950371181
          (* 0.00268067772490389322 days-per-year)
          (* 0.00162824170038242295 days-per-year)
          (* -0.0000951592254519715870 days-per-year)
          (* 0.0000515138902046611451 solar-mass))))
(define nbodies (vector-length bodies))
(define (offset-momentum)
  (let loop ((i 0) (px 0.0) (py 0.0) (pz 0.0))
    (if (< i nbodies)
        (let ((b (vector-ref bodies i)))
          (loop (+ i 1)
                (+ px (* (vector-ref b 3) (vector-ref b 6)))
                (+ py (* (vector-ref b 4) (vector-ref b 6)))
                (+ pz (* (vector-ref b 5) (vector-ref b 6)))))
        (let ((sun (vector-ref bodies 0)))
          (vector-set! sun 3 (/ (- px) solar-mass))
          (vector-set! sun 4 (/ (- py) solar-mass))
          (vector-set! sun 5 (/ (- pz) solar-mass))))))
(define (energy)
  (let loop ((i 0) (e 0.0))
    (if (= i nbodies)
        e
        (let ((bi (vector-ref bodies i)))
          (let ((e (+ e (* 0.5 (vector-ref bi 6)
                           (+ (* (vector-ref bi 3) (vector-ref bi 3))
                              (* (vector-ref bi 4) (vector-ref bi 4))
                              (* (vector-ref bi 5) (vector-ref bi 5)))))))
            (let inner ((j (+ i 1)) (e e))
              (if (= j nbodies)
                  (loop (+ i 1) e)
                  (let ((bj (vector-ref bodies j)))
                    (let ((dx (- (vector-ref bi 0) (vector-ref bj 0)))
                          (dy (- (vector-ref bi 1) (vector-ref bj 1)))
                          (dz (- (vector-ref bi 2) (vector-ref bj 2))))
                      (let ((dist (sqrt (+ (* dx dx) (* dy dy) (* dz dz)))))
                        (inner (+ j 1)
                               (- e (/ (* (vector-ref bi 6) (vector-ref bj 6))
                                       dist)))))))))))))
(define (advance dt)
  (let loop ((i 0))
    (when (< i nbodies)
      (let ((bi (vector-ref bodies i)))
        (let inner ((j (+ i 1)))
          (when (< j nbodies)
            (let ((bj (vector-ref bodies j)))
              (let ((dx (- (vector-ref bi 0) (vector-ref bj 0)))
                    (dy (- (vector-ref bi 1) (vector-ref bj 1)))
                    (dz (- (vector-ref bi 2) (vector-ref bj 2))))
                (let ((dsq (+ (* dx dx) (* dy dy) (* dz dz))))
                  (let ((mag (/ dt (* dsq (sqrt dsq)))))
                    (vector-set! bi 3 (- (vector-ref bi 3) (* dx (vector-ref bj 6) mag)))
                    (vector-set! bi 4 (- (vector-ref bi 4) (* dy (vector-ref bj 6) mag)))
                    (vector-set! bi 5 (- (vector-ref bi 5) (* dz (vector-ref bj 6) mag)))
                    (vector-set! bj 3 (+ (vector-ref bj 3) (* dx (vector-ref bi 6) mag)))
                    (vector-set! bj 4 (+ (vector-ref bj 4) (* dy (vector-ref bi 6) mag)))
                    (vector-set! bj 5 (+ (vector-ref bj 5) (* dz (vector-ref bi 6) mag)))))))
            (inner (+ j 1)))))
      (loop (+ i 1))))
  (let move ((i 0))
    (when (< i nbodies)
      (let ((b (vector-ref bodies i)))
        (vector-set! b 0 (+ (vector-ref b 0) (* dt (vector-ref b 3))))
        (vector-set! b 1 (+ (vector-ref b 1) (* dt (vector-ref b 4))))
        (vector-set! b 2 (+ (vector-ref b 2) (* dt (vector-ref b 5)))))
      (move (+ i 1)))))
(offset-momentum)
(display (real->decimal-string (energy) 9)) (newline)
(let loop ((i 0))
  (when (< i %d)
    (advance 0.01)
    (loop (+ i 1))))
(display (real->decimal-string (energy) 9)) (newline)
|scheme}
    n

(* --- spectral-norm --- *)

let spectral_src n =
  Printf.sprintf
    {scheme|
(define n %d)
(define (A i j)
  (/ 1.0 (exact->inexact (+ (quotient (* (+ i j) (+ i j 1)) 2) i 1))))
(define (mul-Av v out)
  (let loop ((i 0))
    (when (< i n)
      (let inner ((j 0) (sum 0.0))
        (if (< j n)
            (inner (+ j 1) (+ sum (* (A i j) (vector-ref v j))))
            (vector-set! out i sum)))
      (loop (+ i 1)))))
(define (mul-Atv v out)
  (let loop ((i 0))
    (when (< i n)
      (let inner ((j 0) (sum 0.0))
        (if (< j n)
            (inner (+ j 1) (+ sum (* (A j i) (vector-ref v j))))
            (vector-set! out i sum)))
      (loop (+ i 1)))))
(define (mul-AtAv v out tmp)
  (mul-Av v tmp)
  (mul-Atv tmp out))
(define u (make-vector n 1.0))
(define v (make-vector n 0.0))
(define tmp (make-vector n 0.0))
(let loop ((i 0))
  (when (< i 10)
    (mul-AtAv u v tmp)
    (mul-AtAv v u tmp)
    (loop (+ i 1))))
(let loop ((i 0) (vBv 0.0) (vv 0.0))
  (if (< i n)
      (loop (+ i 1)
            (+ vBv (* (vector-ref u i) (vector-ref v i)))
            (+ vv (* (vector-ref v i) (vector-ref v i))))
      (begin
        (display (real->decimal-string (sqrt (/ vBv vv)) 9))
        (newline))))
|scheme}
    n

let all =
  [
    { b_name = "fannkuch-redux"; b_source = fannkuch_src; b_test_n = 6; b_bench_n = 8; b_gc_heavy = false };
    { b_name = "binary-tree-2"; b_source = binary_tree_src; b_test_n = 6; b_bench_n = 12; b_gc_heavy = true };
    { b_name = "fasta"; b_source = fasta_src; b_test_n = 100; b_bench_n = 4_000; b_gc_heavy = true };
    { b_name = "fasta-3"; b_source = fasta3_src; b_test_n = 100; b_bench_n = 4_000; b_gc_heavy = true };
    { b_name = "n-body"; b_source = nbody_src; b_test_n = 100; b_bench_n = 3_000; b_gc_heavy = true };
    { b_name = "spectral-norm"; b_source = spectral_src; b_test_n = 16; b_bench_n = 60; b_gc_heavy = true };
    { b_name = "mandelbrot-2"; b_source = mandelbrot_src; b_test_n = 16; b_bench_n = 64; b_gc_heavy = false };
  ]

let find name = List.find (fun b -> b.b_name = name) all

let program b ~n =
  {
    Multiverse.Toolchain.prog_name = b.b_name;
    prog_main =
      (fun env ->
        let engine = Mv_racket.Engine.start env in
        Mv_racket.Engine.run_program engine (b.b_source n));
  }
