(** The seven Computer Language Benchmarks Game programs the paper
    evaluates hybridized Racket on (Figures 10 and 13), as Scheme sources
    for our runtime:

    binary-tree-2 (GC stress), fannkuch-redux (permutations), fasta and
    fasta-3 (random DNA sequence generation, two implementations),
    mandelbrot-2, n-body, and spectral-norm.

    Each benchmark is parameterized by a problem size [n]; outputs are
    deterministic, and for the classic sizes they match the published
    reference outputs (n-body energies, spectral-norm value, fannkuch
    counts), which doubles as an end-to-end correctness check of the
    runtime. *)

type t = {
  b_name : string;
  b_source : int -> string;  (** Scheme program text for problem size n *)
  b_test_n : int;  (** small size for tests *)
  b_bench_n : int;  (** size used by the figure benchmarks *)
  b_gc_heavy : bool;  (** dominated by allocation/fault traffic? *)
}

val all : t list
val find : string -> t
(** @raise Not_found *)

val program : t -> n:int -> Multiverse.Toolchain.program
(** Package as a guest program: start the Racket engine, run the source
    in batch mode (the paper's embedding: a C main that boots the engine
    in a pthread and feeds it the file). *)
