(** Racket-style places: isolated parallel Scheme instances.

    The paper's future work targets parallel runtime systems, and cites
    Racket's own places work (Tew et al., DLS 2011).  A place runs a
    program in its own VM and GC heap on its own OS thread — which, under
    Multiverse's pthread override, means {e its own HRT execution group on
    the kernel side}.  Places share nothing; they communicate by sending
    immutable messages over channels, deep-copied between heaps.

    Scheme API (available once the engine enables places):

    {v
    (place-spawn "source...")   ; start a place, returns its id
    (place-send id v)           ; send a message (id 0 = my parent)
    (place-receive id)          ; blocking receive
    (place-wait id)             ; block until the place's program finishes
    v} *)

(** Heap-independent message representation (the "transferable" values). *)
type msg =
  | M_int of int
  | M_float of float
  | M_bool of bool
  | M_char of char
  | M_string of string
  | M_sym of string
  | M_nil
  | M_void
  | M_list of msg list
  | M_vector of msg array

exception Not_transferable of string
(** Raised when a value with identity (closure, box, port) is sent. *)

val encode : Code.cstate -> Value.v -> msg
(** Deep-copy a value out of a VM's heap.  @raise Not_transferable *)

val decode : Code.cstate -> msg -> Value.v
(** Rebuild a message inside a VM's heap. *)

(** A blocking, simulation-aware message queue. *)
type channel

val channel : Mv_guest.Env.t -> channel
val send : channel -> msg -> unit
val receive : channel -> msg
(** Blocks the simulated thread until a message arrives. *)
