type v = int

(* --- immediates --- *)

let fixnum n = (n lsl 1) lor 1
let is_fixnum v = v land 1 = 1
let fixnum_val v = v asr 1
let sym id = (id lsl 3) lor 0b010
let is_sym v = v land 7 = 0b010
let sym_id v = v lsr 3
let char_v c = (Char.code c lsl 3) lor 0b100
let is_char v = v land 7 = 0b100
let char_val v = Char.chr ((v lsr 3) land 0xFF)

let special k = (k lsl 3) lor 0b110
let nil = special 0
let vtrue = special 1
let vfalse = special 2
let vvoid = special 3
let veof = special 4
let vundef = special 5
let bool_v b = if b then vtrue else vfalse
let is_truthy v = v <> vfalse

let port_v id = special (16 + id)
let is_port v = v land 7 = 0b110 && v lsr 3 >= 16
let port_id v = (v lsr 3) - 16

(* --- heap objects --- *)

let tag_pair = 1
let tag_vector = 2
let tag_string = 3
let tag_flonum = 4
let tag_closure = 5
let tag_box = 6
let tag_frame = 7

let register_scannable gc =
  List.iter
    (fun tag -> Sgc.set_scannable gc ~tag true)
    [ tag_pair; tag_vector; tag_closure; tag_box; tag_frame ]

let is_ptr v = v land 7 = 0 && v <> 0
let has_tag gc v tag = is_ptr v && Sgc.header_tag gc v = tag

let slot addr i = addr + ((i + 1) * 8)

(* pairs *)

let cons gc a d =
  let p = Sgc.alloc gc ~tag:tag_pair ~words:2 in
  Sgc.write_word gc (slot p 0) a;
  Sgc.write_word gc (slot p 1) d;
  p

let is_pair gc v = has_tag gc v tag_pair
let car gc p = Sgc.read_word gc (slot p 0)
let cdr gc p = Sgc.read_word gc (slot p 1)
let set_car gc p x = Sgc.write_word gc (slot p 0) x
let set_cdr gc p x = Sgc.write_word gc (slot p 1) x

let list_of gc items = List.fold_right (fun x acc -> cons gc x acc) items nil

let to_list gc v =
  let rec go acc v =
    if v = nil then List.rev acc
    else if is_pair gc v then go (car gc v :: acc) (cdr gc v)
    else invalid_arg "Value.to_list: improper list"
  in
  go [] v

(* vectors *)

let make_vector gc n fill =
  let a = Sgc.alloc gc ~tag:tag_vector ~words:(max n 0) in
  for i = 0 to n - 1 do
    Sgc.write_word gc (slot a i) fill
  done;
  a

let is_vector gc v = has_tag gc v tag_vector
let vector_length gc v = Sgc.header_words gc v
let vector_ref gc v i = Sgc.read_word gc (slot v i)
let vector_set gc v i x = Sgc.write_word gc (slot v i) x

(* strings: word 0 = length in bytes, then packed bytes *)

let string_v gc s =
  let len = String.length s in
  let data_words = (len + 7) / 8 in
  let a = Sgc.alloc gc ~tag:tag_string ~words:(1 + data_words) in
  Sgc.write_word gc (slot a 0) len;
  for w = 0 to data_words - 1 do
    let word = ref 0 in
    for b = 0 to 7 do
      let i = (w * 8) + b in
      if i < len then word := !word lor (Char.code s.[i] lsl (b * 8))
    done;
    Sgc.write_word gc (slot a (1 + w)) !word
  done;
  a

let is_string gc v = has_tag gc v tag_string
let string_length gc v = Sgc.read_word gc (slot v 0)

let string_ref gc v i =
  let word = Sgc.read_word gc (slot v (1 + (i / 8))) in
  Char.chr ((word lsr (i mod 8 * 8)) land 0xFF)

let string_set gc v i c =
  let waddr = slot v (1 + (i / 8)) in
  let word = Sgc.read_word gc waddr in
  let shift = i mod 8 * 8 in
  let word = word land lnot (0xFF lsl shift) lor (Char.code c lsl shift) in
  Sgc.write_word gc waddr word

let string_val gc v =
  let len = string_length gc v in
  String.init len (fun i -> string_ref gc v i)

(* flonums: two 32-bit halves of the IEEE bits *)

let flonum gc f =
  let bits = Int64.bits_of_float f in
  let a = Sgc.alloc gc ~tag:tag_flonum ~words:2 in
  Sgc.write_word gc (slot a 0) (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
  Sgc.write_word gc (slot a 1) (Int64.to_int (Int64.shift_right_logical bits 32));
  a

let is_flonum gc v = has_tag gc v tag_flonum

let flonum_val gc v =
  let lo = Sgc.read_word gc (slot v 0) and hi = Sgc.read_word gc (slot v 1) in
  Int64.float_of_bits
    (Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32))

(* closures: word 0 = code index (as a fixnum, so the scanner skips it),
   word 1 = captured environment *)

let closure gc ~code ~env =
  let a = Sgc.alloc gc ~tag:tag_closure ~words:2 in
  Sgc.write_word gc (slot a 0) (fixnum code);
  Sgc.write_word gc (slot a 1) env;
  a

let is_closure gc v = has_tag gc v tag_closure
let closure_code gc v = fixnum_val (Sgc.read_word gc (slot v 0))
let closure_env gc v = Sgc.read_word gc (slot v 1)

(* boxes *)

let box_v gc x =
  let a = Sgc.alloc gc ~tag:tag_box ~words:1 in
  Sgc.write_word gc (slot a 0) x;
  a

let is_box gc v = has_tag gc v tag_box
let unbox gc v = Sgc.read_word gc (slot v 0)
let set_box gc v x = Sgc.write_word gc (slot v 0) x

(* environment frames: word 0 = parent, then slots *)

let frame gc ~parent ~size =
  let a = Sgc.alloc gc ~tag:tag_frame ~words:(size + 1) in
  Sgc.write_word gc (slot a 0) parent;
  for i = 1 to size do
    Sgc.write_word gc (slot a i) vundef
  done;
  a

let frame_parent gc v = Sgc.read_word gc (slot v 0)
let frame_set_parent gc v p = Sgc.write_word gc (slot v 0) p
let frame_ref gc v i = Sgc.read_word gc (slot v (i + 1))
let frame_set gc v i x = Sgc.write_word gc (slot v (i + 1)) x
let frame_size gc v = Sgc.header_words gc v - 1

(* --- generic --- *)

let eqv gc a b =
  a = b || (is_flonum gc a && is_flonum gc b && flonum_val gc a = flonum_val gc b)

let rec equal gc a b =
  eqv gc a b
  || (is_pair gc a && is_pair gc b && equal gc (car gc a) (car gc b)
     && equal gc (cdr gc a) (cdr gc b))
  || (is_string gc a && is_string gc b && string_val gc a = string_val gc b)
  ||
  (is_vector gc a && is_vector gc b
  &&
  let n = vector_length gc a in
  n = vector_length gc b
  &&
  let rec all i = i >= n || (equal gc (vector_ref gc a i) (vector_ref gc b i) && all (i + 1)) in
  all 0)

let type_name gc v =
  if is_fixnum v then "fixnum"
  else if is_sym v then "symbol"
  else if is_char v then "char"
  else if v = nil then "null"
  else if v = vtrue || v = vfalse then "boolean"
  else if v = vvoid then "void"
  else if v = veof then "eof"
  else if v = vundef then "undefined"
  else if is_port v then "port"
  else if is_ptr v then
    match Sgc.header_tag gc v with
    | 1 -> "pair"
    | 2 -> "vector"
    | 3 -> "string"
    | 4 -> "flonum"
    | 5 -> "procedure"
    | 6 -> "box"
    | 7 -> "frame"
    | _ -> "unknown"
  else "invalid"
