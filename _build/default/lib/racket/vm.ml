module Env = Mv_guest.Env
module Libc = Mv_guest.Libc
module V = Value
open Code

exception Scheme_error of string

type place_ops = {
  po_spawn : string -> int;
  po_send : int -> Places.msg -> unit;
  po_recv : int -> Places.msg;
  po_wait : int -> unit;
}

let err fmt = Printf.ksprintf (fun s -> raise (Scheme_error s)) fmt

type frame = {
  mutable f_code : int;
  mutable f_pc : int;
  mutable f_env : V.v;
  mutable f_base : V.v;  (* the activation's own frame, for recycling *)
}

type t = {
  cs : cstate;
  env : Env.t;
  libc : Libc.t;
  heap : Sgc.t;
  mutable globals : V.v array;
  mutable stack : int array;
  mutable sp : int;
  mutable frames : frame array;
  mutable fp : int;
  temps : int array;
  mutable ntemps : int;
  mutable n_instrs : int;
  mutable tick_acc : int;
  mutable on_tick : t -> unit;
  mutable on_jit : code -> unit;
  cycles_per_instr : int;
  (* Recycled activation frames for code that provably never captures its
     frame: models compiled code keeping such frames on the stack instead
     of allocating (without it, every call would be a GC allocation). *)
  frame_pool : (int, V.v list ref) Hashtbl.t;
  mutable pool_count : int;
  mutable place_ops : place_ops option;
  ports : (int, Libc.stream) Hashtbl.t;
  mutable next_port : int;
}

let create env libc heap =
  let t =
    {
      cs = make_cstate heap;
      env;
      libc;
      heap;
      globals = Array.make 256 V.vundef;
      stack = Array.make 4096 V.vundef;
      sp = 0;
      frames = Array.init 256 (fun _ -> { f_code = 0; f_pc = 0; f_env = V.nil; f_base = V.nil });
      fp = -1;
      temps = Array.make 64 V.vundef;
      ntemps = 0;
      n_instrs = 0;
      tick_acc = 0;
      on_tick = (fun _ -> ());
      on_jit = (fun _ -> ());
      cycles_per_instr = 9;
      frame_pool = Hashtbl.create 16;
      pool_count = 0;
      place_ops = None;
      ports = Hashtbl.create 8;
      next_port = 2;  (* port 1 is stdout *)
    }
  in
  V.register_scannable heap;
  Sgc.set_roots heap (fun visit ->
      for i = 0 to t.sp - 1 do
        visit t.stack.(i)
      done;
      for i = 0 to t.fp do
        visit t.frames.(i).f_env
      done;
      for i = 0 to t.cs.nglobals - 1 do
        if i < Array.length t.globals then visit t.globals.(i)
      done;
      for i = 0 to t.cs.nconstants - 1 do
        visit t.cs.constants.(i)
      done;
      for i = 0 to t.ntemps - 1 do
        visit t.temps.(i)
      done;
      (* Pooled frames must stay live across collections. *)
      Hashtbl.iter (fun _ cell -> List.iter visit !cell) t.frame_pool);
  t

let cstate t = t.cs
let gc t = t.heap
let set_on_tick t fn = t.on_tick <- fn
let set_on_jit t fn = t.on_jit <- fn
let set_place_ops t ops = t.place_ops <- Some ops
let instructions_executed t = t.n_instrs

(* --- stack --- *)

let push t v =
  if t.sp >= Array.length t.stack then begin
    let a = Array.make (2 * Array.length t.stack) V.vundef in
    Array.blit t.stack 0 a 0 t.sp;
    t.stack <- a
  end;
  t.stack.(t.sp) <- v;
  t.sp <- t.sp + 1

let pop t =
  t.sp <- t.sp - 1;
  t.stack.(t.sp)

let protect t v =
  t.temps.(t.ntemps) <- v;
  t.ntemps <- t.ntemps + 1

let clear_temps t = t.ntemps <- 0

(* --- rendering --- *)

let rec render t ~quoted v =
  let gc = t.heap in
  if V.is_fixnum v then string_of_int (V.fixnum_val v)
  else if V.is_sym v then sym_name t.cs (V.sym_id v)
  else if V.is_char v then
    if quoted then (
      match V.char_val v with
      | ' ' -> "#\\space"
      | '\n' -> "#\\newline"
      | c -> Printf.sprintf "#\\%c" c)
    else String.make 1 (V.char_val v)
  else if v = V.nil then "()"
  else if v = V.vtrue then "#t"
  else if v = V.vfalse then "#f"
  else if v = V.vvoid then ""
  else if v = V.veof then "#<eof>"
  else if v = V.vundef then "#<undefined>"
  else if V.is_port v then "#<port>"
  else if V.is_pair gc v then begin
    let buf = Buffer.create 32 in
    Buffer.add_char buf '(';
    let rec go first v =
      if v = V.nil then ()
      else if V.is_pair gc v then begin
        if not first then Buffer.add_char buf ' ';
        Buffer.add_string buf (render t ~quoted (V.car gc v));
        go false (V.cdr gc v)
      end
      else begin
        Buffer.add_string buf " . ";
        Buffer.add_string buf (render t ~quoted v)
      end
    in
    go true v;
    Buffer.add_char buf ')';
    Buffer.contents buf
  end
  else if V.is_string gc v then
    if quoted then Printf.sprintf "%S" (V.string_val gc v) else V.string_val gc v
  else if V.is_flonum gc v then begin
    let f = V.flonum_val gc v in
    if Float.is_integer f && Float.abs f < 1e18 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f
  end
  else if V.is_vector gc v then begin
    let n = V.vector_length gc v in
    let buf = Buffer.create 32 in
    Buffer.add_string buf "#(";
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (render t ~quoted (V.vector_ref gc v i))
    done;
    Buffer.add_char buf ')';
    Buffer.contents buf
  end
  else if V.is_closure gc v then "#<procedure>"
  else if V.is_box gc v then "#&" ^ render t ~quoted (V.unbox gc v)
  else "#<unknown>"

let display_string t v = render t ~quoted:false v
let write_string_of t v = render t ~quoted:true v

(* --- numeric helpers --- *)

let is_number t v = V.is_fixnum v || V.is_flonum t.heap v

let float_val t v =
  if V.is_fixnum v then float_of_int (V.fixnum_val v)
  else if V.is_flonum t.heap v then V.flonum_val t.heap v
  else err "expected a number, got %s" (display_string t v)

let num2 t name a b ~fix ~flo =
  if V.is_fixnum a && V.is_fixnum b then fix (V.fixnum_val a) (V.fixnum_val b)
  else if is_number t a && is_number t b then flo (float_val t a) (float_val t b)
  else err "%s: expected numbers, got %s and %s" name (display_string t a) (display_string t b)

let fixr n = V.fixnum n
let flor t f = V.flonum t.heap f

let arith_fold t name args ~id ~fix ~flo =
  match args with
  | [] -> fixr id
  | [ x ] when name = "-" ->
      if V.is_fixnum x then fixr (-V.fixnum_val x) else flor t (-.float_val t x)
  | [ x ] when name = "/" -> (
      match x with
      | _ when V.is_fixnum x && V.fixnum_val x = 1 -> fixr 1
      | _ -> flor t (1.0 /. float_val t x))
  | first :: rest ->
      List.fold_left
        (fun acc x ->
          num2 t name acc x
            ~fix:(fun a b -> fix a b)
            ~flo:(fun a b -> flo t a b))
        first rest

let compare_chain t args ~fix ~flo =
  let rec go = function
    | a :: (b :: _ as rest) ->
        let ok =
          if V.is_fixnum a && V.is_fixnum b then fix (V.fixnum_val a) (V.fixnum_val b)
          else flo (float_val t a) (float_val t b)
        in
        ok && go rest
    | _ -> true
  in
  V.bool_v (go args)

(* --- primitive execution ---

   Arguments stay on the stack while the primitive runs (so they remain
   GC roots across any allocation); [finish] pops them and pushes the
   result. *)

let exec_prim t p n =
  let gc = t.heap in
  let arg i = t.stack.(t.sp - n + i) in
  let args () = List.init n arg in
  let finish v =
    t.sp <- t.sp - n;
    push t v;
    clear_temps t
  in
  let int_arg name i =
    let v = arg i in
    if V.is_fixnum v then V.fixnum_val v
    else err "%s: expected integer, got %s" name (display_string t v)
  in
  let string_arg name i =
    let v = arg i in
    if V.is_string gc v then v else err "%s: expected string, got %s" name (display_string t v)
  in
  match p with
  (* numbers *)
  | Padd ->
      finish
        (arith_fold t "+" (args ()) ~id:0 ~fix:(fun a b -> fixr (a + b))
           ~flo:(fun t a b -> flor t (a +. b)))
  | Psub ->
      if n = 0 then err "-: needs at least one argument"
      else
        finish
          (arith_fold t "-" (args ()) ~id:0 ~fix:(fun a b -> fixr (a - b))
             ~flo:(fun t a b -> flor t (a -. b)))
  | Pmul ->
      finish
        (arith_fold t "*" (args ()) ~id:1 ~fix:(fun a b -> fixr (a * b))
           ~flo:(fun t a b -> flor t (a *. b)))
  | Pdiv ->
      if n = 0 then err "/: needs at least one argument"
      else
        finish
          (arith_fold t "/" (args ()) ~id:1
             ~fix:(fun a b ->
               if b = 0 then err "/: division by zero"
               else if a mod b = 0 then fixr (a / b)
               else flor t (float_of_int a /. float_of_int b))
             ~flo:(fun t a b -> flor t (a /. b)))
  | Pquotient ->
      let a = int_arg "quotient" 0 and b = int_arg "quotient" 1 in
      if b = 0 then err "quotient: division by zero" else finish (fixr (a / b))
  | Premainder ->
      let a = int_arg "remainder" 0 and b = int_arg "remainder" 1 in
      if b = 0 then err "remainder: division by zero" else finish (fixr (a mod b))
  | Pmodulo ->
      let a = int_arg "modulo" 0 and b = int_arg "modulo" 1 in
      if b = 0 then err "modulo: division by zero"
      else finish (fixr (((a mod b) + b) mod b))
  | Pabs ->
      let v = arg 0 in
      finish
        (if V.is_fixnum v then fixr (abs (V.fixnum_val v))
         else flor t (Float.abs (float_val t v)))
  | Pmin ->
      finish
        (arith_fold t "min" (args ()) ~id:0 ~fix:(fun a b -> fixr (min a b))
           ~flo:(fun t a b -> flor t (Float.min a b)))
  | Pmax ->
      finish
        (arith_fold t "max" (args ()) ~id:0 ~fix:(fun a b -> fixr (max a b))
           ~flo:(fun t a b -> flor t (Float.max a b)))
  | Pexpt ->
      let b = arg 0 and e = arg 1 in
      if V.is_fixnum b && V.is_fixnum e && V.fixnum_val e >= 0 then begin
        let rec ipow acc b e = if e = 0 then acc else ipow (acc * b) b (e - 1) in
        finish (fixr (ipow 1 (V.fixnum_val b) (V.fixnum_val e)))
      end
      else finish (flor t (Float.pow (float_val t b) (float_val t e)))
  | Psqrt ->
      let f = float_val t (arg 0) in
      let r = sqrt f in
      if V.is_fixnum (arg 0) && Float.is_integer r then finish (fixr (int_of_float r))
      else finish (flor t r)
  | Pfloor ->
      let v = arg 0 in
      finish (if V.is_fixnum v then v else flor t (Float.floor (float_val t v)))
  | Ptruncate ->
      let v = arg 0 in
      finish (if V.is_fixnum v then v else flor t (Float.trunc (float_val t v)))
  | Pround ->
      let v = arg 0 in
      finish (if V.is_fixnum v then v else flor t (Float.round (float_val t v)))
  | Pexact_to_inexact -> finish (flor t (float_val t (arg 0)))
  | Pinexact_to_exact ->
      let v = arg 0 in
      finish (if V.is_fixnum v then v else fixr (int_of_float (float_val t v)))
  | Psin -> finish (flor t (sin (float_val t (arg 0))))
  | Pcos -> finish (flor t (cos (float_val t (arg 0))))
  | Patan -> finish (flor t (atan (float_val t (arg 0))))
  | Plog -> finish (flor t (log (float_val t (arg 0))))
  | Pexp -> finish (flor t (exp (float_val t (arg 0))))
  | Plt -> finish (compare_chain t (args ()) ~fix:( < ) ~flo:( < ))
  | Pgt -> finish (compare_chain t (args ()) ~fix:( > ) ~flo:( > ))
  | Ple -> finish (compare_chain t (args ()) ~fix:( <= ) ~flo:( <= ))
  | Pge -> finish (compare_chain t (args ()) ~fix:( >= ) ~flo:( >= ))
  | Pnumeq -> finish (compare_chain t (args ()) ~fix:( = ) ~flo:( = ))
  | Pzerop ->
      finish
        (V.bool_v (if V.is_fixnum (arg 0) then V.fixnum_val (arg 0) = 0
                   else float_val t (arg 0) = 0.0))
  | Pevenp -> finish (V.bool_v (int_arg "even?" 0 land 1 = 0))
  | Poddp -> finish (V.bool_v (int_arg "odd?" 0 land 1 = 1))
  | Pnegativep -> finish (V.bool_v (float_val t (arg 0) < 0.))
  | Ppositivep -> finish (V.bool_v (float_val t (arg 0) > 0.))
  (* predicates *)
  | Peq -> finish (V.bool_v (arg 0 = arg 1))
  | Peqv -> finish (V.bool_v (V.eqv gc (arg 0) (arg 1)))
  | Pequal -> finish (V.bool_v (V.equal gc (arg 0) (arg 1)))
  | Pnot -> finish (V.bool_v (arg 0 = V.vfalse))
  | Pnullp -> finish (V.bool_v (arg 0 = V.nil))
  | Ppairp -> finish (V.bool_v (V.is_pair gc (arg 0)))
  | Pnumberp -> finish (V.bool_v (is_number t (arg 0)))
  | Pintegerp ->
      finish
        (V.bool_v
           (V.is_fixnum (arg 0)
           || (V.is_flonum gc (arg 0) && Float.is_integer (V.flonum_val gc (arg 0)))))
  | Pstringp -> finish (V.bool_v (V.is_string gc (arg 0)))
  | Psymbolp -> finish (V.bool_v (V.is_sym (arg 0)))
  | Pprocedurep -> finish (V.bool_v (V.is_closure gc (arg 0)))
  | Pvectorp -> finish (V.bool_v (V.is_vector gc (arg 0)))
  | Pbooleanp -> finish (V.bool_v (arg 0 = V.vtrue || arg 0 = V.vfalse))
  | Pcharp -> finish (V.bool_v (V.is_char (arg 0)))
  (* pairs *)
  | Pcons -> finish (V.cons gc (arg 0) (arg 1))
  | Pcar ->
      if V.is_pair gc (arg 0) then finish (V.car gc (arg 0))
      else err "car: expected pair, got %s" (display_string t (arg 0))
  | Pcdr ->
      if V.is_pair gc (arg 0) then finish (V.cdr gc (arg 0))
      else err "cdr: expected pair, got %s" (display_string t (arg 0))
  | Psetcar ->
      V.set_car gc (arg 0) (arg 1);
      finish V.vvoid
  | Psetcdr ->
      V.set_cdr gc (arg 0) (arg 1);
      finish V.vvoid
  | Plist ->
      let acc = ref V.nil in
      for i = n - 1 downto 0 do
        t.ntemps <- 0;
        protect t !acc;
        acc := V.cons gc (arg i) !acc
      done;
      finish !acc
  | Plength ->
      let rec go acc v =
        if v = V.nil then acc
        else if V.is_pair gc v then go (acc + 1) (V.cdr gc v)
        else err "length: improper list"
      in
      finish (fixr (go 0 (arg 0)))
  | Pappend ->
      if n = 0 then finish V.nil
      else begin
        (* Copy all but the last, sharing the tail. *)
        let rec copy_onto front tail =
          match front with
          | [] -> tail
          | v :: rest ->
              let elems = V.to_list gc v in
              List.fold_right
                (fun x acc ->
                  t.ntemps <- 0;
                  protect t acc;
                  V.cons gc x acc)
                elems (copy_onto rest tail)
        in
        let all = args () in
        let rec split = function
          | [ last ] -> ([], last)
          | x :: rest ->
              let front, last = split rest in
              (x :: front, last)
          | [] -> assert false
        in
        let front, last = split all in
        finish (copy_onto front last)
      end
  | Preverse ->
      let acc = ref V.nil in
      let rec go v =
        if v = V.nil then ()
        else begin
          t.ntemps <- 0;
          protect t !acc;
          acc := V.cons gc (V.car gc v) !acc;
          go (V.cdr gc v)
        end
      in
      go (arg 0);
      finish !acc
  | Plist_ref ->
      let rec go v k = if k = 0 then V.car gc v else go (V.cdr gc v) (k - 1) in
      finish (go (arg 0) (int_arg "list-ref" 1))
  | Plist_tail ->
      let rec go v k = if k = 0 then v else go (V.cdr gc v) (k - 1) in
      finish (go (arg 0) (int_arg "list-tail" 1))
  | Pmemq | Pmember ->
      let same = match p with Pmemq -> fun a b -> a = b | _ -> V.equal gc in
      let rec go v =
        if v = V.nil then V.vfalse
        else if same (arg 0) (V.car gc v) then v
        else go (V.cdr gc v)
      in
      finish (go (arg 1))
  | Passq | Passv ->
      let same = match p with Passq -> fun a b -> a = b | _ -> V.eqv gc in
      let rec go v =
        if v = V.nil then V.vfalse
        else
          let entry = V.car gc v in
          if V.is_pair gc entry && same (arg 0) (V.car gc entry) then entry
          else go (V.cdr gc v)
      in
      finish (go (arg 1))
  (* vectors *)
  | Pmake_vector ->
      let len = int_arg "make-vector" 0 in
      let fill = if n > 1 then arg 1 else V.fixnum 0 in
      finish (V.make_vector gc len fill)
  | Pvector ->
      let v = V.make_vector gc n V.vundef in
      for i = 0 to n - 1 do
        V.vector_set gc v i (arg i)
      done;
      finish v
  | Pvector_ref ->
      let v = arg 0 and i = int_arg "vector-ref" 1 in
      if not (V.is_vector gc v) then err "vector-ref: expected vector";
      if i < 0 || i >= V.vector_length gc v then err "vector-ref: index %d out of range" i;
      finish (V.vector_ref gc v i)
  | Pvector_set ->
      let v = arg 0 and i = int_arg "vector-set!" 1 in
      if not (V.is_vector gc v) then err "vector-set!: expected vector";
      if i < 0 || i >= V.vector_length gc v then err "vector-set!: index %d out of range" i;
      V.vector_set gc v i (arg 2);
      finish V.vvoid
  | Pvector_length -> finish (fixr (V.vector_length gc (arg 0)))
  | Pvector_fill ->
      let v = arg 0 in
      for i = 0 to V.vector_length gc v - 1 do
        V.vector_set gc v i (arg 1)
      done;
      finish V.vvoid
  (* strings *)
  | Pstring_length -> finish (fixr (V.string_length gc (string_arg "string-length" 0)))
  | Pstring_ref ->
      finish (V.char_v (V.string_ref gc (string_arg "string-ref" 0) (int_arg "string-ref" 1)))
  | Pstring_set ->
      let c = arg 2 in
      if not (V.is_char c) then err "string-set!: expected char";
      V.string_set gc (string_arg "string-set!" 0) (int_arg "string-set!" 1) (V.char_val c);
      finish V.vvoid
  | Pmake_string ->
      let len = int_arg "make-string" 0 in
      let c = if n > 1 then V.char_val (arg 1) else ' ' in
      finish (V.string_v gc (String.make len c))
  | Pstring_append ->
      let parts = List.map (fun v -> V.string_val gc v) (args ()) in
      finish (V.string_v gc (String.concat "" parts))
  | Psubstring ->
      let s = V.string_val gc (string_arg "substring" 0) in
      let a = int_arg "substring" 1 and b = int_arg "substring" 2 in
      finish (V.string_v gc (String.sub s a (b - a)))
  | Pstring_to_symbol -> finish (V.sym (intern t.cs (V.string_val gc (arg 0))))
  | Psymbol_to_string -> finish (V.string_v gc (sym_name t.cs (V.sym_id (arg 0))))
  | Pnumber_to_string -> finish (V.string_v gc (display_string t (arg 0)))
  | Pstring_to_number -> (
      let s = V.string_val gc (string_arg "string->number" 0) in
      match int_of_string_opt s with
      | Some k -> finish (fixr k)
      | None -> (
          match float_of_string_opt s with
          | Some f -> finish (flor t f)
          | None -> finish V.vfalse))
  | Pstring_eq ->
      finish (V.bool_v (V.string_val gc (arg 0) = V.string_val gc (arg 1)))
  | Pstring_copy -> finish (V.string_v gc (V.string_val gc (arg 0)))
  | Plist_to_string ->
      let chars = V.to_list gc (arg 0) in
      finish (V.string_v gc (String.init (List.length chars) (fun i -> V.char_val (List.nth chars i))))
  | Pstring_to_list ->
      let s = V.string_val gc (arg 0) in
      let acc = ref V.nil in
      for i = String.length s - 1 downto 0 do
        t.ntemps <- 0;
        protect t !acc;
        acc := V.cons gc (V.char_v s.[i]) !acc
      done;
      finish !acc
  | Pchar_to_integer -> finish (fixr (Char.code (V.char_val (arg 0))))
  | Pinteger_to_char -> finish (V.char_v (Char.chr (int_arg "integer->char" 0 land 0xFF)))
  | Pchar_eq -> finish (V.bool_v (arg 0 = arg 1))
  | Preal_to_decimal_string ->
      let digits = int_arg "real->decimal-string" 1 in
      finish (V.string_v gc (Printf.sprintf "%.*f" digits (float_val t (arg 0))))
  (* boxes *)
  | Pbox -> finish (V.box_v gc (arg 0))
  | Punbox -> finish (V.unbox gc (arg 0))
  | Pset_box ->
      V.set_box gc (arg 0) (arg 1);
      finish V.vvoid
  (* I/O.  Each of these takes an optional trailing port argument; without
     one, output goes to stdout and input comes from stdin. *)
  | Pdisplay | Pwrite | Pnewline | Pwrite_char | Pwrite_string | Pread_line
  | Pflush_output | Popen_input | Popen_output | Pclose_port | Peof_objectp
  | Pportp | Pread_char -> (
      let port_stream name v =
        if not (V.is_port v) then err "%s: expected a port, got %s" name (display_string t v)
        else if V.port_id v = 1 then Libc.stdout_stream t.libc
        else
          match Hashtbl.find_opt t.ports (V.port_id v) with
          | Some s -> s
          | None -> err "%s: port is closed" name
      in
      (* output stream for a prim whose port argument (if any) is arg i *)
      let out_for name i =
        if n > i then port_stream name (arg i) else Libc.stdout_stream t.libc
      in
      let arity name lo hi =
        if n < lo || n > hi then err "%s: expects %d..%d arguments, got %d" name lo hi n
      in
      match p with
      | Pdisplay ->
          arity "display" 1 2;
          Libc.fwrite t.libc (out_for "display" 1) (display_string t (arg 0));
          finish V.vvoid
      | Pwrite ->
          arity "write" 1 2;
          Libc.fwrite t.libc (out_for "write" 1) (write_string_of t (arg 0));
          finish V.vvoid
      | Pnewline ->
          arity "newline" 0 1;
          Libc.fwrite t.libc (out_for "newline" 0) "\n";
          finish V.vvoid
      | Pwrite_char ->
          arity "write-char" 1 2;
          Libc.fwrite t.libc (out_for "write-char" 1) (String.make 1 (V.char_val (arg 0)));
          finish V.vvoid
      | Pwrite_string ->
          arity "write-string" 1 2;
          Libc.fwrite t.libc (out_for "write-string" 1) (V.string_val gc (arg 0));
          finish V.vvoid
      | Pread_line -> (
          arity "read-line" 0 1;
          let got =
            if n = 0 then Libc.stdin_gets t.libc
            else Libc.fgets t.libc (port_stream "read-line" (arg 0)) ~max:65536
          in
          match got with
          | Some line ->
              let line =
                if String.length line > 0 && line.[String.length line - 1] = '\n' then
                  String.sub line 0 (String.length line - 1)
                else line
              in
              finish (V.string_v gc line)
          | None -> finish V.veof)
      | Pread_char -> (
          arity "read-char" 0 1;
          let got =
            if n = 0 then Libc.stdin_gets_char t.libc
            else Libc.fgetc t.libc (port_stream "read-char" (arg 0))
          in
          match got with Some c -> finish (V.char_v c) | None -> finish V.veof)
      | Pflush_output ->
          arity "flush-output" 0 1;
          if n = 1 then Libc.fflush t.libc (port_stream "flush-output" (arg 0))
          else Libc.flush_all t.libc;
          finish V.vvoid
      | Popen_input -> (
          let path = V.string_val gc (string_arg "open-input-file" 0) in
          match Libc.fopen t.libc ~path ~mode:"r" with
          | Ok s ->
              let id = t.next_port in
              t.next_port <- id + 1;
              Hashtbl.replace t.ports id s;
              finish (V.port_v id)
          | Error e ->
              err "open-input-file: %s: %s" path (Mv_ros.Syscalls.errno_name e))
      | Popen_output -> (
          let path = V.string_val gc (string_arg "open-output-file" 0) in
          match Libc.fopen t.libc ~path ~mode:"w" with
          | Ok s ->
              let id = t.next_port in
              t.next_port <- id + 1;
              Hashtbl.replace t.ports id s;
              finish (V.port_v id)
          | Error e ->
              err "open-output-file: %s: %s" path (Mv_ros.Syscalls.errno_name e))
      | Pclose_port ->
          let v = arg 0 in
          if not (V.is_port v) then err "close-port: expected a port";
          (match Hashtbl.find_opt t.ports (V.port_id v) with
          | Some s ->
              Libc.fclose t.libc s;
              Hashtbl.remove t.ports (V.port_id v)
          | None -> ());
          finish V.vvoid
      | Peof_objectp -> finish (V.bool_v (arg 0 = V.veof))
      | Pportp -> finish (V.bool_v (V.is_port (arg 0)))
      | _ -> assert false)
  | Pvoid -> finish V.vvoid
  | Perror ->
      let parts = List.map (fun v -> display_string t v) (args ()) in
      raise (Scheme_error (String.concat " " parts))
  | Pcurrent_seconds -> finish (fixr (int_of_float (t.env.Env.gettimeofday ())))
  | Pcollect_garbage ->
      Sgc.collect t.heap;
      finish V.vvoid
  | Pplace_spawn | Pplace_send | Pplace_recv | Pplace_wait -> (
      let ops =
        match t.place_ops with
        | Some ops -> ops
        | None -> err "places are not enabled in this instance"
      in
      match p with
      | Pplace_spawn ->
          let src = V.string_val gc (string_arg "place-spawn" 0) in
          (* Spawning a place costs a thread creation plus heap setup;
             charged by the engine's implementation. *)
          finish (fixr (ops.po_spawn src))
      | Pplace_send -> (
          let id = int_arg "place-send" 0 in
          match Places.encode t.cs (arg 1) with
          | m ->
              ops.po_send id m;
              finish V.vvoid
          | exception Places.Not_transferable ty ->
              err "place-send: %s values are not transferable" ty)
      | Pplace_recv ->
          let id = int_arg "place-receive" 0 in
          let m = ops.po_recv id in
          finish (Places.decode t.cs m)
      | Pplace_wait ->
          ops.po_wait (int_arg "place-wait" 0);
          finish V.vvoid
      | _ -> assert false)
  | Papply -> assert false (* handled in the main loop *)

(* --- main loop --- *)

(* Does this code ever capture its activation frame in a closure?  If not,
   a self-tail-call may overwrite the frame in place instead of allocating
   a fresh one — the JIT's loop optimization (Racket compiles such loops
   to registers; without this every loop iteration would allocate). *)
let code_no_capture (code : code) =
  if code.c_no_capture < 0 then
    code.c_no_capture <-
      (if Array.exists (function MkClosure _ -> true | _ -> false) code.c_instrs then 0
       else 1);
  code.c_no_capture = 1

let max_pooled = 4096

let alloc_frame t ~parent ~size =
  match Hashtbl.find_opt t.frame_pool size with
  | Some ({ contents = f :: rest } as cell) ->
      cell := rest;
      t.pool_count <- t.pool_count - 1;
      V.frame_set_parent t.heap f parent;
      f
  | Some _ | None -> V.frame t.heap ~parent ~size

let recycle_frame t f =
  if t.pool_count < max_pooled then begin
    let size = V.frame_size t.heap f in
    (match Hashtbl.find_opt t.frame_pool size with
    | Some cell -> cell := f :: !cell
    | None -> Hashtbl.replace t.frame_pool size (ref [ f ]));
    t.pool_count <- t.pool_count + 1
  end

(* At return from a no-capture activation, every frame from the current
   environment down to (and including) the activation's own frame is dead:
   recycle the chain. *)
let recycle_activation t (fr : frame) code =
  if code_no_capture code && fr.f_base <> V.nil then begin
    let rec walk f =
      if f <> V.nil then begin
        let parent = V.frame_parent t.heap f in
        recycle_frame t f;
        if f <> fr.f_base then walk parent
      end
    in
    walk fr.f_env
  end

let grow_frames t =
  if t.fp + 1 >= Array.length t.frames then begin
    let a =
      Array.init (2 * Array.length t.frames) (fun i ->
          if i < Array.length t.frames then t.frames.(i)
          else { f_code = 0; f_pc = 0; f_env = V.nil; f_base = V.nil })
    in
    t.frames <- a
  end

let ensure_globals t =
  if t.cs.nglobals > Array.length t.globals then begin
    let a = Array.make (max t.cs.nglobals (2 * Array.length t.globals)) V.vundef in
    Array.blit t.globals 0 a 0 (Array.length t.globals);
    t.globals <- a
  end

let jit_check t code =
  if not code.c_jitted then begin
    code.c_jitted <- true;
    (* Compile-on-first-call: translation work proportional to size. *)
    t.env.Env.work (120 + (Array.length code.c_instrs * 35));
    t.on_jit code
  end

(* Build the callee frame and enter it.  The arguments and the closure are
   on the stack (rooted) until we pop them.  Returns [true] if the call
   completed inline (variadic-primitive closures run without a frame). *)
let enter_call t argc ~tail =
  let clo = t.stack.(t.sp - argc - 1) in
  if not (V.is_closure t.heap clo) then
    err "application of a non-procedure: %s" (display_string t clo);
  let code_idx = V.closure_code t.heap clo in
  let code = t.cs.codes.(code_idx) in
  if code.c_arity = -1 then begin
    (* A variadic primitive in closure clothing: run it in place. *)
    let p = match code.c_instrs.(0) with PrimVarargs p -> p | _ -> assert false in
    exec_prim t p argc;
    let result = pop t in
    ignore (pop t) (* the closure *);
    push t result;
    true
  end
  else begin
  if code.c_arity <> argc then
    err "%s: arity mismatch: expected %d, got %d" code.c_name code.c_arity argc;
  jit_check t code;
  let cur = t.frames.(t.fp) in
  if
    tail && code_idx = cur.f_code && code_no_capture code
    && cur.f_env <> V.nil
    && V.frame_parent t.heap cur.f_env = V.closure_env t.heap clo
  then begin
    (* Self-tail-call whose frame never escapes: overwrite it in place
       (the compiled-loop fast path).  The new argument values are already
       on the stack, so reading order does not matter. *)
    for i = argc - 1 downto 0 do
      V.frame_set t.heap cur.f_env i (pop t)
    done;
    ignore (pop t) (* the closure *);
    cur.f_pc <- 0;
    false
  end
  else begin
  let env_frame = alloc_frame t ~parent:(V.closure_env t.heap clo) ~size:code.c_frame_size in
  for i = argc - 1 downto 0 do
    V.frame_set t.heap env_frame i (pop t)
  done;
  ignore (pop t) (* the closure *);
  (if tail then begin
     let fr = t.frames.(t.fp) in
     recycle_activation t fr t.cs.codes.(fr.f_code);
     fr.f_code <- code_idx;
     fr.f_pc <- 0;
     fr.f_env <- env_frame;
     fr.f_base <- env_frame
   end
   else begin
     grow_frames t;
     t.fp <- t.fp + 1;
     let fr = t.frames.(t.fp) in
     fr.f_code <- code_idx;
     fr.f_pc <- 0;
     fr.f_env <- env_frame;
     fr.f_base <- env_frame
   end);
  false
  end
  end

let lookup_env t env depth =
  let rec go env d = if d = 0 then env else go (V.frame_parent t.heap env) (d - 1) in
  go env depth

let tick t =
  t.tick_acc <- t.tick_acc + 1;
  if t.tick_acc land 2047 = 0 then begin
    t.env.Env.work (2048 * t.cycles_per_instr);
    t.on_tick t
  end

let run_code t idx =
  ensure_globals t;
  let base_fp = t.fp in
  grow_frames t;
  t.fp <- t.fp + 1;
  let fr0 = t.frames.(t.fp) in
  fr0.f_code <- idx;
  fr0.f_pc <- 0;
  fr0.f_env <- V.nil;
  fr0.f_base <- V.nil;
  jit_check t t.cs.codes.(idx);
  let result = ref V.vvoid in
  let running = ref true in
  while !running do
    let fr = t.frames.(t.fp) in
    let code = t.cs.codes.(fr.f_code) in
    let instr = code.c_instrs.(fr.f_pc) in
    fr.f_pc <- fr.f_pc + 1;
    t.n_instrs <- t.n_instrs + 1;
    tick t;
    match instr with
    | Imm v -> push t v
    | Const i -> push t t.cs.constants.(i)
    | Lref (d, i) -> push t (V.frame_ref t.heap (lookup_env t fr.f_env d) i)
    | Lset (d, i) -> V.frame_set t.heap (lookup_env t fr.f_env d) i (pop t)
    | Gref i ->
        ensure_globals t;
        let v = t.globals.(i) in
        if v = V.vundef then
          err "reference to undefined global (slot %d)" i
        else push t v
    | Gset i ->
        ensure_globals t;
        t.globals.(i) <- pop t
    | MkClosure ci -> push t (V.closure t.heap ~code:ci ~env:fr.f_env)
    | Call argc -> ignore (enter_call t argc ~tail:false)
    | TailCall argc ->
        if enter_call t argc ~tail:true then begin
          (* Inline (variadic-primitive) completion in tail position:
             perform the return ourselves. *)
          let v = pop t in
          t.fp <- t.fp - 1;
          if t.fp = base_fp then begin
            result := v;
            running := false
          end
          else push t v
        end
    | Ret ->
        let v = pop t in
        recycle_activation t fr code;
        fr.f_base <- V.nil;
        t.fp <- t.fp - 1;
        if t.fp = base_fp then begin
          result := v;
          running := false
        end
        else push t v
    | Jmp target -> fr.f_pc <- target
    | Jif target -> if pop t = V.vfalse then fr.f_pc <- target
    | Pop -> ignore (pop t)
    | Prim (Papply, 2) ->
        (* (apply f arglist): respread the list and call. *)
        let lst = pop t in
        let f = pop t in
        push t f;
        let rec spread count v =
          if v = V.nil then count
          else begin
            push t (V.car t.heap v);
            spread (count + 1) (V.cdr t.heap v)
          end
        in
        let argc = spread 0 lst in
        ignore (enter_call t argc ~tail:false)
    | Prim (p, n) -> exec_prim t p n
    | PushFrame n ->
        (* let entry: the init values sit on the stack (rooted) while the
           frame is allocated. *)
        let env_frame = alloc_frame t ~parent:fr.f_env ~size:n in
        for i = n - 1 downto 0 do
          V.frame_set t.heap env_frame i (pop t)
        done;
        fr.f_env <- env_frame
    | PopFrame ->
        let dead = fr.f_env in
        fr.f_env <- V.frame_parent t.heap dead;
        if code_no_capture code then recycle_frame t dead
    | PrimVarargs _ ->
        (* Only reachable by direct execution of a synthetic closure body,
           which enter_call intercepts. *)
        assert false
  done;
  (* Flush the un-accounted instruction remainder. *)
  t.env.Env.work (t.tick_acc land 2047 * t.cycles_per_instr);
  t.tick_acc <- 0;
  !result
