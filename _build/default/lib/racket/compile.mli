(** The bytecode compiler (the runtime's "JIT" front half).

    Covers the Scheme subset the Benchmarks Game programs use: [define]
    (top-level and internal), [lambda] (fixed arity), [let]/[let*]/
    [letrec]/named [let], [do], [if]/[cond]/[case]/[when]/[unless],
    [and]/[or], [begin], [set!], [quote], and direct application of the
    primitives in {!Code.prim_of_name}.  Fixed-arity primitives referenced
    as values are eta-expanded automatically. *)

exception Compile_error of string

val compile_toplevel : Code.cstate -> Sexp.t list -> int
(** Compile a program (a sequence of top-level forms) to one arity-0 code
    object; returns its code index.  The final form's value is the
    program's result. *)

val compile_expr_code : Code.cstate -> Sexp.t -> int
(** Compile a single expression to an arity-0 code object (REPL entry). *)
