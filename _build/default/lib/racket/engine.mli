(** The Racket-style runtime engine: embedding API, startup sequence, REPL
    and batch execution.

    Startup reproduces the OS-interaction profile of the real runtime
    (Figure 11): probing and mapping shared libraries (open/fstat/read/
    mmap/close), creating the GC heap (anonymous mmaps), installing the
    SIGSEGV write barrier (rt_sigaction/rt_sigprocmask), setting the
    interval timer, and resolving the collects paths (getcwd/stat).

    While Scheme code runs, a cooperative-thread scheduler tick fires
    periodically — checking the clock (gettimeofday), polling for I/O
    (poll) and sampling usage (getrusage) — matching the runtime-support
    chatter visible in Figure 12. *)

type t

val start : Mv_guest.Env.t -> t
(** Full runtime initialization, as [racket] (or a C program embedding the
    engine) would perform before reaching user code. *)

val vm : t -> Vm.t
val gc : t -> Sgc.t
val libc : t -> Mv_guest.Libc.t

val eval_string : t -> string -> Value.v
(** Parse, compile and run a program; returns the last form's value.
    @raise Vm.Scheme_error / @raise Compile.Compile_error on bad input. *)

val run_program : t -> string -> unit
(** Batch mode: evaluate a program for effect, then flush output. *)

val repl : t -> unit
(** Interactive mode: read one datum at a time from stdin, evaluate, print
    the result ([write] form, [void] suppressed), until EOF. *)

val finish : t -> unit
(** Flush buffered output (end of embedding). *)
