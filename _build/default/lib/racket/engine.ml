module Env = Mv_guest.Env
module Libc = Mv_guest.Libc

type place = {
  pl_thread : Env.thread_handle;
  pl_to_child : Places.channel;
  pl_to_parent : Places.channel;
}

type t = {
  env : Env.t;
  the_vm : Vm.t;
  heap : Sgc.t;
  the_libc : Libc.t;
  mutable jit_base : Mv_hw.Addr.t;
  mutable jit_used : int;
  mutable ticks : int;
  places : (int, place) Hashtbl.t;
  mutable next_place : int;
}

let jit_page_bytes = 64 * 1024

(* The scheme prelude: library procedures the compiler does not inline. *)
let prelude =
  {scheme|
(define (map f lst)
  (if (null? lst) '() (cons (f (car lst)) (map f (cdr lst)))))
(define (for-each f lst)
  (if (null? lst) (void) (begin (f (car lst)) (for-each f (cdr lst)))))
(define (filter pred lst)
  (cond ((null? lst) '())
        ((pred (car lst)) (cons (car lst) (filter pred (cdr lst))))
        (else (filter pred (cdr lst)))))
(define (fold-left f acc lst)
  (if (null? lst) acc (fold-left f (f acc (car lst)) (cdr lst))))
(define (fold-right f acc lst)
  (if (null? lst) acc (f (car lst) (fold-right f acc (cdr lst)))))
(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))
(define (last lst)
  (if (null? (cdr lst)) (car lst) (last (cdr lst))))
(define (list-copy lst)
  (if (null? lst) '() (cons (car lst) (list-copy (cdr lst)))))
(define (vector->list v)
  (let loop ((i (- (vector-length v) 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons (vector-ref v i) acc)))))
(define (list->vector lst)
  (let ((v (make-vector (length lst) 0)))
    (let loop ((i 0) (l lst))
      (if (null? l) v (begin (vector-set! v i (car l)) (loop (+ i 1) (cdr l)))))))
(define (assoc key lst)
  (cond ((null? lst) #f)
        ((equal? key (car (car lst))) (car lst))
        (else (assoc key (cdr lst)))))
(define (sort lst less?)
  (define (merge a b)
    (cond ((null? a) b)
          ((null? b) a)
          ((less? (car b) (car a)) (cons (car b) (merge a (cdr b))))
          (else (cons (car a) (merge (cdr a) b)))))
  (define (split l)
    (if (or (null? l) (null? (cdr l)))
        (list l '())
        (let ((rest (split (cdr (cdr l)))))
          (list (cons (car l) (car rest))
                (cons (car (cdr l)) (car (cdr rest)))))))
  (if (or (null? lst) (null? (cdr lst)))
      lst
      (let ((halves (split lst)))
        (merge (sort (car halves) less?) (sort (car (cdr halves)) less?)))))
;; hash tables: a vector of association-list buckets with resizing,
;; keyed by equal?; hash function over fixnums/symbols/strings/chars
(define (hash-code v)
  (cond ((integer? v) (abs v))
        ((symbol? v) (string-hash (symbol->string v)))
        ((string? v) (string-hash v))
        ((char? v) (char->integer v))
        ((boolean? v) (if v 1 0))
        ((pair? v) (modulo (+ (* 31 (hash-code (car v))) (hash-code (cdr v))) 536870912))
        ((null? v) 5381)
        (else 0)))
(define (string-hash s)
  (let loop ((i 0) (h 5381))
    (if (= i (string-length s))
        h
        (loop (+ i 1) (modulo (+ (* h 33) (char->integer (string-ref s i))) 536870912)))))
(define (make-hash) (vector 'hash 0 (make-vector 8 '())))
(define (hash? h) (and (vector? h) (= (vector-length h) 3) (eq? (vector-ref h 0) 'hash)))
(define (hash-count h) (vector-ref h 1))
(define (hash-set! h k v)
  (let ((buckets (vector-ref h 2)))
    (let ((idx (modulo (hash-code k) (vector-length buckets))))
      (let ((entry (assoc k (vector-ref buckets idx))))
        (if entry
            (set-cdr! entry v)
            (begin
              (vector-set! buckets idx (cons (cons k v) (vector-ref buckets idx)))
              (vector-set! h 1 (+ (vector-ref h 1) 1))
              (when (> (vector-ref h 1) (* 2 (vector-length buckets)))
                (hash-grow! h))))))))
(define (hash-grow! h)
  (let ((old (vector-ref h 2)))
    (let ((nb (make-vector (* 2 (vector-length old)) '())))
      (vector-set! h 2 nb)
      (let loop ((i 0))
        (when (< i (vector-length old))
          (for-each
           (lambda (entry)
             (let ((idx (modulo (hash-code (car entry)) (vector-length nb))))
               (vector-set! nb idx (cons entry (vector-ref nb idx)))))
           (vector-ref old i))
          (loop (+ i 1)))))))
(define (hash-ref h k default)
  (let ((buckets (vector-ref h 2)))
    (let ((entry (assoc k (vector-ref buckets (modulo (hash-code k) (vector-length buckets))))))
      (if entry (cdr entry) default))))
(define (hash-has-key? h k)
  (let ((buckets (vector-ref h 2)))
    (if (assoc k (vector-ref buckets (modulo (hash-code k) (vector-length buckets)))) #t #f)))
|scheme}

(* Shared libraries the dynamic linker probes and maps at startup; sizes
   loosely match the real runtime's dependencies. *)
let shared_libs =
  [
    ("/usr/lib/libracket3m.so", 4_700_000);
    ("/usr/lib/libmzgc.so", 310_000);
    ("/lib/libc.so.6", 1_900_000);
    ("/lib/libm.so.6", 1_100_000);
    ("/lib/libdl.so.2", 14_000);
    ("/lib/libpthread.so.0", 140_000);
  ]

let collects_paths =
  [
    "/usr/share/racket/collects";
    "/usr/share/racket/collects/racket";
    "/usr/share/racket/collects/scheme";
    "/usr/share/racket/collects/syntax";
    "/usr/share/racket/collects/compiler";
    "/usr/local/share/racket";
  ]

let load_shared_libs env =
  let k = env.Env.kernel in
  (* The .so files exist on disk before the process starts. *)
  List.iter
    (fun (path, _size) ->
      match Mv_ros.Vfs.resolve k.Mv_ros.Kernel.vfs ~cwd:"/" path with
      | Some _ -> ()
      | None -> Mv_ros.Vfs.add_file k.Mv_ros.Kernel.vfs ~path (String.make 832 'E'))
    shared_libs;
  List.iter
    (fun (path, size) ->
      if env.Env.access_path ~path then begin
        match env.Env.open_ ~path ~flags:[ Mv_ros.Syscalls.O_RDONLY ] with
        | Ok fd ->
            ignore (env.Env.fstat ~fd);
            let hdr = Bytes.create 832 in
            ignore (env.Env.read ~fd ~buf:hdr ~off:0 ~len:832);
            (* Map the text segment; the pages fault in lazily. *)
            ignore (env.Env.mmap ~len:size ~prot:Mv_ros.Mm.prot_rx ~kind:"lib");
            env.Env.close ~fd
        | Error _ -> ()
      end)
    shared_libs

let resolve_collects env =
  ignore (env.Env.getcwd ());
  List.iter (fun path -> ignore (env.Env.stat ~path)) collects_paths

let new_jit_page t =
  (* JIT code pages: map writable, fill, then flip to executable (W^X). *)
  let addr = t.env.Env.mmap ~len:jit_page_bytes ~prot:Mv_ros.Mm.prot_rw ~kind:"jit" in
  t.env.Env.store addr;
  t.env.Env.mprotect ~addr ~len:jit_page_bytes ~prot:Mv_ros.Mm.prot_rx;
  t.jit_base <- addr;
  t.jit_used <- 0

let on_jit t (code : Code.code) =
  let bytes = 64 + (Array.length code.Code.c_instrs * 18) in
  if t.jit_used + bytes > jit_page_bytes then new_jit_page t;
  t.jit_used <- t.jit_used + bytes

(* The cooperative green-thread scheduler tick: Racket's runtime checks
   the clock for thread quanta, polls for I/O readiness, and samples
   rusage for scheduling decisions (Figures 10-12's timer/poll/getrusage
   traffic). *)
let scheduler_tick t _vm =
  t.ticks <- t.ticks + 1;
  if t.ticks land 63 = 0 then ignore (t.env.Env.gettimeofday ());
  if t.ticks land 511 = 0 then ignore (t.env.Env.poll ~fds:[ 0 ] ~timeout_ms:0);
  if t.ticks land 1023 = 0 then ignore (t.env.Env.getrusage ())

(* --- places (parallel Scheme instances; see Places) --- *)

(* Wire the place primitives into a VM.  [parent] is [Some (inbox, outbox)]
   for a place child (reachable as id 0), [None] for the top-level VM. *)
let rec install_place_ops t vm ~parent =
  let lookup id =
    match Hashtbl.find_opt t.places id with
    | Some pl -> pl
    | None -> raise (Vm.Scheme_error (Printf.sprintf "no such place: %d" id))
  in
  Vm.set_place_ops vm
    {
      Vm.po_spawn = (fun src -> spawn_place t src);
      po_send =
        (fun id m ->
          if id = 0 then
            match parent with
            | Some (_, outbox) -> Places.send outbox m
            | None -> raise (Vm.Scheme_error "place-send: the main place has no parent")
          else Places.send (lookup id).pl_to_child m);
      po_recv =
        (fun id ->
          if id = 0 then
            match parent with
            | Some (inbox, _) -> Places.receive inbox
            | None -> raise (Vm.Scheme_error "place-receive: the main place has no parent")
          else Places.receive (lookup id).pl_to_parent);
      po_wait = (fun id -> t.env.Env.thread_join (lookup id).pl_thread);
    }

(* Start a place: a fresh VM + GC heap running [src] on a new thread —
   which, hybridized, is a new HRT execution group via the pthread
   override. *)
and spawn_place t src =
  let id = t.next_place in
  t.next_place <- t.next_place + 1;
  let to_child = Places.channel t.env and to_parent = Places.channel t.env in
  let thread =
    t.env.Env.thread_create ~name:(Printf.sprintf "place-%d" id) (fun () ->
        (* The place's own heap (no write barrier: the process-wide SIGSEGV
           handler belongs to the main place's collector). *)
        let heap = Sgc.create t.env ~protect_after_gc:false () in
        let libc = Libc.create t.env in
        let vm = Vm.create t.env libc heap in
        Vm.set_on_jit vm (on_jit t);
        Vm.set_on_tick vm (scheduler_tick t);
        install_place_ops t vm ~parent:(Some (to_child, to_parent));
        (try
           let forms = Sexp.parse_all (prelude ^ src) in
           ignore (Vm.run_code vm (Compile.compile_toplevel (Vm.cstate vm) forms))
         with
        | Vm.Scheme_error msg | Compile.Compile_error msg | Sexp.Parse_error msg ->
            Libc.fwrite libc (Libc.stderr_stream libc) ("place error: " ^ msg ^ "\n"));
        Libc.flush_all libc)
  in
  Hashtbl.replace t.places id
    { pl_thread = thread; pl_to_child = to_child; pl_to_parent = to_parent };
  id

let start env =
  ignore (env.Env.uname ());
  ignore (env.Env.getpid ());
  let the_libc = Libc.create env in
  load_shared_libs env;
  resolve_collects env;
  (* Runtime-internal malloc arena warm-up. *)
  let block = Libc.malloc the_libc (256 * 1024) in
  ignore block;
  (* The GC heap (SenoraGC): initial segments + write barrier. *)
  let heap = Sgc.create env () in
  Sgc.install_barrier heap;
  (* Green-thread preemption timer. *)
  env.Env.setitimer ~interval_us:10_000;
  let the_vm = Vm.create env the_libc heap in
  let t =
    {
      env;
      the_vm;
      heap;
      the_libc;
      jit_base = 0;
      jit_used = 0;
      ticks = 0;
      places = Hashtbl.create 8;
      next_place = 1;
    }
  in
  new_jit_page t;
  Vm.set_on_jit the_vm (on_jit t);
  Vm.set_on_tick the_vm (scheduler_tick t);
  install_place_ops t the_vm ~parent:None;
  (* Compile and run the prelude ("boot image"). *)
  let forms = Sexp.parse_all prelude in
  let idx = Compile.compile_toplevel (Vm.cstate the_vm) forms in
  ignore (Vm.run_code the_vm idx);
  t

let vm t = t.the_vm
let gc t = t.heap
let libc t = t.the_libc

let eval_string t src =
  let forms = Sexp.parse_all src in
  let idx = Compile.compile_toplevel (Vm.cstate t.the_vm) forms in
  Vm.run_code t.the_vm idx

let finish t = Libc.flush_all t.the_libc

let run_program t src =
  ignore (eval_string t src);
  finish t

let repl t =
  let rec loop () =
    Libc.fwrite t.the_libc (Libc.stdout_stream t.the_libc) "> ";
    Libc.flush_all t.the_libc;
    match Libc.stdin_gets t.the_libc with
    | None -> Libc.fwrite t.the_libc (Libc.stdout_stream t.the_libc) "\n"
    | Some line ->
        (if String.trim line <> "" then
           match eval_string t line with
           | v when v = Value.vvoid -> ()
           | v ->
               Libc.fwrite t.the_libc (Libc.stdout_stream t.the_libc)
                 (Vm.write_string_of t.the_vm v ^ "\n")
           | exception Vm.Scheme_error msg ->
               Libc.fwrite t.the_libc (Libc.stdout_stream t.the_libc) (msg ^ "\n")
           | exception Compile.Compile_error msg ->
               Libc.fwrite t.the_libc (Libc.stdout_stream t.the_libc) (msg ^ "\n")
           | exception Sexp.Parse_error msg ->
               Libc.fwrite t.the_libc (Libc.stdout_stream t.the_libc) (msg ^ "\n"));
        loop ()
  in
  loop ();
  finish t
