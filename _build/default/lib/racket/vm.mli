(** The bytecode interpreter.

    A stack machine over GC-heap values: activation frames are heap
    objects (so deep recursion and closures churn the collector, as in a
    real Scheme runtime), tail calls reuse the host call frame, and every
    executed instruction is charged to the simulated clock.  The VM's
    value stack, call frames, globals and constants are the GC roots.

    [on_tick] fires periodically (by instruction count) and is where the
    engine hangs its cooperative-thread scheduler work — the
    gettimeofday/poll/getrusage chatter of Figures 10-12. *)

exception Scheme_error of string

(** Hooks the engine installs to implement places (parallel Scheme
    instances, each in its own VM/heap/thread — paper future work). *)
type place_ops = {
  po_spawn : string -> int;  (** start a place from source; returns its id *)
  po_send : int -> Places.msg -> unit;  (** id 0 = my parent *)
  po_recv : int -> Places.msg;  (** blocking *)
  po_wait : int -> unit;
}

type t

val create : Mv_guest.Env.t -> Mv_guest.Libc.t -> Sgc.t -> t
val cstate : t -> Code.cstate
val gc : t -> Sgc.t
val set_on_tick : t -> (t -> unit) -> unit
val set_on_jit : t -> (Code.code -> unit) -> unit
(** Called the first time each code object is invoked (JIT compilation). *)

val set_place_ops : t -> place_ops -> unit
(** Enable the place primitives; without this they raise
    {!Scheme_error}. *)

val run_code : t -> int -> Value.v
(** Execute a code object (by index) with no arguments; returns its
    result.  @raise Scheme_error on runtime type/arity errors. *)

val instructions_executed : t -> int

val display_string : t -> Value.v -> string
(** [display]-style rendering. *)

val write_string_of : t -> Value.v -> string
(** [write]-style rendering (strings quoted, chars as literals). *)
