(** S-expression reader for the Scheme runtime. *)

type t =
  | Atom_sym of string
  | Atom_int of int
  | Atom_float of float
  | Atom_string of string
  | Atom_char of char
  | Atom_bool of bool
  | List of t list
  | Dotted of t list * t  (** improper list [(a b . c)]; quoted data only *)

exception Parse_error of string

val parse_all : string -> t list
(** Parse a whole program (sequence of datums).  Supports line comments
    ([;]), block comments ([#| ... |#]), [#t]/[#f], characters
    ([#\a], [#\space], [#\newline], [#\tab]), strings with escapes,
    integers, floats, symbols, [quote]/[quasiquote]/[unquote] sugar, and
    dotted pairs in data position.
    @raise Parse_error on malformed input. *)

val parse_one : string -> t
(** Parse exactly one datum. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
