type t =
  | Atom_sym of string
  | Atom_int of int
  | Atom_float of float
  | Atom_string of string
  | Atom_char of char
  | Atom_bool of bool
  | List of t list
  | Dotted of t list * t

exception Parse_error of string

let fail msg = raise (Parse_error msg)

type lexer = { src : string; mutable pos : int }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None
let advance lx = lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance lx;
      skip_ws lx
  | Some ';' ->
      let rec eat () =
        match peek lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            eat ()
      in
      eat ();
      skip_ws lx
  | Some '#'
    when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '|' ->
      lx.pos <- lx.pos + 2;
      let rec eat depth =
        if lx.pos + 1 >= String.length lx.src then fail "unterminated block comment"
        else if lx.src.[lx.pos] = '|' && lx.src.[lx.pos + 1] = '#' then begin
          lx.pos <- lx.pos + 2;
          if depth > 1 then eat (depth - 1)
        end
        else if lx.src.[lx.pos] = '#' && lx.src.[lx.pos + 1] = '|' then begin
          lx.pos <- lx.pos + 2;
          eat (depth + 1)
        end
        else begin
          advance lx;
          eat depth
        end
      in
      eat 1;
      skip_ws lx
  | Some _ | None -> ()

let is_delim = function
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> true
  | _ -> false

let read_token lx =
  let start = lx.pos in
  let rec go () =
    match peek lx with
    | Some c when not (is_delim c) ->
        advance lx;
        go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub lx.src start (lx.pos - start)

let atom_of_token tok =
  if tok = "" then fail "empty token"
  else
    match int_of_string_opt tok with
    | Some n -> Atom_int n
    | None -> (
        match float_of_string_opt tok with
        | Some f when String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok ->
            Atom_float f
        | _ -> Atom_sym (String.lowercase_ascii tok))

let read_string lx =
  advance lx (* opening quote *);
  let b = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | None -> fail "unterminated string"
    | Some '"' ->
        advance lx;
        Atom_string (Buffer.contents b)
    | Some '\\' -> (
        advance lx;
        match peek lx with
        | Some 'n' ->
            Buffer.add_char b '\n';
            advance lx;
            go ()
        | Some 't' ->
            Buffer.add_char b '\t';
            advance lx;
            go ()
        | Some 'r' ->
            Buffer.add_char b '\r';
            advance lx;
            go ()
        | Some ('"' | '\\') ->
            Buffer.add_char b (Option.get (peek lx));
            advance lx;
            go ()
        | Some c -> fail (Printf.sprintf "bad escape \\%c" c)
        | None -> fail "unterminated escape")
    | Some c ->
        Buffer.add_char b c;
        advance lx;
        go ()
  in
  go ()

let read_hash lx =
  advance lx (* '#' *);
  match peek lx with
  | Some 't' ->
      advance lx;
      Atom_bool true
  | Some 'f' ->
      advance lx;
      Atom_bool false
  | Some '\\' -> (
      advance lx;
      (* Character: a named char or a single char. *)
      let start = lx.pos in
      (match peek lx with
      | Some _ -> advance lx
      | None -> fail "bad character literal");
      let rec extend () =
        match peek lx with
        | Some c when not (is_delim c) ->
            advance lx;
            extend ()
        | Some _ | None -> ()
      in
      extend ();
      let name = String.sub lx.src start (lx.pos - start) in
      match String.lowercase_ascii name with
      | "space" -> Atom_char ' '
      | "newline" | "linefeed" -> Atom_char '\n'
      | "tab" -> Atom_char '\t'
      | "return" -> Atom_char '\r'
      | "nul" | "null" -> Atom_char '\000'
      | s when String.length s = 1 -> Atom_char s.[0]
      | s -> fail ("unknown character literal #\\" ^ s))
  | Some c -> fail (Printf.sprintf "unsupported # syntax: #%c" c)
  | None -> fail "dangling #"

let rec read_datum lx =
  skip_ws lx;
  match peek lx with
  | None -> fail "unexpected end of input"
  | Some '(' ->
      advance lx;
      read_list lx []
  | Some '[' ->
      advance lx;
      read_list lx []
  | Some (')' | ']') -> fail "unexpected )"
  | Some '"' -> read_string lx
  | Some '#' -> read_hash lx
  | Some '\'' ->
      advance lx;
      List [ Atom_sym "quote"; read_datum lx ]
  | Some '`' ->
      advance lx;
      List [ Atom_sym "quasiquote"; read_datum lx ]
  | Some ',' ->
      advance lx;
      List [ Atom_sym "unquote"; read_datum lx ]
  | Some _ -> atom_of_token (read_token lx)

and read_list lx acc =
  skip_ws lx;
  match peek lx with
  | None -> fail "unterminated list"
  | Some (')' | ']') ->
      advance lx;
      List (List.rev acc)
  | Some '.'
    when acc <> []
         && (lx.pos + 1 >= String.length lx.src || is_delim lx.src.[lx.pos + 1]) ->
      advance lx;
      let tail = read_datum lx in
      skip_ws lx;
      (match peek lx with
      | Some (')' | ']') ->
          advance lx;
          Dotted (List.rev acc, tail)
      | _ -> fail "malformed dotted pair")
  | Some _ -> read_list lx (read_datum lx :: acc)

let parse_all src =
  let lx = { src; pos = 0 } in
  let rec go acc =
    skip_ws lx;
    if lx.pos >= String.length src then List.rev acc else go (read_datum lx :: acc)
  in
  go []

let parse_one src =
  match parse_all src with
  | [ d ] -> d
  | [] -> fail "no datum"
  | _ -> fail "more than one datum"

let rec pp ppf = function
  | Atom_sym s -> Format.pp_print_string ppf s
  | Atom_int n -> Format.pp_print_int ppf n
  | Atom_float f -> Format.fprintf ppf "%g" f
  | Atom_string s -> Format.fprintf ppf "%S" s
  | Atom_char c -> Format.fprintf ppf "#\\%c" c
  | Atom_bool b -> Format.pp_print_string ppf (if b then "#t" else "#f")
  | List items ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        items
  | Dotted (items, tail) ->
      Format.fprintf ppf "(%a . %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        items pp tail

let to_string t = Format.asprintf "%a" pp t
