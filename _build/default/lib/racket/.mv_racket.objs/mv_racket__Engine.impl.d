lib/racket/engine.ml: Array Bytes Code Compile Hashtbl List Mv_guest Mv_hw Mv_ros Places Printf Sexp Sgc String Value Vm
