lib/racket/compile.mli: Code Sexp
