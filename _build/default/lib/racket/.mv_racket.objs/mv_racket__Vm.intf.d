lib/racket/vm.mli: Code Mv_guest Places Sgc Value
