lib/racket/sgc.mli: Mv_guest Mv_hw
