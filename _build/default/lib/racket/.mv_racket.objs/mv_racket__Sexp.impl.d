lib/racket/sexp.ml: Buffer Format List Option Printf String
