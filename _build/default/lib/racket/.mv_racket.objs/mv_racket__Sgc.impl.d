lib/racket/sgc.ml: Addr Array Bytes Hashtbl List Mv_guest Mv_hw Mv_ros Obj Printf Stack
