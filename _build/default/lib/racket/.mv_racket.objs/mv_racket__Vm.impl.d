lib/racket/vm.ml: Array Buffer Char Code Float Hashtbl List Mv_guest Mv_ros Places Printf Sgc String Value
