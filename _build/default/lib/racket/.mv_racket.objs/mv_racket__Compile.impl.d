lib/racket/compile.ml: Array Code List Printf Sexp String Value
