lib/racket/value.mli: Sgc
