lib/racket/places.mli: Code Mv_guest Value
