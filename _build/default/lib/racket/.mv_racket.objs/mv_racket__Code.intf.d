lib/racket/code.mli: Format Hashtbl Sgc Value
