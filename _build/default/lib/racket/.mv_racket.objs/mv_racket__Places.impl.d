lib/racket/places.ml: Array Code List Mv_engine Mv_guest Mv_ros Queue Value
