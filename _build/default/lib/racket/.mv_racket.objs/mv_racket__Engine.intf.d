lib/racket/engine.mli: Mv_guest Sgc Value Vm
