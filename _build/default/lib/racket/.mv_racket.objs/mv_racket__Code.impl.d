lib/racket/code.ml: Array Format Hashtbl List Sgc Value
