lib/racket/sexp.mli: Format
