lib/racket/value.ml: Char Int64 List Sgc String
