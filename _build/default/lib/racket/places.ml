module V = Value
module Exec = Mv_engine.Exec

type msg =
  | M_int of int
  | M_float of float
  | M_bool of bool
  | M_char of char
  | M_string of string
  | M_sym of string
  | M_nil
  | M_void
  | M_list of msg list
  | M_vector of msg array

exception Not_transferable of string

let rec encode cs v =
  let gc = cs.Code.gc in
  if V.is_fixnum v then M_int (V.fixnum_val v)
  else if V.is_sym v then M_sym (Code.sym_name cs (V.sym_id v))
  else if V.is_char v then M_char (V.char_val v)
  else if v = V.nil then M_nil
  else if v = V.vtrue then M_bool true
  else if v = V.vfalse then M_bool false
  else if v = V.vvoid then M_void
  else if V.is_flonum gc v then M_float (V.flonum_val gc v)
  else if V.is_string gc v then M_string (V.string_val gc v)
  else if V.is_pair gc v then M_list (List.map (encode cs) (V.to_list gc v))
  else if V.is_vector gc v then
    M_vector (Array.init (V.vector_length gc v) (fun i -> encode cs (V.vector_ref gc v i)))
  else raise (Not_transferable (V.type_name gc v))

let rec decode cs m =
  let gc = cs.Code.gc in
  match m with
  | M_int n -> V.fixnum n
  | M_float f -> V.flonum gc f
  | M_bool b -> V.bool_v b
  | M_char c -> V.char_v c
  | M_string s -> V.string_v gc s
  | M_sym s -> V.sym (Code.intern cs s)
  | M_nil -> V.nil
  | M_void -> V.vvoid
  | M_list items ->
      (* Build back to front; GC cannot trigger because decode allocates
         into the receiving VM's heap whose roots cover the stack only —
         so protect the spine in a constant slot. *)
      let slot = Code.add_constant cs V.nil in
      List.iter
        (fun item ->
          let v = decode cs item in
          cs.Code.constants.(slot) <- V.cons gc v cs.Code.constants.(slot))
        (List.rev items);
      let result = cs.Code.constants.(slot) in
      cs.Code.constants.(slot) <- V.nil;
      result
  | M_vector items ->
      let slot = Code.add_constant cs V.nil in
      let vec = V.make_vector gc (Array.length items) (V.fixnum 0) in
      cs.Code.constants.(slot) <- vec;
      Array.iteri (fun i item -> V.vector_set gc vec i (decode cs item)) items;
      cs.Code.constants.(slot) <- V.nil;
      vec

type channel = {
  env : Mv_guest.Env.t;
  q : msg Queue.t;
  mutable waiter : (msg -> unit) option;
}

let channel env = { env; q = Queue.create (); waiter = None }

let send ch m =
  (* Copy cost roughly proportional to the message size. *)
  ch.env.Mv_guest.Env.work 200;
  match ch.waiter with
  | Some wake ->
      ch.waiter <- None;
      wake m
  | None -> Queue.add m ch.q

let receive ch =
  match Queue.take_opt ch.q with
  | Some m -> m
  | None ->
      Exec.block ch.env.Mv_guest.Env.kernel.Mv_ros.Kernel.machine.Mv_engine.Machine.exec
        ~reason:"place-receive" (fun ~now:_ ~wake ->
          if ch.waiter <> None then failwith "Places: concurrent receivers on one channel";
          ch.waiter <- Some wake)
