(** Tagged Scheme values over the SGC heap.

    Values are machine words.  Immediates carry their payload in the word;
    everything else is a pointer (low three bits zero) to a heap object
    whose header encodes a type tag and payload size:

    {v
    bit 0 = 1          fixnum (61-bit, two's complement)
    bits 0..2 = 010    interned symbol (id in the upper bits)
    bits 0..2 = 100    character (code in the upper bits)
    bits 0..2 = 110    special constant / port (index in the upper bits)
    bits 0..2 = 000    heap pointer
    v} *)

type v = int

(** {1 Immediates} *)

val fixnum : int -> v
val is_fixnum : v -> bool
val fixnum_val : v -> int
val sym : int -> v
val is_sym : v -> bool
val sym_id : v -> int
val char_v : char -> v
val is_char : v -> bool
val char_val : v -> char
val nil : v
val vtrue : v
val vfalse : v
val vvoid : v
val veof : v
val vundef : v
val bool_v : bool -> v
val is_truthy : v -> bool
(** Everything except [#f] is true, as in Scheme. *)

val port_v : int -> v
val is_port : v -> bool
val port_id : v -> int

(** {1 Heap object tags} *)

val tag_pair : int
val tag_vector : int
val tag_string : int
val tag_flonum : int
val tag_closure : int
val tag_box : int
val tag_frame : int

val register_scannable : Sgc.t -> unit
(** Tell the collector which tags hold values in their payloads. *)

(** {1 Constructors and accessors (over a heap)} *)

val cons : Sgc.t -> v -> v -> v
val is_pair : Sgc.t -> v -> bool
val car : Sgc.t -> v -> v
val cdr : Sgc.t -> v -> v
val set_car : Sgc.t -> v -> v -> unit
val set_cdr : Sgc.t -> v -> v -> unit
val list_of : Sgc.t -> v list -> v
val to_list : Sgc.t -> v -> v list
(** @raise Invalid_argument on improper lists. *)

val make_vector : Sgc.t -> int -> v -> v
val is_vector : Sgc.t -> v -> bool
val vector_length : Sgc.t -> v -> int
val vector_ref : Sgc.t -> v -> int -> v
val vector_set : Sgc.t -> v -> int -> v -> unit

val string_v : Sgc.t -> string -> v
val is_string : Sgc.t -> v -> bool
val string_length : Sgc.t -> v -> int
val string_val : Sgc.t -> v -> string
val string_ref : Sgc.t -> v -> int -> char
val string_set : Sgc.t -> v -> int -> char -> unit

val flonum : Sgc.t -> float -> v
val is_flonum : Sgc.t -> v -> bool
val flonum_val : Sgc.t -> v -> float

val closure : Sgc.t -> code:int -> env:v -> v
val is_closure : Sgc.t -> v -> bool
val closure_code : Sgc.t -> v -> int
val closure_env : Sgc.t -> v -> v

val box_v : Sgc.t -> v -> v
val is_box : Sgc.t -> v -> bool
val unbox : Sgc.t -> v -> v
val set_box : Sgc.t -> v -> v -> unit

val frame : Sgc.t -> parent:v -> size:int -> v
val frame_parent : Sgc.t -> v -> v
val frame_set_parent : Sgc.t -> v -> v -> unit
val frame_ref : Sgc.t -> v -> int -> v
val frame_set : Sgc.t -> v -> int -> v -> unit
val frame_size : Sgc.t -> v -> int

(** {1 Generic operations} *)

val eqv : Sgc.t -> v -> v -> bool
(** Pointer/immediate identity, with flonum value comparison. *)

val equal : Sgc.t -> v -> v -> bool
(** Structural equality. *)

val type_name : Sgc.t -> v -> string
