type fd_entry = { mutable pos : int; node : Vfs.node; path : string }

type t = {
  pid : int;
  pname : string;
  mm : Mm.t;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  signals : Signal.t;
  rusage : Rusage.t;
  syscall_counts : Mv_util.Histogram.t;
  mutable cwd : string;
  mutable threads : Mv_engine.Exec.thread list;
  mutable exited : bool;
  mutable exit_code : int;
  stdout_buf : Buffer.t;
  stdin : Vfs.stream_in;
  mutable exit_hooks : (t -> unit) list;
  mutable gdt_image : int;
  mutable fs_base : Mv_hw.Addr.t;
}

let stack_top = 0x7fff_ff80_0000
let stack_size = 8 * 1024 * 1024

let create machine ~pid ~name ?stdout_tee () =
  let mm = Mm.create machine in
  Mm.add_fixed mm ~addr:(stack_top - stack_size) ~len:stack_size ~prot:Mm.prot_rw
    ~kind:"stack";
  (* A small program image: text (read-exec) and data (read-write). *)
  Mm.add_fixed mm ~addr:0x0040_0000 ~len:(2 * 1024 * 1024) ~prot:Mm.prot_rx ~kind:"text";
  Mm.add_fixed mm ~addr:0x0060_0000 ~len:(1024 * 1024) ~prot:Mm.prot_rw ~kind:"data";
  let stdout_buf = Buffer.create 4096 in
  let stdin = Vfs.stream_in () in
  let tee = match stdout_tee with Some f -> f | None -> fun _ -> () in
  let p =
    {
      pid;
      pname = name;
      mm;
      fds = Hashtbl.create 16;
      next_fd = 3;
      signals = Signal.create ();
      rusage = Rusage.create ();
      syscall_counts = Mv_util.Histogram.create ();
      cwd = "/";
      threads = [];
      exited = false;
      exit_code = 0;
      stdout_buf;
      stdin;
      exit_hooks = [];
      gdt_image = pid * 100;  (* distinct per process; identity only *)
      fs_base = stack_top - 0x1000;
    }
  in
  Hashtbl.replace p.fds 0 { pos = 0; node = Vfs.Console_in stdin; path = "/dev/stdin" };
  Hashtbl.replace p.fds 1
    { pos = 0; node = Vfs.Console_out (stdout_buf, tee); path = "/dev/stdout" };
  Hashtbl.replace p.fds 2
    { pos = 0; node = Vfs.Console_out (stdout_buf, tee); path = "/dev/stderr" };
  p

let alloc_fd t node ~path =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.replace t.fds fd { pos = 0; node; path };
  fd

let fd t n = Hashtbl.find_opt t.fds n

let close_fd t n =
  if Hashtbl.mem t.fds n then begin
    Hashtbl.remove t.fds n;
    true
  end
  else false

let stdout_contents t = Buffer.contents t.stdout_buf
let add_exit_hook t hook = t.exit_hooks <- hook :: t.exit_hooks
