(** System-call handlers.

    Each function implements the {e kernel side} of one Linux-ABI system
    call: it counts the call in the process's histogram, charges the
    handler's cycles as system time, and performs the operation.  The
    {e entry} cost is the caller's business — the native path charges a
    SYSCALL trap, the Multiverse path charges the Nautilus stub plus an
    event-channel round trip (paper, Figure 9) — so these handlers can be
    invoked locally or from a forwarding partner thread unchanged.

    The vdso calls ([getpid], [gettimeofday], [clock_gettime]) are the
    exception: they run entirely in user space (paper, Section 5). *)

type errno = ENOENT | EBADF | EINVAL | ENOSYS | ENOTDIR | EAGAIN

val errno_name : errno -> string

type stat_info = { st_size : int; st_is_dir : bool }

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND

(** {1 File I/O} *)

val openat : Kernel.t -> Process.t -> path:string -> flags:open_flag list -> (int, errno) result
val close : Kernel.t -> Process.t -> fd:int -> (unit, errno) result

val read :
  Kernel.t -> Process.t -> fd:int -> buf:Bytes.t -> off:int -> len:int -> (int, errno) result
(** Blocks (console input) until data or EOF; returns bytes read, 0 at EOF. *)

val write :
  Kernel.t -> Process.t -> fd:int -> buf:Bytes.t -> off:int -> len:int -> (int, errno) result

val stat : Kernel.t -> Process.t -> path:string -> (stat_info, errno) result
val fstat : Kernel.t -> Process.t -> fd:int -> (stat_info, errno) result
val lseek : Kernel.t -> Process.t -> fd:int -> pos:int -> (int, errno) result
val access_path : Kernel.t -> Process.t -> path:string -> (unit, errno) result
val getcwd : Kernel.t -> Process.t -> string
val ioctl : Kernel.t -> Process.t -> fd:int -> req:int -> (int, errno) result
val readlink : Kernel.t -> Process.t -> path:string -> (string, errno) result

(** {1 Memory} *)

val mmap : Kernel.t -> Process.t -> len:int -> prot:Mm.prot -> kind:string -> (Mv_hw.Addr.t, errno) result
val munmap : Kernel.t -> Process.t -> addr:Mv_hw.Addr.t -> len:int -> (unit, errno) result
val mprotect : Kernel.t -> Process.t -> addr:Mv_hw.Addr.t -> len:int -> prot:Mm.prot -> (unit, errno) result
val brk : Kernel.t -> Process.t -> Mv_hw.Addr.t option -> Mv_hw.Addr.t

(** {1 Signals} *)

val rt_sigaction : Kernel.t -> Process.t -> signo:Signal.signo -> handler:Signal.handler -> unit
val rt_sigprocmask : Kernel.t -> Process.t -> block:bool -> signo:Signal.signo -> unit

(** {1 Time and accounting} *)

val gettimeofday : Kernel.t -> Process.t -> float
(** vdso fast path: charged as user time, no kernel entry. *)

val clock_gettime : Kernel.t -> Process.t -> float
(** vdso fast path. *)

val getpid : Kernel.t -> Process.t -> int
(** vdso-style fast path (matching the paper's Figure 9 grouping). *)

val getrusage : Kernel.t -> Process.t -> Rusage.t
val setitimer : Kernel.t -> Process.t -> interval_us:int -> unit
val nanosleep : Kernel.t -> Process.t -> ns:float -> unit
val poll : Kernel.t -> Process.t -> fds:int list -> timeout_ms:int -> int
(** Number of ready descriptors; blocks up to the timeout when none are
    ready and the timeout is positive. *)

(** {1 Processes and threads} *)

val uname : Kernel.t -> Process.t -> string
val sched_yield : Kernel.t -> Process.t -> unit
val clone : Kernel.t -> Process.t -> name:string -> (unit -> unit) -> Mv_engine.Exec.thread
val futex_wait : Kernel.t -> Process.t -> uaddr:int -> unit
val futex_wake : Kernel.t -> Process.t -> uaddr:int -> all:bool -> int
val execve : Kernel.t -> Process.t -> path:string -> (unit, errno) result
(** Always [Error ENOSYS] in this kernel; present because Multiverse must
    {e reject} it in HRT context (paper, Section 4.2) and we test both
    layers. *)

val exit_group : Kernel.t -> Process.t -> code:int -> unit
(** Does not return when called from a thread of the process. *)
