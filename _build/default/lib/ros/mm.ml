open Mv_hw
module Machine = Mv_engine.Machine
module IntMap = Map.Make (Int)

type prot = { pr_read : bool; pr_write : bool; pr_exec : bool }

let prot_none = { pr_read = false; pr_write = false; pr_exec = false }
let prot_r = { pr_read = true; pr_write = false; pr_exec = false }
let prot_rw = { pr_read = true; pr_write = true; pr_exec = false }
let prot_rx = { pr_read = true; pr_write = false; pr_exec = true }

type vma = { v_start : int; v_npages : int; v_prot : prot; v_kind : string }

type fault_outcome = Fixed_minor | Segv of Signal.siginfo

type t = {
  machine : Machine.t;
  pt : Page_table.t;
  mutable vmas : vma IntMap.t;  (* keyed by first page *)
  frames : (int, int) Hashtbl.t;  (* resident: page -> frame *)
  mutable mmap_next : int;  (* next page for anonymous mmap, grows down *)
  mutable brk_base : int;  (* page *)
  mutable brk_end : Addr.t;
  mutable rss_pages : int;
  mutable maxrss_pages : int;
}

let brk_base_addr = 0x0200_0000
let mmap_top_page = Addr.page_of 0x7f80_0000_0000

let create machine =
  {
    machine;
    pt = Page_table.create ();
    vmas = IntMap.empty;
    frames = Hashtbl.create 1024;
    mmap_next = mmap_top_page;
    brk_base = Addr.page_of brk_base_addr;
    brk_end = brk_base_addr;
    rss_pages = 0;
    maxrss_pages = 0;
  }

let page_table t = t.pt

let pte_flags_of_prot prot ~cow =
  let f = Page_table.f_present lor Page_table.f_user in
  let f = if prot.pr_write && not cow then f lor Page_table.f_writable else f in
  let f = if not prot.pr_exec then f lor Page_table.f_nx else f in
  if cow then f lor Page_table.f_cow else f

let find_vma_page t page =
  match IntMap.find_last_opt (fun s -> s <= page) t.vmas with
  | Some (s, v) when page < s + v.v_npages -> Some v
  | Some _ | None -> None

let find_vma t addr = find_vma_page t (Addr.page_of addr)

let note_rss t delta =
  t.rss_pages <- t.rss_pages + delta;
  if t.rss_pages > t.maxrss_pages then t.maxrss_pages <- t.rss_pages

let drop_page t page =
  match Hashtbl.find_opt t.frames page with
  | None -> ()
  | Some frame ->
      (* Kill the PTE before detaching so stale TLB entries self-invalidate
         (they observe the cleared present bit). *)
      (match Page_table.lookup t.pt (Addr.base_of_page page) with
      | Some pte -> pte.Page_table.pte_flags <- 0
      | None -> ());
      ignore (Page_table.unmap t.pt (Addr.base_of_page page));
      Hashtbl.remove t.frames page;
      if frame <> t.machine.Machine.zero_frame then
        Phys_mem.free t.machine.Machine.phys frame;
      note_rss t (-1)

(* Split every VMA overlapping [p0, p1) so that the range is covered by
   whole VMAs, then hand each covered VMA to [action]. *)
let over_range t ~p0 ~p1 action =
  let overlapping =
    IntMap.to_seq t.vmas
    |> Seq.filter (fun (s, v) -> s < p1 && s + v.v_npages > p0)
    |> List.of_seq
  in
  List.iter
    (fun (s, v) ->
      t.vmas <- IntMap.remove s t.vmas;
      let e = s + v.v_npages in
      let lo = max s p0 and hi = min e p1 in
      if s < lo then
        t.vmas <- IntMap.add s { v with v_npages = lo - s } t.vmas;
      if hi < e then
        t.vmas <- IntMap.add hi { v with v_start = hi; v_npages = e - hi } t.vmas;
      action { v with v_start = lo; v_npages = hi - lo })
    overlapping

let pages_of_len len = (len + Addr.page_size - 1) / Addr.page_size

let mmap t ~len ~prot ~kind =
  if len <= 0 then invalid_arg "Mm.mmap: len <= 0";
  let npages = pages_of_len len in
  t.mmap_next <- t.mmap_next - npages;
  let start = t.mmap_next in
  t.vmas <- IntMap.add start { v_start = start; v_npages = npages; v_prot = prot; v_kind = kind } t.vmas;
  Addr.base_of_page start

let munmap t addr ~len =
  let p0 = Addr.page_of addr in
  let p1 = p0 + pages_of_len len in
  let freed = ref 0 in
  over_range t ~p0 ~p1 (fun v ->
      for page = v.v_start to v.v_start + v.v_npages - 1 do
        if Hashtbl.mem t.frames page then incr freed;
        drop_page t page
      done);
  !freed

let mprotect t addr ~len prot =
  let p0 = Addr.page_of addr in
  let p1 = p0 + pages_of_len len in
  let touched = ref 0 in
  over_range t ~p0 ~p1 (fun v ->
      t.vmas <- IntMap.add v.v_start { v with v_prot = prot } t.vmas;
      for page = v.v_start to v.v_start + v.v_npages - 1 do
        match Page_table.lookup t.pt (Addr.base_of_page page) with
        | Some pte ->
            let cow = Page_table.has pte.Page_table.pte_flags Page_table.f_cow in
            pte.Page_table.pte_flags <- pte_flags_of_prot prot ~cow;
            incr touched
        | None -> ()
      done);
  !touched

let add_fixed t ~addr ~len ~prot ~kind =
  let p0 = Addr.page_of addr in
  let npages = pages_of_len len in
  let overlap =
    IntMap.exists (fun s v -> s < p0 + npages && s + v.v_npages > p0) t.vmas
  in
  if overlap then invalid_arg "Mm.add_fixed: overlaps existing VMA";
  t.vmas <- IntMap.add p0 { v_start = p0; v_npages = npages; v_prot = prot; v_kind = kind } t.vmas

let brk t request =
  match request with
  | None -> t.brk_end
  | Some want ->
      let cur_pages = pages_of_len (t.brk_end - brk_base_addr) in
      let want = max want brk_base_addr in
      let want_pages = pages_of_len (want - brk_base_addr) in
      if want_pages > cur_pages then begin
        let start = t.brk_base + cur_pages in
        t.vmas <-
          IntMap.add start
            { v_start = start; v_npages = want_pages - cur_pages; v_prot = prot_rw; v_kind = "heap" }
            t.vmas
      end
      else if want_pages < cur_pages then
        ignore
          (munmap t
             (Addr.base_of_page (t.brk_base + want_pages))
             ~len:((cur_pages - want_pages) * Addr.page_size));
      t.brk_end <- want;
      t.brk_end

let segv addr ~write = Segv { Signal.si_signo = Signal.Sigsegv; si_addr = addr; si_write = write }

let handle_fault t addr ~write =
  let machine = t.machine in
  let costs = machine.Machine.costs in
  let page = Addr.page_of addr in
  match find_vma_page t page with
  | None -> segv addr ~write
  | Some v -> (
      let allowed = if write then v.v_prot.pr_write else v.v_prot.pr_read in
      if not allowed then segv addr ~write
      else
        match Hashtbl.find_opt t.frames page with
        | None ->
            if write then begin
              (* First write: allocate a private zeroed frame. *)
              let frame = Phys_mem.alloc machine.Machine.phys Phys_mem.Ros_region in
              Machine.charge machine costs.Costs.demand_page;
              Page_table.map t.pt (Addr.base_of_page page) ~frame
                ~flags:(pte_flags_of_prot v.v_prot ~cow:false);
              Hashtbl.replace t.frames page frame;
              note_rss t 1;
              Fixed_minor
            end
            else begin
              (* First read: share the zero page copy-on-write. *)
              Machine.charge machine (costs.Costs.demand_page / 2);
              Page_table.map t.pt (Addr.base_of_page page)
                ~frame:machine.Machine.zero_frame
                ~flags:(pte_flags_of_prot v.v_prot ~cow:true);
              Hashtbl.replace t.frames page machine.Machine.zero_frame;
              note_rss t 1;
              Fixed_minor
            end
        | Some frame when write && frame = machine.Machine.zero_frame ->
            (* COW break away from the shared zero page. *)
            let nframe = Phys_mem.alloc machine.Machine.phys Phys_mem.Ros_region in
            Machine.charge machine costs.Costs.cow_copy;
            Page_table.map t.pt (Addr.base_of_page page) ~frame:nframe
              ~flags:(pte_flags_of_prot v.v_prot ~cow:false);
            Hashtbl.replace t.frames page nframe;
            Fixed_minor
        | Some _ ->
            (* Resident and permitted by the VMA, yet it faulted: the PTE
               disagrees (e.g. a racing protect); refresh it. *)
            (match Page_table.lookup t.pt (Addr.base_of_page page) with
            | Some pte -> pte.Page_table.pte_flags <- pte_flags_of_prot v.v_prot ~cow:false
            | None -> ());
            Fixed_minor)

let is_resident t addr = Hashtbl.mem t.frames (Addr.page_of addr)
let rss_kb t = t.rss_pages * Addr.page_size / 1024
let maxrss_kb t = t.maxrss_pages * Addr.page_size / 1024
let vma_count t = IntMap.cardinal t.vmas

let mapped_bytes t =
  IntMap.fold (fun _ v acc -> acc + (v.v_npages * Addr.page_size)) t.vmas 0

let release t =
  let pages = Hashtbl.fold (fun page _ acc -> page :: acc) t.frames [] in
  List.iter (fun page -> drop_page t page) pages;
  t.vmas <- IntMap.empty
