(** Per-process resource accounting, mirroring what [/usr/bin/time] and
    [getrusage(2)] report — the columns of Figure 10 in the paper:
    user/system time, maximum resident set size, page faults, and context
    switches. *)

type t = {
  mutable utime : Mv_util.Cycles.t;  (** cycles spent in user code *)
  mutable stime : Mv_util.Cycles.t;  (** cycles spent in the kernel on this process's behalf *)
  mutable maxrss_kb : int;
  mutable minflt : int;  (** faults serviced without I/O (all of ours) *)
  mutable majflt : int;
  mutable nvcsw : int;  (** voluntary context switches *)
  mutable nivcsw : int;  (** involuntary context switches *)
}

val create : unit -> t
val note_rss : t -> kb:int -> unit
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] (times and faults sum, maxrss
    takes the max). *)

val pp : Format.formatter -> t -> unit
