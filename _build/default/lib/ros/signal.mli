(** POSIX-style signals.

    The Racket garbage collector's write barrier works by [mprotect]ing
    heap pages and fielding the resulting SIGSEGVs (paper, Section 5), so
    faithful signal registration/delivery/return is a load-bearing part of
    the reproduction.  Handlers are guest OCaml closures; delivery charges
    the frame-building and [rt_sigreturn] costs. *)

type signo = Sigsegv | Sigvtalrm | Sigint | Sigusr1 | Sigusr2 | Sigchld

val name : signo -> string

type siginfo = {
  si_signo : signo;
  si_addr : Mv_hw.Addr.t;  (** faulting address for SIGSEGV, else 0 *)
  si_write : bool;  (** was the faulting access a write *)
}

type handler = Default | Ignore | Handler of (siginfo -> unit)

type t
(** Per-process signal state. *)

val create : unit -> t
val set_action : t -> signo -> handler -> unit
val action : t -> signo -> handler
val registered : t -> signo -> bool
(** Is a user handler installed? *)

val block : t -> signo -> unit
val unblock : t -> signo -> unit
val is_blocked : t -> signo -> bool
val push_pending : t -> siginfo -> unit
val take_pending : t -> siginfo option
(** Earliest pending unblocked signal, if any. *)
