type file = { mutable data : Bytes.t; mutable size : int }

type stream_in = {
  buf : Buffer.t;
  mutable pos : int;
  mutable eof : bool;
  mutable on_data : (unit -> unit) list;
}

type node =
  | File of file
  | Dir of (string, node) Hashtbl.t
  | Dev_null
  | Dev_zero
  | Console_out of Buffer.t * (string -> unit)
  | Console_in of stream_in

type t = { root : (string, node) Hashtbl.t }

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let normalize ~cwd path =
  let abs = if String.length path > 0 && path.[0] = '/' then path else cwd ^ "/" ^ path in
  (* Resolve ".." textually; we have no symlinks. *)
  let parts = split_path abs in
  let rec go acc = function
    | [] -> List.rev acc
    | ".." :: rest -> go (match acc with _ :: tl -> tl | [] -> []) rest
    | p :: rest -> go (p :: acc) rest
  in
  go [] parts

let create () =
  let root = Hashtbl.create 16 in
  let t = { root } in
  let dev = Hashtbl.create 8 in
  Hashtbl.replace root "dev" (Dir dev);
  Hashtbl.replace dev "null" Dev_null;
  Hashtbl.replace dev "zero" Dev_zero;
  Hashtbl.replace root "tmp" (Dir (Hashtbl.create 8));
  Hashtbl.replace root "etc" (Dir (Hashtbl.create 8));
  Hashtbl.replace root "proc" (Dir (Hashtbl.create 8));
  t

let resolve t ~cwd path =
  let parts = normalize ~cwd path in
  let rec go dir = function
    | [] -> Some (Dir dir)
    | [ last ] -> Hashtbl.find_opt dir last
    | d :: rest -> (
        match Hashtbl.find_opt dir d with Some (Dir sub) -> go sub rest | _ -> None)
  in
  go t.root parts

let rec ensure_dir dir = function
  | [] -> dir
  | d :: rest -> (
      match Hashtbl.find_opt dir d with
      | Some (Dir sub) -> ensure_dir sub rest
      | Some _ -> invalid_arg "Vfs: path component is not a directory"
      | None ->
          let sub = Hashtbl.create 8 in
          Hashtbl.replace dir d (Dir sub);
          ensure_dir sub rest)

let mkdir_p t path = ignore (ensure_dir t.root (normalize ~cwd:"/" path))

let add_file t ~path contents =
  match List.rev (normalize ~cwd:"/" path) with
  | [] -> invalid_arg "Vfs.add_file: empty path"
  | name :: rev_dirs ->
      let dir = ensure_dir t.root (List.rev rev_dirs) in
      let data = Bytes.of_string contents in
      Hashtbl.replace dir name (File { data; size = Bytes.length data })

let remove t ~path =
  match List.rev (normalize ~cwd:"/" path) with
  | [] -> false
  | name :: rev_dirs -> (
      let rec go dir = function
        | [] -> if Hashtbl.mem dir name then (Hashtbl.remove dir name; true) else false
        | d :: rest -> (
            match Hashtbl.find_opt dir d with Some (Dir sub) -> go sub rest | _ -> false)
      in
      go t.root (List.rev rev_dirs))

(* --- regular files --- *)

let ensure_capacity f n =
  if Bytes.length f.data < n then begin
    let ncap = max n (max 64 (2 * Bytes.length f.data)) in
    let nd = Bytes.make ncap '\000' in
    Bytes.blit f.data 0 nd 0 f.size;
    f.data <- nd
  end

let file_read f ~pos ~buf ~off ~len =
  if pos >= f.size then 0
  else begin
    let n = min len (f.size - pos) in
    Bytes.blit f.data pos buf off n;
    n
  end

let file_write f ~pos ~buf ~off ~len =
  ensure_capacity f (pos + len);
  Bytes.blit buf off f.data pos len;
  if pos + len > f.size then f.size <- pos + len;
  len

let file_contents f = Bytes.sub_string f.data 0 f.size

(* --- console input streams --- *)

let stream_in () = { buf = Buffer.create 256; pos = 0; eof = false; on_data = [] }

let fire_waiters s =
  let ws = List.rev s.on_data in
  s.on_data <- [];
  List.iter (fun f -> f ()) ws

let feed s data =
  Buffer.add_string s.buf data;
  fire_waiters s

let close_stream s =
  s.eof <- true;
  fire_waiters s

let stream_has_data s = Buffer.length s.buf > s.pos
let stream_at_eof s = s.eof && not (stream_has_data s)

let stream_read s ~buf ~off ~len =
  if stream_has_data s then begin
    let avail = Buffer.length s.buf - s.pos in
    let n = min len avail in
    Bytes.blit_string (Buffer.contents s.buf) s.pos buf off n;
    s.pos <- s.pos + n;
    `Data n
  end
  else if s.eof then `Eof
  else `Would_block

let stream_on_data s fn = s.on_data <- fn :: s.on_data
