type signo = Sigsegv | Sigvtalrm | Sigint | Sigusr1 | Sigusr2 | Sigchld

let name = function
  | Sigsegv -> "SIGSEGV"
  | Sigvtalrm -> "SIGVTALRM"
  | Sigint -> "SIGINT"
  | Sigusr1 -> "SIGUSR1"
  | Sigusr2 -> "SIGUSR2"
  | Sigchld -> "SIGCHLD"

type siginfo = { si_signo : signo; si_addr : Mv_hw.Addr.t; si_write : bool }

type handler = Default | Ignore | Handler of (siginfo -> unit)

type t = {
  actions : (signo, handler) Hashtbl.t;
  mutable blocked : signo list;
  mutable pending : siginfo list;  (* oldest first *)
}

let create () = { actions = Hashtbl.create 8; blocked = []; pending = [] }

let set_action t signo h = Hashtbl.replace t.actions signo h

let action t signo =
  match Hashtbl.find_opt t.actions signo with Some h -> h | None -> Default

let registered t signo =
  match action t signo with Handler _ -> true | Default | Ignore -> false

let block t signo = if not (List.mem signo t.blocked) then t.blocked <- signo :: t.blocked
let unblock t signo = t.blocked <- List.filter (fun s -> s <> signo) t.blocked
let is_blocked t signo = List.mem signo t.blocked

let push_pending t info = t.pending <- t.pending @ [ info ]

let take_pending t =
  let rec split acc = function
    | [] -> None
    | info :: rest ->
        if is_blocked t info.si_signo then split (info :: acc) rest
        else begin
          t.pending <- List.rev_append acc rest;
          Some info
        end
  in
  split [] t.pending
