lib/ros/mm.ml: Addr Costs Hashtbl Int List Map Mv_engine Mv_hw Page_table Phys_mem Seq Signal
