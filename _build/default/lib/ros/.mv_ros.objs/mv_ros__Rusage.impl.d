lib/ros/rusage.ml: Format Mv_util
