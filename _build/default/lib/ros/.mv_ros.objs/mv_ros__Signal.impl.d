lib/ros/signal.ml: Hashtbl List Mv_hw
