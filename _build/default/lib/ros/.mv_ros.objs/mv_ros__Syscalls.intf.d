lib/ros/syscalls.mli: Bytes Kernel Mm Mv_engine Mv_hw Process Rusage Signal
