lib/ros/kernel.ml: Costs Cpu Fun Hashtbl List Mm Mmu Mv_engine Mv_hw Mv_util Page_table Printf Process Queue Rusage Signal Topology Vfs
