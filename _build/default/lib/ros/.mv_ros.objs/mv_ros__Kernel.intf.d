lib/ros/kernel.mli: Hashtbl Mm Mv_engine Mv_hw Mv_util Process Queue Signal Vfs
