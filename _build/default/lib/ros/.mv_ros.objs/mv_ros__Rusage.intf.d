lib/ros/rusage.mli: Format Mv_util
