lib/ros/mm.mli: Mv_engine Mv_hw Signal
