lib/ros/process.ml: Buffer Hashtbl Mm Mv_engine Mv_hw Mv_util Rusage Signal Vfs
