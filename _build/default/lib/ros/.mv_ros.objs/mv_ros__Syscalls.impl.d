lib/ros/syscalls.ml: Buffer Bytes Hashtbl Kernel List Mm Mv_engine Mv_hw Mv_util Process Queue Signal Vfs
