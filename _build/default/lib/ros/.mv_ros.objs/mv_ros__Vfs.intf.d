lib/ros/vfs.mli: Buffer Bytes Hashtbl
