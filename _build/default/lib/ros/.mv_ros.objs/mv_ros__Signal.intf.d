lib/ros/signal.mli: Mv_hw
