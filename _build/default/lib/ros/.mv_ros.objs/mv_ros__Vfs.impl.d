lib/ros/vfs.ml: Buffer Bytes Hashtbl List String
