module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Sim = Mv_engine.Sim

type errno = ENOENT | EBADF | EINVAL | ENOSYS | ENOTDIR | EAGAIN

let errno_name = function
  | ENOENT -> "ENOENT"
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | ENOSYS -> "ENOSYS"
  | ENOTDIR -> "ENOTDIR"
  | EAGAIN -> "EAGAIN"

type stat_info = { st_size : int; st_is_dir : bool }

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND

(* Handler-side base costs, in cycles.  Copies charge [per_kb] extra. *)
let c_open = 1_400
let c_close = 450
let c_read = 650
let c_write = 700
let c_stat = 900
let c_lseek = 300
let c_access = 750
let c_getcwd = 500
let c_ioctl = 500
let c_readlink = 650
let c_mmap = 950
let c_munmap = 900
let c_mprotect = 750
let c_brk = 550
let c_sigaction = 600
let c_sigprocmask = 380
let c_getrusage = 950
let c_setitimer = 600
let c_nanosleep = 700
let c_poll = 800
let c_uname = 420
let c_sched_yield = 400
let c_futex = 900
let c_exit = 1_500
let per_kb = 150
let per_page_teardown = 120
let per_page_protect = 60

let enter k p name base =
  Kernel.count_syscall k p name;
  Kernel.in_sys k (fun () -> Machine.charge k.Kernel.machine base)

let sys k f = Kernel.in_sys k f

let copy_cost len = per_kb * len / 1024

(* --- file I/O --- *)

let openat k p ~path ~flags =
  enter k p "open" c_open;
  let creating = List.mem O_CREAT flags in
  match Vfs.resolve k.Kernel.vfs ~cwd:p.Process.cwd path with
  | Some node -> (
      (match (node, List.mem O_TRUNC flags) with
      | Vfs.File f, true ->
          f.Vfs.size <- 0
      | _ -> ());
      match node with
      | Vfs.Dir _ when List.mem O_WRONLY flags || List.mem O_RDWR flags -> Error ENOTDIR
      | _ -> Ok (Process.alloc_fd p node ~path))
  | None ->
      if creating then begin
        Vfs.add_file k.Kernel.vfs ~path "";
        match Vfs.resolve k.Kernel.vfs ~cwd:p.Process.cwd path with
        | Some node -> Ok (Process.alloc_fd p node ~path)
        | None -> Error ENOENT
      end
      else Error ENOENT

let close k p ~fd =
  enter k p "close" c_close;
  if Process.close_fd p fd then Ok () else Error EBADF

let read k p ~fd ~buf ~off ~len =
  enter k p "read" c_read;
  match Process.fd p fd with
  | None -> Error EBADF
  | Some entry -> (
      match entry.Process.node with
      | Vfs.File f ->
          let n =
            Vfs.file_read f ~pos:entry.Process.pos ~buf ~off ~len
          in
          entry.Process.pos <- entry.Process.pos + n;
          sys k (fun () -> Machine.charge k.Kernel.machine (copy_cost n));
          Ok n
      | Vfs.Dev_zero ->
          Bytes.fill buf off len '\000';
          sys k (fun () -> Machine.charge k.Kernel.machine (copy_cost len));
          Ok len
      | Vfs.Dev_null -> Ok 0
      | Vfs.Dir _ | Vfs.Console_out _ -> Error EBADF
      | Vfs.Console_in stream -> (
          let rec attempt () =
            match Vfs.stream_read stream ~buf ~off ~len with
            | `Data n ->
                sys k (fun () -> Machine.charge k.Kernel.machine (copy_cost n));
                Ok n
            | `Eof -> Ok 0
            | `Would_block ->
                (* Block the calling thread until input arrives. *)
                Exec.block k.Kernel.machine.Machine.exec ~reason:"read(stdin)"
                  (fun ~now:_ ~wake -> Vfs.stream_on_data stream (fun () -> wake ()));
                attempt ()
          in
          attempt ()))

let console_exit_cost k =
  (* Console output from a virtualized ROS exits to the VMM (virtio). *)
  if k.Kernel.virtualized then begin
    k.Kernel.vm_exits <- k.Kernel.vm_exits + 1;
    k.Kernel.machine.Machine.costs.Mv_hw.Costs.vm_exit
  end
  else 0

let write k p ~fd ~buf ~off ~len =
  enter k p "write" c_write;
  match Process.fd p fd with
  | None -> Error EBADF
  | Some entry -> (
      match entry.Process.node with
      | Vfs.File f ->
          let n = Vfs.file_write f ~pos:entry.Process.pos ~buf ~off ~len in
          entry.Process.pos <- entry.Process.pos + n;
          sys k (fun () -> Machine.charge k.Kernel.machine (copy_cost n));
          Ok n
      | Vfs.Dev_null | Vfs.Dev_zero -> Ok len
      | Vfs.Console_out (capture, tee) ->
          let s = Bytes.sub_string buf off len in
          Buffer.add_string capture s;
          tee s;
          sys k (fun () ->
              Machine.charge k.Kernel.machine (copy_cost len + console_exit_cost k));
          Ok len
      | Vfs.Dir _ | Vfs.Console_in _ -> Error EBADF)

let stat k p ~path =
  enter k p "stat" c_stat;
  match Vfs.resolve k.Kernel.vfs ~cwd:p.Process.cwd path with
  | Some (Vfs.File f) -> Ok { st_size = f.Vfs.size; st_is_dir = false }
  | Some (Vfs.Dir _) -> Ok { st_size = 4096; st_is_dir = true }
  | Some (Vfs.Dev_null | Vfs.Dev_zero | Vfs.Console_out _ | Vfs.Console_in _) ->
      Ok { st_size = 0; st_is_dir = false }
  | None -> Error ENOENT

let fstat k p ~fd =
  enter k p "fstat" c_stat;
  match Process.fd p fd with
  | None -> Error EBADF
  | Some entry -> (
      match entry.Process.node with
      | Vfs.File f -> Ok { st_size = f.Vfs.size; st_is_dir = false }
      | Vfs.Dir _ -> Ok { st_size = 4096; st_is_dir = true }
      | Vfs.Dev_null | Vfs.Dev_zero | Vfs.Console_out _ | Vfs.Console_in _ ->
          Ok { st_size = 0; st_is_dir = false })

let lseek k p ~fd ~pos =
  enter k p "lseek" c_lseek;
  match Process.fd p fd with
  | None -> Error EBADF
  | Some entry ->
      if pos < 0 then Error EINVAL
      else begin
        entry.Process.pos <- pos;
        Ok pos
      end

let access_path k p ~path =
  enter k p "access" c_access;
  match Vfs.resolve k.Kernel.vfs ~cwd:p.Process.cwd path with
  | Some _ -> Ok ()
  | None -> Error ENOENT

let getcwd k p =
  enter k p "getcwd" c_getcwd;
  p.Process.cwd

let ioctl k p ~fd ~req:_ =
  enter k p "ioctl" c_ioctl;
  match Process.fd p fd with None -> Error EBADF | Some _ -> Ok 0

let readlink k p ~path =
  enter k p "readlink" c_readlink;
  match Vfs.resolve k.Kernel.vfs ~cwd:p.Process.cwd path with
  | Some _ -> Error EINVAL  (* we have no symlinks *)
  | None -> Error ENOENT

(* --- memory --- *)

let mmap k p ~len ~prot ~kind =
  enter k p "mmap" c_mmap;
  if len <= 0 then Error EINVAL else Ok (Mm.mmap p.Process.mm ~len ~prot ~kind)

let munmap k p ~addr ~len =
  enter k p "munmap" c_munmap;
  if len <= 0 then Error EINVAL
  else begin
    let freed = sys k (fun () -> Mm.munmap p.Process.mm addr ~len) in
    sys k (fun () -> Machine.charge k.Kernel.machine (freed * per_page_teardown));
    Ok ()
  end

let mprotect k p ~addr ~len ~prot =
  enter k p "mprotect" c_mprotect;
  if len <= 0 then Error EINVAL
  else begin
    let touched = sys k (fun () -> Mm.mprotect p.Process.mm addr ~len prot) in
    sys k (fun () -> Machine.charge k.Kernel.machine (touched * per_page_protect));
    Ok ()
  end

let brk k p request =
  enter k p "brk" c_brk;
  Mm.brk p.Process.mm request

(* --- signals --- *)

let rt_sigaction k p ~signo ~handler =
  enter k p "rt_sigaction" c_sigaction;
  Signal.set_action p.Process.signals signo handler

let rt_sigprocmask k p ~block ~signo =
  enter k p "rt_sigprocmask" c_sigprocmask;
  if block then Signal.block p.Process.signals signo
  else Signal.unblock p.Process.signals signo

(* --- time --- *)

let vdso k p name =
  Kernel.count_syscall k p name;
  let costs = k.Kernel.machine.Machine.costs in
  (* User-space fast path.  On a ROS core the TLB is shared with the
     kernel and every other process, so the vdso page walk pays a little
     pressure; the HRT core is dedicated and its sparse TLB avoids it —
     the effect behind vdso calls being slightly {e faster} under
     Multiverse (Figure 9). *)
  let cpu = Machine.cpu_of_current k.Kernel.machine in
  let role = Mv_hw.Topology.role k.Kernel.machine.Machine.topo cpu.Mv_hw.Cpu.core_id in
  let pressure =
    match role with
    | Mv_hw.Topology.Ros_core -> costs.Mv_hw.Costs.tlb_pressure_penalty
    | Mv_hw.Topology.Hrt_core ->
        if Mv_hw.Tlb.occupancy cpu.Mv_hw.Cpu.tlb > 0.5 then
          costs.Mv_hw.Costs.tlb_pressure_penalty
        else 0
  in
  Machine.charge k.Kernel.machine (costs.Mv_hw.Costs.vdso_call + pressure)

let gettimeofday k p =
  vdso k p "gettimeofday";
  Kernel.wall_seconds k

let clock_gettime k p =
  vdso k p "clock_gettime";
  Kernel.wall_seconds k

let getpid k p =
  vdso k p "getpid";
  p.Process.pid

let getrusage k p =
  enter k p "getrusage" c_getrusage;
  Kernel.finalize_rusage k p;
  p.Process.rusage

let setitimer k p ~interval_us:_ =
  enter k p "setitimer" c_setitimer

let nanosleep k p ~ns =
  enter k p "nanosleep" c_nanosleep;
  Exec.sleep k.Kernel.machine.Machine.exec (Mv_util.Cycles.of_ns ns)

let poll k p ~fds ~timeout_ms =
  enter k p "poll" c_poll;
  let ready_fd fd =
    match Process.fd p fd with
    | None -> false
    | Some entry -> (
        match entry.Process.node with
        | Vfs.Console_in s -> Vfs.stream_has_data s || Vfs.stream_at_eof s
        | Vfs.File _ | Vfs.Dir _ | Vfs.Dev_null | Vfs.Dev_zero | Vfs.Console_out _ ->
            true)
  in
  let ready () = List.length (List.filter ready_fd fds) in
  let n = ready () in
  if n > 0 || timeout_ms <= 0 then n
  else begin
    (* Sleep for the timeout (input readiness also wakes us). *)
    let exec = k.Kernel.machine.Machine.exec in
    Exec.block exec ~reason:"poll" (fun ~now ~wake ->
        let woken = ref false in
        let wake_once () =
          if not !woken then begin
            woken := true;
            wake ()
          end
        in
        Sim.schedule_at (Exec.sim exec)
          (now + Mv_util.Cycles.of_ms (float_of_int timeout_ms))
          wake_once;
        List.iter
          (fun fd ->
            match Process.fd p fd with
            | Some { Process.node = Vfs.Console_in s; _ } ->
                Vfs.stream_on_data s wake_once
            | Some _ | None -> ())
          fds);
    ready ()
  end

(* --- processes and threads --- *)

let uname k p =
  enter k p "uname" c_uname;
  "Linux mv-ros 2.6.38-rc5+ x86_64"

let sched_yield k p =
  enter k p "sched_yield" c_sched_yield;
  Exec.yield k.Kernel.machine.Machine.exec

let clone k p ~name body =
  Kernel.count_syscall k p "clone";
  sys k (fun () ->
      Machine.charge k.Kernel.machine
        k.Kernel.machine.Machine.costs.Mv_hw.Costs.thread_create_ros);
  Kernel.spawn_thread k p ~name body

let futex_key p uaddr = (p.Process.pid, uaddr)

let futex_wait k p ~uaddr =
  enter k p "futex" c_futex;
  let key = futex_key p uaddr in
  let q =
    match Hashtbl.find_opt k.Kernel.futexes key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace k.Kernel.futexes key q;
        q
  in
  Exec.block k.Kernel.machine.Machine.exec ~reason:"futex" (fun ~now:_ ~wake ->
      Queue.add (fun () -> wake ()) q)

let futex_wake k p ~uaddr ~all =
  enter k p "futex" c_futex;
  match Hashtbl.find_opt k.Kernel.futexes (futex_key p uaddr) with
  | None -> 0
  | Some q ->
      let n = ref 0 in
      let wake_one () =
        match Queue.take_opt q with
        | Some w ->
            w ();
            incr n;
            true
        | None -> false
      in
      if all then while wake_one () do () done else ignore (wake_one ());
      !n

let execve k p ~path:_ =
  enter k p "execve" 800;
  Error ENOSYS

let exit_group k p ~code =
  enter k p "exit_group" c_exit;
  Kernel.exit_process k p ~code
