(** ROS processes: address space, file descriptors, signals, accounting. *)

type fd_entry = { mutable pos : int; node : Vfs.node; path : string }

type t = {
  pid : int;
  pname : string;
  mm : Mm.t;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  signals : Signal.t;
  rusage : Rusage.t;
  syscall_counts : Mv_util.Histogram.t;
  mutable cwd : string;
  mutable threads : Mv_engine.Exec.thread list;
  mutable exited : bool;
  mutable exit_code : int;
  stdout_buf : Buffer.t;  (** everything the process wrote to fd 1/2 *)
  stdin : Vfs.stream_in;
  mutable exit_hooks : (t -> unit) list;
      (** run at process exit — Multiverse registers its HRT shutdown here *)
  mutable gdt_image : int;  (** identity of the process GDT, superimposed on the HRT *)
  mutable fs_base : Mv_hw.Addr.t;  (** TLS base, superimposed on the HRT *)
}

val create :
  Mv_engine.Machine.t -> pid:int -> name:string -> ?stdout_tee:(string -> unit) -> unit -> t
(** Build a process with an empty lower-half address space, a standard
    stack VMA, stdin/stdout/stderr descriptors, and fresh accounting. *)

val alloc_fd : t -> Vfs.node -> path:string -> int
val fd : t -> int -> fd_entry option
val close_fd : t -> int -> bool
val stdout_contents : t -> string
val stack_top : Mv_hw.Addr.t
val add_exit_hook : t -> (t -> unit) -> unit
