(** Minimal in-memory file system for the ROS.

    Supports what the Racket runtime and the benchmarks exercise: regular
    files, directories, character devices ([/dev/null], [/dev/zero]),
    console streams for stdin/stdout/stderr, absolute/relative path
    resolution, and [stat]-style metadata. *)

type file = { mutable data : Bytes.t; mutable size : int }

type stream_in
(** A console-style input stream that can be fed data externally (the REPL
    front end feeds it lines) and signals EOF. *)

type node =
  | File of file
  | Dir of (string, node) Hashtbl.t
  | Dev_null
  | Dev_zero
  | Console_out of Buffer.t * (string -> unit)
      (** captures output and tees it to a callback *)
  | Console_in of stream_in

type t

val create : unit -> t
(** A fresh tree containing [/], [/tmp], [/dev/null], [/dev/zero], [/etc],
    and [/proc]. *)

(** {1 Paths} *)

val resolve : t -> cwd:string -> string -> node option
val mkdir_p : t -> string -> unit
val add_file : t -> path:string -> string -> unit
(** Create (or truncate) a regular file with the given contents, creating
    parent directories.  Raises [Invalid_argument] on an empty path. *)

val remove : t -> path:string -> bool

(** {1 Regular files} *)

val file_read : file -> pos:int -> buf:Bytes.t -> off:int -> len:int -> int
val file_write : file -> pos:int -> buf:Bytes.t -> off:int -> len:int -> int
val file_contents : file -> string

(** {1 Console input} *)

val stream_in : unit -> stream_in
val feed : stream_in -> string -> unit
val close_stream : stream_in -> unit
(** Mark EOF. *)

val stream_read : stream_in -> buf:Bytes.t -> off:int -> len:int -> [ `Data of int | `Eof | `Would_block ]
val stream_on_data : stream_in -> (unit -> unit) -> unit
(** Register a one-shot callback invoked at the next [feed]/[close]. *)

val stream_has_data : stream_in -> bool
val stream_at_eof : stream_in -> bool
