type t = {
  mutable utime : Mv_util.Cycles.t;
  mutable stime : Mv_util.Cycles.t;
  mutable maxrss_kb : int;
  mutable minflt : int;
  mutable majflt : int;
  mutable nvcsw : int;
  mutable nivcsw : int;
}

let create () =
  { utime = 0; stime = 0; maxrss_kb = 0; minflt = 0; majflt = 0; nvcsw = 0; nivcsw = 0 }

let note_rss t ~kb = if kb > t.maxrss_kb then t.maxrss_kb <- kb

let add acc x =
  acc.utime <- acc.utime + x.utime;
  acc.stime <- acc.stime + x.stime;
  acc.maxrss_kb <- max acc.maxrss_kb x.maxrss_kb;
  acc.minflt <- acc.minflt + x.minflt;
  acc.majflt <- acc.majflt + x.majflt;
  acc.nvcsw <- acc.nvcsw + x.nvcsw;
  acc.nivcsw <- acc.nivcsw + x.nivcsw

let pp ppf t =
  Format.fprintf ppf "user %.2fs sys %.2fs maxrss %dKB faults %d/%d csw %d/%d"
    (Mv_util.Cycles.to_sec t.utime)
    (Mv_util.Cycles.to_sec t.stime)
    t.maxrss_kb t.minflt t.majflt t.nvcsw t.nivcsw
