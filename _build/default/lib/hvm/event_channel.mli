(** HVM event channels: the ROS<->HRT communication mechanism.

    A channel is a shared data page plus a signaling discipline.  Two kinds
    exist (paper, Sections 2 and 4.3, measured in Figure 2):

    - {b Async}: hypercall + interrupt injection; ~25 K cycles (1.1 us)
      round trip.  Works without any prior setup.
    - {b Sync}: after an address-space merger, both sides poll a shared
      memory word with no VMM involvement; ~790 cycles same-socket,
      ~1060 cross-socket round trip.

    The server (a Multiverse partner thread in the ROS) handles one request
    at a time; requests from multiple HRT threads of one execution group
    queue ("the top-level HRT thread's corresponding partner acting as the
    communication end-point", paper Section 4.2). *)

type kind = Async | Sync

type request = { req_kind : string; req_run : unit -> unit }
(** A named request carrying its executable payload; the server runs
    [req_run] in its own (ROS) context. *)

type t

val create :
  Mv_engine.Machine.t -> kind:kind -> ros_core:int -> hrt_core:int -> t

val kind : t -> kind

val rtt : t -> int
(** The modeled round-trip latency in cycles (socket-distance aware). *)

val call : t -> request -> unit
(** Issue a request and block until the server completes it (thread
    context, caller side). *)

val post : t -> request -> unit
(** Fire-and-forget: enqueue a request with no completion expected.  Safe
    to use outside thread context (e.g. from a signal-injection event). *)

val serve_next : t -> request
(** Block until a request arrives (server side). *)

val complete : t -> unit
(** Finish the request obtained from {!serve_next}: wakes the caller if it
    was a {!call}; a no-op for {!post}ed requests.
    @raise Failure if nothing is being served. *)

val serve_loop : t -> on_request:(request -> unit) -> unit
(** Convenience server: forever take a request, run [on_request] (which
    should execute [req_run]), complete.  Never returns. *)

val calls : t -> int
