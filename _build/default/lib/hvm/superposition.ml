module Machine = Mv_engine.Machine
module Nautilus = Mv_aerokernel.Nautilus
open Mv_hw

let merge_address_space nk (p : Mv_ros.Process.t) =
  let machine = Nautilus.machine nk in
  Machine.charge machine machine.Machine.costs.Costs.merge_address_space;
  Nautilus.merge_lower_half nk ~from:(Mv_ros.Mm.page_table p.Mv_ros.Process.mm)

let superimpose_thread_state nk (p : Mv_ros.Process.t) ~core =
  let machine = Nautilus.machine nk in
  let cpu = machine.Machine.cpus.(core) in
  cpu.Cpu.gdt <- p.Mv_ros.Process.gdt_image;
  cpu.Cpu.fs_base <- p.Mv_ros.Process.fs_base;
  Machine.charge machine 400

let verify_superposition nk (p : Mv_ros.Process.t) ~core =
  let machine = Nautilus.machine nk in
  let cpu = machine.Machine.cpus.(core) in
  cpu.Cpu.gdt = p.Mv_ros.Process.gdt_image && cpu.Cpu.fs_base = p.Mv_ros.Process.fs_base
