lib/hvm/hvm.ml: Costs Format Mv_aerokernel Mv_engine Mv_hw Mv_ros Superposition Topology
