lib/hvm/superposition.ml: Array Costs Cpu Mv_aerokernel Mv_engine Mv_hw Mv_ros
