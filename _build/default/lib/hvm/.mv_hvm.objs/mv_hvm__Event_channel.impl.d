lib/hvm/event_channel.ml: Costs Mv_engine Mv_hw Queue Topology
