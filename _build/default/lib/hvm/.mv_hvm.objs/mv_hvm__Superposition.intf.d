lib/hvm/superposition.mli: Mv_aerokernel Mv_ros
