lib/hvm/hvm.mli: Format Mv_aerokernel Mv_engine Mv_ros
