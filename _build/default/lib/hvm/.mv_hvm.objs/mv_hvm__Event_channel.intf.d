lib/hvm/event_channel.mli: Mv_engine
