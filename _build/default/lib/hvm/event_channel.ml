module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Sim = Mv_engine.Sim
open Mv_hw

type kind = Async | Sync

type request = { req_kind : string; req_run : unit -> unit }

type t = {
  machine : Machine.t;
  ckind : kind;
  ros_core : int;
  hrt_core : int;
  queue : (request * (unit -> unit) option) Queue.t;
      (* request + caller waker ([None] for posted requests) *)
  mutable serving : (unit -> unit) option option;
      (* [Some waker_opt] while the server handles a request *)
  mutable server_wake : (request -> unit) option;
  mutable n_calls : int;
}

let create machine ~kind ~ros_core ~hrt_core =
  {
    machine;
    ckind = kind;
    ros_core;
    hrt_core;
    queue = Queue.create ();
    serving = None;
    server_wake = None;
    n_calls = 0;
  }

let kind t = t.ckind

let rtt t =
  let costs = t.machine.Machine.costs in
  match t.ckind with
  | Async -> costs.Costs.async_channel_rtt
  | Sync ->
      if Topology.same_socket t.machine.Machine.topo t.ros_core t.hrt_core then
        costs.Costs.sync_channel_same_socket
      else costs.Costs.sync_channel_cross_socket

let one_way t = rtt t / 2

let signal_cost t =
  (* Raising the event: a hypercall for the async (interrupt-injected)
     channel; a shared-memory store for the sync channel. *)
  match t.ckind with
  | Async -> t.machine.Machine.costs.Costs.hypercall
  | Sync -> 20

let sched_at t time fn =
  let sim = Exec.sim t.machine.Machine.exec in
  Sim.schedule_at sim (max time (Sim.now sim)) fn

(* If the server is parked and work is queued, deliver the head request
   after the one-way propagation delay. *)
let try_deliver t =
  match t.server_wake with
  | Some swake when not (Queue.is_empty t.queue) ->
      t.server_wake <- None;
      let req, waker = Queue.pop t.queue in
      t.serving <- Some waker;
      sched_at t (Exec.local_now t.machine.Machine.exec + one_way t) (fun () -> swake req)
  | Some _ | None -> ()

let call t req =
  t.n_calls <- t.n_calls + 1;
  Machine.charge t.machine (signal_cost t);
  Exec.block t.machine.Machine.exec ~reason:("evtchan:" ^ req.req_kind)
    (fun ~now:_ ~wake ->
      Queue.add (req, Some wake) t.queue;
      try_deliver t)

let post t req =
  t.n_calls <- t.n_calls + 1;
  Queue.add (req, None) t.queue;
  try_deliver t

let serve_next t =
  if not (Queue.is_empty t.queue) then begin
    let req, waker = Queue.pop t.queue in
    t.serving <- Some waker;
    (* The request already sat in the shared page; pay the poll/notice
       latency. *)
    Machine.charge t.machine (one_way t);
    req
  end
  else
    Exec.block t.machine.Machine.exec ~reason:"evtchan:serve" (fun ~now:_ ~wake ->
        t.server_wake <- Some wake)

let complete t =
  match t.serving with
  | None -> failwith "Event_channel.complete: nothing being served"
  | Some waker_opt -> (
      t.serving <- None;
      match waker_opt with
      | None -> ()  (* posted request: fire-and-forget *)
      | Some wake ->
          Machine.charge t.machine (signal_cost t);
          sched_at t (Exec.local_now t.machine.Machine.exec + one_way t) (fun () -> wake ()))

let serve_loop t ~on_request =
  let rec go () =
    let req = serve_next t in
    on_request req;
    complete t;
    go ()
  in
  go ()

let calls t = t.n_calls
