(** Override symbol resolution (paper, Section 4.2).

    When an overridden function is invoked, its generated wrapper consults
    the stored legacy-to-AeroKernel mapping and performs a symbol lookup to
    find the variant's HRT virtual address.  In the paper this lookup runs
    on {e every} invocation and "incurs a non-trivial overhead"; the
    suggested fix — an ELF-style symbol cache — is implemented here behind
    a flag and measured by the [ablation_symcache] benchmark. *)

type t

val create : Mv_aerokernel.Nautilus.t -> use_cache:bool -> t

val lookup : t -> string -> Mv_hw.Addr.t
(** Resolve an AeroKernel symbol, charging the full table-walk cost (or
    the cache-hit cost after the first resolution when the cache is on).
    @raise Not_found for unknown symbols. *)

val lookups : t -> int
val cache_hits : t -> int
val use_cache : t -> bool
