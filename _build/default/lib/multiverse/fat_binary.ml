type t = { sections : (string * string) list (* in order *) }

let magic = "MVFB1\n"

let empty = { sections = [] }

let add_section t ~name ~data =
  if List.mem_assoc name t.sections then
    invalid_arg ("Fat_binary.add_section: duplicate section " ^ name);
  if String.length name > 0xFFFF then invalid_arg "Fat_binary.add_section: name too long";
  { sections = t.sections @ [ (name, data) ] }

let section t name = List.assoc_opt name t.sections
let section_names t = List.map fst t.sections

let section_size t name =
  match section t name with Some d -> String.length d | None -> 0

let put_u16 b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF))

let put_u32 b v =
  put_u16 b (v land 0xFFFF);
  put_u16 b ((v lsr 16) land 0xFFFF)

let encode t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  List.iter
    (fun (name, data) ->
      put_u16 b (String.length name);
      Buffer.add_string b name;
      put_u32 b (String.length data);
      Buffer.add_string b data)
    t.sections;
  Buffer.contents b

let get_u16 s pos = Char.code s.[pos] lor (Char.code s.[pos + 1] lsl 8)

let get_u32 s pos = get_u16 s pos lor (get_u16 s (pos + 2) lsl 16)

let decode s =
  let len = String.length s in
  if len < String.length magic || String.sub s 0 (String.length magic) <> magic then
    Error "bad magic"
  else begin
    let rec go pos acc =
      if pos = len then Ok { sections = List.rev acc }
      else if pos + 2 > len then Error "truncated section name length"
      else begin
        let nlen = get_u16 s pos in
        let pos = pos + 2 in
        if pos + nlen > len then Error "truncated section name"
        else begin
          let name = String.sub s pos nlen in
          let pos = pos + nlen in
          if pos + 4 > len then Error "truncated section data length"
          else begin
            let dlen = get_u32 s pos in
            let pos = pos + 4 in
            if pos + dlen > len then Error ("truncated section data: " ^ name)
            else go (pos + dlen) ((name, String.sub s pos dlen) :: acc)
          end
        end
      end
    in
    go (String.length magic) []
  end

let total_size t = String.length (encode t)

let sec_text = ".text"
let sec_hrt_image = ".hrt.image"
let sec_overrides = ".mv.overrides"
let sec_init = ".mv.init"
