type entry = { ov_legacy : string; ov_symbol : string; ov_cost : int; ov_args : int }

type t = { entries : entry list }

let empty = { entries = [] }

let default =
  {
    entries =
      [
        { ov_legacy = "pthread_create"; ov_symbol = "nk_thread_create"; ov_cost = 450; ov_args = 4 };
        { ov_legacy = "pthread_join"; ov_symbol = "nk_thread_join"; ov_cost = 200; ov_args = 2 };
        { ov_legacy = "pthread_exit"; ov_symbol = "nk_thread_exit"; ov_cost = 150; ov_args = 1 };
      ];
  }

let is_blank line =
  let s = String.trim line in
  s = "" || s.[0] = '#'

let parse_kv token =
  match String.index_opt token '=' with
  | Some i ->
      Some (String.sub token 0 i, String.sub token (i + 1) (String.length token - i - 1))
  | None -> None

let parse_line lineno line =
  let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | "override" :: legacy :: "=" :: symbol :: opts ->
      let rec apply entry = function
        | [] -> Ok entry
        | opt :: rest -> (
            match parse_kv opt with
            | Some ("cost", v) -> (
                match int_of_string_opt v with
                | Some cost -> apply { entry with ov_cost = cost } rest
                | None -> fail ("bad cost: " ^ v))
            | Some ("args", v) -> (
                match int_of_string_opt v with
                | Some args -> apply { entry with ov_args = args } rest
                | None -> fail ("bad args: " ^ v))
            | Some (key, _) -> fail ("unknown option: " ^ key)
            | None -> fail ("malformed option: " ^ opt))
      in
      apply { ov_legacy = legacy; ov_symbol = symbol; ov_cost = 500; ov_args = 0 } opts
  | _ -> fail "expected: override <legacy> = <symbol> [cost=N] [args=N]"

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok { entries = List.rev acc }
    | line :: rest ->
        if is_blank line then go (lineno + 1) acc rest
        else (
          match parse_line lineno line with
          | Ok entry -> go (lineno + 1) (entry :: acc) rest
          | Error _ as e -> e)
  in
  go 1 [] lines

let to_text t =
  let line e =
    Printf.sprintf "override %s = %s cost=%d args=%d" e.ov_legacy e.ov_symbol e.ov_cost
      e.ov_args
  in
  String.concat "\n" (List.map line t.entries) ^ "\n"

let add t entry = { entries = t.entries @ [ entry ] }
let find t ~legacy = List.find_opt (fun e -> e.ov_legacy = legacy) t.entries
let mem t ~legacy = find t ~legacy <> None
