lib/multiverse/runtime.mli: Fat_binary Mv_aerokernel Mv_guest Mv_hvm Mv_ros Override_config Symbols
