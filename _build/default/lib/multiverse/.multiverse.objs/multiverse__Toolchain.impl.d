lib/multiverse/toolchain.ml: Buffer Char Fat_binary Kernel Mv_aerokernel Mv_engine Mv_guest Mv_hvm Mv_ros Mv_util Override_config Process Runtime Rusage Vfs
