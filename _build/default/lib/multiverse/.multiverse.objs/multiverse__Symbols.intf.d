lib/multiverse/symbols.mli: Mv_aerokernel Mv_hw
