lib/multiverse/override_config.ml: List Printf String
