lib/multiverse/fat_binary.ml: Buffer Char List String
