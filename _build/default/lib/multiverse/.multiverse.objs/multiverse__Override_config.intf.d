lib/multiverse/override_config.mli:
