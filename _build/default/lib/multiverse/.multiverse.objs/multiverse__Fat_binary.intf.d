lib/multiverse/fat_binary.mli:
