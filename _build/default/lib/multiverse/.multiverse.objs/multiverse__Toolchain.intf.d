lib/multiverse/toolchain.mli: Fat_binary Mv_engine Mv_guest Mv_hvm Mv_hw Mv_ros Mv_util Override_config Runtime
