lib/multiverse/symbols.ml: Hashtbl Mv_aerokernel Mv_engine Mv_hw
