(** The Multiverse "fat binary" (paper, Sections 3.1 and 3.5).

    Compiling with the Multiverse toolchain produces an ordinary-looking
    executable that additionally embeds the AeroKernel image and the
    Multiverse runtime metadata.  At program startup, the runtime parses
    the embedded image out of its own binary and ships it to the HVM.

    We implement a real (byte-level) container format:

    {v
    "MVFB1\n"                                magic
    repeated sections:
      u16  name length | name bytes
      u32  data length | data bytes
    v}

    Integers are little-endian.  Section order is preserved. *)

type t

val empty : t
val add_section : t -> name:string -> data:string -> t
(** Raises [Invalid_argument] on duplicate names or names longer than
    65535 bytes. *)

val section : t -> string -> string option
val section_names : t -> string list
val section_size : t -> string -> int
(** 0 when absent. *)

val encode : t -> string
val decode : string -> (t, string) result
(** Inverse of {!encode}; [Error] describes the corruption. *)

val total_size : t -> int
(** Size in bytes of the encoded container. *)

(** {1 Standard section names} *)

val sec_text : string  (* ".text" — the legacy program image *)
val sec_hrt_image : string  (* ".hrt.image" — the embedded AeroKernel *)
val sec_overrides : string  (* ".mv.overrides" — override configuration *)
val sec_init : string  (* ".mv.init" — ordered init-hook names *)
