module Machine = Mv_engine.Machine
module Nautilus = Mv_aerokernel.Nautilus

type t = {
  nk : Nautilus.t;
  cache : (string, Mv_hw.Addr.t) Hashtbl.t;
  use_cache : bool;
  mutable n_lookups : int;
  mutable n_hits : int;
}

let create nk ~use_cache =
  { nk; cache = Hashtbl.create 32; use_cache; n_lookups = 0; n_hits = 0 }

let lookup t name =
  t.n_lookups <- t.n_lookups + 1;
  let machine = Nautilus.machine t.nk in
  let costs = machine.Machine.costs in
  match (t.use_cache, Hashtbl.find_opt t.cache name) with
  | true, Some addr ->
      t.n_hits <- t.n_hits + 1;
      Machine.charge machine costs.Mv_hw.Costs.symbol_cache_hit;
      addr
  | _, _ -> (
      Machine.charge machine costs.Mv_hw.Costs.symbol_lookup;
      match Nautilus.func_address t.nk name with
      | Some addr ->
          if t.use_cache then Hashtbl.replace t.cache name addr;
          addr
      | None -> raise Not_found)

let lookups t = t.n_lookups
let cache_hits t = t.n_hits
let use_cache t = t.use_cache
