(** AeroKernel override configuration (paper, Sections 3.4 and 4.2).

    A developer selects AeroKernel functionality over default ROS
    functionality by listing function overrides in a simple configuration
    file; the toolchain generates a wrapper for each.  The format, one
    directive per line:

    {v
    # comment
    override <legacy-function> = <aerokernel-symbol> [cost=<cycles>] [args=<n>]
    v}

    [cost] is the modeled cost of the AeroKernel variant's body; [args]
    documents the argument mapping arity (kept for fidelity with the
    paper's "function's attributes and argument mappings"). *)

type entry = {
  ov_legacy : string;  (** the legacy (libc/pthread) function being replaced *)
  ov_symbol : string;  (** the AeroKernel symbol to bind *)
  ov_cost : int;  (** modeled body cost of the AeroKernel variant *)
  ov_args : int;
}

type t = { entries : entry list }

val empty : t

val default : t
(** The overrides Multiverse always enforces: the pthread interposition
    ([pthread_create]/[pthread_join]/[pthread_exit] mapped to AeroKernel
    thread operations). *)

val parse : string -> (t, string) result
(** Parse configuration text; [Error] carries a message naming the first
    offending line. *)

val to_text : t -> string
(** Render back to the file format; [parse (to_text t)] = [Ok t]. *)

val add : t -> entry -> t
val find : t -> legacy:string -> entry option
val mem : t -> legacy:string -> bool
