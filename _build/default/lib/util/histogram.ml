type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let add t key n =
  match Hashtbl.find_opt t key with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t key (ref n)

let incr t key = add t key 1
let count t key = match Hashtbl.find_opt t key with Some r -> !r | None -> 0
let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0
let clear t = Hashtbl.reset t

let to_sorted_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (ka, ca) (kb, cb) ->
         if ca <> cb then compare cb ca else compare ka kb)

let merge a b =
  let out = create () in
  Hashtbl.iter (fun k r -> add out k !r) a;
  Hashtbl.iter (fun k r -> add out k !r) b;
  out

let pp ppf t =
  let entries = to_sorted_list t in
  List.iter (fun (k, c) -> Format.fprintf ppf "%-20s %8d@." k c) entries;
  Format.fprintf ppf "%-20s %8d@." "TOTAL" (total t)

let pp_bars ~width ppf t =
  let entries = to_sorted_list t in
  let hi = List.fold_left (fun acc (_, c) -> max acc c) 1 entries in
  let bar c =
    let n = max (if c > 0 then 1 else 0) (c * width / hi) in
    String.make n '#'
  in
  List.iter (fun (k, c) -> Format.fprintf ppf "%-20s %8d |%s@." k c (bar c)) entries
