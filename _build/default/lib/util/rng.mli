(** Deterministic pseudo-random number generation.

    The whole simulation must be reproducible run-to-run, so all randomness
    flows through explicitly seeded generators.  The implementation is
    splitmix64, which is fast, has a full 64-bit state, and splits cleanly
    into independent streams. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] is a new generator statistically independent of [t]'s
    subsequent output.  Advances [t]. *)

val next : t -> int
(** [next t] is a uniformly distributed non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
