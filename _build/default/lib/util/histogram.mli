(** String-keyed counting histogram.

    Used to tally system-call invocations by name, page faults by kind, and
    similar categorical event counts (the data behind Figures 11 and 12 of
    the paper). *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val count : t -> string -> int
val total : t -> int
val clear : t -> unit

val to_sorted_list : t -> (string * int) list
(** Entries sorted by descending count, ties broken alphabetically. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram with the pointwise sums. *)

val pp : Format.formatter -> t -> unit
(** One ["name count"] line per entry, descending by count, with a trailing
    total line. *)

val pp_bars : width:int -> Format.formatter -> t -> unit
(** ASCII bar-chart rendering scaled so the largest count spans [width]
    columns; stands in for the paper's histogram figures. *)
