(** ASCII table rendering for benchmark and report output. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table with the given column headers.  Numeric-looking cells are
    right-aligned by default; override with [set_aligns]. *)

val set_aligns : t -> align list -> unit
val add_row : t -> string list -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
