lib/util/cycles.ml: Format
