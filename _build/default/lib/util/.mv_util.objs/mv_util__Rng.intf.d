lib/util/rng.mli:
