lib/util/cycles.mli: Format
