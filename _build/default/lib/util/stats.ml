type t = {
  mutable samples : float list;
  mutable n : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable lo : float;
  mutable hi : float;
}

let create () =
  { samples = []; n = 0; sum = 0.; sum_sq = 0.; lo = infinity; hi = neg_infinity }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.
  else
    let m = mean t in
    let var = (t.sum_sq /. float_of_int t.n) -. (m *. m) in
    sqrt (Float.max var 0.)

let min t = t.lo
let max t = t.hi

let percentile t p =
  assert (t.n > 0);
  let sorted = List.sort compare t.samples in
  let arr = Array.of_list sorted in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int t.n)) - 1 in
  let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) rank) in
  arr.(idx)

type summary = {
  s_count : int;
  s_mean : float;
  s_stddev : float;
  s_min : float;
  s_max : float;
}

let summary t =
  { s_count = t.n; s_mean = mean t; s_stddev = stddev t; s_min = t.lo; s_max = t.hi }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" s.s_count s.s_mean
    s.s_stddev s.s_min s.s_max
