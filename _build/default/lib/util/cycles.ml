type t = int

let zero = 0
let clock_ghz = 2.2
let cycles_per_ns = clock_ghz

let of_ns ns = int_of_float (ns *. cycles_per_ns +. 0.5)
let of_us us = of_ns (us *. 1e3)
let of_ms ms = of_ns (ms *. 1e6)
let of_sec s = of_ns (s *. 1e9)

let to_ns c = float_of_int c /. cycles_per_ns
let to_us c = to_ns c /. 1e3
let to_ms c = to_ns c /. 1e6
let to_sec c = to_ns c /. 1e9

let pp_time ppf c =
  let ns = to_ns c in
  if ns < 1e3 then Format.fprintf ppf "%.0f ns" ns
  else if ns < 1e6 then Format.fprintf ppf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%.2f ms" (ns /. 1e6)
  else Format.fprintf ppf "%.3f s" (ns /. 1e9)

let pp ppf c = Format.fprintf ppf "%d cyc (%a)" c pp_time c
